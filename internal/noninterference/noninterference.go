// Package noninterference implements the transparency check of the
// methodology's first phase, following the Goguen–Meseguer /
// Focardi–Gorrieri view the paper adopts: the high part of a system (the
// dynamic power manager's commands) does not interfere with the behaviour
// observed by the low part (the client) iff the system with high actions
// *hidden* is weakly bisimilar to the system with high actions *prevented
// from occurring*, both observed through the low actions only.
//
// Concretely, given an explicit LTS:
//
//   - variant A hides every label that is not low (the DPM is present but
//     unobservable);
//   - variant B first removes every high transition (the DPM is disabled),
//     then hides every label that is not low.
//
// Both variants are composable passes over the CSR form of the one
// generated state space — hiding rewrites only the label column (sharing
// the structural arrays) and restriction is a reachability sweep — and
// they share its label symbol table, so the equivalence check compares
// label indices directly without matching names.
//
// The two variants are compared up to weak bisimulation. When the check
// fails, the returned distinguishing modal-logic formula — over low labels
// and weak modalities — holds in variant A and fails in variant B; it is
// the diagnostic the designer uses to repair the model (paper Sect. 3.1).
package noninterference

import (
	"fmt"

	"repro/internal/bisim"
	"repro/internal/elab"
	"repro/internal/hml"
	"repro/internal/lts"
)

// Spec identifies the high (forbidden) and low (observable) actions.
type Spec struct {
	// High selects the labels of the high commands (e.g. the DPM's
	// shutdown and wakeup synchronizations).
	High func(label string) bool
	// Low selects the labels that remain observable (e.g. every label
	// involving the client instance). When nil, every non-high label is
	// observable — the classical SNNI setting.
	Low func(label string) bool
}

// Result reports the outcome of a transparency check.
type Result struct {
	// Transparent is true when the two variants are weakly bisimilar.
	Transparent bool
	// Formula is a distinguishing formula when Transparent is false: it
	// holds in the hidden variant and fails in the restricted one.
	Formula hml.Formula
	// FormulaText is Formula rendered in TwoTowers diagnostic syntax.
	FormulaText string
	// HiddenStates and RestrictedStates are the sizes of the two compared
	// state spaces, for reporting.
	HiddenStates, RestrictedStates int
}

// Check runs the noninterference analysis on an explicit LTS.
func Check(l *lts.LTS, spec Spec) (*Result, error) {
	if spec.High == nil {
		return nil, fmt.Errorf("noninterference: Spec.High is required")
	}
	low := spec.Low
	if low == nil {
		high := spec.High
		low = func(label string) bool { return !high(label) }
	}
	notLow := func(label string) bool { return !low(label) }

	hidden := lts.Hide(l, notLow)
	restricted := lts.Hide(lts.Restrict(l, spec.High), notLow)
	ok, f := bisim.Equivalent(hidden, restricted, bisim.Weak)
	res := &Result{
		Transparent:      ok,
		HiddenStates:     hidden.NumStates,
		RestrictedStates: restricted.NumStates,
	}
	if !ok {
		res.Formula = f
		res.FormulaText = hml.Format(f)
	}
	return res, nil
}

// CheckModel generates the state space of an elaborated model and runs the
// transparency check with the named instance's synchronizations as high
// and the low instance's as observable.
func CheckModel(m *elab.Model, highInstance, lowInstance string, opts lts.GenerateOptions) (*Result, error) {
	for _, inst := range []string{highInstance, lowInstance} {
		if _, ok := m.InstanceIndex(inst); !ok {
			return nil, fmt.Errorf("noninterference: unknown instance %q", inst)
		}
	}
	l, err := lts.Generate(m, opts)
	if err != nil {
		return nil, fmt.Errorf("noninterference: %w", err)
	}
	return Check(l, Spec{
		High: lts.LabelMatcherByInstance(highInstance),
		Low:  lts.LabelMatcherByInstance(lowInstance),
	})
}
