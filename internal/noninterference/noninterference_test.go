package noninterference

import (
	"strings"
	"testing"

	"repro/internal/aemilia"
	"repro/internal/elab"
	"repro/internal/hml"
	"repro/internal/lts"
	"repro/internal/rates"
)

// interferingSystem: a worker serving a client, plus a "killer" (high
// component) that can silently disable the worker forever. With the killer
// hidden the client can get stuck after a request; with the killer
// prevented it cannot: classic interference.
func interferingSystem(t *testing.T) *elab.Model {
	t.Helper()
	worker := aemilia.NewElemType("Worker_Type",
		[]string{"req", "kill"}, []string{"res"},
		aemilia.NewBehavior("Idle", nil,
			aemilia.Ch(
				aemilia.Pre("req", rates.UntimedRate(),
					aemilia.Pre("res", rates.UntimedRate(), aemilia.Invoke("Idle"))),
				aemilia.Pre("kill", rates.UntimedRate(), aemilia.Invoke("Dead")),
			)),
		aemilia.NewBehavior("Dead", nil,
			aemilia.Pre("idle_forever", rates.UntimedRate(), aemilia.Invoke("Dead"))),
	)
	client := aemilia.NewElemType("Client_Type",
		[]string{"res"}, []string{"req"},
		aemilia.NewBehavior("C", nil,
			aemilia.Pre("req", rates.UntimedRate(),
				aemilia.Pre("res", rates.UntimedRate(), aemilia.Invoke("C")))))
	killer := aemilia.NewElemType("Killer_Type", nil, []string{"kill"},
		aemilia.NewBehavior("K", nil,
			aemilia.Pre("kill", rates.UntimedRate(), aemilia.Invoke("K"))))
	a := aemilia.NewArchiType("Interfering",
		[]*aemilia.ElemType{worker, client, killer},
		[]*aemilia.Instance{
			aemilia.NewInstance("W", "Worker_Type"),
			aemilia.NewInstance("C", "Client_Type"),
			aemilia.NewInstance("H", "Killer_Type"),
		},
		[]aemilia.Attachment{
			aemilia.Attach("C", "req", "W", "req"),
			aemilia.Attach("W", "res", "C", "res"),
			aemilia.Attach("H", "kill", "W", "kill"),
		})
	m, err := elab.Elaborate(a)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// transparentSystem: the high component can only toggle an internal lamp
// that never affects the worker-client interaction.
func transparentSystem(t *testing.T) *elab.Model {
	t.Helper()
	worker := aemilia.NewElemType("Worker_Type",
		[]string{"req", "lamp"}, []string{"res"},
		aemilia.NewBehavior("Idle", nil,
			aemilia.Ch(
				aemilia.Pre("req", rates.UntimedRate(),
					aemilia.Pre("res", rates.UntimedRate(), aemilia.Invoke("Idle"))),
				aemilia.Pre("lamp", rates.UntimedRate(), aemilia.Invoke("Idle")),
			)))
	client := aemilia.NewElemType("Client_Type",
		[]string{"res"}, []string{"req"},
		aemilia.NewBehavior("C", nil,
			aemilia.Pre("req", rates.UntimedRate(),
				aemilia.Pre("res", rates.UntimedRate(), aemilia.Invoke("C")))))
	high := aemilia.NewElemType("High_Type", nil, []string{"lamp"},
		aemilia.NewBehavior("H", nil,
			aemilia.Pre("lamp", rates.UntimedRate(), aemilia.Invoke("H"))))
	a := aemilia.NewArchiType("Transparent",
		[]*aemilia.ElemType{worker, client, high},
		[]*aemilia.Instance{
			aemilia.NewInstance("W", "Worker_Type"),
			aemilia.NewInstance("C", "Client_Type"),
			aemilia.NewInstance("H", "High_Type"),
		},
		[]aemilia.Attachment{
			aemilia.Attach("C", "req", "W", "req"),
			aemilia.Attach("W", "res", "C", "res"),
			aemilia.Attach("H", "lamp", "W", "lamp"),
		})
	m, err := elab.Elaborate(a)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestInterferenceDetected(t *testing.T) {
	res, err := CheckModel(interferingSystem(t), "H", "C", lts.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transparent {
		t.Fatal("killer must interfere")
	}
	if res.Formula == nil || res.FormulaText == "" {
		t.Fatal("missing diagnostic formula")
	}
	if !strings.Contains(res.FormulaText, "EXISTS_WEAK_TRANS") {
		t.Errorf("formula not in TwoTowers syntax: %s", res.FormulaText)
	}
	// The formula speaks only about observable (client) labels.
	if strings.Contains(res.FormulaText, "H.kill") {
		t.Errorf("formula mentions hidden high label: %s", res.FormulaText)
	}
	if res.HiddenStates == 0 || res.RestrictedStates == 0 {
		t.Error("state counts not reported")
	}
}

func TestInterferenceFormulaIsValidWitness(t *testing.T) {
	m := interferingSystem(t)
	l, err := lts.Generate(m, lts.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	high := lts.LabelMatcherByInstance("H")
	low := lts.LabelMatcherByInstance("C")
	res, err := Check(l, Spec{High: high, Low: low})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transparent {
		t.Fatal("expected interference")
	}
	notLow := func(s string) bool { return !low(s) }
	hidden := lts.Hide(l, notLow)
	restricted := lts.Hide(lts.Restrict(l, high), notLow)
	if !hml.NewChecker(hidden).Sat(hidden.Initial, res.Formula) {
		t.Errorf("formula should hold in the hidden variant: %s", res.FormulaText)
	}
	if hml.NewChecker(restricted).Sat(restricted.Initial, res.Formula) {
		t.Errorf("formula should fail in the restricted variant: %s", res.FormulaText)
	}
}

func TestTransparentSystemPasses(t *testing.T) {
	res, err := CheckModel(transparentSystem(t), "H", "C", lts.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Transparent {
		t.Fatalf("lamp toggling must be transparent; formula: %s", res.FormulaText)
	}
	if res.Formula != nil {
		t.Error("transparent result should carry no formula")
	}
}

func TestDefaultLowIsComplementOfHigh(t *testing.T) {
	// With Low nil, every non-high action stays observable (SNNI). The
	// lamp sync involves both W and H; as a high label it is hidden in one
	// variant and removed in the other, and the rest of the system is
	// identical: still transparent.
	m := transparentSystem(t)
	l, err := lts.Generate(m, lts.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(l, Spec{High: lts.LabelMatcherByInstance("H")})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Transparent {
		t.Fatalf("SNNI variant should pass: %s", res.FormulaText)
	}
}

func TestCheckRequiresHigh(t *testing.T) {
	m := transparentSystem(t)
	l, err := lts.Generate(m, lts.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(l, Spec{}); err == nil {
		t.Fatal("missing High matcher should error")
	}
}

func TestCheckModelUnknownInstance(t *testing.T) {
	if _, err := CheckModel(transparentSystem(t), "NOPE", "C", lts.GenerateOptions{}); err == nil {
		t.Fatal("unknown high instance should error")
	}
	if _, err := CheckModel(transparentSystem(t), "H", "NOPE", lts.GenerateOptions{}); err == nil {
		t.Fatal("unknown low instance should error")
	}
}
