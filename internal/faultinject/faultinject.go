// Package faultinject injects deterministic faults into the pipeline for
// testing its fault-tolerance layer. A Plan arms (site, key) triggers —
// panic in a generation worker at state 17, force non-convergence at
// sweep point 3, fail the second checkpoint write — and the
// instrumentation sites consult the active plan with the identity of the
// task they are about to run.
//
// Determinism rule: whether a trigger fires is a pure function of the
// armed plan and the task identity (the key), never of scheduling. Keys
// are stable task identities — a frontier state index, a sweep-point
// index, an iteration number — so an armed fault fires at the same
// logical place at any worker count or lane width. Randomness enters only
// at arming time (ArmSeeded draws keys from a seeded generator), never at
// fire time.
//
// With no plan active, every site is a single atomic load and a nil
// check; the package costs nothing in production.
package faultinject

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/rng"
)

// Instrumentation sites. Each constant names one place the pipeline
// consults the active plan, with the key identifying the task.
const (
	// SiteGenerateExpand fires in a state-expansion task of lts.Generate;
	// the key is the state's dense identifier (BFS order).
	SiteGenerateExpand = "lts.generate.expand"
	// SiteSolveIteration fires at the top of a steady-state solver
	// iteration; the key is the iteration number. Pair it with OnFire to
	// cancel a solve at an exact iteration.
	SiteSolveIteration = "ctmc.solve.iteration"
	// SiteJacobiBlock fires in a block task of the solo Jacobi pool; the
	// key is the block index.
	SiteJacobiBlock = "ctmc.jacobi.block"
	// SiteBatchTile fires in a tile task of the batched Jacobi pool; the
	// key is the tile index.
	SiteBatchTile = "ctmc.batch.tile"
	// SiteSweepPoint fires in a sweep-point task of core.Phase2Sweep; the
	// key is the global point index.
	SiteSweepPoint = "core.sweep.point"
	// SiteSweepNonconverge marks a sweep point whose base solve is
	// reported as non-converged even if it converged, to drive the
	// escalation ladder; the key is the global point index.
	SiteSweepNonconverge = "core.sweep.nonconverge"
	// SiteCheckpointWrite fires before a checkpoint write; the key is the
	// write ordinal (0 for the first write of the sweep).
	SiteCheckpointWrite = "core.checkpoint.write"
	// SiteSimReplication fires in a replication task of sim.Run; the key
	// is the replication index.
	SiteSimReplication = "sim.replication"
	// SiteCoarseSolve fires in the coarse-solve step of a multilevel
	// cycle; the key is the cycle index.
	SiteCoarseSolve = "ctmc.multilevel.coarse"
)

// InjectedError is the panic value MaybePanic raises and the error a
// forced checkpoint-write failure surfaces: tests recognize injected
// faults by errors.As through whatever wrapping the recovery layer adds.
type InjectedError struct {
	// Site is the instrumentation site that fired.
	Site string
	// Key is the task identity the trigger was armed for.
	Key int
}

// Error implements the error interface.
func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultinject: injected fault at %s key %d", e.Site, e.Key)
}

// Plan is a set of armed (site, key) triggers. Arm it before activation;
// Fire is safe for concurrent use by any number of workers.
type Plan struct {
	mu     sync.Mutex
	armed  map[string]map[int]bool
	fired  map[string]map[int]int
	onFire map[string]func(key int)
}

// NewPlan returns an empty plan.
func NewPlan() *Plan {
	return &Plan{
		armed: make(map[string]map[int]bool),
		fired: make(map[string]map[int]int),
	}
}

// Arm adds triggers for the given keys at a site.
func (p *Plan) Arm(site string, keys ...int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	m := p.armed[site]
	if m == nil {
		m = make(map[int]bool)
		p.armed[site] = m
	}
	for _, k := range keys {
		m[k] = true
	}
	return p
}

// ArmSeeded arms n distinct keys drawn without replacement from
// [0, keyspace) by a generator seeded with seed, and returns the keys in
// ascending order. The randomness is consumed here, at arming time; the
// armed plan itself is deterministic.
func (p *Plan) ArmSeeded(site string, seed uint64, n, keyspace int) []int {
	if n > keyspace {
		n = keyspace
	}
	r := rng.New(seed)
	chosen := make(map[int]bool, n)
	for len(chosen) < n {
		chosen[r.Intn(keyspace)] = true
	}
	keys := make([]int, 0, n)
	for k := range chosen {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	p.Arm(site, keys...)
	return keys
}

// OnFire registers a callback invoked (outside the plan lock) each time a
// trigger at the site fires — the hook cancel-at-iteration tests use to
// call their context's cancel function at an exact solver iteration.
func (p *Plan) OnFire(site string, fn func(key int)) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.onFire == nil {
		p.onFire = make(map[string]func(key int))
	}
	p.onFire[site] = fn
	return p
}

// fire reports whether (site, key) is armed and records the hit.
func (p *Plan) fire(site string, key int) (hit bool, cb func(key int)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.armed[site][key] {
		return false, nil
	}
	m := p.fired[site]
	if m == nil {
		m = make(map[int]int)
		p.fired[site] = m
	}
	m[key]++
	return true, p.onFire[site]
}

// Fired returns the keys that have fired at a site, in ascending order.
func (p *Plan) Fired(site string) []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	keys := make([]int, 0, len(p.fired[site]))
	for k := range p.fired[site] {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// active is the process-wide plan the instrumentation sites consult; nil
// means injection is off and every site is a single atomic load.
var active atomic.Pointer[Plan]

// Activate installs the plan process-wide. Tests must Deactivate when
// done (defer it next to Activate).
func Activate(p *Plan) { active.Store(p) }

// Deactivate removes the active plan.
func Deactivate() { active.Store(nil) }

// Fire reports whether an armed trigger at (site, key) fires, invoking
// the site's OnFire callback when it does. With no active plan it is a
// nil check on one atomic load.
func Fire(site string, key int) bool {
	p := active.Load()
	if p == nil {
		return false
	}
	hit, cb := p.fire(site, key)
	if hit && cb != nil {
		cb(key)
	}
	return hit
}

// MaybePanic panics with an *InjectedError when an armed trigger at
// (site, key) fires — the panic-in-worker injection the pools' recovery
// paths are tested against.
func MaybePanic(site string, key int) {
	if Fire(site, key) {
		panic(&InjectedError{Site: site, Key: key})
	}
}
