package faultinject

import (
	"errors"
	"sync"
	"testing"
)

func TestFireOnlyArmedKeys(t *testing.T) {
	p := NewPlan().Arm(SiteSweepPoint, 2, 5)
	Activate(p)
	defer Deactivate()
	if Fire(SiteSweepPoint, 1) {
		t.Fatal("unarmed key fired")
	}
	if !Fire(SiteSweepPoint, 2) || !Fire(SiteSweepPoint, 5) {
		t.Fatal("armed keys did not fire")
	}
	if Fire(SiteJacobiBlock, 2) {
		t.Fatal("unarmed site fired")
	}
	if got := p.Fired(SiteSweepPoint); len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Fatalf("Fired = %v, want [2 5]", got)
	}
}

func TestNoActivePlanNeverFires(t *testing.T) {
	Deactivate()
	if Fire(SiteSweepPoint, 0) {
		t.Fatal("fired with no active plan")
	}
	MaybePanic(SiteSweepPoint, 0) // must not panic
}

func TestMaybePanicValue(t *testing.T) {
	Activate(NewPlan().Arm(SiteGenerateExpand, 7))
	defer Deactivate()
	defer func() {
		v := recover()
		ie, ok := v.(*InjectedError)
		if !ok {
			t.Fatalf("recovered %T, want *InjectedError", v)
		}
		if ie.Site != SiteGenerateExpand || ie.Key != 7 {
			t.Fatalf("wrong identity: %+v", ie)
		}
		var asErr *InjectedError
		if !errors.As(error(ie), &asErr) {
			t.Fatal("InjectedError should satisfy errors.As on itself")
		}
	}()
	MaybePanic(SiteGenerateExpand, 7)
	t.Fatal("unreachable: MaybePanic must panic on an armed key")
}

func TestOnFireCallback(t *testing.T) {
	var mu sync.Mutex
	var hits []int
	p := NewPlan().Arm(SiteSolveIteration, 10).OnFire(SiteSolveIteration, func(key int) {
		mu.Lock()
		hits = append(hits, key)
		mu.Unlock()
	})
	Activate(p)
	defer Deactivate()
	Fire(SiteSolveIteration, 9)
	Fire(SiteSolveIteration, 10)
	if len(hits) != 1 || hits[0] != 10 {
		t.Fatalf("callback hits = %v, want [10]", hits)
	}
}

// TestArmSeededDeterministic pins the arming determinism rule: the same
// seed arms the same keys, and firing is a pure lookup afterwards.
func TestArmSeededDeterministic(t *testing.T) {
	a := NewPlan().ArmSeeded(SiteSimReplication, 42, 3, 100)
	b := NewPlan().ArmSeeded(SiteSimReplication, 42, 3, 100)
	if len(a) != 3 {
		t.Fatalf("armed %d keys, want 3", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed armed different keys: %v vs %v", a, b)
		}
	}
	c := NewPlan().ArmSeeded(SiteSimReplication, 43, 3, 100)
	same := len(c) == len(a)
	for i := 0; same && i < len(a); i++ {
		same = a[i] == c[i]
	}
	if same {
		t.Fatalf("different seeds armed identical keys %v (suspicious)", a)
	}
	// n > keyspace arms the whole keyspace.
	all := NewPlan().ArmSeeded(SiteSimReplication, 1, 10, 4)
	if len(all) != 4 {
		t.Fatalf("keyspace-capped arm returned %d keys, want 4", len(all))
	}
}

func TestFireConcurrent(t *testing.T) {
	p := NewPlan().Arm(SiteBatchTile, 0, 1, 2, 3)
	Activate(p)
	defer Deactivate()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 8; k++ {
				Fire(SiteBatchTile, k)
			}
		}()
	}
	wg.Wait()
	if got := p.Fired(SiteBatchTile); len(got) != 4 {
		t.Fatalf("Fired = %v, want the 4 armed keys", got)
	}
}
