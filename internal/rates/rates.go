// Package rates defines the timing annotations of actions in a stochastic
// architectural description and the rules for combining them when two
// attached interactions synchronize.
//
// An action is one of:
//
//   - Untimed:   no timing information (functional models only);
//   - Exp:       exponentially distributed duration with positive rate λ;
//   - Immediate: zero duration, with a priority level and a weight used to
//     resolve probabilistic choice among simultaneously enabled
//     immediate actions;
//   - Passive:   reactive; the duration is decided by the active partner
//     of the synchronization. A weight resolves the choice among
//     alternative passive actions with the same name.
//
// The synchronization discipline follows the stochastic process-algebra
// rule the paper relies on: at most one participant of a synchronization
// may be active (Exp or Immediate); the result takes the active timing.
package rates

import (
	"fmt"
	"strconv"
)

// Kind classifies the timing of an action.
type Kind int

// Rate kinds.
const (
	Untimed Kind = iota + 1
	Exp
	Immediate
	Passive
)

// String returns the source-level name of the kind.
func (k Kind) String() string {
	switch k {
	case Untimed:
		return "untimed"
	case Exp:
		return "exp"
	case Immediate:
		return "inf"
	case Passive:
		return "passive"
	default:
		return "unknown"
	}
}

// Rate is the timing annotation of an action.
type Rate struct {
	// Kind selects which of the remaining fields are meaningful.
	Kind Kind
	// Lambda is the parameter of an exponential duration (Kind == Exp).
	Lambda float64
	// Priority orders simultaneously enabled immediate actions
	// (Kind == Immediate); higher wins.
	Priority int
	// Weight resolves probabilistic choice among equally prioritized
	// immediate actions, or among alternative passive actions
	// (Kind == Immediate or Passive).
	Weight float64
	// Slot binds an exponential rate to a symbolic parameter: slot k > 0
	// means Lambda is the current value of rate parameter k, and a
	// downstream analysis may substitute a different positive value
	// without re-elaborating the model (ctmc.Rebind). Slot 0 — the zero
	// value — marks an ordinary constant rate. Slots are only meaningful
	// on Kind == Exp: immediate and passive annotations shape the
	// *structure* of the extracted chain (vanishing-state classification,
	// branching probabilities), so they cannot be rebound.
	Slot int
}

// Convenience constructors.

// UntimedRate returns the annotation of an action without timing.
func UntimedRate() Rate { return Rate{Kind: Untimed} }

// ExpRate returns an exponential annotation with rate lambda.
func ExpRate(lambda float64) Rate { return Rate{Kind: Exp, Lambda: lambda} }

// ExpSlot returns an exponential annotation bound to rate slot k (k >= 1)
// with anchor value lambda. The anchor is a real, positive rate — the
// model elaborates and analyses exactly like ExpRate(lambda) — but the
// slot index travels with the annotation through synchronization and into
// the generated transition system, where ctmc.Build records it per edge so
// the extracted chain can be rebound to other slot values in O(edges).
func ExpSlot(slot int, lambda float64) Rate {
	return Rate{Kind: Exp, Lambda: lambda, Slot: slot}
}

// Inf returns an immediate annotation with the given priority and weight.
func Inf(priority int, weight float64) Rate {
	return Rate{Kind: Immediate, Priority: priority, Weight: weight}
}

// PassiveRate returns a passive annotation with weight 1.
func PassiveRate() Rate { return Rate{Kind: Passive, Weight: 1} }

// PassiveWeight returns a passive annotation with the given weight.
func PassiveWeight(w float64) Rate { return Rate{Kind: Passive, Weight: w} }

// IsActive reports whether the rate decides its own timing
// (exponential or immediate).
func (r Rate) IsActive() bool { return r.Kind == Exp || r.Kind == Immediate }

// Validate checks internal consistency of the annotation.
func (r Rate) Validate() error {
	if r.Slot < 0 {
		return fmt.Errorf("rates: rate slot must be non-negative, got %d", r.Slot)
	}
	if r.Slot > 0 && r.Kind != Exp {
		return fmt.Errorf("rates: rate slot %d on a %v annotation (slots are exponential-only)", r.Slot, r.Kind)
	}
	switch r.Kind {
	case Untimed:
		return nil
	case Exp:
		if !(r.Lambda > 0) {
			return fmt.Errorf("rates: exponential rate must be positive, got %v", r.Lambda)
		}
		return nil
	case Immediate:
		if r.Priority < 0 {
			return fmt.Errorf("rates: immediate priority must be non-negative, got %d", r.Priority)
		}
		if !(r.Weight > 0) {
			return fmt.Errorf("rates: immediate weight must be positive, got %v", r.Weight)
		}
		return nil
	case Passive:
		if !(r.Weight > 0) {
			return fmt.Errorf("rates: passive weight must be positive, got %v", r.Weight)
		}
		return nil
	default:
		return fmt.Errorf("rates: invalid kind %d", int(r.Kind))
	}
}

// String renders the annotation in .aem syntax.
func (r Rate) String() string {
	switch r.Kind {
	case Untimed:
		return "_"
	case Exp:
		if r.Slot > 0 {
			return "exp@" + strconv.Itoa(r.Slot) + "(" + strconv.FormatFloat(r.Lambda, 'g', -1, 64) + ")"
		}
		return "exp(" + strconv.FormatFloat(r.Lambda, 'g', -1, 64) + ")"
	case Immediate:
		return "inf(" + strconv.Itoa(r.Priority) + ", " +
			strconv.FormatFloat(r.Weight, 'g', -1, 64) + ")"
	case Passive:
		if r.Weight == 1 {
			return "passive"
		}
		return "passive(" + strconv.FormatFloat(r.Weight, 'g', -1, 64) + ")"
	default:
		return "<invalid>"
	}
}

// IncompatibleError reports a synchronization between two annotations
// that the timing discipline forbids (e.g. two active participants).
type IncompatibleError struct {
	// A and B are the two annotations that could not be combined.
	A, B Rate
}

// Error implements error.
func (e *IncompatibleError) Error() string {
	return fmt.Sprintf("rates: cannot synchronize %v with %v: at most one participant may be active", e.A, e.B)
}

// Combine computes the annotation of a synchronized transition from the
// annotations of its two participants. Rules:
//
//   - active × passive  → the active annotation, weight multiplied by the
//     passive weight (normalized per choice at firing time);
//   - passive × passive → passive (functional composition; a downstream
//     Markovian analysis rejects reachable passive transitions);
//   - untimed × untimed, untimed × passive → untimed;
//   - active × active, untimed × active → error.
//
// The result is a copy of the active annotation, so a rate slot on the
// active participant is preserved; synchronization never rescales an
// exponential Lambda, so the slot's value binding stays exact.
func Combine(a, b Rate) (Rate, error) {
	if a.IsActive() && b.IsActive() {
		return Rate{}, &IncompatibleError{A: a, B: b}
	}
	if a.IsActive() || b.IsActive() {
		act, pas := a, b
		if b.IsActive() {
			act, pas = b, a
		}
		if pas.Kind == Untimed {
			return Rate{}, &IncompatibleError{A: a, B: b}
		}
		out := act
		if out.Kind == Immediate {
			out.Weight *= pas.Weight
		}
		return out, nil
	}
	// Neither active.
	if a.Kind == Untimed || b.Kind == Untimed {
		return UntimedRate(), nil
	}
	return Rate{Kind: Passive, Weight: a.Weight * b.Weight}, nil
}
