package rates

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	tests := []struct {
		name string
		r    Rate
		ok   bool
	}{
		{"untimed", UntimedRate(), true},
		{"exp", ExpRate(1.5), true},
		{"exp-zero", ExpRate(0), false},
		{"exp-neg", ExpRate(-1), false},
		{"inf", Inf(1, 2), true},
		{"inf-neg-prio", Inf(-1, 2), false},
		{"inf-zero-weight", Inf(1, 0), false},
		{"passive", PassiveRate(), true},
		{"passive-w", PassiveWeight(0.5), true},
		{"passive-zero", PassiveWeight(0), false},
		{"invalid-kind", Rate{Kind: Kind(99)}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.r.Validate()
			if (err == nil) != tt.ok {
				t.Errorf("Validate(%v) err=%v, want ok=%t", tt.r, err, tt.ok)
			}
		})
	}
}

func TestCombineActivePassive(t *testing.T) {
	got, err := Combine(ExpRate(3), PassiveRate())
	if err != nil {
		t.Fatalf("Combine: %v", err)
	}
	if got.Kind != Exp || got.Lambda != 3 {
		t.Errorf("got %v, want exp(3)", got)
	}
	// Symmetric.
	got, err = Combine(PassiveRate(), ExpRate(3))
	if err != nil {
		t.Fatalf("Combine: %v", err)
	}
	if got.Kind != Exp || got.Lambda != 3 {
		t.Errorf("got %v, want exp(3)", got)
	}
}

func TestCombineImmediatePassiveWeights(t *testing.T) {
	got, err := Combine(Inf(2, 3), PassiveWeight(0.5))
	if err != nil {
		t.Fatalf("Combine: %v", err)
	}
	if got.Kind != Immediate || got.Priority != 2 || got.Weight != 1.5 {
		t.Errorf("got %v, want inf(2, 1.5)", got)
	}
}

func TestCombineTwoActive(t *testing.T) {
	pairs := [][2]Rate{
		{ExpRate(1), ExpRate(2)},
		{ExpRate(1), Inf(0, 1)},
		{Inf(0, 1), Inf(1, 1)},
	}
	for _, p := range pairs {
		_, err := Combine(p[0], p[1])
		var ie *IncompatibleError
		if !errors.As(err, &ie) {
			t.Errorf("Combine(%v, %v): want IncompatibleError, got %v", p[0], p[1], err)
		}
	}
}

func TestCombineUntimed(t *testing.T) {
	got, err := Combine(UntimedRate(), UntimedRate())
	if err != nil || got.Kind != Untimed {
		t.Errorf("untimed x untimed = (%v, %v), want untimed", got, err)
	}
	got, err = Combine(UntimedRate(), PassiveRate())
	if err != nil || got.Kind != Untimed {
		t.Errorf("untimed x passive = (%v, %v), want untimed", got, err)
	}
	if _, err := Combine(UntimedRate(), ExpRate(1)); err == nil {
		t.Error("untimed x exp should be rejected")
	}
}

func TestCombinePassivePassive(t *testing.T) {
	got, err := Combine(PassiveWeight(2), PassiveWeight(3))
	if err != nil {
		t.Fatalf("Combine: %v", err)
	}
	if got.Kind != Passive || got.Weight != 6 {
		t.Errorf("got %v, want passive(6)", got)
	}
}

func TestString(t *testing.T) {
	tests := []struct {
		r    Rate
		want string
	}{
		{UntimedRate(), "_"},
		{ExpRate(2.5), "exp(2.5)"},
		{Inf(1, 2), "inf(1, 2)"},
		{PassiveRate(), "passive"},
		{PassiveWeight(0.25), "passive(0.25)"},
	}
	for _, tt := range tests {
		if got := tt.r.String(); got != tt.want {
			t.Errorf("String(%#v) = %q, want %q", tt.r, got, tt.want)
		}
	}
}

// Property: Combine is symmetric up to error presence.
func TestQuickCombineSymmetric(t *testing.T) {
	mk := func(kind uint8, lam float64) Rate {
		switch kind % 4 {
		case 0:
			return UntimedRate()
		case 1:
			return ExpRate(1 + lam*lam)
		case 2:
			return Inf(int(kind/4)%3, 1+lam*lam)
		default:
			return PassiveWeight(1 + lam*lam)
		}
	}
	f := func(ka, kb uint8, la, lb float64) bool {
		a, b := mk(ka, la), mk(kb, lb)
		r1, e1 := Combine(a, b)
		r2, e2 := Combine(b, a)
		if (e1 == nil) != (e2 == nil) {
			return false
		}
		if e1 != nil {
			return true
		}
		return r1 == r2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a successful combination of valid rates is itself valid.
func TestQuickCombineValid(t *testing.T) {
	f := func(ka, kb uint8, la, lb float64) bool {
		mk := func(kind uint8, lam float64) Rate {
			switch kind % 4 {
			case 0:
				return UntimedRate()
			case 1:
				return ExpRate(1 + lam*lam)
			case 2:
				return Inf(int(kind/4)%3, 1+lam*lam)
			default:
				return PassiveWeight(1 + lam*lam)
			}
		}
		a, b := mk(ka, la), mk(kb, lb)
		r, err := Combine(a, b)
		if err != nil {
			return true
		}
		return r.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
