// Package fault defines the typed failures of the pipeline's
// fault-tolerance layer and the panic-recovery helper every worker pool
// uses.
//
// Two failure families live here because every layer (lts, ctmc, sim,
// core) produces them and no layer may import another for its error
// types:
//
//   - CanceledError: cooperative cancellation observed at a poll point.
//     Workers poll at level/iteration/tile/point boundaries, so
//     cancellation is prompt but never changes the floats of work that
//     already completed.
//   - WorkerPanicError: a panic recovered inside a worker pool (or the
//     equivalent sequential loop), carrying the worker index, the task
//     identity, and the stack — the process survives, and the lowest
//     task index wins the attribution, matching the pools' existing
//     lowest-index error rule.
package fault

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
)

// ErrWorkerPanic is the sentinel every WorkerPanicError matches via
// errors.Is, so callers can classify recovered panics without knowing the
// pool they came from.
var ErrWorkerPanic = errors.New("worker panicked")

// CanceledError reports that a computation observed its context's
// cancellation at a poll point and stopped. It wraps the context's error
// (context.Canceled or context.DeadlineExceeded), so
// errors.Is(err, context.Canceled) keeps working through any nesting.
type CanceledError struct {
	// Phase names the interrupted computation ("lts.generate",
	// "ctmc.steady-state", "ctmc.transient", "sim", "core.sweep").
	Phase string
	// Point is the sweep-point or replication index being processed when
	// the cancellation was observed, or -1 when not applicable.
	Point int
	// Iteration is the iteration, BFS level, or event count at the poll
	// point that observed the cancellation, or -1 when not applicable.
	Iteration int
	// Err is the context's reported cause.
	Err error
}

// Error implements the error interface.
func (e *CanceledError) Error() string {
	msg := fmt.Sprintf("%s canceled", e.Phase)
	if e.Point >= 0 {
		msg += fmt.Sprintf(" at point %d", e.Point)
	}
	if e.Iteration >= 0 {
		msg += fmt.Sprintf(" at iteration %d", e.Iteration)
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap exposes the context error to errors.Is/As.
func (e *CanceledError) Unwrap() error { return e.Err }

// Check polls ctx at a cancellation point: it returns nil when ctx is nil
// or still live, and a *CanceledError identifying the phase, point, and
// iteration otherwise. Pass -1 for an inapplicable point or iteration.
func Check(ctx context.Context, phase string, point, iteration int) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return &CanceledError{Phase: phase, Point: point, Iteration: iteration, Err: ctx.Err()}
	default:
		return nil
	}
}

// WorkerPanicError reports a panic recovered inside a worker pool. The
// pool survives, records the error under its usual lowest-task-index
// attribution, and surfaces it like any other task failure.
type WorkerPanicError struct {
	// Pool names the pool ("lts.generate", "ctmc.jacobi", "ctmc.batch",
	// "core.sweep", "sim.replications").
	Pool string
	// Worker is the index of the worker goroutine that recovered the
	// panic (0 on a sequential path).
	Worker int
	// Task identifies the panicked task ("point 3", "block 7", …).
	Task string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error implements the error interface.
func (e *WorkerPanicError) Error() string {
	return fmt.Sprintf("%s: worker %d panicked on %s: %v", e.Pool, e.Worker, e.Task, e.Value)
}

// Unwrap exposes the panic value when it was itself an error (panics of
// the panic(err) form), so errors.Is/As see through the recovery.
func (e *WorkerPanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Is matches the ErrWorkerPanic sentinel.
func (e *WorkerPanicError) Is(target error) bool { return target == ErrWorkerPanic }

// Guard runs fn and converts a panic into a *WorkerPanicError for the
// given pool, worker, and task. It is the one recovery path both the
// worker pools and their sequential (workers == 1) twins use, so a panic
// surfaces identically at any worker count.
func Guard(pool string, worker int, task string, fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &WorkerPanicError{
				Pool:   pool,
				Worker: worker,
				Task:   task,
				Value:  v,
				Stack:  debug.Stack(),
			}
		}
	}()
	return fn()
}
