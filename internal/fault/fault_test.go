package fault

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestCheck(t *testing.T) {
	if err := Check(nil, "x", -1, -1); err != nil {
		t.Fatalf("nil context: got %v", err)
	}
	if err := Check(context.Background(), "x", -1, -1); err != nil {
		t.Fatalf("live context: got %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Check(ctx, "ctmc.steady-state", 3, 42)
	if err == nil {
		t.Fatal("canceled context: got nil")
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("got %T, want *CanceledError", err)
	}
	if ce.Phase != "ctmc.steady-state" || ce.Point != 3 || ce.Iteration != 42 {
		t.Fatalf("wrong attribution: %+v", ce)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatal("errors.Is(err, context.Canceled) is false")
	}
	want := "ctmc.steady-state canceled at point 3 at iteration 42: context canceled"
	if got := err.Error(); got != want {
		t.Fatalf("message %q, want %q", got, want)
	}
}

func TestCanceledErrorOmitsInapplicableFields(t *testing.T) {
	e := &CanceledError{Phase: "lts.generate", Point: -1, Iteration: -1, Err: context.DeadlineExceeded}
	got := e.Error()
	if strings.Contains(got, "point") || strings.Contains(got, "iteration") {
		t.Fatalf("message %q should omit point/iteration", got)
	}
	if !errors.Is(e, context.DeadlineExceeded) {
		t.Fatal("deadline cause not visible to errors.Is")
	}
}

func TestGuardRecoversPanic(t *testing.T) {
	err := Guard("ctmc.jacobi", 2, "block 7", func() error { panic("boom") })
	if err == nil {
		t.Fatal("got nil error from panicking fn")
	}
	var wpe *WorkerPanicError
	if !errors.As(err, &wpe) {
		t.Fatalf("got %T, want *WorkerPanicError", err)
	}
	if wpe.Pool != "ctmc.jacobi" || wpe.Worker != 2 || wpe.Task != "block 7" || wpe.Value != "boom" {
		t.Fatalf("wrong attribution: %+v", wpe)
	}
	if len(wpe.Stack) == 0 {
		t.Fatal("no stack recorded")
	}
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatal("errors.Is(err, ErrWorkerPanic) is false")
	}
	want := "ctmc.jacobi: worker 2 panicked on block 7: boom"
	if got := err.Error(); got != want {
		t.Fatalf("message %q, want %q", got, want)
	}
}

func TestGuardPassesThroughResults(t *testing.T) {
	if err := Guard("p", 0, "t", func() error { return nil }); err != nil {
		t.Fatalf("nil-returning fn: got %v", err)
	}
	sentinel := errors.New("ordinary failure")
	if err := Guard("p", 0, "t", func() error { return sentinel }); err != sentinel {
		t.Fatalf("error-returning fn: got %v, want the error itself", err)
	}
}

func TestWorkerPanicUnwrapsErrorValues(t *testing.T) {
	inner := fmt.Errorf("wrapped: %w", context.Canceled)
	err := Guard("core.sweep", 1, "point 4", func() error { panic(inner) })
	if !errors.Is(err, context.Canceled) {
		t.Fatal("panic(err) value not visible through Unwrap")
	}
	var wpe *WorkerPanicError
	if !errors.As(err, &wpe) || wpe.Unwrap() != inner {
		t.Fatal("Unwrap should return the panic's error value")
	}
	// Non-error panic values unwrap to nil.
	plain := &WorkerPanicError{Value: 42}
	if plain.Unwrap() != nil {
		t.Fatal("non-error panic value should unwrap to nil")
	}
}
