// Package measure implements the reward-based performance-measure
// companion language of the paper (Sect. 4):
//
//	MEASURE throughput IS
//	  ENABLED(C.process_result_packet) -> TRANS_REWARD(1);
//	MEASURE energy IS
//	  ENABLED(S.monitor_idle_server)   -> STATE_REWARD(2)
//	  ENABLED(S.monitor_busy_server)   -> STATE_REWARD(3)
//
// A STATE_REWARD clause accrues its value per unit of time while the named
// action is locally enabled; a TRANS_REWARD clause accrues its value each
// time a transition involving the named action fires. Measures evaluate
// exactly on a solved CTMC and are estimated by the simulation engine.
package measure

import (
	"fmt"
	"strings"

	"repro/internal/ctmc"
	"repro/internal/lts"
	"repro/internal/stats"
)

// RewardKind selects how a clause accrues reward.
type RewardKind int

// Reward kinds.
const (
	// StateReward accrues per unit time while the predicate holds.
	StateReward RewardKind = iota + 1
	// TransReward accrues per firing of a matching transition.
	TransReward
)

// String returns the source-level keyword of the kind.
func (k RewardKind) String() string {
	switch k {
	case StateReward:
		return "STATE_REWARD"
	case TransReward:
		return "TRANS_REWARD"
	default:
		return "unknown"
	}
}

// Clause is one reward clause of a measure.
type Clause struct {
	// Instance and Action name the predicate ENABLED(Instance.Action).
	Instance, Action string
	// Kind selects state or transition reward.
	Kind RewardKind
	// Value is the reward value.
	Value float64
}

// Pred returns the canonical "Instance.Action" predicate name.
func (c Clause) Pred() string { return c.Instance + "." + c.Action }

// Measure is a named list of reward clauses, or a derived ratio of two
// other measures (MEASURE x IS RATIO(num, den) — e.g. energy per request
// as RATIO(energy, throughput)).
type Measure struct {
	// Name identifies the measure.
	Name string
	// Clauses are accumulated additively (empty for derived measures).
	Clauses []Clause
	// Derived marks a ratio measure; Num and Den name its operands.
	Derived  bool
	Num, Den string
}

// IsBase reports whether the measure is evaluated from rewards directly.
func (m Measure) IsBase() bool { return !m.Derived }

// StatePreds returns the generation-time predicates the measure's
// STATE_REWARD clauses require.
func (m Measure) StatePreds() []lts.StatePred {
	var out []lts.StatePred
	for _, c := range m.Clauses {
		if c.Kind == StateReward {
			out = append(out, lts.StatePred{Instance: c.Instance, Action: c.Action})
		}
	}
	return out
}

// StatePreds collects the predicates required by a set of measures,
// deduplicated.
func StatePreds(ms []Measure) []lts.StatePred {
	seen := make(map[lts.StatePred]bool)
	var out []lts.StatePred
	for _, m := range ms {
		for _, p := range m.StatePreds() {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	return out
}

// TransPreds collects the "Instance.Action" pairs named by TRANS_REWARD
// clauses of a set of measures, deduplicated: the transition activities an
// analysis observes through throughputs.
func TransPreds(ms []Measure) []string {
	seen := make(map[string]bool)
	var out []string
	for _, m := range ms {
		for _, c := range m.Clauses {
			if c.Kind != TransReward {
				continue
			}
			if p := c.Pred(); !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	return out
}

// ObservedMatcher returns a matcher selecting every transition label that
// involves a TRANS_REWARD predicate of ms — the label set a minimizing
// generation must keep computable (lts.FoldOptions.Observed).
func ObservedMatcher(ms []Measure) func(label string) bool {
	preds := TransPreds(ms)
	return func(label string) bool {
		for _, p := range preds {
			if lts.LabelInvolves(label, p) {
				return true
			}
		}
		return false
	}
}

// EvalAll evaluates a set of measures on a solved chain, resolving
// derived ratio measures against the base values.
func EvalAll(ms []Measure, c *ctmc.CTMC, pi []float64) (map[string]float64, error) {
	out := make(map[string]float64, len(ms))
	for _, m := range ms {
		if m.Derived {
			continue
		}
		v, err := m.EvalCTMC(c, pi)
		if err != nil {
			return nil, err
		}
		out[m.Name] = v
	}
	for _, m := range ms {
		if !m.Derived {
			continue
		}
		num, okN := out[m.Num]
		den, okD := out[m.Den]
		if !okN || !okD {
			return nil, fmt.Errorf("measure %s: ratio operands %q/%q not both defined before it",
				m.Name, m.Num, m.Den)
		}
		if den == 0 {
			out[m.Name] = 0
		} else {
			out[m.Name] = num / den
		}
	}
	return out, nil
}

// EvalCTMC computes the exact steady-state value of the measure on a
// solved chain. The LTS must have been generated with the predicates from
// StatePreds. Derived measures must be evaluated with EvalAll.
func (m Measure) EvalCTMC(c *ctmc.CTMC, pi []float64) (float64, error) {
	if m.Derived {
		return 0, fmt.Errorf("measure %s: derived measures require EvalAll", m.Name)
	}
	total := 0.0
	for _, cl := range m.Clauses {
		switch cl.Kind {
		case StateReward:
			p, err := c.ProbLocallyEnabled(pi, cl.Pred())
			if err != nil {
				return 0, fmt.Errorf("measure %s: %w", m.Name, err)
			}
			total += cl.Value * p
		case TransReward:
			pred := cl.Pred()
			total += cl.Value * c.Throughput(pi, func(label string) bool {
				return lts.LabelInvolves(label, pred)
			}, nil)
		default:
			return 0, fmt.Errorf("measure %s: invalid reward kind", m.Name)
		}
	}
	return total, nil
}

// DeriveIntervals resolves the derived (ratio) measures of ms against a
// map of base estimates, propagating uncertainty to first order: the
// relative half-width of a ratio is the sum of the operands' relative
// half-widths. The map is extended in place and returned.
func DeriveIntervals(ms []Measure, base map[string]stats.Interval) (map[string]stats.Interval, error) {
	for _, m := range ms {
		if !m.Derived {
			continue
		}
		num, okN := base[m.Num]
		den, okD := base[m.Den]
		if !okN || !okD {
			return nil, fmt.Errorf("measure %s: ratio operands %q/%q not both estimated",
				m.Name, m.Num, m.Den)
		}
		ci := stats.Interval{Level: num.Level, N: num.N}
		if den.Mean != 0 {
			ci.Mean = num.Mean / den.Mean
			rel := 0.0
			if num.Mean != 0 {
				rel += abs(num.HalfWidth / num.Mean)
			}
			rel += abs(den.HalfWidth / den.Mean)
			ci.HalfWidth = abs(ci.Mean) * rel
		}
		base[m.Name] = ci
	}
	return base, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Parse reads measure definitions in the companion-language syntax shown
// in the package comment. Clauses may be separated by whitespace; measures
// end at the next MEASURE keyword or end of input; a trailing ";" after a
// measure is accepted.
func Parse(src string) ([]Measure, error) {
	toks := tokenize(src)
	p := &parser{toks: toks}
	var out []Measure
	for !p.eof() {
		m, err := p.parseMeasure()
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("measure: no MEASURE definitions found")
	}
	return out, nil
}

func tokenize(src string) []string {
	src = strings.NewReplacer(
		"(", " ( ", ")", " ) ", ";", " ; ", "->", " -> ", ",", " , ",
	).Replace(src)
	return strings.Fields(src)
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() string {
	if p.eof() {
		return ""
	}
	return p.toks[p.pos]
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expect(want string) error {
	if got := p.next(); got != want {
		return fmt.Errorf("measure: expected %q, found %q", want, got)
	}
	return nil
}

func (p *parser) parseMeasure() (Measure, error) {
	var m Measure
	if err := p.expect("MEASURE"); err != nil {
		return m, err
	}
	m.Name = p.next()
	if m.Name == "" {
		return m, fmt.Errorf("measure: missing measure name")
	}
	if err := p.expect("IS"); err != nil {
		return m, err
	}
	if p.peek() == "RATIO" {
		p.next()
		if err := p.expect("("); err != nil {
			return m, err
		}
		m.Num = strings.TrimSuffix(p.next(), ",")
		if p.peek() == "," {
			p.next()
		}
		m.Den = p.next()
		if err := p.expect(")"); err != nil {
			return m, err
		}
		if p.peek() == ";" {
			p.next()
		}
		if m.Num == "" || m.Den == "" {
			return m, fmt.Errorf("measure %s: RATIO needs two operand names", m.Name)
		}
		m.Derived = true
		return m, nil
	}
	for {
		if p.eof() || p.peek() == "MEASURE" {
			break
		}
		if p.peek() == ";" {
			p.next()
			break
		}
		cl, err := p.parseClause()
		if err != nil {
			return m, err
		}
		m.Clauses = append(m.Clauses, cl)
	}
	if len(m.Clauses) == 0 {
		return m, fmt.Errorf("measure %s: no clauses", m.Name)
	}
	return m, nil
}

func (p *parser) parseClause() (Clause, error) {
	var c Clause
	if err := p.expect("ENABLED"); err != nil {
		return c, err
	}
	if err := p.expect("("); err != nil {
		return c, err
	}
	pred := p.next()
	dot := strings.IndexByte(pred, '.')
	if dot <= 0 || dot == len(pred)-1 {
		return c, fmt.Errorf("measure: predicate %q is not of the form Instance.action", pred)
	}
	c.Instance, c.Action = pred[:dot], pred[dot+1:]
	if err := p.expect(")"); err != nil {
		return c, err
	}
	if err := p.expect("->"); err != nil {
		return c, err
	}
	switch kw := p.next(); kw {
	case "STATE_REWARD":
		c.Kind = StateReward
	case "TRANS_REWARD":
		c.Kind = TransReward
	default:
		return c, fmt.Errorf("measure: expected STATE_REWARD or TRANS_REWARD, found %q", kw)
	}
	if err := p.expect("("); err != nil {
		return c, err
	}
	if _, err := fmt.Sscanf(p.next(), "%g", &c.Value); err != nil {
		return c, fmt.Errorf("measure: invalid reward value: %w", err)
	}
	if err := p.expect(")"); err != nil {
		return c, err
	}
	return c, nil
}
