package measure

import (
	"math"
	"strings"
	"testing"

	"repro/internal/aemilia"
	"repro/internal/ctmc"
	"repro/internal/elab"
	"repro/internal/lts"
	"repro/internal/rates"
	"repro/internal/stats"
)

func TestParse(t *testing.T) {
	src := `
MEASURE throughput IS
  ENABLED(C.process_result_packet) -> TRANS_REWARD(1);
MEASURE waiting_time IS
  ENABLED(C.monitor_waiting_client) -> STATE_REWARD(1);
MEASURE energy IS
  ENABLED(S.monitor_idle_server)    -> STATE_REWARD(2)
  ENABLED(S.monitor_busy_server)    -> STATE_REWARD(3)
  ENABLED(S.monitor_awaking_server) -> STATE_REWARD(2)
`
	ms, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(ms) != 3 {
		t.Fatalf("measures = %d, want 3", len(ms))
	}
	if ms[0].Name != "throughput" || len(ms[0].Clauses) != 1 {
		t.Errorf("throughput parsed wrong: %+v", ms[0])
	}
	c := ms[0].Clauses[0]
	if c.Instance != "C" || c.Action != "process_result_packet" ||
		c.Kind != TransReward || c.Value != 1 {
		t.Errorf("clause = %+v", c)
	}
	if ms[2].Name != "energy" || len(ms[2].Clauses) != 3 {
		t.Errorf("energy parsed wrong: %+v", ms[2])
	}
	if ms[2].Clauses[1].Value != 3 || ms[2].Clauses[1].Kind != StateReward {
		t.Errorf("energy clause 2 = %+v", ms[2].Clauses[1])
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name, src, want string
	}{
		{"empty", "", "no MEASURE"},
		{"no-is", "MEASURE x ENABLED(a.b) -> STATE_REWARD(1)", `expected "IS"`},
		{"bad-pred", "MEASURE x IS ENABLED(nodot) -> STATE_REWARD(1)", "Instance.action"},
		{"bad-kind", "MEASURE x IS ENABLED(a.b) -> OTHER_REWARD(1)", "STATE_REWARD or TRANS_REWARD"},
		{"no-clauses", "MEASURE x IS ; MEASURE y IS ENABLED(a.b) -> STATE_REWARD(1)", "no clauses"},
		{"bad-value", "MEASURE x IS ENABLED(a.b) -> STATE_REWARD(zz)", "invalid reward value"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(tt.src)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Errorf("err = %v, want containing %q", err, tt.want)
			}
		})
	}
}

func TestStatePredsDedup(t *testing.T) {
	ms, err := Parse(`
MEASURE a IS ENABLED(X.m) -> STATE_REWARD(1) ENABLED(X.m) -> STATE_REWARD(2);
MEASURE b IS ENABLED(X.m) -> STATE_REWARD(3) ENABLED(Y.n) -> TRANS_REWARD(1)
`)
	if err != nil {
		t.Fatal(err)
	}
	preds := StatePreds(ms)
	if len(preds) != 1 || preds[0].Instance != "X" || preds[0].Action != "m" {
		t.Errorf("preds = %+v, want just X.m", preds)
	}
}

// workRest builds a two-state worker: Work (exp 2) <-> Rest (exp 1), with
// passive unattached monitor self-loops in each phase.
func workRest(t *testing.T) (*ctmc.CTMC, []float64) {
	t.Helper()
	et := aemilia.NewElemType("W_Type", nil, []string{"mon_work", "mon_rest"},
		aemilia.NewBehavior("Work", nil,
			aemilia.Ch(
				aemilia.Pre("finish", rates.ExpRate(2), aemilia.Invoke("Rest")),
				aemilia.Pre("mon_work", rates.PassiveRate(), aemilia.Invoke("Work")),
			)),
		aemilia.NewBehavior("Rest", nil,
			aemilia.Ch(
				aemilia.Pre("resume", rates.ExpRate(1), aemilia.Invoke("Work")),
				aemilia.Pre("mon_rest", rates.PassiveRate(), aemilia.Invoke("Rest")),
			)),
	)
	a := aemilia.NewArchiType("WR", []*aemilia.ElemType{et},
		[]*aemilia.Instance{aemilia.NewInstance("W", "W_Type")}, nil)
	m, err := elab.Elaborate(a)
	if err != nil {
		t.Fatal(err)
	}
	ms := []Measure{
		{Name: "p_work", Clauses: []Clause{
			{Instance: "W", Action: "mon_work", Kind: StateReward, Value: 1},
		}},
	}
	l, err := lts.Generate(m, lts.GenerateOptions{Predicates: StatePreds(ms)})
	if err != nil {
		t.Fatal(err)
	}
	c, err := ctmc.Build(l)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.SteadyState(ctmc.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return c, pi
}

func TestEvalCTMCStateReward(t *testing.T) {
	c, pi := workRest(t)
	m := Measure{Name: "p_work", Clauses: []Clause{
		{Instance: "W", Action: "mon_work", Kind: StateReward, Value: 1},
	}}
	got, err := m.EvalCTMC(c, pi)
	if err != nil {
		t.Fatal(err)
	}
	// P(work) = (1/2) / (1/2 + 1) = 1/3.
	if math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("P(work) = %v, want 1/3", got)
	}
	// Scaled reward.
	m.Clauses[0].Value = 6
	got, err = m.EvalCTMC(c, pi)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > 1e-9 {
		t.Errorf("reward = %v, want 2", got)
	}
}

func TestEvalCTMCTransReward(t *testing.T) {
	c, pi := workRest(t)
	m := Measure{Name: "rate_finish", Clauses: []Clause{
		{Instance: "W", Action: "finish", Kind: TransReward, Value: 1},
	}}
	got, err := m.EvalCTMC(c, pi)
	if err != nil {
		t.Fatal(err)
	}
	// Cycle rate: P(work)*2 = 2/3.
	if math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("finish rate = %v, want 2/3", got)
	}
}

func TestEvalCTMCUnknownPredicate(t *testing.T) {
	c, pi := workRest(t)
	m := Measure{Name: "bad", Clauses: []Clause{
		{Instance: "W", Action: "nope", Kind: StateReward, Value: 1},
	}}
	if _, err := m.EvalCTMC(c, pi); err == nil {
		t.Fatal("unknown predicate should error")
	}
}

func TestRewardKindString(t *testing.T) {
	if StateReward.String() != "STATE_REWARD" || TransReward.String() != "TRANS_REWARD" {
		t.Error("RewardKind.String wrong")
	}
	if RewardKind(0).String() != "unknown" {
		t.Error("zero kind should be unknown")
	}
}

func TestParseRatio(t *testing.T) {
	ms, err := Parse(`
MEASURE energy IS ENABLED(S.mon) -> STATE_REWARD(2);
MEASURE throughput IS ENABLED(C.done) -> TRANS_REWARD(1);
MEASURE energy_per_request IS RATIO(energy, throughput)
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(ms) != 3 {
		t.Fatalf("measures = %d", len(ms))
	}
	r := ms[2]
	if !r.Derived || r.Num != "energy" || r.Den != "throughput" {
		t.Errorf("ratio parsed wrong: %+v", r)
	}
	if r.IsBase() {
		t.Error("derived measure should not be base")
	}
	if len(StatePreds(ms)) != 1 {
		t.Errorf("ratio measures must not contribute predicates")
	}
}

func TestParseRatioErrors(t *testing.T) {
	if _, err := Parse("MEASURE x IS RATIO(a)"); err == nil {
		t.Error("one-operand RATIO should fail")
	}
}

func TestEvalAllWithRatio(t *testing.T) {
	c, pi := workRest(t)
	ms := []Measure{
		{Name: "p_work", Clauses: []Clause{
			{Instance: "W", Action: "mon_work", Kind: StateReward, Value: 1},
		}},
		{Name: "finish_rate", Clauses: []Clause{
			{Instance: "W", Action: "finish", Kind: TransReward, Value: 1},
		}},
		{Name: "work_per_finish", Derived: true, Num: "p_work", Den: "finish_rate"},
	}
	vals, err := EvalAll(ms, c, pi)
	if err != nil {
		t.Fatal(err)
	}
	// P(work)=1/3, finish rate=2/3 → ratio 1/2.
	if math.Abs(vals["work_per_finish"]-0.5) > 1e-9 {
		t.Errorf("ratio = %v, want 0.5", vals["work_per_finish"])
	}
	// Derived measures need EvalAll.
	if _, err := ms[2].EvalCTMC(c, pi); err == nil {
		t.Error("EvalCTMC on a derived measure should fail")
	}
	// Missing operand.
	bad := []Measure{{Name: "r", Derived: true, Num: "nope", Den: "p_work"}}
	if _, err := EvalAll(append(ms[:1], bad...), c, pi); err == nil {
		t.Error("missing operand should fail")
	}
}

func TestDeriveIntervals(t *testing.T) {
	ms := []Measure{
		{Name: "num"}, {Name: "den"},
		{Name: "r", Derived: true, Num: "num", Den: "den"},
	}
	base := map[string]stats.Interval{
		"num": {Mean: 6, HalfWidth: 0.6, Level: 0.9, N: 30},
		"den": {Mean: 3, HalfWidth: 0.3, Level: 0.9, N: 30},
	}
	got, err := DeriveIntervals(ms, base)
	if err != nil {
		t.Fatal(err)
	}
	ci := got["r"]
	if math.Abs(ci.Mean-2) > 1e-12 {
		t.Errorf("ratio mean = %v, want 2", ci.Mean)
	}
	// Relative half-widths: 0.1 + 0.1 = 0.2 → half-width 0.4.
	if math.Abs(ci.HalfWidth-0.4) > 1e-12 {
		t.Errorf("ratio half-width = %v, want 0.4", ci.HalfWidth)
	}
	// Zero denominator yields a zero interval instead of Inf.
	base["den"] = stats.Interval{Mean: 0}
	got, err = DeriveIntervals(ms, base)
	if err != nil || got["r"].Mean != 0 {
		t.Errorf("zero denominator: %v %v", got["r"], err)
	}
	// Missing operand errors.
	if _, err := DeriveIntervals(ms, map[string]stats.Interval{"num": {}}); err == nil {
		t.Error("missing operand should fail")
	}
}
