package statespace

import (
	"fmt"
	"testing"

	"repro/internal/rates"
)

func TestSymbolsTauIsZero(t *testing.T) {
	s := NewSymbols()
	if got := s.Intern(TauName); got != TauIndex {
		t.Fatalf("Intern(tau) = %d, want %d", got, TauIndex)
	}
	if s.Name(TauIndex) != TauName {
		t.Fatalf("Name(0) = %q, want %q", s.Name(TauIndex), TauName)
	}
}

func TestSymbolsInternStable(t *testing.T) {
	s := NewSymbols()
	a := s.Intern("a")
	b := s.Intern("b")
	if a == b {
		t.Fatal("distinct names share an index")
	}
	if s.Intern("a") != a || s.Intern("b") != b {
		t.Fatal("re-interning changed the index")
	}
	if i, ok := s.Lookup("b"); !ok || i != b {
		t.Fatalf("Lookup(b) = (%d, %t), want (%d, true)", i, ok, b)
	}
	if _, ok := s.Lookup("missing"); ok {
		t.Fatal("Lookup of an absent name succeeded")
	}
}

func TestInternerBasic(t *testing.T) {
	in := NewInterner()
	id1, fresh1 := in.Intern([]byte("alpha"))
	if !fresh1 {
		t.Fatal("first Intern not fresh")
	}
	id2, fresh2 := in.Intern([]byte("alpha"))
	if fresh2 || id2 != id1 {
		t.Fatalf("re-Intern = (%d, %t), want (%d, false)", id2, fresh2, id1)
	}
	if got := string(in.Bytes(id1)); got != "alpha" {
		t.Fatalf("Bytes(%d) = %q, want %q", id1, got, "alpha")
	}
	if in.Len() != 1 {
		t.Fatalf("Len = %d, want 1", in.Len())
	}
	if id, ok := in.Lookup([]byte("alpha")); !ok || id != id1 {
		t.Fatalf("Lookup = (%d, %t), want (%d, true)", id, ok, id1)
	}
	if _, ok := in.Lookup([]byte("beta")); ok {
		t.Fatal("Lookup of an absent key succeeded")
	}
}

// TestInternerIDsAreDense verifies ids are assigned 0,1,2,… in first-seen
// order — the property that lets callers index flat side tables by id.
func TestInternerIDsAreDense(t *testing.T) {
	in := NewInterner()
	for i := 0; i < 1000; i++ {
		key := []byte(fmt.Sprintf("key-%04d", i))
		id, fresh := in.Intern(key)
		if !fresh || id != uint32(i) {
			t.Fatalf("Intern #%d = (%d, %t), want (%d, true)", i, id, fresh, i)
		}
	}
	for i := 0; i < 1000; i++ {
		key := []byte(fmt.Sprintf("key-%04d", i))
		if id, fresh := in.Intern(key); fresh || id != uint32(i) {
			t.Fatalf("re-Intern #%d = (%d, %t)", i, id, fresh)
		}
		if got := string(in.Bytes(uint32(i))); got != string(key) {
			t.Fatalf("Bytes(%d) = %q after growth, want %q", i, got, key)
		}
	}
}

// TestInternerCollisions drives many keys through a table that starts tiny
// relative to the load, forcing hash collisions, probe chains, and several
// grow/rehash cycles; every key must keep resolving to its own id, and
// distinct keys must never share one.
func TestInternerCollisions(t *testing.T) {
	in := NewInterner()
	const n = 20000
	ids := make(map[uint32]string, n)
	for i := 0; i < n; i++ {
		// Keys engineered to share long prefixes, which stresses the
		// byte-wise equality check behind a matching hash slot.
		key := []byte(fmt.Sprintf("common-prefix-%d-%d", i%7, i))
		id, fresh := in.Intern(key)
		if !fresh {
			t.Fatalf("key %q reported as duplicate", key)
		}
		if prev, clash := ids[id]; clash {
			t.Fatalf("id %d assigned to both %q and %q", id, prev, key)
		}
		ids[id] = string(key)
	}
	if in.Len() != n {
		t.Fatalf("Len = %d, want %d", in.Len(), n)
	}
	for id, key := range ids {
		if got := string(in.Bytes(id)); got != key {
			t.Fatalf("Bytes(%d) = %q, want %q", id, got, key)
		}
		if got, fresh := in.Intern([]byte(key)); fresh || got != id {
			t.Fatalf("re-Intern(%q) = (%d, %t), want (%d, false)", key, got, fresh, id)
		}
	}
}

// TestInternerEmptyKey: the empty key is a valid (if unusual) key and must
// intern exactly once.
func TestInternerEmptyKey(t *testing.T) {
	in := NewInterner()
	id, fresh := in.Intern(nil)
	if !fresh {
		t.Fatal("empty key not fresh on first Intern")
	}
	if id2, fresh2 := in.Intern([]byte{}); fresh2 || id2 != id {
		t.Fatalf("empty key re-Intern = (%d, %t), want (%d, false)", id2, fresh2, id)
	}
	if len(in.Bytes(id)) != 0 {
		t.Fatal("empty key round-trips non-empty")
	}
}

func TestCSRBuildSortsAndIndexes(t *testing.T) {
	edges := []Edge{
		{Src: 1, Dst: 0, Label: 2, Rate: rates.UntimedRate()},
		{Src: 0, Dst: 1, Label: 1, Rate: rates.UntimedRate()},
		{Src: 0, Dst: 0, Label: 1, Rate: rates.UntimedRate()},
		{Src: 0, Dst: 1, Label: 0, Rate: rates.UntimedRate()},
	}
	c := Build(3, edges)
	if c.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", c.NumEdges())
	}
	lo, hi := c.Row(0)
	if hi-lo != 3 {
		t.Fatalf("row 0 has %d edges, want 3", hi-lo)
	}
	// Canonical (label, dst) order within the row.
	wantLabel := []int32{0, 1, 1}
	wantDst := []int32{1, 0, 1}
	for i := lo; i < hi; i++ {
		if c.Label[i] != wantLabel[i-lo] || c.Dst[i] != wantDst[i-lo] {
			t.Fatalf("row 0 edge %d = (label %d, dst %d), want (%d, %d)",
				i-lo, c.Label[i], c.Dst[i], wantLabel[i-lo], wantDst[i-lo])
		}
	}
	if lo, hi := c.Row(2); lo != hi {
		t.Fatalf("row 2 should be empty, got %d edges", hi-lo)
	}
}

// TestCSRBuildStableOnTies: edges with identical (src, label, dst) keep
// their insertion order, which pins down float accumulation order in every
// consumer.
func TestCSRBuildStableOnTies(t *testing.T) {
	edges := []Edge{
		{Src: 0, Dst: 1, Label: 0, Rate: rates.ExpRate(1)},
		{Src: 0, Dst: 1, Label: 0, Rate: rates.ExpRate(2)},
		{Src: 0, Dst: 1, Label: 0, Rate: rates.ExpRate(3)},
	}
	c := Build(2, edges)
	for i, want := range []float64{1, 2, 3} {
		if c.Rate[i].Lambda != want {
			t.Fatalf("tie order not stable: Rate[%d].Lambda = %v, want %v",
				i, c.Rate[i].Lambda, want)
		}
	}
}
