// Package statespace provides the compact, interned state-space
// representation shared by the whole analysis pipeline: an arena-backed
// state interner that maps canonical byte encodings of global states to
// dense uint32 identifiers (internal/elab produces the encodings,
// internal/lts and internal/sim consume the identifiers), an append-only
// label symbol table shared by an LTS and every system derived from it by
// hiding, restriction or minimization, and CSR (compressed sparse row)
// transition storage that is the canonical form of an explicit transition
// system.
//
// Invariants:
//
//   - Interner identifiers are assigned in first-intern order, so a
//     deterministic exploration (BFS in internal/lts) yields the same
//     identifier for the same state on every run.
//   - Symbols index 0 is always the invisible action "tau".
//   - CSR edges are grouped by source row; rows built by Build are further
//     sorted by (label, destination), matching the historical canonical
//     transition order of internal/lts, so every float accumulation
//     downstream visits transitions in a reproducible order.
package statespace

// TauIndex is the symbol-table index reserved for the invisible action.
const TauIndex = 0

// TauName is the display name of the invisible action.
const TauName = "tau"

// Symbols is an append-only interned label table. Index 0 is always the
// invisible action. A Symbols instance is shared by an LTS and all its
// derived systems (hide/restrict/minimize copies), so a label keeps one
// index across a whole pipeline instead of being re-interned per copy.
// It is not synchronized: interning is single-writer (the goroutine that
// owns the pipeline); concurrent pipelines use separate instances.
type Symbols struct {
	names []string
	idx   map[string]int
}

// NewSymbols returns a table holding only the invisible action.
func NewSymbols() *Symbols {
	return &Symbols{
		names: []string{TauName},
		idx:   map[string]int{TauName: TauIndex},
	}
}

// Intern returns the index of name, adding it if needed.
func (t *Symbols) Intern(name string) int {
	if i, ok := t.idx[name]; ok {
		return i
	}
	i := len(t.names)
	t.names = append(t.names, name)
	t.idx[name] = i
	return i
}

// Lookup returns the index of name, if present.
func (t *Symbols) Lookup(name string) (int, bool) {
	i, ok := t.idx[name]
	return i, ok
}

// Name returns the label at index i.
func (t *Symbols) Name(i int) string { return t.names[i] }

// Len returns the number of interned labels.
func (t *Symbols) Len() int { return len(t.names) }
