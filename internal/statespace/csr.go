package statespace

import (
	"sort"
	"unsafe"

	"repro/internal/rates"
)

// Edge is one transition in edge-list form, used while a system is being
// built; Build converts an edge list into CSR storage.
type Edge struct {
	// Src and Dst are state indices.
	Src, Dst int32
	// Label indexes the pipeline's Symbols table.
	Label int32
	// Aux is an opaque per-edge annotation handle (0 = none). The
	// compositional-minimization generator uses it to key folded reward
	// attributions; Build carries it into the CSR Aux column only when at
	// least one edge sets it, so plain systems pay nothing.
	Aux int32
	// Rate is the timing annotation.
	Rate rates.Rate
}

// CSR is compressed-sparse-row transition storage: the canonical form of
// an explicit transition system. Dst, Label and Rate are parallel arrays;
// the edges of state s occupy positions RowStart[s]..RowStart[s+1].
// Rows produced by Build are sorted by (Label, Dst); derived systems
// (hiding relabels in place) preserve the parent's within-row order, which
// is still deterministic. A CSR is immutable once built — derived systems
// share the arrays that they do not change.
type CSR struct {
	RowStart []int32
	Dst      []int32
	Label    []int32
	Rate     []rates.Rate
	// Aux is the per-edge annotation column (nil when no edge carries
	// one); parallel to Dst like Label and Rate.
	Aux []int32
}

// NumEdges returns the number of stored transitions.
func (c *CSR) NumEdges() int { return len(c.Dst) }

// Row returns the index range of state s's transitions.
func (c *CSR) Row(s int) (lo, hi int32) { return c.RowStart[s], c.RowStart[s+1] }

// SizeBytes returns the resident size of the CSR arrays in bytes — the
// memory the canonical transition storage pins, used by the capacity
// accounting of `dpmassess lts -stats` / `solve -stats`.
func (c *CSR) SizeBytes() int {
	const rateSize = int(unsafe.Sizeof(rates.Rate{}))
	return 4*(len(c.RowStart)+len(c.Dst)+len(c.Label)+len(c.Aux)) + rateSize*len(c.Rate)
}

// Build constructs canonical CSR storage over n states from an edge list:
// edges grouped by source, each row sorted by (label, destination) with
// insertion order breaking exact ties (the sort is stable), so the result
// is a pure function of the edge list.
func Build(n int, edges []Edge) CSR {
	c := CSR{
		RowStart: make([]int32, n+1),
		Dst:      make([]int32, len(edges)),
		Label:    make([]int32, len(edges)),
		Rate:     make([]rates.Rate, len(edges)),
	}
	perm := make([]int32, len(edges))
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.SliceStable(perm, func(x, y int) bool {
		a, b := &edges[perm[x]], &edges[perm[y]]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		return a.Dst < b.Dst
	})
	for _, e := range edges {
		c.RowStart[e.Src+1]++
	}
	for s := 1; s <= n; s++ {
		c.RowStart[s] += c.RowStart[s-1]
	}
	hasAux := false
	for i := range edges {
		if edges[i].Aux != 0 {
			hasAux = true
			break
		}
	}
	if hasAux {
		c.Aux = make([]int32, len(edges))
	}
	for i, p := range perm {
		e := &edges[p]
		c.Dst[i] = e.Dst
		c.Label[i] = e.Label
		c.Rate[i] = e.Rate
		if hasAux {
			c.Aux[i] = e.Aux
		}
	}
	return c
}
