package statespace

import (
	"sort"

	"repro/internal/rates"
)

// Edge is one transition in edge-list form, used while a system is being
// built; Build converts an edge list into CSR storage.
type Edge struct {
	// Src and Dst are state indices.
	Src, Dst int32
	// Label indexes the pipeline's Symbols table.
	Label int32
	// Rate is the timing annotation.
	Rate rates.Rate
}

// CSR is compressed-sparse-row transition storage: the canonical form of
// an explicit transition system. Dst, Label and Rate are parallel arrays;
// the edges of state s occupy positions RowStart[s]..RowStart[s+1].
// Rows produced by Build are sorted by (Label, Dst); derived systems
// (hiding relabels in place) preserve the parent's within-row order, which
// is still deterministic. A CSR is immutable once built — derived systems
// share the arrays that they do not change.
type CSR struct {
	RowStart []int32
	Dst      []int32
	Label    []int32
	Rate     []rates.Rate
}

// NumEdges returns the number of stored transitions.
func (c *CSR) NumEdges() int { return len(c.Dst) }

// Row returns the index range of state s's transitions.
func (c *CSR) Row(s int) (lo, hi int32) { return c.RowStart[s], c.RowStart[s+1] }

// Build constructs canonical CSR storage over n states from an edge list:
// edges grouped by source, each row sorted by (label, destination) with
// insertion order breaking exact ties (the sort is stable), so the result
// is a pure function of the edge list.
func Build(n int, edges []Edge) CSR {
	c := CSR{
		RowStart: make([]int32, n+1),
		Dst:      make([]int32, len(edges)),
		Label:    make([]int32, len(edges)),
		Rate:     make([]rates.Rate, len(edges)),
	}
	perm := make([]int32, len(edges))
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.SliceStable(perm, func(x, y int) bool {
		a, b := &edges[perm[x]], &edges[perm[y]]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		return a.Dst < b.Dst
	})
	for _, e := range edges {
		c.RowStart[e.Src+1]++
	}
	for s := 1; s <= n; s++ {
		c.RowStart[s] += c.RowStart[s-1]
	}
	for i, p := range perm {
		e := &edges[p]
		c.Dst[i] = e.Dst
		c.Label[i] = e.Label
		c.Rate[i] = e.Rate
	}
	return c
}
