package statespace

import "bytes"

// Interner assigns dense uint32 identifiers to byte-string keys (canonical
// state encodings). Keys are stored back to back in one byte slab and
// located through an open-addressing hash table, so the steady-state cost
// of a hit is one hash, one probe chain, and one byte comparison — no
// allocation and no per-key string header. Identifiers are assigned in
// first-intern order.
//
// An Interner is single-writer: it is not safe for concurrent Intern
// calls. The parallel state-space generator keeps this invariant by
// funneling every intern through its sequential merge step — which is
// also what makes the assigned identifiers independent of the worker
// count (first-intern order is merge order, and merge order is BFS
// order).
type Interner struct {
	slab  []byte
	offs  []uint32 // offs[id]..offs[id+1] is the key of id; len = Len()+1
	table []uint32 // open addressing; 0 = empty, otherwise id+1
	mask  uint32
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	const initialSlots = 1024 // power of two
	return &Interner{
		offs:  make([]uint32, 1, 1025),
		table: make([]uint32, initialSlots),
		mask:  initialSlots - 1,
	}
}

// Len returns the number of interned keys.
func (in *Interner) Len() int { return len(in.offs) - 1 }

// SizeBytes returns the resident size of the interner in bytes: the key
// slab plus the offset and hash arrays. This is the state-table memory a
// generated system pins, surfaced by `dpmassess lts -stats` so the
// capacity effect of compositional minimization is measurable.
func (in *Interner) SizeBytes() int {
	return len(in.slab) + 4*len(in.offs) + 4*len(in.table)
}

// Bytes returns the stored key of an identifier. The slice aliases the
// arena and must not be modified.
func (in *Interner) Bytes(id uint32) []byte {
	return in.slab[in.offs[id]:in.offs[id+1]]
}

// fnv1a is the 64-bit FNV-1a hash.
func fnv1a(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// Intern returns the identifier of key, assigning the next free one when
// the key is new (fresh reports which). The key bytes are copied into the
// arena, so the caller may reuse its buffer.
func (in *Interner) Intern(key []byte) (id uint32, fresh bool) {
	h := uint32(fnv1a(key))
	i := h & in.mask
	for {
		e := in.table[i]
		if e == 0 {
			id = uint32(in.Len())
			in.slab = append(in.slab, key...)
			in.offs = append(in.offs, uint32(len(in.slab)))
			in.table[i] = id + 1
			if 4*uint64(in.Len()) >= 3*uint64(len(in.table)) {
				in.grow()
			}
			return id, true
		}
		if bytes.Equal(in.Bytes(e-1), key) {
			return e - 1, false
		}
		i = (i + 1) & in.mask
	}
}

// Lookup returns the identifier of key without interning it.
func (in *Interner) Lookup(key []byte) (uint32, bool) {
	h := uint32(fnv1a(key))
	i := h & in.mask
	for {
		e := in.table[i]
		if e == 0 {
			return 0, false
		}
		if bytes.Equal(in.Bytes(e-1), key) {
			return e - 1, true
		}
		i = (i + 1) & in.mask
	}
}

// grow doubles the hash table and rehashes every stored key.
func (in *Interner) grow() {
	next := make([]uint32, 2*len(in.table))
	mask := uint32(len(next) - 1)
	for id := 0; id < in.Len(); id++ {
		i := uint32(fnv1a(in.Bytes(uint32(id)))) & mask
		for next[i] != 0 {
			i = (i + 1) & mask
		}
		next[i] = uint32(id) + 1
	}
	in.table = next
	in.mask = mask
}
