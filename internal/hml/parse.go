package hml

import (
	"fmt"
	"strings"
)

// Parse reads a formula in the TwoTowers diagnostic syntax produced by
// Format:
//
//	TRUE
//	NOT(φ)
//	AND(φ; φ; …)
//	EXISTS_TRANS(LABEL(a); REACHED_STATE_SAT(φ))
//	EXISTS_WEAK_TRANS(LABEL(a); REACHED_STATE_SAT(φ))
//
// so that diagnostic formulas can be stored, edited, and re-checked
// against models (see the dpmassess mc subcommand).
func Parse(src string) (Formula, error) {
	p := &fparser{src: src}
	p.skipSpace()
	f, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("hml: trailing input at offset %d: %q", p.pos, p.rest())
	}
	return f, nil
}

type fparser struct {
	src string
	pos int
}

func (p *fparser) rest() string {
	r := p.src[p.pos:]
	if len(r) > 24 {
		r = r[:24] + "…"
	}
	return r
}

func (p *fparser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// eat consumes the keyword if present.
func (p *fparser) eat(kw string) bool {
	if strings.HasPrefix(p.src[p.pos:], kw) {
		p.pos += len(kw)
		return true
	}
	return false
}

func (p *fparser) expect(kw string) error {
	p.skipSpace()
	if !p.eat(kw) {
		return fmt.Errorf("hml: expected %q at offset %d, found %q", kw, p.pos, p.rest())
	}
	return nil
}

func (p *fparser) parseFormula() (Formula, error) {
	p.skipSpace()
	switch {
	case p.eat("TRUE"):
		return True{}, nil
	case p.eat("NOT"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		inner, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return Not{F: inner}, nil
	case p.eat("AND"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var fs []Formula
		for {
			inner, err := p.parseFormula()
			if err != nil {
				return nil, err
			}
			fs = append(fs, inner)
			p.skipSpace()
			if p.eat(";") {
				continue
			}
			break
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return And{Fs: fs}, nil
	case p.eat("EXISTS_WEAK_TRANS"):
		label, inner, err := p.parseTransBody()
		if err != nil {
			return nil, err
		}
		return DiamondWeak{Label: label, F: inner}, nil
	case p.eat("EXISTS_TRANS"):
		label, inner, err := p.parseTransBody()
		if err != nil {
			return nil, err
		}
		return Diamond{Label: label, F: inner}, nil
	default:
		return nil, fmt.Errorf("hml: expected formula at offset %d, found %q", p.pos, p.rest())
	}
}

// parseTransBody parses `(LABEL(a); REACHED_STATE_SAT(φ))`.
func (p *fparser) parseTransBody() (string, Formula, error) {
	if err := p.expect("("); err != nil {
		return "", nil, err
	}
	if err := p.expect("LABEL"); err != nil {
		return "", nil, err
	}
	if err := p.expect("("); err != nil {
		return "", nil, err
	}
	// The label runs to the matching closing parenthesis; labels contain
	// no parentheses themselves.
	end := strings.IndexByte(p.src[p.pos:], ')')
	if end < 0 {
		return "", nil, fmt.Errorf("hml: unterminated LABEL at offset %d", p.pos)
	}
	label := strings.TrimSpace(p.src[p.pos : p.pos+end])
	if label == "" {
		return "", nil, fmt.Errorf("hml: empty LABEL at offset %d", p.pos)
	}
	p.pos += end + 1
	if err := p.expect(";"); err != nil {
		return "", nil, err
	}
	if err := p.expect("REACHED_STATE_SAT"); err != nil {
		return "", nil, err
	}
	if err := p.expect("("); err != nil {
		return "", nil, err
	}
	inner, err := p.parseFormula()
	if err != nil {
		return "", nil, err
	}
	if err := p.expect(")"); err != nil {
		return "", nil, err
	}
	if err := p.expect(")"); err != nil {
		return "", nil, err
	}
	return label, inner, nil
}
