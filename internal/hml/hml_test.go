package hml

import (
	"strings"
	"testing"

	"repro/internal/lts"
	"repro/internal/rates"
)

// build constructs an LTS from (src, label, dst) triples; "tau" is the
// invisible action.
func build(n, initial int, edges [][3]any) *lts.LTS {
	l := lts.New(n)
	l.Initial = initial
	for _, e := range edges {
		src := e[0].(int)
		label := e[1].(string)
		dst := e[2].(int)
		li := lts.TauIndex
		if label != lts.TauName {
			li = l.LabelIndex(label)
		}
		l.AddTransition(src, dst, li, rates.UntimedRate())
	}
	return l
}

func TestSatStrongDiamond(t *testing.T) {
	// 0 -a-> 1 -b-> 2
	l := build(3, 0, [][3]any{{0, "a", 1}, {1, "b", 2}})
	c := NewChecker(l)
	if !c.Sat(0, Diamond{Label: "a", F: True{}}) {
		t.Error("<a>T should hold at 0")
	}
	if c.Sat(0, Diamond{Label: "b", F: True{}}) {
		t.Error("<b>T should not hold at 0")
	}
	if !c.Sat(0, Diamond{Label: "a", F: Diamond{Label: "b", F: True{}}}) {
		t.Error("<a><b>T should hold at 0")
	}
	if c.Sat(0, Diamond{Label: "zzz", F: True{}}) {
		t.Error("unknown label should be unsatisfiable")
	}
}

func TestSatWeakDiamond(t *testing.T) {
	// 0 -tau-> 1 -a-> 2 -tau-> 3 -b-> 4
	l := build(5, 0, [][3]any{
		{0, "tau", 1}, {1, "a", 2}, {2, "tau", 3}, {3, "b", 4},
	})
	c := NewChecker(l)
	if !c.Sat(0, DiamondWeak{Label: "a", F: True{}}) {
		t.Error("<<a>>T should hold at 0 (through tau)")
	}
	if c.Sat(0, Diamond{Label: "a", F: True{}}) {
		t.Error("strong <a>T should not hold at 0")
	}
	// <<a>> <<b>> T: after a, reach 2, tau to 3, then b.
	if !c.Sat(0, DiamondWeak{Label: "a", F: DiamondWeak{Label: "b", F: True{}}}) {
		t.Error("<<a>><<b>>T should hold at 0")
	}
	// Weak tau diamond: reachable by tau* only.
	if !c.Sat(0, DiamondWeak{Label: "tau", F: DiamondWeak{Label: "a", F: True{}}}) {
		t.Error("<<tau>><<a>>T should hold at 0")
	}
	if !c.Sat(2, DiamondWeak{Label: "tau", F: DiamondWeak{Label: "b", F: True{}}}) {
		t.Error("<<tau>><<b>>T should hold at 2")
	}
}

func TestSatNegationAndConjunction(t *testing.T) {
	// 0 -a-> 1, 0 -b-> 2
	l := build(3, 0, [][3]any{{0, "a", 1}, {0, "b", 2}})
	c := NewChecker(l)
	f := And{Fs: []Formula{
		Diamond{Label: "a", F: True{}},
		Diamond{Label: "b", F: True{}},
		Not{F: Diamond{Label: "c", F: True{}}},
	}}
	if !c.Sat(0, f) {
		t.Error("conjunction should hold at 0")
	}
	if c.Sat(1, f) {
		t.Error("conjunction should fail at 1")
	}
	if !c.Sat(0, And{}) {
		t.Error("empty conjunction is TRUE")
	}
}

func TestFormat(t *testing.T) {
	f := DiamondWeak{
		Label: "C.send_rpc_packet#RCS.get_packet",
		F: Not{F: DiamondWeak{
			Label: "RSC.deliver_packet#C.receive_result_packet",
			F:     True{},
		}},
	}
	got := Format(f)
	want := "EXISTS_WEAK_TRANS(LABEL(C.send_rpc_packet#RCS.get_packet); " +
		"REACHED_STATE_SAT(NOT(EXISTS_WEAK_TRANS(LABEL(RSC.deliver_packet#C.receive_result_packet); " +
		"REACHED_STATE_SAT(TRUE)))))"
	if got != want {
		t.Errorf("Format:\n got %s\nwant %s", got, want)
	}
}

func TestFormatVariants(t *testing.T) {
	if got := Format(True{}); got != "TRUE" {
		t.Errorf("TRUE = %q", got)
	}
	if got := Format(And{}); got != "TRUE" {
		t.Errorf("empty AND = %q", got)
	}
	if got := Format(And{Fs: []Formula{True{}}}); got != "TRUE" {
		t.Errorf("singleton AND = %q", got)
	}
	got := Format(And{Fs: []Formula{True{}, Not{F: True{}}}})
	if got != "AND(TRUE; NOT(TRUE))" {
		t.Errorf("AND = %q", got)
	}
	got = Format(Diamond{Label: "a", F: True{}})
	if !strings.HasPrefix(got, "EXISTS_TRANS(LABEL(a);") {
		t.Errorf("strong diamond = %q", got)
	}
}

func TestDepth(t *testing.T) {
	f := DiamondWeak{Label: "a", F: Not{F: DiamondWeak{Label: "b", F: True{}}}}
	if d := Depth(f); d != 2 {
		t.Errorf("Depth = %d, want 2", d)
	}
	if d := Depth(True{}); d != 0 {
		t.Errorf("Depth(TRUE) = %d, want 0", d)
	}
	if d := Depth(And{Fs: []Formula{Diamond{Label: "a", F: True{}}, True{}}}); d != 1 {
		t.Errorf("Depth(AND) = %d, want 1", d)
	}
}

func TestParseRoundTrip(t *testing.T) {
	formulas := []Formula{
		True{},
		Not{F: True{}},
		And{Fs: []Formula{Diamond{Label: "a", F: True{}}, Not{F: True{}}}},
		Diamond{Label: "A.a#B.b", F: True{}},
		DiamondWeak{Label: "C.send_rpc_packet#RCS.get_packet",
			F: Not{F: DiamondWeak{Label: "RSC.deliver_packet#C.receive_result_packet", F: True{}}}},
		DiamondWeak{Label: "tau", F: And{Fs: []Formula{
			Diamond{Label: "x", F: True{}},
			DiamondWeak{Label: "y", F: Not{F: True{}}},
		}}},
	}
	for _, f := range formulas {
		text := Format(f)
		got, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		if Format(got) != text {
			t.Errorf("round trip changed formula:\n in: %s\nout: %s", text, Format(got))
		}
	}
}

func TestParseWhitespaceTolerant(t *testing.T) {
	src := ` EXISTS_WEAK_TRANS( LABEL( a#b ) ;
		REACHED_STATE_SAT( NOT( TRUE ) ) ) `
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	dw, ok := f.(DiamondWeak)
	if !ok || dw.Label != "a#b" {
		t.Errorf("parsed %#v", f)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"MAYBE",
		"NOT(TRUE",
		"AND()",
		"AND(TRUE TRUE)",
		"EXISTS_TRANS(TRUE)",
		"EXISTS_TRANS(LABEL(); REACHED_STATE_SAT(TRUE))",
		"EXISTS_TRANS(LABEL(a; REACHED_STATE_SAT(TRUE))",
		"EXISTS_TRANS(LABEL(a); TRUE)",
		"TRUE garbage",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

// Property: Parse is a left inverse of Format for the checker's formulas.
func TestParseFormatPropertyOnGenerated(t *testing.T) {
	// Reuse the satisfaction test structures: build a few formulas via
	// nesting and verify Parse∘Format is identity under Format.
	base := []Formula{True{}, Not{F: True{}}}
	for depth := 0; depth < 3; depth++ {
		var next []Formula
		for i, f := range base {
			next = append(next,
				Diamond{Label: "a", F: f},
				DiamondWeak{Label: "s.x#t.y", F: f},
				Not{F: f},
				And{Fs: []Formula{f, base[(i+1)%len(base)]}},
			)
		}
		base = next[:min(len(next), 12)]
	}
	for _, f := range base {
		text := Format(f)
		got, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		if Format(got) != text {
			t.Errorf("not a fixed point: %s", text)
		}
	}
}
