// Package hml implements the fragment of Hennessy–Milner logic used for
// diagnostic (distinguishing) formulas: truth, negation, finite
// conjunction, and strong/weak diamond modalities. Formulas are rendered
// in the textual style of the TwoTowers equivalence checker
// (EXISTS_WEAK_TRANS(LABEL(a); REACHED_STATE_SAT(...))) and can be
// model-checked against explicit labelled transition systems.
package hml

import (
	"sort"
	"strings"

	"repro/internal/lts"
)

// Formula is a modal-logic formula. Concrete types: True, Not, And,
// Diamond, DiamondWeak.
type Formula interface {
	isFormula()
}

// True holds in every state.
type True struct{}

// Not negates a formula.
type Not struct {
	// F is the negated formula.
	F Formula
}

// And is a finite conjunction; an empty conjunction is equivalent to True.
type And struct {
	// Fs are the conjuncts.
	Fs []Formula
}

// Diamond is the strong modality <Label> F: some Label-transition leads to
// a state satisfying F.
type Diamond struct {
	// Label is the required transition label.
	Label string
	// F must hold in the reached state.
	F Formula
}

// DiamondWeak is the weak modality <<Label>> F: some tau*·Label·tau*
// sequence (tau* alone when Label is tau) leads to a state satisfying F.
type DiamondWeak struct {
	// Label is the required visible label, or lts.TauName.
	Label string
	// F must hold in the reached state.
	F Formula
}

func (True) isFormula()        {}
func (Not) isFormula()         {}
func (And) isFormula()         {}
func (Diamond) isFormula()     {}
func (DiamondWeak) isFormula() {}

// Format renders the formula in TwoTowers diagnostic syntax.
func Format(f Formula) string {
	var sb strings.Builder
	format(&sb, f, "")
	return sb.String()
}

func format(sb *strings.Builder, f Formula, indent string) {
	switch x := f.(type) {
	case True:
		sb.WriteString("TRUE")
	case Not:
		sb.WriteString("NOT(")
		format(sb, x.F, indent)
		sb.WriteString(")")
	case And:
		switch len(x.Fs) {
		case 0:
			sb.WriteString("TRUE")
		case 1:
			format(sb, x.Fs[0], indent)
		default:
			sb.WriteString("AND(")
			for i, g := range x.Fs {
				if i > 0 {
					sb.WriteString("; ")
				}
				format(sb, g, indent)
			}
			sb.WriteString(")")
		}
	case Diamond:
		sb.WriteString("EXISTS_TRANS(LABEL(")
		sb.WriteString(x.Label)
		sb.WriteString("); REACHED_STATE_SAT(")
		format(sb, x.F, indent)
		sb.WriteString("))")
	case DiamondWeak:
		sb.WriteString("EXISTS_WEAK_TRANS(LABEL(")
		sb.WriteString(x.Label)
		sb.WriteString("); REACHED_STATE_SAT(")
		format(sb, x.F, indent)
		sb.WriteString("))")
	default:
		sb.WriteString("<?>")
	}
}

// Depth returns the modal depth of the formula.
func Depth(f Formula) int {
	switch x := f.(type) {
	case True:
		return 0
	case Not:
		return Depth(x.F)
	case And:
		d := 0
		for _, g := range x.Fs {
			if dg := Depth(g); dg > d {
				d = dg
			}
		}
		return d
	case Diamond:
		return 1 + Depth(x.F)
	case DiamondWeak:
		return 1 + Depth(x.F)
	default:
		return 0
	}
}

// Checker evaluates formulas on an LTS, caching tau-closures.
type Checker struct {
	l       *lts.LTS
	tauSucc [][]int32 // reflexive-transitive tau closure per state
}

// NewChecker prepares a checker for the given LTS.
func NewChecker(l *lts.LTS) *Checker {
	return &Checker{l: l}
}

// closure returns the reflexive-transitive tau closure of s, computed
// lazily and cached.
func (c *Checker) closure(s int) []int32 {
	if c.tauSucc == nil {
		c.tauSucc = make([][]int32, c.l.NumStates)
	}
	if c.tauSucc[s] != nil {
		return c.tauSucc[s]
	}
	seen := map[int32]bool{int32(s): true}
	stack := []int32{int32(s)}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		sp := c.l.Out(int(u))
		for k := 0; k < sp.Len(); k++ {
			if sp.Label[k] == lts.TauIndex && !seen[sp.Dst[k]] {
				seen[sp.Dst[k]] = true
				stack = append(stack, sp.Dst[k])
			}
		}
	}
	out := make([]int32, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	c.tauSucc[s] = out
	return out
}

// Sat reports whether state s satisfies formula f.
func (c *Checker) Sat(s int, f Formula) bool {
	switch x := f.(type) {
	case True:
		return true
	case Not:
		return !c.Sat(s, x.F)
	case And:
		for _, g := range x.Fs {
			if !c.Sat(s, g) {
				return false
			}
		}
		return true
	case Diamond:
		li, ok := c.l.LookupLabel(x.Label)
		if !ok {
			return false
		}
		sp := c.l.Out(s)
		for k := 0; k < sp.Len(); k++ {
			if int(sp.Label[k]) == li && c.Sat(int(sp.Dst[k]), x.F) {
				return true
			}
		}
		return false
	case DiamondWeak:
		if x.Label == lts.TauName {
			for _, u := range c.closure(s) {
				if c.Sat(int(u), x.F) {
					return true
				}
			}
			return false
		}
		li, ok := c.l.LookupLabel(x.Label)
		if !ok {
			return false
		}
		for _, u := range c.closure(s) {
			sp := c.l.Out(int(u))
			for k := 0; k < sp.Len(); k++ {
				if int(sp.Label[k]) != li {
					continue
				}
				for _, v := range c.closure(int(sp.Dst[k])) {
					if c.Sat(int(v), x.F) {
						return true
					}
				}
			}
		}
		return false
	default:
		return false
	}
}
