package lts_test

import (
	"math"
	"testing"

	"repro/internal/aemilia"
	"repro/internal/ctmc"
	"repro/internal/elab"
	"repro/internal/lts"
	"repro/internal/rates"
)

func mustModel(t *testing.T, a *aemilia.ArchiType) *elab.Model {
	t.Helper()
	m, err := elab.Elaborate(a)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

type flatEdge struct {
	src, dst int
	label    string
	rate     rates.Rate
}

func flatten(l *lts.LTS) []flatEdge {
	var out []flatEdge
	l.Edges(func(src, dst, label int, r rates.Rate) {
		out = append(out, flatEdge{src, dst, l.LabelName(label), r})
	})
	return out
}

// vanishingModel is a closed model whose product has vanishing states: a
// worker that resolves an internal immediate choice ("pick", two weights)
// after each exponential "work" synchronization with a passive client,
// next to an independent two-phase ticker. The choice sits behind the
// exponential so the initial state is tangible, and both branches
// continue identically, so folding removes every vanishing state.
func vanishingModel(t *testing.T) *elab.Model {
	t.Helper()
	worker := aemilia.NewElemType("Worker_Type", nil, []string{"work"},
		aemilia.NewBehavior("W", nil,
			aemilia.Pre("work", rates.ExpRate(5),
				aemilia.Ch(
					aemilia.Pre("pick", rates.Inf(1, 1), aemilia.Invoke("W")),
					aemilia.Pre("pick", rates.Inf(1, 2), aemilia.Invoke("W")),
				))))
	client := aemilia.NewElemType("Client_Type", []string{"work"}, nil,
		aemilia.NewBehavior("C", nil,
			aemilia.Pre("work", rates.PassiveRate(), aemilia.Invoke("C"))))
	ticker := aemilia.NewElemType("Ticker_Type", nil, nil,
		aemilia.NewBehavior("T", nil,
			aemilia.Pre("tick", rates.ExpRate(1),
				aemilia.Pre("tock", rates.ExpRate(2), aemilia.Invoke("T")))))
	a := aemilia.NewArchiType("Vanishing",
		[]*aemilia.ElemType{worker, client, ticker},
		[]*aemilia.Instance{
			aemilia.NewInstance("W", "Worker_Type"),
			aemilia.NewInstance("C", "Client_Type"),
			aemilia.NewInstance("T", "Ticker_Type"),
		},
		[]aemilia.Attachment{
			aemilia.Attach("W", "work", "C", "work"),
		})
	return mustModel(t, a)
}

// slottedModel routes a parametric (slotted) exponential through a
// vanishing state. With a single immediate branch the expansion is linear
// and the slot survives the fold; with two branches it is not, and the
// fold must keep the vanishing state so Rebind stays exact.
func slottedModel(t *testing.T, branches int) *elab.Model {
	t.Helper()
	var body aemilia.Process
	if branches == 1 {
		body = aemilia.Pre("tick", rates.ExpSlot(1, 1),
			aemilia.Pre("mid", rates.Inf(1, 1),
				aemilia.Pre("tock", rates.ExpRate(2), aemilia.Invoke("T"))))
	} else {
		body = aemilia.Pre("tick", rates.ExpSlot(1, 1),
			aemilia.Ch(
				aemilia.Pre("mid", rates.Inf(1, 1),
					aemilia.Pre("tock", rates.ExpRate(2), aemilia.Invoke("T"))),
				aemilia.Pre("mid", rates.Inf(1, 1),
					aemilia.Pre("tock", rates.ExpRate(3), aemilia.Invoke("T"))),
			))
	}
	ticker := aemilia.NewElemType("Ticker_Type", nil, nil,
		aemilia.NewBehavior("T", nil, body))
	a := aemilia.NewArchiType("Slotted",
		[]*aemilia.ElemType{ticker},
		[]*aemilia.Instance{aemilia.NewInstance("T", "Ticker_Type")},
		nil)
	return mustModel(t, a)
}

// steady builds the chain of an LTS and solves it.
func steady(t *testing.T, l *lts.LTS) (*ctmc.CTMC, []float64) {
	t.Helper()
	chain, err := ctmc.Build(l)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := chain.SteadyState(ctmc.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return chain, pi
}

// TestFoldRemovesVanishingStates pins the core contract: generation with
// folding yields exactly the tangible states of the plain generation, and
// the steady-state throughput of every surviving label is unchanged.
func TestFoldRemovesVanishingStates(t *testing.T) {
	m := vanishingModel(t)
	full, err := lts.Generate(m, lts.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	folded, err := lts.Generate(m, lts.GenerateOptions{Fold: &lts.FoldOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	fullChain, fullPi := steady(t, full)
	tangible := len(fullPi)
	if folded.NumStates != tangible {
		t.Fatalf("folded generation has %d states, full has %d tangible", folded.NumStates, tangible)
	}
	foldChain, foldPi := steady(t, folded)
	for _, label := range []string{"W.work#C.work", "T.tick", "T.tock"} {
		match := func(s string) bool { return s == label }
		a := fullChain.Throughput(fullPi, match, nil)
		b := foldChain.Throughput(foldPi, match, nil)
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("throughput(%s): full %.15g, folded %.15g", label, a, b)
		}
	}
}

// TestFoldAttributesObservedLabels pins the reward-attribution path: a
// label that only ever fires inside folded vanishing chains still reports
// its exact throughput, via the per-edge attribution terms the fold
// leaves behind.
func TestFoldAttributesObservedLabels(t *testing.T) {
	m := vanishingModel(t)
	pick := func(s string) bool { return s == "W.pick" }
	full, err := lts.Generate(m, lts.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	folded, err := lts.Generate(m, lts.GenerateOptions{Fold: &lts.FoldOptions{Observed: pick}})
	if err != nil {
		t.Fatal(err)
	}
	if folded.NumAux() == 0 {
		t.Fatal("no attribution terms recorded for the observed folded label")
	}
	fullChain, fullPi := steady(t, full)
	foldChain, foldPi := steady(t, folded)
	a := fullChain.Throughput(fullPi, pick, nil)
	b := foldChain.Throughput(foldPi, pick, nil)
	if a <= 0 {
		t.Fatalf("degenerate reference throughput %g", a)
	}
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("throughput(W.pick): full %.15g, folded %.15g", a, b)
	}
	// Unobserved folding must not record attributions: the aux column is
	// pay-for-what-you-watch.
	blind, err := lts.Generate(m, lts.GenerateOptions{Fold: &lts.FoldOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	if blind.NumAux() != 0 {
		t.Fatalf("unobserved fold recorded %d attribution entries", blind.NumAux())
	}
}

// TestFoldSlottedLinear pins the parametric-sweep guard on its permitted
// side: a slotted rate whose vanishing continuation is linear folds, the
// slot survives, and a Rebind at a new point matches the unfolded system
// exactly.
func TestFoldSlottedLinear(t *testing.T) {
	m := slottedModel(t, 1)
	full, err := lts.Generate(m, lts.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	folded, err := lts.Generate(m, lts.GenerateOptions{Fold: &lts.FoldOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	if folded.NumStates >= full.NumStates {
		t.Fatalf("linear slotted chain did not fold: %d vs %d states", folded.NumStates, full.NumStates)
	}
	if folded.NumRateSlots() != 1 {
		t.Fatalf("fold dropped the rate slot: NumRateSlots=%d", folded.NumRateSlots())
	}
	point := []float64{4}
	tput := func(l *lts.LTS) float64 {
		chain, err := ctmc.Build(l)
		if err != nil {
			t.Fatal(err)
		}
		if err := chain.Rebind(point); err != nil {
			t.Fatal(err)
		}
		pi, err := chain.SteadyState(ctmc.SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return chain.Throughput(pi, func(s string) bool { return s == "T.tick" }, nil)
	}
	a, b := tput(full), tput(folded)
	if a <= 0 || math.Abs(a-b) > 1e-12 {
		t.Fatalf("rebound throughput(T.tick): full %.15g, folded %.15g", a, b)
	}
}

// TestFoldSlottedBranchingKept pins the guard's refusing side: a slotted
// rate into a branching vanishing state is left alone — folding the
// branch probabilities into a slotted lambda would break Rebind — so the
// vanishing state survives.
func TestFoldSlottedBranchingKept(t *testing.T) {
	m := slottedModel(t, 2)
	full, err := lts.Generate(m, lts.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	folded, err := lts.Generate(m, lts.GenerateOptions{Fold: &lts.FoldOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	if folded.NumStates != full.NumStates {
		t.Fatalf("branching slotted chain was folded: %d vs %d states", folded.NumStates, full.NumStates)
	}
	flatA, flatB := flatten(full), flatten(folded)
	if len(flatA) != len(flatB) {
		t.Fatalf("edge counts differ: %d vs %d", len(flatA), len(flatB))
	}
	for i := range flatA {
		if flatA[i] != flatB[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, flatA[i], flatB[i])
		}
	}
}

// TestFoldParallelBitIdentity pins determinism: folded generation is
// bit-identical at any worker count, attribution pool included.
func TestFoldParallelBitIdentity(t *testing.T) {
	m := vanishingModel(t)
	opts := func(workers int) lts.GenerateOptions {
		return lts.GenerateOptions{
			Fold:       &lts.FoldOptions{Observed: func(s string) bool { return s == "W.pick" }},
			GenWorkers: workers,
		}
	}
	ref, err := lts.Generate(m, opts(1))
	if err != nil {
		t.Fatal(err)
	}
	refEdges := flatten(ref)
	for _, workers := range []int{2, 8} {
		l, err := lts.Generate(m, opts(workers))
		if err != nil {
			t.Fatal(err)
		}
		if l.NumStates != ref.NumStates || l.Initial != ref.Initial || l.NumAux() != ref.NumAux() {
			t.Fatalf("workers=%d: shape differs (states %d/%d, aux %d/%d)",
				workers, l.NumStates, ref.NumStates, l.NumAux(), ref.NumAux())
		}
		edges := flatten(l)
		for i := range edges {
			if edges[i] != refEdges[i] {
				t.Fatalf("workers=%d: edge %d = %+v, want %+v", workers, i, edges[i], refEdges[i])
			}
		}
		for e := 0; e < l.NumTransitions(); e++ {
			if l.EdgeAux(e) != ref.EdgeAux(e) {
				t.Fatalf("workers=%d: edge %d aux handle %d, want %d", workers, e, l.EdgeAux(e), ref.EdgeAux(e))
			}
		}
	}
}
