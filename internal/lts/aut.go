package lts

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/rates"
)

// WriteAUT renders the LTS in the Aldebaran (.aut) format used by the
// CADP toolbox and supported by TwoTowers for interchange:
//
//	des (initial, transitions, states)
//	(src, "label", dst)
//	...
//
// Rates are appended to labels as "label {rate}" when present, so rated
// systems round-trip through ReadAUT losslessly at the functional level
// (rates survive as label decorations).
func WriteAUT(w io.Writer, l *LTS) error {
	if _, err := fmt.Fprintf(w, "des (%d, %d, %d)\n",
		l.Initial, l.NumTransitions(), l.NumStates); err != nil {
		return err
	}
	for _, t := range l.Transitions {
		label := l.Labels[t.Label]
		if t.Rate.Kind != 0 && t.Rate.String() != "_" {
			label += " {" + t.Rate.String() + "}"
		}
		if _, err := fmt.Fprintf(w, "(%d, %q, %d)\n", t.Src, label, t.Dst); err != nil {
			return err
		}
	}
	return nil
}

// ReadAUT parses an Aldebaran .aut description into an LTS. Labels named
// "tau" or "i" map to the invisible action; rate decorations appended by
// WriteAUT are kept as part of the label text (functional reading).
func ReadAUT(r io.Reader) (*LTS, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("lts: empty aut input")
	}
	header := strings.TrimSpace(sc.Text())
	var initial, numTrans, numStates int
	if _, err := fmt.Sscanf(header, "des (%d, %d, %d)", &initial, &numTrans, &numStates); err != nil {
		return nil, fmt.Errorf("lts: bad aut header %q: %w", header, err)
	}
	if numStates <= 0 || initial < 0 || initial >= numStates {
		return nil, fmt.Errorf("lts: inconsistent aut header %q", header)
	}
	l := New(numStates)
	l.Initial = initial
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		src, label, dst, err := parseAUTLine(line)
		if err != nil {
			return nil, fmt.Errorf("lts: aut line %d: %w", lineNo, err)
		}
		if src < 0 || src >= numStates || dst < 0 || dst >= numStates {
			return nil, fmt.Errorf("lts: aut line %d: state out of range", lineNo)
		}
		li := TauIndex
		if label != TauName && label != "i" {
			li = l.LabelIndex(label)
		}
		l.AddTransition(src, dst, li, rates.UntimedRate())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if l.NumTransitions() != numTrans {
		return nil, fmt.Errorf("lts: aut header declares %d transitions, found %d",
			numTrans, l.NumTransitions())
	}
	return l, nil
}

// parseAUTLine parses one `(src, "label", dst)` or `(src, label, dst)`
// line.
func parseAUTLine(line string) (src int, label string, dst int, err error) {
	if !strings.HasPrefix(line, "(") || !strings.HasSuffix(line, ")") {
		return 0, "", 0, fmt.Errorf("malformed transition %q", line)
	}
	body := line[1 : len(line)-1]
	firstComma := strings.Index(body, ",")
	lastComma := strings.LastIndex(body, ",")
	if firstComma < 0 || lastComma <= firstComma {
		return 0, "", 0, fmt.Errorf("malformed transition %q", line)
	}
	src, err = strconv.Atoi(strings.TrimSpace(body[:firstComma]))
	if err != nil {
		return 0, "", 0, fmt.Errorf("bad source in %q", line)
	}
	dst, err = strconv.Atoi(strings.TrimSpace(body[lastComma+1:]))
	if err != nil {
		return 0, "", 0, fmt.Errorf("bad destination in %q", line)
	}
	label = strings.TrimSpace(body[firstComma+1 : lastComma])
	if strings.HasPrefix(label, `"`) {
		unq, err := strconv.Unquote(label)
		if err != nil {
			return 0, "", 0, fmt.Errorf("bad label in %q", line)
		}
		label = unq
	}
	return src, label, dst, nil
}
