package lts

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/rates"
)

// WriteAUT renders the LTS in the Aldebaran (.aut) format used by the
// CADP toolbox and supported by TwoTowers for interchange:
//
//	des (initial, transitions, states)
//	(src, "label", dst)
//	...
//
// Rates are appended to labels as "label {rate}" when present, so rated
// systems round-trip through ReadAUT losslessly at the functional level
// (rates survive as label decorations).
func WriteAUT(w io.Writer, l *LTS) error {
	if _, err := fmt.Fprintf(w, "des (%d, %d, %d)\n",
		l.Initial, l.NumTransitions(), l.NumStates); err != nil {
		return err
	}
	for s := 0; s < l.NumStates; s++ {
		sp := l.Out(s)
		for k := 0; k < sp.Len(); k++ {
			label := l.LabelName(int(sp.Label[k]))
			if r := sp.Rate[k]; r.Kind != 0 && r.String() != "_" {
				label += " {" + r.String() + "}"
			}
			if _, err := fmt.Fprintf(w, "(%d, %q, %d)\n", s, label, sp.Dst[k]); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadAUT parses an Aldebaran .aut description into an LTS. Labels named
// "tau" or "i" map to the invisible action; rate decorations appended by
// WriteAUT are kept as part of the label text (functional reading).
func ReadAUT(r io.Reader) (*LTS, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("lts: empty aut input")
	}
	header := strings.TrimSpace(sc.Text())
	var initial, numTrans, numStates int
	if _, err := fmt.Sscanf(header, "des (%d, %d, %d)", &initial, &numTrans, &numStates); err != nil {
		return nil, fmt.Errorf("lts: bad aut header %q: %w", header, err)
	}
	if numStates <= 0 || numTrans < 0 || initial < 0 || initial >= numStates {
		return nil, fmt.Errorf("lts: inconsistent aut header %q", header)
	}
	l := New(numStates)
	l.Initial = initial
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		src, label, dst, err := parseAUTLine(line)
		if err != nil {
			return nil, fmt.Errorf("lts: aut line %d: %w", lineNo, err)
		}
		if src < 0 || src >= numStates || dst < 0 || dst >= numStates {
			return nil, fmt.Errorf("lts: aut line %d: state out of range", lineNo)
		}
		li := TauIndex
		if label != TauName && label != "i" {
			li = l.LabelIndex(label)
		}
		l.AddTransition(src, dst, li, rates.UntimedRate())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if l.NumTransitions() != numTrans {
		return nil, fmt.Errorf("lts: aut header declares %d transitions, found %d",
			numTrans, l.NumTransitions())
	}
	return l, nil
}

// parseAUTLine parses one `(src, "label", dst)` or `(src, label, dst)`
// line. Labels may contain commas and escaped quotes when quoted, so a
// quoted label is scanned by its quote structure rather than by comma
// position.
func parseAUTLine(line string) (src int, label string, dst int, err error) {
	if !strings.HasPrefix(line, "(") || !strings.HasSuffix(line, ")") {
		return 0, "", 0, fmt.Errorf("malformed transition %q", line)
	}
	body := line[1 : len(line)-1]
	firstComma := strings.Index(body, ",")
	if firstComma < 0 {
		return 0, "", 0, fmt.Errorf("malformed transition %q", line)
	}
	src, err = strconv.Atoi(strings.TrimSpace(body[:firstComma]))
	if err != nil {
		return 0, "", 0, fmt.Errorf("bad source in %q", line)
	}
	rest := strings.TrimSpace(body[firstComma+1:])
	if strings.HasPrefix(rest, `"`) {
		// Quoted label: find its closing quote, honouring backslash
		// escapes, so embedded commas and quotes survive.
		end := -1
		for i := 1; i < len(rest); i++ {
			switch rest[i] {
			case '\\':
				i++ // skip the escaped byte
			case '"':
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return 0, "", 0, fmt.Errorf("unterminated label quote in %q", line)
		}
		unq, uerr := strconv.Unquote(rest[:end+1])
		if uerr != nil {
			return 0, "", 0, fmt.Errorf("bad label in %q", line)
		}
		label = unq
		rest = strings.TrimSpace(rest[end+1:])
		if !strings.HasPrefix(rest, ",") {
			return 0, "", 0, fmt.Errorf("malformed transition %q", line)
		}
		rest = rest[1:]
	} else {
		lastComma := strings.LastIndex(rest, ",")
		if lastComma < 0 {
			return 0, "", 0, fmt.Errorf("malformed transition %q", line)
		}
		label = strings.TrimSpace(rest[:lastComma])
		rest = rest[lastComma+1:]
	}
	dst, err = strconv.Atoi(strings.TrimSpace(rest))
	if err != nil {
		return 0, "", 0, fmt.Errorf("bad destination in %q", line)
	}
	return src, label, dst, nil
}
