package lts

import (
	"fmt"
	"io"
)

// WriteDOT renders the LTS in Graphviz DOT syntax for visual inspection.
// Rates are appended to edge labels when present. All labels are escaped
// exactly once, by %q.
func WriteDOT(w io.Writer, l *LTS, name string) error {
	if name == "" {
		name = "lts"
	}
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n", name); err != nil {
		return err
	}
	for s := 0; s < l.NumStates; s++ {
		label := l.StateDesc(s)
		shape := "circle"
		if s == l.Initial {
			shape = "doublecircle"
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=%q, shape=%s];\n", s, label, shape); err != nil {
			return err
		}
	}
	for s := 0; s < l.NumStates; s++ {
		sp := l.Out(s)
		for k := 0; k < sp.Len(); k++ {
			lbl := l.LabelName(int(sp.Label[k]))
			if r := sp.Rate[k]; r.Kind != 0 && r.String() != "_" {
				lbl += ", " + r.String()
			}
			if _, err := fmt.Fprintf(w, "  n%d -> n%d [label=%q];\n", s, sp.Dst[k], lbl); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
