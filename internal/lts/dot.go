package lts

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the LTS in Graphviz DOT syntax for visual inspection.
// Rates are appended to edge labels when present.
func WriteDOT(w io.Writer, l *LTS, name string) error {
	if name == "" {
		name = "lts"
	}
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n", name); err != nil {
		return err
	}
	for s := 0; s < l.NumStates; s++ {
		label := fmt.Sprintf("s%d", s)
		if l.StateDescs != nil {
			label = l.StateDescs[s]
		}
		shape := "circle"
		if s == l.Initial {
			shape = "doublecircle"
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=%q, shape=%s];\n", s, label, shape); err != nil {
			return err
		}
	}
	for _, t := range l.Transitions {
		lbl := l.Labels[t.Label]
		if t.Rate.Kind != 0 && t.Rate.String() != "_" {
			lbl += ", " + t.Rate.String()
		}
		lbl = strings.ReplaceAll(lbl, `"`, `\"`)
		if _, err := fmt.Fprintf(w, "  n%d -> n%d [label=%q];\n", t.Src, t.Dst, lbl); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
