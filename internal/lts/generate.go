package lts

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/elab"
	"repro/internal/fault"
	"repro/internal/faultinject"
	"repro/internal/statespace"
)

// StatePred names a local-enabledness predicate to evaluate in every
// generated state: true iff the instance's current configuration offers
// the action locally (whether or not the topology lets it fire).
type StatePred struct {
	// Instance is the instance name.
	Instance string
	// Action is the action name.
	Action string
}

// Name returns the canonical "Instance.Action" form of the predicate.
func (p StatePred) Name() string { return p.Instance + "." + p.Action }

// GenerateOptions tunes state-space generation.
type GenerateOptions struct {
	// MaxStates aborts generation when exceeded (0 = default 2_000_000).
	// The bound is enforced at intern time: generation fails the moment a
	// fresh state beyond the limit is discovered, so the state table never
	// overshoots it.
	MaxStates int
	// KeepDescriptions is kept for compatibility; state descriptions are
	// now always available lazily (rendered on demand from the interned
	// state encodings), so generation never pays for them up front.
	KeepDescriptions bool
	// Predicates are evaluated in every state and stored in the LTS.
	Predicates []StatePred
	// GenWorkers bounds the generation worker pool: each BFS frontier is
	// expanded by this many workers and merged in source order, and the
	// predicate columns are sharded the same way. 0 uses GOMAXPROCS; 1
	// runs sequentially. The generated LTS — state numbering, transition
	// order, predicate columns — is bit-identical at any value.
	GenWorkers int
	// Ctx cancels generation: it is polled at every BFS level boundary and
	// before each predicate column, and a cancellation surfaces as a
	// *fault.CanceledError (phase "lts.generate", Iteration = level). A
	// nil context disables polling. Cancellation never perturbs the states
	// already interned — it only stops the exploration early.
	Ctx context.Context
	// Fold enables vanishing-state folding (compositional minimization):
	// successor states whose maximal-progress immediate branches can be
	// resolved eagerly are never interned — each incoming transition is
	// redirected to the branch targets with its rate scaled by the branch
	// probabilities, exactly the elimination ctmc.Build would perform, so
	// the tangible chain is unchanged. Transition labels folded away that
	// the Observed matcher selects are preserved as per-edge reward
	// attributions (EdgeAux/AuxTerms), keeping every TRANS_REWARD measure
	// exact. Nil disables folding (the default, bit-identical to previous
	// releases).
	Fold *FoldOptions
}

// FoldOptions tunes vanishing-state folding during generation.
type FoldOptions struct {
	// Observed selects the transition labels whose firing frequency must
	// remain computable on the folded system (the labels named by
	// TRANS_REWARD measure clauses). Folded transitions with an observed
	// label are recorded as reward attributions on the redirected edges.
	// Nil observes nothing.
	Observed func(label string) bool
	// MaxDepth bounds the immediate-chain expansion; deeper chains (or
	// cycles, which ctmc.Build rejects as timeless traps anyway) keep the
	// intermediate state instead of folding it. 0 uses a default of 1024.
	MaxDepth int
}

// TooManyStatesError reports that generation exceeded MaxStates.
type TooManyStatesError struct {
	// Limit is the configured bound.
	Limit int
	// States is the number of states interned when generation aborted;
	// the intern-time check guarantees States == Limit (no overshoot).
	States int
}

// Error implements error.
func (e *TooManyStatesError) Error() string {
	return fmt.Sprintf("lts: state space exceeds %d states", e.Limit)
}

// generateCalls counts Generate invocations process-wide. It exists for
// tests that assert how often a sweep regenerates its state space (the
// rate-parametric sweep path must generate once per structure, not once
// per point); it never influences generation itself.
var generateCalls atomic.Int64

// GenerateCalls returns the number of Generate invocations so far in this
// process — a test hook for pinning generate-once behaviour of sweeps.
func GenerateCalls() int64 { return generateCalls.Load() }

// genChunk is the number of frontier states a worker claims at a time;
// it only balances load and never affects the generated LTS.
const genChunk = 32

// minParallelFrontier is the frontier size below which a level is
// expanded inline: narrow start-up levels are not worth a pool dispatch.
const minParallelFrontier = 2 * genChunk

// parFor runs fn over [0, n) on a pool of workers claiming ascending
// fixed-size chunks; w is the worker index running the call. On failure
// the pool stops claiming new chunks, every claimed chunk still runs up
// to its own first failure, and parFor returns the lowest failing index
// with its error — the failure a sequential loop over [0, n) would have
// hit first. Because chunks are claimed in ascending order, every index
// below the returned one has been processed successfully. A panicking fn
// is recovered into a *fault.WorkerPanicError (pool name, worker, index)
// and treated as that index's failure, so one crashing task never takes
// down the process and attribution follows the same lowest-index rule.
func parFor(pool string, n, workers int, fn func(w, i int) error) (int, error) {
	type failure struct {
		idx int
		err error
	}
	var (
		wg    sync.WaitGroup
		next  atomic.Int64
		stop  atomic.Bool
		fails = make([]failure, workers)
	)
	for w := 0; w < workers; w++ {
		fails[w].idx = n
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !stop.Load() {
				lo := int(next.Add(genChunk)) - genChunk
				if lo >= n {
					return
				}
				hi := lo + genChunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					err := fault.Guard(pool, w, fmt.Sprintf("index %d", i), func() error {
						return fn(w, i)
					})
					if err != nil {
						fails[w] = failure{idx: i, err: err}
						stop.Store(true)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	first := failure{idx: n}
	for _, f := range fails {
		if f.err != nil && f.idx < first.idx {
			first = f
		}
	}
	return first.idx, first.err
}

// Generate explores the reachable state space of an elaborated model and
// returns it as an explicit LTS. Exploration is a level-synchronized
// breadth-first search: each frontier level is expanded by a worker pool
// (opts.GenWorkers) into private buffers — elab.Model is immutable after
// elaboration, so Successors is safe to call concurrently — and the
// successor lists are then merged in source order into an arena-backed
// intern table. The merge funnels every intern through one goroutine, so
// dense state identifiers and the CSR edge order are the ones a
// sequential run assigns, bit for bit, at any worker count.
func Generate(m *elab.Model, opts GenerateOptions) (*LTS, error) {
	generateCalls.Add(1)
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = 2_000_000
	}
	workers := opts.GenWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	var foldCtxs []*foldCtx
	if opts.Fold != nil {
		foldCtxs = make([]*foldCtx, workers)
		for w := range foldCtxs {
			foldCtxs[w] = newFoldCtx(m, opts.Fold)
		}
	}

	in := statespace.NewInterner()
	var states []elab.State
	keyBuf := make([]byte, 0, 64)

	intern := func(s elab.State) (uint32, error) {
		keyBuf = m.AppendKey(keyBuf[:0], s)
		id, fresh := in.Intern(keyBuf)
		if fresh {
			if len(states) >= maxStates {
				return 0, &TooManyStatesError{Limit: maxStates, States: len(states)}
			}
			states = append(states, s)
		}
		return id, nil
	}

	s0 := m.Initial()
	if _, err := m.Successors(s0); err != nil {
		// Surface composition errors (e.g. active-active sync) immediately.
		return nil, err
	}
	if _, err := intern(s0); err != nil {
		return nil, err
	}

	l := NewShared(0, statespace.NewSymbols())
	l.Initial = 0
	edges := make([]statespace.Edge, 0, 1024)

	// Attribution pool: folded reward attributions are deduplicated by
	// their canonical byte signature (label index + count bits per term)
	// and handed out as 1-based handles. The pool is appended to only
	// here, inside the sequential merge, so handles are assigned in merge
	// order — a pure function of the model, like state identifiers.
	auxStart := []int32{0}
	var (
		auxLabel []int32
		auxCount []float64
		auxIDs   map[string]int32
		auxSig   []byte
		auxLabs  []int32
	)
	internAux := func(terms []auxTerm) int32 {
		if len(terms) == 0 {
			return 0
		}
		auxSig = auxSig[:0]
		auxLabs = auxLabs[:0]
		for i := range terms {
			li := int32(l.syms.Intern(terms[i].label))
			auxLabs = append(auxLabs, li)
			auxSig = binary.LittleEndian.AppendUint32(auxSig, uint32(li))
			auxSig = binary.LittleEndian.AppendUint64(auxSig, math.Float64bits(terms[i].count))
		}
		if auxIDs == nil {
			auxIDs = make(map[string]int32, 64)
		}
		if id, ok := auxIDs[string(auxSig)]; ok {
			return id
		}
		auxLabel = append(auxLabel, auxLabs...)
		for i := range terms {
			auxCount = append(auxCount, terms[i].count)
		}
		auxStart = append(auxStart, int32(len(auxLabel)))
		id := int32(len(auxStart) - 1)
		auxIDs[string(auxSig)] = id
		return id
	}

	// merge folds the successor list of one source state into the shared
	// tables, in the source's BFS position — the only place states, edges
	// and attributions are appended.
	merge := func(qi int, ts []genTransition) error {
		for i := range ts {
			tr := &ts[i]
			dst, err := intern(tr.next)
			if err != nil {
				return err
			}
			edges = append(edges, statespace.Edge{
				Src:   int32(qi),
				Dst:   int32(dst),
				Label: int32(l.syms.Intern(tr.label)),
				Aux:   internAux(tr.aux),
				Rate:  tr.rate,
			})
		}
		return nil
	}

	expandErr := func(src elab.State, err error) error {
		return fmt.Errorf("lts: expanding state %s: %w", m.Describe(src), err)
	}

	// expand computes one state's successor list under a panic guard, so a
	// crash in the elaborated model's successor code (or an injected fault
	// keyed by the state's dense identifier) surfaces as an error instead
	// of taking down the process — on the inline path and the pool alike.
	// With folding enabled the worker also resolves foldable vanishing
	// targets here, in parallel; folding is a pure function of (model,
	// state), so the rewritten lists are worker-count independent.
	expand := func(w, qi int, s elab.State) (ts []genTransition, err error) {
		err = fault.Guard("lts.generate", w, fmt.Sprintf("state %d", qi), func() error {
			faultinject.MaybePanic(faultinject.SiteGenerateExpand, qi)
			raw, serr := m.Successors(s)
			if serr != nil {
				return serr
			}
			if foldCtxs != nil {
				ts, serr = foldCtxs[w].foldTransitions(raw)
				return serr
			}
			ts = make([]genTransition, len(raw))
			for i := range raw {
				ts[i] = genTransition{label: raw[i].Label, rate: raw[i].Rate, next: raw[i].Next}
			}
			return nil
		})
		return ts, err
	}

	for level, levelStart := 0, 0; levelStart < len(states); level++ {
		if err := fault.Check(opts.Ctx, "lts.generate", -1, level); err != nil {
			return nil, err
		}
		levelEnd := len(states)
		n := levelEnd - levelStart
		if workers == 1 || n < minParallelFrontier {
			// Narrow frontier: expand and merge inline. The merge order is
			// the same either way, so mixing inline and pooled levels does
			// not perturb the numbering.
			for qi := levelStart; qi < levelEnd; qi++ {
				ts, err := expand(0, qi, states[qi])
				if err != nil {
					return nil, expandErr(states[qi], err)
				}
				if err := merge(qi, ts); err != nil {
					return nil, err
				}
			}
			levelStart = levelEnd
			continue
		}
		// Wide frontier: expand on the pool into per-source buffers, then
		// merge in source order. parFor guarantees every source below its
		// reported failure has a complete buffer, so the merge observes
		// exactly the prefix a sequential run would have processed.
		results := make([][]genTransition, n)
		frontier := states[levelStart:levelEnd]
		failIdx, failErr := parFor("lts.generate", n, workers, func(w, i int) error {
			ts, err := expand(w, levelStart+i, frontier[i])
			if err != nil {
				return err
			}
			results[i] = ts
			return nil
		})
		for i := 0; i < n; i++ {
			if i == failIdx {
				return nil, expandErr(frontier[i], failErr)
			}
			if err := merge(levelStart+i, results[i]); err != nil {
				return nil, err
			}
		}
		levelStart = levelEnd
	}
	l.NumStates = len(states)
	l.setCSR(statespace.Build(l.NumStates, edges))
	if len(auxStart) > 1 {
		l.setAuxPool(auxStart, auxLabel, auxCount)
	}
	l.SetMemBytes(in.SizeBytes())

	// Descriptions are lazy: the interner's byte arena is the state table,
	// and a description is decoded from it only when actually requested
	// (diagnostics, DOT output) — bulk sweeps never render one.
	l.descFn = func(s int) string {
		st, err := m.DecodeKey(in.Bytes(uint32(s)))
		if err != nil {
			return fmt.Sprintf("s%d", s)
		}
		return m.Describe(st)
	}

	if len(opts.Predicates) > 0 {
		l.PredNames = make([]string, len(opts.Predicates))
		l.Preds = make([][]bool, len(opts.Predicates))
		for p, pred := range opts.Predicates {
			if err := fault.Check(opts.Ctx, "lts.predicates", p, -1); err != nil {
				return nil, err
			}
			l.PredNames[p] = pred.Name()
			col := make([]bool, len(states))
			eval := func(i int) error {
				ok, err := m.LocallyEnabled(states[i], pred.Instance, pred.Action)
				if err != nil {
					return err
				}
				col[i] = ok
				return nil
			}
			var err error
			if workers == 1 || len(states) < minParallelFrontier {
				for i := range states {
					if err = eval(i); err != nil {
						break
					}
				}
			} else {
				// Each column cell is written by exactly one worker; the
				// column is a pure function of the state set, so sharding
				// cannot perturb it.
				_, err = parFor("lts.predicates", len(states), workers, func(w, i int) error { return eval(i) })
			}
			if err != nil {
				return nil, fmt.Errorf("lts: predicate %s: %w", pred.Name(), err)
			}
			l.Preds[p] = col
		}
	}
	return l, nil
}
