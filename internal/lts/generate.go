package lts

import (
	"fmt"

	"repro/internal/elab"
	"repro/internal/statespace"
)

// StatePred names a local-enabledness predicate to evaluate in every
// generated state: true iff the instance's current configuration offers
// the action locally (whether or not the topology lets it fire).
type StatePred struct {
	// Instance is the instance name.
	Instance string
	// Action is the action name.
	Action string
}

// Name returns the canonical "Instance.Action" form of the predicate.
func (p StatePred) Name() string { return p.Instance + "." + p.Action }

// GenerateOptions tunes state-space generation.
type GenerateOptions struct {
	// MaxStates aborts generation when exceeded (0 = default 2_000_000).
	MaxStates int
	// KeepDescriptions is kept for compatibility; state descriptions are
	// now always available lazily (rendered on demand from the interned
	// state encodings), so generation never pays for them up front.
	KeepDescriptions bool
	// Predicates are evaluated in every state and stored in the LTS.
	Predicates []StatePred
}

// TooManyStatesError reports that generation exceeded MaxStates.
type TooManyStatesError struct {
	// Limit is the configured bound.
	Limit int
}

// Error implements error.
func (e *TooManyStatesError) Error() string {
	return fmt.Sprintf("lts: state space exceeds %d states", e.Limit)
}

// Generate explores the reachable state space of an elaborated model and
// returns it as an explicit LTS. Exploration is breadth-first over states
// interned in an arena-backed table, so state indices are stable across
// runs for a given model and re-visiting a known state allocates nothing.
func Generate(m *elab.Model, opts GenerateOptions) (*LTS, error) {
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = 2_000_000
	}

	in := statespace.NewInterner()
	var states []elab.State
	keyBuf := make([]byte, 0, 64)

	intern := func(s elab.State) (uint32, bool) {
		keyBuf = m.AppendKey(keyBuf[:0], s)
		id, fresh := in.Intern(keyBuf)
		if fresh {
			states = append(states, s)
		}
		return id, fresh
	}

	s0 := m.Initial()
	if _, err := m.Successors(s0); err != nil {
		// Surface composition errors (e.g. active-active sync) immediately.
		return nil, err
	}
	intern(s0)

	l := NewShared(0, statespace.NewSymbols())
	l.Initial = 0
	edges := make([]statespace.Edge, 0, 1024)

	for qi := 0; qi < len(states); qi++ {
		if len(states) > maxStates {
			return nil, &TooManyStatesError{Limit: maxStates}
		}
		src := states[qi]
		ts, err := m.Successors(src)
		if err != nil {
			return nil, fmt.Errorf("lts: expanding state %s: %w", m.Describe(src), err)
		}
		for _, tr := range ts {
			dst, _ := intern(tr.Next)
			edges = append(edges, statespace.Edge{
				Src:   int32(qi),
				Dst:   int32(dst),
				Label: int32(l.syms.Intern(tr.Label)),
				Rate:  tr.Rate,
			})
		}
	}
	l.NumStates = len(states)
	l.setCSR(statespace.Build(l.NumStates, edges))

	// Descriptions are lazy: the interner's byte arena is the state table,
	// and a description is decoded from it only when actually requested
	// (diagnostics, DOT output) — bulk sweeps never render one.
	l.descFn = func(s int) string {
		st, err := m.DecodeKey(in.Bytes(uint32(s)))
		if err != nil {
			return fmt.Sprintf("s%d", s)
		}
		return m.Describe(st)
	}

	if len(opts.Predicates) > 0 {
		l.PredNames = make([]string, len(opts.Predicates))
		l.Preds = make([][]bool, len(opts.Predicates))
		for p, pred := range opts.Predicates {
			l.PredNames[p] = pred.Name()
			col := make([]bool, len(states))
			for i, s := range states {
				ok, err := m.LocallyEnabled(s, pred.Instance, pred.Action)
				if err != nil {
					return nil, fmt.Errorf("lts: predicate %s: %w", pred.Name(), err)
				}
				col[i] = ok
			}
			l.Preds[p] = col
		}
	}
	return l, nil
}
