package lts

import (
	"fmt"

	"repro/internal/elab"
)

// StatePred names a local-enabledness predicate to evaluate in every
// generated state: true iff the instance's current configuration offers
// the action locally (whether or not the topology lets it fire).
type StatePred struct {
	// Instance is the instance name.
	Instance string
	// Action is the action name.
	Action string
}

// Name returns the canonical "Instance.Action" form of the predicate.
func (p StatePred) Name() string { return p.Instance + "." + p.Action }

// GenerateOptions tunes state-space generation.
type GenerateOptions struct {
	// MaxStates aborts generation when exceeded (0 = default 2_000_000).
	MaxStates int
	// KeepDescriptions stores a readable description per state.
	KeepDescriptions bool
	// Predicates are evaluated in every state and stored in the LTS.
	Predicates []StatePred
}

// TooManyStatesError reports that generation exceeded MaxStates.
type TooManyStatesError struct {
	// Limit is the configured bound.
	Limit int
}

// Error implements error.
func (e *TooManyStatesError) Error() string {
	return fmt.Sprintf("lts: state space exceeds %d states", e.Limit)
}

// Generate explores the reachable state space of an elaborated model and
// returns it as an explicit LTS. Exploration is breadth-first, so state
// indices are stable across runs for a given model.
func Generate(m *elab.Model, opts GenerateOptions) (*LTS, error) {
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = 2_000_000
	}

	l := New(0)
	index := make(map[string]int)
	var states []elab.State

	intern := func(s elab.State) (int, bool) {
		k := m.Key(s)
		if i, ok := index[k]; ok {
			return i, false
		}
		i := len(states)
		index[k] = i
		states = append(states, s)
		return i, true
	}

	s0 := m.Initial()
	if _, err := m.Successors(s0); err != nil {
		// Surface composition errors (e.g. active-active sync) immediately.
		return nil, err
	}
	intern(s0)
	l.Initial = 0

	for qi := 0; qi < len(states); qi++ {
		if len(states) > maxStates {
			return nil, &TooManyStatesError{Limit: maxStates}
		}
		src := states[qi]
		ts, err := m.Successors(src)
		if err != nil {
			return nil, fmt.Errorf("lts: expanding state %s: %w", m.Describe(src), err)
		}
		for _, tr := range ts {
			dst, _ := intern(tr.Next)
			l.AddTransition(qi, dst, l.LabelIndex(tr.Label), tr.Rate)
		}
	}
	l.NumStates = len(states)

	if opts.KeepDescriptions {
		l.StateDescs = make([]string, len(states))
		for i, s := range states {
			l.StateDescs[i] = m.Describe(s)
		}
	}
	if len(opts.Predicates) > 0 {
		l.PredNames = make([]string, len(opts.Predicates))
		l.Preds = make([][]bool, len(opts.Predicates))
		for p, pred := range opts.Predicates {
			l.PredNames[p] = pred.Name()
			col := make([]bool, len(states))
			for i, s := range states {
				ok, err := m.LocallyEnabled(s, pred.Instance, pred.Action)
				if err != nil {
					return nil, fmt.Errorf("lts: predicate %s: %w", pred.Name(), err)
				}
				col[i] = ok
			}
			l.Preds[p] = col
		}
	}
	l.buildIndex()
	return l, nil
}
