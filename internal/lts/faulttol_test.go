package lts

import (
	"context"
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/faultinject"
)

// TestGeneratePanicIsolated injects a panic into a state-expansion task
// and checks it surfaces as a typed worker-panic error — with the
// injected fault reachable — instead of crashing, on both the inline
// (one-worker) and pooled frontier-expansion paths.
func TestGeneratePanicIsolated(t *testing.T) {
	for _, workers := range []int{1, 4} {
		plan := faultinject.NewPlan().Arm(faultinject.SiteGenerateExpand, 5)
		faultinject.Activate(plan)
		_, err := Generate(gridModel(t, 3), GenerateOptions{GenWorkers: workers})
		faultinject.Deactivate()
		if err == nil {
			t.Fatalf("workers=%d: injected panic vanished", workers)
		}
		var wpe *fault.WorkerPanicError
		if !errors.As(err, &wpe) {
			t.Fatalf("workers=%d: want *fault.WorkerPanicError, got %T: %v", workers, err, err)
		}
		if wpe.Pool != "lts.generate" {
			t.Errorf("workers=%d: panic attributed to pool %q, want lts.generate", workers, wpe.Pool)
		}
		if !errors.Is(err, fault.ErrWorkerPanic) {
			t.Errorf("workers=%d: errors.Is(err, fault.ErrWorkerPanic) is false", workers)
		}
		var ie *faultinject.InjectedError
		if !errors.As(err, &ie) || ie.Site != faultinject.SiteGenerateExpand || ie.Key != 5 {
			t.Errorf("workers=%d: injected fault not recovered intact: %v", workers, err)
		}
	}
}

// TestGenerateCancel checks that generation observes a canceled context at
// a BFS level boundary and reports the typed cancellation error.
func TestGenerateCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Generate(gridModel(t, 3), GenerateOptions{Ctx: ctx})
	if err == nil {
		t.Fatal("canceled generation succeeded")
	}
	var ce *fault.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("want *fault.CanceledError, got %T: %v", err, err)
	}
	if ce.Phase != "lts.generate" {
		t.Errorf("canceled in phase %q, want lts.generate", ce.Phase)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cause chain lost context.Canceled: %v", err)
	}
}

// TestGenerateDeterministicAfterRecovery pins that fault instrumentation
// is observation-only: generating with a plan armed for keys that never
// match (out of range) yields the same LTS as generating with no plan.
func TestGenerateDeterministicAfterRecovery(t *testing.T) {
	ref, err := Generate(gridModel(t, 3), GenerateOptions{GenWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	plan := faultinject.NewPlan().Arm(faultinject.SiteGenerateExpand, 1<<30)
	faultinject.Activate(plan)
	got, err := Generate(gridModel(t, 3), GenerateOptions{GenWorkers: 4})
	faultinject.Deactivate()
	if err != nil {
		t.Fatal(err)
	}
	if ref.NumStates != got.NumStates || ref.NumTransitions() != got.NumTransitions() {
		t.Errorf("armed-but-unfired plan changed the LTS: %d/%d states, %d/%d transitions",
			ref.NumStates, got.NumStates, ref.NumTransitions(), got.NumTransitions())
	}
}
