package lts

import (
	"sort"

	"repro/internal/elab"
	"repro/internal/rates"
)

// This file implements vanishing-state folding: the generation-time
// elimination of states whose immediate actions resolve deterministically
// in zero time. A successor state with enabled immediate actions is a
// vanishing state of the eventual chain; ctmc.Build would eliminate it by
// propagating its maximal-progress branch distribution. Folding performs
// the same elimination *before* the state is interned, so the composed
// product never materializes it: each incoming transition is redirected to
// the absorption targets with its rate scaled by the branch probability
// (λ·p for exponential rates, w·p for immediate weights — the exact
// per-column contributions Build would have accumulated).
//
// Measures survive folding by construction:
//   - STATE_REWARD clauses evaluate on tangible states only (vanishing
//     states carry no sojourn probability), and folding removes only
//     vanishing states.
//   - TRANS_REWARD clauses need the firing frequency of observed labels;
//     a folded path records the expected traversal count of each observed
//     label on the redirected edge (the Aux column), and ctmc.Throughput
//     adds flow·count for them.
//
// Soundness guards — a successor is kept (interned as usual) instead of
// folded when:
//   - it is tangible (no immediate moves): nothing to fold;
//   - the incoming rate is passive or untimed: scaling a passive weight by
//     a branch probability would multiply the synchronization
//     opportunities an active exponential partner sees, changing the
//     composed rate, and untimed (functional) models have no probabilistic
//     branch semantics;
//   - the incoming rate is slotted (symbolic) and the expansion branches:
//     an LTS edge cannot carry λ(slot)·p with p < 1 in rebindable form
//     (ctmc keeps such coefficients internally, the LTS schema does not);
//     linear chains fold even when slotted because every probability is
//     exactly 1;
//   - its maximal-priority immediate weights do not sum to a positive
//     value, or the chain exceeds MaxDepth, or it closes an immediate
//     cycle (a timeless trap, which ctmc.Build rejects on the full system
//     too).
//
// Expansion is a pure function of the model and the successor state, so
// the folded system is bit-identical at any worker count, exactly like the
// unfolded generator.

// auxTerm is one observed-label attribution accumulated during expansion,
// keyed by label name until the sequential merge interns it.
type auxTerm struct {
	label string
	count float64
}

// genTransition is one (possibly redirected) transition produced by a
// worker for the sequential merge.
type genTransition struct {
	label string
	rate  rates.Rate
	next  elab.State
	aux   []auxTerm // sorted by label; nil when no attribution
}

// foldTerm is one absorption target of an expanded vanishing state.
type foldTerm struct {
	key     string
	state   elab.State
	prob    float64
	auxLab  []string  // sorted observed labels traversed on the way
	auxFlow []float64 // parallel: Σ path-probability · traversals
}

// foldEntry is the memoized expansion verdict for one state.
type foldEntry struct {
	// terms is the absorption distribution over kept states; nil means the
	// state itself is kept (tangible or unfoldable).
	terms []foldTerm
	// linear reports that the expansion never branched: every probability
	// is exactly 1, so slotted rates fold losslessly.
	linear bool
}

var keepEntry = &foldEntry{}

// foldMemoLimit bounds a worker's expansion memo; past it the memo is
// reset (a pure speed/memory trade-off — verdicts are recomputed, never
// changed).
const foldMemoLimit = 1 << 21

// foldCtx is one worker's folding state. Contexts are never shared across
// workers; determinism comes from expansion being a pure function.
type foldCtx struct {
	m        *elab.Model
	observed func(string) bool
	maxDepth int
	memo     map[string]*foldEntry
	onPath   map[string]bool
	keyBuf   []byte
}

func newFoldCtx(m *elab.Model, opts *FoldOptions) *foldCtx {
	depth := opts.MaxDepth
	if depth <= 0 {
		depth = 1024
	}
	obs := opts.Observed
	if obs == nil {
		obs = func(string) bool { return false }
	}
	return &foldCtx{
		m:        m,
		observed: obs,
		maxDepth: depth,
		memo:     make(map[string]*foldEntry, 1024),
		onPath:   make(map[string]bool, 16),
	}
}

func (fc *foldCtx) keyOf(s elab.State) string {
	fc.keyBuf = fc.m.AppendKey(fc.keyBuf[:0], s)
	return string(fc.keyBuf)
}

// expandTarget computes the absorption distribution of state v, memoized
// by state key. A nil-terms entry means "keep v".
func (fc *foldCtx) expandTarget(v elab.State, key string, depth int) (*foldEntry, error) {
	if e, ok := fc.memo[key]; ok {
		return e, nil
	}
	if depth > fc.maxDepth {
		return keepEntry, nil // do not memoize: verdict depends on depth
	}
	if fc.onPath[key] {
		return keepEntry, nil // immediate cycle: keep (timeless trap upstream)
	}
	succ, err := fc.m.Successors(v)
	if err != nil {
		return nil, err
	}
	// Maximal-progress selection, mirroring ctmc.Build: the highest
	// priority level among immediate moves wins; weights normalize the
	// remaining choice.
	maxPrio, hasImm := 0, false
	for i := range succ {
		if r := succ[i].Rate; r.Kind == rates.Immediate {
			if !hasImm || r.Priority > maxPrio {
				maxPrio = r.Priority
			}
			hasImm = true
		}
	}
	if !hasImm {
		e := keepEntry // tangible
		if len(fc.memo) >= foldMemoLimit {
			fc.memo = make(map[string]*foldEntry, 1024)
		}
		fc.memo[key] = e
		return e, nil
	}
	total := 0.0
	for i := range succ {
		if r := succ[i].Rate; r.Kind == rates.Immediate && r.Priority == maxPrio {
			total += r.Weight
		}
	}
	if !(total > 0) {
		fc.memo[key] = keepEntry
		return keepEntry, nil
	}

	fc.onPath[key] = true
	defer delete(fc.onPath, key)

	out := make([]foldTerm, 0, 2)
	pos := make(map[string]int, 2)
	// auxAcc accumulates label flows per output term index.
	var auxAcc []map[string]float64
	addFlow := func(ti int, label string, flow float64) {
		for len(auxAcc) <= ti {
			auxAcc = append(auxAcc, nil)
		}
		if auxAcc[ti] == nil {
			auxAcc[ti] = make(map[string]float64, 2)
		}
		auxAcc[ti][label] += flow
	}
	addTerm := func(key string, st elab.State, p float64) int {
		if ti, ok := pos[key]; ok {
			out[ti].prob += p
			return ti
		}
		ti := len(out)
		pos[key] = ti
		out = append(out, foldTerm{key: key, state: st, prob: p})
		return ti
	}

	fired := 0
	linear := true
	for i := range succ {
		r := succ[i].Rate
		if r.Kind != rates.Immediate || r.Priority != maxPrio {
			continue
		}
		fired++
		p := r.Weight / total
		lab := succ[i].Label
		obsLab := fc.observed(lab)
		tkey := fc.keyOf(succ[i].Next)
		sub, err := fc.expandTarget(succ[i].Next, tkey, depth+1)
		if err != nil {
			return nil, err
		}
		if sub.terms == nil {
			ti := addTerm(tkey, succ[i].Next, p)
			if obsLab {
				addFlow(ti, lab, p)
			}
			continue
		}
		if !sub.linear {
			linear = false
		}
		for si := range sub.terms {
			st := &sub.terms[si]
			ti := addTerm(st.key, st.state, p*st.prob)
			if obsLab {
				addFlow(ti, lab, p*st.prob)
			}
			for ai, al := range st.auxLab {
				addFlow(ti, al, p*st.auxFlow[ai])
			}
		}
	}
	if fired > 1 {
		linear = false
	}
	// Canonicalize the per-term attributions (sorted by label).
	for ti := range out {
		acc := (map[string]float64)(nil)
		if ti < len(auxAcc) {
			acc = auxAcc[ti]
		}
		if len(acc) == 0 {
			continue
		}
		labs := make([]string, 0, len(acc))
		for l := range acc {
			labs = append(labs, l)
		}
		sort.Strings(labs)
		flows := make([]float64, len(labs))
		for i, l := range labs {
			flows[i] = acc[l]
		}
		out[ti].auxLab, out[ti].auxFlow = labs, flows
	}
	e := &foldEntry{terms: out, linear: linear && len(out) == 1}
	if len(fc.memo) >= foldMemoLimit {
		fc.memo = make(map[string]*foldEntry, 1024)
	}
	fc.memo[key] = e
	return e, nil
}

// foldTransitions rewrites one source state's successor list, folding
// every foldable vanishing target. It returns worker-local transitions for
// the sequential merge.
func (fc *foldCtx) foldTransitions(ts []elab.Transition) ([]genTransition, error) {
	out := make([]genTransition, 0, len(ts))
	emitOriginal := func(tr *elab.Transition) {
		out = append(out, genTransition{label: tr.Label, rate: tr.Rate, next: tr.Next})
	}
	for i := range ts {
		tr := &ts[i]
		r := tr.Rate
		if r.Kind != rates.Exp && r.Kind != rates.Immediate {
			emitOriginal(tr)
			continue
		}
		key := fc.keyOf(tr.Next)
		entry, err := fc.expandTarget(tr.Next, key, 0)
		if err != nil {
			return nil, err
		}
		if entry.terms == nil || (r.Slot > 0 && !entry.linear) {
			emitOriginal(tr)
			continue
		}
		for ti := range entry.terms {
			term := &entry.terms[ti]
			nr := r
			switch r.Kind {
			case rates.Exp:
				nr.Lambda *= term.prob
			case rates.Immediate:
				nr.Weight *= term.prob
			}
			var aux []auxTerm
			if len(term.auxLab) > 0 {
				aux = make([]auxTerm, len(term.auxLab))
				for ai, al := range term.auxLab {
					aux[ai] = auxTerm{label: al, count: term.auxFlow[ai] / term.prob}
				}
			}
			out = append(out, genTransition{label: tr.Label, rate: nr, next: term.state, aux: aux})
		}
	}
	return out, nil
}
