package lts

import (
	"strings"
	"testing"

	"repro/internal/rates"
)

func TestWriteAUT(t *testing.T) {
	l := New(3)
	l.Initial = 0
	l.AddTransition(0, 1, l.LabelIndex("a"), rates.ExpRate(2))
	l.AddTransition(1, 2, TauIndex, rates.UntimedRate())
	l.AddTransition(2, 0, l.LabelIndex("b"), rates.UntimedRate())
	var sb strings.Builder
	if err := WriteAUT(&sb, l); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"des (0, 3, 3)",
		`(0, "a {exp(2)}", 1)`,
		`(1, "tau", 2)`,
		`(2, "b", 0)`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("AUT output missing %q:\n%s", want, out)
		}
	}
}

func TestReadAUTRoundTrip(t *testing.T) {
	l := New(4)
	l.Initial = 1
	l.AddTransition(1, 0, l.LabelIndex("x"), rates.UntimedRate())
	l.AddTransition(0, 2, TauIndex, rates.UntimedRate())
	l.AddTransition(2, 3, l.LabelIndex("y y"), rates.UntimedRate()) // label with space
	l.AddTransition(3, 1, l.LabelIndex("x"), rates.UntimedRate())
	var sb strings.Builder
	if err := WriteAUT(&sb, l); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAUT(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumStates != l.NumStates || got.Initial != l.Initial ||
		got.NumTransitions() != l.NumTransitions() {
		t.Fatalf("round trip changed shape: %d/%d/%d vs %d/%d/%d",
			got.NumStates, got.Initial, got.NumTransitions(),
			l.NumStates, l.Initial, l.NumTransitions())
	}
	// Tau is preserved as tau.
	tauSeen := false
	got.Edges(func(src, dst, label int, _ rates.Rate) {
		if label == TauIndex {
			tauSeen = true
		}
	})
	if !tauSeen {
		t.Error("tau transition lost")
	}
}

func TestReadAUTVariants(t *testing.T) {
	// Unquoted labels and the CADP invisible action "i".
	src := "des (0, 2, 2)\n(0, i, 1)\n(1, hello, 0)\n"
	l, err := ReadAUT(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if l.NumStates != 2 || l.NumTransitions() != 2 {
		t.Fatalf("shape: %d states %d transitions", l.NumStates, l.NumTransitions())
	}
	tauSeen := false
	l.Edges(func(src, dst, label int, _ rates.Rate) {
		if label == TauIndex {
			tauSeen = true
		}
	})
	if !tauSeen {
		t.Error("\"i\" should map to tau")
	}
}

func TestReadAUTErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty input", ""},
		{"bad header", "not a header\n"},
		{"initial out of range", "des (5, 0, 2)\n"},
		{"negative initial", "des (-1, 0, 2)\n"},
		{"negative transition count", "des (0, -1, 2)\n"},
		{"zero states", "des (0, 0, 0)\n"},
		{"negative states", "des (0, 0, -3)\n"},
		{"destination out of range", "des (0, 1, 2)\n(0, \"a\", 9)\n"},
		{"negative source", "des (0, 1, 2)\n(-1, \"a\", 1)\n"},
		{"negative destination", "des (0, 1, 2)\n(0, \"a\", -2)\n"},
		{"transition count mismatch", "des (0, 2, 2)\n(0, \"a\", 1)\n"},
		{"malformed line", "des (0, 1, 2)\nnot-a-transition\n"},
		{"bad source", "des (0, 1, 2)\n(x, \"a\", 1)\n"},
		{"bad destination", "des (0, 1, 2)\n(0, \"a\", y)\n"},
		{"unterminated quote", "des (0, 1, 2)\n(0, \"unterm, 1)\n"},
		{"unterminated quote with escape", "des (0, 1, 2)\n(0, \"trail\\\", 1)\n"},
		{"no comma after quoted label", "des (0, 1, 2)\n(0, \"a\" 1)\n"},
		{"missing commas", "des (0, 1, 2)\n(0 \"nocommas\" 1)\n"},
	}
	for _, tt := range cases {
		if _, err := ReadAUT(strings.NewReader(tt.src)); err == nil {
			t.Errorf("%s: should fail: %q", tt.name, tt.src)
		}
	}
}
