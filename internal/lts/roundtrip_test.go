package lts_test

// External-package test: builds a real paper model (internal/models) and
// round-trips its generated state space through the Aldebaran writer and
// parser, which an in-package test could not do without an import cycle.

import (
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/elab"
	"repro/internal/lts"
	"repro/internal/models"
	"repro/internal/rates"
)

// edgeStrings renders every transition of an LTS as "src|label|dst" with
// the rate decoration WriteAUT applies, so the multiset can be compared
// across a serialization round trip (rates survive only as label text).
func edgeStrings(l *lts.LTS, decorate bool) []string {
	var out []string
	l.Edges(func(src, dst, label int, r rates.Rate) {
		name := l.LabelName(label)
		if decorate && r.Kind != 0 && r.String() != "_" {
			name += " {" + r.String() + "}"
		}
		out = append(out, strconv.Itoa(src)+"|"+name+"|"+strconv.Itoa(dst))
	})
	sort.Strings(out)
	return out
}

// TestAUTRoundTripRPC is the satellite property test: the generated state
// space of the paper's revised RPC system survives WriteAUT → ReadAUT with
// its shape and its full (src, decorated label, dst) edge multiset intact.
func TestAUTRoundTripRPC(t *testing.T) {
	arch, err := models.BuildRPCRevised(models.DefaultRPCParams())
	if err != nil {
		t.Fatal(err)
	}
	m, err := elab.Elaborate(arch)
	if err != nil {
		t.Fatal(err)
	}
	l, err := lts.Generate(m, lts.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if l.NumStates == 0 || l.NumTransitions() == 0 {
		t.Fatal("degenerate RPC state space")
	}

	var sb strings.Builder
	if err := lts.WriteAUT(&sb, l); err != nil {
		t.Fatal(err)
	}
	got, err := lts.ReadAUT(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}

	if got.NumStates != l.NumStates || got.Initial != l.Initial ||
		got.NumTransitions() != l.NumTransitions() {
		t.Fatalf("shape changed: got %d/%d/%d, want %d/%d/%d",
			got.NumStates, got.Initial, got.NumTransitions(),
			l.NumStates, l.Initial, l.NumTransitions())
	}

	want := edgeStrings(l, true)    // original edges with rate decorations
	have := edgeStrings(got, false) // parsed edges carry decorations in the label
	if len(want) != len(have) {
		t.Fatalf("edge count: got %d, want %d", len(have), len(want))
	}
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("edge %d differs:\n  got  %s\n  want %s", i, have[i], want[i])
		}
	}
}
