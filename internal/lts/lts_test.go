package lts

import (
	"strings"
	"testing"

	"repro/internal/aemilia"
	"repro/internal/elab"
	"repro/internal/expr"
	"repro/internal/rates"
)

func mustModel(t *testing.T, a *aemilia.ArchiType) *elab.Model {
	t.Helper()
	m, err := elab.Elaborate(a)
	if err != nil {
		t.Fatalf("Elaborate: %v", err)
	}
	return m
}

// workerModel: a worker loops work(internal) then report(output, blocked or
// attached), plus a supervisor that consumes reports.
func workerModel(t *testing.T) *elab.Model {
	worker := aemilia.NewElemType("Worker_Type", nil, []string{"report"},
		aemilia.NewBehavior("W", nil,
			aemilia.Pre("work", rates.UntimedRate(),
				aemilia.Pre("report", rates.UntimedRate(), aemilia.Invoke("W")))))
	sup := aemilia.NewElemType("Sup_Type", []string{"report"}, nil,
		aemilia.NewBehavior("S", nil,
			aemilia.Pre("report", rates.UntimedRate(), aemilia.Invoke("S"))))
	a := aemilia.NewArchiType("WS",
		[]*aemilia.ElemType{worker, sup},
		[]*aemilia.Instance{
			aemilia.NewInstance("W", "Worker_Type"),
			aemilia.NewInstance("S", "Sup_Type"),
		},
		[]aemilia.Attachment{aemilia.Attach("W", "report", "S", "report")})
	return mustModel(t, a)
}

func bufferModel(t *testing.T, capacity int64) *elab.Model {
	buf := aemilia.NewElemType("Buffer_Type",
		[]string{"put"}, []string{"get"},
		aemilia.NewBehavior("Buffer", []aemilia.Param{aemilia.IntParam("n")},
			aemilia.Ch(
				aemilia.When(expr.Bin(expr.OpLt, expr.Ref("n"), expr.Int(capacity)),
					aemilia.Pre("put", rates.PassiveRate(),
						aemilia.Invoke("Buffer", expr.Bin(expr.OpAdd, expr.Ref("n"), expr.Int(1))))),
				aemilia.When(expr.Bin(expr.OpGt, expr.Ref("n"), expr.Int(0)),
					aemilia.Pre("get", rates.PassiveRate(),
						aemilia.Invoke("Buffer", expr.Bin(expr.OpSub, expr.Ref("n"), expr.Int(1))))),
			)))
	prod := aemilia.NewElemType("Prod_Type", nil, []string{"put"},
		aemilia.NewBehavior("P", nil,
			aemilia.Pre("put", rates.ExpRate(2), aemilia.Invoke("P"))))
	cons := aemilia.NewElemType("Cons_Type", []string{"get"}, nil,
		aemilia.NewBehavior("C", nil,
			aemilia.Pre("get", rates.ExpRate(3), aemilia.Invoke("C"))))
	a := aemilia.NewArchiType("PC",
		[]*aemilia.ElemType{buf, prod, cons},
		[]*aemilia.Instance{
			aemilia.NewInstance("B", "Buffer_Type", expr.Int(0)),
			aemilia.NewInstance("P", "Prod_Type"),
			aemilia.NewInstance("C", "Cons_Type"),
		},
		[]aemilia.Attachment{
			aemilia.Attach("P", "put", "B", "put"),
			aemilia.Attach("B", "get", "C", "get"),
		})
	return mustModel(t, a)
}

func TestGenerateWorker(t *testing.T) {
	l, err := Generate(workerModel(t), GenerateOptions{KeepDescriptions: true})
	if err != nil {
		t.Fatal(err)
	}
	if l.NumStates != 2 {
		t.Fatalf("NumStates = %d, want 2", l.NumStates)
	}
	if l.NumTransitions() != 2 {
		t.Fatalf("NumTransitions = %d, want 2", l.NumTransitions())
	}
	out0 := l.Out(0)
	if out0.Len() != 1 || l.LabelName(int(out0.Label[0])) != "W.work" {
		t.Errorf("Out(0) = %v", out0)
	}
	out1 := l.Out(1)
	if out1.Len() != 1 || l.LabelName(int(out1.Label[0])) != "W.report#S.report" {
		t.Errorf("Out(1) = %v", out1)
	}
	if len(l.Deadlocks()) != 0 {
		t.Errorf("unexpected deadlocks: %v", l.Deadlocks())
	}
}

func TestGenerateBufferSize(t *testing.T) {
	l, err := Generate(bufferModel(t, 5), GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Global state is determined by the buffer fill level: 0..5.
	if l.NumStates != 6 {
		t.Fatalf("NumStates = %d, want 6", l.NumStates)
	}
	// 5 puts + 5 gets.
	if l.NumTransitions() != 10 {
		t.Fatalf("NumTransitions = %d, want 10", l.NumTransitions())
	}
}

func TestGenerateMaxStates(t *testing.T) {
	_, err := Generate(bufferModel(t, 100), GenerateOptions{MaxStates: 10})
	var tms *TooManyStatesError
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("want TooManyStatesError, got %v", err)
	}
	if ok := errorsAs(err, &tms); !ok || tms.Limit != 10 {
		t.Fatalf("limit not propagated: %v", err)
	}
	if tms.States != 10 {
		t.Fatalf("States = %d, want exactly the limit (no overshoot)", tms.States)
	}
}

func errorsAs(err error, target any) bool {
	if e, ok := err.(*TooManyStatesError); ok {
		*(target.(**TooManyStatesError)) = e
		return true
	}
	return false
}

func TestPredicates(t *testing.T) {
	l, err := Generate(bufferModel(t, 2), GenerateOptions{
		Predicates: []StatePred{
			{Instance: "B", Action: "get"},
			{Instance: "B", Action: "put"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// State 0 is the empty buffer: get disabled, put enabled.
	if v, err := l.Pred("B.get", 0); err != nil || v {
		t.Errorf("B.get at 0 = (%t, %v), want false", v, err)
	}
	if v, err := l.Pred("B.put", 0); err != nil || !v {
		t.Errorf("B.put at 0 = (%t, %v), want true", v, err)
	}
	if _, err := l.Pred("B.nothing", 0); err == nil {
		t.Error("unknown predicate should error")
	}
}

func TestHide(t *testing.T) {
	l, err := Generate(workerModel(t), GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h := Hide(l, LabelMatcherByNames("W.work"))
	var sawTau, sawReport bool
	h.Edges(func(src, dst, label int, _ rates.Rate) {
		switch h.LabelName(label) {
		case TauName:
			sawTau = true
		case "W.report#S.report":
			sawReport = true
		default:
			t.Errorf("unexpected label %q", h.LabelName(label))
		}
	})
	if !sawTau || !sawReport {
		t.Errorf("hide result: sawTau=%t sawReport=%t", sawTau, sawReport)
	}
	if h.NumStates != l.NumStates {
		t.Errorf("hide must preserve states")
	}
}

func TestRestrict(t *testing.T) {
	l, err := Generate(bufferModel(t, 3), GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Forbid gets: only states 0..3 reachable via puts, then deadlock at 3.
	r := Restrict(l, func(lbl string) bool { return strings.Contains(lbl, "get") })
	if r.NumStates != 4 {
		t.Fatalf("restricted NumStates = %d, want 4", r.NumStates)
	}
	if r.NumTransitions() != 3 {
		t.Fatalf("restricted NumTransitions = %d, want 3", r.NumTransitions())
	}
	if len(r.Deadlocks()) != 1 {
		t.Errorf("expected exactly one deadlock, got %v", r.Deadlocks())
	}
}

func TestRestrictKeepsPredicates(t *testing.T) {
	l, err := Generate(bufferModel(t, 3), GenerateOptions{
		KeepDescriptions: true,
		Predicates:       []StatePred{{Instance: "B", Action: "put"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := Restrict(l, func(lbl string) bool { return strings.Contains(lbl, "get") })
	if !r.HasStateDescs() {
		t.Fatal("descriptions lost")
	}
	for s := 0; s < r.NumStates; s++ {
		if r.StateDesc(s) == "" {
			t.Fatalf("empty description for state %d", s)
		}
	}
	// The last reachable state is the full buffer, where put is disabled.
	full := r.NumStates - 1
	if v, err := r.Pred("B.put", full); err != nil || v {
		t.Errorf("B.put at full = (%t, %v), want false", v, err)
	}
}

func TestLabelMatcherByInstance(t *testing.T) {
	m := LabelMatcherByInstance("DPM")
	tests := []struct {
		label string
		want  bool
	}{
		{"DPM.send_shutdown", true},
		{"DPM.send_shutdown#S.receive_shutdown", true},
		{"S.notify_busy#DPM.receive_busy_notice", true},
		{"S.send#C.receive", false},
		{"C.process", false},
		{"XDPM.x", false},
	}
	for _, tt := range tests {
		if got := m(tt.label); got != tt.want {
			t.Errorf("match(%q) = %t, want %t", tt.label, got, tt.want)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	l, err := Generate(workerModel(t), GenerateOptions{KeepDescriptions: true})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteDOT(&sb, l, "worker"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", "doublecircle", "W.work", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

// TestWriteDOTQuotedLabel guards against double-escaping: a label that
// contains a double quote must render as \" in the DOT output, not \\\"
// (the old code pre-escaped quotes before handing the label to %q).
func TestWriteDOTQuotedLabel(t *testing.T) {
	l := New(2)
	l.AddTransition(0, 1, l.LabelIndex(`say "hi"`), rates.UntimedRate())
	var sb strings.Builder
	if err := WriteDOT(&sb, l, "q"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `label="say \"hi\""`) {
		t.Errorf("quote not escaped exactly once:\n%s", out)
	}
	if strings.Contains(out, `\\"`) {
		t.Errorf("double-escaped quote in DOT output:\n%s", out)
	}
}

func TestLookupLabel(t *testing.T) {
	l := New(1)
	i := l.LabelIndex("a.b")
	if j, ok := l.LookupLabel("a.b"); !ok || j != i {
		t.Errorf("LookupLabel = (%d, %t), want (%d, true)", j, ok, i)
	}
	if _, ok := l.LookupLabel("missing"); ok {
		t.Error("missing label should not be found")
	}
	if l.LabelIndex("a.b") != i {
		t.Error("LabelIndex must be idempotent")
	}
}
