// Package lts provides explicit labelled transition systems: generation by
// reachability from an elaborated architectural model, hiding (relabelling
// to tau), restriction (forbidding actions), and utilities used by the
// equivalence checker and the Markovian analyser.
package lts

import (
	"fmt"
	"sort"

	"repro/internal/rates"
)

// TauIndex is the label-table index reserved for the invisible action.
const TauIndex = 0

// TauName is the display name of the invisible action.
const TauName = "tau"

// Transition is one labelled transition between explicit states.
type Transition struct {
	// Src and Dst are state indices.
	Src, Dst int
	// Label indexes the LTS label table.
	Label int
	// Rate is the timing annotation of the transition.
	Rate rates.Rate
}

// LTS is an explicit labelled transition system.
type LTS struct {
	// Initial is the initial state index.
	Initial int
	// NumStates is the number of states.
	NumStates int
	// Labels is the label table; Labels[TauIndex] == TauName.
	Labels []string
	// Transitions lists all transitions, grouped by source state.
	Transitions []Transition
	// StateDescs optionally carries a readable description per state.
	StateDescs []string
	// PredNames names the state predicates evaluated at generation time.
	PredNames []string
	// Preds holds predicate truth per state: Preds[p][s].
	Preds [][]bool

	labelIdx map[string]int
	outIdx   []int32 // CSR-style index into Transitions, built lazily
}

// New creates an empty LTS with a tau label and n states.
func New(n int) *LTS {
	l := &LTS{
		NumStates: n,
		Labels:    []string{TauName},
		labelIdx:  map[string]int{TauName: TauIndex},
	}
	return l
}

// LabelIndex interns a label name and returns its index.
func (l *LTS) LabelIndex(name string) int {
	if l.labelIdx == nil {
		l.labelIdx = make(map[string]int, len(l.Labels))
		for i, s := range l.Labels {
			l.labelIdx[s] = i
		}
	}
	if i, ok := l.labelIdx[name]; ok {
		return i
	}
	l.Labels = append(l.Labels, name)
	i := len(l.Labels) - 1
	l.labelIdx[name] = i
	return i
}

// LookupLabel returns the index of a label name, if present.
func (l *LTS) LookupLabel(name string) (int, bool) {
	if l.labelIdx == nil {
		l.LabelIndex(TauName) // force index build
	}
	i, ok := l.labelIdx[name]
	return i, ok
}

// AddTransition appends a transition. Invalidates the adjacency index.
func (l *LTS) AddTransition(src, dst, label int, r rates.Rate) {
	l.Transitions = append(l.Transitions, Transition{Src: src, Dst: dst, Label: label, Rate: r})
	l.outIdx = nil
}

// sortTransitions orders transitions by (Src, Label, Dst) for deterministic
// iteration and builds the CSR index.
func (l *LTS) buildIndex() {
	if l.outIdx != nil {
		return
	}
	sort.Slice(l.Transitions, func(i, j int) bool {
		a, b := l.Transitions[i], l.Transitions[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		return a.Dst < b.Dst
	})
	l.outIdx = make([]int32, l.NumStates+1)
	for _, t := range l.Transitions {
		l.outIdx[t.Src+1]++
	}
	for i := 1; i <= l.NumStates; i++ {
		l.outIdx[i] += l.outIdx[i-1]
	}
}

// Out returns the transitions leaving state s.
func (l *LTS) Out(s int) []Transition {
	l.buildIndex()
	return l.Transitions[l.outIdx[s]:l.outIdx[s+1]]
}

// NumTransitions returns the number of transitions.
func (l *LTS) NumTransitions() int { return len(l.Transitions) }

// IsDeadlock reports whether state s has no outgoing transitions.
func (l *LTS) IsDeadlock(s int) bool { return len(l.Out(s)) == 0 }

// Deadlocks returns all deadlocked states.
func (l *LTS) Deadlocks() []int {
	var out []int
	for s := 0; s < l.NumStates; s++ {
		if l.IsDeadlock(s) {
			out = append(out, s)
		}
	}
	return out
}

// Pred returns the truth of the named predicate in state s.
func (l *LTS) Pred(name string, s int) (bool, error) {
	for i, n := range l.PredNames {
		if n == name {
			return l.Preds[i][s], nil
		}
	}
	return false, fmt.Errorf("lts: unknown predicate %q", name)
}

// Hide returns a copy of the LTS in which every transition whose label
// satisfies match is relabelled to tau. Rates are preserved.
func Hide(l *LTS, match func(label string) bool) *LTS {
	out := New(l.NumStates)
	out.Initial = l.Initial
	out.StateDescs = l.StateDescs
	out.PredNames = l.PredNames
	out.Preds = l.Preds
	for _, t := range l.Transitions {
		name := l.Labels[t.Label]
		li := TauIndex
		if t.Label != TauIndex && !match(name) {
			li = out.LabelIndex(name)
		}
		out.AddTransition(t.Src, t.Dst, li, t.Rate)
	}
	return out
}

// Restrict returns the sub-LTS obtained by removing every transition whose
// label satisfies match and then restricting to the states reachable from
// the initial state. State indices are compacted; descriptions and
// predicates are carried over.
func Restrict(l *LTS, match func(label string) bool) *LTS {
	keep := make([]bool, len(l.Transitions))
	for i, t := range l.Transitions {
		keep[i] = t.Label == TauIndex || !match(l.Labels[t.Label])
	}
	// BFS over kept transitions.
	l.buildIndex()
	remap := make([]int, l.NumStates)
	for i := range remap {
		remap[i] = -1
	}
	order := []int{l.Initial}
	remap[l.Initial] = 0
	for qi := 0; qi < len(order); qi++ {
		s := order[qi]
		for i := int(l.outIdx[s]); i < int(l.outIdx[s+1]); i++ {
			if !keep[i] {
				continue
			}
			d := l.Transitions[i].Dst
			if remap[d] < 0 {
				remap[d] = len(order)
				order = append(order, d)
			}
		}
	}
	out := New(len(order))
	out.Initial = 0
	if l.StateDescs != nil {
		out.StateDescs = make([]string, len(order))
	}
	if l.Preds != nil {
		out.PredNames = l.PredNames
		out.Preds = make([][]bool, len(l.Preds))
		for p := range l.Preds {
			out.Preds[p] = make([]bool, len(order))
		}
	}
	for newIdx, oldIdx := range order {
		if out.StateDescs != nil {
			out.StateDescs[newIdx] = l.StateDescs[oldIdx]
		}
		for p := range out.Preds {
			out.Preds[p][newIdx] = l.Preds[p][oldIdx]
		}
	}
	for i, t := range l.Transitions {
		if !keep[i] || remap[t.Src] < 0 || remap[t.Dst] < 0 {
			continue
		}
		name := l.Labels[t.Label]
		li := TauIndex
		if t.Label != TauIndex {
			li = out.LabelIndex(name)
		}
		out.AddTransition(remap[t.Src], remap[t.Dst], li, t.Rate)
	}
	return out
}

// LabelMatcherByInstance returns a matcher for all transition labels that
// involve the given instance name: "I.a" or any "…#I.a" / "I.a#…".
// It is the standard way to designate a component's actions as high.
func LabelMatcherByInstance(inst string) func(string) bool {
	prefix := inst + "."
	return func(label string) bool {
		if len(label) >= len(prefix) && label[:len(prefix)] == prefix {
			return true
		}
		for i := 0; i+1 < len(label); i++ {
			if label[i] == '#' {
				rest := label[i+1:]
				return len(rest) >= len(prefix) && rest[:len(prefix)] == prefix
			}
		}
		return false
	}
}

// LabelInvolves reports whether a transition label involves the given
// "Instance.action" pair, either standalone ("I.a") or as one side of a
// synchronization ("I.a#J.b" / "J.b#I.a").
func LabelInvolves(label, instAction string) bool {
	if label == instAction {
		return true
	}
	for i := 0; i < len(label); i++ {
		if label[i] == '#' {
			return label[:i] == instAction || label[i+1:] == instAction
		}
	}
	return false
}

// LabelMatcherByNames returns a matcher for an explicit set of labels.
func LabelMatcherByNames(names ...string) func(string) bool {
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	return func(label string) bool { return set[label] }
}
