// Package lts provides explicit labelled transition systems: generation by
// reachability from an elaborated architectural model, hiding (relabelling
// to tau), restriction (forbidding actions), and utilities used by the
// equivalence checker and the Markovian analyser.
//
// Storage is the compact interned representation of internal/statespace:
// transitions live in CSR (compressed sparse row) arrays, labels are
// interned once in a symbol table shared by an LTS and every system
// derived from it, and state descriptions are computed lazily from the
// generator's interned state encodings, so analyses never pay for
// diagnostics they do not print.
package lts

import (
	"fmt"

	"repro/internal/rates"
	"repro/internal/statespace"
)

// TauIndex is the label-table index reserved for the invisible action.
const TauIndex = statespace.TauIndex

// TauName is the display name of the invisible action.
const TauName = statespace.TauName

// Transition is one labelled transition between explicit states, in the
// form returned by Out's span accessors.
type Transition struct {
	// Src and Dst are state indices.
	Src, Dst int
	// Label indexes the LTS label table.
	Label int
	// Rate is the timing annotation of the transition.
	Rate rates.Rate
}

// Span is a read-only view of one state's outgoing transitions inside the
// CSR arrays: Dst, Label and Rate are parallel slices. Mutating a span
// would corrupt shared storage; treat it as immutable.
type Span struct {
	// Dst holds the destination state of each transition.
	Dst []int32
	// Label holds the symbol-table index of each transition label.
	Label []int32
	// Rate holds the timing annotation of each transition.
	Rate []rates.Rate
}

// Len returns the number of transitions in the span.
func (sp Span) Len() int { return len(sp.Dst) }

// LTS is an explicit labelled transition system.
type LTS struct {
	// Initial is the initial state index.
	Initial int
	// NumStates is the number of states.
	NumStates int
	// PredNames names the state predicates evaluated at generation time.
	PredNames []string
	// Preds holds predicate truth per state: Preds[p][s].
	Preds [][]bool

	syms    *statespace.Symbols
	csr     statespace.CSR
	pending []statespace.Edge
	sealed  bool
	descFn  func(int) string

	// Folded reward-attribution pool (compositional minimization): when the
	// generator folds measure-unobserved vanishing states into their
	// incoming transitions, each redirected transition may carry the
	// expected traversal counts of the observed labels on the folded path.
	// Entry a > 0 of the CSR Aux column indexes this pool; entry 0 means no
	// attribution. The pool is shared by derived systems (Hide shares the
	// structural arrays; Restrict remaps the Aux column but reuses the
	// pool).
	auxStart []int32 // len = numAux+1; id a occupies auxStart[a-1]..auxStart[a]
	auxLabel []int32
	auxCount []float64
	// memBytes is the extra resident memory attributed to the LTS by its
	// producer (the generator's interner slab); 0 when unknown.
	memBytes int
}

// New creates an empty LTS with a tau label and n states.
func New(n int) *LTS {
	return &LTS{NumStates: n, syms: statespace.NewSymbols()}
}

// NewShared creates an empty LTS with n states sharing an existing symbol
// table — the constructor for systems derived from another LTS, so label
// indices stay stable across a whole pipeline.
func NewShared(n int, syms *statespace.Symbols) *LTS {
	if syms == nil {
		syms = statespace.NewSymbols()
	}
	return &LTS{NumStates: n, syms: syms}
}

// Symbols returns the label symbol table of the LTS.
func (l *LTS) Symbols() *statespace.Symbols { return l.syms }

// LabelIndex interns a label name and returns its index.
func (l *LTS) LabelIndex(name string) int { return l.syms.Intern(name) }

// LookupLabel returns the index of a label name, if present.
func (l *LTS) LookupLabel(name string) (int, bool) { return l.syms.Lookup(name) }

// LabelName returns the label at index i.
func (l *LTS) LabelName(i int) string { return l.syms.Name(i) }

// NumLabels returns the number of interned labels. Labels are shared
// pipeline-wide, so a derived system may carry labels none of its own
// transitions use.
func (l *LTS) NumLabels() int { return l.syms.Len() }

// AddTransition appends a transition. The transition becomes part of the
// canonical CSR form at the next read.
func (l *LTS) AddTransition(src, dst, label int, r rates.Rate) {
	l.unseal()
	l.pending = append(l.pending, statespace.Edge{
		Src: int32(src), Dst: int32(dst), Label: int32(label), Rate: r,
	})
}

// unseal exports the CSR form back to the pending edge list so more
// transitions can be added (a rare, construction-time path).
func (l *LTS) unseal() {
	if !l.sealed {
		return
	}
	edges := make([]statespace.Edge, 0, l.csr.NumEdges())
	for s := 0; s < l.NumStates; s++ {
		lo, hi := l.csr.Row(s)
		for i := lo; i < hi; i++ {
			e := statespace.Edge{
				Src: int32(s), Dst: l.csr.Dst[i], Label: l.csr.Label[i], Rate: l.csr.Rate[i],
			}
			if l.csr.Aux != nil {
				e.Aux = l.csr.Aux[i]
			}
			edges = append(edges, e)
		}
	}
	l.pending = edges
	l.csr = statespace.CSR{}
	l.sealed = false
}

// seal builds the canonical CSR form from the pending edges.
func (l *LTS) seal() {
	if l.sealed {
		return
	}
	l.csr = statespace.Build(l.NumStates, l.pending)
	l.pending = nil
	l.sealed = true
}

// setCSR installs an externally built CSR as the canonical storage.
func (l *LTS) setCSR(c statespace.CSR) {
	l.csr = c
	l.pending = nil
	l.sealed = true
}

// Out returns the span of transitions leaving state s.
func (l *LTS) Out(s int) Span {
	l.seal()
	lo, hi := l.csr.Row(s)
	return Span{Dst: l.csr.Dst[lo:hi], Label: l.csr.Label[lo:hi], Rate: l.csr.Rate[lo:hi]}
}

// EdgeBase returns the global CSR index of the first transition of state
// s; together with Out it gives every transition of s a stable global
// index (used by the CTMC extraction to key reward bookkeeping).
func (l *LTS) EdgeBase(s int) int {
	l.seal()
	return int(l.csr.RowStart[s])
}

// EdgeLabel returns the label index of the transition at global CSR index
// i.
func (l *LTS) EdgeLabel(i int) int {
	l.seal()
	return int(l.csr.Label[i])
}

// EdgeSlot returns the rate-slot index of the transition at global CSR
// index i: k > 0 when the transition's exponential rate is bound to
// symbolic rate parameter k (rates.Rate.Slot), 0 for a constant rate.
// Together with EdgeBase this exposes the per-edge slot column of a
// parametrically elaborated system.
func (l *LTS) EdgeSlot(i int) int {
	l.seal()
	return l.csr.Rate[i].Slot
}

// EdgeAux returns the reward-attribution handle of the transition at
// global CSR index i (0 = none); see AuxTerms.
func (l *LTS) EdgeAux(i int) int {
	l.seal()
	if l.csr.Aux == nil {
		return 0
	}
	return int(l.csr.Aux[i])
}

// AuxTerms returns the folded reward attribution of handle a as parallel
// label-index and expected-count slices. The slices alias the pool and
// must not be modified. Handle 0 returns empty slices.
func (l *LTS) AuxTerms(a int) (labels []int32, counts []float64) {
	if a <= 0 || l.auxStart == nil {
		return nil, nil
	}
	lo, hi := l.auxStart[a-1], l.auxStart[a]
	return l.auxLabel[lo:hi], l.auxCount[lo:hi]
}

// NumAux returns the number of distinct reward-attribution entries.
func (l *LTS) NumAux() int {
	if l.auxStart == nil {
		return 0
	}
	return len(l.auxStart) - 1
}

// setAuxPool installs the attribution pool (generator-side).
func (l *LTS) setAuxPool(start []int32, label []int32, count []float64) {
	l.auxStart, l.auxLabel, l.auxCount = start, label, count
}

// shareAux copies the attribution pool reference from a parent system.
func (l *LTS) shareAux(p *LTS) {
	l.auxStart, l.auxLabel, l.auxCount = p.auxStart, p.auxLabel, p.auxCount
}

// SetMemBytes records extra resident memory attributed to the LTS by its
// producer (the generator's interned state table).
func (l *LTS) SetMemBytes(n int) { l.memBytes = n }

// MemStats reports the resident memory of the system's canonical storage:
// the state-table bytes recorded by the producer (0 when the LTS was not
// generated), the CSR transition arrays, and the attribution pool.
func (l *LTS) MemStats() (stateTable, csrBytes, auxBytes int) {
	l.seal()
	return l.memBytes, l.csr.SizeBytes(), 4*len(l.auxStart) + 4*len(l.auxLabel) + 8*len(l.auxCount)
}

// NumRateSlots returns the number of symbolic rate parameters carried by
// the system's edges: the highest slot index on any transition rate, or 0
// when every rate is constant. ctmc.Build uses it to size the rebind
// machinery; derived systems (Hide, Restrict) preserve rates and with them
// the slot column.
func (l *LTS) NumRateSlots() int {
	l.seal()
	max := 0
	for i := range l.csr.Rate {
		if s := l.csr.Rate[i].Slot; s > max {
			max = s
		}
	}
	return max
}

// SlotDefaults returns the rate values the system's edges were elaborated
// with, indexed by slot (element k-1 is slot k's Lambda): the rate vector
// that makes a Rebind a no-op. Callers that need a concrete sweep point
// for a model solved "as elaborated" — e.g. a single-point checkpointed
// solve — use it as the anchor. It returns nil when the system carries no
// rate slots.
func (l *LTS) SlotDefaults() []float64 {
	l.seal()
	n := l.NumRateSlots()
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range l.csr.Rate {
		if s := l.csr.Rate[i].Slot; s > 0 {
			out[s-1] = l.csr.Rate[i].Lambda
		}
	}
	return out
}

// Edges calls fn for every transition in canonical order.
func (l *LTS) Edges(fn func(src, dst, label int, r rates.Rate)) {
	l.seal()
	for s := 0; s < l.NumStates; s++ {
		lo, hi := l.csr.Row(s)
		for i := lo; i < hi; i++ {
			fn(s, int(l.csr.Dst[i]), int(l.csr.Label[i]), l.csr.Rate[i])
		}
	}
}

// NumTransitions returns the number of transitions.
func (l *LTS) NumTransitions() int { return l.csr.NumEdges() + len(l.pending) }

// SetStateDescFunc installs a lazy state-description provider, typically a
// closure over the generating model and its interned state table.
func (l *LTS) SetStateDescFunc(fn func(int) string) { l.descFn = fn }

// HasStateDescs reports whether state descriptions are available.
func (l *LTS) HasStateDescs() bool { return l.descFn != nil }

// StateDesc returns a readable description of state s, or "s<n>" when no
// provider is installed. Descriptions are rendered on demand so bulk
// analyses never pay for them.
func (l *LTS) StateDesc(s int) string {
	if l.descFn != nil {
		return l.descFn(s)
	}
	return fmt.Sprintf("s%d", s)
}

// IsDeadlock reports whether state s has no outgoing transitions.
func (l *LTS) IsDeadlock(s int) bool { return l.Out(s).Len() == 0 }

// Deadlocks returns all deadlocked states.
func (l *LTS) Deadlocks() []int {
	var out []int
	for s := 0; s < l.NumStates; s++ {
		if l.IsDeadlock(s) {
			out = append(out, s)
		}
	}
	return out
}

// Pred returns the truth of the named predicate in state s.
func (l *LTS) Pred(name string, s int) (bool, error) {
	for i, n := range l.PredNames {
		if n == name {
			return l.Preds[i][s], nil
		}
	}
	return false, fmt.Errorf("lts: unknown predicate %q", name)
}

// Hide returns the LTS in which every transition whose label satisfies
// match is relabelled to tau. This is an allocation-light pass over the
// CSR form: the structural arrays (row starts, destinations, rates) are
// shared with the input, only the label column is rewritten, and match is
// consulted once per distinct label rather than once per transition.
// Rates, predicates and state descriptions are preserved.
func Hide(l *LTS, match func(label string) bool) *LTS {
	l.seal()
	out := &LTS{
		Initial:   l.Initial,
		NumStates: l.NumStates,
		PredNames: l.PredNames,
		Preds:     l.Preds,
		syms:      l.syms,
		descFn:    l.descFn,
	}
	// Per-label verdicts, computed once over the symbol table.
	hideLab := make([]bool, l.syms.Len())
	for i := range hideLab {
		hideLab[i] = i != TauIndex && match(l.syms.Name(i))
	}
	labels := make([]int32, len(l.csr.Label))
	for i, li := range l.csr.Label {
		if hideLab[li] {
			labels[i] = TauIndex
		} else {
			labels[i] = li
		}
	}
	out.setCSR(statespace.CSR{
		RowStart: l.csr.RowStart,
		Dst:      l.csr.Dst,
		Label:    labels,
		Rate:     l.csr.Rate,
		Aux:      l.csr.Aux,
	})
	out.shareAux(l)
	return out
}

// Restrict returns the sub-LTS obtained by removing every transition whose
// label satisfies match and then restricting to the states reachable from
// the initial state. State indices are compacted; the symbol table is
// shared with the input, and descriptions and predicates are carried over.
func Restrict(l *LTS, match func(label string) bool) *LTS {
	l.seal()
	keepLab := make([]bool, l.syms.Len())
	for i := range keepLab {
		keepLab[i] = i == TauIndex || !match(l.syms.Name(i))
	}
	// BFS over kept transitions.
	remap := make([]int32, l.NumStates)
	for i := range remap {
		remap[i] = -1
	}
	order := []int32{int32(l.Initial)}
	remap[l.Initial] = 0
	keptEdges := 0
	for qi := 0; qi < len(order); qi++ {
		s := order[qi]
		lo, hi := l.csr.Row(int(s))
		for i := lo; i < hi; i++ {
			if !keepLab[l.csr.Label[i]] {
				continue
			}
			keptEdges++
			d := l.csr.Dst[i]
			if remap[d] < 0 {
				remap[d] = int32(len(order))
				order = append(order, d)
			}
		}
	}
	out := NewShared(len(order), l.syms)
	out.Initial = 0
	if l.descFn != nil {
		parent := l.descFn
		out.descFn = func(s int) string { return parent(int(order[s])) }
	}
	if l.Preds != nil {
		out.PredNames = l.PredNames
		out.Preds = make([][]bool, len(l.Preds))
		for p := range l.Preds {
			col := make([]bool, len(order))
			for newIdx, oldIdx := range order {
				col[newIdx] = l.Preds[p][oldIdx]
			}
			out.Preds[p] = col
		}
	}
	edges := make([]statespace.Edge, 0, keptEdges)
	for _, oldIdx := range order {
		lo, hi := l.csr.Row(int(oldIdx))
		for i := lo; i < hi; i++ {
			if !keepLab[l.csr.Label[i]] || remap[l.csr.Dst[i]] < 0 {
				continue
			}
			e := statespace.Edge{
				Src:   remap[oldIdx],
				Dst:   remap[l.csr.Dst[i]],
				Label: l.csr.Label[i],
				Rate:  l.csr.Rate[i],
			}
			if l.csr.Aux != nil {
				e.Aux = l.csr.Aux[i]
			}
			edges = append(edges, e)
		}
	}
	out.setCSR(statespace.Build(len(order), edges))
	out.shareAux(l)
	return out
}

// LabelMatcherByInstance returns a matcher for all transition labels that
// involve the given instance name: "I.a" or any "…#I.a" / "I.a#…".
// It is the standard way to designate a component's actions as high.
func LabelMatcherByInstance(inst string) func(string) bool {
	prefix := inst + "."
	return func(label string) bool {
		if len(label) >= len(prefix) && label[:len(prefix)] == prefix {
			return true
		}
		for i := 0; i+1 < len(label); i++ {
			if label[i] == '#' {
				rest := label[i+1:]
				return len(rest) >= len(prefix) && rest[:len(prefix)] == prefix
			}
		}
		return false
	}
}

// LabelInvolves reports whether a transition label involves the given
// "Instance.action" pair, either standalone ("I.a") or as one side of a
// synchronization ("I.a#J.b" / "J.b#I.a").
func LabelInvolves(label, instAction string) bool {
	if label == instAction {
		return true
	}
	for i := 0; i < len(label); i++ {
		if label[i] == '#' {
			return label[:i] == instAction || label[i+1:] == instAction
		}
	}
	return false
}

// LabelMatcherByNames returns a matcher for an explicit set of labels.
func LabelMatcherByNames(names ...string) func(string) bool {
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	return func(label string) bool { return set[label] }
}
