package lts

import (
	"errors"
	"testing"

	"repro/internal/aemilia"
	"repro/internal/elab"
	"repro/internal/expr"
	"repro/internal/rates"
)

// gridModel composes two independent producer/buffer/consumer triples, so
// the BFS frontier grows to O(capacity) states wide — wide enough to
// exercise the parallel frontier expansion (the single-buffer models never
// exceed a frontier of two).
func gridModel(t *testing.T, capacity int64) *elab.Model {
	t.Helper()
	buf := aemilia.NewElemType("Buffer_Type",
		[]string{"put"}, []string{"get"},
		aemilia.NewBehavior("Buffer", []aemilia.Param{aemilia.IntParam("n")},
			aemilia.Ch(
				aemilia.When(expr.Bin(expr.OpLt, expr.Ref("n"), expr.Int(capacity)),
					aemilia.Pre("put", rates.PassiveRate(),
						aemilia.Invoke("Buffer", expr.Bin(expr.OpAdd, expr.Ref("n"), expr.Int(1))))),
				aemilia.When(expr.Bin(expr.OpGt, expr.Ref("n"), expr.Int(0)),
					aemilia.Pre("get", rates.PassiveRate(),
						aemilia.Invoke("Buffer", expr.Bin(expr.OpSub, expr.Ref("n"), expr.Int(1))))),
			)))
	prod := aemilia.NewElemType("Prod_Type", nil, []string{"put"},
		aemilia.NewBehavior("P", nil,
			aemilia.Pre("put", rates.ExpRate(2), aemilia.Invoke("P"))))
	cons := aemilia.NewElemType("Cons_Type", []string{"get"}, nil,
		aemilia.NewBehavior("C", nil,
			aemilia.Pre("get", rates.ExpRate(3), aemilia.Invoke("C"))))
	a := aemilia.NewArchiType("Grid",
		[]*aemilia.ElemType{buf, prod, cons},
		[]*aemilia.Instance{
			aemilia.NewInstance("B1", "Buffer_Type", expr.Int(0)),
			aemilia.NewInstance("P1", "Prod_Type"),
			aemilia.NewInstance("C1", "Cons_Type"),
			aemilia.NewInstance("B2", "Buffer_Type", expr.Int(0)),
			aemilia.NewInstance("P2", "Prod_Type"),
			aemilia.NewInstance("C2", "Cons_Type"),
		},
		[]aemilia.Attachment{
			aemilia.Attach("P1", "put", "B1", "put"),
			aemilia.Attach("B1", "get", "C1", "get"),
			aemilia.Attach("P2", "put", "B2", "put"),
			aemilia.Attach("B2", "get", "C2", "get"),
		})
	return mustModel(t, a)
}

type flatEdge struct {
	src, dst int
	label    string
	rate     rates.Rate
}

func flatten(l *LTS) []flatEdge {
	var out []flatEdge
	l.Edges(func(src, dst, label int, r rates.Rate) {
		out = append(out, flatEdge{src, dst, l.LabelName(label), r})
	})
	return out
}

// TestGenerateParallelBitIdentity pins the tentpole contract: the LTS
// generated with a worker pool is identical — state numbering, edge order,
// labels, rates, predicate columns — to the sequential one.
func TestGenerateParallelBitIdentity(t *testing.T) {
	preds := []StatePred{
		{Instance: "B1", Action: "put"},
		{Instance: "B2", Action: "get"},
	}
	gen := func(workers int) *LTS {
		l, err := Generate(gridModel(t, 40), GenerateOptions{
			Predicates: preds,
			GenWorkers: workers,
		})
		if err != nil {
			t.Fatalf("Generate(workers=%d): %v", workers, err)
		}
		return l
	}
	seq := gen(1)
	// 41*41 buffer fill combinations: frontiers reach width ~80, well past
	// the inline-expansion threshold.
	if seq.NumStates != 41*41 {
		t.Fatalf("NumStates = %d, want %d", seq.NumStates, 41*41)
	}
	seqEdges := flatten(seq)
	for _, workers := range []int{2, 8} {
		par := gen(workers)
		if par.NumStates != seq.NumStates {
			t.Fatalf("workers=%d: NumStates = %d, want %d", workers, par.NumStates, seq.NumStates)
		}
		parEdges := flatten(par)
		if len(parEdges) != len(seqEdges) {
			t.Fatalf("workers=%d: %d edges, want %d", workers, len(parEdges), len(seqEdges))
		}
		for i := range seqEdges {
			if parEdges[i] != seqEdges[i] {
				t.Fatalf("workers=%d: edge %d = %+v, want %+v", workers, i, parEdges[i], seqEdges[i])
			}
		}
		for _, p := range preds {
			for s := 0; s < seq.NumStates; s++ {
				sv, err1 := seq.Pred(p.Name(), s)
				pv, err2 := par.Pred(p.Name(), s)
				if err1 != nil || err2 != nil || sv != pv {
					t.Fatalf("workers=%d: pred %s state %d: seq (%t,%v) par (%t,%v)",
						workers, p.Name(), s, sv, err1, pv, err2)
				}
			}
		}
	}
}

// TestGenerateMaxStatesExactCount pins the intern-time MaxStates bound:
// generation aborts with exactly Limit states interned — never an extra
// frontier — at any worker count.
func TestGenerateMaxStatesExactCount(t *testing.T) {
	for _, workers := range []int{1, 8} {
		_, err := Generate(gridModel(t, 40), GenerateOptions{
			MaxStates:  100,
			GenWorkers: workers,
		})
		var tms *TooManyStatesError
		if !errors.As(err, &tms) {
			t.Fatalf("workers=%d: want TooManyStatesError, got %v", workers, err)
		}
		if tms.Limit != 100 || tms.States != 100 {
			t.Fatalf("workers=%d: Limit=%d States=%d, want 100/100", workers, tms.Limit, tms.States)
		}
	}
}

// TestGenerateMaxStatesExactFit checks the bound is not off by one: a
// state space of exactly MaxStates states generates successfully.
func TestGenerateMaxStatesExactFit(t *testing.T) {
	l, err := Generate(bufferModel(t, 5), GenerateOptions{MaxStates: 6})
	if err != nil {
		t.Fatalf("MaxStates == state count must succeed, got %v", err)
	}
	if l.NumStates != 6 {
		t.Fatalf("NumStates = %d, want 6", l.NumStates)
	}
}
