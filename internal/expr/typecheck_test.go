package expr

import (
	"errors"
	"testing"
)

func TestCheckTypes(t *testing.T) {
	env := TypeEnv{"n": TypeInt, "b": TypeBool}
	tests := []struct {
		name string
		e    Expr
		want Type
	}{
		{"int-lit", Int(1), TypeInt},
		{"bool-lit", Bool(true), TypeBool},
		{"int-var", Ref("n"), TypeInt},
		{"bool-var", Ref("b"), TypeBool},
		{"add", Bin(OpAdd, Ref("n"), Int(1)), TypeInt},
		{"sub", Bin(OpSub, Int(1), Int(2)), TypeInt},
		{"mul", Bin(OpMul, Ref("n"), Ref("n")), TypeInt},
		{"div", Bin(OpDiv, Ref("n"), Int(2)), TypeInt},
		{"mod", Bin(OpMod, Ref("n"), Int(2)), TypeInt},
		{"lt", Bin(OpLt, Ref("n"), Int(3)), TypeBool},
		{"le", Bin(OpLe, Ref("n"), Int(3)), TypeBool},
		{"gt", Bin(OpGt, Ref("n"), Int(3)), TypeBool},
		{"ge", Bin(OpGe, Ref("n"), Int(3)), TypeBool},
		{"eq-int", Bin(OpEq, Ref("n"), Int(3)), TypeBool},
		{"eq-bool", Bin(OpEq, Ref("b"), Bool(false)), TypeBool},
		{"ne", Bin(OpNe, Ref("n"), Int(3)), TypeBool},
		{"and", Bin(OpAnd, Ref("b"), Bool(true)), TypeBool},
		{"or", Bin(OpOr, Ref("b"), Bool(true)), TypeBool},
		{"not", Un(OpNot, Ref("b")), TypeBool},
		{"neg", Un(OpNeg, Ref("n")), TypeInt},
		{"nested", Bin(OpAnd, Bin(OpLt, Ref("n"), Int(3)), Un(OpNot, Ref("b"))), TypeBool},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Check(tt.e, env)
			if err != nil {
				t.Fatalf("Check: %v", err)
			}
			if got != tt.want {
				t.Errorf("Check = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCheckErrors(t *testing.T) {
	env := TypeEnv{"n": TypeInt, "b": TypeBool}
	tests := []struct {
		name string
		e    Expr
	}{
		{"undefined", Ref("zzz")},
		{"add-bool-l", Bin(OpAdd, Ref("b"), Int(1))},
		{"add-bool-r", Bin(OpAdd, Int(1), Ref("b"))},
		{"lt-bool-l", Bin(OpLt, Ref("b"), Int(1))},
		{"lt-bool-r", Bin(OpLt, Int(1), Ref("b"))},
		{"eq-mixed", Bin(OpEq, Ref("n"), Ref("b"))},
		{"and-int-l", Bin(OpAnd, Ref("n"), Ref("b"))},
		{"and-int-r", Bin(OpAnd, Ref("b"), Ref("n"))},
		{"not-int", Un(OpNot, Ref("n"))},
		{"neg-bool", Un(OpNeg, Ref("b"))},
		{"nested-err", Bin(OpAdd, Bin(OpAdd, Ref("zzz"), Int(1)), Int(1))},
		{"nested-err-r", Bin(OpAdd, Int(1), Bin(OpAdd, Ref("zzz"), Int(1)))},
		{"under-not", Un(OpNot, Ref("zzz"))},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Check(tt.e, env); err == nil {
				t.Error("expected error")
			}
		})
	}
	// Error types are preserved.
	_, err := Check(Ref("zzz"), env)
	var ue *UndefinedVarError
	if !errors.As(err, &ue) {
		t.Errorf("want UndefinedVarError, got %v", err)
	}
	_, err = Check(Un(OpNot, Int(1)), env)
	var te *TypeError
	if !errors.As(err, &te) {
		t.Errorf("want TypeError, got %v", err)
	}
}

func TestCheckInvalidOperators(t *testing.T) {
	if _, err := Check(Unary{Op: OpAdd, X: Int(1)}, nil); err == nil {
		t.Error("invalid unary operator should fail")
	}
	if _, err := Check(Binary{Op: OpNot, L: Int(1), R: Int(1)}, nil); err == nil {
		t.Error("invalid binary operator should fail")
	}
	if _, err := Check(nil, nil); err == nil {
		t.Error("nil expression should fail")
	}
}

func TestEvalInvalidOperators(t *testing.T) {
	if _, err := (Unary{Op: OpAdd, X: Int(1)}).Eval(nil); err == nil {
		t.Error("invalid unary operator should fail at eval")
	}
	if _, err := (Binary{Op: OpNot, L: Int(1), R: Int(1)}).Eval(nil); err == nil {
		t.Error("invalid binary operator should fail at eval")
	}
	// Comparison operand errors at eval time.
	if _, err := (Binary{Op: OpLt, L: Bool(true), R: Int(1)}).Eval(nil); err == nil {
		t.Error("boolean < should fail")
	}
	if _, err := (Binary{Op: OpLt, L: Int(1), R: Bool(true)}).Eval(nil); err == nil {
		t.Error("< boolean should fail")
	}
	// Propagation of operand evaluation errors.
	if _, err := (Binary{Op: OpAdd, L: Ref("x"), R: Int(1)}).Eval(MapEnv{}); err == nil {
		t.Error("left operand error should propagate")
	}
	if _, err := (Binary{Op: OpAdd, L: Int(1), R: Ref("x")}).Eval(MapEnv{}); err == nil {
		t.Error("right operand error should propagate")
	}
	if _, err := (Unary{Op: OpNeg, X: Ref("x")}).Eval(MapEnv{}); err == nil {
		t.Error("unary operand error should propagate")
	}
	if _, err := (Binary{Op: OpAnd, L: Bool(true), R: Ref("x")}).Eval(MapEnv{}); err == nil {
		t.Error("and right operand error should propagate")
	}
	if _, err := (Binary{Op: OpOr, L: Bool(false), R: Ref("x")}).Eval(MapEnv{}); err == nil {
		t.Error("or right operand error should propagate")
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{
		OpAdd: "+", OpEq: "=", OpAnd: "and", OpNot: "not",
	} {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String = %q, want %q", op, got, want)
		}
	}
	if Op(99).String() != "?" {
		t.Error("unknown op should print ?")
	}
	if Type(99).String() != "unknown" {
		t.Error("unknown type should print unknown")
	}
	if (Value{}).String() != "<invalid>" {
		t.Error("invalid value should print <invalid>")
	}
}
