package expr

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestLiterals(t *testing.T) {
	v, err := Int(42).Eval(nil)
	if err != nil {
		t.Fatalf("Int eval: %v", err)
	}
	if v.Kind != TypeInt || v.Int != 42 {
		t.Errorf("Int(42) = %v, want 42", v)
	}
	b, err := Bool(true).Eval(nil)
	if err != nil {
		t.Fatalf("Bool eval: %v", err)
	}
	if b.Kind != TypeBool || !b.Bool {
		t.Errorf("Bool(true) = %v, want true", b)
	}
}

func TestVarLookup(t *testing.T) {
	env := MapEnv{"n": IntValue(7)}
	v, err := Ref("n").Eval(env)
	if err != nil {
		t.Fatalf("Ref eval: %v", err)
	}
	if v.Int != 7 {
		t.Errorf("n = %v, want 7", v)
	}
}

func TestVarUndefined(t *testing.T) {
	_, err := Ref("missing").Eval(MapEnv{})
	var ue *UndefinedVarError
	if !errors.As(err, &ue) {
		t.Fatalf("want UndefinedVarError, got %v", err)
	}
	if ue.Name != "missing" {
		t.Errorf("Name = %q, want missing", ue.Name)
	}
	if _, err := Ref("x").Eval(nil); err == nil {
		t.Error("nil env lookup should fail")
	}
}

func TestArithmetic(t *testing.T) {
	tests := []struct {
		name string
		e    Expr
		want int64
	}{
		{"add", Bin(OpAdd, Int(2), Int(3)), 5},
		{"sub", Bin(OpSub, Int(2), Int(3)), -1},
		{"mul", Bin(OpMul, Int(4), Int(3)), 12},
		{"div", Bin(OpDiv, Int(7), Int(2)), 3},
		{"mod", Bin(OpMod, Int(7), Int(2)), 1},
		{"neg", Un(OpNeg, Int(5)), -5},
		{"nested", Bin(OpAdd, Bin(OpMul, Int(2), Int(3)), Int(1)), 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v, err := tt.e.Eval(nil)
			if err != nil {
				t.Fatalf("eval: %v", err)
			}
			if v.Kind != TypeInt || v.Int != tt.want {
				t.Errorf("got %v, want %d", v, tt.want)
			}
		})
	}
}

func TestComparisons(t *testing.T) {
	tests := []struct {
		name string
		e    Expr
		want bool
	}{
		{"lt", Bin(OpLt, Int(1), Int(2)), true},
		{"le-eq", Bin(OpLe, Int(2), Int(2)), true},
		{"gt", Bin(OpGt, Int(1), Int(2)), false},
		{"ge", Bin(OpGe, Int(3), Int(2)), true},
		{"eq-int", Bin(OpEq, Int(2), Int(2)), true},
		{"ne-int", Bin(OpNe, Int(2), Int(2)), false},
		{"eq-bool", Bin(OpEq, Bool(true), Bool(true)), true},
		{"and", Bin(OpAnd, Bool(true), Bool(false)), false},
		{"or", Bin(OpOr, Bool(false), Bool(true)), true},
		{"not", Un(OpNot, Bool(true)), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v, err := tt.e.Eval(nil)
			if err != nil {
				t.Fatalf("eval: %v", err)
			}
			if v.Kind != TypeBool || v.Bool != tt.want {
				t.Errorf("got %v, want %t", v, tt.want)
			}
		})
	}
}

func TestDivisionByZero(t *testing.T) {
	for _, op := range []Op{OpDiv, OpMod} {
		_, err := Bin(op, Int(1), Int(0)).Eval(nil)
		if !errors.Is(err, ErrDivisionByZero) {
			t.Errorf("op %v: want ErrDivisionByZero, got %v", op, err)
		}
	}
}

func TestTypeErrors(t *testing.T) {
	tests := []struct {
		name string
		e    Expr
	}{
		{"add-bool", Bin(OpAdd, Bool(true), Int(1))},
		{"add-bool-rhs", Bin(OpAdd, Int(1), Bool(true))},
		{"lt-bool", Bin(OpLt, Bool(true), Bool(false))},
		{"and-int", Bin(OpAnd, Int(1), Bool(true))},
		{"and-int-rhs", Bin(OpAnd, Bool(true), Int(1))},
		{"or-int", Bin(OpOr, Int(1), Bool(true))},
		{"not-int", Un(OpNot, Int(1))},
		{"neg-bool", Un(OpNeg, Bool(true))},
		{"eq-mixed", Bin(OpEq, Int(1), Bool(true))},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := tt.e.Eval(nil)
			var te *TypeError
			if !errors.As(err, &te) {
				t.Errorf("want TypeError, got %v", err)
			}
		})
	}
}

func TestShortCircuit(t *testing.T) {
	// The right operand references an undefined variable; short-circuit
	// evaluation must not reach it.
	if v, err := Bin(OpAnd, Bool(false), Ref("boom")).Eval(MapEnv{}); err != nil || v.Bool {
		t.Errorf("false and boom = (%v, %v), want false", v, err)
	}
	if v, err := Bin(OpOr, Bool(true), Ref("boom")).Eval(MapEnv{}); err != nil || !v.Bool {
		t.Errorf("true or boom = (%v, %v), want true", v, err)
	}
}

func TestString(t *testing.T) {
	e := Bin(OpAdd, Ref("n"), Int(1))
	if got := e.String(); got != "(n + 1)" {
		t.Errorf("String = %q, want (n + 1)", got)
	}
	if got := Un(OpNot, Ref("b")).String(); got != "not(b)" {
		t.Errorf("String = %q", got)
	}
	if got := Un(OpNeg, Int(3)).String(); got != "-(3)" {
		t.Errorf("String = %q", got)
	}
}

func TestFreeVars(t *testing.T) {
	e := Bin(OpAdd, Ref("a"), Bin(OpMul, Ref("b"), Ref("a")))
	got := FreeVars(e, nil)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("FreeVars = %v, want [a b]", got)
	}
	got = FreeVars(Un(OpNot, Ref("c")), []string{"a"})
	if len(got) != 2 || got[1] != "c" {
		t.Errorf("FreeVars with seed = %v, want [a c]", got)
	}
}

func TestValueEqual(t *testing.T) {
	if !IntValue(3).Equal(IntValue(3)) {
		t.Error("3 != 3")
	}
	if IntValue(3).Equal(IntValue(4)) {
		t.Error("3 == 4")
	}
	if IntValue(1).Equal(BoolValue(true)) {
		t.Error("int == bool")
	}
	if !BoolValue(false).Equal(BoolValue(false)) {
		t.Error("false != false")
	}
}

// Property: integer arithmetic on expressions agrees with Go arithmetic.
func TestQuickArithmeticAgreesWithGo(t *testing.T) {
	f := func(a, b int32) bool {
		env := MapEnv{"a": IntValue(int64(a)), "b": IntValue(int64(b))}
		sum, err := Bin(OpAdd, Ref("a"), Ref("b")).Eval(env)
		if err != nil || sum.Int != int64(a)+int64(b) {
			return false
		}
		prod, err := Bin(OpMul, Ref("a"), Ref("b")).Eval(env)
		if err != nil || prod.Int != int64(a)*int64(b) {
			return false
		}
		lt, err := Bin(OpLt, Ref("a"), Ref("b")).Eval(env)
		return err == nil && lt.Bool == (a < b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: comparison operators form a total order consistent triple.
func TestQuickComparisonConsistency(t *testing.T) {
	f := func(a, b int64) bool {
		env := MapEnv{"a": IntValue(a), "b": IntValue(b)}
		eval := func(op Op) bool {
			v, err := Bin(op, Ref("a"), Ref("b")).Eval(env)
			if err != nil {
				t.Fatalf("eval: %v", err)
			}
			return v.Bool
		}
		lt, eq, gt := eval(OpLt), eval(OpEq), eval(OpGt)
		// Exactly one of <, =, > holds.
		n := 0
		for _, x := range []bool{lt, eq, gt} {
			if x {
				n++
			}
		}
		return n == 1 && eval(OpLe) == (lt || eq) && eval(OpGe) == (gt || eq) && eval(OpNe) == !eq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: String round-trips structurally deterministic output
// (same expression prints identically).
func TestQuickStringDeterministic(t *testing.T) {
	f := func(a, b int16) bool {
		e := Bin(OpSub, Int(int64(a)), Int(int64(b)))
		return e.String() == e.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
