package expr

import (
	"errors"
	"fmt"
)

// ErrDivisionByZero is returned when evaluating x/0 or x%0.
var ErrDivisionByZero = errors.New("expr: division by zero")

// UndefinedVarError reports a reference to an unbound parameter.
type UndefinedVarError struct {
	// Name is the unresolved variable name.
	Name string
}

// Error implements error.
func (e *UndefinedVarError) Error() string {
	return fmt.Sprintf("expr: undefined variable %q", e.Name)
}

// TypeError reports an operand of the wrong type.
type TypeError struct {
	// Op is the operator whose operand was mistyped.
	Op Op
	// Got is the actual operand type; Want the required one.
	Got, Want Type
}

// Error implements error.
func (e *TypeError) Error() string {
	return fmt.Sprintf("expr: operator %v requires %v operand, got %v", e.Op, e.Want, e.Got)
}
