// Package expr provides the small typed expression language used by
// architectural behaviours: 64-bit integer and boolean expressions over
// named parameters, with arithmetic, comparison, and logical operators.
//
// Expressions appear in three places in an architectural description:
// as arguments of behaviour invocations (e.g. Buffer(n+1)), as boolean
// guards on choice branches (e.g. cond(n < cap)), and as initial values
// of instance parameters. Evaluation is total over well-typed inputs
// except for division/modulo by zero, which is reported as an error.
package expr

import (
	"fmt"
	"strconv"
)

// Type identifies the type of a value or expression.
type Type int

// Supported expression types.
const (
	TypeInt Type = iota + 1
	TypeBool
)

// String returns the source-level name of the type.
func (t Type) String() string {
	switch t {
	case TypeInt:
		return "integer"
	case TypeBool:
		return "boolean"
	default:
		return "unknown"
	}
}

// Value is a runtime value: either an integer or a boolean.
type Value struct {
	// Kind is the type of the value.
	Kind Type
	// Int holds the value when Kind is TypeInt.
	Int int64
	// Bool holds the value when Kind is TypeBool.
	Bool bool
}

// IntValue builds an integer value.
func IntValue(v int64) Value { return Value{Kind: TypeInt, Int: v} }

// BoolValue builds a boolean value.
func BoolValue(v bool) Value { return Value{Kind: TypeBool, Bool: v} }

// String renders the value in source syntax.
func (v Value) String() string {
	switch v.Kind {
	case TypeInt:
		return strconv.FormatInt(v.Int, 10)
	case TypeBool:
		return strconv.FormatBool(v.Bool)
	default:
		return "<invalid>"
	}
}

// Equal reports whether two values have the same type and content.
func (v Value) Equal(w Value) bool {
	if v.Kind != w.Kind {
		return false
	}
	switch v.Kind {
	case TypeInt:
		return v.Int == w.Int
	case TypeBool:
		return v.Bool == w.Bool
	default:
		return false
	}
}

// Env supplies values for free variables during evaluation.
type Env interface {
	// Lookup returns the value bound to name, and whether it exists.
	Lookup(name string) (Value, bool)
}

// MapEnv is an Env backed by a map.
type MapEnv map[string]Value

var _ Env = MapEnv(nil)

// Lookup implements Env.
func (m MapEnv) Lookup(name string) (Value, bool) {
	v, ok := m[name]
	return v, ok
}

// Expr is a side-effect-free expression tree.
type Expr interface {
	// Eval evaluates the expression under env.
	Eval(env Env) (Value, error)
	// String renders the expression in source syntax.
	String() string
}

// IntLit is an integer literal.
type IntLit struct{ Value int64 }

// BoolLit is a boolean literal.
type BoolLit struct{ Value bool }

// Var references a parameter by name.
type Var struct{ Name string }

// Op identifies a unary or binary operator.
type Op int

// Operators.
const (
	OpAdd Op = iota + 1
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpNeg // unary minus
	OpNot // unary not
)

var opNames = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "and", OpOr: "or", OpNeg: "-", OpNot: "not",
}

// String returns the source-level spelling of the operator.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return "?"
}

// Unary applies OpNeg or OpNot to an operand.
type Unary struct {
	Op Op
	X  Expr
}

// Binary applies a binary operator to two operands.
type Binary struct {
	Op   Op
	L, R Expr
}

var (
	_ Expr = IntLit{}
	_ Expr = BoolLit{}
	_ Expr = Var{}
	_ Expr = Unary{}
	_ Expr = Binary{}
)

// Int builds an integer literal expression.
func Int(v int64) Expr { return IntLit{Value: v} }

// Bool builds a boolean literal expression.
func Bool(v bool) Expr { return BoolLit{Value: v} }

// Ref builds a variable reference expression.
func Ref(name string) Expr { return Var{Name: name} }

// Bin builds a binary expression.
func Bin(op Op, l, r Expr) Expr { return Binary{Op: op, L: l, R: r} }

// Un builds a unary expression.
func Un(op Op, x Expr) Expr { return Unary{Op: op, X: x} }

// Eval implements Expr.
func (e IntLit) Eval(Env) (Value, error) { return IntValue(e.Value), nil }

// String implements Expr.
func (e IntLit) String() string { return strconv.FormatInt(e.Value, 10) }

// Eval implements Expr.
func (e BoolLit) Eval(Env) (Value, error) { return BoolValue(e.Value), nil }

// String implements Expr.
func (e BoolLit) String() string { return strconv.FormatBool(e.Value) }

// Eval implements Expr.
func (e Var) Eval(env Env) (Value, error) {
	if env == nil {
		return Value{}, &UndefinedVarError{Name: e.Name}
	}
	v, ok := env.Lookup(e.Name)
	if !ok {
		return Value{}, &UndefinedVarError{Name: e.Name}
	}
	return v, nil
}

// String implements Expr.
func (e Var) String() string { return e.Name }

// Eval implements Expr.
func (e Unary) Eval(env Env) (Value, error) {
	v, err := e.X.Eval(env)
	if err != nil {
		return Value{}, err
	}
	switch e.Op {
	case OpNeg:
		if v.Kind != TypeInt {
			return Value{}, &TypeError{Op: e.Op, Got: v.Kind, Want: TypeInt}
		}
		return IntValue(-v.Int), nil
	case OpNot:
		if v.Kind != TypeBool {
			return Value{}, &TypeError{Op: e.Op, Got: v.Kind, Want: TypeBool}
		}
		return BoolValue(!v.Bool), nil
	default:
		return Value{}, fmt.Errorf("expr: invalid unary operator %v", e.Op)
	}
}

// String implements Expr.
func (e Unary) String() string {
	if e.Op == OpNot {
		return "not(" + e.X.String() + ")"
	}
	return "-(" + e.X.String() + ")"
}

// Eval implements Expr.
func (e Binary) Eval(env Env) (Value, error) {
	l, err := e.L.Eval(env)
	if err != nil {
		return Value{}, err
	}
	// Short-circuit logical operators.
	switch e.Op {
	case OpAnd:
		if l.Kind != TypeBool {
			return Value{}, &TypeError{Op: e.Op, Got: l.Kind, Want: TypeBool}
		}
		if !l.Bool {
			return BoolValue(false), nil
		}
		r, err := e.R.Eval(env)
		if err != nil {
			return Value{}, err
		}
		if r.Kind != TypeBool {
			return Value{}, &TypeError{Op: e.Op, Got: r.Kind, Want: TypeBool}
		}
		return BoolValue(r.Bool), nil
	case OpOr:
		if l.Kind != TypeBool {
			return Value{}, &TypeError{Op: e.Op, Got: l.Kind, Want: TypeBool}
		}
		if l.Bool {
			return BoolValue(true), nil
		}
		r, err := e.R.Eval(env)
		if err != nil {
			return Value{}, err
		}
		if r.Kind != TypeBool {
			return Value{}, &TypeError{Op: e.Op, Got: r.Kind, Want: TypeBool}
		}
		return BoolValue(r.Bool), nil
	}
	r, err := e.R.Eval(env)
	if err != nil {
		return Value{}, err
	}
	switch e.Op {
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		if l.Kind != TypeInt {
			return Value{}, &TypeError{Op: e.Op, Got: l.Kind, Want: TypeInt}
		}
		if r.Kind != TypeInt {
			return Value{}, &TypeError{Op: e.Op, Got: r.Kind, Want: TypeInt}
		}
		switch e.Op {
		case OpAdd:
			return IntValue(l.Int + r.Int), nil
		case OpSub:
			return IntValue(l.Int - r.Int), nil
		case OpMul:
			return IntValue(l.Int * r.Int), nil
		case OpDiv:
			if r.Int == 0 {
				return Value{}, ErrDivisionByZero
			}
			return IntValue(l.Int / r.Int), nil
		default: // OpMod
			if r.Int == 0 {
				return Value{}, ErrDivisionByZero
			}
			return IntValue(l.Int % r.Int), nil
		}
	case OpEq, OpNe:
		if l.Kind != r.Kind {
			return Value{}, &TypeError{Op: e.Op, Got: r.Kind, Want: l.Kind}
		}
		eq := l.Equal(r)
		if e.Op == OpNe {
			eq = !eq
		}
		return BoolValue(eq), nil
	case OpLt, OpLe, OpGt, OpGe:
		if l.Kind != TypeInt {
			return Value{}, &TypeError{Op: e.Op, Got: l.Kind, Want: TypeInt}
		}
		if r.Kind != TypeInt {
			return Value{}, &TypeError{Op: e.Op, Got: r.Kind, Want: TypeInt}
		}
		var b bool
		switch e.Op {
		case OpLt:
			b = l.Int < r.Int
		case OpLe:
			b = l.Int <= r.Int
		case OpGt:
			b = l.Int > r.Int
		default: // OpGe
			b = l.Int >= r.Int
		}
		return BoolValue(b), nil
	default:
		return Value{}, fmt.Errorf("expr: invalid binary operator %v", e.Op)
	}
}

// String implements Expr.
func (e Binary) String() string {
	return "(" + e.L.String() + " " + e.Op.String() + " " + e.R.String() + ")"
}

// FreeVars appends the names of the free variables of e to dst, in
// left-to-right first-occurrence order, without duplicates.
func FreeVars(e Expr, dst []string) []string {
	seen := make(map[string]bool, len(dst))
	for _, n := range dst {
		seen[n] = true
	}
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case Var:
			if !seen[x.Name] {
				seen[x.Name] = true
				dst = append(dst, x.Name)
			}
		case Unary:
			walk(x.X)
		case Binary:
			walk(x.L)
			walk(x.R)
		}
	}
	walk(e)
	return dst
}
