package expr

import "fmt"

// TypeEnv maps parameter names to their declared types.
type TypeEnv map[string]Type

// Check infers the type of e under the given type environment, reporting
// operator/operand mismatches and references to undeclared parameters.
func Check(e Expr, env TypeEnv) (Type, error) {
	switch x := e.(type) {
	case IntLit:
		return TypeInt, nil
	case BoolLit:
		return TypeBool, nil
	case Var:
		t, ok := env[x.Name]
		if !ok {
			return 0, &UndefinedVarError{Name: x.Name}
		}
		return t, nil
	case Unary:
		t, err := Check(x.X, env)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case OpNeg:
			if t != TypeInt {
				return 0, &TypeError{Op: x.Op, Got: t, Want: TypeInt}
			}
			return TypeInt, nil
		case OpNot:
			if t != TypeBool {
				return 0, &TypeError{Op: x.Op, Got: t, Want: TypeBool}
			}
			return TypeBool, nil
		default:
			return 0, fmt.Errorf("expr: invalid unary operator %v", x.Op)
		}
	case Binary:
		lt, err := Check(x.L, env)
		if err != nil {
			return 0, err
		}
		rt, err := Check(x.R, env)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case OpAdd, OpSub, OpMul, OpDiv, OpMod:
			if lt != TypeInt {
				return 0, &TypeError{Op: x.Op, Got: lt, Want: TypeInt}
			}
			if rt != TypeInt {
				return 0, &TypeError{Op: x.Op, Got: rt, Want: TypeInt}
			}
			return TypeInt, nil
		case OpLt, OpLe, OpGt, OpGe:
			if lt != TypeInt {
				return 0, &TypeError{Op: x.Op, Got: lt, Want: TypeInt}
			}
			if rt != TypeInt {
				return 0, &TypeError{Op: x.Op, Got: rt, Want: TypeInt}
			}
			return TypeBool, nil
		case OpEq, OpNe:
			if lt != rt {
				return 0, &TypeError{Op: x.Op, Got: rt, Want: lt}
			}
			return TypeBool, nil
		case OpAnd, OpOr:
			if lt != TypeBool {
				return 0, &TypeError{Op: x.Op, Got: lt, Want: TypeBool}
			}
			if rt != TypeBool {
				return 0, &TypeError{Op: x.Op, Got: rt, Want: TypeBool}
			}
			return TypeBool, nil
		default:
			return 0, fmt.Errorf("expr: invalid binary operator %v", x.Op)
		}
	default:
		return 0, fmt.Errorf("expr: unknown expression node %T", e)
	}
}
