package sim

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/faultinject"
)

// TestReplicationPanicIsolated injects a panic into one replication and
// checks it surfaces as a typed worker-panic error naming the replication,
// on both the sequential and pooled paths.
func TestReplicationPanicIsolated(t *testing.T) {
	for _, workers := range []int{1, 4} {
		plan := faultinject.NewPlan().Arm(faultinject.SiteSimReplication, 2)
		faultinject.Activate(plan)
		_, err := Run(Config{
			Model:        workRestModel(t, 2, 1),
			Measures:     workRestMeasures,
			RunLength:    100,
			Replications: 4,
			Seed:         7,
			Workers:      workers,
		})
		faultinject.Deactivate()
		if err == nil {
			t.Fatalf("workers=%d: injected panic vanished", workers)
		}
		if !strings.Contains(err.Error(), "replication 2") {
			t.Errorf("workers=%d: error %q does not name replication 2", workers, err)
		}
		var wpe *fault.WorkerPanicError
		if !errors.As(err, &wpe) {
			t.Fatalf("workers=%d: want *fault.WorkerPanicError, got %T: %v", workers, err, err)
		}
		if wpe.Pool != "sim" {
			t.Errorf("workers=%d: panic attributed to pool %q, want sim", workers, wpe.Pool)
		}
		if !errors.Is(err, fault.ErrWorkerPanic) {
			t.Errorf("workers=%d: errors.Is(err, fault.ErrWorkerPanic) is false", workers)
		}
		var ie *faultinject.InjectedError
		if !errors.As(err, &ie) || ie.Site != faultinject.SiteSimReplication || ie.Key != 2 {
			t.Errorf("workers=%d: injected fault not recovered intact: %v", workers, err)
		}
	}
}

// TestSimCancel checks that the event loop observes a canceled context and
// reports the typed cancellation error naming the replication.
func TestSimCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(Config{
		Model:        workRestModel(t, 2, 1),
		Measures:     workRestMeasures,
		RunLength:    100,
		Replications: 2,
		Seed:         7,
		Ctx:          ctx,
	})
	if err == nil {
		t.Fatal("canceled simulation succeeded")
	}
	var ce *fault.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("want *fault.CanceledError, got %T: %v", err, err)
	}
	if ce.Phase != "sim" {
		t.Errorf("canceled in phase %q, want sim", ce.Phase)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cause chain lost context.Canceled: %v", err)
	}
}

// TestSimDeterministicWithArmedPlan pins that fault instrumentation is
// observation-only: estimates with a never-firing plan armed match a
// plain run exactly.
func TestSimDeterministicWithArmedPlan(t *testing.T) {
	cfg := Config{
		Model:        workRestModel(t, 2, 1),
		Measures:     workRestMeasures,
		RunLength:    200,
		Replications: 3,
		Seed:         11,
	}
	ref, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan := faultinject.NewPlan().Arm(faultinject.SiteSimReplication, 1<<30)
	faultinject.Activate(plan)
	got, err := Run(cfg)
	faultinject.Deactivate()
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range ref.Estimates {
		if got := got.Estimates[name]; got != want {
			t.Errorf("estimate %s changed under an unfired plan: %v != %v", name, got, want)
		}
	}
}
