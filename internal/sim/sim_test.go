package sim

import (
	"errors"
	"math"
	"testing"

	"repro/internal/aemilia"
	"repro/internal/ctmc"
	"repro/internal/dist"
	"repro/internal/elab"
	"repro/internal/expr"
	"repro/internal/lts"
	"repro/internal/measure"
	"repro/internal/rates"
)

// workRestModel: one instance alternating Work -finish-> Rest -resume->
// Work, with monitor self-loops for state rewards.
func workRestModel(t *testing.T, finishRate, resumeRate float64) *elab.Model {
	t.Helper()
	et := aemilia.NewElemType("W_Type", nil, []string{"mon_work", "mon_rest"},
		aemilia.NewBehavior("Work", nil,
			aemilia.Ch(
				aemilia.Pre("finish", rates.ExpRate(finishRate), aemilia.Invoke("Rest")),
				aemilia.Pre("mon_work", rates.PassiveRate(), aemilia.Invoke("Work")),
			)),
		aemilia.NewBehavior("Rest", nil,
			aemilia.Ch(
				aemilia.Pre("resume", rates.ExpRate(resumeRate), aemilia.Invoke("Work")),
				aemilia.Pre("mon_rest", rates.PassiveRate(), aemilia.Invoke("Rest")),
			)),
	)
	a := aemilia.NewArchiType("WR", []*aemilia.ElemType{et},
		[]*aemilia.Instance{aemilia.NewInstance("W", "W_Type")}, nil)
	m, err := elab.Elaborate(a)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

var workRestMeasures = []measure.Measure{
	{Name: "p_work", Clauses: []measure.Clause{
		{Instance: "W", Action: "mon_work", Kind: measure.StateReward, Value: 1},
	}},
	{Name: "finish_rate", Clauses: []measure.Clause{
		{Instance: "W", Action: "finish", Kind: measure.TransReward, Value: 1},
	}},
}

func TestExponentialMatchesAnalytic(t *testing.T) {
	m := workRestModel(t, 2, 1)
	res, err := Run(Config{
		Model:        m,
		Measures:     workRestMeasures,
		RunLength:    2000,
		Warmup:       100,
		Replications: 10,
		Seed:         42,
	})
	if err != nil {
		t.Fatal(err)
	}
	// P(work) = 1/3, finish rate = 2/3. Allow 3 half-widths of slack so a
	// single unlucky 90% interval does not flake the suite.
	pw := res.Estimates["p_work"]
	if math.Abs(pw.Mean-1.0/3) > 3*pw.HalfWidth {
		t.Errorf("p_work = %v too far from 1/3", pw)
	}
	fr := res.Estimates["finish_rate"]
	if math.Abs(fr.Mean-2.0/3) > 3*fr.HalfWidth {
		t.Errorf("finish_rate = %v too far from 2/3", fr)
	}
	if res.Events == 0 || res.Replications != 10 {
		t.Errorf("bookkeeping wrong: %+v", res)
	}
}

func TestDeterministicDurations(t *testing.T) {
	m := workRestModel(t, 1, 1) // rates overridden below
	res, err := Run(Config{
		Model: m,
		Distributions: map[Activity]dist.Distribution{
			{Instance: "W", Action: "finish"}: dist.NewDet(1),
			{Instance: "W", Action: "resume"}: dist.NewDet(3),
		},
		Measures:     workRestMeasures,
		RunLength:    4000,
		Warmup:       10,
		Replications: 3,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Period 4, 1 unit working: P(work) = 0.25, finish rate = 0.25.
	pw := res.Estimates["p_work"].Mean
	if math.Abs(pw-0.25) > 0.005 {
		t.Errorf("deterministic p_work = %v, want ~0.25", pw)
	}
	fr := res.Estimates["finish_rate"].Mean
	if math.Abs(fr-0.25) > 0.005 {
		t.Errorf("deterministic finish_rate = %v, want ~0.25", fr)
	}
}

func TestDeterministicRaceAlwaysWins(t *testing.T) {
	// Two competing deterministic activities: det(0.5) always beats
	// det(2.0) because each firing moves to a state where both are
	// disabled (clocks discarded), so the loser can never catch up.
	et := aemilia.NewElemType("R_Type", nil, nil,
		aemilia.NewBehavior("S", nil,
			aemilia.Ch(
				aemilia.Pre("fast", rates.ExpRate(1), aemilia.Invoke("Mid")),
				aemilia.Pre("slow", rates.ExpRate(1), aemilia.Invoke("Mid")),
			)),
		aemilia.NewBehavior("Mid", nil,
			aemilia.Pre("back", rates.ExpRate(100), aemilia.Invoke("S"))))
	a := aemilia.NewArchiType("R", []*aemilia.ElemType{et},
		[]*aemilia.Instance{aemilia.NewInstance("X", "R_Type")}, nil)
	m, err := elab.Elaborate(a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Model: m,
		Distributions: map[Activity]dist.Distribution{
			{Instance: "X", Action: "fast"}: dist.NewDet(0.5),
			{Instance: "X", Action: "slow"}: dist.NewDet(2.0),
		},
		Measures: []measure.Measure{
			{Name: "fast", Clauses: []measure.Clause{
				{Instance: "X", Action: "fast", Kind: measure.TransReward, Value: 1},
			}},
			{Name: "slow", Clauses: []measure.Clause{
				{Instance: "X", Action: "slow", Kind: measure.TransReward, Value: 1},
			}},
		},
		RunLength:    1000,
		Replications: 2,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Estimates["slow"].Mean; got != 0 {
		t.Errorf("slow fired at rate %v, want 0", got)
	}
	// Cycle length ≈ 0.5 (race) + 0.01 (back) → rate ≈ 1.96.
	if got := res.Estimates["fast"].Mean; math.Abs(got-1/0.51) > 0.05 {
		t.Errorf("fast rate = %v, want ~%v", got, 1/0.51)
	}
}

func TestEnablingMemoryPersistsClock(t *testing.T) {
	// A det(1.5) "timer" stays enabled across an unrelated instance's
	// faster cycling; with enabling memory it still fires at rate ~1/1.5.
	timer := aemilia.NewElemType("T_Type", nil, nil,
		aemilia.NewBehavior("T", nil,
			aemilia.Pre("tick", rates.ExpRate(1), aemilia.Invoke("T"))))
	noise := aemilia.NewElemType("N_Type", nil, nil,
		aemilia.NewBehavior("N", nil,
			aemilia.Pre("hum", rates.ExpRate(50), aemilia.Invoke("N"))))
	a := aemilia.NewArchiType("TN",
		[]*aemilia.ElemType{timer, noise},
		[]*aemilia.Instance{
			aemilia.NewInstance("T", "T_Type"),
			aemilia.NewInstance("N", "N_Type"),
		}, nil)
	m, err := elab.Elaborate(a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Model: m,
		Distributions: map[Activity]dist.Distribution{
			{Instance: "T", Action: "tick"}: dist.NewDet(1.5),
		},
		Measures: []measure.Measure{
			{Name: "tick", Clauses: []measure.Clause{
				{Instance: "T", Action: "tick", Kind: measure.TransReward, Value: 1},
			}},
		},
		RunLength:    3000,
		Replications: 2,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Estimates["tick"].Mean
	if math.Abs(got-1/1.5) > 0.01 {
		t.Errorf("tick rate = %v, want ~%v (clock must survive interleaving)", got, 1/1.5)
	}
}

func TestImmediateWeights(t *testing.T) {
	// After each exp step, an immediate 1:3 branch fires; count the sides.
	et := aemilia.NewElemType("B_Type", nil, nil,
		aemilia.NewBehavior("S", nil,
			aemilia.Pre("step", rates.ExpRate(1), aemilia.Invoke("Pick"))),
		aemilia.NewBehavior("Pick", nil,
			aemilia.Ch(
				aemilia.Pre("left", rates.Inf(1, 1), aemilia.Invoke("S")),
				aemilia.Pre("right", rates.Inf(1, 3), aemilia.Invoke("S")),
			)))
	a := aemilia.NewArchiType("B", []*aemilia.ElemType{et},
		[]*aemilia.Instance{aemilia.NewInstance("X", "B_Type")}, nil)
	m, err := elab.Elaborate(a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Model: m,
		Measures: []measure.Measure{
			{Name: "left", Clauses: []measure.Clause{
				{Instance: "X", Action: "left", Kind: measure.TransReward, Value: 1},
			}},
			{Name: "right", Clauses: []measure.Clause{
				{Instance: "X", Action: "right", Kind: measure.TransReward, Value: 1},
			}},
		},
		RunLength:    5000,
		Replications: 4,
		Seed:         11,
	})
	if err != nil {
		t.Fatal(err)
	}
	left, right := res.Estimates["left"].Mean, res.Estimates["right"].Mean
	ratio := left / (left + right)
	if math.Abs(ratio-0.25) > 0.02 {
		t.Errorf("left fraction = %v, want ~0.25", ratio)
	}
	if math.Abs(left+right-1) > 0.05 {
		t.Errorf("total branch rate = %v, want ~1", left+right)
	}
}

func TestHigherPriorityPreempts(t *testing.T) {
	et := aemilia.NewElemType("P_Type", nil, nil,
		aemilia.NewBehavior("S", nil,
			aemilia.Pre("step", rates.ExpRate(1), aemilia.Invoke("Pick"))),
		aemilia.NewBehavior("Pick", nil,
			aemilia.Ch(
				aemilia.Pre("low", rates.Inf(1, 100), aemilia.Invoke("S")),
				aemilia.Pre("high", rates.Inf(2, 1), aemilia.Invoke("S")),
			)))
	a := aemilia.NewArchiType("P", []*aemilia.ElemType{et},
		[]*aemilia.Instance{aemilia.NewInstance("X", "P_Type")}, nil)
	m, err := elab.Elaborate(a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Model: m,
		Measures: []measure.Measure{
			{Name: "low", Clauses: []measure.Clause{
				{Instance: "X", Action: "low", Kind: measure.TransReward, Value: 1},
			}},
		},
		RunLength:    500,
		Replications: 2,
		Seed:         13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Estimates["low"].Mean; got != 0 {
		t.Errorf("low-priority branch fired at rate %v, want 0", got)
	}
}

func TestCrossValidationAgainstCTMC(t *testing.T) {
	// The paper's Sect. 5.1 validation in miniature: simulate with
	// exponential distributions and compare to the analytic solution.
	buf := aemilia.NewElemType("Buffer_Type",
		[]string{"put"}, []string{"get", "mon_busy"},
		aemilia.NewBehavior("Buffer", []aemilia.Param{aemilia.IntParam("n")},
			aemilia.Ch(
				aemilia.When(expr.Bin(expr.OpLt, expr.Ref("n"), expr.Int(4)),
					aemilia.Pre("put", rates.PassiveRate(),
						aemilia.Invoke("Buffer", expr.Bin(expr.OpAdd, expr.Ref("n"), expr.Int(1))))),
				aemilia.When(expr.Bin(expr.OpGt, expr.Ref("n"), expr.Int(0)),
					aemilia.Pre("get", rates.PassiveRate(),
						aemilia.Invoke("Buffer", expr.Bin(expr.OpSub, expr.Ref("n"), expr.Int(1))))),
				aemilia.When(expr.Bin(expr.OpGt, expr.Ref("n"), expr.Int(0)),
					aemilia.Pre("mon_busy", rates.PassiveRate(), aemilia.Invoke("Buffer", expr.Ref("n")))),
			)))
	prod := aemilia.NewElemType("Prod_Type", nil, []string{"put"},
		aemilia.NewBehavior("P", nil, aemilia.Pre("put", rates.ExpRate(2), aemilia.Invoke("P"))))
	cons := aemilia.NewElemType("Cons_Type", []string{"get"}, nil,
		aemilia.NewBehavior("C", nil, aemilia.Pre("get", rates.ExpRate(3), aemilia.Invoke("C"))))
	a := aemilia.NewArchiType("PC",
		[]*aemilia.ElemType{buf, prod, cons},
		[]*aemilia.Instance{
			aemilia.NewInstance("B", "Buffer_Type", expr.Int(0)),
			aemilia.NewInstance("P", "Prod_Type"),
			aemilia.NewInstance("C", "Cons_Type"),
		},
		[]aemilia.Attachment{
			aemilia.Attach("P", "put", "B", "put"),
			aemilia.Attach("B", "get", "C", "get"),
		})
	m, err := elab.Elaborate(a)
	if err != nil {
		t.Fatal(err)
	}
	measures := []measure.Measure{
		{Name: "p_busy", Clauses: []measure.Clause{
			{Instance: "B", Action: "mon_busy", Kind: measure.StateReward, Value: 1},
		}},
		{Name: "throughput", Clauses: []measure.Clause{
			{Instance: "C", Action: "get", Kind: measure.TransReward, Value: 1},
		}},
	}
	l, err := lts.Generate(m, lts.GenerateOptions{Predicates: measure.StatePreds(measures)})
	if err != nil {
		t.Fatal(err)
	}
	chain, err := ctmc.Build(l)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := chain.SteadyState(ctmc.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var exact [2]float64
	for i, ms := range measures {
		v, err := ms.EvalCTMC(chain, pi)
		if err != nil {
			t.Fatal(err)
		}
		exact[i] = v
	}

	res, err := Run(Config{
		Model:        m,
		Measures:     measures,
		RunLength:    2000,
		Warmup:       50,
		Replications: 10,
		Seed:         17,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, ms := range measures {
		ci := res.Estimates[ms.Name]
		// Allow a slightly widened interval for finite-run bias.
		slack := 3 * ci.HalfWidth
		if math.Abs(ci.Mean-exact[i]) > math.Max(slack, 0.01) {
			t.Errorf("%s: simulated %v vs exact %v", ms.Name, ci, exact[i])
		}
	}
}

func TestReproducibleWithSameSeed(t *testing.T) {
	m := workRestModel(t, 2, 1)
	run := func() float64 {
		res, err := Run(Config{
			Model: m, Measures: workRestMeasures,
			RunLength: 100, Replications: 2, Seed: 99,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Estimates["p_work"].Mean
	}
	if run() != run() {
		t.Error("same seed produced different estimates")
	}
}

func TestDeadlockRun(t *testing.T) {
	et := aemilia.NewElemType("D_Type", nil, []string{"mon_done"},
		aemilia.NewBehavior("S", nil,
			aemilia.Pre("once", rates.ExpRate(1), aemilia.Invoke("Done"))),
		aemilia.NewBehavior("Done", nil,
			aemilia.Pre("mon_done", rates.PassiveRate(), aemilia.Invoke("Done"))))
	a := aemilia.NewArchiType("D", []*aemilia.ElemType{et},
		[]*aemilia.Instance{aemilia.NewInstance("X", "D_Type")}, nil)
	m, err := elab.Elaborate(a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Model: m,
		Measures: []measure.Measure{
			{Name: "p_done", Clauses: []measure.Clause{
				{Instance: "X", Action: "mon_done", Kind: measure.StateReward, Value: 1},
			}},
		},
		RunLength:    1000,
		Replications: 2,
		Seed:         23,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Done is reached within a few units and is locally "enabled" for the
	// monitor forever after; the time average should be close to 1.
	if got := res.Estimates["p_done"].Mean; got < 0.99 {
		t.Errorf("p_done = %v, want ~1", got)
	}
}

func TestErrorCases(t *testing.T) {
	m := workRestModel(t, 1, 1)
	if _, err := Run(Config{Model: nil, RunLength: 1}); err == nil {
		t.Error("nil model should error")
	}
	if _, err := Run(Config{Model: m}); err == nil {
		t.Error("zero run length should error")
	}

	// Passive-passive composition without a distribution override fails.
	pt := aemilia.NewElemType("PA", nil, []string{"a"},
		aemilia.NewBehavior("P", nil, aemilia.Pre("a", rates.PassiveRate(), aemilia.Invoke("P"))))
	qt := aemilia.NewElemType("QA", []string{"a"}, nil,
		aemilia.NewBehavior("Q", nil, aemilia.Pre("a", rates.PassiveRate(), aemilia.Invoke("Q"))))
	a := aemilia.NewArchiType("PQ",
		[]*aemilia.ElemType{pt, qt},
		[]*aemilia.Instance{aemilia.NewInstance("P1", "PA"), aemilia.NewInstance("Q1", "QA")},
		[]aemilia.Attachment{aemilia.Attach("P1", "a", "Q1", "a")})
	mm, err := elab.Elaborate(a)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(Config{Model: mm, RunLength: 10, Replications: 1})
	if !errors.Is(err, ErrNoDistribution) {
		t.Errorf("want ErrNoDistribution, got %v", err)
	}
	// With an override it runs.
	if _, err := Run(Config{
		Model: mm, RunLength: 10, Replications: 1,
		Distributions: map[Activity]dist.Distribution{
			{Instance: "P1", Action: "a"}: dist.NewDet(1),
		},
	}); err != nil {
		t.Errorf("override should fix it: %v", err)
	}
}

func TestImmediateLivelockDetected(t *testing.T) {
	et := aemilia.NewElemType("L_Type", nil, nil,
		aemilia.NewBehavior("S", nil,
			aemilia.Pre("spin", rates.Inf(1, 1), aemilia.Invoke("S"))))
	a := aemilia.NewArchiType("L", []*aemilia.ElemType{et},
		[]*aemilia.Instance{aemilia.NewInstance("X", "L_Type")}, nil)
	m, err := elab.Elaborate(a)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(Config{Model: m, RunLength: 1, Replications: 1})
	if !errors.Is(err, ErrImmediateLivelock) {
		t.Errorf("want ErrImmediateLivelock, got %v", err)
	}
}

func TestBatchMeansMatchesReplications(t *testing.T) {
	m := workRestModel(t, 2, 1)
	batch, err := Run(Config{
		Model:     m,
		Measures:  workRestMeasures,
		RunLength: 500,
		Warmup:    50,
		Batches:   20,
		Seed:      31,
	})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Replications != 20 {
		t.Errorf("batch observations = %d, want 20", batch.Replications)
	}
	pw := batch.Estimates["p_work"]
	if math.Abs(pw.Mean-1.0/3) > math.Max(3*pw.HalfWidth, 0.02) {
		t.Errorf("batch-means p_work = %v too far from 1/3", pw)
	}
	fr := batch.Estimates["finish_rate"]
	if math.Abs(fr.Mean-2.0/3) > math.Max(3*fr.HalfWidth, 0.02) {
		t.Errorf("batch-means finish_rate = %v too far from 2/3", fr)
	}
	// A single warm-up is paid: events should be well below 20 separate
	// replications of warmup+run.
	if batch.Events == 0 {
		t.Error("no events simulated")
	}
}

func TestBatchMeansDeterministic(t *testing.T) {
	m := workRestModel(t, 2, 1)
	run := func() float64 {
		res, err := Run(Config{
			Model: m, Measures: workRestMeasures,
			RunLength: 100, Batches: 5, Seed: 77,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Estimates["p_work"].Mean
	}
	if run() != run() {
		t.Error("batch-means not reproducible")
	}
}

func TestDerivedMeasureInSimulation(t *testing.T) {
	m := workRestModel(t, 2, 1)
	ms := append(append([]measure.Measure(nil), workRestMeasures...),
		measure.Measure{Name: "work_per_finish", Derived: true, Num: "p_work", Den: "finish_rate"})
	res, err := Run(Config{
		Model: m, Measures: ms,
		RunLength: 1000, Warmup: 50, Replications: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ci, ok := res.Estimates["work_per_finish"]
	if !ok {
		t.Fatal("derived estimate missing")
	}
	// P(work)/rate(finish) = (1/3)/(2/3) = 1/2.
	if math.Abs(ci.Mean-0.5) > 0.05 {
		t.Errorf("derived ratio = %v, want ~0.5", ci.Mean)
	}
	if ci.HalfWidth <= 0 {
		t.Error("derived interval should have positive half-width")
	}
}
