// Package sim is the discrete-event simulation engine of the methodology's
// third phase: it executes an elaborated architectural model as a
// generalized semi-Markov process (GSMP), so that activity durations can
// follow arbitrary distributions (deterministic, normal, …) instead of the
// exponential ones of the Markovian model.
//
// Semantics. Every enabled timed transition belongs to an *activity*,
// identified by its active participant (instance, action). A newly enabled
// activity samples a duration from its distribution — by default the
// exponential of its rate annotation, overridable per activity for the
// general models — and keeps its residual clock while it stays enabled
// (enabling-memory policy); disabling discards the clock. The activity
// with the smallest residual fires. Immediate actions pre-empt time,
// firing in zero time by priority and weight, exactly as in the CTMC
// extraction, so the simulator with exponential distributions estimates
// the same quantities the CTMC solver computes — the cross-validation the
// paper performs in Sect. 5.1.
//
// Measures are the same reward structures the Markovian analysis uses:
// STATE_REWARD clauses accumulate value × time while locally enabled,
// TRANS_REWARD clauses count weighted firings; both are normalized by the
// measured time, estimated over independent replications with Student-t
// confidence intervals.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/dist"
	"repro/internal/elab"
	"repro/internal/fault"
	"repro/internal/faultinject"
	"repro/internal/lts"
	"repro/internal/measure"
	"repro/internal/rates"
	"repro/internal/rng"
	"repro/internal/statespace"
	"repro/internal/stats"
)

// Activity identifies a timed activity by its active participant.
type Activity struct {
	// Instance is the active instance name.
	Instance string
	// Action is the active action name.
	Action string
}

// Config parameterizes a simulation experiment.
type Config struct {
	// Model is the elaborated architectural model to execute.
	Model *elab.Model
	// Distributions overrides the duration distribution of activities;
	// activities without an override use the exponential of their rate.
	Distributions map[Activity]dist.Distribution
	// Measures are estimated during the run.
	Measures []measure.Measure
	// RunLength is the measured model-time horizon per replication (or
	// per batch, in batch-means mode).
	RunLength float64
	// Warmup is discarded model time before measurement starts.
	Warmup float64
	// Replications is the number of independent runs (default 30, the
	// paper's choice). Ignored in batch-means mode.
	Replications int
	// Batches, when positive, switches to the batch-means method: one
	// long run of Warmup + Batches×RunLength model time, each batch
	// contributing one observation. Cheaper than replications (a single
	// warm-up) at the cost of residual correlation between batches.
	Batches int
	// Seed seeds the master random stream (default 1).
	Seed uint64
	// ConfidenceLevel for the reported intervals (default 0.90).
	ConfidenceLevel float64
	// MaxEvents bounds the events per replication (default 50 million).
	MaxEvents int
	// Workers bounds the number of replications run concurrently
	// (default 1, i.e. sequential). Every replication draws from its own
	// split random stream and the per-replication observations are merged
	// in replication-index order, so the estimates are bit-identical at
	// any worker count. Ignored in batch-means mode (a single run).
	Workers int
	// Ctx cancels the experiment: every replication polls it periodically
	// in its event loop, and a cancellation surfaces as a
	// *fault.CanceledError (phase "sim", Point = replication index). A nil
	// context disables polling. Completed replications are unaffected —
	// each draws from its own split stream, so when a cancellation is
	// observed cannot change any finished observation.
	Ctx context.Context
}

// Result reports simulation estimates.
type Result struct {
	// Estimates maps measure names to confidence intervals.
	Estimates map[string]stats.Interval
	// Events is the total number of fired transitions across replications.
	Events int64
	// Replications is the number of completed runs.
	Replications int
}

// Estimate returns the interval of a named measure.
func (r *Result) Estimate(name string) (stats.Interval, bool) {
	ci, ok := r.Estimates[name]
	return ci, ok
}

// Simulation failure modes.
var (
	// ErrImmediateLivelock reports an unbounded sequence of immediate
	// firings.
	ErrImmediateLivelock = errors.New("sim: immediate livelock (unbounded zero-time sequence)")
	// ErrNoDistribution reports a timed transition whose activity has
	// neither an exponential rate nor an override.
	ErrNoDistribution = errors.New("sim: activity has no duration distribution")
)

// stateInfo caches the expensive per-state computations.
type stateInfo struct {
	succ  []elab.Transition
	preds []bool // local enabledness per state-reward clause
}

// runner executes replications of one configuration.
type runner struct {
	cfg   Config
	model *elab.Model
	// Visited states are interned into an arena and the memo is indexed by
	// the resulting dense id — the hot path performs no string conversion
	// and no map-of-string lookup.
	intern *statespace.Interner
	memo   []*stateInfo
	keyBuf []byte

	// Flattened clauses.
	stateClauses []measure.Clause
	transClauses []measure.Clause
	// clauseOf[m] lists (kind, flattened index) per measure.
	stateOf [][]int
	transOf [][]int
}

// Run executes the experiment and returns the estimates.
func Run(cfg Config) (*Result, error) {
	if cfg.Model == nil {
		return nil, errors.New("sim: nil model")
	}
	if cfg.RunLength <= 0 {
		return nil, errors.New("sim: RunLength must be positive")
	}
	if cfg.Replications <= 0 {
		cfg.Replications = 30
	}
	if cfg.ConfidenceLevel == 0 {
		cfg.ConfidenceLevel = 0.90
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = 50_000_000
	}

	r, err := newRunner(cfg)
	if err != nil {
		return nil, err
	}

	master := rng.New(cfg.Seed)
	accs := make([]stats.Accumulator, len(cfg.Measures))
	res := &Result{Estimates: make(map[string]stats.Interval, len(cfg.Measures))}
	if cfg.Batches > 0 {
		// Batch means: one long run, one observation per batch.
		segs, events, err := r.replicateGuarded(0, 0, master.Split(0), cfg.Batches)
		if err != nil {
			return nil, fmt.Errorf("sim: batch-means run: %w", err)
		}
		res.Events = events
		for _, vals := range segs {
			for i, v := range vals {
				accs[i].Add(v)
			}
		}
		res.Replications = cfg.Batches
	} else {
		vals, events, err := r.runReplications(master)
		if err != nil {
			return nil, err
		}
		res.Events = events
		// Merge in replication-index order: the accumulator then sees the
		// same observation sequence regardless of the worker count.
		for _, obs := range vals {
			for i, v := range obs {
				accs[i].Add(v)
			}
		}
		res.Replications = cfg.Replications
	}
	for i, m := range cfg.Measures {
		if m.Derived {
			continue
		}
		res.Estimates[m.Name] = accs[i].CI(cfg.ConfidenceLevel)
	}
	if _, err := measure.DeriveIntervals(cfg.Measures, res.Estimates); err != nil {
		return nil, err
	}
	return res, nil
}

// newRunner flattens the measure clauses of a configuration.
func newRunner(cfg Config) (*runner, error) {
	r := &runner{
		cfg:    cfg,
		model:  cfg.Model,
		intern: statespace.NewInterner(),
	}
	for mi, m := range cfg.Measures {
		r.stateOf = append(r.stateOf, nil)
		r.transOf = append(r.transOf, nil)
		if m.Derived {
			continue // resolved from the base estimates after the runs
		}
		for _, cl := range m.Clauses {
			switch cl.Kind {
			case measure.StateReward:
				r.stateOf[mi] = append(r.stateOf[mi], len(r.stateClauses))
				r.stateClauses = append(r.stateClauses, cl)
			case measure.TransReward:
				r.transOf[mi] = append(r.transOf[mi], len(r.transClauses))
				r.transClauses = append(r.transClauses, cl)
			default:
				return nil, fmt.Errorf("sim: measure %s: invalid clause kind", m.Name)
			}
		}
	}
	return r, nil
}

// fork returns a runner sharing the read-only configuration and flattened
// clauses with its own state interner and memo, for use by one worker
// goroutine (the interner is single-writer, never shared across workers).
func (r *runner) fork() *runner {
	return &runner{
		cfg:          r.cfg,
		model:        r.model,
		intern:       statespace.NewInterner(),
		stateClauses: r.stateClauses,
		transClauses: r.transClauses,
		stateOf:      r.stateOf,
		transOf:      r.transOf,
	}
}

// runReplications executes cfg.Replications independent runs — on a
// bounded worker pool when cfg.Workers > 1 — and returns the per-
// replication measure values in replication order. Replication i always
// draws from the split stream master.Split(i), so the values are
// bit-identical at any worker count; the pool stops handing out work
// after the first failure and the lowest-index error is reported, which
// is the error a sequential run would hit.
func (r *runner) runReplications(master *rng.Rand) ([][]float64, int64, error) {
	reps := r.cfg.Replications
	workers := r.cfg.Workers
	if workers > reps {
		workers = reps
	}
	out := make([][]float64, reps)
	if workers <= 1 {
		var events int64
		for rep := 0; rep < reps; rep++ {
			segs, ev, err := r.replicateGuarded(0, rep, master.Split(uint64(rep)), 1)
			if err != nil {
				return nil, events, fmt.Errorf("sim: replication %d: %w", rep, err)
			}
			events += ev
			out[rep] = segs[0]
		}
		return out, events, nil
	}

	// Split the streams up front, in index order: Split only reads the
	// master state, and replication i gets the same stream as sequentially.
	streams := make([]*rng.Rand, reps)
	for rep := range streams {
		streams[rep] = master.Split(uint64(rep))
	}
	var (
		wg     sync.WaitGroup
		next   atomic.Int64
		events atomic.Int64
		stop   atomic.Bool
		errs   = make([]error, reps)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wr := r.fork() // private state memo per worker
			for {
				rep := int(next.Add(1)) - 1
				if rep >= reps || stop.Load() {
					return
				}
				segs, ev, err := wr.replicateGuarded(w, rep, streams[rep], 1)
				events.Add(ev)
				if err != nil {
					errs[rep] = err
					stop.Store(true)
					return
				}
				out[rep] = segs[0]
			}
		}(w)
	}
	wg.Wait()
	// Replications are claimed in index order, so every index below a
	// failed one has run: the first recorded error is the sequential one.
	for rep, err := range errs {
		if err != nil {
			return nil, events.Load(), fmt.Errorf("sim: replication %d: %w", rep, err)
		}
	}
	return out, events.Load(), nil
}

// info returns the cached successor/predicate data of a state.
func (r *runner) info(s elab.State) (*stateInfo, error) {
	r.keyBuf = r.model.AppendKey(r.keyBuf[:0], s)
	id, fresh := r.intern.Intern(r.keyBuf)
	if !fresh && int(id) < len(r.memo) {
		if si := r.memo[id]; si != nil {
			return si, nil
		}
	}
	succ, err := r.model.Successors(s)
	if err != nil {
		return nil, err
	}
	si := &stateInfo{succ: succ}
	if len(r.stateClauses) > 0 {
		si.preds = make([]bool, len(r.stateClauses))
		for i, cl := range r.stateClauses {
			ok, err := r.model.LocallyEnabled(s, cl.Instance, cl.Action)
			if err != nil {
				return nil, err
			}
			si.preds[i] = ok
		}
	}
	for int(id) >= len(r.memo) {
		r.memo = append(r.memo, nil)
	}
	r.memo[id] = si
	return si, nil
}

// replicateGuarded runs one replication under a panic guard: a crash in
// the event loop (or an injected fault keyed by the replication index)
// surfaces as a *fault.WorkerPanicError attributed to this worker and
// replication instead of taking down the pool.
func (r *runner) replicateGuarded(w, rep int, rnd *rng.Rand, segments int) (segs [][]float64, ev int64, err error) {
	err = fault.Guard("sim", w, fmt.Sprintf("replication %d", rep), func() error {
		faultinject.MaybePanic(faultinject.SiteSimReplication, rep)
		var rerr error
		segs, ev, rerr = r.replicate(rep, rnd, segments)
		return rerr
	})
	if err != nil {
		return nil, ev, err
	}
	return segs, ev, nil
}

// pollEvents is the event-count stride between context polls of a
// replication's event loop: frequent enough that cancellation lands
// promptly, sparse enough that the poll never shows up in a profile.
const pollEvents = 1024

// replicate runs one run whose measurement window is split into the given
// number of consecutive segments (1 for independent replications, n for
// batch means) and returns the per-segment measure values (already
// normalized by the segment length). rep is the replication index, used
// only to attribute a cancellation.
func (r *runner) replicate(rep int, rnd *rng.Rand, segments int) ([][]float64, int64, error) {
	var (
		now        float64
		events     int64
		state      = r.model.Initial()
		clocks     = make(map[Activity]float64, 8)
		endTime    = r.cfg.Warmup + float64(segments)*r.cfg.RunLength
		zeroStreak = 0
	)
	stateAcc := make([][]float64, segments)
	transAcc := make([][]float64, segments)
	for k := range stateAcc {
		stateAcc[k] = make([]float64, len(r.stateClauses))
		transAcc[k] = make([]float64, len(r.transClauses))
	}
	segOf := func(t float64) int {
		k := int((t - r.cfg.Warmup) / r.cfg.RunLength)
		if k < 0 {
			k = 0
		}
		if k >= segments {
			k = segments - 1
		}
		return k
	}

	accrue := func(si *stateInfo, dt float64) {
		if dt <= 0 || len(r.stateClauses) == 0 {
			return
		}
		// Clip the accrual window to [Warmup, endTime] and split it over
		// the segments it spans.
		lo := math.Max(now, r.cfg.Warmup)
		hi := math.Min(now+dt, endTime)
		for lo < hi {
			k := segOf(lo)
			segEnd := r.cfg.Warmup + float64(k+1)*r.cfg.RunLength
			w := math.Min(hi, segEnd) - lo
			if w <= 0 {
				break
			}
			for i := range r.stateClauses {
				if si.preds[i] {
					stateAcc[k][i] += r.stateClauses[i].Value * w
				}
			}
			lo += w
		}
	}
	countFiring := func(label string) {
		if now < r.cfg.Warmup || len(r.transClauses) == 0 {
			return
		}
		k := segOf(now)
		for i, cl := range r.transClauses {
			if lts.LabelInvolves(label, cl.Pred()) {
				transAcc[k][i] += cl.Value
			}
		}
	}

	for now < endTime {
		if events >= int64(r.cfg.MaxEvents) {
			return nil, events, fmt.Errorf("sim: exceeded %d events", r.cfg.MaxEvents)
		}
		if events%pollEvents == 0 {
			if err := fault.Check(r.cfg.Ctx, "sim", rep, -1); err != nil {
				return nil, events, err
			}
		}
		si, err := r.info(state)
		if err != nil {
			return nil, events, err
		}
		if len(si.succ) == 0 {
			// Deadlock: the state persists until the horizon.
			accrue(si, endTime-now)
			now = endTime
			break
		}

		// Immediate transitions pre-empt time.
		if tr, ok := pickImmediate(si.succ, rnd); ok {
			zeroStreak++
			if zeroStreak > 1_000_000 {
				return nil, events, ErrImmediateLivelock
			}
			countFiring(tr.Label)
			state = tr.Next
			events++
			continue
		}

		// Timed step: sample clocks for newly enabled activities.
		enabled := make(map[Activity]bool, len(si.succ))
		for i := range si.succ {
			tr := &si.succ[i]
			act := Activity{
				Instance: r.model.InstanceName(tr.ActiveInst),
				Action:   tr.ActiveAction,
			}
			if enabled[act] {
				continue
			}
			enabled[act] = true
			if _, have := clocks[act]; have {
				continue
			}
			d, err := r.distributionFor(act, tr.Rate)
			if err != nil {
				return nil, events, fmt.Errorf("%w: %s.%s (label %s)",
					ErrNoDistribution, act.Instance, act.Action, tr.Label)
			}
			clocks[act] = d.Sample(rnd)
		}
		// Enabling memory: drop clocks of disabled activities.
		for act := range clocks {
			if !enabled[act] {
				delete(clocks, act)
			}
		}

		// Fire the minimum clock.
		var winner Activity
		minRem := math.Inf(1)
		first := true
		for act, rem := range clocks {
			if rem < minRem || (rem == minRem && less(act, winner)) || first {
				winner, minRem = act, rem
				first = false
			}
		}
		dt := minRem
		if dt > 0 {
			zeroStreak = 0
		} else {
			zeroStreak++
			if zeroStreak > 1_000_000 {
				return nil, events, ErrImmediateLivelock
			}
		}
		if now+dt >= endTime {
			accrue(si, endTime-now)
			now = endTime
			break
		}
		accrue(si, dt)
		for act := range clocks {
			clocks[act] -= dt
		}
		delete(clocks, winner)
		now += dt

		// Choose uniformly among the winner's transitions (usually one).
		var cands []int
		for i := range si.succ {
			tr := &si.succ[i]
			if r.model.InstanceName(tr.ActiveInst) == winner.Instance &&
				tr.ActiveAction == winner.Action {
				cands = append(cands, i)
			}
		}
		tr := &si.succ[cands[0]]
		if len(cands) > 1 {
			tr = &si.succ[cands[rnd.Intn(len(cands))]]
		}
		countFiring(tr.Label)
		state = tr.Next
		events++
	}

	// Normalize by the segment length.
	T := r.cfg.RunLength
	out := make([][]float64, segments)
	for k := 0; k < segments; k++ {
		vals := make([]float64, len(r.cfg.Measures))
		for mi := range r.cfg.Measures {
			v := 0.0
			for _, i := range r.stateOf[mi] {
				v += stateAcc[k][i] / T
			}
			for _, i := range r.transOf[mi] {
				v += transAcc[k][i] / T
			}
			vals[mi] = v
		}
		out[k] = vals
	}
	return out, events, nil
}

// distributionFor resolves the duration distribution of an activity.
func (r *runner) distributionFor(act Activity, rate rates.Rate) (dist.Distribution, error) {
	if d, ok := r.cfg.Distributions[act]; ok {
		return d, nil
	}
	if rate.Kind == rates.Exp {
		return dist.NewExp(rate.Lambda), nil
	}
	return nil, ErrNoDistribution
}

// pickImmediate selects an immediate transition by priority and weight,
// if any is enabled.
func pickImmediate(succ []elab.Transition, rnd *rng.Rand) (*elab.Transition, bool) {
	maxPrio := math.MinInt32
	total := 0.0
	for i := range succ {
		if succ[i].Rate.Kind != rates.Immediate {
			continue
		}
		if succ[i].Rate.Priority > maxPrio {
			maxPrio = succ[i].Rate.Priority
			total = 0
		}
		if succ[i].Rate.Priority == maxPrio {
			total += succ[i].Rate.Weight
		}
	}
	if total == 0 {
		return nil, false
	}
	u := rnd.Float64() * total
	acc := 0.0
	var last *elab.Transition
	for i := range succ {
		if succ[i].Rate.Kind != rates.Immediate || succ[i].Rate.Priority != maxPrio {
			continue
		}
		last = &succ[i]
		acc += succ[i].Rate.Weight
		if u < acc {
			return &succ[i], true
		}
	}
	return last, last != nil
}

// less gives activities a total order for deterministic tie-breaking.
func less(a, b Activity) bool {
	if a.Instance != b.Instance {
		return a.Instance < b.Instance
	}
	return a.Action < b.Action
}
