package sim

import (
	"strings"
	"testing"
)

// TestParallelReplicationsBitIdentical checks the engine's central
// determinism contract: the estimates of a replication experiment are
// bit-identical at any worker count, because every replication draws from
// its own split stream and observations merge in replication order.
func TestParallelReplicationsBitIdentical(t *testing.T) {
	m := workRestModel(t, 2, 1)
	run := func(workers int) *Result {
		res, err := Run(Config{
			Model:        m,
			Measures:     workRestMeasures,
			RunLength:    500,
			Warmup:       50,
			Replications: 12,
			Seed:         2004,
			Workers:      workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	base := run(1)
	for _, workers := range []int{2, 3, 8, 64} {
		res := run(workers)
		if res.Events != base.Events {
			t.Errorf("workers=%d: events %d != sequential %d", workers, res.Events, base.Events)
		}
		if res.Replications != base.Replications {
			t.Errorf("workers=%d: replications %d != %d", workers, res.Replications, base.Replications)
		}
		for name, want := range base.Estimates {
			got, ok := res.Estimates[name]
			if !ok {
				t.Fatalf("workers=%d: estimate %s missing", workers, name)
			}
			// Exact float equality is the point: not "statistically
			// close", the same bits.
			if got != want {
				t.Errorf("workers=%d: %s = %+v, sequential %+v", workers, name, got, want)
			}
		}
	}
}

// TestParallelFailFastLowestError checks that a parallel run reports the
// same failure a sequential run would hit: the lowest-index failing
// replication.
func TestParallelFailFastLowestError(t *testing.T) {
	m := workRestModel(t, 2, 1)
	run := func(workers int) error {
		_, err := Run(Config{
			Model:        m,
			Measures:     workRestMeasures,
			RunLength:    500,
			Replications: 8,
			Seed:         7,
			MaxEvents:    10, // every replication trips the bound
			Workers:      workers,
		})
		return err
	}
	seq, par := run(1), run(6)
	if seq == nil || par == nil {
		t.Fatalf("expected MaxEvents failures, got seq=%v par=%v", seq, par)
	}
	if seq.Error() != par.Error() {
		t.Errorf("parallel error %q != sequential %q", par, seq)
	}
	if !strings.Contains(par.Error(), "replication 0") {
		t.Errorf("expected the lowest-index replication in %q", par)
	}
}

// TestWorkersExceedingReplications clamps gracefully.
func TestWorkersExceedingReplications(t *testing.T) {
	m := workRestModel(t, 2, 1)
	res, err := Run(Config{
		Model:        m,
		Measures:     workRestMeasures,
		RunLength:    200,
		Replications: 2,
		Seed:         5,
		Workers:      16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replications != 2 {
		t.Errorf("replications = %d, want 2", res.Replications)
	}
}
