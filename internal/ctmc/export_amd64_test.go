//go:build amd64

package ctmc

// SetAVXForTest toggles the vectorized eight-lane sweep kernel and
// returns the previous setting, so the external tests can run the asm
// and scalar kernels against each other on the same machine.
func SetAVXForTest(on bool) bool {
	prev := haveAVX
	haveAVX = on
	return prev
}

// HaveAVXForTest reports whether the vectorized kernel is usable here.
func HaveAVXForTest() bool { return haveAVX }
