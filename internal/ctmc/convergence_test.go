package ctmc

import (
	"errors"
	"strings"
	"testing"
)

// TestConvergenceErrorDetails pins the typed solver failure: the error
// still matches ErrNoConvergence via errors.Is, and carries the iteration
// count and residual for diagnosis.
func TestConvergenceErrorDetails(t *testing.T) {
	c, err := Build(mm1k(20, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.SteadyState(SolveOptions{MaxIterations: 2, Tolerance: 1e-15})
	if err == nil {
		t.Fatal("expected non-convergence with MaxIterations=2")
	}
	if !errors.Is(err, ErrNoConvergence) {
		t.Errorf("errors.Is(err, ErrNoConvergence) = false for %v", err)
	}
	var ce *ConvergenceError
	if !errors.As(err, &ce) {
		t.Fatalf("errors.As failed for %T: %v", err, err)
	}
	if ce.Iterations != 2 {
		t.Errorf("Iterations = %d, want 2", ce.Iterations)
	}
	if ce.Residual <= ce.Tolerance {
		t.Errorf("Residual %g should exceed Tolerance %g", ce.Residual, ce.Tolerance)
	}
	if !strings.Contains(ce.Error(), "iterations") || !strings.Contains(ce.Error(), "residual") {
		t.Errorf("error text missing diagnostics: %q", ce.Error())
	}
	// Auto mode on this small chain runs Gauss-Seidel; the failure names
	// the sweep that actually ran.
	if ce.Sweep != SweepGaussSeidel {
		t.Errorf("Sweep = %v, want gauss-seidel", ce.Sweep)
	}
	if !strings.Contains(ce.Error(), "gauss-seidel") {
		t.Errorf("error text missing sweep mode: %q", ce.Error())
	}
}

// TestBuildDeterministicRows checks that the generator extraction is
// canonical: repeated builds of the same LTS produce identical row
// structure (column order included), which is what makes the downstream
// floating-point sweeps reproducible bit for bit.
func TestBuildDeterministicRows(t *testing.T) {
	build := func() *CTMC {
		c, err := Build(vanishingLTS())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a := build()
	for trial := 0; trial < 5; trial++ {
		b := build()
		if len(a.Rows) != len(b.Rows) {
			t.Fatalf("row count differs: %d vs %d", len(a.Rows), len(b.Rows))
		}
		for s := range a.Rows {
			ra, rb := a.Rows[s], b.Rows[s]
			if len(ra) != len(rb) {
				t.Fatalf("state %d: %d entries vs %d", s, len(ra), len(rb))
			}
			for i := range ra {
				if ra[i] != rb[i] {
					t.Errorf("state %d entry %d: %+v vs %+v", s, i, ra[i], rb[i])
				}
			}
		}
		for i, v := range a.Exit {
			if b.Exit[i] != v {
				t.Errorf("exit[%d]: %v vs %v", i, v, b.Exit[i])
			}
		}
	}
}
