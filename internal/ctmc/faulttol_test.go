// Fault-tolerance properties of the solver layer: cancellation at exact
// iterations, panic isolation in the Jacobi and batched pools, and the
// deterministic convergence-escalation ladder.
package ctmc_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/ctmc"
	"repro/internal/fault"
	"repro/internal/faultinject"
)

// findIterationBudget returns (insufficient, sufficient) Gauss-Seidel
// iteration budgets for the chain: the solve fails at `insufficient` and
// converges when the budget is multiplied by the ladder's factor (4), so
// the ladder's first rung is guaranteed to recover it.
func findIterationBudget(t *testing.T, c *ctmc.CTMC) (int, int) {
	t.Helper()
	for m := 8; m <= 1<<20; m *= 2 {
		_, err := c.SteadyState(ctmc.SolveOptions{Sweep: ctmc.SweepGaussSeidel, MaxIterations: m})
		if err == nil {
			// Convergence needs k iterations with m/2 < k <= m, so m/4
			// fails and 4*(m/4) = m suffices.
			if m < 8 {
				t.Fatalf("chain converges within %d iterations; too easy to force failure", m)
			}
			return m / 4, m
		}
		if !errors.Is(err, ctmc.ErrNoConvergence) {
			t.Fatal(err)
		}
	}
	t.Fatal("no iteration budget up to 2^20 converges")
	return 0, 0
}

// TestEscalationLadderRecovers forces a real convergence failure (an
// insufficient iteration budget) and checks that the ladder's first rung
// recovers it with a full, deterministic trace and a solution
// bit-identical to an unconstrained solve.
func TestEscalationLadderRecovers(t *testing.T) {
	c := rpcParamChain(t)
	insufficient, sufficient := findIterationBudget(t, c)

	ref, err := c.SteadyState(ctmc.SolveOptions{Sweep: ctmc.SweepGaussSeidel, MaxIterations: sufficient})
	if err != nil {
		t.Fatal(err)
	}

	var traces []*ctmc.SolveTrace
	for _, workers := range []int{1, 8} {
		pi, trace, err := c.SteadyStateTraced(ctmc.SolveOptions{
			Sweep:         ctmc.SweepGaussSeidel, // pinned: auto mode depends on Workers
			MaxIterations: insufficient,
			Workers:       workers,
			Escalation:    ctmc.EscalateLadder,
		})
		if err != nil {
			t.Fatalf("workers=%d: ladder did not recover: %v", workers, err)
		}
		if !trace.Escalated() {
			t.Fatalf("workers=%d: expected an escalated trace, got %+v", workers, trace)
		}
		base := trace.Attempts[0]
		if base.Rung != 0 || base.Action != "base" || base.Converged || base.Iterations != insufficient {
			t.Errorf("workers=%d: base attempt wrong: %+v", workers, base)
		}
		last := trace.Attempts[len(trace.Attempts)-1]
		if last.Rung != 1 || last.Action != "raise-max-iterations" || !last.Converged {
			t.Errorf("workers=%d: recovery attempt wrong: %+v", workers, last)
		}
		if last.MaxIterations != 4*insufficient {
			t.Errorf("workers=%d: rung 1 budget = %d, want %d", workers, last.MaxIterations, 4*insufficient)
		}
		for i := range pi {
			if pi[i] != ref[i] {
				t.Fatalf("workers=%d: escalated solution differs from reference at state %d: %v != %v",
					workers, i, pi[i], ref[i])
			}
		}
		traces = append(traces, trace)
	}
	if !reflect.DeepEqual(traces[0], traces[1]) {
		t.Errorf("trace depends on worker count:\n w=1: %+v\n w=8: %+v", traces[0], traces[1])
	}
}

// TestEscalationLadderExhausts pins the ladder's failure shape: with a
// hopeless budget every applicable rung is tried in order, the trace
// records each one, and the final error is still a ConvergenceError.
func TestEscalationLadderExhausts(t *testing.T) {
	c := rpcParamChain(t)
	_, trace, err := c.SteadyStateTraced(ctmc.SolveOptions{
		Sweep:         ctmc.SweepGaussSeidel,
		MaxIterations: 1,
		Escalation:    ctmc.EscalateLadder,
	})
	if err == nil {
		t.Fatal("expected the ladder to exhaust")
	}
	if !errors.Is(err, ctmc.ErrNoConvergence) {
		t.Fatalf("exhausted ladder should report non-convergence, got %v", err)
	}
	// Cold solve: the cold-restart rung is skipped, leaving base + 4 rungs.
	wantActions := []string{"base", "raise-max-iterations", "switch-sweep", "increase-damping", "multilevel"}
	if len(trace.Attempts) != len(wantActions) {
		t.Fatalf("attempts = %d, want %d: %+v", len(trace.Attempts), len(wantActions), trace.Attempts)
	}
	for i, a := range trace.Attempts {
		if a.Action != wantActions[i] || a.Converged {
			t.Errorf("attempt %d: got %+v, want action %q, not converged", i, a, wantActions[i])
		}
	}
	if trace.Attempts[2].Sweep != ctmc.SweepJacobi {
		t.Errorf("switch-sweep rung should run Jacobi, ran %v", trace.Attempts[2].Sweep)
	}
	if got, want := trace.Attempts[3].Omega, jacobiOmegaForTest/2; got != want {
		t.Errorf("increase-damping rung omega = %v, want %v", got, want)
	}
	if a := trace.Attempts[4]; a.Sweep != ctmc.SweepMultilevel || a.Omega != 1 {
		t.Errorf("multilevel rung should run undamped multilevel, got %+v", a)
	}
}

// jacobiOmegaForTest mirrors the solver's Jacobi damping default (pinned
// by TestEscalationLadderExhausts through the rung-3 halving).
const jacobiOmegaForTest = 0.5

// TestEscalationRejectsInBatch pins the option split: Omega and Escalation
// are solo-solver options and SolveBatch rejects them loudly instead of
// silently ignoring them.
func TestEscalationRejectsInBatch(t *testing.T) {
	c := rpcParamChain(t)
	if _, err := c.SolveBatch(rpcPoints()[:2], ctmc.BatchOptions{
		Solve: ctmc.SolveOptions{Escalation: ctmc.EscalateLadder},
	}); err == nil {
		t.Error("SolveBatch accepted Escalation")
	}
	if _, err := c.SolveBatch(rpcPoints()[:2], ctmc.BatchOptions{
		Solve: ctmc.SolveOptions{Omega: 0.25},
	}); err == nil {
		t.Error("SolveBatch accepted Omega")
	}
}

// TestSolveCancelAtIteration cancels a solve at an exact iteration via an
// injected trigger and checks the typed error: phase, iteration, and the
// context cause are all reported, for both sweep schemes.
func TestSolveCancelAtIteration(t *testing.T) {
	for _, sweep := range []ctmc.Sweep{ctmc.SweepGaussSeidel, ctmc.SweepJacobi} {
		ctx, cancel := context.WithCancel(context.Background())
		plan := faultinject.NewPlan().Arm(faultinject.SiteSolveIteration, 3).
			OnFire(faultinject.SiteSolveIteration, func(int) { cancel() })
		faultinject.Activate(plan)

		c := rpcParamChain(t)
		_, err := c.SteadyState(ctmc.SolveOptions{Sweep: sweep, Ctx: ctx})
		faultinject.Deactivate()
		cancel()
		if err == nil {
			t.Fatalf("sweep %v: cancellation ignored", sweep)
		}
		var ce *fault.CanceledError
		if !errors.As(err, &ce) {
			t.Fatalf("sweep %v: want *fault.CanceledError, got %T: %v", sweep, err, err)
		}
		if ce.Phase != "ctmc.steady-state" || ce.Iteration != 3 {
			t.Errorf("sweep %v: canceled at %q iteration %d, want ctmc.steady-state iteration 3",
				sweep, ce.Phase, ce.Iteration)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("sweep %v: cause chain lost context.Canceled: %v", sweep, err)
		}
	}
}

// TestJacobiBlockPanicIsolated injects a panic into a block task of the
// solo Jacobi pool and checks it surfaces as a typed worker-panic error
// with the injected fault intact — at one worker (inline execution) and
// several (pooled execution) alike.
func TestJacobiBlockPanicIsolated(t *testing.T) {
	for _, workers := range []int{1, 4} {
		plan := faultinject.NewPlan().Arm(faultinject.SiteJacobiBlock, 0)
		faultinject.Activate(plan)
		c := rpcParamChain(t)
		_, err := c.SteadyState(ctmc.SolveOptions{Sweep: ctmc.SweepJacobi, Workers: workers})
		faultinject.Deactivate()
		requireWorkerPanic(t, err, "ctmc.jacobi", faultinject.SiteJacobiBlock, 0)
	}
}

// TestBatchTilePanicIsolated injects a panic into a tile task of the
// batched Jacobi pool and checks the same recovery contract.
func TestBatchTilePanicIsolated(t *testing.T) {
	for _, workers := range []int{1, 4} {
		plan := faultinject.NewPlan().Arm(faultinject.SiteBatchTile, 0)
		faultinject.Activate(plan)
		c := rpcParamChain(t)
		_, err := c.SolveBatch(rpcPoints()[:4], ctmc.BatchOptions{
			Solve: ctmc.SolveOptions{Sweep: ctmc.SweepJacobi, Workers: workers},
		})
		faultinject.Deactivate()
		requireWorkerPanic(t, err, "ctmc.batch", faultinject.SiteBatchTile, 0)
	}
}

// requireWorkerPanic asserts the full error contract of a recovered
// worker panic: the typed wrapper with pool attribution, the sentinel for
// errors.Is, and the injected fault reachable by errors.As.
func requireWorkerPanic(t *testing.T, err error, pool, site string, key int) {
	t.Helper()
	if err == nil {
		t.Fatalf("pool %s: injected panic vanished", pool)
	}
	var wpe *fault.WorkerPanicError
	if !errors.As(err, &wpe) {
		t.Fatalf("pool %s: want *fault.WorkerPanicError, got %T: %v", pool, err, err)
	}
	if wpe.Pool != pool {
		t.Errorf("panic attributed to pool %q, want %q", wpe.Pool, pool)
	}
	if len(wpe.Stack) == 0 {
		t.Errorf("pool %s: recovered panic lost its stack", pool)
	}
	if !errors.Is(err, fault.ErrWorkerPanic) {
		t.Errorf("pool %s: errors.Is(err, fault.ErrWorkerPanic) is false", pool)
	}
	var ie *faultinject.InjectedError
	if !errors.As(err, &ie) {
		t.Fatalf("pool %s: injected fault not reachable via errors.As: %v", pool, err)
	}
	if ie.Site != site || ie.Key != key {
		t.Errorf("pool %s: fault = (%s, %d), want (%s, %d)", pool, ie.Site, ie.Key, site, key)
	}
}
