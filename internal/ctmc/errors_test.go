// Round-trip tests for the solver's error chains: every typed error must
// keep its sentinels reachable through errors.Is/As at any nesting depth
// the fault-tolerance layer can produce, and the messages must carry the
// diagnostic fields.
package ctmc_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/ctmc"
	"repro/internal/fault"
)

func convergenceFixture() *ctmc.ConvergenceError {
	return &ctmc.ConvergenceError{
		Iterations: 1234,
		Residual:   0.5,
		Tolerance:  1e-12,
		Sweep:      ctmc.SweepGaussSeidel,
		Point:      7,
		Params:     []float64{0.25},
	}
}

func TestConvergenceErrorChain(t *testing.T) {
	ce := convergenceFixture()
	if !errors.Is(ce, ctmc.ErrNoConvergence) {
		t.Error("ConvergenceError does not unwrap to ErrNoConvergence")
	}
	var got *ctmc.ConvergenceError
	if !errors.As(error(ce), &got) || got.Iterations != 1234 {
		t.Error("errors.As lost the ConvergenceError")
	}
	msg := ce.Error()
	for _, want := range []string{"1234 iterations", "gauss-seidel", "sweep point 7", "[0.25]"} {
		if !strings.Contains(msg, want) {
			t.Errorf("message %q missing %q", msg, want)
		}
	}
	// Outside a sweep (Point < 0) the point suffix must disappear.
	solo := &ctmc.ConvergenceError{Point: -1, Sweep: ctmc.SweepJacobi}
	if strings.Contains(solo.Error(), "sweep point") {
		t.Errorf("solo message %q should not mention a sweep point", solo.Error())
	}
}

func TestBatchPointErrorChain(t *testing.T) {
	ce := convergenceFixture()
	bpe := &ctmc.BatchPointError{Point: 3, Err: ce}
	if !errors.Is(bpe, ctmc.ErrNoConvergence) {
		t.Error("BatchPointError does not forward ErrNoConvergence")
	}
	var gotCE *ctmc.ConvergenceError
	if !errors.As(error(bpe), &gotCE) || gotCE != ce {
		t.Error("errors.As through BatchPointError lost the ConvergenceError")
	}
	var gotBPE *ctmc.BatchPointError
	if !errors.As(error(bpe), &gotBPE) || gotBPE.Point != 3 {
		t.Error("errors.As lost the BatchPointError itself")
	}
	if !strings.Contains(bpe.Error(), "batch point 3") {
		t.Errorf("message %q missing the batch point", bpe.Error())
	}
}

func TestRebindErrorChain(t *testing.T) {
	structural := &ctmc.RebindError{Slot: 2, Value: 0}
	if !errors.Is(structural, ctmc.ErrStructuralRebind) {
		t.Error("structural RebindError does not unwrap to ErrStructuralRebind")
	}
	if !strings.Contains(structural.Error(), "slot 2") {
		t.Errorf("message %q missing the slot", structural.Error())
	}
	// A length mismatch is not a structural failure and must not match.
	length := &ctmc.RebindError{Slot: 0, Want: 1, Got: 3}
	if errors.Is(length, ctmc.ErrStructuralRebind) {
		t.Error("length-mismatch RebindError wrongly matches ErrStructuralRebind")
	}
	if !strings.Contains(length.Error(), "expects 1 slot values, got 3") {
		t.Errorf("message %q missing the counts", length.Error())
	}
}

func TestInvariantErrorChain(t *testing.T) {
	cause := errors.New("row sums drifted")
	ie := &ctmc.InvariantError{Err: cause}
	if !errors.Is(ie, cause) {
		t.Error("InvariantError does not unwrap to its cause")
	}
	if !strings.Contains(ie.Error(), "internal invariant violated") ||
		!strings.Contains(ie.Error(), "row sums drifted") {
		t.Errorf("message %q incomplete", ie.Error())
	}
}

// TestWorkerPanicNesting checks the deepest chain the fault-tolerance
// layer produces: a worker panicking with a typed solver error is
// recovered into a WorkerPanicError, and every sentinel of the panic
// value stays reachable through it.
func TestWorkerPanicNesting(t *testing.T) {
	ce := convergenceFixture()
	bpe := &ctmc.BatchPointError{Point: 1, Err: ce}
	err := fault.Guard("ctmc.batch", 2, "tile 5", func() error {
		panic(bpe)
	})
	if !errors.Is(err, fault.ErrWorkerPanic) {
		t.Error("recovered panic does not match ErrWorkerPanic")
	}
	if !errors.Is(err, ctmc.ErrNoConvergence) {
		t.Error("ErrNoConvergence unreachable through the panic wrapper")
	}
	var gotCE *ctmc.ConvergenceError
	if !errors.As(err, &gotCE) || gotCE.Point != 7 {
		t.Error("ConvergenceError unreachable through the panic wrapper")
	}
	var wpe *fault.WorkerPanicError
	if !errors.As(err, &wpe) || wpe.Pool != "ctmc.batch" || wpe.Worker != 2 || wpe.Task != "tile 5" {
		t.Errorf("panic attribution wrong: %+v", wpe)
	}
	for _, want := range []string{"ctmc.batch", "worker 2", "tile 5"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("message %q missing %q", err.Error(), want)
		}
	}
}

// TestCanceledErrorNesting checks the cancellation chain: the typed
// wrapper keeps the context cause reachable and can itself wrap a solver
// error context (e.g. a cancellation observed while escalating).
func TestCanceledErrorNesting(t *testing.T) {
	ce := &fault.CanceledError{Phase: "core.sweep", Point: 4, Iteration: -1, Err: context.DeadlineExceeded}
	if !errors.Is(ce, context.DeadlineExceeded) {
		t.Error("CanceledError does not unwrap to its context cause")
	}
	msg := ce.Error()
	if !strings.Contains(msg, "core.sweep canceled") || !strings.Contains(msg, "point 4") {
		t.Errorf("message %q incomplete", msg)
	}
	if strings.Contains(msg, "iteration") {
		t.Errorf("message %q should omit the unset iteration", msg)
	}
	// A cancellation recovered from a panicking worker: both sentinels
	// must survive the double wrap.
	err := fault.Guard("core.sweep", 0, "point 4", func() error { panic(ce) })
	if !errors.Is(err, fault.ErrWorkerPanic) || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("double-wrapped cancellation lost a sentinel: %v", err)
	}
}
