package ctmc

import (
	"errors"
	"math"
	"testing"

	"repro/internal/lts"
	"repro/internal/rates"
)

// mm1k builds the LTS of an M/M/1/K queue: states 0..K, arrivals at rate
// lambda, services at rate mu.
func mm1k(k int, lambda, mu float64) *lts.LTS {
	l := lts.New(k + 1)
	l.Initial = 0
	arr := l.LabelIndex("arrive")
	srv := l.LabelIndex("serve")
	for n := 0; n < k; n++ {
		l.AddTransition(n, n+1, arr, rates.ExpRate(lambda))
	}
	for n := 1; n <= k; n++ {
		l.AddTransition(n, n-1, srv, rates.ExpRate(mu))
	}
	return l
}

// analyticMM1K returns the steady-state distribution of M/M/1/K.
func analyticMM1K(k int, lambda, mu float64) []float64 {
	rho := lambda / mu
	pi := make([]float64, k+1)
	sum := 0.0
	for n := 0; n <= k; n++ {
		pi[n] = math.Pow(rho, float64(n))
		sum += pi[n]
	}
	for n := range pi {
		pi[n] /= sum
	}
	return pi
}

func TestSteadyStateMM1K(t *testing.T) {
	const k = 8
	lambda, mu := 2.0, 3.0
	c, err := Build(mm1k(k, lambda, mu))
	if err != nil {
		t.Fatal(err)
	}
	if c.N != k+1 {
		t.Fatalf("N = %d, want %d", c.N, k+1)
	}
	pi, err := c.SteadyState(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := analyticMM1K(k, lambda, mu)
	for n := 0; n <= k; n++ {
		ci := c.CTMCIndexOf(n)
		if math.Abs(pi[ci]-want[n]) > 1e-9 {
			t.Errorf("pi[%d] = %v, want %v", n, pi[ci], want[n])
		}
	}
}

func TestThroughputMM1K(t *testing.T) {
	const k = 8
	lambda, mu := 2.0, 3.0
	c, err := Build(mm1k(k, lambda, mu))
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.SteadyState(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := analyticMM1K(k, lambda, mu)
	// Accepted arrival rate = lambda * (1 - P(full)); service throughput
	// equals it in steady state.
	acc := lambda * (1 - want[k])
	gotArr := c.Throughput(pi, func(l string) bool { return l == "arrive" }, nil)
	gotSrv := c.Throughput(pi, func(l string) bool { return l == "serve" }, nil)
	if math.Abs(gotArr-acc) > 1e-9 {
		t.Errorf("arrival throughput = %v, want %v", gotArr, acc)
	}
	if math.Abs(gotSrv-acc) > 1e-9 {
		t.Errorf("service throughput = %v, want %v", gotSrv, acc)
	}
	// Weighted throughput doubles with weight 2.
	gotW := c.Throughput(pi, func(l string) bool { return l == "serve" },
		func(string) float64 { return 2 })
	if math.Abs(gotW-2*acc) > 1e-9 {
		t.Errorf("weighted throughput = %v, want %v", gotW, 2*acc)
	}
}

func TestStateReward(t *testing.T) {
	const k = 4
	c, err := Build(mm1k(k, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.SteadyState(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Mean queue length via state rewards.
	got := c.StateReward(pi, func(s int) float64 { return float64(s) })
	want := 0.0
	for n, p := range analyticMM1K(k, 1, 2) {
		want += float64(n) * p
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("mean queue length = %v, want %v", got, want)
	}
}

// vanishing chain: t0 -exp(2)-> v0 -imm-> {s1 w=1, s2 w=3}; s1,s2 -exp-> t0.
func vanishingLTS() *lts.LTS {
	l := lts.New(4) // 0=t0, 1=v0, 2=s1, 3=s2
	l.Initial = 0
	go1 := l.LabelIndex("go")
	a := l.LabelIndex("pick_a")
	b := l.LabelIndex("pick_b")
	back := l.LabelIndex("back")
	l.AddTransition(0, 1, go1, rates.ExpRate(2))
	l.AddTransition(1, 2, a, rates.Inf(1, 1))
	l.AddTransition(1, 3, b, rates.Inf(1, 3))
	l.AddTransition(2, 0, back, rates.ExpRate(1))
	l.AddTransition(3, 0, back, rates.ExpRate(1))
	return l
}

func TestVanishingElimination(t *testing.T) {
	c, err := Build(vanishingLTS())
	if err != nil {
		t.Fatal(err)
	}
	if c.N != 3 {
		t.Fatalf("tangible states = %d, want 3", c.N)
	}
	if c.NumVanishing() != 1 {
		t.Fatalf("vanishing states = %d, want 1", c.NumVanishing())
	}
	pi, err := c.SteadyState(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Balance: let r = visit rate of t0's departure = pi0*2. s1 gets r/4,
	// s2 gets 3r/4; mean sojourns: t0 1/2, s1 1, s2 1.
	// pi ∝ (1/2, 1/4, 3/4) → (2/6, 1/6, 3/6).
	want := map[int]float64{0: 2.0 / 6, 2: 1.0 / 6, 3: 3.0 / 6}
	for ltsState, w := range want {
		ci := c.CTMCIndexOf(ltsState)
		if ci < 0 {
			t.Fatalf("state %d unexpectedly vanishing", ltsState)
		}
		if math.Abs(pi[ci]-w) > 1e-9 {
			t.Errorf("pi[%d] = %v, want %v", ltsState, pi[ci], w)
		}
	}
	if c.CTMCIndexOf(1) != -1 {
		t.Error("state 1 should be vanishing")
	}
}

func TestImmediateThroughput(t *testing.T) {
	c, err := Build(vanishingLTS())
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.SteadyState(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Entry rate into v0 = pi(t0)*2 = (2/6)*2 = 2/3. pick_a fires at 1/4
	// of that, pick_b at 3/4.
	gotA := c.Throughput(pi, func(l string) bool { return l == "pick_a" }, nil)
	gotB := c.Throughput(pi, func(l string) bool { return l == "pick_b" }, nil)
	if math.Abs(gotA-(2.0/3)*0.25) > 1e-9 {
		t.Errorf("pick_a throughput = %v, want %v", gotA, (2.0/3)*0.25)
	}
	if math.Abs(gotB-(2.0/3)*0.75) > 1e-9 {
		t.Errorf("pick_b throughput = %v, want %v", gotB, (2.0/3)*0.75)
	}
}

func TestImmediatePriorityPreemption(t *testing.T) {
	// A vanishing state with branches at priorities 1 and 2: only the
	// higher-priority branch can fire.
	l := lts.New(3)
	l.Initial = 0
	l.AddTransition(0, 1, l.LabelIndex("low"), rates.Inf(1, 1))
	l.AddTransition(0, 2, l.LabelIndex("high"), rates.Inf(2, 1))
	l.AddTransition(1, 0, l.LabelIndex("back1"), rates.ExpRate(1))
	l.AddTransition(2, 0, l.LabelIndex("back2"), rates.ExpRate(1))
	c, err := Build(l)
	if err != nil {
		t.Fatal(err)
	}
	// Initial distribution resolves entirely to state 2.
	if got := c.Initial[c.CTMCIndexOf(2)]; math.Abs(got-1) > 1e-12 {
		t.Errorf("initial mass at 2 = %v, want 1", got)
	}
	if got := c.Initial[c.CTMCIndexOf(1)]; got != 0 {
		t.Errorf("initial mass at 1 = %v, want 0", got)
	}
}

func TestImmediateChainElimination(t *testing.T) {
	// v0 -imm-> v1 -imm-> tangible: chains of vanishing states resolve.
	l := lts.New(4)
	l.Initial = 0
	l.AddTransition(0, 1, l.LabelIndex("a"), rates.Inf(1, 1))
	l.AddTransition(1, 2, l.LabelIndex("b"), rates.Inf(1, 1))
	l.AddTransition(2, 3, l.LabelIndex("c"), rates.ExpRate(5))
	l.AddTransition(3, 2, l.LabelIndex("d"), rates.ExpRate(5))
	c, err := Build(l)
	if err != nil {
		t.Fatal(err)
	}
	if c.N != 2 {
		t.Fatalf("N = %d, want 2", c.N)
	}
	if got := c.Initial[c.CTMCIndexOf(2)]; math.Abs(got-1) > 1e-12 {
		t.Errorf("initial mass = %v, want 1 at state 2", got)
	}
}

func TestTimelessTrap(t *testing.T) {
	l := lts.New(2)
	l.Initial = 0
	l.AddTransition(0, 1, l.LabelIndex("a"), rates.Inf(1, 1))
	l.AddTransition(1, 0, l.LabelIndex("b"), rates.Inf(1, 1))
	_, err := Build(l)
	if !errors.Is(err, ErrTimelessTrap) {
		t.Fatalf("want ErrTimelessTrap, got %v", err)
	}
}

func TestNotRated(t *testing.T) {
	l := lts.New(2)
	l.Initial = 0
	l.AddTransition(0, 1, l.LabelIndex("a"), rates.PassiveRate())
	_, err := Build(l)
	if !errors.Is(err, ErrNotRated) {
		t.Fatalf("want ErrNotRated, got %v", err)
	}
}

func TestMultipleBSCCRejected(t *testing.T) {
	l := lts.New(3)
	l.Initial = 0
	l.AddTransition(0, 1, l.LabelIndex("a"), rates.ExpRate(1))
	l.AddTransition(0, 2, l.LabelIndex("b"), rates.ExpRate(1))
	// 1 and 2 are absorbing.
	c, err := Build(l)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SteadyState(SolveOptions{}); !errors.Is(err, ErrMultipleBSCC) {
		t.Fatalf("want ErrMultipleBSCC, got %v", err)
	}
}

func TestAbsorbingSteadyState(t *testing.T) {
	// Transient start, single absorbing state.
	l := lts.New(2)
	l.Initial = 0
	l.AddTransition(0, 1, l.LabelIndex("die"), rates.ExpRate(3))
	c, err := Build(l)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.SteadyState(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[c.CTMCIndexOf(1)]-1) > 1e-12 {
		t.Errorf("absorbing state mass = %v, want 1", pi[c.CTMCIndexOf(1)])
	}
}

func TestReducibleTransientPart(t *testing.T) {
	// 0 -> 1 <-> 2: state 0 transient, BSCC {1,2}.
	l := lts.New(3)
	l.Initial = 0
	l.AddTransition(0, 1, l.LabelIndex("enter"), rates.ExpRate(1))
	l.AddTransition(1, 2, l.LabelIndex("f"), rates.ExpRate(2))
	l.AddTransition(2, 1, l.LabelIndex("g"), rates.ExpRate(4))
	c, err := Build(l)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.SteadyState(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pi[c.CTMCIndexOf(0)] != 0 {
		t.Errorf("transient state has mass %v", pi[c.CTMCIndexOf(0)])
	}
	// Balance: pi1*2 = pi2*4 → pi1 = 2/3, pi2 = 1/3.
	if math.Abs(pi[c.CTMCIndexOf(1)]-2.0/3) > 1e-9 {
		t.Errorf("pi1 = %v, want 2/3", pi[c.CTMCIndexOf(1)])
	}
}

func TestTransientExponentialDecay(t *testing.T) {
	l := lts.New(2)
	l.Initial = 0
	l.AddTransition(0, 1, l.LabelIndex("die"), rates.ExpRate(1))
	c, err := Build(l)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0.1, 0.5, 1, 2, 5} {
		p := c.Transient(tt, 1e-12)
		want := math.Exp(-tt)
		if math.Abs(p[c.CTMCIndexOf(0)]-want) > 1e-6 {
			t.Errorf("P0(%v) = %v, want %v", tt, p[c.CTMCIndexOf(0)], want)
		}
	}
	// t=0 returns the initial distribution.
	p := c.Transient(0, 1e-12)
	if p[c.CTMCIndexOf(0)] != 1 {
		t.Errorf("P0(0) = %v, want 1", p[c.CTMCIndexOf(0)])
	}
}

func TestTransientConvergesToSteadyState(t *testing.T) {
	c, err := Build(mm1k(4, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.SteadyState(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pt := c.Transient(200, 1e-12)
	for i := range pi {
		if math.Abs(pt[i]-pi[i]) > 1e-6 {
			t.Errorf("transient(200)[%d] = %v, steady = %v", i, pt[i], pi[i])
		}
	}
}

func TestMeanExitRate(t *testing.T) {
	c, err := Build(mm1k(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.SteadyState(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Two states, each with exit rate 1.
	if got := c.MeanExitRate(pi); math.Abs(got-1) > 1e-9 {
		t.Errorf("MeanExitRate = %v, want 1", got)
	}
	if c.NumExpEdges() != 2 {
		t.Errorf("NumExpEdges = %d, want 2", c.NumExpEdges())
	}
}

func TestDeadlockStateAllowed(t *testing.T) {
	// A deadlocked (absorbing, no transitions) tangible state is fine.
	l := lts.New(2)
	l.Initial = 0
	l.AddTransition(0, 1, l.LabelIndex("end"), rates.ExpRate(1))
	c, err := Build(l)
	if err != nil {
		t.Fatal(err)
	}
	if c.Exit[c.CTMCIndexOf(1)] != 0 {
		t.Error("absorbing state should have zero exit rate")
	}
}
