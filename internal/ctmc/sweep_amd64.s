// Eight-lane Gauss-Seidel sweep, AVX. See sweepGS8AVX in sweep_amd64.go
// for the contract: per-lane arithmetic is the scalar kernel's exact
// IEEE-754 double operations in the same order — VMULPD/VADDPD/VSUBPD
// round identically to their scalar counterparts and no FMA contraction
// or reassociation is performed — so the results are bit-identical to
// sweepGS8.
//
// Register plan:
//	SI  inStart cursor          R13 rows remaining
//	R8  inFrom cursor           R14 live-lane bits
//	R9  rate cursor             R15 row byte offset (j*64)
//	R10 invExit cursor          AX/BX/CX/DX scratch
//	R11 x base                  R12 delta out pointer
//	Y0,Y1   inflow accumulators, then max(next, 1e-300)
//	Y2,Y3   next iterate        Y10 abs mask
//	Y4,Y5   old iterate         Y11 1e-300 broadcast
//	Y6,Y7   |next-old|          Y12 residual guard broadcast
//	Y8,Y9   dead-lane blend masks
//	Y13,Y14 per-lane residual maxima
//	Y15     threshold / compare scratch
//
// The frame is scratch for the rare residual slow path: d at 0(SP),
// m at 64(SP), delta at 128(SP).

#include "textflag.h"

DATA absmask<>+0(SB)/8, $0x7FFFFFFFFFFFFFFF
GLOBL absmask<>(SB), RODATA, $8

// 1e-300, the solo sweep's residual floor
DATA minpos<>+0(SB)/8, $0x01A56E1FC2F8F359
GLOBL minpos<>(SB), RODATA, $8

// residualGuard = 1 - 1e-13 (see solve.go)
DATA guard<>+0(SB)/8, $0x3FEFFFFFFFFFFC7B
GLOBL guard<>(SB), RODATA, $8

// func sweepGS8AVX(a *sweepGS8Args)
TEXT ·sweepGS8AVX(SB), NOSPLIT, $192-8
	MOVQ a+0(FP), DI
	MOVQ 0(DI), R13
	MOVQ 8(DI), SI
	MOVQ 16(DI), R8
	MOVQ 24(DI), R9
	MOVQ 32(DI), R10
	MOVQ 40(DI), R11
	MOVQ 48(DI), R12
	MOVQ 56(DI), AX
	MOVQ 64(DI), R14
	VMOVUPD (AX), Y8
	VMOVUPD 32(AX), Y9
	VBROADCASTSD absmask<>(SB), Y10
	VBROADCASTSD minpos<>(SB), Y11
	VBROADCASTSD guard<>(SB), Y12
	VXORPD Y13, Y13, Y13
	VXORPD Y14, Y14, Y14
	XORQ R15, R15

rowloop:
	// CX = in-degree of row j; the CSR rows are contiguous, so the
	// inFrom/rate cursors just keep advancing.
	MOVL 4(SI), CX
	SUBL 0(SI), CX
	ADDQ $4, SI
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	TESTL CX, CX
	JZ   epilogue

entry:
	// acc[k] += x[from*8+k] * rate[e*8+k], all eight lanes per edge
	MOVL (R8), DX
	SHLQ $6, DX
	VMOVUPD (R11)(DX*1), Y2
	VMOVUPD 32(R11)(DX*1), Y3
	VMULPD (R9), Y2, Y2
	VMULPD 32(R9), Y3, Y3
	VADDPD Y2, Y0, Y0
	VADDPD Y3, Y1, Y1
	ADDQ $4, R8
	ADDQ $64, R9
	DECQ CX
	JNZ  entry

epilogue:
	// next = acc * invExit; d = |next - x|; m = max(next, 1e-300)
	VMULPD (R10), Y0, Y2
	VMULPD 32(R10), Y1, Y3
	ADDQ $64, R10
	VMOVUPD (R11)(R15*1), Y4
	VMOVUPD 32(R11)(R15*1), Y5
	VSUBPD Y4, Y2, Y6
	VANDPD Y10, Y6, Y6
	VSUBPD Y5, Y3, Y7
	VANDPD Y10, Y7, Y7
	VMAXPD Y11, Y2, Y0
	VMAXPD Y11, Y3, Y1

	// Residual guard: lanes with d > delta*m*guard might raise their
	// running maximum (the scalar kernel's exact skip condition); the
	// common all-clear case never divides.
	VMULPD Y0, Y13, Y15
	VMULPD Y12, Y15, Y15
	VCMPPD $0x1e, Y15, Y6, Y15
	VMOVMSKPD Y15, AX
	VMULPD Y1, Y14, Y15
	VMULPD Y12, Y15, Y15
	VCMPPD $0x1e, Y15, Y7, Y15
	VMOVMSKPD Y15, BX
	SHLQ $4, BX
	ORQ  BX, AX
	ANDQ R14, AX
	JZ   blendstore

	// Rare path: scalar rel = d/m per flagged live lane, exactly the
	// scalar kernel's divide and max update.
	VMOVUPD Y6, 0(SP)
	VMOVUPD Y7, 32(SP)
	VMOVUPD Y0, 64(SP)
	VMOVUPD Y1, 96(SP)
	VMOVUPD Y13, 128(SP)
	VMOVUPD Y14, 160(SP)

slowbit:
	BSFQ AX, DX
	VMOVSD 0(SP)(DX*8), X15
	VDIVSD 64(SP)(DX*8), X15, X15
	VUCOMISD 128(SP)(DX*8), X15
	JBE  skipupd
	VMOVSD X15, 128(SP)(DX*8)

skipupd:
	LEAQ -1(AX), CX
	ANDQ CX, AX
	JNZ  slowbit
	VMOVUPD 128(SP), Y13
	VMOVUPD 160(SP), Y14

blendstore:
	// Frozen lanes keep their old column bits; live lanes take next.
	VBLENDVPD Y8, Y4, Y2, Y2
	VBLENDVPD Y9, Y5, Y3, Y3
	VMOVUPD Y2, (R11)(R15*1)
	VMOVUPD Y3, 32(R11)(R15*1)
	ADDQ $64, R15
	DECQ R13
	JNZ  rowloop

	VMOVUPD Y13, (R12)
	VMOVUPD Y14, 32(R12)
	VZEROUPPER
	RET

// func cpuidLeaf(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidLeaf(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
