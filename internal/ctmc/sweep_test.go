// Sweep-mode comparison tests live in an external test package: they
// build the paper's rpc and streaming chains through internal/models,
// which ctmc itself cannot import (models → measure → ctmc).
package ctmc_test

import (
	"errors"
	"math"
	"testing"

	"repro/internal/aemilia"
	"repro/internal/ctmc"
	"repro/internal/elab"
	"repro/internal/lts"
	"repro/internal/models"
)

func rpcChain(t *testing.T) *ctmc.CTMC {
	t.Helper()
	a, err := models.BuildRPCRevised(models.DefaultRPCParams())
	if err != nil {
		t.Fatal(err)
	}
	return chainOf(t, a)
}

func streamingChain(t *testing.T) *ctmc.CTMC {
	t.Helper()
	p := models.DefaultStreamingParams()
	p.APCapacity, p.ClientCapacity = 3, 3
	a, err := models.BuildStreaming(p)
	if err != nil {
		t.Fatal(err)
	}
	return chainOf(t, a)
}

func chainOf(t *testing.T, a *aemilia.ArchiType) *ctmc.CTMC {
	t.Helper()
	m, err := elab.Elaborate(a)
	if err != nil {
		t.Fatal(err)
	}
	l, err := lts.Generate(m, lts.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := ctmc.Build(l)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func steadyOrFatal(t *testing.T, c *ctmc.CTMC, opts ctmc.SolveOptions) []float64 {
	t.Helper()
	pi, err := c.SteadyState(opts)
	if err != nil {
		t.Fatalf("SteadyState(%+v): %v", opts, err)
	}
	return pi
}

// TestJacobiMatchesGaussSeidel checks the two sweep modes agree on the
// paper's chains to within solver tolerance: they iterate differently but
// share the fixed point.
func TestJacobiMatchesGaussSeidel(t *testing.T) {
	chains := map[string]*ctmc.CTMC{
		"rpc":       rpcChain(t),
		"streaming": streamingChain(t),
	}
	for name, c := range chains {
		gs := steadyOrFatal(t, c, ctmc.SolveOptions{Sweep: ctmc.SweepGaussSeidel})
		ja := steadyOrFatal(t, c, ctmc.SolveOptions{Sweep: ctmc.SweepJacobi})
		for s := range gs {
			diff := math.Abs(gs[s] - ja[s])
			if rel := diff / math.Max(math.Abs(gs[s]), 1e-12); rel > 1e-8 && diff > 1e-12 {
				t.Fatalf("%s: state %d: gauss-seidel %g vs jacobi %g (rel %g)", name, s, gs[s], ja[s], rel)
			}
		}
	}
}

// TestJacobiWorkerBitIdentity pins the parallel solve contract: the
// Jacobi vector is bit-identical at any worker count.
func TestJacobiWorkerBitIdentity(t *testing.T) {
	c := streamingChain(t)
	x1 := steadyOrFatal(t, c, ctmc.SolveOptions{Sweep: ctmc.SweepJacobi, Workers: 1})
	for _, workers := range []int{2, 4} {
		xw := steadyOrFatal(t, c, ctmc.SolveOptions{Sweep: ctmc.SweepJacobi, Workers: workers})
		for s := range x1 {
			if x1[s] != xw[s] {
				t.Fatalf("workers=%d: state %d: %v != %v (must be bit-identical)", workers, s, xw[s], x1[s])
			}
		}
	}
}

// TestJacobiAutoSelection checks the auto mode picks Jacobi above the
// threshold and still lands on the Gauss-Seidel fixed point.
func TestJacobiAutoSelection(t *testing.T) {
	c := rpcChain(t)
	gs := steadyOrFatal(t, c, ctmc.SolveOptions{Sweep: ctmc.SweepGaussSeidel})
	// Threshold 2 plus two workers forces every multi-state component
	// through Jacobi (auto requires both the size and a real pool).
	auto := steadyOrFatal(t, c, ctmc.SolveOptions{JacobiThreshold: 2, Workers: 2})
	ja := steadyOrFatal(t, c, ctmc.SolveOptions{Sweep: ctmc.SweepJacobi})
	for s := range auto {
		if auto[s] != ja[s] {
			t.Fatalf("state %d: auto %v != forced jacobi %v", s, auto[s], ja[s])
		}
		if rel := math.Abs(auto[s]-gs[s]) / math.Max(math.Abs(gs[s]), 1e-12); rel > 1e-8 {
			t.Fatalf("state %d: auto %v vs gauss-seidel %v (rel %g)", s, auto[s], gs[s], rel)
		}
	}
}

// TestJacobiConvergenceErrorSweep checks a failing forced-Jacobi solve
// reports its sweep mode (no silent Gauss-Seidel fallback outside auto).
func TestJacobiConvergenceErrorSweep(t *testing.T) {
	c := rpcChain(t)
	_, err := c.SteadyState(ctmc.SolveOptions{Sweep: ctmc.SweepJacobi, MaxIterations: 2})
	if !errors.Is(err, ctmc.ErrNoConvergence) {
		t.Fatalf("want ErrNoConvergence, got %v", err)
	}
	var ce *ctmc.ConvergenceError
	if !errors.As(err, &ce) {
		t.Fatalf("want *ConvergenceError, got %T", err)
	}
	if ce.Sweep != ctmc.SweepJacobi {
		t.Fatalf("Sweep = %v, want jacobi", ce.Sweep)
	}
	if ce.Iterations != 2 {
		t.Fatalf("Iterations = %d, want 2", ce.Iterations)
	}
}
