// Multilevel (IAD) solver tests: the near-completely-decomposable
// two-cluster chain with tunable coupling ε that the scheme exists for,
// convergence where the point sweeps stall, bit-identity across worker
// counts and lane widths, auto-selection, and the fault-tolerance
// surface of the coarse-solve step.
package ctmc_test

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/ctmc"
	"repro/internal/fault"
	"repro/internal/faultinject"
	"repro/internal/lts"
	"repro/internal/rates"
)

// epsClusterLen is the length of each birth-death cluster of the ε chain;
// two clusters make the component large enough for the auto rule's stall
// probe (≥ 64 states).
const epsClusterLen = 40

// epsChain builds the canonical near-completely-decomposable test chain:
// two birth-death clusters with distinct internal rates (so no two states
// are lumpable across clusters), bridged by a single bidirectional edge
// pair whose rate is rate slot 1 — the coupling ε, rebindable per solve
// and per batch lane. With both bridge rates equal the chain is one
// reversible birth-death chain, so its stationary distribution follows
// from detailed balance — independent of ε — while the mass transport
// between the clusters, and with it the sweeps' convergence, slows down
// without bound as ε shrinks.
func epsChain(t *testing.T) *ctmc.CTMC {
	t.Helper()
	n := 2 * epsClusterLen
	l := lts.New(n)
	l.Initial = 0
	fwd := l.LabelIndex("fwd")
	back := l.LabelIndex("back")
	rate := func(j int) (f, b float64) {
		if j < epsClusterLen {
			return 3.0, 2.0
		}
		return 2.6, 1.7
	}
	for j := 0; j+1 < n; j++ {
		if j+1 == epsClusterLen {
			l.AddTransition(j, j+1, fwd, rates.ExpSlot(1, 1e-3))
			l.AddTransition(j+1, j, back, rates.ExpSlot(1, 1e-3))
			continue
		}
		f, _ := rate(j)
		_, b := rate(j + 1)
		l.AddTransition(j, j+1, fwd, rates.ExpRate(f))
		l.AddTransition(j+1, j, back, rates.ExpRate(b))
	}
	c, err := ctmc.Build(l)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// epsAnalytic returns the detailed-balance solution of the ε chain in
// CTMC state order (the chain has no vanishing states, so LTS and CTMC
// indices coincide).
func epsAnalytic() []float64 {
	n := 2 * epsClusterLen
	pi := make([]float64, n)
	pi[0] = 1
	sum := 1.0
	for j := 0; j+1 < n; j++ {
		var ratio float64
		switch {
		case j+1 == epsClusterLen:
			ratio = 1 // bridge: equal rates both ways
		case j+1 < epsClusterLen:
			ratio = 3.0 / 2.0
		default:
			ratio = 2.6 / 1.7
		}
		pi[j+1] = pi[j] * ratio
		sum += pi[j+1]
	}
	for j := range pi {
		pi[j] /= sum
	}
	return pi
}

// TestMultilevelSolvesEpsChain checks the multilevel result against the
// detailed-balance solution at a moderate coupling, and against the
// converged Gauss-Seidel solution, both well inside the golden tolerance.
func TestMultilevelSolvesEpsChain(t *testing.T) {
	c := epsChain(t)
	if err := c.Rebind([]float64{1e-3}); err != nil {
		t.Fatal(err)
	}
	ml, err := c.SteadyState(ctmc.SolveOptions{Sweep: ctmc.SweepMultilevel})
	if err != nil {
		t.Fatalf("multilevel: %v", err)
	}
	// The point sweep needs a looser tolerance: on the stiff geometric
	// profile its relative residual grinds just above 1e-12.
	gs, err := c.SteadyState(ctmc.SolveOptions{Sweep: ctmc.SweepGaussSeidel, Tolerance: 1e-10})
	if err != nil {
		t.Fatalf("gauss-seidel: %v", err)
	}
	want := epsAnalytic()
	for j := range ml {
		if math.Abs(ml[j]-want[j]) > 1e-9*math.Max(want[j], 1e-12) {
			t.Fatalf("state %d: multilevel %v, analytic %v", j, ml[j], want[j])
		}
		if math.Abs(ml[j]-gs[j]) > 1e-5*math.Max(gs[j], 1e-12) {
			t.Fatalf("state %d: multilevel %v, gauss-seidel %v", j, ml[j], gs[j])
		}
	}
}

// TestMultilevelConvergesWhereSweepsStall is the tentpole property: at
// ε = 1e-7 the point sweeps need ~1/ε iterations to move mass between
// the clusters and exhaust a 4000-iteration budget, while the IAD cycle
// solves the inter-cluster mode exactly and converges in a bounded
// handful of cycles.
func TestMultilevelConvergesWhereSweepsStall(t *testing.T) {
	c := epsChain(t)
	if err := c.Rebind([]float64{1e-7}); err != nil {
		t.Fatal(err)
	}
	budget := 4000
	for _, sweep := range []ctmc.Sweep{ctmc.SweepGaussSeidel, ctmc.SweepJacobi} {
		_, err := c.SteadyState(ctmc.SolveOptions{Sweep: sweep, MaxIterations: budget})
		if !errors.Is(err, ctmc.ErrNoConvergence) {
			t.Fatalf("%v on the ε chain: want non-convergence within %d iterations, got %v", sweep, budget, err)
		}
	}
	pi, trace, err := c.SteadyStateTraced(ctmc.SolveOptions{Sweep: ctmc.SweepMultilevel, MaxIterations: budget})
	if err != nil {
		t.Fatalf("multilevel: %v", err)
	}
	base := trace.Attempts[0]
	if base.Sweep != ctmc.SweepMultilevel || base.Cycles < 1 || base.Cycles > 50 {
		t.Fatalf("multilevel attempt = %+v, want bounded cycles", base)
	}
	want := epsAnalytic()
	for j := range pi {
		if math.Abs(pi[j]-want[j]) > 1e-9*math.Max(want[j], 1e-12) {
			t.Fatalf("state %d: multilevel %v, analytic %v", j, pi[j], want[j])
		}
	}
}

// epsPoints is an 8-point coupling grid spanning four decades; every
// point keeps the same detailed-balance solution (the bridge rates stay
// equal) but a different convergence difficulty per lane.
func epsPoints() [][]float64 {
	out := make([][]float64, 0, 8)
	for _, eps := range []float64{1e-3, 5e-4, 1e-4, 5e-5, 1e-5, 5e-6, 1e-6, 1e-7} {
		out = append(out, []float64{eps})
	}
	return out
}

// TestMultilevelBitIdentity pins the determinism contract: the multilevel
// result is bit-identical at workers {1, 8} and across lane widths
// {1, 8} — every batched lane reproduces the solo solve at that lane's
// coupling exactly.
func TestMultilevelBitIdentity(t *testing.T) {
	c := epsChain(t)
	points := epsPoints()
	opts := ctmc.SolveOptions{Sweep: ctmc.SweepMultilevel}

	w1 := solveSequential(t, c, points, func() ctmc.SolveOptions { o := opts; o.Workers = 1; return o }())
	w8 := solveSequential(t, c, points, func() ctmc.SolveOptions { o := opts; o.Workers = 8; return o }())
	for i := range points {
		for j := range w1[i] {
			if w1[i][j] != w8[i][j] {
				t.Fatalf("point %d state %d: workers=1 %v != workers=8 %v", i, j, w1[i][j], w8[i][j])
			}
		}
	}

	for _, lanes := range []int{1, 8} {
		for lo := 0; lo < len(points); lo += lanes {
			hi := lo + lanes
			if hi > len(points) {
				hi = len(points)
			}
			batch, laneErrs, err := c.Clone().SolveBatchLanes(points[lo:hi], ctmc.BatchOptions{Solve: opts})
			if err != nil {
				t.Fatalf("lanes=%d batch [%d:%d): %v", lanes, lo, hi, err)
			}
			for k, le := range laneErrs {
				if le != nil {
					t.Fatalf("lanes=%d lane %d: %v", lanes, lo+k, le)
				}
				for j := range batch[k] {
					if batch[k][j] != w1[lo+k][j] {
						t.Fatalf("lanes=%d point %d state %d: batch %v != solo %v",
							lanes, lo+k, j, batch[k][j], w1[lo+k][j])
					}
				}
			}
		}
	}
}

// TestMultilevelAutoSelection checks the stall probe end to end: an auto
// solve on the tightly coupled ε chain upgrades to multilevel (recorded
// in the trace), produces exactly the explicit multilevel result, and the
// batched auto path routes each lane identically to its solo verdict.
func TestMultilevelAutoSelection(t *testing.T) {
	c := epsChain(t)
	if err := c.Rebind([]float64{1e-7}); err != nil {
		t.Fatal(err)
	}
	pi, trace, err := c.SteadyStateTraced(ctmc.SolveOptions{Sweep: ctmc.SweepAuto, Workers: 1})
	if err != nil {
		t.Fatalf("auto: %v", err)
	}
	if got := trace.Attempts[0].Sweep; got != ctmc.SweepMultilevel {
		t.Fatalf("auto on the stalled ε chain picked %v, want multilevel", got)
	}
	forced, err := c.SteadyState(ctmc.SolveOptions{Sweep: ctmc.SweepMultilevel})
	if err != nil {
		t.Fatal(err)
	}
	for j := range pi {
		if pi[j] != forced[j] {
			t.Fatalf("state %d: auto %v != forced multilevel %v", j, pi[j], forced[j])
		}
	}

	points := epsPoints()
	auto := ctmc.SolveOptions{Sweep: ctmc.SweepAuto}
	solo := solveSequential(t, c, points, auto)
	batch, laneErrs, err := c.Clone().SolveBatchLanes(points, ctmc.BatchOptions{Solve: auto})
	if err != nil {
		t.Fatal(err)
	}
	for k := range points {
		if laneErrs[k] != nil {
			t.Fatalf("auto lane %d: %v", k, laneErrs[k])
		}
		for j := range batch[k] {
			if batch[k][j] != solo[k][j] {
				t.Fatalf("auto point %d state %d: batch %v != solo %v", k, j, batch[k][j], solo[k][j])
			}
		}
	}
}

// TestMultilevelConvergenceError pins the failure report: a hopeless
// budget surfaces a ConvergenceError carrying the multilevel scheme, the
// outer cycle count, and a message that mentions both.
func TestMultilevelConvergenceError(t *testing.T) {
	c := epsChain(t)
	if err := c.Rebind([]float64{1e-7}); err != nil {
		t.Fatal(err)
	}
	_, err := c.SteadyState(ctmc.SolveOptions{Sweep: ctmc.SweepMultilevel, MaxIterations: 9})
	var ce *ctmc.ConvergenceError
	if !errors.As(err, &ce) {
		t.Fatalf("want *ConvergenceError, got %T: %v", err, err)
	}
	// 9 iterations = one full cycle (4 pre + 4 post) plus one orphan sweep.
	if ce.Sweep != ctmc.SweepMultilevel || ce.Iterations != 9 || ce.Cycles != 1 {
		t.Fatalf("ConvergenceError = %+v, want multilevel, 9 iterations, 1 cycle", ce)
	}
	if msg := ce.Error(); !strings.Contains(msg, "multilevel") || !strings.Contains(msg, "cycles") {
		t.Fatalf("message %q should name the scheme and the cycle count", msg)
	}
}

// TestMultilevelCoarsePanicIsolated injects a panic into the coarse-solve
// step and checks it surfaces as a typed worker-panic error naming the
// multilevel pool with the injected fault intact — on the solo path and
// on a batched lane.
func TestMultilevelCoarsePanicIsolated(t *testing.T) {
	c := epsChain(t)
	if err := c.Rebind([]float64{1e-3}); err != nil {
		t.Fatal(err)
	}

	plan := faultinject.NewPlan().Arm(faultinject.SiteCoarseSolve, 1)
	faultinject.Activate(plan)
	_, err := c.SteadyState(ctmc.SolveOptions{Sweep: ctmc.SweepMultilevel})
	faultinject.Deactivate()
	requireWorkerPanic(t, err, "ctmc.multilevel", faultinject.SiteCoarseSolve, 1)

	faultinject.Activate(faultinject.NewPlan().Arm(faultinject.SiteCoarseSolve, 0))
	_, _, err = c.SolveBatchLanes(epsPoints()[:4], ctmc.BatchOptions{
		Solve: ctmc.SolveOptions{Sweep: ctmc.SweepMultilevel},
	})
	faultinject.Deactivate()
	requireWorkerPanic(t, err, "ctmc.multilevel", faultinject.SiteCoarseSolve, 0)
}

// TestMultilevelCancelAtIteration cancels a multilevel solve at an exact
// smoothing iteration and checks the typed error, like the point-sweep
// cancellation test.
func TestMultilevelCancelAtIteration(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	plan := faultinject.NewPlan().Arm(faultinject.SiteSolveIteration, 5).
		OnFire(faultinject.SiteSolveIteration, func(int) { cancel() })
	faultinject.Activate(plan)

	c := epsChain(t)
	_, err := c.SteadyState(ctmc.SolveOptions{Sweep: ctmc.SweepMultilevel, Ctx: ctx})
	faultinject.Deactivate()
	cancel()
	var ce *fault.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("want *fault.CanceledError, got %T: %v", err, err)
	}
	if ce.Phase != "ctmc.steady-state" || ce.Iteration != 5 {
		t.Errorf("canceled at %q iteration %d, want ctmc.steady-state iteration 5", ce.Phase, ce.Iteration)
	}
}

// TestAutoSelectsJacobiSoloOnHugeComponent pins the documented auto rule's
// single-worker clause: a component at JacobiThreshold×16 states resolves
// to Jacobi even at Workers == 1, and identically through ResolveSolve
// (the rule solo and batch share). The thresholds are shrunk so the
// 80-state ε chain plays the "huge" component.
func TestAutoSelectsJacobiSoloOnHugeComponent(t *testing.T) {
	c := epsChain(t)
	if err := c.Rebind([]float64{1e-3}); err != nil {
		t.Fatal(err)
	}
	// 80 >= 5×16: the solo clause fires with one worker.
	r, err := c.ResolveSolve(ctmc.SolveOptions{Workers: 1, JacobiThreshold: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Sweep != ctmc.SweepJacobi {
		t.Errorf("workers=1 threshold=5: resolved %v, want jacobi (solo clause)", r.Sweep)
	}
	// 80 < 6×16 but 80 >= 6 with two workers: the parallel clause fires.
	r, err = c.ResolveSolve(ctmc.SolveOptions{Workers: 2, JacobiThreshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	if r.Sweep != ctmc.SweepJacobi {
		t.Errorf("workers=2 threshold=6: resolved %v, want jacobi (parallel clause)", r.Sweep)
	}
	// 80 < 6×16 at one worker: neither clause fires.
	r, err = c.ResolveSolve(ctmc.SolveOptions{Workers: 1, JacobiThreshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	if r.Sweep != ctmc.SweepGaussSeidel {
		t.Errorf("workers=1 threshold=6: resolved %v, want gauss-seidel", r.Sweep)
	}
}
