//go:build amd64

package ctmc_test

import (
	"testing"

	"repro/internal/ctmc"
)

// TestSweepGS8AVXMatchesScalar pins the vectorized eight-lane
// Gauss-Seidel kernel to the scalar one bit for bit, on both paper
// chains, including mixed per-lane tolerances so lanes deactivate at
// different sweeps and the frozen-lane blend path is exercised. The
// solver-level property tests already compare the batch against solo
// solves; this one isolates the asm/scalar seam so a kernel regression
// is attributed directly.
func TestSweepGS8AVXMatchesScalar(t *testing.T) {
	if !ctmc.HaveAVXForTest() {
		t.Skip("no AVX support on this machine")
	}
	opts := ctmc.BatchOptions{
		Solve:          ctmc.SolveOptions{Sweep: ctmc.SweepGaussSeidel},
		LaneTolerances: []float64{1e-12, 1e-6, 1e-12, 1e-9, 1e-12, 1e-4, 1e-12, 1e-10},
	}
	for _, tc := range []struct {
		name   string
		chain  func(t *testing.T) *ctmc.CTMC
		points func() [][]float64
	}{
		{"rpc", rpcParamChain, rpcPoints},
		{"streaming", streamingParamChain, streamingPoints},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.chain(t)
			points := tc.points()[:8]
			vec, err := c.SolveBatch(points, opts)
			if err != nil {
				t.Fatalf("vectorized SolveBatch: %v", err)
			}
			prev := ctmc.SetAVXForTest(false)
			defer ctmc.SetAVXForTest(prev)
			scalar, err := c.SolveBatch(points, opts)
			if err != nil {
				t.Fatalf("scalar SolveBatch: %v", err)
			}
			requireBitIdentical(t, tc.name, scalar, vec)
		})
	}
}
