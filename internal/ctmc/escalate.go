package ctmc

import "errors"

// Escalation selects the convergence-failure policy of SteadyStateTraced.
type Escalation int

const (
	// EscalateNever surfaces a ConvergenceError as-is (the default).
	EscalateNever Escalation = iota
	// EscalateLadder retries a failed solve through a fixed, cumulative
	// ladder of configuration changes:
	//
	//	rung 1: raise MaxIterations ×4
	//	rung 2: switch the sweep scheme (Gauss-Seidel ↔ Jacobi;
	//	        multilevel falls back to Gauss-Seidel)
	//	rung 3: halve the damping factor Omega
	//	rung 4: drop the warm start (cold restart; skipped when the
	//	        attempt was already cold)
	//	rung 5: switch to the multilevel scheme (skipped when the
	//	        failing configuration already was multilevel), the
	//	        structurally different last resort for slow-mixing
	//	        chains the point smoothers cannot crack
	//
	// Every rung keeps the changes of the rungs below it, each attempt is
	// recorded in the SolveTrace, and the ladder position is a pure
	// function of the solve's input — options and chain — never of
	// scheduling, so an escalated result is reproducible at any worker
	// count and flagged by its trace, never silent. Only a
	// ConvergenceError advances the ladder; cancellation, invariant
	// violations, and structural errors abort it immediately.
	EscalateLadder
)

// escalateIterFactor is the MaxIterations multiplier of the ladder's
// first rung.
const escalateIterFactor = 4

// SolveAttempt records one attempt of an escalated solve.
type SolveAttempt struct {
	// Rung is the ladder position: 0 for the base attempt, 1..5 for the
	// escalation rungs.
	Rung int
	// Action names what changed at this rung: "base" (or
	// "forced-nonconvergence" when fault injection failed the base
	// attempt), "raise-max-iterations", "switch-sweep",
	// "increase-damping", "cold-restart", "multilevel".
	Action string
	// Sweep, MaxIterations, and Omega are the attempt's resolved solver
	// configuration (Sweep is never SweepAuto).
	Sweep         Sweep
	MaxIterations int
	Omega         float64
	// WarmStart reports whether the attempt was seeded from a warm start.
	WarmStart bool
	// Converged reports whether the attempt succeeded.
	Converged bool
	// Iterations and Residual are the attempt's final iteration count and
	// residual — the failure point of a failed attempt, the convergence
	// point of a successful one.
	Iterations int
	Residual   float64
	// Cycles is the attempt's outer multilevel cycle count (zero for the
	// point-sweep schemes, which have no outer loop).
	Cycles int
}

// SolveTrace is the attempt history of an escalated solve, attached to
// sweep reports so escalated points are flagged and reproducible.
type SolveTrace struct {
	// Attempts lists every attempt in rung order; Attempts[0] is the base
	// attempt.
	Attempts []SolveAttempt
}

// Escalated reports whether the solve needed the ladder (any attempt
// beyond the base one).
func (t *SolveTrace) Escalated() bool { return t != nil && len(t.Attempts) > 1 }

// ResolveSolve reports the configuration a SteadyState call with these
// options actually runs: defaults filled, the SweepAuto rule applied
// against the chain's recurrent component, and the damping factor
// resolved to the selected scheme's default when unset. The escalation
// ladder starts from this resolved configuration. Note that in SweepAuto
// mode the resolved scheme depends on opts.Workers; callers comparing
// traces across worker counts must pin an explicit sweep mode. The auto
// rule's stall probe is not run here — an auto solve that upgrades to
// multilevel reports the upgrade through the trace's attempt record,
// which always carries the scheme that actually ran.
func (c *CTMC) ResolveSolve(opts SolveOptions) (SolveOptions, error) {
	opts = solveDefaults(opts)
	plan, err := c.ensurePlan()
	if err != nil {
		return opts, err
	}
	opts.Sweep = resolveSweep(opts, len(plan.target))
	if opts.Omega == 0 {
		if opts.Sweep == SweepJacobi {
			opts.Omega = jacobiOmega
		} else {
			opts.Omega = 1
		}
	}
	return opts, nil
}

// attemptRecord summarizes one solve outcome for the trace. On success
// the statistics come from the solver's own report; on failure from the
// convergence error. Either way the recorded scheme is the one that
// actually ran — in auto mode that may be the Jacobi→Gauss-Seidel
// fallback or the stall probe's multilevel upgrade, not the statically
// resolved scheme.
func attemptRecord(rung int, action string, cfg SolveOptions, st solveStats, err error) SolveAttempt {
	a := SolveAttempt{
		Rung:          rung,
		Action:        action,
		Sweep:         cfg.Sweep,
		MaxIterations: cfg.MaxIterations,
		Omega:         cfg.Omega,
		WarmStart:     len(cfg.WarmStart) > 0,
		Converged:     err == nil,
	}
	if err == nil {
		a.Sweep = st.Sweep
		a.Iterations = st.Iterations
		a.Residual = st.Residual
		a.Cycles = st.Cycles
		return a
	}
	var ce *ConvergenceError
	if errors.As(err, &ce) {
		a.Sweep = ce.Sweep
		a.Iterations = ce.Iterations
		a.Residual = ce.Residual
		a.Cycles = ce.Cycles
	}
	return a
}

// SteadyStateTraced is SteadyState with an attempt trace and, when
// opts.Escalation is EscalateLadder, the deterministic convergence
// escalation described there. On success the trace's last attempt is the
// converged one; Escalated() reports whether the base configuration
// sufficed. On failure the trace records every exhausted rung and the
// returned error is the last rung's.
func (c *CTMC) SteadyStateTraced(opts SolveOptions) ([]float64, *SolveTrace, error) {
	resolved, err := c.ResolveSolve(opts)
	if err != nil {
		return nil, nil, err
	}
	pi, st, err := c.steadyStateStats(opts)
	trace := &SolveTrace{Attempts: []SolveAttempt{attemptRecord(0, "base", resolved, st, err)}}
	if err == nil {
		return pi, trace, nil
	}
	if opts.Escalation != EscalateLadder || !errors.Is(err, ErrNoConvergence) {
		return nil, trace, err
	}
	return c.EscalateFrom(opts, trace)
}

// EscalateFrom runs the escalation ladder for options whose base attempt
// already failed with a ConvergenceError, appending every rung to trace
// (which may be nil). It exists separately from SteadyStateTraced so the
// sweep's batched path can escalate exactly the lanes that failed: a
// batched lane's failure is bit-identical to the solo base attempt's, so
// starting the ladder from rung 1 reproduces the per-point escalation
// without re-running the base solve.
func (c *CTMC) EscalateFrom(opts SolveOptions, trace *SolveTrace) ([]float64, *SolveTrace, error) {
	if trace == nil {
		trace = &SolveTrace{}
	}
	cur, err := c.ResolveSolve(opts)
	if err != nil {
		return nil, trace, err
	}
	explicitOmega := opts.Omega != 0
	rungs := []struct {
		action string
		apply  func(o *SolveOptions) bool
	}{
		{"raise-max-iterations", func(o *SolveOptions) bool {
			o.MaxIterations *= escalateIterFactor
			return true
		}},
		{"switch-sweep", func(o *SolveOptions) bool {
			if o.Sweep == SweepJacobi {
				o.Sweep = SweepGaussSeidel
			} else {
				// Gauss-Seidel and multilevel both switch to Jacobi — for a
				// failed multilevel solve the point schemes are the
				// structurally different thing to try, and rung 5 never
				// repeats the scheme that already failed.
				o.Sweep = SweepJacobi
			}
			if !explicitOmega {
				// Re-resolve the damping to the new scheme's default:
				// undamped Jacobi oscillates on periodic chains, and damped
				// Gauss-Seidel converges slower for no benefit.
				if o.Sweep == SweepJacobi {
					o.Omega = jacobiOmega
				} else {
					o.Omega = 1
				}
			}
			return true
		}},
		{"increase-damping", func(o *SolveOptions) bool {
			o.Omega /= 2
			return true
		}},
		{"cold-restart", func(o *SolveOptions) bool {
			if len(o.WarmStart) == 0 {
				return false // already cold; the rung would repeat rung 3
			}
			o.WarmStart = nil
			return true
		}},
		{"multilevel", func(o *SolveOptions) bool {
			if opts.Sweep == SweepMultilevel {
				return false // the base scheme already was multilevel
			}
			o.Sweep = SweepMultilevel
			if !explicitOmega {
				// The rungs below may have damped the smoother for Jacobi's
				// benefit; the multilevel cycle smooths with plain
				// Gauss-Seidel.
				o.Omega = 1
			}
			return true
		}},
	}
	var lastErr error = &ConvergenceError{Sweep: cur.Sweep, Tolerance: cur.Tolerance, Point: -1}
	for r, rung := range rungs {
		if !rung.apply(&cur) {
			continue
		}
		pi, st, err := c.steadyStateStats(cur)
		trace.Attempts = append(trace.Attempts, attemptRecord(r+1, rung.action, cur, st, err))
		if err == nil {
			return pi, trace, nil
		}
		if !errors.Is(err, ErrNoConvergence) {
			// Cancellation, invariant violations, and structural failures
			// are not convergence problems; the ladder must not mask them.
			return nil, trace, err
		}
		lastErr = err
	}
	return nil, trace, lastErr
}
