// Package ctmc extracts a continuous-time Markov chain from a rated
// labelled transition system and solves it.
//
// States with enabled immediate actions are *vanishing*: by maximal
// progress the immediate actions pre-empt the exponential ones, the
// highest priority level wins, and weights resolve the remaining choice
// probabilistically. Vanishing states are eliminated by propagating their
// absorption distributions (cycles of immediate actions — timeless traps —
// are rejected). The result is a CTMC over the tangible states, together
// with enough bookkeeping to compute the steady-state frequency of any
// labelled transition, including immediate ones, for reward-based
// measures.
package ctmc

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/lts"
	"repro/internal/rates"
)

// Entry is one rate entry of the generator matrix.
type Entry struct {
	// Col is the destination tangible-state index.
	Col int
	// Rate is the transition rate.
	Rate float64
}

// branch is an immediate branch of a vanishing state.
type branch struct {
	dst      int // LTS state index
	prob     float64
	ltsTrans int // index into the LTS transition slice
}

// expEdge is an exponential transition of a tangible state.
type expEdge struct {
	src, dst int // LTS state indices
	rate     float64
	ltsTrans int
}

// CTMC is the extracted chain.
type CTMC struct {
	// N is the number of tangible states.
	N int
	// Rows holds the off-diagonal generator entries per tangible state.
	Rows [][]Entry
	// Exit is the total outflow rate per tangible state.
	Exit []float64
	// Initial is the initial probability distribution over tangible
	// states (the vanishing initial state, if any, is resolved).
	Initial []float64

	// TangibleOf maps CTMC indices to LTS state indices.
	TangibleOf []int
	// ctmcIndex maps LTS state indices to CTMC indices (-1 = vanishing).
	ctmcIndex []int

	l *lts.LTS
	// vanishing bookkeeping for throughput computations.
	vanishing []int      // LTS indices of vanishing states, topological order
	branches  [][]branch // per vanishing state (indexed by order position)
	vanPos    []int      // LTS state -> position in vanishing, or -1
	expEdges  []expEdge

	// Rate-parametric bookkeeping, populated only when the source LTS
	// carries rate slots (lts.NumRateSlots > 0). Every generator entry's
	// rate is the ordered sum of its contribution terms; the terms are
	// flattened CSR-style across entries in row-major, column-ascending
	// order (the same order Rows stores entries). Rebind re-sums the term
	// lists with new slot values — the identical sequence of float
	// additions Build performed — so a rebound chain is bit-identical to a
	// fresh build at the same rates.
	numSlots  int
	termStart []int32    // len = total entries + 1
	terms     []rateTerm // flattened contribution terms
	expSlots  []int32    // per expEdge: slot of its rate (0 = constant)

	// Cached Poisson weight vectors for uniformization, keyed by (q·t,
	// epsilon); see TransientFrom. Guarded by poissonMu.
	poissonMu sync.Mutex
	poisson   map[poissonKey][]float64

	// plan caches the structural solve analysis (reachable bottom
	// component and its incoming-CSR skeleton). Rate-only rebinds cannot
	// change it, so Clone shares the pointer and the analysis runs once
	// per built structure however many clones a sweep solves. See
	// solvePlan and InvalidatePlan.
	plan *solvePlan
}

// rateTerm is one contribution to a generator entry. A slot-0 term is a
// constant: its coeff is the full contribution (λ, or λ·p through a
// vanishing state). A slot-k term contributes values[k-1] · coeff, where
// coeff is the absorption probability the slotted rate is multiplied by
// (1 for a direct tangible-to-tangible edge).
type rateTerm struct {
	slot  int32
	coeff float64
}

// Common construction errors.
var (
	// ErrTimelessTrap reports a cycle of immediate transitions.
	ErrTimelessTrap = errors.New("ctmc: timeless trap (cycle of immediate transitions)")
	// ErrNotRated reports a reachable transition without an active rate in
	// a tangible state.
	ErrNotRated = errors.New("ctmc: tangible state has a passive or untimed transition; the model is not fully rated")
	// ErrMultipleBSCC reports a reducible chain with several reachable
	// bottom components.
	ErrMultipleBSCC = errors.New("ctmc: multiple reachable bottom strongly connected components")
	// ErrStructuralRebind reports a Rebind that would change the chain's
	// structure rather than its rate values.
	ErrStructuralRebind = errors.New("ctmc: rebind would change the chain structure")
)

// RebindError details why a Rebind was rejected. It wraps
// ErrStructuralRebind when the requested values would alter the chain's
// structure (a non-positive or non-finite rate removes an edge or changes
// the tangible/vanishing classification, which a rate-only rewrite cannot
// express).
type RebindError struct {
	// Slot is the 1-based offending slot, or 0 for a length mismatch.
	Slot int
	// Value is the offending value (meaningful when Slot > 0).
	Value float64
	// Want and Got are the expected and supplied value counts.
	Want, Got int
}

// Error implements error.
func (e *RebindError) Error() string {
	if e.Slot == 0 {
		return fmt.Sprintf("ctmc: rebind expects %d slot values, got %d", e.Want, e.Got)
	}
	return fmt.Sprintf("ctmc: rebind slot %d to %v: %v", e.Slot, e.Value, ErrStructuralRebind)
}

// Unwrap exposes ErrStructuralRebind for errors.Is when the failure is a
// structure-changing value rather than a length mismatch.
func (e *RebindError) Unwrap() error {
	if e.Slot == 0 {
		return nil
	}
	return ErrStructuralRebind
}

// Build extracts the CTMC from a rated LTS.
func Build(l *lts.LTS) (*CTMC, error) {
	n := l.NumStates
	c := &CTMC{l: l, plan: &solvePlan{}}

	// Classify states.
	isVanishing := make([]bool, n)
	for s := 0; s < n; s++ {
		sp := l.Out(s)
		for k := 0; k < sp.Len(); k++ {
			if sp.Rate[k].Kind == rates.Immediate {
				isVanishing[s] = true
				break
			}
		}
	}

	// Immediate branch structure per vanishing state.
	c.vanPos = make([]int, n)
	for i := range c.vanPos {
		c.vanPos[i] = -1
	}
	branchesOf := make([][]branch, n)
	numVanishing := 0
	for s := 0; s < n; s++ {
		if !isVanishing[s] {
			continue
		}
		numVanishing++
		sp := l.Out(s)
		maxPrio := math.MinInt32
		for k := 0; k < sp.Len(); k++ {
			if r := sp.Rate[k]; r.Kind == rates.Immediate && r.Priority > maxPrio {
				maxPrio = r.Priority
			}
		}
		var brs []branch
		total := 0.0
		base := l.EdgeBase(s)
		for k := 0; k < sp.Len(); k++ {
			if r := sp.Rate[k]; r.Kind == rates.Immediate && r.Priority == maxPrio {
				brs = append(brs, branch{dst: int(sp.Dst[k]), prob: r.Weight, ltsTrans: base + k})
				total += r.Weight
			}
		}
		for i := range brs {
			brs[i].prob /= total
		}
		branchesOf[s] = brs
	}

	// Topological order of the vanishing subgraph (Kahn); a leftover node
	// means a timeless trap. All scans run in ascending state order so the
	// elimination order — and with it every floating-point accumulation
	// downstream — is the same on every run.
	indeg := make([]int, n)
	for s := 0; s < n; s++ {
		for _, b := range branchesOf[s] {
			if isVanishing[b.dst] {
				indeg[b.dst]++
			}
		}
	}
	var queue []int
	for s := 0; s < n; s++ {
		if isVanishing[s] && indeg[s] == 0 {
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		s := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		c.vanPos[s] = len(c.vanishing)
		c.vanishing = append(c.vanishing, s)
		c.branches = append(c.branches, branchesOf[s])
		for _, b := range branchesOf[s] {
			if isVanishing[b.dst] {
				indeg[b.dst]--
				if indeg[b.dst] == 0 {
					queue = append(queue, b.dst)
				}
			}
		}
	}
	if len(c.vanishing) != numVanishing {
		return nil, ErrTimelessTrap
	}

	// Absorption distributions of vanishing states over tangible states,
	// in reverse topological order. Each distribution is kept as a slice
	// sorted by target state, so later accumulations visit targets in a
	// canonical order (map iteration would reorder the float sums from run
	// to run and perturb the last bits of the steady-state solution).
	absorb := make([][]absorbEntry, len(c.vanishing))
	for i := len(c.vanishing) - 1; i >= 0; i-- {
		dist := make(map[int]float64, 4)
		for _, b := range c.branches[i] {
			if isVanishing[b.dst] {
				for _, ae := range absorb[c.vanPos[b.dst]] {
					dist[ae.tgt] += b.prob * ae.prob
				}
			} else {
				dist[b.dst] += b.prob
			}
		}
		absorb[i] = sortedAbsorb(dist)
	}

	// Index tangible states.
	c.ctmcIndex = make([]int, n)
	for s := 0; s < n; s++ {
		if isVanishing[s] {
			c.ctmcIndex[s] = -1
			continue
		}
		c.ctmcIndex[s] = len(c.TangibleOf)
		c.TangibleOf = append(c.TangibleOf, s)
	}
	c.N = len(c.TangibleOf)
	if c.N == 0 {
		return nil, ErrTimelessTrap
	}

	// Generator rows. When the LTS carries rate slots, the per-entry
	// contribution terms are recorded alongside the accumulated values, in
	// the exact accumulation order, so Rebind can replay the identical
	// sequence of float additions with new slot values.
	c.numSlots = l.NumRateSlots()
	parametric := c.numSlots > 0
	var termsOf map[int][]rateTerm // per destination column, current state
	if parametric {
		c.termStart = append(c.termStart, 0)
	}
	c.Rows = make([][]Entry, c.N)
	c.Exit = make([]float64, c.N)
	for ci, s := range c.TangibleOf {
		acc := make(map[int]float64, 4)
		if parametric {
			termsOf = make(map[int][]rateTerm, 4)
		}
		sp := l.Out(s)
		base := l.EdgeBase(s)
		for k := 0; k < sp.Len(); k++ {
			r := sp.Rate[k]
			dst := int(sp.Dst[k])
			switch r.Kind {
			case rates.Exp:
				c.expEdges = append(c.expEdges, expEdge{
					src: s, dst: dst, rate: r.Lambda, ltsTrans: base + k,
				})
				if parametric {
					c.expSlots = append(c.expSlots, int32(r.Slot))
				}
				if isVanishing[dst] {
					for _, ae := range absorb[c.vanPos[dst]] {
						col := c.ctmcIndex[ae.tgt]
						acc[col] += r.Lambda * ae.prob
						if parametric {
							termsOf[col] = append(termsOf[col], makeTerm(r, ae.prob))
						}
					}
				} else {
					col := c.ctmcIndex[dst]
					acc[col] += r.Lambda
					if parametric {
						termsOf[col] = append(termsOf[col], makeTerm(r, 1))
					}
				}
			case rates.Immediate:
				// Impossible: s is tangible.
			default:
				return nil, fmt.Errorf("%w (state %d, label %q, rate %v)",
					ErrNotRated, s, l.LabelName(int(sp.Label[k])), r)
			}
		}
		row := make([]Entry, 0, len(acc))
		for col, rate := range acc {
			if col == ci {
				continue // self-loops do not affect the steady state
			}
			row = append(row, Entry{Col: col, Rate: rate})
		}
		// Canonical column order: the solver and the transient iteration sum
		// row entries in sequence, so a stable order keeps results
		// reproducible bit for bit (and the ascending access pattern is
		// friendlier to the flattened Gauss-Seidel sweeps).
		sort.Slice(row, func(a, b int) bool { return row[a].Col < row[b].Col })
		for _, e := range row {
			c.Exit[ci] += e.Rate
		}
		c.Rows[ci] = row
		if parametric {
			// Flatten the kept entries' term lists in the row's final
			// (column-ascending) order. Self-loop terms are dropped with
			// their entries.
			for _, e := range row {
				c.terms = append(c.terms, termsOf[e.Col]...)
				c.termStart = append(c.termStart, int32(len(c.terms)))
			}
		}
	}

	// Initial distribution.
	c.Initial = make([]float64, c.N)
	if isVanishing[l.Initial] {
		for _, ae := range absorb[c.vanPos[l.Initial]] {
			c.Initial[c.ctmcIndex[ae.tgt]] += ae.prob
		}
	} else {
		c.Initial[c.ctmcIndex[l.Initial]] = 1
	}
	return c, nil
}

// absorbEntry is one target of an absorption distribution.
type absorbEntry struct {
	tgt  int // tangible LTS state
	prob float64
}

// sortedAbsorb converts an absorption map to a slice sorted by target.
func sortedAbsorb(dist map[int]float64) []absorbEntry {
	out := make([]absorbEntry, 0, len(dist))
	for t, p := range dist {
		out = append(out, absorbEntry{tgt: t, prob: p})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].tgt < out[b].tgt })
	return out
}

// makeTerm records one generator-entry contribution: an exponential rate
// r reaching the entry's column with absorption probability prob (1 for a
// direct tangible-to-tangible edge). Slot-0 terms precompute the full
// constant contribution; slotted terms keep the probability as the
// coefficient of the future slot value. Multiplying by a probability of
// exactly 1 is exact in IEEE arithmetic, so both forms replay Build's
// accumulation bit for bit.
func makeTerm(r rates.Rate, prob float64) rateTerm {
	if r.Slot > 0 {
		return rateTerm{slot: int32(r.Slot), coeff: prob}
	}
	return rateTerm{coeff: r.Lambda * prob}
}

// NumRateSlots returns the number of symbolic rate slots the chain was
// built with (0 for a chain extracted from a slot-free LTS, which cannot
// be rebound).
func (c *CTMC) NumRateSlots() int { return c.numSlots }

// Rebind rewrites every generator entry, exit rate, and exponential-edge
// rate for the given slot values (values[k-1] is the new rate of slot k)
// in O(edges), without touching the chain's structure: states, entry
// columns, vanishing elimination, and branching probabilities are all
// preserved. Each entry is recomputed by summing its recorded contribution
// terms in the order Build accumulated them, so a rebound chain is
// bit-identical to a fresh Build of the same model elaborated at the new
// rates.
//
// Every value must be positive and finite — a zero, negative, or infinite
// rate would remove an edge or change the tangible/vanishing
// classification, which is a structural change Rebind cannot express; such
// requests fail with a *RebindError wrapping ErrStructuralRebind, and a
// length mismatch fails with a *RebindError, in both cases leaving the
// chain untouched.
func (c *CTMC) Rebind(values []float64) error {
	if len(values) != c.numSlots {
		return &RebindError{Want: c.numSlots, Got: len(values)}
	}
	for i, v := range values {
		if !(v > 0) || math.IsInf(v, 0) {
			return &RebindError{Slot: i + 1, Value: v}
		}
	}
	if c.numSlots == 0 {
		return nil // slot-free chain, empty rebind: nothing to rewrite
	}
	ei := 0
	for ci := range c.Rows {
		row := c.Rows[ci]
		for j := range row {
			lo, hi := c.termStart[ei], c.termStart[ei+1]
			sum := 0.0
			for k := lo; k < hi; k++ {
				t := c.terms[k]
				if t.slot > 0 {
					sum += values[t.slot-1] * t.coeff
				} else {
					sum += t.coeff
				}
			}
			row[j].Rate = sum
			ei++
		}
		exit := 0.0
		for _, e := range row {
			exit += e.Rate
		}
		c.Exit[ci] = exit
	}
	for i := range c.expEdges {
		if s := c.expSlots[i]; s > 0 {
			c.expEdges[i].rate = values[s-1]
		}
	}
	// The uniformization weight cache keys on q·t, which is derived from
	// the (now rewritten) exit rates; stale entries for other rate values
	// would only waste memory, and a changed q invalidates them via the
	// key, but drop them anyway so long sweeps do not accumulate vectors.
	c.poissonMu.Lock()
	c.poisson = nil
	c.poissonMu.Unlock()
	if EnableDebugChecks {
		if err := c.debugCheckPlan(); err != nil {
			return &InvariantError{Err: err}
		}
	}
	return nil
}

// EnableDebugChecks turns on expensive internal consistency assertions —
// currently the post-Rebind check that the cached structural solve plan
// still matches a from-scratch analysis (a rate-only rebind must preserve
// reachability and SCC structure; a violation surfaces as an
// *InvariantError, since it means the rebind validation let a structural
// change through). The property tests enable it; production callers leave
// it off.
var EnableDebugChecks = false

// InvariantError reports a violated internal consistency invariant — a
// bug in this package, not a property of the input. The fault-tolerance
// layer treats it accordingly: the escalation ladder never retries it,
// sweeps abort on it, and it is reported as-is rather than wrapped in a
// retryable error.
type InvariantError struct {
	// Err describes the violated invariant.
	Err error
}

// Error implements the error interface.
func (e *InvariantError) Error() string {
	return fmt.Sprintf("ctmc: internal invariant violated: %v", e.Err)
}

// Unwrap exposes the underlying description to errors.Is/As.
func (e *InvariantError) Unwrap() error { return e.Err }

// Clone returns a chain that shares all immutable structure with c (the
// LTS, vanishing bookkeeping, tangible indexing, contribution terms) but
// owns its mutable rate state — generator rows, exit rates, exponential
// edges, and the uniformization cache — so concurrent sweep workers can
// Rebind and solve private clones of one built chain.
func (c *CTMC) Clone() *CTMC {
	out := &CTMC{
		N:          c.N,
		Rows:       make([][]Entry, len(c.Rows)),
		Exit:       append([]float64(nil), c.Exit...),
		Initial:    c.Initial,
		TangibleOf: c.TangibleOf,
		ctmcIndex:  c.ctmcIndex,
		l:          c.l,
		vanishing:  c.vanishing,
		branches:   c.branches,
		vanPos:     c.vanPos,
		expEdges:   append([]expEdge(nil), c.expEdges...),
		numSlots:   c.numSlots,
		termStart:  c.termStart,
		terms:      c.terms,
		expSlots:   c.expSlots,
		plan:       c.plan,
	}
	for i, row := range c.Rows {
		out.Rows[i] = append([]Entry(nil), row...)
	}
	return out
}

// LTSStateOf returns the LTS state index of tangible state ci.
func (c *CTMC) LTSStateOf(ci int) int { return c.TangibleOf[ci] }

// CTMCIndexOf returns the tangible index of an LTS state, or -1 when the
// state is vanishing.
func (c *CTMC) CTMCIndexOf(ltsState int) int { return c.ctmcIndex[ltsState] }
