// Package ctmc extracts a continuous-time Markov chain from a rated
// labelled transition system and solves it.
//
// States with enabled immediate actions are *vanishing*: by maximal
// progress the immediate actions pre-empt the exponential ones, the
// highest priority level wins, and weights resolve the remaining choice
// probabilistically. Vanishing states are eliminated by propagating their
// absorption distributions (cycles of immediate actions — timeless traps —
// are rejected). The result is a CTMC over the tangible states, together
// with enough bookkeeping to compute the steady-state frequency of any
// labelled transition, including immediate ones, for reward-based
// measures.
package ctmc

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/lts"
	"repro/internal/rates"
)

// Entry is one rate entry of the generator matrix.
type Entry struct {
	// Col is the destination tangible-state index.
	Col int
	// Rate is the transition rate.
	Rate float64
}

// branch is an immediate branch of a vanishing state.
type branch struct {
	dst      int // LTS state index
	prob     float64
	ltsTrans int // index into the LTS transition slice
}

// expEdge is an exponential transition of a tangible state.
type expEdge struct {
	src, dst int // LTS state indices
	rate     float64
	ltsTrans int
}

// CTMC is the extracted chain.
type CTMC struct {
	// N is the number of tangible states.
	N int
	// Rows holds the off-diagonal generator entries per tangible state.
	Rows [][]Entry
	// Exit is the total outflow rate per tangible state.
	Exit []float64
	// Initial is the initial probability distribution over tangible
	// states (the vanishing initial state, if any, is resolved).
	Initial []float64

	// TangibleOf maps CTMC indices to LTS state indices.
	TangibleOf []int
	// ctmcIndex maps LTS state indices to CTMC indices (-1 = vanishing).
	ctmcIndex []int

	l *lts.LTS
	// vanishing bookkeeping for throughput computations.
	vanishing []int      // LTS indices of vanishing states, topological order
	branches  [][]branch // per vanishing state (indexed by order position)
	vanPos    []int      // LTS state -> position in vanishing, or -1
	expEdges  []expEdge
}

// Common construction errors.
var (
	// ErrTimelessTrap reports a cycle of immediate transitions.
	ErrTimelessTrap = errors.New("ctmc: timeless trap (cycle of immediate transitions)")
	// ErrNotRated reports a reachable transition without an active rate in
	// a tangible state.
	ErrNotRated = errors.New("ctmc: tangible state has a passive or untimed transition; the model is not fully rated")
	// ErrMultipleBSCC reports a reducible chain with several reachable
	// bottom components.
	ErrMultipleBSCC = errors.New("ctmc: multiple reachable bottom strongly connected components")
)

// Build extracts the CTMC from a rated LTS.
func Build(l *lts.LTS) (*CTMC, error) {
	n := l.NumStates
	c := &CTMC{l: l}

	// Classify states.
	isVanishing := make([]bool, n)
	for s := 0; s < n; s++ {
		sp := l.Out(s)
		for k := 0; k < sp.Len(); k++ {
			if sp.Rate[k].Kind == rates.Immediate {
				isVanishing[s] = true
				break
			}
		}
	}

	// Immediate branch structure per vanishing state.
	c.vanPos = make([]int, n)
	for i := range c.vanPos {
		c.vanPos[i] = -1
	}
	branchesOf := make([][]branch, n)
	numVanishing := 0
	for s := 0; s < n; s++ {
		if !isVanishing[s] {
			continue
		}
		numVanishing++
		sp := l.Out(s)
		maxPrio := math.MinInt32
		for k := 0; k < sp.Len(); k++ {
			if r := sp.Rate[k]; r.Kind == rates.Immediate && r.Priority > maxPrio {
				maxPrio = r.Priority
			}
		}
		var brs []branch
		total := 0.0
		base := l.EdgeBase(s)
		for k := 0; k < sp.Len(); k++ {
			if r := sp.Rate[k]; r.Kind == rates.Immediate && r.Priority == maxPrio {
				brs = append(brs, branch{dst: int(sp.Dst[k]), prob: r.Weight, ltsTrans: base + k})
				total += r.Weight
			}
		}
		for i := range brs {
			brs[i].prob /= total
		}
		branchesOf[s] = brs
	}

	// Topological order of the vanishing subgraph (Kahn); a leftover node
	// means a timeless trap. All scans run in ascending state order so the
	// elimination order — and with it every floating-point accumulation
	// downstream — is the same on every run.
	indeg := make([]int, n)
	for s := 0; s < n; s++ {
		for _, b := range branchesOf[s] {
			if isVanishing[b.dst] {
				indeg[b.dst]++
			}
		}
	}
	var queue []int
	for s := 0; s < n; s++ {
		if isVanishing[s] && indeg[s] == 0 {
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		s := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		c.vanPos[s] = len(c.vanishing)
		c.vanishing = append(c.vanishing, s)
		c.branches = append(c.branches, branchesOf[s])
		for _, b := range branchesOf[s] {
			if isVanishing[b.dst] {
				indeg[b.dst]--
				if indeg[b.dst] == 0 {
					queue = append(queue, b.dst)
				}
			}
		}
	}
	if len(c.vanishing) != numVanishing {
		return nil, ErrTimelessTrap
	}

	// Absorption distributions of vanishing states over tangible states,
	// in reverse topological order. Each distribution is kept as a slice
	// sorted by target state, so later accumulations visit targets in a
	// canonical order (map iteration would reorder the float sums from run
	// to run and perturb the last bits of the steady-state solution).
	absorb := make([][]absorbEntry, len(c.vanishing))
	for i := len(c.vanishing) - 1; i >= 0; i-- {
		dist := make(map[int]float64, 4)
		for _, b := range c.branches[i] {
			if isVanishing[b.dst] {
				for _, ae := range absorb[c.vanPos[b.dst]] {
					dist[ae.tgt] += b.prob * ae.prob
				}
			} else {
				dist[b.dst] += b.prob
			}
		}
		absorb[i] = sortedAbsorb(dist)
	}

	// Index tangible states.
	c.ctmcIndex = make([]int, n)
	for s := 0; s < n; s++ {
		if isVanishing[s] {
			c.ctmcIndex[s] = -1
			continue
		}
		c.ctmcIndex[s] = len(c.TangibleOf)
		c.TangibleOf = append(c.TangibleOf, s)
	}
	c.N = len(c.TangibleOf)
	if c.N == 0 {
		return nil, ErrTimelessTrap
	}

	// Generator rows.
	c.Rows = make([][]Entry, c.N)
	c.Exit = make([]float64, c.N)
	for ci, s := range c.TangibleOf {
		acc := make(map[int]float64, 4)
		sp := l.Out(s)
		base := l.EdgeBase(s)
		for k := 0; k < sp.Len(); k++ {
			r := sp.Rate[k]
			dst := int(sp.Dst[k])
			switch r.Kind {
			case rates.Exp:
				c.expEdges = append(c.expEdges, expEdge{
					src: s, dst: dst, rate: r.Lambda, ltsTrans: base + k,
				})
				if isVanishing[dst] {
					for _, ae := range absorb[c.vanPos[dst]] {
						acc[c.ctmcIndex[ae.tgt]] += r.Lambda * ae.prob
					}
				} else {
					acc[c.ctmcIndex[dst]] += r.Lambda
				}
			case rates.Immediate:
				// Impossible: s is tangible.
			default:
				return nil, fmt.Errorf("%w (state %d, label %q, rate %v)",
					ErrNotRated, s, l.LabelName(int(sp.Label[k])), r)
			}
		}
		row := make([]Entry, 0, len(acc))
		for col, rate := range acc {
			if col == ci {
				continue // self-loops do not affect the steady state
			}
			row = append(row, Entry{Col: col, Rate: rate})
		}
		// Canonical column order: the solver and the transient iteration sum
		// row entries in sequence, so a stable order keeps results
		// reproducible bit for bit (and the ascending access pattern is
		// friendlier to the flattened Gauss-Seidel sweeps).
		sort.Slice(row, func(a, b int) bool { return row[a].Col < row[b].Col })
		for _, e := range row {
			c.Exit[ci] += e.Rate
		}
		c.Rows[ci] = row
	}

	// Initial distribution.
	c.Initial = make([]float64, c.N)
	if isVanishing[l.Initial] {
		for _, ae := range absorb[c.vanPos[l.Initial]] {
			c.Initial[c.ctmcIndex[ae.tgt]] += ae.prob
		}
	} else {
		c.Initial[c.ctmcIndex[l.Initial]] = 1
	}
	return c, nil
}

// absorbEntry is one target of an absorption distribution.
type absorbEntry struct {
	tgt  int // tangible LTS state
	prob float64
}

// sortedAbsorb converts an absorption map to a slice sorted by target.
func sortedAbsorb(dist map[int]float64) []absorbEntry {
	out := make([]absorbEntry, 0, len(dist))
	for t, p := range dist {
		out = append(out, absorbEntry{tgt: t, prob: p})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].tgt < out[b].tgt })
	return out
}

// LTSStateOf returns the LTS state index of tangible state ci.
func (c *CTMC) LTSStateOf(ci int) int { return c.TangibleOf[ci] }

// CTMCIndexOf returns the tangible index of an LTS state, or -1 when the
// state is vanishing.
func (c *CTMC) CTMCIndexOf(ltsState int) int { return c.ctmcIndex[ltsState] }
