package ctmc

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/fault"
	"repro/internal/faultinject"
)

// BatchOptions tunes SolveBatch.
type BatchOptions struct {
	// Solve is the shared solver configuration: tolerance, iteration
	// bound, sweep selection, Jacobi workers, and warm start are resolved
	// exactly as SteadyState resolves them, and the one WarmStart vector
	// seeds every lane (the sweep-anchor rule: a seed that is a pure
	// function of the input keeps results independent of lane packing).
	Solve SolveOptions
	// LaneTolerances optionally overrides Solve.Tolerance per lane (one
	// positive value per point, or nil). Lanes then converge — and
	// deactivate — at different sweeps, which the property tests use to
	// pin the deactivation determinism.
	LaneTolerances []float64
}

// BatchPointError attributes a SolveBatch failure to one point of the
// batch. Point indexes the points slice passed to SolveBatch;
// core.Phase2Sweep translates it to the global sweep-point index. When
// several lanes fail, the lowest lane wins, matching the error a
// sequential per-point loop over the same points would hit first.
type BatchPointError struct {
	Point int
	Err   error
}

// Error implements the error interface.
func (e *BatchPointError) Error() string {
	return fmt.Sprintf("ctmc: batch point %d: %v", e.Point, e.Err)
}

// Unwrap exposes the per-lane failure (e.g. a *ConvergenceError or a
// *RebindError) to errors.Is/As.
func (e *BatchPointError) Unwrap() error { return e.Err }

// SolveBatch computes the steady-state distribution of the chain at K
// rate-slot assignments in one pass: the structural skeleton (bottom
// component, incoming CSR indices) is shared across all points, the K
// per-point rate vectors are gathered lane-interleaved from the chain's
// recorded contribution terms, and one sweep kernel iterates all lanes
// simultaneously — each pass over the CSR indices feeds every lane, so the
// index traffic and loop overhead of K solo solves are paid once.
//
// out[k] is bit-identical to the sequential chain
//
//	clone := c.Clone(); clone.Rebind(points[k]); clone.SteadyState(opts.Solve)
//
// at any lane count and worker count: every lane replicates the solo
// sweep's floating-point operations — the same contribution-term sums in
// the same order, the same update, residual, and normalization arithmetic
// — and lanes never mix, so a point's result does not depend on which
// points share its batch. Per-lane residuals are tracked independently and
// a lane deactivates (its column is frozen and copied out) after exactly
// the sweep where a solo run would return. The chain's own rate state is
// not touched: lanes are computed from the contribution terms, so c still
// carries whatever rates the last Build/Rebind wrote.
//
// The sweep scheme is resolved per SolveOptions exactly as SteadyState
// resolves it (auto: Jacobi at JacobiThreshold with >1 workers, otherwise
// Gauss-Seidel, with a Gauss-Seidel retry of the Jacobi-failed lanes in
// auto mode). On failure the lowest failed lane is reported as a
// *BatchPointError wrapping that lane's error, with ConvergenceError
// carrying the lane index and rate vector.
func (c *CTMC) SolveBatch(points [][]float64, opts BatchOptions) ([][]float64, error) {
	out, laneErrs, err := c.SolveBatchLanes(points, opts)
	if err != nil {
		return nil, err
	}
	for k, e := range laneErrs {
		if e != nil {
			return nil, &BatchPointError{Point: k, Err: e}
		}
	}
	return out, nil
}

// SolveBatchLanes is SolveBatch with per-lane failure reporting: laneErrs
// has one entry per point (nil on success, the lane's *ConvergenceError —
// already stamped with the lane index and rate vector — on failure), and
// the converged lanes' results are returned even when other lanes failed,
// so a caller can escalate exactly the failed lanes (see EscalateFrom)
// instead of discarding the whole batch. The batch-level error is
// reserved for failures of the batch as a whole: invalid input,
// cancellation, and worker panics; when it is non-nil, out and laneErrs
// are nil.
//
// Omega and Escalation must be unset in opts.Solve: lanes always run the
// scheme-default damping so a lane stays bit-identical to a default solo
// solve, and escalation re-solves lanes solo where those options apply.
func (c *CTMC) SolveBatchLanes(points [][]float64, opts BatchOptions) (out [][]float64, laneErrs []error, err error) {
	K := len(points)
	if K == 0 {
		return nil, nil, nil
	}
	if c.numSlots == 0 {
		return nil, nil, fmt.Errorf("ctmc: solve batch: chain has no rate slots; use SteadyState per point")
	}
	if opts.Solve.Omega != 0 {
		return nil, nil, fmt.Errorf("ctmc: solve batch: Omega is a solo-solver option; batch lanes always use the scheme default")
	}
	if opts.Solve.Escalation != EscalateNever {
		return nil, nil, fmt.Errorf("ctmc: solve batch: Escalation is a solo-solver option; escalate failed lanes with EscalateFrom")
	}
	for k, pt := range points {
		if len(pt) != c.numSlots {
			return nil, nil, &BatchPointError{Point: k, Err: &RebindError{Want: c.numSlots, Got: len(pt)}}
		}
		for i, v := range pt {
			if !(v > 0) || math.IsInf(v, 0) {
				return nil, nil, &BatchPointError{Point: k, Err: &RebindError{Slot: i + 1, Value: v}}
			}
		}
	}
	if len(opts.LaneTolerances) != 0 && len(opts.LaneTolerances) != K {
		return nil, nil, fmt.Errorf("ctmc: solve batch: %d lane tolerances for %d points", len(opts.LaneTolerances), K)
	}
	solve := solveDefaults(opts.Solve)
	tol := make([]float64, K)
	for k := range tol {
		tol[k] = solve.Tolerance
		if opts.LaneTolerances != nil {
			if t := opts.LaneTolerances[k]; !(t > 0) || math.IsInf(t, 0) {
				return nil, nil, fmt.Errorf("ctmc: solve batch: lane %d tolerance %v is not positive and finite", k, t)
			}
			tol[k] = opts.LaneTolerances[k]
		}
	}

	plan, perr := c.ensurePlan()
	if perr != nil {
		return nil, nil, perr
	}
	out = make([][]float64, K)

	// An absorbing single state gets all the probability, in every lane.
	if len(plan.target) == 1 {
		for k := range out {
			pi := make([]float64, c.N)
			pi[plan.target[0]] = 1
			out[k] = pi
		}
		return out, make([]error, K), nil
	}

	bc := c.fillBatch(plan, points)
	start := uniformStart(bc.n)
	if len(solve.WarmStart) == c.N {
		if ws := projectStart(solve.WarmStart, plan.target); ws != nil {
			start = ws
		}
	}

	// solvePlain is the pre-multilevel scheme selection on a (sub)batch:
	// the shared resolveSweep rule picks Jacobi or Gauss-Seidel, and auto
	// mode retries Jacobi's failed lanes with the sequential sweep from
	// the original start — the same fallback a solo auto solve runs,
	// batched across exactly the lanes that need it.
	solvePlain := func(cur *batchComponent, curTol []float64) ([][]float64, []*ConvergenceError, error) {
		if resolveSweep(solve, cur.n) != SweepJacobi {
			return cur.gaussSeidelBatch(solve, curTol, start)
		}
		cols, errs, err := cur.jacobiBatch(solve, curTol, start)
		if err != nil {
			return nil, nil, err
		}
		if solve.Sweep == SweepAuto {
			var retry []int
			for k, e := range errs {
				if e != nil && errors.Is(e, ErrNoConvergence) {
					retry = append(retry, k)
				}
			}
			if len(retry) > 0 {
				sub := cur.subBatch(retry)
				subTol := make([]float64, len(retry))
				for i, k := range retry {
					subTol[i] = curTol[k]
				}
				subCols, subErrs, subErr := sub.gaussSeidelBatch(solve, subTol, start)
				if subErr != nil {
					return nil, nil, subErr
				}
				for i, k := range retry {
					cols[k], errs[k] = subCols[i], subErrs[i]
				}
			}
		}
		return cols, errs, nil
	}

	var (
		cols []([]float64)
		errs []*ConvergenceError
	)
	switch {
	case solve.Sweep == SweepMultilevel:
		cols, errs, err = bc.multilevelBatch(solve, tol, start, c.ensureCoarse(plan))
	case solve.Sweep == SweepAuto && bc.n >= multilevelAutoMin:
		// The batched mirror of the solo auto rule: probe every lane with
		// the same fixed Gauss-Seidel trajectory (bit-identical per lane
		// to the solo probe), route stalled lanes through the multilevel
		// cycle and the rest through the plain schemes, and retry plain
		// lanes that still exhausted their budget with the multilevel
		// cycle from the original start — the same attempt chain a solo
		// auto solve runs per point. When no lane needs the multilevel
		// path this is exactly the plain path.
		stalled := bc.stalledLanes(tol, start)
		var ml, rest []int
		for k, s := range stalled {
			if s {
				ml = append(ml, k)
			} else {
				rest = append(rest, k)
			}
		}
		cols = make([][]float64, K)
		errs = make([]*ConvergenceError, K)
		runML := func(lanes []int) error {
			sub := bc.subBatch(lanes)
			subTol := make([]float64, len(lanes))
			for i, k := range lanes {
				subTol[i] = tol[k]
			}
			subCols, subErrs, err := sub.multilevelBatch(solve, subTol, start, c.ensureCoarse(plan))
			if err != nil {
				return err
			}
			for i, k := range lanes {
				cols[k], errs[k] = subCols[i], subErrs[i]
			}
			return nil
		}
		if len(ml) > 0 {
			if mlErr := runML(ml); mlErr != nil {
				return nil, nil, mlErr
			}
		}
		if len(rest) > 0 {
			restTol := make([]float64, len(rest))
			for i, k := range rest {
				restTol[i] = tol[k]
			}
			rCols, rErrs, rErr := solvePlain(bc.subBatch(rest), restTol)
			if rErr != nil {
				return nil, nil, rErr
			}
			var retry []int
			for i, k := range rest {
				if rErrs[i] != nil && errors.Is(rErrs[i], ErrNoConvergence) {
					retry = append(retry, k)
					continue
				}
				cols[k], errs[k] = rCols[i], rErrs[i]
			}
			if len(retry) > 0 {
				if mlErr := runML(retry); mlErr != nil {
					return nil, nil, mlErr
				}
			}
		}
	default:
		cols, errs, err = solvePlain(bc, tol)
	}
	if err != nil {
		return nil, nil, err
	}
	laneErrs = make([]error, K)
	for k := 0; k < K; k++ {
		if ce := errs[k]; ce != nil {
			ce.Point = k
			ce.Params = append([]float64(nil), points[k]...)
			laneErrs[k] = ce
			continue
		}
		pi := make([]float64, c.N)
		for j, s := range plan.target {
			pi[s] = cols[k][j]
		}
		out[k] = pi
	}
	return out, laneErrs, nil
}

// batchComponent is the K-lane analogue of component: the incoming CSR
// index structure is shared across lanes while rates, exit rates, and
// iterates are stored lane-interleaved, structure-of-arrays style — the
// value of lane k at row j (or in-edge e) lives at [j*K+k] ([e*K+k]) — so
// one pass over the indices streams all K lanes through contiguous memory.
type batchComponent struct {
	n, k    int
	inStart []int32
	inFrom  []int32
	rate    []float64 // lane-interleaved in-edge rates
	exit    []float64 // lane-interleaved exit rates
	invExit []float64 // lane-interleaved 1/exit (0 where exit is 0)
	allPos  bool      // every row of every lane has exit > 0
}

// fillBatch gathers the K per-point rate vectors into the plan's skeleton
// by re-summing each component entry's contribution terms per lane — the
// identical sequence of float additions Rebind replays — and accumulating
// each lane's exit rates over the row's entries in the same
// column-ascending order Rebind uses, so every lane's rates and exits are
// bit-identical to a Rebind of the whole chain at that lane's values.
func (c *CTMC) fillBatch(plan *solvePlan, points [][]float64) *batchComponent {
	K := len(points)
	bc := &batchComponent{
		n:       len(plan.target),
		k:       K,
		inStart: plan.inStart,
		inFrom:  plan.inFrom,
		rate:    make([]float64, len(plan.inFrom)*K),
		exit:    make([]float64, len(plan.target)*K),
		invExit: make([]float64, len(plan.target)*K),
		allPos:  true,
	}
	t := 0
	for li, s := range plan.target {
		gi := plan.rowEntryBase[li]
		for range c.Rows[s] {
			lo, hi := c.termStart[gi], c.termStart[gi+1]
			pos := plan.fillPos[t]
			for lane, vals := range points {
				sum := 0.0
				for ti := lo; ti < hi; ti++ {
					tm := c.terms[ti]
					if tm.slot > 0 {
						sum += vals[tm.slot-1] * tm.coeff
					} else {
						sum += tm.coeff
					}
				}
				if pos >= 0 {
					bc.rate[int(pos)*K+lane] = sum
				}
				bc.exit[li*K+lane] += sum
			}
			gi++
			t++
		}
		for lane := 0; lane < K; lane++ {
			if e := bc.exit[li*K+lane]; e > 0 {
				bc.invExit[li*K+lane] = 1 / e
			} else {
				bc.allPos = false
			}
		}
	}
	return bc
}

// subBatch extracts the given lanes into a new batch component sharing the
// index structure (for the auto-mode Gauss-Seidel retry of Jacobi-failed
// lanes).
func (bc *batchComponent) subBatch(lanes []int) *batchComponent {
	K2 := len(lanes)
	sub := &batchComponent{
		n:       bc.n,
		k:       K2,
		inStart: bc.inStart,
		inFrom:  bc.inFrom,
		rate:    make([]float64, len(bc.inFrom)*K2),
		exit:    make([]float64, bc.n*K2),
		invExit: make([]float64, bc.n*K2),
		allPos:  bc.allPos,
	}
	for e := 0; e < len(bc.inFrom); e++ {
		for i, k := range lanes {
			sub.rate[e*K2+i] = bc.rate[e*bc.k+k]
		}
	}
	for j := 0; j < bc.n; j++ {
		for i, k := range lanes {
			sub.exit[j*K2+i] = bc.exit[j*bc.k+k]
			sub.invExit[j*K2+i] = bc.invExit[j*bc.k+k]
		}
	}
	return sub
}

// spread replicates the shared start vector into every lane's column.
func (bc *batchComponent) spread(start []float64) []float64 {
	x := make([]float64, bc.n*bc.k)
	for j := 0; j < bc.n; j++ {
		for k := 0; k < bc.k; k++ {
			x[j*bc.k+k] = start[j]
		}
	}
	return x
}

// gaussSeidelBatch runs the sequential Gauss-Seidel sweep on every lane of
// the batch at once: rows are visited in order and each row update feeds
// forward within the sweep, per lane, exactly as the solo sweep does —
// the same inflow summation order, the same division by the exit rate, the
// same residual and per-element normalization arithmetic — so every lane's
// converged column is bit-identical to a solo gaussSeidel at that lane's
// rates. A lane's column is copied out after exactly the sweep where a
// solo run would return. A finished lane first rides along in the wide
// kernel with its bookkeeping (normalization, residual check) skipped —
// the shared index traversal makes a mostly-live wide sweep cheaper than
// any narrowed path — and once at most four lanes are live the batch is
// compacted to exactly the live lanes so the remaining sweeps run in a
// narrower kernel (widths 4, 2, and 1 are specialized; width 1 degenerates
// to the solo sweep). Neither riding along nor compaction can change any
// result: lanes never mix, and a compacted lane keeps its exact column
// values and its running residual. It returns one column or one error per
// lane (never both).
func (bc *batchComponent) gaussSeidelBatch(solve SolveOptions, tol []float64, start []float64) ([][]float64, []*ConvergenceError, error) {
	K := bc.k
	out := make([][]float64, K)
	errs := make([]*ConvergenceError, K)
	cancel := cancelChan(solve.Ctx)

	// The current, possibly compacted, view of the batch: cur holds the
	// rates of the lanes still being swept, x their iterate slab, and
	// lanes[i] the original lane index of cur's lane i.
	cur := bc
	x := bc.spread(start)
	lanes := make([]int, K)
	for k := range lanes {
		lanes[k] = k
	}
	curTol := append([]float64(nil), tol...)
	done := make([]bool, K)
	remaining := K

	delta := make([]float64, K)
	sums := make([]float64, K)
	scale := make([]float64, K)
	iter := 0
	for ; iter < solve.MaxIterations && remaining > 0; iter++ {
		if err := pollSolve(solve.Ctx, cancel, iter); err != nil {
			return nil, nil, err
		}
		w := cur.k
		for k := 0; k < w; k++ {
			delta[k] = 0
		}
		cur.sweepGSWidth(x, delta[:w], done)
		// Normalize to avoid drift. One full-width pass accumulates every
		// live lane's canonical row-order sum, and one full-width pass
		// multiplies by the reciprocals — the solo sweep's exact per-lane
		// operations, without a strided walk of the slab per lane. Dead
		// lanes are scaled by exactly 1, which leaves their frozen columns
		// bit-identical.
		cur.laneSums(x, sums[:w])
		for k := 0; k < w; k++ {
			scale[k] = 1
			if done[k] {
				continue
			}
			if sums[k] <= 0 {
				errs[lanes[k]] = &ConvergenceError{Iterations: iter + 1, Residual: delta[k], Tolerance: curTol[k], Sweep: SweepGaussSeidel, Point: -1}
				done[k] = true
				remaining--
				continue
			}
			scale[k] = 1 / sums[k]
		}
		cur.scaleLanes(x, scale[:w])
		for k := 0; k < w; k++ {
			if done[k] || !(delta[k] < curTol[k]) {
				continue
			}
			col := make([]float64, cur.n)
			for j := 0; j < cur.n; j++ {
				col[j] = x[j*w+k]
			}
			out[lanes[k]] = col
			done[k] = true
			remaining--
		}
		if remaining > 0 && remaining < w && remaining <= 4 {
			cur, x, lanes, curTol, done = compactBatch(cur, x, lanes, curTol, done, remaining)
		}
	}
	for k := 0; k < cur.k; k++ {
		if !done[k] {
			errs[lanes[k]] = &ConvergenceError{Iterations: solve.MaxIterations, Residual: delta[k], Tolerance: curTol[k], Sweep: SweepGaussSeidel, Point: -1}
		}
	}
	return out, errs, nil
}

// compactBatch narrows a batch to its live lanes: the rate arrays are
// re-gathered at the new width by subBatch, the live columns of the
// iterate slab are copied over unchanged, and the lane map and tolerances
// are remapped. Compaction is pure data movement — every surviving lane
// keeps its exact column values — so the lanes' remaining sweeps compute
// the same floats they would have computed at the old width.
func compactBatch(cur *batchComponent, x []float64, lanes []int, tol []float64, done []bool, remaining int) (*batchComponent, []float64, []int, []float64, []bool) {
	w := cur.k
	live := make([]int, 0, remaining)
	for k := 0; k < w; k++ {
		if !done[k] {
			live = append(live, k)
		}
	}
	sub := cur.subBatch(live)
	nx := make([]float64, cur.n*len(live))
	nl := make([]int, len(live))
	nt := make([]float64, len(live))
	for j := 0; j < cur.n; j++ {
		for i, k := range live {
			nx[j*len(live)+i] = x[j*w+k]
		}
	}
	for i, k := range live {
		nl[i] = lanes[k]
		nt[i] = tol[k]
	}
	return sub, nx, nl, nt, make([]bool, len(live))
}

// sweepGSWidth dispatches one Gauss-Seidel sweep to the kernel specialized
// for the batch's current width. At width 8, sweepGS8Fast may run the
// sweep in the vectorized amd64 kernel; its multiplies and adds are the
// same IEEE-754 double operations the scalar kernel performs, in the same
// per-lane order, so its results are bit-identical (pinned by a test that
// runs both kernels).
func (bc *batchComponent) sweepGSWidth(x, delta []float64, done []bool) {
	switch bc.k {
	case 8:
		if !bc.sweepGS8Fast(x, delta, done) {
			bc.sweepGS8(x, delta, done)
		}
	case 4:
		bc.sweepGS4(x, delta, done)
	case 2:
		bc.sweepGS2(x, delta, done)
	case 1:
		bc.sweepGS1(x, delta, done)
	default:
		bc.sweepGS(x, delta, done)
	}
}

// laneSums accumulates every lane's row-order sum of the iterate slab in
// one full-width pass: each lane gets its own sequential accumulator chain
// over rows 0..n-1, the canonical order the solo sweep's normalization
// sums in, so the per-lane sums are bit-identical to n strided per-lane
// walks — at one slab traversal instead of k.
func (bc *batchComponent) laneSums(x, sums []float64) {
	n := bc.n
	switch bc.k {
	case 8:
		var s0, s1, s2, s3, s4, s5, s6, s7 float64
		for j := 0; j < n; j++ {
			xs := x[j*8 : j*8+8 : j*8+8]
			s0 += xs[0]
			s1 += xs[1]
			s2 += xs[2]
			s3 += xs[3]
			s4 += xs[4]
			s5 += xs[5]
			s6 += xs[6]
			s7 += xs[7]
		}
		sums[0], sums[1], sums[2], sums[3] = s0, s1, s2, s3
		sums[4], sums[5], sums[6], sums[7] = s4, s5, s6, s7
	case 4:
		var s0, s1, s2, s3 float64
		for j := 0; j < n; j++ {
			xs := x[j*4 : j*4+4 : j*4+4]
			s0 += xs[0]
			s1 += xs[1]
			s2 += xs[2]
			s3 += xs[3]
		}
		sums[0], sums[1], sums[2], sums[3] = s0, s1, s2, s3
	case 2:
		var s0, s1 float64
		for j := 0; j < n; j++ {
			s0 += x[j*2]
			s1 += x[j*2+1]
		}
		sums[0], sums[1] = s0, s1
	case 1:
		s := 0.0
		for _, v := range x[:n] {
			s += v
		}
		sums[0] = s
	default:
		K := bc.k
		for k := range sums {
			sums[k] = 0
		}
		for j := 0; j < n; j++ {
			base := j * K
			for k := 0; k < K; k++ {
				sums[k] += x[base+k]
			}
		}
	}
}

// scaleLanes multiplies every lane's column by its scale factor in one
// full-width pass over the iterate slab. Callers pass exactly 1 for lanes
// that must not move (x*1 is bit-identical for every finite x), so the
// pass needs no per-element branching.
func (bc *batchComponent) scaleLanes(x, scale []float64) {
	n := bc.n
	switch bc.k {
	case 8:
		s0, s1, s2, s3 := scale[0], scale[1], scale[2], scale[3]
		s4, s5, s6, s7 := scale[4], scale[5], scale[6], scale[7]
		for j := 0; j < n; j++ {
			xs := x[j*8 : j*8+8 : j*8+8]
			xs[0] *= s0
			xs[1] *= s1
			xs[2] *= s2
			xs[3] *= s3
			xs[4] *= s4
			xs[5] *= s5
			xs[6] *= s6
			xs[7] *= s7
		}
	case 4:
		s0, s1, s2, s3 := scale[0], scale[1], scale[2], scale[3]
		for j := 0; j < n; j++ {
			xs := x[j*4 : j*4+4 : j*4+4]
			xs[0] *= s0
			xs[1] *= s1
			xs[2] *= s2
			xs[3] *= s3
		}
	case 2:
		s0, s1 := scale[0], scale[1]
		for j := 0; j < n; j++ {
			x[j*2] *= s0
			x[j*2+1] *= s1
		}
	case 1:
		s := scale[0]
		for j := 0; j < n; j++ {
			x[j] *= s
		}
	default:
		K := bc.k
		for j := 0; j < n; j++ {
			base := j * K
			for k := 0; k < K; k++ {
				x[base+k] *= scale[k]
			}
		}
	}
}

// sweepGS is one full-width Gauss-Seidel sweep. Finished lanes (done[k])
// are skipped entirely: their columns stay frozen at the values of their
// convergence sweep, and skipping their divides and writes cannot affect
// any live lane because lanes never mix.
func (bc *batchComponent) sweepGS(x, delta []float64, done []bool) {
	n, K := bc.n, bc.k
	for j := 0; j < n; j++ {
		base := j * K
		lo, hi := int(bc.inStart[j]), int(bc.inStart[j+1])
		for k := 0; k < K; k++ {
			if done[k] || bc.exit[base+k] <= 0 {
				continue
			}
			inflow := 0.0
			for e := lo; e < hi; e++ {
				inflow += x[int(bc.inFrom[e])*K+k] * bc.rate[e*K+k]
			}
			next := inflow * bc.invExit[base+k]
			d := math.Abs(next - x[base+k])
			if m := math.Max(next, 1e-300); d > delta[k]*m*residualGuard {
				if rel := d / m; rel > delta[k] {
					delta[k] = rel
				}
			}
			x[base+k] = next
		}
	}
}

// sweepGS8 is the specialized full-width kernel for eight lanes: the
// row's in-edges are traversed once with eight scalar accumulators, so
// the CSR index loads, the bounds checks, and the loop control are paid
// once for all lanes (the lane stride of 8 float64s is exactly one
// 64-byte cache line), and the eight independent accumulator chains keep
// the FP units busy where the solo sweep stalls on one add chain. The
// accumulation runs for finished lanes too — it rides in the shared
// traversal for free — but the per-lane epilogue (the divides, the
// residual, the write) is skipped for them, so the expensive serial tail
// is paid exactly once per live lane-row, as in a solo sweep. The
// arithmetic per live lane is identical to sweepGS.
func (bc *batchComponent) sweepGS8(x, delta []float64, done []bool) {
	n := bc.n
	var dead [8]bool
	copy(dead[:], done)
	for j := 0; j < n; j++ {
		base := j * 8
		lo, hi := int(bc.inStart[j]), int(bc.inStart[j+1])
		var a0, a1, a2, a3, a4, a5, a6, a7 float64
		for e := lo; e < hi; e++ {
			fb := int(bc.inFrom[e]) * 8
			xs := x[fb : fb+8 : fb+8]
			rs := bc.rate[e*8 : e*8+8 : e*8+8]
			a0 += xs[0] * rs[0]
			a1 += xs[1] * rs[1]
			a2 += xs[2] * rs[2]
			a3 += xs[3] * rs[3]
			a4 += xs[4] * rs[4]
			a5 += xs[5] * rs[5]
			a6 += xs[6] * rs[6]
			a7 += xs[7] * rs[7]
		}
		acc := [8]float64{a0, a1, a2, a3, a4, a5, a6, a7}
		for k := 0; k < 8; k++ {
			if dead[k] || bc.exit[base+k] <= 0 {
				continue
			}
			next := acc[k] * bc.invExit[base+k]
			d := math.Abs(next - x[base+k])
			if m := math.Max(next, 1e-300); d > delta[k]*m*residualGuard {
				if rel := d / m; rel > delta[k] {
					delta[k] = rel
				}
			}
			x[base+k] = next
		}
	}
}

// sweepGS4 is the four-lane Gauss-Seidel kernel, used after compaction:
// the structure of sweepGS8 at half the lane stride. Arithmetic per live
// lane is identical to sweepGS.
func (bc *batchComponent) sweepGS4(x, delta []float64, done []bool) {
	n := bc.n
	var dead [4]bool
	copy(dead[:], done)
	for j := 0; j < n; j++ {
		base := j * 4
		lo, hi := int(bc.inStart[j]), int(bc.inStart[j+1])
		var a0, a1, a2, a3 float64
		for e := lo; e < hi; e++ {
			fb := int(bc.inFrom[e]) * 4
			xs := x[fb : fb+4 : fb+4]
			rs := bc.rate[e*4 : e*4+4 : e*4+4]
			a0 += xs[0] * rs[0]
			a1 += xs[1] * rs[1]
			a2 += xs[2] * rs[2]
			a3 += xs[3] * rs[3]
		}
		acc := [4]float64{a0, a1, a2, a3}
		for k := 0; k < 4; k++ {
			if dead[k] || bc.exit[base+k] <= 0 {
				continue
			}
			next := acc[k] * bc.invExit[base+k]
			d := math.Abs(next - x[base+k])
			if m := math.Max(next, 1e-300); d > delta[k]*m*residualGuard {
				if rel := d / m; rel > delta[k] {
					delta[k] = rel
				}
			}
			x[base+k] = next
		}
	}
}

// sweepGS2 is the two-lane Gauss-Seidel kernel, used after compaction.
// Arithmetic per live lane is identical to sweepGS.
func (bc *batchComponent) sweepGS2(x, delta []float64, done []bool) {
	n := bc.n
	dead0, dead1 := done[0], done[1]
	for j := 0; j < n; j++ {
		base := j * 2
		lo, hi := int(bc.inStart[j]), int(bc.inStart[j+1])
		var a0, a1 float64
		for e := lo; e < hi; e++ {
			fb := int(bc.inFrom[e]) * 2
			a0 += x[fb] * bc.rate[e*2]
			a1 += x[fb+1] * bc.rate[e*2+1]
		}
		if !dead0 && bc.exit[base] > 0 {
			next := a0 * bc.invExit[base]
			d := math.Abs(next - x[base])
			if m := math.Max(next, 1e-300); d > delta[0]*m*residualGuard {
				if rel := d / m; rel > delta[0] {
					delta[0] = rel
				}
			}
			x[base] = next
		}
		if !dead1 && bc.exit[base+1] > 0 {
			next := a1 * bc.invExit[base+1]
			d := math.Abs(next - x[base+1])
			if m := math.Max(next, 1e-300); d > delta[1]*m*residualGuard {
				if rel := d / m; rel > delta[1] {
					delta[1] = rel
				}
			}
			x[base+1] = next
		}
	}
}

// sweepGS1 is the single-lane Gauss-Seidel kernel a fully compacted batch
// degenerates to — the solo gaussSeidel inner loop verbatim, so the last
// surviving lane of a batch pays exactly the solo sweep's cost.
func (bc *batchComponent) sweepGS1(x, delta []float64, done []bool) {
	if done[0] {
		return
	}
	n := bc.n
	d := delta[0]
	for j := 0; j < n; j++ {
		if bc.exit[j] <= 0 {
			continue
		}
		lo, hi := int(bc.inStart[j]), int(bc.inStart[j+1])
		inflow := 0.0
		for e := lo; e < hi; e++ {
			inflow += x[int(bc.inFrom[e])] * bc.rate[e]
		}
		next := inflow * bc.invExit[j]
		dd := math.Abs(next - x[j])
		if m := math.Max(next, 1e-300); dd > d*m*residualGuard {
			if rel := dd / m; rel > d {
				d = rel
			}
		}
		x[j] = next
	}
	delta[0] = d
}

// batchTileRows is the row-tile height of the batched Jacobi kernel: with
// eight lanes a tile's iterate slab is 256·8·8 B = 16 KiB, so a tile's
// reads and writes stay L1-resident while the tile still amortizes the
// worker-pool handoff. Tiling does not affect results: Jacobi rows read
// only the previous sweep's vector, so the update is independent of how
// rows are grouped.
const batchTileRows = 256

// jacobiBatch runs the damped Jacobi sweep on every lane of the batch at
// once, with rows partitioned into cache-blocked tiles that a persistent
// worker pool processes. Per-lane arithmetic replicates the solo jacobi
// sweep — the same damped update, the same residual, the same canonical
// sequential normalization multiplied by the inverse sum — and per-lane
// residuals are exact max-reductions over tile maxima, so every lane is
// bit-identical to a solo jacobi at that lane's rates, at any worker
// count and any tiling. A lane's column is copied out after exactly the
// sweep a solo run would return; as in gaussSeidelBatch, finished lanes
// ride along in the full-width kernel with their bookkeeping skipped —
// lanes never mix, so riding along cannot change any result.
func (bc *batchComponent) jacobiBatch(solve SolveOptions, tol []float64, start []float64) ([][]float64, []*ConvergenceError, error) {
	n, K := bc.n, bc.k
	x := bc.spread(start)
	next := make([]float64, n*K)
	out := make([][]float64, K)
	errs := make([]*ConvergenceError, K)
	laneDone := make([]bool, K)
	remaining := K
	cancel := cancelChan(solve.Ctx)

	nTiles := (n + batchTileRows - 1) / batchTileRows
	workers := solve.Workers
	if workers > nTiles {
		workers = nTiles
	}
	tileDelta := make([]float64, nTiles*K)

	sweepTile := func(tb int) {
		lo := tb * batchTileRows
		hi := lo + batchTileRows
		if hi > n {
			hi = n
		}
		if K == 8 {
			bc.jacobiTile8(lo, hi, x, next, tileDelta[tb*8:tb*8+8], laneDone)
		} else {
			bc.jacobiTile(lo, hi, x, next, tileDelta[tb*K:(tb+1)*K], laneDone)
		}
	}

	// A panicking tile is recovered into a *fault.WorkerPanicError rather
	// than crashing the pool; the lowest tile index wins, matching the
	// failure a sequential tile loop would hit first. The mutex write
	// happens before the done-channel send, so the dispatcher's read after
	// the drain is ordered after every worker's write.
	var (
		panicMu  sync.Mutex
		panicIdx = nTiles
		panicErr error
	)
	runTile := func(w, tb int) {
		err := fault.Guard("ctmc.batch", w, fmt.Sprintf("tile %d", tb), func() error {
			faultinject.MaybePanic(faultinject.SiteBatchTile, tb)
			sweepTile(tb)
			return nil
		})
		if err != nil {
			panicMu.Lock()
			if panicErr == nil || tb < panicIdx {
				panicIdx, panicErr = tb, err
			}
			panicMu.Unlock()
		}
	}

	// Persistent pool: workers stay parked on the work channel between
	// sweeps; the channel operations order each sweep's buffer swap
	// before the tile work, and the tile work before the reduction.
	// Both channels are buffered to nTiles so the dispatcher can enqueue
	// every tile before draining completions and a worker can always
	// report a finished tile without blocking — with fewer workers than
	// tiles, unbuffered channels would wedge every party mid-sweep.
	var work, done chan int
	if nTiles > 1 && workers > 1 {
		work = make(chan int, nTiles)
		done = make(chan int, nTiles)
		for w := 0; w < workers; w++ {
			go func(w int) {
				for b := range work {
					runTile(w, b)
					done <- b
				}
			}(w)
		}
		defer close(work)
	}

	delta := make([]float64, K)
	sums := make([]float64, K)
	scale := make([]float64, K)
	iter := 0
	for ; iter < solve.MaxIterations && remaining > 0; iter++ {
		if err := pollSolve(solve.Ctx, cancel, iter); err != nil {
			return nil, nil, err
		}
		if work != nil {
			for b := 0; b < nTiles; b++ {
				work <- b
			}
			for b := 0; b < nTiles; b++ {
				<-done
			}
		} else {
			for b := 0; b < nTiles; b++ {
				runTile(0, b)
			}
		}
		if panicErr != nil {
			return nil, nil, panicErr
		}
		// Normalize to avoid drift: one full-width pass accumulates every
		// live lane's canonical sequential sum, one full-width pass
		// multiplies by the reciprocals — the solo sweep's exact per-lane
		// operations (see gaussSeidelBatch). Finished lanes scale by
		// exactly 1; their stale next-buffer columns stay untouched.
		bc.laneSums(next, sums)
		for k := 0; k < K; k++ {
			scale[k] = 1
			if laneDone[k] {
				continue
			}
			d := 0.0
			for b := 0; b < nTiles; b++ {
				if td := tileDelta[b*K+k]; td > d {
					d = td
				}
			}
			delta[k] = d
			if sums[k] <= 0 {
				errs[k] = &ConvergenceError{Iterations: iter + 1, Residual: delta[k], Tolerance: tol[k], Sweep: SweepJacobi, Point: -1}
				laneDone[k] = true
				remaining--
				continue
			}
			scale[k] = 1 / sums[k]
		}
		bc.scaleLanes(next, scale)
		x, next = next, x
		for k := 0; k < K; k++ {
			if laneDone[k] || errs[k] != nil {
				continue
			}
			if delta[k] < tol[k] {
				col := make([]float64, n)
				for j := 0; j < n; j++ {
					col[j] = x[j*K+k]
				}
				out[k] = col
				laneDone[k] = true
				remaining--
			}
		}
	}
	for k := 0; k < K; k++ {
		if !laneDone[k] {
			errs[k] = &ConvergenceError{Iterations: solve.MaxIterations, Residual: delta[k], Tolerance: tol[k], Sweep: SweepJacobi, Point: -1}
		}
	}
	return out, errs, nil
}

// jacobiTile is one full-width tile of a damped Jacobi sweep. Finished
// lanes are skipped entirely, as in sweepGS: their next-buffer columns go
// stale, which is harmless because lanes never mix and their results were
// copied out at their convergence sweep.
func (bc *batchComponent) jacobiTile(lo, hi int, x, next, tileDelta []float64, done []bool) {
	K := bc.k
	for k := 0; k < K; k++ {
		tileDelta[k] = 0
	}
	for j := lo; j < hi; j++ {
		base := j * K
		elo, ehi := int(bc.inStart[j]), int(bc.inStart[j+1])
		for k := 0; k < K; k++ {
			if done[k] {
				continue
			}
			nx := x[base+k]
			if bc.exit[base+k] > 0 {
				inflow := 0.0
				for e := elo; e < ehi; e++ {
					inflow += x[int(bc.inFrom[e])*K+k] * bc.rate[e*K+k]
				}
				nx = (1-jacobiOmega)*x[base+k] + jacobiOmega*(inflow*bc.invExit[base+k])
			}
			dd := math.Abs(nx - x[base+k])
			if m := math.Max(nx, 1e-300); dd > tileDelta[k]*m*residualGuard {
				if rel := dd / m; rel > tileDelta[k] {
					tileDelta[k] = rel
				}
			}
			next[base+k] = nx
		}
	}
}

// jacobiTile8 is the specialized full-width tile for eight lanes, the
// Jacobi counterpart of sweepGS8: one CSR traversal per row feeds eight
// scalar accumulators; finished lanes ride in the accumulation but skip
// the per-lane epilogue. Arithmetic per live lane is identical to
// jacobiTile.
func (bc *batchComponent) jacobiTile8(lo, hi int, x, next, tileDelta []float64, done []bool) {
	var d [8]float64
	var dead [8]bool
	copy(dead[:], done)
	for j := lo; j < hi; j++ {
		base := j * 8
		elo, ehi := int(bc.inStart[j]), int(bc.inStart[j+1])
		var a0, a1, a2, a3, a4, a5, a6, a7 float64
		for e := elo; e < ehi; e++ {
			fb := int(bc.inFrom[e]) * 8
			xs := x[fb : fb+8 : fb+8]
			rs := bc.rate[e*8 : e*8+8 : e*8+8]
			a0 += xs[0] * rs[0]
			a1 += xs[1] * rs[1]
			a2 += xs[2] * rs[2]
			a3 += xs[3] * rs[3]
			a4 += xs[4] * rs[4]
			a5 += xs[5] * rs[5]
			a6 += xs[6] * rs[6]
			a7 += xs[7] * rs[7]
		}
		acc := [8]float64{a0, a1, a2, a3, a4, a5, a6, a7}
		for k := 0; k < 8; k++ {
			if dead[k] {
				continue
			}
			nx := x[base+k]
			if bc.exit[base+k] > 0 {
				nx = (1-jacobiOmega)*x[base+k] + jacobiOmega*(acc[k]*bc.invExit[base+k])
			}
			dd := math.Abs(nx - x[base+k])
			if m := math.Max(nx, 1e-300); dd > d[k]*m*residualGuard {
				if rel := dd / m; rel > d[k] {
					d[k] = rel
				}
			}
			next[base+k] = nx
		}
	}
	copy(tileDelta, d[:])
}
