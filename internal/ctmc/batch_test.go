// Batched-solver property tests live in the external test package with
// the sweep-mode tests: they build the paper's rate-parametric chains
// through internal/models.
package ctmc_test

import (
	"errors"
	"testing"

	"repro/internal/ctmc"
	"repro/internal/models"
)

// rpcParamChain builds the revised rpc chain with the shutdown timeout as
// a rate slot (one slot, value 1/T).
func rpcParamChain(t *testing.T) *ctmc.CTMC {
	t.Helper()
	p := models.DefaultRPCParams()
	p.ParametricTimeout = true
	a, err := models.BuildRPCRevised(p)
	if err != nil {
		t.Fatal(err)
	}
	return chainOf(t, a)
}

// streamingParamChain builds the quick-scale streaming chain with the PSP
// awake period as a rate slot (one slot, value 1/P).
func streamingParamChain(t *testing.T) *ctmc.CTMC {
	t.Helper()
	p := models.DefaultStreamingParams()
	p.APCapacity, p.ClientCapacity = 3, 3
	p.ParametricPeriod = true
	a, err := models.BuildStreaming(p)
	if err != nil {
		t.Fatal(err)
	}
	return chainOf(t, a)
}

// rpcPoints is an 8-point shutdown-timeout grid (slot value 1/T).
func rpcPoints() [][]float64 {
	out := make([][]float64, 0, 8)
	for _, T := range []float64{0.5, 1, 2, 5, 7.5, 10, 15, 25} {
		out = append(out, []float64{1 / T})
	}
	return out
}

// streamingPoints is an 8-point awake-period grid (slot value 1/P).
func streamingPoints() [][]float64 {
	out := make([][]float64, 0, 8)
	for _, P := range []float64{5, 25, 50, 100, 200, 400, 600, 800} {
		out = append(out, []float64{1 / P})
	}
	return out
}

// solveSequential runs the reference chain per point: Rebind + SteadyState
// on a private clone, the exact path SolveBatch must reproduce bit for
// bit. Debug checks are enabled so every rebind also asserts the cached
// structural plan against a from-scratch analysis.
func solveSequential(t *testing.T, c *ctmc.CTMC, points [][]float64, opts ctmc.SolveOptions) [][]float64 {
	t.Helper()
	old := ctmc.EnableDebugChecks
	ctmc.EnableDebugChecks = true
	defer func() { ctmc.EnableDebugChecks = old }()
	chain := c.Clone()
	out := make([][]float64, len(points))
	for i, pt := range points {
		if err := chain.Rebind(pt); err != nil {
			t.Fatalf("rebind point %d: %v", i, err)
		}
		pi, err := chain.SteadyState(opts)
		if err != nil {
			t.Fatalf("steady state point %d: %v", i, err)
		}
		out[i] = pi
	}
	return out
}

// batchInWidths solves the points through SolveBatch in chunks of the
// given lane width, reusing the per-chunk options.
func batchInWidths(t *testing.T, c *ctmc.CTMC, points [][]float64, width int, opts ctmc.BatchOptions) [][]float64 {
	t.Helper()
	out := make([][]float64, 0, len(points))
	for off := 0; off < len(points); off += width {
		hi := off + width
		if hi > len(points) {
			hi = len(points)
		}
		chunk := opts
		if opts.LaneTolerances != nil {
			chunk.LaneTolerances = opts.LaneTolerances[off:hi]
		}
		pis, err := c.SolveBatch(points[off:hi], chunk)
		if err != nil {
			t.Fatalf("solve batch width %d offset %d: %v", width, off, err)
		}
		out = append(out, pis...)
	}
	return out
}

func requireBitIdentical(t *testing.T, name string, want, got [][]float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d points vs %d", name, len(want), len(got))
	}
	for i := range want {
		for s := range want[i] {
			if want[i][s] != got[i][s] {
				t.Fatalf("%s: point %d state %d: %v != %v (must be bit-identical)",
					name, i, s, got[i][s], want[i][s])
			}
		}
	}
}

// TestSolveBatchBitIdentity pins the tentpole contract on both paper
// chains: the batched solve equals the sequential Rebind+SteadyState chain
// bit for bit, at lane widths 1, 3, and 8, worker counts 1, 2, and 8,
// under both forced sweeps, cold and warm-started. Workers=2 matters
// beyond parity: the streaming chain spans five Jacobi tiles, so it
// schedules fewer pool workers than tiles (a config that once deadlocked
// on unbuffered pool channels), while 8 covers workers > tiles.
func TestSolveBatchBitIdentity(t *testing.T) {
	chains := map[string]struct {
		c      *ctmc.CTMC
		points [][]float64
	}{
		"rpc":       {rpcParamChain(t), rpcPoints()},
		"streaming": {streamingParamChain(t), streamingPoints()},
	}
	for name, tc := range chains {
		for _, sweep := range []ctmc.Sweep{ctmc.SweepGaussSeidel, ctmc.SweepJacobi} {
			for _, workers := range []int{1, 2, 8} {
				opts := ctmc.SolveOptions{Sweep: sweep, Workers: workers}
				want := solveSequential(t, tc.c, tc.points, opts)
				// Warm-started: every point seeded from the first point's
				// solution, the sweep-anchor rule.
				warm := opts
				warm.WarmStart = want[0]
				wantWarm := solveSequential(t, tc.c, tc.points, warm)
				for _, width := range []int{1, 3, 8} {
					got := batchInWidths(t, tc.c, tc.points, width, ctmc.BatchOptions{Solve: opts})
					requireBitIdentical(t, name+"/cold", want, got)
					got = batchInWidths(t, tc.c, tc.points, width, ctmc.BatchOptions{Solve: warm})
					requireBitIdentical(t, name+"/warm", wantWarm, got)
				}
			}
		}
	}
}

// TestSolveBatchMatchesAutoOutcome pins the auto-mode parity, including
// the Gauss-Seidel fallback of Jacobi-failed lanes: whatever a solo auto
// solve produces at a given iteration bound — a converged vector or a
// typed failure — the batch must reproduce, lane for lane.
func TestSolveBatchMatchesAutoOutcome(t *testing.T) {
	c := rpcParamChain(t)
	points := rpcPoints()
	for _, maxIter := range []int{3, 40, 400, 0} {
		// Threshold 2 with two workers sends auto through Jacobi first on
		// every multi-state component; small bounds force the fallback (and
		// below that, a shared failure).
		opts := ctmc.SolveOptions{JacobiThreshold: 2, Workers: 2, MaxIterations: maxIter}
		chain := c.Clone()
		want := make([][]float64, len(points))
		wantErr := make([]error, len(points))
		for i, pt := range points {
			if err := chain.Rebind(pt); err != nil {
				t.Fatal(err)
			}
			want[i], wantErr[i] = chain.SteadyState(opts)
		}
		got, err := c.SolveBatch(points, ctmc.BatchOptions{Solve: opts})
		firstFail := -1
		for i, e := range wantErr {
			if e != nil {
				firstFail = i
				break
			}
		}
		if firstFail < 0 {
			if err != nil {
				t.Fatalf("maxIter=%d: batch failed where solo succeeded: %v", maxIter, err)
			}
			requireBitIdentical(t, "auto", want, got)
			continue
		}
		var bpe *ctmc.BatchPointError
		if !errors.As(err, &bpe) {
			t.Fatalf("maxIter=%d: want *BatchPointError, got %v", maxIter, err)
		}
		if bpe.Point != firstFail {
			t.Fatalf("maxIter=%d: failed lane %d, want %d", maxIter, bpe.Point, firstFail)
		}
		var ce, soloCE *ctmc.ConvergenceError
		if !errors.As(err, &ce) || !errors.As(wantErr[firstFail], &soloCE) {
			t.Fatalf("maxIter=%d: want ConvergenceError on both sides (%v vs %v)", maxIter, err, wantErr[firstFail])
		}
		if ce.Sweep != soloCE.Sweep || ce.Iterations != soloCE.Iterations || ce.Residual != soloCE.Residual {
			t.Fatalf("maxIter=%d: batch failure %+v differs from solo %+v", maxIter, ce, soloCE)
		}
	}
}

// TestSolveBatchLaneTolerances pins mixed-convergence batches: lanes with
// different tolerances deactivate at different sweeps, and each lane still
// equals a solo solve at exactly its own tolerance.
func TestSolveBatchLaneTolerances(t *testing.T) {
	c := streamingParamChain(t)
	points := streamingPoints()
	tols := []float64{1e-6, 1e-13, 1e-8, 1e-10, 1e-7, 1e-12, 1e-9, 1e-11}
	for _, sweep := range []ctmc.Sweep{ctmc.SweepGaussSeidel, ctmc.SweepJacobi} {
		got, err := c.SolveBatch(points, ctmc.BatchOptions{
			Solve:          ctmc.SolveOptions{Sweep: sweep, Workers: 2},
			LaneTolerances: tols,
		})
		if err != nil {
			t.Fatalf("%v: %v", sweep, err)
		}
		for i, pt := range points {
			want := solveSequential(t, c, [][]float64{pt},
				ctmc.SolveOptions{Sweep: sweep, Workers: 2, Tolerance: tols[i]})
			requireBitIdentical(t, sweep.String(), want, got[i:i+1])
		}
	}
}

// TestSolveBatchDeactivationDeterminism pins that lane deactivation is a
// pure function of each lane's own data: repeated batches are identical,
// and permuting which points share a batch permutes the results without
// changing a single bit.
func TestSolveBatchDeactivationDeterminism(t *testing.T) {
	c := rpcParamChain(t)
	points := rpcPoints()
	tols := []float64{1e-6, 1e-12, 1e-9, 1e-13, 1e-7, 1e-11, 1e-8, 1e-10}
	opts := ctmc.BatchOptions{Solve: ctmc.SolveOptions{Sweep: ctmc.SweepGaussSeidel}, LaneTolerances: tols}
	first, err := c.SolveBatch(points, opts)
	if err != nil {
		t.Fatal(err)
	}
	again, err := c.SolveBatch(points, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "repeat", first, again)

	perm := []int{5, 2, 7, 0, 3, 6, 1, 4}
	permPoints := make([][]float64, len(perm))
	permTols := make([]float64, len(perm))
	for i, p := range perm {
		permPoints[i] = points[p]
		permTols[i] = tols[p]
	}
	permuted, err := c.SolveBatch(permPoints, ctmc.BatchOptions{Solve: opts.Solve, LaneTolerances: permTols})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range perm {
		requireBitIdentical(t, "permuted", first[p:p+1], permuted[i:i+1])
	}
}

// TestSolveBatchValidation pins the input contract: per-point arity and
// positivity failures are typed RebindErrors attributed to their lane, and
// malformed lane tolerances are rejected.
func TestSolveBatchValidation(t *testing.T) {
	c := rpcParamChain(t)
	var bpe *ctmc.BatchPointError
	var re *ctmc.RebindError

	_, err := c.SolveBatch([][]float64{{1}, {1, 2}}, ctmc.BatchOptions{})
	if !errors.As(err, &bpe) || bpe.Point != 1 || !errors.As(err, &re) {
		t.Fatalf("arity: want BatchPointError{Point: 1} wrapping RebindError, got %v", err)
	}
	_, err = c.SolveBatch([][]float64{{1}, {-2}}, ctmc.BatchOptions{})
	if !errors.As(err, &bpe) || bpe.Point != 1 || !errors.Is(err, ctmc.ErrStructuralRebind) {
		t.Fatalf("positivity: want BatchPointError{Point: 1} wrapping ErrStructuralRebind, got %v", err)
	}
	_, err = c.SolveBatch([][]float64{{1}, {2}}, ctmc.BatchOptions{LaneTolerances: []float64{1e-9}})
	if err == nil {
		t.Fatal("lane tolerance arity: want error")
	}
	_, err = c.SolveBatch([][]float64{{1}, {2}}, ctmc.BatchOptions{LaneTolerances: []float64{1e-9, -1}})
	if err == nil {
		t.Fatal("lane tolerance sign: want error")
	}
	plain := rpcChain(t) // no rate slots
	if _, err := plain.SolveBatch([][]float64{{1}}, ctmc.BatchOptions{}); err == nil {
		t.Fatal("slot-free chain: want error")
	}
	if pis, err := c.SolveBatch(nil, ctmc.BatchOptions{}); err != nil || pis != nil {
		t.Fatalf("empty batch: want (nil, nil), got (%v, %v)", pis, err)
	}
}

// TestSolveBatchConvergenceErrorPoint pins the failure attribution: the
// lowest failed lane wins, and the unwrapped ConvergenceError carries the
// lane index and its rate vector.
func TestSolveBatchConvergenceErrorPoint(t *testing.T) {
	c := rpcParamChain(t)
	points := rpcPoints()[:3]
	_, err := c.SolveBatch(points, ctmc.BatchOptions{
		Solve: ctmc.SolveOptions{Sweep: ctmc.SweepGaussSeidel, MaxIterations: 2},
	})
	if !errors.Is(err, ctmc.ErrNoConvergence) {
		t.Fatalf("want ErrNoConvergence, got %v", err)
	}
	var bpe *ctmc.BatchPointError
	if !errors.As(err, &bpe) || bpe.Point != 0 {
		t.Fatalf("want BatchPointError{Point: 0}, got %v", err)
	}
	var ce *ctmc.ConvergenceError
	if !errors.As(err, &ce) {
		t.Fatalf("want *ConvergenceError, got %v", err)
	}
	if ce.Point != 0 {
		t.Fatalf("Point = %d, want 0", ce.Point)
	}
	if len(ce.Params) != 1 || ce.Params[0] != points[0][0] {
		t.Fatalf("Params = %v, want %v", ce.Params, points[0])
	}
}
