package ctmc

import (
	"fmt"
	"math"

	"repro/internal/bisim"
	"repro/internal/fault"
	"repro/internal/faultinject"
)

// This file implements the SweepMultilevel scheme: a deterministic
// two-level iterative aggregation/disaggregation (IAD) outer loop around
// the Gauss-Seidel smoother. Near-completely-decomposable chains — the
// DPM structure of long sleep/idle dwells with rare wake transitions —
// have a slow mode per state cluster that plain sweeps attack at O(1/ε)
// iterations; the coarse solve moves exactly that mode in one exact step
// per cycle, so convergence is bounded by the fast local mixing instead.
//
// Determinism: the coarsening partition is computed from the chain's
// canonical-point rates (every slot value = 1), so it is a pure function
// of the chain's structure — invariant under Rebind, identical for every
// clone sharing the plan, and independent of which goroutine builds it
// first. The smoother is the sequential Gauss-Seidel kernel and the
// coarse solve is the sequential GTH elimination, so the whole scheme is
// bit-identical at any worker count by construction; the batched variant
// replicates the solo schedule per lane through the pinned batch kernels.

const (
	// multilevelPreSweeps/PostSweeps are the smoothing sweeps per outer
	// cycle. Convergence is tested only after post-smoothing sweeps: the
	// iterate right after disaggregation took a non-smoothing step, so its
	// residual would be meaningless — and testing at the same schedule in
	// the solo and batched paths is what keeps them bit-identical.
	multilevelPreSweeps  = 4
	multilevelPostSweeps = 4
	// multilevelSizeFloor is the minimum state count of a coarse block:
	// partition blocks are merged, in canonical block order, until each
	// aggregate reaches the floor.
	multilevelSizeFloor = 2
	// multilevelMaxCoarse caps the aggregated chain: above it, blocks are
	// merged into contiguous runs, keeping the dense GTH solve O(nb³)
	// with nb ≤ 128 — negligible next to the fine sweeps it replaces.
	multilevelMaxCoarse = 128
	// multilevelAutoMin is the component size at which SweepAuto runs the
	// stall probe at all; smaller components converge in microseconds
	// under any scheme.
	multilevelAutoMin = 64
	// The stall probe runs multilevelProbeSweeps Gauss-Seidel sweeps on a
	// copy of the start vector and compares the residual at sweep
	// multilevelProbeCheck with the final one: decay by less than
	// multilevelStallRatio over the remaining sweeps means the smoother
	// is grinding at a slow mode the coarse correction can remove.
	multilevelProbeSweeps = 24
	multilevelProbeCheck  = 8
	multilevelStallRatio  = 0.7
)

// coarsePlan is the cached coarse operator of the multilevel scheme: the
// coarsening partition of the component (restriction map), the block
// membership CSR (prolongation layout), and the per-edge cell index that
// turns re-aggregation after a Rebind into one O(edges) gather. Like the
// solvePlan it hangs off, it depends only on the chain's structure and
// canonical-point rates, so one coarse plan serves every rebind of a
// chain and all its clones.
type coarsePlan struct {
	// nb is the number of coarse blocks.
	nb int
	// blockOf maps a local component state to its coarse block.
	blockOf []int32
	// blockStart/blockState list each block's member states (ascending)
	// CSR-style: block b's members are blockState[blockStart[b]:
	// blockStart[b+1]]. The multilevel cycle needs only the block sizes
	// (for the uniform fallback when a block's mass underflows), but the
	// membership is what a future selective disaggregation would walk.
	blockStart []int32
	blockState []int32
	// cell[e] = blockOf[from]·nb + blockOf[to] for component in-edge e:
	// aggregating the current rates is one pass adding w[from]·rate[e]
	// into a dense nb×nb matrix at cell[e].
	cell []int32
}

// ensureCoarse returns the plan's cached coarse operator, computing it on
// first use (sync.Once: clones share the plan, and with it the coarse
// structure). It must only be called on plans with a multi-state target.
func (c *CTMC) ensureCoarse(p *solvePlan) *coarsePlan {
	p.coarseOnce.Do(func() { p.coarse = buildCoarse(c, p) })
	return p.coarse
}

// buildCoarse computes the coarsening partition and the coarse index
// structure. The partition is derived from the component's canonical-point
// rates: every contribution term is summed at slot value 1, which is a
// pure function of the built structure — two clones rebound to different
// rate points still agree on it, so the shared plan's coarse structure
// does not depend on which clone solves first. Chains without recorded
// terms (hand-assembled, slot-free) use their current rates, which for
// them are the only rates the chain will ever have.
func buildCoarse(c *CTMC, p *solvePlan) *coarsePlan {
	n := len(p.target)
	rate := make([]float64, len(p.inFrom))
	t := 0
	for li, s := range p.target {
		gi := int(p.rowEntryBase[li])
		for ei := range c.Rows[s] {
			if pos := p.fillPos[t]; pos >= 0 {
				if c.termStart != nil {
					sum := 0.0
					for ti := c.termStart[gi]; ti < c.termStart[gi+1]; ti++ {
						sum += c.terms[ti].coeff
					}
					rate[pos] = sum
				} else {
					rate[pos] = c.Rows[s][ei].Rate
				}
			}
			gi++
			t++
		}
	}
	to := make([]int32, len(p.inFrom))
	for j := 0; j < n; j++ {
		for e := p.inStart[j]; e < p.inStart[j+1]; e++ {
			to[e] = int32(j)
		}
	}
	blocks := bisim.RatePartition(n, p.inFrom, to, rate)

	// Merge partition blocks into coarse aggregates. RatePartition numbers
	// blocks by first occurrence, so walking them in id order is the fixed
	// tie-breaking rule: consecutive blocks are grouped until each group
	// holds at least multilevelSizeFloor states, a trailing undersized
	// group joins its predecessor, and if the group count still exceeds
	// multilevelMaxCoarse, groups are folded onto contiguous ranges.
	nb0 := 0
	for _, b := range blocks {
		if b+1 > nb0 {
			nb0 = b + 1
		}
	}
	sizes := make([]int, nb0)
	for _, b := range blocks {
		sizes[b]++
	}
	groupOf := make([]int32, nb0)
	ng, acc := 0, 0
	for b := 0; b < nb0; b++ {
		groupOf[b] = int32(ng)
		acc += sizes[b]
		if acc >= multilevelSizeFloor {
			ng++
			acc = 0
		}
	}
	if acc > 0 {
		if ng == 0 {
			ng = 1
		} else {
			for b := nb0 - 1; b >= 0 && groupOf[b] == int32(ng); b-- {
				groupOf[b] = int32(ng - 1)
			}
		}
	}
	if ng > multilevelMaxCoarse {
		for b := range groupOf {
			groupOf[b] = int32(int(groupOf[b]) * multilevelMaxCoarse / ng)
		}
		ng = multilevelMaxCoarse
	}

	cp := &coarsePlan{nb: ng, blockOf: make([]int32, n)}
	for j := 0; j < n; j++ {
		cp.blockOf[j] = groupOf[blocks[j]]
	}
	cp.blockStart = make([]int32, ng+1)
	for _, b := range cp.blockOf {
		cp.blockStart[b+1]++
	}
	for b := 0; b < ng; b++ {
		cp.blockStart[b+1] += cp.blockStart[b]
	}
	cp.blockState = make([]int32, n)
	fill := make([]int32, ng)
	copy(fill, cp.blockStart[:ng])
	for j := 0; j < n; j++ {
		b := cp.blockOf[j]
		cp.blockState[fill[b]] = int32(j)
		fill[b]++
	}
	cp.cell = make([]int32, len(p.inFrom))
	for j := 0; j < n; j++ {
		bj := cp.blockOf[j]
		for e := p.inStart[j]; e < p.inStart[j+1]; e++ {
			cp.cell[e] = cp.blockOf[p.inFrom[e]]*int32(ng) + bj
		}
	}
	return cp
}

// gth solves the steady state of the aggregated chain exactly by the
// Grassmann–Taksar–Heyman elimination: a is the dense nb×nb row-major
// rate matrix (a[i·nb+j] = aggregate rate i→j; diagonal cells are written
// by the aggregation pass but never read), y receives the stationary
// distribution. GTH is subtraction-free — every update adds products of
// nonnegative numbers — so it is stable on the stiff aggregates
// near-decomposable chains produce, and it is one fixed sequential
// elimination order, so it is trivially deterministic. It reports false
// when an elimination step finds no outflow (the aggregate is reducible
// at this iterate), in which case y is meaningless and the caller skips
// the cycle's correction.
func gth(nb int, a, y []float64) bool {
	for k := nb - 1; k >= 1; k-- {
		s := 0.0
		for j := 0; j < k; j++ {
			s += a[k*nb+j]
		}
		if !(s > 0) {
			return false
		}
		inv := 1 / s
		for i := 0; i < k; i++ {
			aik := a[i*nb+k] * inv
			a[i*nb+k] = aik
			if aik != 0 {
				for j := 0; j < k; j++ {
					if j != i {
						a[i*nb+j] += aik * a[k*nb+j]
					}
				}
			}
		}
	}
	y[0] = 1
	total := 1.0
	for k := 1; k < nb; k++ {
		v := 0.0
		for i := 0; i < k; i++ {
			v += y[i] * a[i*nb+k]
		}
		y[k] = v
		total += v
	}
	inv := 1 / total
	for k := 0; k < nb; k++ {
		y[k] *= inv
	}
	return true
}

// coarseCorrect performs one aggregation/disaggregation step in place:
// block masses and within-block conditional weights are computed from the
// pre-smoothed iterate, the aggregated chain (rates weighted by the
// conditionals) is solved exactly, and the iterate is redistributed as
// x'_j = y[block(j)]·w_j — the coarse solution spread by the within-block
// conditionals. A block whose mass underflowed to zero falls back to
// uniform conditionals; a degenerate aggregate (gth returns false) skips
// the correction, leaving the smoothed iterate untouched for this cycle.
func (p *component) coarseCorrect(cp *coarsePlan, x, w, sums, a, y []float64) {
	nb := cp.nb
	for b := 0; b < nb; b++ {
		sums[b] = 0
	}
	for j := 0; j < p.n; j++ {
		sums[cp.blockOf[j]] += x[j]
	}
	for j := 0; j < p.n; j++ {
		b := cp.blockOf[j]
		if s := sums[b]; s > 0 {
			w[j] = x[j] / s
		} else {
			w[j] = 1 / float64(cp.blockStart[b+1]-cp.blockStart[b])
		}
	}
	for i := range a {
		a[i] = 0
	}
	for e := 0; e < len(p.inFrom); e++ {
		a[cp.cell[e]] += w[p.inFrom[e]] * p.inRate[e]
	}
	if !gth(nb, a, y) {
		return
	}
	for j := 0; j < p.n; j++ {
		x[j] = y[cp.blockOf[j]] * w[j]
	}
}

// stalledGS is the SweepAuto stall probe: a fixed number of sequential
// Gauss-Seidel sweeps on a copy of the start vector, comparing the
// residual at the check sweep with the final one. It is a pure function
// of the component, the options, and the start — it never consults
// Workers, the context, or the fault-injection sites — so solo and
// batched auto solves at any schedule agree on it. A probe that converges
// (or collapses) reports not-stalled and lets the plain path finish the
// job; the probe iterate is discarded either way.
func (p *component) stalledGS(opts SolveOptions, start []float64) bool {
	x := append([]float64(nil), start...)
	omega := opts.Omega
	if omega == 0 {
		omega = 1
	}
	var dCheck, dEnd float64
	for iter := 0; iter < multilevelProbeSweeps; iter++ {
		d := p.gsSweepOnce(x, omega)
		if !sumNormalize(x) {
			return false
		}
		if d < opts.Tolerance {
			return false
		}
		if iter == multilevelProbeCheck-1 {
			dCheck = d
		}
		dEnd = d
	}
	return dEnd > dCheck*multilevelStallRatio
}

// multilevel runs the solo IAD outer loop. Iterations are counted in
// fine-level smoothing sweeps against opts.MaxIterations — the budget
// means the same work under every scheme — and convergence is tested
// after each post-smoothing sweep, against the same guarded residual the
// plain sweeps use. The coarse step runs behind the shared panic guard
// with a fault-injection site keyed by cycle.
func (p *component) multilevel(opts SolveOptions, start []float64, cp *coarsePlan) ([]float64, solveStats, error) {
	var st solveStats
	x := append([]float64(nil), start...)
	omega := opts.Omega
	if omega == 0 {
		omega = 1
	}
	done := cancelChan(opts.Ctx)
	nb := cp.nb
	a := make([]float64, nb*nb)
	y := make([]float64, nb)
	sums := make([]float64, nb)
	w := make([]float64, p.n)
	iter := 0
	lastDelta := math.Inf(1)
	fail := func(cycle int) (*ConvergenceError, solveStats) {
		return &ConvergenceError{Iterations: iter, Cycles: cycle, Residual: lastDelta,
			Tolerance: opts.Tolerance, Sweep: SweepMultilevel, Point: -1}, st
	}
	for cycle := 0; ; cycle++ {
		for s := 0; s < multilevelPreSweeps; s++ {
			if iter >= opts.MaxIterations {
				ce, st := fail(cycle)
				return nil, st, ce
			}
			if err := pollSolve(opts.Ctx, done, iter); err != nil {
				return nil, st, err
			}
			lastDelta = p.gsSweepOnce(x, omega)
			if !sumNormalize(x) {
				return nil, st, &ConvergenceError{Iterations: iter + 1, Cycles: cycle, Residual: lastDelta,
					Tolerance: opts.Tolerance, Sweep: SweepMultilevel, Point: -1}
			}
			iter++
		}
		err := fault.Guard("ctmc.multilevel", 0, fmt.Sprintf("coarse cycle %d", cycle), func() error {
			faultinject.MaybePanic(faultinject.SiteCoarseSolve, cycle)
			p.coarseCorrect(cp, x, w, sums, a, y)
			return nil
		})
		if err != nil {
			return nil, st, err
		}
		for s := 0; s < multilevelPostSweeps; s++ {
			if iter >= opts.MaxIterations {
				ce, st := fail(cycle)
				return nil, st, ce
			}
			if err := pollSolve(opts.Ctx, done, iter); err != nil {
				return nil, st, err
			}
			lastDelta = p.gsSweepOnce(x, omega)
			if !sumNormalize(x) {
				return nil, st, &ConvergenceError{Iterations: iter + 1, Cycles: cycle, Residual: lastDelta,
					Tolerance: opts.Tolerance, Sweep: SweepMultilevel, Point: -1}
			}
			iter++
			if lastDelta < opts.Tolerance {
				return x, solveStats{Sweep: SweepMultilevel, Iterations: iter, Cycles: cycle + 1, Residual: lastDelta}, nil
			}
		}
	}
}

// stalledLanes is the batched stall probe: the same 24-sweep Gauss-Seidel
// trajectory as stalledGS, run per lane through the pinned batch kernels,
// so lane k's verdict is bit-identical to a solo probe of that lane's
// chain at tolerance tol[k]. A lane that converges or collapses during
// the probe is frozen (its remaining probe sweeps are skipped, which
// cannot affect other lanes) and reported not-stalled.
func (bc *batchComponent) stalledLanes(tol []float64, start []float64) []bool {
	K := bc.k
	x := bc.spread(start)
	done := make([]bool, K)
	delta := make([]float64, K)
	sums := make([]float64, K)
	scale := make([]float64, K)
	dCheck := make([]float64, K)
	dEnd := make([]float64, K)
	stalled := make([]bool, K)
	for iter := 0; iter < multilevelProbeSweeps; iter++ {
		for k := 0; k < K; k++ {
			delta[k] = 0
		}
		bc.sweepGSWidth(x, delta, done)
		bc.laneSums(x, sums)
		for k := 0; k < K; k++ {
			scale[k] = 1
			if done[k] {
				continue
			}
			if sums[k] <= 0 {
				done[k] = true
				continue
			}
			scale[k] = 1 / sums[k]
		}
		bc.scaleLanes(x, scale)
		for k := 0; k < K; k++ {
			if done[k] {
				continue
			}
			if delta[k] < tol[k] {
				done[k] = true
				continue
			}
			if iter == multilevelProbeCheck-1 {
				dCheck[k] = delta[k]
			}
			dEnd[k] = delta[k]
		}
	}
	for k := 0; k < K; k++ {
		stalled[k] = !done[k] && dEnd[k] > dCheck[k]*multilevelStallRatio
	}
	return stalled
}

// coarseCorrectLane is coarseCorrect for one lane of a batch: identical
// arithmetic in identical order over the lane's strided column, so the
// corrected column is bit-identical to the solo step at that lane's
// rates.
func (bc *batchComponent) coarseCorrectLane(cp *coarsePlan, k int, x, w, sums, a, y []float64) {
	K := bc.k
	nb := cp.nb
	for b := 0; b < nb; b++ {
		sums[b] = 0
	}
	for j := 0; j < bc.n; j++ {
		sums[cp.blockOf[j]] += x[j*K+k]
	}
	for j := 0; j < bc.n; j++ {
		b := cp.blockOf[j]
		if s := sums[b]; s > 0 {
			w[j] = x[j*K+k] / s
		} else {
			w[j] = 1 / float64(cp.blockStart[b+1]-cp.blockStart[b])
		}
	}
	for i := range a {
		a[i] = 0
	}
	for e := 0; e < len(bc.inFrom); e++ {
		a[cp.cell[e]] += w[bc.inFrom[e]] * bc.rate[e*K+k]
	}
	if !gth(nb, a, y) {
		return
	}
	for j := 0; j < bc.n; j++ {
		x[j*K+k] = y[cp.blockOf[j]] * w[j]
	}
}

// multilevelBatch runs the IAD outer loop on every lane of the batch at
// once: the smoothing sweeps go through the pinned batch Gauss-Seidel
// kernels (one CSR traversal feeds all lanes), the per-lane coarse solves
// share the cached coarse structure and run in ascending lane order, and
// every live lane follows the solo multilevel schedule exactly — the same
// sweeps, the same correction points, the same post-smoothing residual
// tests — so each lane's result is bit-identical to a solo multilevel
// solve at that lane's rates. The equalized outer cycles are what shrink
// the batched kernel's lane skew: lanes converge within a handful of
// shared cycles instead of straggling for thousands of extra sweeps. The
// batch is never compacted (cycles are few; the wide kernels with frozen
// lanes skipped are already within a constant of optimal).
func (bc *batchComponent) multilevelBatch(solve SolveOptions, tol []float64, start []float64, cp *coarsePlan) ([][]float64, []*ConvergenceError, error) {
	K := bc.k
	out := make([][]float64, K)
	errs := make([]*ConvergenceError, K)
	cancel := cancelChan(solve.Ctx)
	x := bc.spread(start)
	done := make([]bool, K)
	remaining := K
	delta := make([]float64, K)
	sums := make([]float64, K)
	scale := make([]float64, K)
	lastDelta := make([]float64, K)
	for k := range lastDelta {
		lastDelta[k] = math.Inf(1)
	}
	nb := cp.nb
	a := make([]float64, nb*nb)
	y := make([]float64, nb)
	bsums := make([]float64, nb)
	w := make([]float64, bc.n)

	iter := 0
	cycles := 0
	// smooth runs one batched smoothing sweep (sweep + per-lane
	// normalization), mirroring the solo pre/post loop body; check selects
	// the post-smoothing residual test.
	smooth := func(cycle int, check bool) (bool, error) {
		if err := pollSolve(solve.Ctx, cancel, iter); err != nil {
			return false, err
		}
		for k := 0; k < K; k++ {
			delta[k] = 0
		}
		bc.sweepGSWidth(x, delta, done)
		bc.laneSums(x, sums)
		for k := 0; k < K; k++ {
			scale[k] = 1
			if done[k] {
				continue
			}
			if sums[k] <= 0 {
				errs[k] = &ConvergenceError{Iterations: iter + 1, Cycles: cycle, Residual: delta[k],
					Tolerance: tol[k], Sweep: SweepMultilevel, Point: -1}
				done[k] = true
				remaining--
				continue
			}
			scale[k] = 1 / sums[k]
			lastDelta[k] = delta[k]
		}
		bc.scaleLanes(x, scale)
		iter++
		if check {
			for k := 0; k < K; k++ {
				if done[k] || !(delta[k] < tol[k]) {
					continue
				}
				col := make([]float64, bc.n)
				for j := 0; j < bc.n; j++ {
					col[j] = x[j*K+k]
				}
				out[k] = col
				done[k] = true
				remaining--
			}
		}
		return true, nil
	}
outer:
	for cycle := 0; remaining > 0; cycle++ {
		cycles = cycle
		for s := 0; s < multilevelPreSweeps; s++ {
			if iter >= solve.MaxIterations {
				break outer
			}
			ok, err := smooth(cycle, false)
			if err != nil {
				return nil, nil, err
			}
			if !ok || remaining == 0 {
				continue outer
			}
		}
		for k := 0; k < K; k++ {
			if done[k] {
				continue
			}
			k := k
			err := fault.Guard("ctmc.multilevel", k, fmt.Sprintf("coarse cycle %d lane %d", cycle, k), func() error {
				faultinject.MaybePanic(faultinject.SiteCoarseSolve, cycle)
				bc.coarseCorrectLane(cp, k, x, w, bsums, a, y)
				return nil
			})
			if err != nil {
				return nil, nil, err
			}
		}
		for s := 0; s < multilevelPostSweeps; s++ {
			if iter >= solve.MaxIterations {
				break outer
			}
			if _, err := smooth(cycle, true); err != nil {
				return nil, nil, err
			}
			if remaining == 0 {
				break outer
			}
		}
		cycles = cycle + 1
	}
	for k := 0; k < K; k++ {
		if !done[k] {
			errs[k] = &ConvergenceError{Iterations: iter, Cycles: cycles, Residual: lastDelta[k],
				Tolerance: tol[k], Sweep: SweepMultilevel, Point: -1}
		}
	}
	return out, errs, nil
}
