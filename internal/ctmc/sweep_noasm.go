//go:build !amd64

package ctmc

// sweepGS8Fast has no vectorized kernel on this architecture; the caller
// falls back to the scalar sweepGS8, which computes the identical bits.
func (bc *batchComponent) sweepGS8Fast(x, delta []float64, done []bool) bool {
	return false
}
