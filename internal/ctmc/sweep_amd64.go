//go:build amd64

package ctmc

import "unsafe"

// sweepGS8Args marshals one eight-lane Gauss-Seidel sweep for the
// vectorized kernel. Every field is one 8-byte word; the assembly loads
// them at fixed offsets (0, 8, 16, ... in declaration order), so the
// field order here and in sweep_amd64.s must stay in sync.
type sweepGS8Args struct {
	n        int64          // rows in the component
	inStart  unsafe.Pointer // *int32, n+1 CSR row boundaries
	inFrom   unsafe.Pointer // *int32, in-edge source rows
	rate     unsafe.Pointer // *float64, lane-interleaved in-edge rates
	invExit  unsafe.Pointer // *float64, lane-interleaved 1/exit
	x        unsafe.Pointer // *float64, lane-interleaved iterate slab
	delta    unsafe.Pointer // *float64, 8 per-lane residual maxima (out)
	dead     unsafe.Pointer // *uint64, 8 blend masks: sign bit set = lane frozen
	liveMask uint64         // bit k set = lane k live
}

// sweepGS8AVX runs one full eight-lane Gauss-Seidel sweep with AVX:
// two 4-double accumulator vectors per row, VMULPD/VADDPD for the inflow
// terms, VMULPD by the inverse exit rate, and the residual guard as a
// vector compare whose rare hits fall back to scalar divides. Every
// operation is the same IEEE-754 double multiply/add/subtract the scalar
// kernel performs, per lane in the same order (no FMA contraction, no
// reassociation), so the updated slab and residual maxima are
// bit-identical to sweepGS8. Frozen lanes are excluded by blending their
// old column values back on store and masking them out of the residual
// compare. Implemented in sweep_amd64.s.
//
//go:noescape
func sweepGS8AVX(a *sweepGS8Args)

// cpuidLeaf and xgetbv0 are the tiny assembly probes behind detectAVX.
//
//go:noescape
func cpuidLeaf(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv0() (eax, edx uint32)

// haveAVX reports whether the CPU and the OS both support 256-bit AVX
// state, the only ISA extension sweepGS8AVX needs.
var haveAVX = detectAVX()

func detectAVX() bool {
	maxLeaf, _, _, _ := cpuidLeaf(0, 0)
	if maxLeaf < 1 {
		return false
	}
	_, _, ecx, _ := cpuidLeaf(1, 0)
	const osxsave, avx = 1 << 27, 1 << 28
	if ecx&osxsave == 0 || ecx&avx == 0 {
		return false
	}
	xcr0, _ := xgetbv0()
	return xcr0&6 == 6 // XMM and YMM state enabled by the OS
}

// sweepGS8Fast runs the sweep in the vectorized kernel when the machine
// supports it, reporting whether it did. Rows with zero exit rate never
// occur in a multi-state bottom component, but the scalar kernels guard
// against them per row; the vector kernel instead declines such batches
// up front (allPos), keeping the guarded behaviour on one path.
func (bc *batchComponent) sweepGS8Fast(x, delta []float64, done []bool) bool {
	if !haveAVX || !bc.allPos || bc.n == 0 || len(bc.inFrom) == 0 {
		return false
	}
	var dead [8]uint64
	live := uint64(0)
	for k := 0; k < 8; k++ {
		if done[k] {
			dead[k] = 1 << 63
		} else {
			live |= 1 << k
		}
	}
	a := sweepGS8Args{
		n:        int64(bc.n),
		inStart:  unsafe.Pointer(&bc.inStart[0]),
		inFrom:   unsafe.Pointer(&bc.inFrom[0]),
		rate:     unsafe.Pointer(&bc.rate[0]),
		invExit:  unsafe.Pointer(&bc.invExit[0]),
		x:        unsafe.Pointer(&x[0]),
		delta:    unsafe.Pointer(&delta[0]),
		dead:     unsafe.Pointer(&dead[0]),
		liveMask: live,
	}
	sweepGS8AVX(&a)
	return true
}
