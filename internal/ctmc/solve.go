package ctmc

import (
	"errors"
	"fmt"
	"math"
	"runtime"
)

// Sweep selects the iteration scheme SteadyState uses on the recurrent
// component.
type Sweep int

const (
	// SweepAuto picks Jacobi for components of at least JacobiThreshold
	// states when more than one worker is available (where the parallel
	// sweep pays off) and Gauss-Seidel otherwise, falling back to
	// Gauss-Seidel if Jacobi fails to converge.
	SweepAuto Sweep = iota
	// SweepGaussSeidel forces the sequential Gauss-Seidel sweep.
	SweepGaussSeidel
	// SweepJacobi forces the damped Jacobi sweep, whose row updates are
	// independent and therefore partition across workers while staying
	// bit-identical at any worker count.
	SweepJacobi
)

// String returns the sweep mode's canonical name.
func (s Sweep) String() string {
	switch s {
	case SweepGaussSeidel:
		return "gauss-seidel"
	case SweepJacobi:
		return "jacobi"
	default:
		return "auto"
	}
}

// SolveOptions tunes the steady-state solver.
type SolveOptions struct {
	// Tolerance is the convergence threshold on the max relative change
	// per sweep (default 1e-12).
	Tolerance float64
	// MaxIterations bounds the sweeps (default 200000).
	MaxIterations int
	// Sweep selects the iteration scheme (default SweepAuto: Jacobi when
	// the component reaches JacobiThreshold states and more than one
	// worker is available, Gauss-Seidel otherwise).
	Sweep Sweep
	// Workers bounds the Jacobi worker pool (0 = GOMAXPROCS). The solver
	// result is bit-identical at any value: each row's inflow is summed in
	// its fixed CSR order regardless of which worker owns the row, and the
	// normalization sum is one canonical sequential pass.
	Workers int
	// JacobiThreshold is the component size at which SweepAuto switches
	// from Gauss-Seidel to Jacobi (default 1024).
	JacobiThreshold int
	// WarmStart optionally seeds the iteration with a previous solution: a
	// distribution over all tangible states (length N), typically the
	// steady state of the same chain at nearby rate values. The solver
	// projects it onto the recurrent component and renormalizes; when the
	// length is wrong or the projection carries no mass it falls back to
	// the uniform start. Warm-starting changes the iteration trajectory —
	// and with it the last bits of the converged vector — so deterministic
	// sweeps must derive the seed deterministically: solve one designated
	// anchor point cold and seed every other point from the anchor's
	// solution, independent of worker count and scheduling (see
	// core.Phase2Sweep).
	WarmStart []float64
}

// ErrNoConvergence reports that the iterative solver hit its iteration
// bound.
var ErrNoConvergence = errors.New("ctmc: steady-state solver did not converge")

// ConvergenceError is the concrete failure SteadyState returns when the
// iteration gives up: it wraps ErrNoConvergence (so errors.Is keeps
// working) and carries the sweep mode, the iteration count, and the last
// residual, making sweep failures diagnosable at the call site.
type ConvergenceError struct {
	// Iterations is the number of sweeps performed.
	Iterations int
	// Residual is the max relative change of the last sweep.
	Residual float64
	// Tolerance is the convergence threshold that was not reached.
	Tolerance float64
	// Sweep is the iteration scheme that failed (SweepGaussSeidel or
	// SweepJacobi, never SweepAuto).
	Sweep Sweep
}

// Error implements the error interface.
func (e *ConvergenceError) Error() string {
	return fmt.Sprintf("%v after %d iterations (%s sweep, residual %.3g, tolerance %.3g)",
		ErrNoConvergence, e.Iterations, e.Sweep, e.Residual, e.Tolerance)
}

// Unwrap makes errors.Is(err, ErrNoConvergence) hold.
func (e *ConvergenceError) Unwrap() error { return ErrNoConvergence }

// SteadyState computes the long-run probability distribution over tangible
// states. The chain may be reducible as long as a single bottom strongly
// connected component is reachable from the initial distribution (the
// usual case for models with a start-up transient); probability then
// concentrates on that component.
func (c *CTMC) SteadyState(opts SolveOptions) ([]float64, error) {
	if opts.Tolerance <= 0 {
		opts.Tolerance = 1e-12
	}
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 200000
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.JacobiThreshold <= 0 {
		opts.JacobiThreshold = 1024
	}

	bsccs := c.bottomSCCs()
	reached := c.reachableFromInitial()
	var target []int
	for _, comp := range bsccs {
		if reached[comp[0]] {
			if target != nil {
				return nil, ErrMultipleBSCC
			}
			target = comp
		}
	}
	if target == nil {
		return nil, fmt.Errorf("ctmc: no reachable bottom component (internal error)")
	}

	// An absorbing single state gets all the probability.
	pi := make([]float64, c.N)
	if len(target) == 1 {
		pi[target[0]] = 1
		return pi, nil
	}

	comp := c.buildComponent(target)
	start := comp.uniform()
	if len(opts.WarmStart) == c.N {
		if ws := projectStart(opts.WarmStart, target); ws != nil {
			start = ws
		}
	}
	sweep := opts.Sweep
	if sweep == SweepAuto {
		// Jacobi needs fewer wall-clock sweeps only when rows actually
		// spread across workers; damped Jacobi converges slower than
		// Gauss-Seidel per sweep, so with one worker — or a component too
		// small to amortize the pool — the sequential sweep wins.
		if len(target) >= opts.JacobiThreshold && opts.Workers > 1 {
			sweep = SweepJacobi
		} else {
			sweep = SweepGaussSeidel
		}
	}
	var (
		x   []float64
		err error
	)
	if sweep == SweepJacobi {
		x, err = comp.jacobi(opts, start)
		if err != nil && opts.Sweep == SweepAuto && errors.Is(err, ErrNoConvergence) {
			// Auto mode falls back to the sequential sweep: Gauss-Seidel's
			// sequential substitution converges on chains where even the
			// damped simultaneous update crawls.
			x, err = comp.gaussSeidel(opts, start)
		}
	} else {
		x, err = comp.gaussSeidel(opts, start)
	}
	if err != nil {
		return nil, err
	}
	for j, s := range target {
		pi[s] = x[j]
	}
	return pi, nil
}

// component is the recurrent component in local coordinates: the balance
// equations pi_j * exit_j = sum_{i -> j} pi_i * q_ij restricted to the
// component, with the incoming adjacency flattened CSR-style — the
// incoming edges of local state j are inFrom/inRate[inStart[j]:
// inStart[j+1]]. Two flat arrays instead of a slice-of-slices keep the
// per-sweep inner loop on contiguous memory and cost a handful of
// allocations per solve, however often a sweep rebuilds the chain.
type component struct {
	n       int
	inStart []int32
	inFrom  []int32
	inRate  []float64
	exit    []float64
}

func (c *CTMC) buildComponent(target []int) *component {
	inComp := make([]bool, c.N)
	local := make([]int, c.N) // global -> local index
	for li, s := range target {
		inComp[s] = true
		local[s] = li
	}
	p := &component{n: len(target)}
	p.inStart = make([]int32, len(target)+1)
	for _, s := range target {
		for _, e := range c.Rows[s] {
			if inComp[e.Col] {
				p.inStart[local[e.Col]+1]++
			}
		}
	}
	for j := 0; j < len(target); j++ {
		p.inStart[j+1] += p.inStart[j]
	}
	p.inFrom = make([]int32, p.inStart[len(target)])
	p.inRate = make([]float64, p.inStart[len(target)])
	fill := make([]int32, len(target))
	copy(fill, p.inStart[:len(target)])
	for _, s := range target {
		for _, e := range c.Rows[s] {
			if inComp[e.Col] {
				j := local[e.Col]
				p.inFrom[fill[j]] = int32(local[s])
				p.inRate[fill[j]] = e.Rate
				fill[j]++
			}
		}
	}
	p.exit = make([]float64, len(target))
	for j, s := range target {
		p.exit[j] = c.Exit[s]
	}
	return p
}

// uniform returns the default uniform starting vector.
func (p *component) uniform() []float64 {
	x := make([]float64, p.n)
	for i := range x {
		x[i] = 1 / float64(p.n)
	}
	return x
}

// projectStart restricts a warm-start distribution over all tangible
// states to the recurrent component's local coordinates and renormalizes
// it. It returns nil when the projection carries no positive mass (or any
// non-finite value), in which case the caller falls back to the uniform
// start.
func projectStart(ws []float64, target []int) []float64 {
	x := make([]float64, len(target))
	sum := 0.0
	for j, s := range target {
		v := ws[s]
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return nil
		}
		x[j] = v
		sum += v
	}
	if !(sum > 0) {
		return nil
	}
	for j := range x {
		x[j] /= sum
	}
	return x
}

// gaussSeidel runs the sequential Gauss-Seidel sweep from the given
// starting vector: each row update reads the in-place vector, so updates
// within a sweep feed forward.
func (p *component) gaussSeidel(opts SolveOptions, start []float64) ([]float64, error) {
	x := append([]float64(nil), start...)
	maxDelta := math.Inf(1)
	for iter := 0; iter < opts.MaxIterations; iter++ {
		maxDelta = 0.0
		for j := 0; j < p.n; j++ {
			if p.exit[j] <= 0 {
				continue
			}
			inflow := 0.0
			for k := p.inStart[j]; k < p.inStart[j+1]; k++ {
				inflow += x[p.inFrom[k]] * p.inRate[k]
			}
			next := inflow / p.exit[j]
			d := math.Abs(next - x[j])
			if rel := d / math.Max(next, 1e-300); rel > maxDelta {
				maxDelta = rel
			}
			x[j] = next
		}
		// Normalize to avoid drift.
		sum := 0.0
		for _, v := range x {
			sum += v
		}
		if sum <= 0 {
			return nil, &ConvergenceError{Iterations: iter + 1, Residual: maxDelta, Tolerance: opts.Tolerance, Sweep: SweepGaussSeidel}
		}
		for j := range x {
			x[j] /= sum
		}
		if maxDelta < opts.Tolerance {
			return x, nil
		}
	}
	return nil, &ConvergenceError{Iterations: opts.MaxIterations, Residual: maxDelta, Tolerance: opts.Tolerance, Sweep: SweepGaussSeidel}
}

// jacobiOmega damps the Jacobi update: x' = (1-ω)·x + ω·inflow/exit.
// Undamped Jacobi is the power method on the embedded jump chain (in flow
// coordinates) and oscillates forever when that chain is periodic — which
// birth-death-like queueing chains are. Damping with ω = 1/2 iterates the
// lazy chain instead, whose spectrum lies strictly inside the unit disk
// away from 1, so the sweep converges to the same fixed point.
const jacobiOmega = 0.5

// jacobi runs the damped Jacobi sweep. Every row update reads only the
// previous sweep's vector, so rows partition freely across workers; the
// per-row inflow is summed in its fixed CSR order no matter which worker
// owns the row, maxDelta is an order-independent max-reduction over
// per-block maxima, and the normalization sum is one canonical sequential
// pass — the iterate is bit-identical at any worker count.
func (p *component) jacobi(opts SolveOptions, start []float64) ([]float64, error) {
	x := append([]float64(nil), start...)
	next := make([]float64, p.n)

	workers := opts.Workers
	if workers > p.n {
		workers = p.n
	}
	blockSize := (p.n + workers - 1) / workers
	nblocks := (p.n + blockSize - 1) / blockSize
	blockDelta := make([]float64, nblocks)

	sweepBlock := func(b int) {
		lo := b * blockSize
		hi := lo + blockSize
		if hi > p.n {
			hi = p.n
		}
		d := 0.0
		for j := lo; j < hi; j++ {
			nx := x[j]
			if p.exit[j] > 0 {
				inflow := 0.0
				for k := p.inStart[j]; k < p.inStart[j+1]; k++ {
					inflow += x[p.inFrom[k]] * p.inRate[k]
				}
				nx = (1-jacobiOmega)*x[j] + jacobiOmega*(inflow/p.exit[j])
			}
			if rel := math.Abs(nx-x[j]) / math.Max(nx, 1e-300); rel > d {
				d = rel
			}
			next[j] = nx
		}
		blockDelta[b] = d
	}

	// Persistent pool: workers stay parked on the work channel between
	// sweeps, so a sweep costs two channel hops per block instead of a
	// goroutine spawn. The channel operations order each sweep's vector
	// swap before the block work and the block work before the reduction.
	var work, done chan int
	if nblocks > 1 {
		work = make(chan int)
		done = make(chan int)
		for w := 0; w < workers; w++ {
			go func() {
				for b := range work {
					sweepBlock(b)
					done <- b
				}
			}()
		}
		defer close(work)
	}

	maxDelta := math.Inf(1)
	for iter := 0; iter < opts.MaxIterations; iter++ {
		if nblocks > 1 {
			for b := 0; b < nblocks; b++ {
				work <- b
			}
			for b := 0; b < nblocks; b++ {
				<-done
			}
		} else {
			sweepBlock(0)
		}
		maxDelta = 0.0
		for _, d := range blockDelta {
			if d > maxDelta {
				maxDelta = d
			}
		}
		// Normalize to avoid drift: one canonical sequential sum.
		sum := 0.0
		for _, v := range next {
			sum += v
		}
		if sum <= 0 {
			return nil, &ConvergenceError{Iterations: iter + 1, Residual: maxDelta, Tolerance: opts.Tolerance, Sweep: SweepJacobi}
		}
		inv := 1 / sum
		for j := range next {
			next[j] *= inv
		}
		x, next = next, x
		if maxDelta < opts.Tolerance {
			return x, nil
		}
	}
	return nil, &ConvergenceError{Iterations: opts.MaxIterations, Residual: maxDelta, Tolerance: opts.Tolerance, Sweep: SweepJacobi}
}

// reachableFromInitial returns the set of tangible states reachable from
// the support of the initial distribution.
func (c *CTMC) reachableFromInitial() []bool {
	seen := make([]bool, c.N)
	var stack []int
	for s, p := range c.Initial {
		if p > 0 && !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range c.Rows[s] {
			if !seen[e.Col] {
				seen[e.Col] = true
				stack = append(stack, e.Col)
			}
		}
	}
	return seen
}

// bottomSCCs returns the strongly connected components of the tangible
// chain that have no outgoing edges (Tarjan, iterative).
func (c *CTMC) bottomSCCs() [][]int {
	n := c.N
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = -1
		comp[i] = -1
	}
	var stack []int
	var sccs [][]int
	counter := 0

	type frame struct {
		v, ei int
	}
	for start := 0; start < n; start++ {
		if index[start] >= 0 {
			continue
		}
		frames := []frame{{v: start}}
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(c.Rows[f.v]) {
				w := c.Rows[f.v][f.ei].Col
				f.ei++
				if index[w] < 0 {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var scc []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = len(sccs)
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	// Bottom components: no edge leaves the component.
	isBottom := make([]bool, len(sccs))
	for i := range isBottom {
		isBottom[i] = true
	}
	for s := 0; s < n; s++ {
		for _, e := range c.Rows[s] {
			if comp[e.Col] != comp[s] {
				isBottom[comp[s]] = false
			}
		}
	}
	var out [][]int
	for i, scc := range sccs {
		if isBottom[i] {
			out = append(out, scc)
		}
	}
	return out
}

// BottomSCCs returns the bottom strongly connected components of the
// tangible chain — useful for diagnosing reducible models.
func (c *CTMC) BottomSCCs() [][]int { return c.bottomSCCs() }
