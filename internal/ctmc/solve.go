package ctmc

import (
	"errors"
	"fmt"
	"math"
)

// SolveOptions tunes the steady-state solver.
type SolveOptions struct {
	// Tolerance is the convergence threshold on the max relative change
	// per sweep (default 1e-12).
	Tolerance float64
	// MaxIterations bounds the Gauss-Seidel sweeps (default 200000).
	MaxIterations int
}

// ErrNoConvergence reports that the iterative solver hit its iteration
// bound.
var ErrNoConvergence = errors.New("ctmc: steady-state solver did not converge")

// ConvergenceError is the concrete failure SteadyState returns when the
// Gauss-Seidel iteration gives up: it wraps ErrNoConvergence (so
// errors.Is keeps working) and carries the iteration count and the last
// residual, making sweep failures diagnosable at the call site.
type ConvergenceError struct {
	// Iterations is the number of sweeps performed.
	Iterations int
	// Residual is the max relative change of the last sweep.
	Residual float64
	// Tolerance is the convergence threshold that was not reached.
	Tolerance float64
}

// Error implements the error interface.
func (e *ConvergenceError) Error() string {
	return fmt.Sprintf("%v after %d iterations (residual %.3g, tolerance %.3g)",
		ErrNoConvergence, e.Iterations, e.Residual, e.Tolerance)
}

// Unwrap makes errors.Is(err, ErrNoConvergence) hold.
func (e *ConvergenceError) Unwrap() error { return ErrNoConvergence }

// SteadyState computes the long-run probability distribution over tangible
// states. The chain may be reducible as long as a single bottom strongly
// connected component is reachable from the initial distribution (the
// usual case for models with a start-up transient); probability then
// concentrates on that component.
func (c *CTMC) SteadyState(opts SolveOptions) ([]float64, error) {
	if opts.Tolerance <= 0 {
		opts.Tolerance = 1e-12
	}
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 200000
	}

	bsccs := c.bottomSCCs()
	reached := c.reachableFromInitial()
	var target []int
	for _, comp := range bsccs {
		if reached[comp[0]] {
			if target != nil {
				return nil, ErrMultipleBSCC
			}
			target = comp
		}
	}
	if target == nil {
		return nil, fmt.Errorf("ctmc: no reachable bottom component (internal error)")
	}

	// An absorbing single state gets all the probability.
	pi := make([]float64, c.N)
	if len(target) == 1 {
		pi[target[0]] = 1
		return pi, nil
	}

	// Gauss-Seidel on the balance equations restricted to the component:
	// pi_j * exit_j = sum_{i -> j} pi_i * q_ij.
	inComp := make([]bool, c.N)
	local := make([]int, c.N) // global -> local index
	for li, s := range target {
		inComp[s] = true
		local[s] = li
	}
	// Incoming adjacency within the component, flattened CSR-style: the
	// incoming edges of local state j are inFrom/inRate[inStart[j]:
	// inStart[j+1]]. Two flat arrays instead of a slice-of-slices keep the
	// per-sweep inner loop on contiguous memory and cost three allocations
	// per solve, however often a sweep rebuilds the chain.
	inStart := make([]int32, len(target)+1)
	for _, s := range target {
		for _, e := range c.Rows[s] {
			if inComp[e.Col] {
				inStart[local[e.Col]+1]++
			}
		}
	}
	for j := 0; j < len(target); j++ {
		inStart[j+1] += inStart[j]
	}
	inFrom := make([]int32, inStart[len(target)])
	inRate := make([]float64, inStart[len(target)])
	fill := make([]int32, len(target))
	copy(fill, inStart[:len(target)])
	for _, s := range target {
		for _, e := range c.Rows[s] {
			if inComp[e.Col] {
				j := local[e.Col]
				inFrom[fill[j]] = int32(local[s])
				inRate[fill[j]] = e.Rate
				fill[j]++
			}
		}
	}
	x := make([]float64, len(target))
	for i := range x {
		x[i] = 1 / float64(len(target))
	}
	maxDelta := math.Inf(1)
	for iter := 0; iter < opts.MaxIterations; iter++ {
		maxDelta = 0.0
		for j := range target {
			exit := c.Exit[target[j]]
			if exit <= 0 {
				continue
			}
			inflow := 0.0
			for k := inStart[j]; k < inStart[j+1]; k++ {
				inflow += x[inFrom[k]] * inRate[k]
			}
			next := inflow / exit
			d := math.Abs(next - x[j])
			if rel := d / math.Max(next, 1e-300); rel > maxDelta {
				maxDelta = rel
			}
			x[j] = next
		}
		// Normalize to avoid drift.
		sum := 0.0
		for _, v := range x {
			sum += v
		}
		if sum <= 0 {
			return nil, &ConvergenceError{Iterations: iter + 1, Residual: maxDelta, Tolerance: opts.Tolerance}
		}
		for j := range x {
			x[j] /= sum
		}
		if maxDelta < opts.Tolerance {
			for j, s := range target {
				pi[s] = x[j]
			}
			return pi, nil
		}
	}
	return nil, &ConvergenceError{Iterations: opts.MaxIterations, Residual: maxDelta, Tolerance: opts.Tolerance}
}

// reachableFromInitial returns the set of tangible states reachable from
// the support of the initial distribution.
func (c *CTMC) reachableFromInitial() []bool {
	seen := make([]bool, c.N)
	var stack []int
	for s, p := range c.Initial {
		if p > 0 && !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range c.Rows[s] {
			if !seen[e.Col] {
				seen[e.Col] = true
				stack = append(stack, e.Col)
			}
		}
	}
	return seen
}

// bottomSCCs returns the strongly connected components of the tangible
// chain that have no outgoing edges (Tarjan, iterative).
func (c *CTMC) bottomSCCs() [][]int {
	n := c.N
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = -1
		comp[i] = -1
	}
	var stack []int
	var sccs [][]int
	counter := 0

	type frame struct {
		v, ei int
	}
	for start := 0; start < n; start++ {
		if index[start] >= 0 {
			continue
		}
		frames := []frame{{v: start}}
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(c.Rows[f.v]) {
				w := c.Rows[f.v][f.ei].Col
				f.ei++
				if index[w] < 0 {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var scc []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = len(sccs)
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	// Bottom components: no edge leaves the component.
	isBottom := make([]bool, len(sccs))
	for i := range isBottom {
		isBottom[i] = true
	}
	for s := 0; s < n; s++ {
		for _, e := range c.Rows[s] {
			if comp[e.Col] != comp[s] {
				isBottom[comp[s]] = false
			}
		}
	}
	var out [][]int
	for i, scc := range sccs {
		if isBottom[i] {
			out = append(out, scc)
		}
	}
	return out
}

// BottomSCCs returns the bottom strongly connected components of the
// tangible chain — useful for diagnosing reducible models.
func (c *CTMC) BottomSCCs() [][]int { return c.bottomSCCs() }
