package ctmc

import (
	"errors"
	"fmt"
	"math"
)

// SolveOptions tunes the steady-state solver.
type SolveOptions struct {
	// Tolerance is the convergence threshold on the max relative change
	// per sweep (default 1e-12).
	Tolerance float64
	// MaxIterations bounds the Gauss-Seidel sweeps (default 200000).
	MaxIterations int
}

// ErrNoConvergence reports that the iterative solver hit its iteration
// bound.
var ErrNoConvergence = errors.New("ctmc: steady-state solver did not converge")

// SteadyState computes the long-run probability distribution over tangible
// states. The chain may be reducible as long as a single bottom strongly
// connected component is reachable from the initial distribution (the
// usual case for models with a start-up transient); probability then
// concentrates on that component.
func (c *CTMC) SteadyState(opts SolveOptions) ([]float64, error) {
	if opts.Tolerance <= 0 {
		opts.Tolerance = 1e-12
	}
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 200000
	}

	bsccs := c.bottomSCCs()
	reached := c.reachableFromInitial()
	var target []int
	for _, comp := range bsccs {
		if reached[comp[0]] {
			if target != nil {
				return nil, ErrMultipleBSCC
			}
			target = comp
		}
	}
	if target == nil {
		return nil, fmt.Errorf("ctmc: no reachable bottom component (internal error)")
	}

	// An absorbing single state gets all the probability.
	pi := make([]float64, c.N)
	if len(target) == 1 {
		pi[target[0]] = 1
		return pi, nil
	}

	// Gauss-Seidel on the balance equations restricted to the component:
	// pi_j * exit_j = sum_{i -> j} pi_i * q_ij.
	inComp := make([]bool, c.N)
	local := make([]int, c.N) // global -> local index
	for li, s := range target {
		inComp[s] = true
		local[s] = li
	}
	// Incoming adjacency within the component.
	type inEdge struct {
		from int // local index
		rate float64
	}
	incoming := make([][]inEdge, len(target))
	for _, s := range target {
		for _, e := range c.Rows[s] {
			if inComp[e.Col] {
				incoming[local[e.Col]] = append(incoming[local[e.Col]],
					inEdge{from: local[s], rate: e.Rate})
			}
		}
	}
	x := make([]float64, len(target))
	for i := range x {
		x[i] = 1 / float64(len(target))
	}
	for iter := 0; iter < opts.MaxIterations; iter++ {
		maxDelta := 0.0
		for j := range target {
			exit := c.Exit[target[j]]
			if exit <= 0 {
				continue
			}
			inflow := 0.0
			for _, e := range incoming[j] {
				inflow += x[e.from] * e.rate
			}
			next := inflow / exit
			d := math.Abs(next - x[j])
			if rel := d / math.Max(next, 1e-300); rel > maxDelta {
				maxDelta = rel
			}
			x[j] = next
		}
		// Normalize to avoid drift.
		sum := 0.0
		for _, v := range x {
			sum += v
		}
		if sum <= 0 {
			return nil, ErrNoConvergence
		}
		for j := range x {
			x[j] /= sum
		}
		if maxDelta < opts.Tolerance {
			for j, s := range target {
				pi[s] = x[j]
			}
			return pi, nil
		}
	}
	return nil, ErrNoConvergence
}

// reachableFromInitial returns the set of tangible states reachable from
// the support of the initial distribution.
func (c *CTMC) reachableFromInitial() []bool {
	seen := make([]bool, c.N)
	var stack []int
	for s, p := range c.Initial {
		if p > 0 && !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range c.Rows[s] {
			if !seen[e.Col] {
				seen[e.Col] = true
				stack = append(stack, e.Col)
			}
		}
	}
	return seen
}

// bottomSCCs returns the strongly connected components of the tangible
// chain that have no outgoing edges (Tarjan, iterative).
func (c *CTMC) bottomSCCs() [][]int {
	n := c.N
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = -1
		comp[i] = -1
	}
	var stack []int
	var sccs [][]int
	counter := 0

	type frame struct {
		v, ei int
	}
	for start := 0; start < n; start++ {
		if index[start] >= 0 {
			continue
		}
		frames := []frame{{v: start}}
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(c.Rows[f.v]) {
				w := c.Rows[f.v][f.ei].Col
				f.ei++
				if index[w] < 0 {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var scc []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = len(sccs)
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	// Bottom components: no edge leaves the component.
	isBottom := make([]bool, len(sccs))
	for i := range isBottom {
		isBottom[i] = true
	}
	for s := 0; s < n; s++ {
		for _, e := range c.Rows[s] {
			if comp[e.Col] != comp[s] {
				isBottom[comp[s]] = false
			}
		}
	}
	var out [][]int
	for i, scc := range sccs {
		if isBottom[i] {
			out = append(out, scc)
		}
	}
	return out
}

// BottomSCCs returns the bottom strongly connected components of the
// tangible chain — useful for diagnosing reducible models.
func (c *CTMC) BottomSCCs() [][]int { return c.bottomSCCs() }
