package ctmc

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/fault"
	"repro/internal/faultinject"
)

// Sweep selects the iteration scheme SteadyState uses on the recurrent
// component.
type Sweep int

const (
	// SweepAuto picks the scheme by an explicit, scheduling-independent
	// rule, identical in the solo and batched paths:
	//
	//  1. Jacobi for components of at least JacobiThreshold states when
	//     more than one worker is available (where the parallel sweep
	//     pays off), or of at least JacobiThreshold×16 states even with
	//     one worker (where the batched/tiled kernels' cache behavior
	//     pays off regardless of parallelism), falling back to
	//     Gauss-Seidel if Jacobi fails to converge;
	//  2. Gauss-Seidel otherwise;
	//  3. on components of at least 64 states, a fixed sequential
	//     Gauss-Seidel probe (24 sweeps on a copy of the start vector)
	//     first tests for stalled residual decay; a stalled component is
	//     solved with SweepMultilevel instead of rule 1/2. The probe is a
	//     pure function of the chain and the start vector — never of
	//     Workers or lane packing — and discards its iterate, so a
	//     non-stalled solve is bit-identical to the pre-probe behavior.
	SweepAuto Sweep = iota
	// SweepGaussSeidel forces the sequential Gauss-Seidel sweep.
	SweepGaussSeidel
	// SweepJacobi forces the damped Jacobi sweep, whose row updates are
	// independent and therefore partition across workers while staying
	// bit-identical at any worker count.
	SweepJacobi
	// SweepMultilevel forces the two-level iterative aggregation/
	// disaggregation (IAD) outer loop: Gauss-Seidel pre-smoothing, an
	// exact (GTH) solve of the chain aggregated by a deterministic
	// coarsening partition, disaggregation by within-block conditional
	// redistribution, and Gauss-Seidel post-smoothing, with convergence
	// tested on the fine-level residual at post-smoothing sweeps only.
	// Near-completely-decomposable chains (long dwell times, rare
	// cross-cluster transitions — the DPM sleep/wake structure) converge
	// in a bounded number of cycles where plain sweeps need O(1/ε)
	// iterations. The smoother is always sequential Gauss-Seidel, so the
	// result is bit-identical at any worker count by construction.
	SweepMultilevel
)

// String returns the sweep mode's canonical name.
func (s Sweep) String() string {
	switch s {
	case SweepGaussSeidel:
		return "gauss-seidel"
	case SweepJacobi:
		return "jacobi"
	case SweepMultilevel:
		return "multilevel"
	default:
		return "auto"
	}
}

// SolveOptions tunes the steady-state solver.
type SolveOptions struct {
	// Tolerance is the convergence threshold on the max relative change
	// per sweep (default 1e-12).
	Tolerance float64
	// MaxIterations bounds the sweeps (default 200000).
	MaxIterations int
	// Sweep selects the iteration scheme (default SweepAuto: Jacobi when
	// the component reaches JacobiThreshold states and more than one
	// worker is available, Gauss-Seidel otherwise).
	Sweep Sweep
	// Workers bounds the Jacobi worker pool (0 = GOMAXPROCS). The solver
	// result is bit-identical at any value: each row's inflow is summed in
	// its fixed CSR order regardless of which worker owns the row, and the
	// normalization sum is one canonical sequential pass.
	Workers int
	// JacobiThreshold is the component size at which SweepAuto switches
	// from Gauss-Seidel to Jacobi (default 1024).
	JacobiThreshold int
	// WarmStart optionally seeds the iteration with a previous solution: a
	// distribution over all tangible states (length N), typically the
	// steady state of the same chain at nearby rate values. The solver
	// projects it onto the recurrent component and renormalizes; when the
	// length is wrong or the projection carries no mass it falls back to
	// the uniform start. Warm-starting changes the iteration trajectory —
	// and with it the last bits of the converged vector — so deterministic
	// sweeps must derive the seed deterministically: solve one designated
	// anchor point cold and seed every other point from the anchor's
	// solution, independent of worker count and scheduling (see
	// core.Phase2Sweep).
	WarmStart []float64
	// Ctx optionally makes the solve cancelable: the sweeps poll it at
	// every iteration boundary and return a *fault.CanceledError carrying
	// the interrupted iteration. Polling never changes the floats of a
	// solve that runs to completion. nil disables polling.
	Ctx context.Context
	// Omega overrides the sweep's damping factor: the row update becomes
	// x' = (1-ω)·x + ω·inflow/exit. 0 selects the scheme default (1 for
	// Gauss-Seidel — the plain update, taken on a branch that performs no
	// extra arithmetic — and jacobiOmega for Jacobi). The escalation
	// ladder halves it on its increase-damping rung; callers normally
	// leave it 0.
	Omega float64
	// Escalation selects what SteadyStateTraced does when the configured
	// solve fails with a ConvergenceError: EscalateNever (the default)
	// surfaces the error; EscalateLadder deterministically retries
	// through the fixed ladder described in Escalation's docs, recording
	// every rung in the returned SolveTrace. Plain SteadyState ignores
	// the field (it is the ladder's base attempt).
	Escalation Escalation
}

// ErrNoConvergence reports that the iterative solver hit its iteration
// bound.
var ErrNoConvergence = errors.New("ctmc: steady-state solver did not converge")

// ConvergenceError is the concrete failure SteadyState returns when the
// iteration gives up: it wraps ErrNoConvergence (so errors.Is keeps
// working) and carries the sweep mode, the iteration count, and the last
// residual, making sweep failures diagnosable at the call site.
type ConvergenceError struct {
	// Iterations is the number of sweeps performed.
	Iterations int
	// Residual is the max relative change of the last sweep.
	Residual float64
	// Tolerance is the convergence threshold that was not reached.
	Tolerance float64
	// Sweep is the iteration scheme that failed (SweepGaussSeidel,
	// SweepJacobi, or SweepMultilevel, never SweepAuto).
	Sweep Sweep
	// Cycles is the number of multilevel outer cycles performed (0 for
	// the plain sweeps).
	Cycles int
	// Point is the sweep-point index the failed solve belongs to, or -1
	// when the solve was not part of a sweep. SolveBatch sets it to the
	// batch-local lane; core.Phase2Sweep rewrites it to the global
	// sweep-point index, so a failed point in a 100-point grid is
	// identifiable from the error alone.
	Point int
	// Params is the rate-slot vector of the failed sweep point (nil
	// outside sweeps).
	Params []float64
}

// Error implements the error interface.
func (e *ConvergenceError) Error() string {
	msg := fmt.Sprintf("%v after %d iterations (%s sweep, residual %.3g, tolerance %.3g)",
		ErrNoConvergence, e.Iterations, e.Sweep, e.Residual, e.Tolerance)
	if e.Sweep == SweepMultilevel {
		msg += fmt.Sprintf(" in %d cycles", e.Cycles)
	}
	if e.Point >= 0 {
		msg += fmt.Sprintf(" at sweep point %d", e.Point)
		if e.Params != nil {
			msg += fmt.Sprintf(" %v", e.Params)
		}
	}
	return msg
}

// Unwrap makes errors.Is(err, ErrNoConvergence) hold.
func (e *ConvergenceError) Unwrap() error { return ErrNoConvergence }

// solveDefaults fills the zero-value solver options with the documented
// defaults; SteadyState and SolveBatch resolve them identically so a
// batched lane runs under exactly the configuration a solo solve would.
func solveDefaults(opts SolveOptions) SolveOptions {
	if opts.Tolerance <= 0 {
		opts.Tolerance = 1e-12
	}
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 200000
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.JacobiThreshold <= 0 {
		opts.JacobiThreshold = 1024
	}
	return opts
}

// jacobiSoloFactor scales JacobiThreshold for the single-worker clause of
// the SweepAuto rule: with one worker the Jacobi pool wins nothing from
// parallelism, but on a huge component its tiled, cache-blocked kernels
// still beat the sequential sweep's strided reads, so auto mode picks
// Jacobi anyway once the component reaches JacobiThreshold×16 states.
const jacobiSoloFactor = 16

// resolveSweep applies the static half of the SweepAuto rule (rules 1 and
// 2 of the SweepAuto docs) to the resolved options: Jacobi when the
// component is large enough to amortize the pool (JacobiThreshold states
// with more than one worker, JacobiThreshold×jacobiSoloFactor with one),
// Gauss-Seidel otherwise. The dynamic half — the stalled-decay probe that
// upgrades to SweepMultilevel — runs inside the solve, because it needs
// the component's rates; see steadyStateStats and SolveBatchLanes.
func resolveSweep(opts SolveOptions, componentSize int) Sweep {
	if opts.Sweep != SweepAuto {
		return opts.Sweep
	}
	if componentSize >= opts.JacobiThreshold && opts.Workers > 1 {
		return SweepJacobi
	}
	if componentSize >= opts.JacobiThreshold*jacobiSoloFactor {
		return SweepJacobi
	}
	return SweepGaussSeidel
}

// SteadyState computes the long-run probability distribution over tangible
// states. The chain may be reducible as long as a single bottom strongly
// connected component is reachable from the initial distribution (the
// usual case for models with a start-up transient); probability then
// concentrates on that component.
func (c *CTMC) SteadyState(opts SolveOptions) ([]float64, error) {
	pi, _, err := c.steadyStateStats(opts)
	return pi, err
}

// solveStats summarizes a converged solve for the trace: the scheme that
// actually ran (after auto resolution, fallback, and the multilevel
// upgrade), the fine-level sweep count, the multilevel cycle count (0 for
// plain sweeps), and the final residual.
type solveStats struct {
	Sweep      Sweep
	Iterations int
	Cycles     int
	Residual   float64
}

// steadyStateStats is SteadyState plus the solve statistics of the
// successful attempt (SteadyStateTraced records them in the trace).
func (c *CTMC) steadyStateStats(opts SolveOptions) ([]float64, solveStats, error) {
	var st solveStats
	opts = solveDefaults(opts)
	plan, err := c.ensurePlan()
	if err != nil {
		return nil, st, err
	}

	// An absorbing single state gets all the probability.
	pi := make([]float64, c.N)
	if len(plan.target) == 1 {
		pi[plan.target[0]] = 1
		st.Sweep = SweepGaussSeidel
		return pi, st, nil
	}

	comp := c.fillComponent(plan)
	start := uniformStart(comp.n)
	if len(opts.WarmStart) == c.N {
		if ws := projectStart(opts.WarmStart, plan.target); ws != nil {
			start = ws
		}
	}
	sweep := resolveSweep(opts, len(plan.target))
	if opts.Sweep == SweepAuto && comp.n >= multilevelAutoMin && comp.stalledGS(opts, start) {
		// Rule 3 of the SweepAuto docs: stalled residual decay means the
		// plain sweeps would crawl toward the budget; the multilevel outer
		// loop attacks exactly that regime. The probe ran on a copy, so
		// the non-stalled path below computes pre-probe floats.
		sweep = SweepMultilevel
	}
	var x []float64
	switch sweep {
	case SweepMultilevel:
		x, st, err = comp.multilevel(opts, start, c.ensureCoarse(plan))
	case SweepJacobi:
		x, st, err = comp.jacobi(opts, start)
		if err != nil && opts.Sweep == SweepAuto && errors.Is(err, ErrNoConvergence) {
			// Auto mode falls back to the sequential sweep: Gauss-Seidel's
			// sequential substitution converges on chains where even the
			// damped simultaneous update crawls.
			x, st, err = comp.gaussSeidel(opts, start)
		}
	default:
		x, st, err = comp.gaussSeidel(opts, start)
	}
	if err != nil && opts.Sweep == SweepAuto && sweep != SweepMultilevel &&
		comp.n >= multilevelAutoMin && errors.Is(err, ErrNoConvergence) {
		// The stall probe is a 24-sweep heuristic: a chain whose slow mode
		// only emerges after the probe window exhausts the plain scheme's
		// budget anyway, so auto mode retries it with the multilevel cycle
		// from the original start — auto is never worse than the plain
		// sweeps for the price of one extra attempt on failures.
		x, st, err = comp.multilevel(opts, start, c.ensureCoarse(plan))
	}
	if err != nil {
		return nil, st, err
	}
	for j, s := range plan.target {
		pi[s] = x[j]
	}
	return pi, st, nil
}

// component is the recurrent component in local coordinates: the balance
// equations pi_j * exit_j = sum_{i -> j} pi_i * q_ij restricted to the
// component, with the incoming adjacency flattened CSR-style — the
// incoming edges of local state j are inFrom/inRate[inStart[j]:
// inStart[j+1]]. Two flat arrays instead of a slice-of-slices keep the
// per-sweep inner loop on contiguous memory and cost a handful of
// allocations per solve, however often a sweep rebuilds the chain.
type component struct {
	n       int
	inStart []int32
	inFrom  []int32
	inRate  []float64
	exit    []float64
	// invExit is 1/exit (0 where exit is 0), computed once per fill: the
	// sweeps' per-row division is a multiplication by the reciprocal, paid
	// once per solve instead of once per row per iteration.
	invExit []float64
}

// residualGuard is the conservative skip margin of the running-residual
// update: a row's relative step d/m is divided out only when d exceeds
// the current maximum scaled by m and shrunk by a few ulps. When the
// guard rejects, fl(d/m) provably cannot exceed the running maximum
// (d ≤ fl(fl(max·m)·guard) implies d/m ≤ max·(1−10⁻¹³)·(1+3ε) < max), so
// the final residual is the exact maximum of the per-row fl(d/m) values —
// independent of which rows happened to divide, and hence of any row
// partition across Jacobi workers or batch tiles.
const residualGuard = 1 - 1e-13

// solvePlan caches the structural half of a steady-state solve: the
// reachable bottom component and the incoming-CSR index skeleton of its
// balance equations, plus the traversal metadata that lets a solve — or a
// batched solve — gather the chain's current rate values into that
// skeleton without re-running Tarjan, reachability, or the fill-position
// computation. The analysis depends only on the chain's structure (state
// classification, row columns, initial support), which a rate-only Rebind
// provably preserves: every slot value is validated positive and finite,
// so no edge appears or disappears. One plan therefore serves every
// rebind of a chain and all its Clones; it is computed lazily on first
// solve and shared by pointer across clones.
type solvePlan struct {
	once sync.Once
	err  error

	// target is the reachable bottom SCC in its Tarjan emission order —
	// the same order the uncached solver produced, so local indexing and
	// every downstream floating-point accumulation are unchanged.
	target []int
	// inStart/inFrom are the component's incoming CSR index arrays: the
	// incoming edges of local state j are inFrom[inStart[j]:inStart[j+1]].
	// They are shared read-only by every solve; the per-solve rate values
	// are gathered by fillComponent (or fillBatch) into fresh arrays.
	inStart []int32
	inFrom  []int32
	// fillPos maps the canonical traversal — target rows in order, row
	// entries in column-ascending order — to positions in the incoming
	// rate array: traversal step t writes its entry's rate at fillPos[t]
	// (-1 for an entry leaving the component, which a bottom SCC never
	// has; kept for defensiveness).
	fillPos []int32
	// rowEntryBase[li] is the global generator-entry index (row-major over
	// all tangible rows) of the first entry of target row li, which gives
	// batched solves the termStart window of any component entry.
	rowEntryBase []int32
	// hash fingerprints the structural analysis (FNV-1a over target,
	// inStart, inFrom) for the debug assertion that a rate-only rebind
	// left the structure untouched.
	hash uint64

	// coarse is the multilevel solver's cached coarse operator (see
	// multilevel.go), built lazily on first multilevel solve: the
	// coarsening partition is a pure function of the built structure and
	// the canonical-point rates, so — like the rest of the plan — it is
	// shared by every clone and survives rate-only Rebinds, which
	// re-aggregate rates through coarsePlan.cell in O(edges).
	coarseOnce sync.Once
	coarse     *coarsePlan
}

// ensurePlan returns the chain's cached solve plan, computing it on first
// use. Clones share the plan pointer, so the analysis runs once per built
// structure however many clones sweep it concurrently (sync.Once).
func (c *CTMC) ensurePlan() (*solvePlan, error) {
	p := c.plan
	if p == nil {
		// Chains assembled without Build (tests) get a private holder.
		p = &solvePlan{}
		c.plan = p
	}
	p.once.Do(func() { p.build(c) })
	return p, p.err
}

// build runs the structural analysis: bottom SCCs, reachability, target
// selection, and the component's incoming-CSR skeleton. It reads only
// structure (row columns, initial support) — never rate values.
func (p *solvePlan) build(c *CTMC) {
	bsccs := c.bottomSCCs()
	reached := c.reachableFromInitial()
	var target []int
	for _, comp := range bsccs {
		if reached[comp[0]] {
			if target != nil {
				p.err = ErrMultipleBSCC
				return
			}
			target = comp
		}
	}
	if target == nil {
		p.err = fmt.Errorf("ctmc: no reachable bottom component (internal error)")
		return
	}
	p.target = target
	if len(target) > 1 {
		inComp := make([]bool, c.N)
		local := make([]int32, c.N) // global -> local index
		for li, s := range target {
			inComp[s] = true
			local[s] = int32(li)
		}
		p.inStart = make([]int32, len(target)+1)
		for _, s := range target {
			for _, e := range c.Rows[s] {
				if inComp[e.Col] {
					p.inStart[local[e.Col]+1]++
				}
			}
		}
		for j := 0; j < len(target); j++ {
			p.inStart[j+1] += p.inStart[j]
		}
		p.inFrom = make([]int32, p.inStart[len(target)])
		p.fillPos = make([]int32, 0, len(p.inFrom))
		fill := make([]int32, len(target))
		copy(fill, p.inStart[:len(target)])
		for _, s := range target {
			for _, e := range c.Rows[s] {
				if inComp[e.Col] {
					j := local[e.Col]
					p.inFrom[fill[j]] = local[s]
					p.fillPos = append(p.fillPos, fill[j])
					fill[j]++
				} else {
					p.fillPos = append(p.fillPos, -1)
				}
			}
		}
		// Global entry index of each target row's first entry, for term
		// lookups in batched solves.
		base := int32(0)
		baseOf := make([]int32, c.N)
		for s := 0; s < c.N; s++ {
			baseOf[s] = base
			base += int32(len(c.Rows[s]))
		}
		p.rowEntryBase = make([]int32, len(target))
		for li, s := range target {
			p.rowEntryBase[li] = baseOf[s]
		}
	}
	h := uint64(14695981039346656037) // FNV-1a offset basis
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211 // FNV-1a prime
			v >>= 8
		}
	}
	for _, s := range p.target {
		mix(uint64(s))
	}
	for _, v := range p.inStart {
		mix(uint64(uint32(v)))
	}
	for _, v := range p.inFrom {
		mix(uint64(uint32(v)))
	}
	p.hash = h
}

// debugCheckPlan recomputes the structural analysis from scratch and
// compares its fingerprint with the cached plan's. Rebind calls it when
// EnableDebugChecks is set: a rate-only rebind must leave reachability and
// SCC structure — and therefore the cached plan — untouched.
func (c *CTMC) debugCheckPlan() error {
	p, err := c.ensurePlan()
	if err != nil {
		return nil // the cached analysis failed; nothing to compare
	}
	fresh := &solvePlan{}
	fresh.build(c)
	if fresh.err != nil {
		return fmt.Errorf("ctmc: structural solve analysis fails after a rate-only rebind: %w", fresh.err)
	}
	if fresh.hash != p.hash {
		return fmt.Errorf("ctmc: structural solve plan changed across a rate-only rebind (hash %#x -> %#x)", p.hash, fresh.hash)
	}
	return nil
}

// InvalidatePlan drops this handle's cached structural solve analysis; the
// next solve recomputes it. Rate-only rebinds never need this — the
// analysis is structural and rebinds cannot change it — but callers that
// mutate Rows directly (tests), and benchmarks that measure the uncached
// per-solve path, use it. Clones keep the plan they already share.
func (c *CTMC) InvalidatePlan() { c.plan = &solvePlan{} }

// StructuralHash returns the FNV-1a fingerprint of the chain's structural
// solve analysis (recurrent component and incoming-CSR skeleton),
// computing the analysis on first use. Rate-only rebinds cannot change
// it, so it identifies "the same chain structure" across processes —
// the identity the sweep checkpoints verify before resuming.
func (c *CTMC) StructuralHash() (uint64, error) {
	p, err := c.ensurePlan()
	if err != nil {
		return 0, err
	}
	return p.hash, nil
}

// fillComponent gathers the chain's current rate values into the plan's
// component skeleton. The traversal replays the uncached builder's fill
// loop — target rows in order, entries in column-ascending order — so the
// inRate array is element-for-element identical to the one a from-scratch
// component build produces.
func (c *CTMC) fillComponent(p *solvePlan) *component {
	comp := &component{
		n:       len(p.target),
		inStart: p.inStart,
		inFrom:  p.inFrom,
		inRate:  make([]float64, len(p.inFrom)),
		exit:    make([]float64, len(p.target)),
		invExit: make([]float64, len(p.target)),
	}
	t := 0
	for _, s := range p.target {
		for _, e := range c.Rows[s] {
			if pos := p.fillPos[t]; pos >= 0 {
				comp.inRate[pos] = e.Rate
			}
			t++
		}
	}
	for li, s := range p.target {
		comp.exit[li] = c.Exit[s]
		if comp.exit[li] > 0 {
			comp.invExit[li] = 1 / comp.exit[li]
		}
	}
	return comp
}

// uniformStart returns the default uniform starting vector over n states.
func uniformStart(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	return x
}

// projectStart restricts a warm-start distribution over all tangible
// states to the recurrent component's local coordinates and renormalizes
// it. It returns nil when the projection carries no positive mass (or any
// non-finite value), in which case the caller falls back to the uniform
// start.
func projectStart(ws []float64, target []int) []float64 {
	x := make([]float64, len(target))
	sum := 0.0
	for j, s := range target {
		v := ws[s]
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return nil
		}
		x[j] = v
		sum += v
	}
	if !(sum > 0) {
		return nil
	}
	for j := range x {
		x[j] /= sum
	}
	return x
}

// pollSolve is the per-iteration cancellation point shared by the solver
// sweeps: it consults the fault-injection iteration site (whose OnFire
// callback is how tests cancel at an exact iteration) and then polls the
// cached done channel. It returns a *fault.CanceledError naming the
// interrupted iteration, or nil.
func pollSolve(ctx context.Context, done <-chan struct{}, iter int) error {
	faultinject.Fire(faultinject.SiteSolveIteration, iter)
	if done == nil {
		return nil
	}
	select {
	case <-done:
		return &fault.CanceledError{Phase: "ctmc.steady-state", Point: -1, Iteration: iter, Err: ctx.Err()}
	default:
		return nil
	}
}

// cancelChan returns the context's done channel, or nil for a nil
// context, so the sweeps' per-iteration poll is a nil check when
// cancellation is not in play.
func cancelChan(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// gsSweepOnce performs one in-place Gauss-Seidel sweep over the component
// and returns the sweep's guarded max relative change — the solo
// gaussSeidel inner loop verbatim, factored out so the multilevel
// smoother and the stall probe run the identical floating-point sequence.
func (p *component) gsSweepOnce(x []float64, omega float64) float64 {
	maxDelta := 0.0
	for j := 0; j < p.n; j++ {
		if p.exit[j] <= 0 {
			continue
		}
		inflow := 0.0
		for k := p.inStart[j]; k < p.inStart[j+1]; k++ {
			inflow += x[p.inFrom[k]] * p.inRate[k]
		}
		next := inflow * p.invExit[j]
		if omega != 1 {
			next = (1-omega)*x[j] + omega*next
		}
		d := math.Abs(next - x[j])
		if m := math.Max(next, 1e-300); d > maxDelta*m*residualGuard {
			if rel := d / m; rel > maxDelta {
				maxDelta = rel
			}
		}
		x[j] = next
	}
	return maxDelta
}

// sumNormalize rescales x to sum 1 with the canonical sequence — one
// sequential sum, one reciprocal, one multiply pass — and reports whether
// the mass was positive (false leaves x untouched and means the iteration
// collapsed).
func sumNormalize(x []float64) bool {
	sum := 0.0
	for _, v := range x {
		sum += v
	}
	if sum <= 0 {
		return false
	}
	inv := 1 / sum
	for j := range x {
		x[j] *= inv
	}
	return true
}

// gaussSeidel runs the sequential Gauss-Seidel sweep from the given
// starting vector: each row update reads the in-place vector, so updates
// within a sweep feed forward. A non-default opts.Omega damps the update;
// at the default ω = 1 the plain update is taken on a branch that
// performs no extra floating-point operation, so results are bit-for-bit
// those of the undamped sweep.
func (p *component) gaussSeidel(opts SolveOptions, start []float64) ([]float64, solveStats, error) {
	var st solveStats
	x := append([]float64(nil), start...)
	omega := opts.Omega
	if omega == 0 {
		omega = 1
	}
	done := cancelChan(opts.Ctx)
	maxDelta := math.Inf(1)
	for iter := 0; iter < opts.MaxIterations; iter++ {
		if err := pollSolve(opts.Ctx, done, iter); err != nil {
			return nil, st, err
		}
		maxDelta = p.gsSweepOnce(x, omega)
		// Normalize to avoid drift: one canonical sequential sum, one
		// reciprocal, one multiply pass.
		if !sumNormalize(x) {
			return nil, st, &ConvergenceError{Iterations: iter + 1, Residual: maxDelta, Tolerance: opts.Tolerance, Sweep: SweepGaussSeidel, Point: -1}
		}
		if maxDelta < opts.Tolerance {
			return x, solveStats{Sweep: SweepGaussSeidel, Iterations: iter + 1, Residual: maxDelta}, nil
		}
	}
	return nil, st, &ConvergenceError{Iterations: opts.MaxIterations, Residual: maxDelta, Tolerance: opts.Tolerance, Sweep: SweepGaussSeidel, Point: -1}
}

// jacobiOmega damps the Jacobi update: x' = (1-ω)·x + ω·inflow/exit.
// Undamped Jacobi is the power method on the embedded jump chain (in flow
// coordinates) and oscillates forever when that chain is periodic — which
// birth-death-like queueing chains are. Damping with ω = 1/2 iterates the
// lazy chain instead, whose spectrum lies strictly inside the unit disk
// away from 1, so the sweep converges to the same fixed point.
const jacobiOmega = 0.5

// jacobi runs the damped Jacobi sweep. Every row update reads only the
// previous sweep's vector, so rows partition freely across workers; the
// per-row inflow is summed in its fixed CSR order no matter which worker
// owns the row, maxDelta is an order-independent max-reduction over
// per-block maxima, and the normalization sum is one canonical sequential
// pass — the iterate is bit-identical at any worker count.
func (p *component) jacobi(opts SolveOptions, start []float64) ([]float64, solveStats, error) {
	var st solveStats
	x := append([]float64(nil), start...)
	next := make([]float64, p.n)
	omega := opts.Omega
	if omega == 0 {
		omega = jacobiOmega
	}
	done2 := cancelChan(opts.Ctx)

	workers := opts.Workers
	if workers > p.n {
		workers = p.n
	}
	blockSize := (p.n + workers - 1) / workers
	nblocks := (p.n + blockSize - 1) / blockSize
	blockDelta := make([]float64, nblocks)

	sweepBlock := func(b int) {
		lo := b * blockSize
		hi := lo + blockSize
		if hi > p.n {
			hi = p.n
		}
		d := 0.0
		for j := lo; j < hi; j++ {
			nx := x[j]
			if p.exit[j] > 0 {
				inflow := 0.0
				for k := p.inStart[j]; k < p.inStart[j+1]; k++ {
					inflow += x[p.inFrom[k]] * p.inRate[k]
				}
				nx = (1-omega)*x[j] + omega*(inflow*p.invExit[j])
			}
			dd := math.Abs(nx - x[j])
			if m := math.Max(nx, 1e-300); dd > d*m*residualGuard {
				if rel := dd / m; rel > d {
					d = rel
				}
			}
			next[j] = nx
		}
		blockDelta[b] = d
	}

	// Block tasks run behind the shared panic guard — on the pool and on
	// the single-block inline path alike — so a panicking row surfaces as
	// a *fault.WorkerPanicError naming the block, with the lowest block
	// index winning when several blocks panic in one sweep, instead of
	// killing the process. A recovered worker still reports its block on
	// the done channel, so the dispatcher's drain never wedges.
	var (
		panicMu  sync.Mutex
		panicIdx = nblocks
		panicErr error
	)
	runBlock := func(w, b int) {
		err := fault.Guard("ctmc.jacobi", w, fmt.Sprintf("block %d", b), func() error {
			faultinject.MaybePanic(faultinject.SiteJacobiBlock, b)
			sweepBlock(b)
			return nil
		})
		if err != nil {
			panicMu.Lock()
			if panicErr == nil || b < panicIdx {
				panicIdx, panicErr = b, err
			}
			panicMu.Unlock()
		}
	}

	// Persistent pool: workers stay parked on the work channel between
	// sweeps, so a sweep costs two channel hops per block instead of a
	// goroutine spawn. The channel operations order each sweep's vector
	// swap before the block work and the block work before the reduction.
	var work, done chan int
	if nblocks > 1 {
		work = make(chan int)
		done = make(chan int)
		for w := 0; w < workers; w++ {
			go func(w int) {
				for b := range work {
					runBlock(w, b)
					done <- b
				}
			}(w)
		}
		defer close(work)
	}

	maxDelta := math.Inf(1)
	for iter := 0; iter < opts.MaxIterations; iter++ {
		if err := pollSolve(opts.Ctx, done2, iter); err != nil {
			return nil, st, err
		}
		if nblocks > 1 {
			for b := 0; b < nblocks; b++ {
				work <- b
			}
			for b := 0; b < nblocks; b++ {
				<-done
			}
		} else {
			runBlock(0, 0)
		}
		if panicErr != nil {
			return nil, st, panicErr
		}
		maxDelta = 0.0
		for _, d := range blockDelta {
			if d > maxDelta {
				maxDelta = d
			}
		}
		// Normalize to avoid drift: one canonical sequential sum.
		sum := 0.0
		for _, v := range next {
			sum += v
		}
		if sum <= 0 {
			return nil, st, &ConvergenceError{Iterations: iter + 1, Residual: maxDelta, Tolerance: opts.Tolerance, Sweep: SweepJacobi, Point: -1}
		}
		inv := 1 / sum
		for j := range next {
			next[j] *= inv
		}
		x, next = next, x
		if maxDelta < opts.Tolerance {
			return x, solveStats{Sweep: SweepJacobi, Iterations: iter + 1, Residual: maxDelta}, nil
		}
	}
	return nil, st, &ConvergenceError{Iterations: opts.MaxIterations, Residual: maxDelta, Tolerance: opts.Tolerance, Sweep: SweepJacobi, Point: -1}
}

// reachableFromInitial returns the set of tangible states reachable from
// the support of the initial distribution.
func (c *CTMC) reachableFromInitial() []bool {
	seen := make([]bool, c.N)
	var stack []int
	for s, p := range c.Initial {
		if p > 0 && !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range c.Rows[s] {
			if !seen[e.Col] {
				seen[e.Col] = true
				stack = append(stack, e.Col)
			}
		}
	}
	return seen
}

// bottomSCCs returns the strongly connected components of the tangible
// chain that have no outgoing edges (Tarjan, iterative).
func (c *CTMC) bottomSCCs() [][]int {
	n := c.N
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = -1
		comp[i] = -1
	}
	var stack []int
	var sccs [][]int
	counter := 0

	type frame struct {
		v, ei int
	}
	for start := 0; start < n; start++ {
		if index[start] >= 0 {
			continue
		}
		frames := []frame{{v: start}}
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(c.Rows[f.v]) {
				w := c.Rows[f.v][f.ei].Col
				f.ei++
				if index[w] < 0 {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var scc []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = len(sccs)
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	// Bottom components: no edge leaves the component.
	isBottom := make([]bool, len(sccs))
	for i := range isBottom {
		isBottom[i] = true
	}
	for s := 0; s < n; s++ {
		for _, e := range c.Rows[s] {
			if comp[e.Col] != comp[s] {
				isBottom[comp[s]] = false
			}
		}
	}
	var out [][]int
	for i, scc := range sccs {
		if isBottom[i] {
			out = append(out, scc)
		}
	}
	return out
}

// BottomSCCs returns the bottom strongly connected components of the
// tangible chain — useful for diagnosing reducible models.
func (c *CTMC) BottomSCCs() [][]int { return c.bottomSCCs() }
