package ctmc

import (
	"context"
	"math"

	"repro/internal/fault"
)

// StateReward computes the steady-state expectation of a state reward
// defined on LTS states: sum over tangible states of pi(s)·reward(ltsState).
// Vanishing states carry no probability mass (they are left in zero time).
func (c *CTMC) StateReward(pi []float64, reward func(ltsState int) float64) float64 {
	total := 0.0
	for ci, p := range pi {
		if p > 0 {
			total += p * reward(c.TangibleOf[ci])
		}
	}
	return total
}

// Throughput computes the steady-state frequency (firings per unit time)
// of the LTS transitions selected by match, weighted by weight. Both
// exponential and immediate transitions are supported: the frequency of an
// immediate transition is derived from the entry rate of its vanishing
// source state, propagated through the immediate branching probabilities.
// Transitions that the generator folded away (compositional minimization)
// are accounted for through the reward attributions it left on the
// redirected edges: a folded label fires at the edge's frequency times its
// recorded expected traversal count, so the result matches the unfolded
// system.
func (c *CTMC) Throughput(pi []float64, match func(label string) bool, weight func(label string) float64) float64 {
	if weight == nil {
		weight = func(string) float64 { return 1 }
	}
	total := 0.0

	// foldedAt adds the attributed frequencies of labels folded into the
	// edge at global LTS index ltsTrans, which fires at the given rate.
	foldedAt := func(ltsTrans int, fire float64) {
		a := c.l.EdgeAux(ltsTrans)
		if a == 0 {
			return
		}
		labels, counts := c.l.AuxTerms(a)
		for i, li := range labels {
			label := c.l.LabelName(int(li))
			if match(label) {
				total += fire * counts[i] * weight(label)
			}
		}
	}

	// Exponential transitions fire at pi(src)·lambda.
	// Also accumulate the entry rates of vanishing states.
	entry := make([]float64, len(c.vanishing))
	for _, e := range c.expEdges {
		p := pi[c.ctmcIndex[e.src]]
		if p == 0 {
			continue
		}
		label := c.l.LabelName(c.l.EdgeLabel(e.ltsTrans))
		if match(label) {
			total += p * e.rate * weight(label)
		}
		foldedAt(e.ltsTrans, p*e.rate)
		if vp := c.vanPos[e.dst]; vp >= 0 {
			entry[vp] += p * e.rate
		}
	}
	// Propagate entry rates through the vanishing DAG in topological
	// order; each immediate branch fires at entry(src)·prob.
	for i := range c.vanishing {
		if entry[i] == 0 {
			continue
		}
		for _, b := range c.branches[i] {
			fire := entry[i] * b.prob
			label := c.l.LabelName(c.l.EdgeLabel(b.ltsTrans))
			if match(label) {
				total += fire * weight(label)
			}
			foldedAt(b.ltsTrans, fire)
			if vp := c.vanPos[b.dst]; vp >= 0 {
				entry[vp] += fire
			}
		}
	}
	return total
}

// ProbLocallyEnabled computes the steady-state probability of the LTS
// predicate with the given name (recorded at generation time).
func (c *CTMC) ProbLocallyEnabled(pi []float64, predName string) (float64, error) {
	total := 0.0
	for ci, p := range pi {
		if p == 0 {
			continue
		}
		v, err := c.l.Pred(predName, c.TangibleOf[ci])
		if err != nil {
			return 0, err
		}
		if v {
			total += p
		}
	}
	return total, nil
}

// Transient computes the state distribution at time t from the initial
// distribution, by uniformization. epsilon bounds the truncation error of
// the Poisson series (default 1e-10).
func (c *CTMC) Transient(t, epsilon float64) []float64 {
	return c.TransientFrom(c.Initial, t, epsilon)
}

// TransientFrom evolves an arbitrary distribution over tangible states by
// time t (uniformization). The input is not modified.
//
// The Poisson weight vector of the series depends only on q·t and epsilon
// — not on the distribution being evolved — so it is computed once per
// (q·t, epsilon) pair and cached on the chain: battery-lifetime and
// startup-transient integrations step the same chain at a fixed dt
// thousands of times and reuse one vector. The cached path replays the
// identical weight recurrence and truncation rule, so results are bit for
// bit the same as recomputing the series inline.
func (c *CTMC) TransientFrom(init []float64, t, epsilon float64) []float64 {
	out, _ := c.TransientFromCtx(nil, init, t, epsilon)
	return out
}

// TransientFromCtx is TransientFrom with cancellation: the context is
// polled once per Poisson term, and a cancellation surfaces as a
// *fault.CanceledError whose Iteration is the term index. A nil context
// disables polling; the arithmetic of completed terms is unaffected by
// when — or whether — a cancellation is observed.
func (c *CTMC) TransientFromCtx(ctx context.Context, init []float64, t, epsilon float64) ([]float64, error) {
	if epsilon <= 0 {
		epsilon = 1e-10
	}
	// Uniformization rate.
	lambda := 0.0
	for _, e := range c.Exit {
		if e > lambda {
			lambda = e
		}
	}
	out := make([]float64, c.N)
	if lambda == 0 || t <= 0 {
		copy(out, init)
		return out, nil
	}
	q := lambda * 1.02 // slack keeps the DTMC aperiodic
	// P = I + Q/q applied iteratively: v_{k+1} = v_k P.
	v := append([]float64(nil), init...)
	next := make([]float64, c.N)

	weights := c.poissonWeights(q*t, epsilon)
	for k, w := range weights {
		if err := fault.Check(ctx, "ctmc.transient", -1, k); err != nil {
			return nil, err
		}
		for i := range v {
			out[i] += w * v[i]
		}
		if k == len(weights)-1 {
			break
		}
		// v <- v P
		for i := range next {
			next[i] = v[i] * (1 - c.Exit[i]/q)
		}
		for s := range c.Rows {
			if v[s] == 0 {
				continue
			}
			for _, e := range c.Rows[s] {
				next[e.Col] += v[s] * e.Rate / q
			}
		}
		v, next = next, v
	}
	// Renormalize for the truncated tail.
	total := 0.0
	for _, p := range out {
		total += p
	}
	if total > 0 {
		for i := range out {
			out[i] /= total
		}
	}
	return out, nil
}

// poissonKey identifies a cached uniformization weight vector. The key
// includes q·t, so a Rebind — which can change the maximal exit rate and
// with it q — never matches a stale vector even before the cache is
// dropped.
type poissonKey struct{ qt, epsilon float64 }

// poissonWeights returns the truncated, underflow-scaled Poisson(q·t)
// weight sequence, cached per (q·t, epsilon).
func (c *CTMC) poissonWeights(qt, epsilon float64) []float64 {
	key := poissonKey{qt: qt, epsilon: epsilon}
	c.poissonMu.Lock()
	w, ok := c.poisson[key]
	c.poissonMu.Unlock()
	if ok {
		return w
	}
	w = computePoissonWeights(qt, epsilon)
	c.poissonMu.Lock()
	if c.poisson == nil {
		c.poisson = make(map[poissonKey][]float64)
	}
	c.poisson[key] = w
	c.poissonMu.Unlock()
	return w
}

// computePoissonWeights evaluates the Poisson(q·t) series in log space.
// Truncation: at least kMax = qt + 10·√qt + 20 terms, extended until the
// accumulated mass is within epsilon of 1, hard-capped at 4·kMax terms —
// the exact rule the inline loop applied before the vector was cacheable.
func computePoissonWeights(qt, epsilon float64) []float64 {
	kMax := int(qt + 10*math.Sqrt(qt) + 20)
	logW := -qt
	sumW := 0.0
	ws := make([]float64, 0, kMax+1)
	for k := 0; ; k++ {
		w := math.Exp(logW)
		sumW += w
		ws = append(ws, w)
		if k >= kMax && 1-sumW < epsilon {
			break
		}
		if k > kMax*4 {
			break
		}
		logW += math.Log(qt) - math.Log(float64(k+1))
	}
	return ws
}

// MeanExitRate returns the steady-state average exit rate (a sanity
// metric: the total event rate of the chain).
func (c *CTMC) MeanExitRate(pi []float64) float64 {
	total := 0.0
	for ci, p := range pi {
		total += p * c.Exit[ci]
	}
	return total
}

// NumExpEdges returns the number of exponential transitions retained from
// the LTS (diagnostics).
func (c *CTMC) NumExpEdges() int { return len(c.expEdges) }

// NumVanishing returns the number of eliminated vanishing states.
func (c *CTMC) NumVanishing() int { return len(c.vanishing) }
