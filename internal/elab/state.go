package elab

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/expr"
)

// AppendKey appends the canonical byte-string encoding of a global state
// to dst and returns the extended slice. The encoding is the interning key
// of the state-space arena: equal states produce equal encodings, and
// DecodeKey inverts it. Appending to a caller-owned scratch buffer keeps
// the hot exploration path allocation-free.
func (m *Model) AppendKey(dst []byte, s State) []byte {
	var tmp [binary.MaxVarintLen64]byte
	for _, c := range s {
		n := binary.PutUvarint(tmp[:], uint64(c.Node))
		dst = append(dst, tmp[:n]...)
		dst = append(dst, byte(len(c.Args)))
		for _, v := range c.Args {
			switch v.Kind {
			case expr.TypeInt:
				dst = append(dst, 'i')
				n := binary.PutVarint(tmp[:], v.Int)
				dst = append(dst, tmp[:n]...)
			case expr.TypeBool:
				if v.Bool {
					dst = append(dst, 'T')
				} else {
					dst = append(dst, 'F')
				}
			}
		}
	}
	return dst
}

// Key returns a canonical byte-string encoding of a global state, suitable
// as a map key during state-space exploration.
func (m *Model) Key(s State) string {
	return string(m.AppendKey(nil, s))
}

// DecodeKey reconstructs a global state from its canonical encoding. The
// encoding is self-describing given the model's instance count, which is
// how lazily rendered state descriptions recover a state from the
// interner arena without retaining the original State values.
func (m *Model) DecodeKey(key []byte) (State, error) {
	s := make(State, len(m.insts))
	pos := 0
	for i := range m.insts {
		node, n := binary.Uvarint(key[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("elab: truncated state key at instance %d", i)
		}
		pos += n
		if pos >= len(key) {
			return nil, fmt.Errorf("elab: truncated state key at instance %d", i)
		}
		argc := int(key[pos])
		pos++
		var args []expr.Value
		if argc > 0 {
			args = make([]expr.Value, argc)
			for j := 0; j < argc; j++ {
				if pos >= len(key) {
					return nil, fmt.Errorf("elab: truncated state key at instance %d arg %d", i, j)
				}
				switch key[pos] {
				case 'i':
					pos++
					v, n := binary.Varint(key[pos:])
					if n <= 0 {
						return nil, fmt.Errorf("elab: bad int in state key at instance %d arg %d", i, j)
					}
					pos += n
					args[j] = expr.IntValue(v)
				case 'T':
					pos++
					args[j] = expr.BoolValue(true)
				case 'F':
					pos++
					args[j] = expr.BoolValue(false)
				default:
					return nil, fmt.Errorf("elab: bad tag %q in state key", key[pos])
				}
			}
		}
		s[i] = LocalConfig{Node: int(node), Args: args}
	}
	if pos != len(key) {
		return nil, fmt.Errorf("elab: %d trailing byte(s) in state key", len(key)-pos)
	}
	return s, nil
}

// Describe renders a global state readably, for diagnostics: each instance
// as name=Behaviour(args)[+k] where +k marks a position k nodes into the
// behaviour body (0 = at the body, i.e. at the start of the behaviour).
func (m *Model) Describe(s State) string {
	var sb strings.Builder
	for i, c := range s {
		if i > 0 {
			sb.WriteString(", ")
		}
		if m.quot != nil {
			sb.WriteString(m.insts[i].name)
			sb.WriteByte('=')
			sb.WriteString(m.quot[i].Descs[c.Node])
			continue
		}
		info := m.nodes[c.Node]
		sb.WriteString(m.insts[i].name)
		sb.WriteByte('=')
		sb.WriteString(info.behavior.Name)
		sb.WriteByte('(')
		for j, v := range c.Args {
			if j > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(v.String())
		}
		sb.WriteByte(')')
		if off := c.Node - info.behavior.Body.ID(); off != 0 {
			sb.WriteString("+" + strconv.Itoa(off))
		}
	}
	return sb.String()
}

// Equal reports whether two global states are identical.
func Equal(a, b State) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Node != b[i].Node || len(a[i].Args) != len(b[i].Args) {
			return false
		}
		for j := range a[i].Args {
			if !a[i].Args[j].Equal(b[i].Args[j]) {
				return false
			}
		}
	}
	return true
}
