package elab

import (
	"encoding/binary"
	"strconv"
	"strings"

	"repro/internal/expr"
)

// Key returns a canonical byte-string encoding of a global state, suitable
// as a map key during state-space exploration.
func (m *Model) Key(s State) string {
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	for _, c := range s {
		n := binary.PutUvarint(tmp[:], uint64(c.Node))
		buf = append(buf, tmp[:n]...)
		buf = append(buf, byte(len(c.Args)))
		for _, v := range c.Args {
			switch v.Kind {
			case expr.TypeInt:
				buf = append(buf, 'i')
				n := binary.PutVarint(tmp[:], v.Int)
				buf = append(buf, tmp[:n]...)
			case expr.TypeBool:
				if v.Bool {
					buf = append(buf, 'T')
				} else {
					buf = append(buf, 'F')
				}
			}
		}
	}
	return string(buf)
}

// Describe renders a global state readably, for diagnostics: each instance
// as name=Behaviour(args)[+k] where +k marks a position k nodes into the
// behaviour body (0 = at the body, i.e. at the start of the behaviour).
func (m *Model) Describe(s State) string {
	var sb strings.Builder
	for i, c := range s {
		if i > 0 {
			sb.WriteString(", ")
		}
		info := m.nodes[c.Node]
		sb.WriteString(m.insts[i].name)
		sb.WriteByte('=')
		sb.WriteString(info.behavior.Name)
		sb.WriteByte('(')
		for j, v := range c.Args {
			if j > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(v.String())
		}
		sb.WriteByte(')')
		if off := c.Node - info.behavior.Body.ID(); off != 0 {
			sb.WriteString("+" + strconv.Itoa(off))
		}
	}
	return sb.String()
}

// Equal reports whether two global states are identical.
func Equal(a, b State) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Node != b[i].Node || len(a[i].Args) != len(b[i].Args) {
			return false
		}
		for j := range a[i].Args {
			if !a[i].Args[j].Equal(b[i].Args[j]) {
				return false
			}
		}
	}
	return true
}
