// Package elab elaborates a validated architectural description into an
// executable composition: it instantiates element types, resolves
// attachments, and exposes a one-step successor function over global
// states. Both the explicit state-space generator (internal/lts) and the
// discrete-event simulator (internal/sim) are built on this package.
//
// A global state is a vector of per-instance local configurations; a local
// configuration is a position in the instance's behaviour (a process node)
// plus the current values of the enclosing behaviour's parameters.
//
// Transition labels follow the TwoTowers convention: an internal action of
// instance A is labelled "A.a"; a synchronization of A's output interaction
// o with B's input interaction i is labelled "A.o#B.i". Unattached
// interactions are blocked (they produce no transitions) but remain
// *locally enabled*, which is how reward monitors are expressed without
// perturbing the model's dynamics.
package elab

import (
	"fmt"

	"repro/internal/aemilia"
	"repro/internal/expr"
	"repro/internal/rates"
)

// LocalConfig is the configuration of a single instance: a process node
// identifier plus the values of the enclosing behaviour's parameters.
type LocalConfig struct {
	// Node is the process-node identifier (see aemilia.Process.ID).
	Node int
	// Args are the current parameter values of the enclosing behaviour.
	Args []expr.Value
}

// State is a global state: one local configuration per instance, in
// topology declaration order.
type State []LocalConfig

// LocalMove is an action an instance can perform from its current
// configuration, before considering the topology.
type LocalMove struct {
	// Act is the performed action (name and rate annotation).
	Act aemilia.Action
	// Next is the instance's configuration after the action.
	Next LocalConfig
}

// Transition is a global move of the composition.
type Transition struct {
	// Label is the observable label ("A.a" or "A.o#B.i").
	Label string
	// Rate is the combined timing annotation.
	Rate rates.Rate
	// Next is the global state after the transition.
	Next State
	// ActiveInst is the index of the instance that owns the timing of the
	// transition (the active participant; the moving instance for internal
	// actions; the output side when neither participant is active).
	ActiveInst int
	// ActiveAction is the action name of the active participant, used
	// together with ActiveInst as the activity identity for simulation
	// clocks.
	ActiveAction string
}

// roleKind classifies how an action of an instance relates to the topology.
type roleKind int

const (
	roleInternal roleKind = iota + 1 // not an interaction
	roleAttachedOut
	roleAttachedIn
	roleBlocked // declared interaction, not attached
)

// partnerRef identifies one attached counterpart of an interaction.
type partnerRef struct {
	inst   int
	action string
}

type role struct {
	kind roleKind
	mult aemilia.Multiplicity
	// partners lists the attached counterparts (one for UNI, possibly
	// several for AND/OR).
	partners []partnerRef
	// partnerLabels holds the precomputed "A.o#B.i" label per partner, and
	// bcastLabel the full AND-broadcast label; both are fixed by the
	// topology, so Successors never rebuilds a label string.
	partnerLabels []string
	bcastLabel    string
}

type instance struct {
	name  string
	et    *aemilia.ElemType
	roles map[string]role
	init  LocalConfig
	// actLabels precomputes the "A.a" label of every internal action.
	actLabels map[string]string
}

// internalLabel returns the precomputed "A.a" label of an internal action.
func (in *instance) internalLabel(action string) string {
	if l, ok := in.actLabels[action]; ok {
		return l
	}
	return in.name + "." + action
}

type nodeInfo struct {
	proc     aemilia.Process
	behavior *aemilia.Behavior
}

// Model is an elaborated architectural description. It is immutable once
// Elaborate returns — labels, roles, and node tables are precomputed and
// never written again — so a single Model may be shared by any number of
// goroutines: Successors, LocalMoves, LocallyEnabled, Describe, and
// DecodeKey are safe to call concurrently, and AppendKey is safe as long
// as each goroutine appends into its own buffer. The parallel state-space
// generator (internal/lts) and the simulator's replication pool
// (internal/sim) both rely on this contract.
type Model struct {
	arch  *aemilia.ArchiType
	insts []instance
	nodes []nodeInfo // indexed by process-node ID
	// numRateSlots is the highest rate-slot index appearing in any action
	// annotation of the description (0 when the model is not parametric).
	numRateSlots int
	// quot, when non-nil, marks the model as a compositional quotient: each
	// instance's behaviour is a reduced block automaton (see Quotient), a
	// local configuration is LocalConfig{Node: block}, and LocalMoves,
	// Initial and Describe answer from the precomputed block tables.
	quot []InstanceQuotient
}

// Elaborate turns a validated description into an executable composition.
func Elaborate(a *aemilia.ArchiType) (*Model, error) {
	if !a.Validated() {
		if err := a.Validate(); err != nil {
			return nil, err
		}
	}
	m := &Model{arch: a, nodes: make([]nodeInfo, a.NodeCount())}

	for _, et := range a.ElemTypes {
		for _, b := range et.Behaviors {
			if err := m.indexNodes(b.Body, b); err != nil {
				return nil, err
			}
		}
	}

	// Record the rate-slot arity of the description: the highest slot
	// index on any action annotation. Slots are declared densely (1..k),
	// so the maximum is the number of symbolic rate parameters a
	// downstream ctmc.Rebind must supply.
	for _, ni := range m.nodes {
		if pre, ok := ni.proc.(*aemilia.Prefix); ok {
			if s := pre.Act.Rate.Slot; s > m.numRateSlots {
				m.numRateSlots = s
			}
		}
	}

	instIdx := make(map[string]int, len(a.Instances))
	for i, in := range a.Instances {
		instIdx[in.Name] = i
	}

	for _, in := range a.Instances {
		et := in.Type()
		roles := make(map[string]role)
		for _, action := range interactionNames(et, true) {
			p, _ := et.InputPort(action)
			roles[action] = role{kind: roleBlocked, mult: p.Mult}
		}
		for _, action := range interactionNames(et, false) {
			p, _ := et.OutputPort(action)
			roles[action] = role{kind: roleBlocked, mult: p.Mult}
		}
		args := make([]expr.Value, len(in.Args))
		for i, ae := range in.Args {
			v, err := ae.Eval(nil)
			if err != nil {
				return nil, fmt.Errorf("elab: instance %s argument %d: %w", in.Name, i+1, err)
			}
			args[i] = v
		}
		m.insts = append(m.insts, instance{
			name:  in.Name,
			et:    et,
			roles: roles,
			init:  LocalConfig{Node: et.Initial().Body.ID(), Args: args},
		})
	}

	for _, at := range a.Attachments {
		fi, ti := instIdx[at.FromInstance], instIdx[at.ToInstance]
		fr := m.insts[fi].roles[at.FromPort]
		fr.kind = roleAttachedOut
		fr.partners = append(fr.partners, partnerRef{inst: ti, action: at.ToPort})
		m.insts[fi].roles[at.FromPort] = fr
		tr := m.insts[ti].roles[at.ToPort]
		tr.kind = roleAttachedIn
		tr.partners = append(tr.partners, partnerRef{inst: fi, action: at.FromPort})
		m.insts[ti].roles[at.ToPort] = tr
	}

	// Precompute every transition label the composition can produce: the
	// topology is fixed after elaboration, so building them once here keeps
	// Successors — the hot path of both the state-space generator and the
	// simulator — free of string concatenation.
	for i := range m.insts {
		inst := &m.insts[i]
		inst.actLabels = make(map[string]string)
		for _, b := range inst.et.Behaviors {
			collectActions(b.Body, func(name string) {
				if _, ok := inst.actLabels[name]; !ok {
					inst.actLabels[name] = inst.name + "." + name
				}
			})
		}
		for action, r := range inst.roles {
			if len(r.partners) == 0 {
				continue
			}
			base := inst.name + "." + action
			r.partnerLabels = make([]string, len(r.partners))
			bcast := base
			for pi, pr := range r.partners {
				seg := "#" + m.insts[pr.inst].name + "." + pr.action
				r.partnerLabels[pi] = base + seg
				bcast += seg
			}
			r.bcastLabel = bcast
			inst.roles[action] = r
		}
	}
	return m, nil
}

// NumRateSlots returns the number of symbolic rate parameters of the
// model: the highest slot index (rates.Rate.Slot) appearing in any action
// annotation, or 0 for a fully constant-rated model. A transition system
// generated from the model carries the same slots on its edges
// (lts.LTS.NumRateSlots), and a chain extracted from it accepts
// ctmc.Rebind with exactly this many values.
func (m *Model) NumRateSlots() int { return m.numRateSlots }

// collectActions visits the action name of every prefix in a process body.
func collectActions(p aemilia.Process, visit func(string)) {
	switch x := p.(type) {
	case *aemilia.Prefix:
		visit(x.Act.Name)
		collectActions(x.Cont, visit)
	case *aemilia.Choice:
		for _, br := range x.Branches {
			collectActions(br, visit)
		}
	case *aemilia.Guarded:
		collectActions(x.Body, visit)
	}
}

// interactionNames lists the declared interaction names of one direction.
func interactionNames(et *aemilia.ElemType, inputs bool) []string {
	var ports []aemilia.Port
	if inputs {
		ports = et.InPorts
		if len(ports) == 0 {
			out := make([]string, len(et.Inputs))
			copy(out, et.Inputs)
			return out
		}
	} else {
		ports = et.OutPorts
		if len(ports) == 0 {
			out := make([]string, len(et.Outputs))
			copy(out, et.Outputs)
			return out
		}
	}
	out := make([]string, len(ports))
	for i, p := range ports {
		out[i] = p.Name
	}
	return out
}

func (m *Model) indexNodes(p aemilia.Process, b *aemilia.Behavior) error {
	id := p.ID()
	if id < 0 || id >= len(m.nodes) {
		return fmt.Errorf("elab: node id %d out of range (unvalidated description?)", id)
	}
	m.nodes[id] = nodeInfo{proc: p, behavior: b}
	switch x := p.(type) {
	case *aemilia.Prefix:
		return m.indexNodes(x.Cont, b)
	case *aemilia.Choice:
		for _, br := range x.Branches {
			if err := m.indexNodes(br, b); err != nil {
				return err
			}
		}
	case *aemilia.Guarded:
		return m.indexNodes(x.Body, b)
	}
	return nil
}

// Arch returns the underlying architectural description.
func (m *Model) Arch() *aemilia.ArchiType { return m.arch }

// NumInstances returns the number of element instances.
func (m *Model) NumInstances() int { return len(m.insts) }

// InstanceName returns the name of the i-th instance.
func (m *Model) InstanceName(i int) string { return m.insts[i].name }

// InstanceIndex returns the index of the named instance.
func (m *Model) InstanceIndex(name string) (int, bool) {
	for i := range m.insts {
		if m.insts[i].name == name {
			return i, true
		}
	}
	return 0, false
}

// Initial returns the initial global state.
func (m *Model) Initial() State {
	s := make(State, len(m.insts))
	if m.quot != nil {
		for i := range m.quot {
			s[i] = LocalConfig{Node: m.quot[i].Init}
		}
		return s
	}
	for i := range m.insts {
		s[i] = m.insts[i].init
	}
	return s
}

// env builds the evaluation environment of a local configuration.
func (m *Model) env(c LocalConfig) (expr.MapEnv, error) {
	b := m.nodes[c.Node].behavior
	if len(b.Params) != len(c.Args) {
		return nil, fmt.Errorf("elab: configuration of behaviour %s has %d value(s) for %d parameter(s)",
			b.Name, len(c.Args), len(b.Params))
	}
	if len(b.Params) == 0 {
		return nil, nil
	}
	env := make(expr.MapEnv, len(b.Params))
	for i, p := range b.Params {
		env[p.Name] = c.Args[i]
	}
	return env, nil
}

// contConfig computes the configuration reached by following continuation
// cont under environment env (resolving behaviour invocations).
func (m *Model) contConfig(cont aemilia.Process, env expr.MapEnv, args []expr.Value) (LocalConfig, error) {
	if call, ok := cont.(*aemilia.Call); ok {
		target := call.Target()
		vals := make([]expr.Value, len(call.Args))
		for i, ae := range call.Args {
			v, err := ae.Eval(env)
			if err != nil {
				return LocalConfig{}, fmt.Errorf("elab: invocation of %s, argument %d: %w", call.Name, i+1, err)
			}
			vals[i] = v
		}
		return LocalConfig{Node: target.Body.ID(), Args: vals}, nil
	}
	return LocalConfig{Node: cont.ID(), Args: args}, nil
}

// LocalMoves returns the actions instance i can perform from its
// configuration in s, before applying the topology.
func (m *Model) LocalMoves(s State, i int) ([]LocalMove, error) {
	c := s[i]
	if m.quot != nil {
		// Quotient model: the block automaton's move table is precomputed;
		// the shared slice must not be mutated by callers.
		q := &m.quot[i]
		if c.Node < 0 || c.Node >= len(q.Moves) {
			return nil, fmt.Errorf("elab: block %d out of range for quotient instance %s", c.Node, m.insts[i].name)
		}
		return q.Moves[c.Node], nil
	}
	env, err := m.env(c)
	if err != nil {
		return nil, err
	}
	var moves []LocalMove
	var walk func(p aemilia.Process) error
	walk = func(p aemilia.Process) error {
		switch x := p.(type) {
		case *aemilia.Stop:
			return nil
		case *aemilia.Prefix:
			next, err := m.contConfig(x.Cont, env, c.Args)
			if err != nil {
				return err
			}
			moves = append(moves, LocalMove{Act: x.Act, Next: next})
			return nil
		case *aemilia.Choice:
			for _, br := range x.Branches {
				if err := walk(br); err != nil {
					return err
				}
			}
			return nil
		case *aemilia.Guarded:
			v, err := x.Cond.Eval(env)
			if err != nil {
				return fmt.Errorf("elab: guard in %s: %w", m.insts[i].name, err)
			}
			if v.Bool {
				return walk(x.Body)
			}
			return nil
		default:
			return fmt.Errorf("elab: unexpected process node %T in configuration", p)
		}
	}
	if err := walk(m.nodes[c.Node].proc); err != nil {
		return nil, err
	}
	return moves, nil
}

// LocallyEnabled reports whether the named action of the named instance is
// enabled in its local configuration in s, regardless of whether the
// topology lets it fire. This is the predicate behind reward monitors.
func (m *Model) LocallyEnabled(s State, instName, action string) (bool, error) {
	i, ok := m.InstanceIndex(instName)
	if !ok {
		return false, fmt.Errorf("elab: unknown instance %q", instName)
	}
	moves, err := m.LocalMoves(s, i)
	if err != nil {
		return false, err
	}
	for _, mv := range moves {
		if mv.Act.Name == action {
			return true, nil
		}
	}
	return false, nil
}

// Successors returns the global transitions enabled in s.
func (m *Model) Successors(s State) ([]Transition, error) {
	if len(s) != len(m.insts) {
		return nil, fmt.Errorf("elab: state has %d configurations for %d instances", len(s), len(m.insts))
	}
	local := make([][]LocalMove, len(m.insts))
	for i := range m.insts {
		mv, err := m.LocalMoves(s, i)
		if err != nil {
			return nil, err
		}
		local[i] = mv
	}

	var out []Transition
	for i := range m.insts {
		for _, mv := range local[i] {
			r, ok := m.insts[i].roles[mv.Act.Name]
			if !ok {
				// Internal action: interleave.
				next := cloneState(s)
				next[i] = mv.Next
				out = append(out, Transition{
					Label:        m.insts[i].internalLabel(mv.Act.Name),
					Rate:         mv.Act.Rate,
					Next:         next,
					ActiveInst:   i,
					ActiveAction: mv.Act.Name,
				})
				continue
			}
			switch r.kind {
			case roleBlocked, roleAttachedIn:
				// Blocked, or handled from the output side.
				continue
			case roleAttachedOut:
				if r.mult == aemilia.And && len(r.partners) > 1 {
					ts, err := m.broadcast(s, i, mv, r, local)
					if err != nil {
						return nil, err
					}
					out = append(out, ts...)
					continue
				}
				// UNI and OR: synchronize with one partner at a time.
				for pi, pr := range r.partners {
					for _, mv2 := range local[pr.inst] {
						if mv2.Act.Name != pr.action {
							continue
						}
						combined, err := rates.Combine(mv.Act.Rate, mv2.Act.Rate)
						if err != nil {
							return nil, fmt.Errorf("elab: %s.%s # %s.%s: %w",
								m.insts[i].name, mv.Act.Name, m.insts[pr.inst].name, mv2.Act.Name, err)
						}
						next := cloneState(s)
						next[i] = mv.Next
						next[pr.inst] = mv2.Next
						active, activeAction := i, mv.Act.Name
						if mv2.Act.Rate.IsActive() {
							active, activeAction = pr.inst, mv2.Act.Name
						}
						out = append(out, Transition{
							Label:        r.partnerLabels[pi],
							Rate:         combined,
							Next:         next,
							ActiveInst:   active,
							ActiveAction: activeAction,
						})
					}
				}
			case roleInternal:
				// Unreachable: internal actions have no role entry.
			}
		}
	}
	return out, nil
}

// broadcast builds the AND-synchronization transitions of an output move:
// every attached partner must offer the action; one transition is
// generated per combination of partner moves (usually one each).
func (m *Model) broadcast(s State, i int, mv LocalMove, r role, local [][]LocalMove) ([]Transition, error) {
	partners := r.partners
	// Collect each partner's candidate moves; all must be non-empty.
	cands := make([][]LocalMove, len(partners))
	for pi, pr := range partners {
		for _, mv2 := range local[pr.inst] {
			if mv2.Act.Name == pr.action {
				cands[pi] = append(cands[pi], mv2)
			}
		}
		if len(cands[pi]) == 0 {
			return nil, nil // some partner refuses: broadcast disabled
		}
	}
	var out []Transition
	idx := make([]int, len(partners))
	for {
		combined := mv.Act.Rate
		active, activeAction := i, mv.Act.Name
		next := cloneState(s)
		next[i] = mv.Next
		var err error
		for pi, pr := range partners {
			mv2 := cands[pi][idx[pi]]
			combined, err = rates.Combine(combined, mv2.Act.Rate)
			if err != nil {
				return nil, fmt.Errorf("elab: broadcast %s.%s # %s.%s: %w",
					m.insts[i].name, mv.Act.Name, m.insts[pr.inst].name, mv2.Act.Name, err)
			}
			if mv2.Act.Rate.IsActive() {
				active, activeAction = pr.inst, mv2.Act.Name
			}
			next[pr.inst] = mv2.Next
		}
		out = append(out, Transition{
			Label:        r.bcastLabel,
			Rate:         combined,
			Next:         next,
			ActiveInst:   active,
			ActiveAction: activeAction,
		})
		// Advance the combination counter.
		k := len(idx) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < len(cands[k]) {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			return out, nil
		}
	}
}

func cloneState(s State) State {
	next := make(State, len(s))
	copy(next, s)
	return next
}
