package elab

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/aemilia"
	"repro/internal/rates"
)

// broadcastModel: one publisher with an AND output feeding two
// subscribers; the broadcast moves all three instances at once.
func broadcastModel(t *testing.T, subscribers int) *Model {
	t.Helper()
	pub := aemilia.NewElemTypePorts("Pub_Type",
		nil, []aemilia.Port{aemilia.AndPort("publish")},
		aemilia.NewBehavior("P", nil,
			aemilia.Pre("prepare", rates.ExpRate(1),
				aemilia.Pre("publish", rates.Inf(1, 1), aemilia.Invoke("P")))))
	sub := aemilia.NewElemTypePorts("Sub_Type",
		[]aemilia.Port{aemilia.UniPort("hear")}, nil,
		aemilia.NewBehavior("S", nil,
			aemilia.Pre("hear", rates.PassiveRate(),
				aemilia.Pre("digest", rates.ExpRate(2), aemilia.Invoke("S")))))
	insts := []*aemilia.Instance{aemilia.NewInstance("P", "Pub_Type")}
	var atts []aemilia.Attachment
	names := []string{"A", "B", "C", "D"}
	for i := 0; i < subscribers; i++ {
		insts = append(insts, aemilia.NewInstance(names[i], "Sub_Type"))
		atts = append(atts, aemilia.Attach("P", "publish", names[i], "hear"))
	}
	a := aemilia.NewArchiType("Broadcast",
		[]*aemilia.ElemType{pub, sub}, insts, atts)
	m, err := Elaborate(a)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBroadcastMovesAllPartners(t *testing.T) {
	m := broadcastModel(t, 2)
	s := m.Initial()
	ts, err := m.Successors(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 || ts[0].Label != "P.prepare" {
		t.Fatalf("initial successors = %v", ts)
	}
	s = ts[0].Next
	ts, err = m.Successors(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 {
		t.Fatalf("expected a single broadcast transition, got %d", len(ts))
	}
	if ts[0].Label != "P.publish#A.hear#B.hear" {
		t.Errorf("broadcast label = %q", ts[0].Label)
	}
	// Both subscribers moved: each can now digest.
	s = ts[0].Next
	ts, err = m.Successors(s)
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]string, len(ts))
	for i, tr := range ts {
		labels[i] = tr.Label
	}
	sort.Strings(labels)
	if strings.Join(labels, ",") != "A.digest,B.digest,P.prepare" {
		t.Errorf("post-broadcast successors = %v", labels)
	}
}

func TestBroadcastBlocksUntilAllReady(t *testing.T) {
	m := broadcastModel(t, 2)
	s := m.Initial()
	// prepare, publish, then A digests; the next publish must wait for A.
	for _, want := range []string{"P.prepare", "P.publish#A.hear#B.hear"} {
		ts, err := m.Successors(s)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, tr := range ts {
			if tr.Label == want {
				s = tr.Next
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("missing transition %q", want)
		}
	}
	// Now both are digesting; P prepares the next frame.
	ts, err := m.Successors(s)
	if err != nil {
		t.Fatal(err)
	}
	var prep State
	for _, tr := range ts {
		if tr.Label == "P.prepare" {
			prep = tr.Next
		}
	}
	if prep == nil {
		t.Fatal("prepare not enabled")
	}
	// From prep, the publish is blocked because A and B still digest:
	// only digests are enabled.
	ts, err = m.Successors(prep)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range ts {
		if strings.HasPrefix(tr.Label, "P.publish") {
			t.Errorf("broadcast should block while a subscriber is busy: %v", tr.Label)
		}
	}
}

// orModel: a server with an OR output serving two clients alternately.
func orModel(t *testing.T) *Model {
	t.Helper()
	srv := aemilia.NewElemTypePorts("Srv_Type",
		nil, []aemilia.Port{aemilia.OrPort("serve")},
		aemilia.NewBehavior("S", nil,
			aemilia.Pre("serve", rates.ExpRate(3), aemilia.Invoke("S"))))
	cli := aemilia.NewElemTypePorts("Cli_Type",
		[]aemilia.Port{aemilia.UniPort("obtain")}, nil,
		aemilia.NewBehavior("C", nil,
			aemilia.Pre("obtain", rates.PassiveRate(),
				aemilia.Pre("use", rates.ExpRate(1), aemilia.Invoke("C")))))
	a := aemilia.NewArchiType("Shared",
		[]*aemilia.ElemType{srv, cli},
		[]*aemilia.Instance{
			aemilia.NewInstance("S", "Srv_Type"),
			aemilia.NewInstance("C1", "Cli_Type"),
			aemilia.NewInstance("C2", "Cli_Type"),
		},
		[]aemilia.Attachment{
			aemilia.Attach("S", "serve", "C1", "obtain"),
			aemilia.Attach("S", "serve", "C2", "obtain"),
		})
	m, err := Elaborate(a)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestOrServesOnePartnerAtATime(t *testing.T) {
	m := orModel(t)
	ts, err := m.Successors(m.Initial())
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]string, len(ts))
	for i, tr := range ts {
		labels[i] = tr.Label
	}
	sort.Strings(labels)
	want := "S.serve#C1.obtain,S.serve#C2.obtain"
	if strings.Join(labels, ",") != want {
		t.Fatalf("OR successors = %v, want %s", labels, want)
	}
	// After serving C1, the server can still serve C2 while C1 uses.
	s := ts[0].Next
	ts, err = m.Successors(s)
	if err != nil {
		t.Fatal(err)
	}
	var sawServe2, sawUse1 bool
	for _, tr := range ts {
		switch tr.Label {
		case "S.serve#C2.obtain":
			sawServe2 = true
		case "C1.use":
			sawUse1 = true
		}
	}
	if !sawServe2 || !sawUse1 {
		t.Errorf("after first serve: %v", ts)
	}
}

func TestAndInputRejected(t *testing.T) {
	srv := aemilia.NewElemTypePorts("S_Type",
		nil, []aemilia.Port{aemilia.UniPort("ping")},
		aemilia.NewBehavior("S", nil,
			aemilia.Pre("ping", rates.UntimedRate(), aemilia.Invoke("S"))))
	rcv := aemilia.NewElemTypePorts("R_Type",
		[]aemilia.Port{aemilia.AndPort("hear")}, nil,
		aemilia.NewBehavior("R", nil,
			aemilia.Pre("hear", rates.UntimedRate(), aemilia.Invoke("R"))))
	a := aemilia.NewArchiType("X",
		[]*aemilia.ElemType{srv, rcv},
		[]*aemilia.Instance{
			aemilia.NewInstance("S", "S_Type"),
			aemilia.NewInstance("R", "R_Type"),
		},
		[]aemilia.Attachment{aemilia.Attach("S", "ping", "R", "hear")})
	if _, err := Elaborate(a); err == nil ||
		!strings.Contains(err.Error(), "only supported on output") {
		t.Fatalf("AND input should be rejected, got %v", err)
	}
}

func TestUniStillRejectsDoubleAttachment(t *testing.T) {
	srv := aemilia.NewElemTypePorts("S_Type",
		nil, []aemilia.Port{aemilia.UniPort("ping")},
		aemilia.NewBehavior("S", nil,
			aemilia.Pre("ping", rates.UntimedRate(), aemilia.Invoke("S"))))
	rcv := aemilia.NewElemTypePorts("R_Type",
		[]aemilia.Port{aemilia.UniPort("hear")}, nil,
		aemilia.NewBehavior("R", nil,
			aemilia.Pre("hear", rates.UntimedRate(), aemilia.Invoke("R"))))
	a := aemilia.NewArchiType("X",
		[]*aemilia.ElemType{srv, rcv},
		[]*aemilia.Instance{
			aemilia.NewInstance("S", "S_Type"),
			aemilia.NewInstance("R1", "R_Type"),
			aemilia.NewInstance("R2", "R_Type"),
		},
		[]aemilia.Attachment{
			aemilia.Attach("S", "ping", "R1", "hear"),
			aemilia.Attach("S", "ping", "R2", "hear"),
		})
	if _, err := Elaborate(a); err == nil ||
		!strings.Contains(err.Error(), "more than once (UNI)") {
		t.Fatalf("double UNI attachment should be rejected, got %v", err)
	}
}

func TestBroadcastRateDiscipline(t *testing.T) {
	// Two active participants in a broadcast must be rejected.
	pub := aemilia.NewElemTypePorts("Pub_Type",
		nil, []aemilia.Port{aemilia.AndPort("publish")},
		aemilia.NewBehavior("P", nil,
			aemilia.Pre("publish", rates.ExpRate(1), aemilia.Invoke("P"))))
	subActive := aemilia.NewElemTypePorts("Sub_Type",
		[]aemilia.Port{aemilia.UniPort("hear")}, nil,
		aemilia.NewBehavior("S", nil,
			aemilia.Pre("hear", rates.ExpRate(2), aemilia.Invoke("S"))))
	a := aemilia.NewArchiType("BadBroadcast",
		[]*aemilia.ElemType{pub, subActive},
		[]*aemilia.Instance{
			aemilia.NewInstance("P", "Pub_Type"),
			aemilia.NewInstance("A", "Sub_Type"),
			aemilia.NewInstance("B", "Sub_Type"),
		},
		[]aemilia.Attachment{
			aemilia.Attach("P", "publish", "A", "hear"),
			aemilia.Attach("P", "publish", "B", "hear"),
		})
	m, err := Elaborate(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Successors(m.Initial()); err == nil {
		t.Fatal("broadcast with several active participants should fail")
	}
}
