package elab

import (
	"fmt"
	"strconv"
	"strings"
)

// InstanceQuotient is the reduced local automaton of one instance, produced
// by compositional minimization (internal/compose): the instance's reachable
// local configuration graph lumped into blocks. In a quotient model the
// local configuration of the instance is LocalConfig{Node: block, Args: nil}
// — the block identifier takes the place of the process node, and the
// canonical state encoding (AppendKey/DecodeKey) is unchanged.
type InstanceQuotient struct {
	// Init is the initial block.
	Init int
	// Moves holds, per block, the local moves of the block's representative
	// configuration with each Next retargeted to its block. Move lists are
	// shared by every state in that block and must not be mutated.
	Moves [][]LocalMove
	// Descs describes each block's representative configuration, carried
	// into Describe so diagnostics on a quotient model stay readable.
	Descs []string
}

// Quotient returns a model over the same topology in which every instance's
// behaviour is replaced by the given reduced automaton (one InstanceQuotient
// per instance, in declaration order). The returned model shares the
// immutable topology tables with the receiver and satisfies the same
// concurrency contract; the receiver is not modified.
//
// Soundness is the caller's bargain: the quotient model composes exactly
// like the original iff each lumping is a Markovian bisimulation that also
// respects synchronization multiplicities and the locally-enabled
// predicates the analysis observes — which is what internal/compose
// constructs. LocallyEnabled on a quotient model answers from the block
// representative's moves, so only predicates the lumping was refined
// against are meaningful.
func (m *Model) Quotient(qs []InstanceQuotient) (*Model, error) {
	if len(qs) != len(m.insts) {
		return nil, fmt.Errorf("elab: quotient has %d automata for %d instances", len(qs), len(m.insts))
	}
	if m.quot != nil {
		return nil, fmt.Errorf("elab: model is already a quotient")
	}
	q := *m
	q.quot = qs
	return &q, nil
}

// IsQuotient reports whether the model is a compositional quotient.
func (m *Model) IsQuotient() bool { return m.quot != nil }

// ActionFireable reports whether the named action of instance i can ever
// fire in the composition: internal actions and attached interactions can,
// unattached (blocked) interactions cannot — they stay locally enabled but
// produce no transitions. Compositional minimization uses this to walk the
// local configuration graph along exactly the moves that advance the
// instance.
func (m *Model) ActionFireable(i int, action string) bool {
	r, ok := m.insts[i].roles[action]
	if !ok {
		return true // internal action
	}
	return r.kind != roleBlocked
}

// InitialLocal returns the initial local configuration of instance i.
func (m *Model) InitialLocal(i int) LocalConfig {
	if m.quot != nil {
		return LocalConfig{Node: m.quot[i].Init}
	}
	return m.insts[i].init
}

// AppendLocalKey appends the canonical encoding of one instance's local
// configuration to dst — the single-instance analogue of AppendKey, used by
// compositional minimization to intern local configuration graphs.
func (m *Model) AppendLocalKey(dst []byte, c LocalConfig) []byte {
	return m.AppendKey(dst, State{c})
}

// LocalMovesOf returns the local moves of instance i in configuration c,
// without requiring a full global state. It is the per-component successor
// function compositional minimization explores.
func (m *Model) LocalMovesOf(i int, c LocalConfig) ([]LocalMove, error) {
	s := make(State, len(m.insts))
	s[i] = c
	return m.LocalMoves(s, i)
}

// DescribeLocal renders one instance's local configuration (the
// single-instance analogue of Describe).
func (m *Model) DescribeLocal(i int, c LocalConfig) string {
	if m.quot != nil {
		return m.insts[i].name + "=" + m.quot[i].Descs[c.Node]
	}
	info := m.nodes[c.Node]
	var sb strings.Builder
	sb.WriteString(m.insts[i].name)
	sb.WriteByte('=')
	sb.WriteString(info.behavior.Name)
	sb.WriteByte('(')
	for j, v := range c.Args {
		if j > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.String())
	}
	sb.WriteByte(')')
	if off := c.Node - info.behavior.Body.ID(); off != 0 {
		sb.WriteString("+" + strconv.Itoa(off))
	}
	return sb.String()
}
