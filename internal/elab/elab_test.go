package elab

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/aemilia"
	"repro/internal/expr"
	"repro/internal/rates"
)

// pingPong builds A -ping-> B, B -ack-> A with an internal "think" in B.
func pingPong(t *testing.T) *Model {
	t.Helper()
	sender := aemilia.NewElemType("Sender_Type",
		[]string{"ack"}, []string{"ping"},
		aemilia.NewBehavior("Send", nil,
			aemilia.Pre("ping", rates.UntimedRate(),
				aemilia.Pre("ack", rates.UntimedRate(), aemilia.Invoke("Send")))),
	)
	receiver := aemilia.NewElemType("Receiver_Type",
		[]string{"ping"}, []string{"ack"},
		aemilia.NewBehavior("Recv", nil,
			aemilia.Pre("ping", rates.UntimedRate(),
				aemilia.Pre("think", rates.UntimedRate(),
					aemilia.Pre("ack", rates.UntimedRate(), aemilia.Invoke("Recv"))))),
	)
	a := aemilia.NewArchiType("PingPong",
		[]*aemilia.ElemType{sender, receiver},
		[]*aemilia.Instance{
			aemilia.NewInstance("A", "Sender_Type"),
			aemilia.NewInstance("B", "Receiver_Type"),
		},
		[]aemilia.Attachment{
			aemilia.Attach("A", "ping", "B", "ping"),
			aemilia.Attach("B", "ack", "A", "ack"),
		},
	)
	m, err := Elaborate(a)
	if err != nil {
		t.Fatalf("Elaborate: %v", err)
	}
	return m
}

// buffer builds a parameterized bounded buffer with producer and consumer.
func buffer(t *testing.T, capacity int64) *Model {
	t.Helper()
	buf := aemilia.NewElemType("Buffer_Type",
		[]string{"put"}, []string{"get"},
		aemilia.NewBehavior("Buffer", []aemilia.Param{aemilia.IntParam("n")},
			aemilia.Ch(
				aemilia.When(expr.Bin(expr.OpLt, expr.Ref("n"), expr.Int(capacity)),
					aemilia.Pre("put", rates.PassiveRate(),
						aemilia.Invoke("Buffer", expr.Bin(expr.OpAdd, expr.Ref("n"), expr.Int(1))))),
				aemilia.When(expr.Bin(expr.OpGt, expr.Ref("n"), expr.Int(0)),
					aemilia.Pre("get", rates.PassiveRate(),
						aemilia.Invoke("Buffer", expr.Bin(expr.OpSub, expr.Ref("n"), expr.Int(1))))),
			)),
	)
	prod := aemilia.NewElemType("Prod_Type", nil, []string{"put"},
		aemilia.NewBehavior("P", nil,
			aemilia.Pre("put", rates.ExpRate(2), aemilia.Invoke("P"))))
	cons := aemilia.NewElemType("Cons_Type", []string{"get"}, nil,
		aemilia.NewBehavior("C", nil,
			aemilia.Pre("get", rates.ExpRate(3), aemilia.Invoke("C"))))
	a := aemilia.NewArchiType("Counter",
		[]*aemilia.ElemType{buf, prod, cons},
		[]*aemilia.Instance{
			aemilia.NewInstance("B", "Buffer_Type", expr.Int(0)),
			aemilia.NewInstance("P", "Prod_Type"),
			aemilia.NewInstance("C", "Cons_Type"),
		},
		[]aemilia.Attachment{
			aemilia.Attach("P", "put", "B", "put"),
			aemilia.Attach("B", "get", "C", "get"),
		},
	)
	m, err := Elaborate(a)
	if err != nil {
		t.Fatalf("Elaborate: %v", err)
	}
	return m
}

func labels(ts []Transition) []string {
	out := make([]string, len(ts))
	for i, tr := range ts {
		out[i] = tr.Label
	}
	sort.Strings(out)
	return out
}

func TestInitialAndSuccessors(t *testing.T) {
	m := pingPong(t)
	s0 := m.Initial()
	if len(s0) != 2 {
		t.Fatalf("initial state has %d configs, want 2", len(s0))
	}
	ts, err := m.Successors(s0)
	if err != nil {
		t.Fatal(err)
	}
	got := labels(ts)
	want := []string{"A.ping#B.ping"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("initial successors = %v, want %v", got, want)
	}

	s1 := ts[0].Next
	ts, err = m.Successors(s1)
	if err != nil {
		t.Fatal(err)
	}
	if got := labels(ts); strings.Join(got, ",") != "B.think" {
		t.Fatalf("after ping, successors = %v, want [B.think]", got)
	}

	s2 := ts[0].Next
	ts, err = m.Successors(s2)
	if err != nil {
		t.Fatal(err)
	}
	if got := labels(ts); strings.Join(got, ",") != "B.ack#A.ack" {
		t.Fatalf("after think, successors = %v, want [B.ack#A.ack]", got)
	}

	s3 := ts[0].Next
	if !Equal(s3, s0) {
		t.Errorf("cycle should return to the initial state; got %s", m.Describe(s3))
	}
}

func TestCycleReturnsSameKey(t *testing.T) {
	m := pingPong(t)
	s := m.Initial()
	k0 := m.Key(s)
	for range 3 {
		ts, err := m.Successors(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(ts) != 1 {
			t.Fatalf("expected deterministic cycle, got %d transitions", len(ts))
		}
		s = ts[0].Next
	}
	if m.Key(s) != k0 {
		t.Errorf("state key after full cycle differs")
	}
}

func TestBufferGuardsAndParams(t *testing.T) {
	m := buffer(t, 2)
	s := m.Initial()

	// Empty buffer: only put is possible.
	ts, err := m.Successors(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := labels(ts); strings.Join(got, ",") != "P.put#B.put" {
		t.Fatalf("empty buffer successors = %v", got)
	}
	if ts[0].Rate.Kind != rates.Exp || ts[0].Rate.Lambda != 2 {
		t.Errorf("put rate = %v, want exp(2)", ts[0].Rate)
	}
	if ts[0].ActiveInst != 1 || ts[0].ActiveAction != "put" {
		t.Errorf("active side = (%d, %s), want (1, put)", ts[0].ActiveInst, ts[0].ActiveAction)
	}

	// One element: both put and get possible.
	s = ts[0].Next
	ts, err = m.Successors(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := labels(ts); strings.Join(got, ",") != "B.get#C.get,P.put#B.put" {
		t.Fatalf("one-element successors = %v", got)
	}

	// Fill to capacity: only get possible.
	for _, tr := range ts {
		if tr.Label == "P.put#B.put" {
			s = tr.Next
		}
	}
	ts, err = m.Successors(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := labels(ts); strings.Join(got, ",") != "B.get#C.get" {
		t.Fatalf("full buffer successors = %v", got)
	}
	if !strings.Contains(m.Describe(s), "B=Buffer(2)") {
		t.Errorf("Describe = %q, want to contain B=Buffer(2)", m.Describe(s))
	}
}

func TestLocallyEnabled(t *testing.T) {
	m := buffer(t, 2)
	s := m.Initial()
	ok, err := m.LocallyEnabled(s, "B", "put")
	if err != nil || !ok {
		t.Errorf("put should be locally enabled on empty buffer: %v %v", ok, err)
	}
	ok, err = m.LocallyEnabled(s, "B", "get")
	if err != nil || ok {
		t.Errorf("get should not be enabled on empty buffer: %v %v", ok, err)
	}
	if _, err := m.LocallyEnabled(s, "ZZ", "x"); err == nil {
		t.Error("unknown instance should error")
	}
}

func TestBlockedInteraction(t *testing.T) {
	// An output interaction that is never attached must not fire, but must
	// stay locally enabled (monitor idiom).
	et := aemilia.NewElemType("T", nil, []string{"mon"},
		aemilia.NewBehavior("B", nil,
			aemilia.Ch(
				aemilia.Pre("work", rates.ExpRate(1), aemilia.Invoke("B")),
				aemilia.Pre("mon", rates.PassiveRate(), aemilia.Invoke("B")),
			)))
	a := aemilia.NewArchiType("A", []*aemilia.ElemType{et},
		[]*aemilia.Instance{aemilia.NewInstance("I", "T")}, nil)
	m, err := Elaborate(a)
	if err != nil {
		t.Fatal(err)
	}
	s := m.Initial()
	ts, err := m.Successors(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := labels(ts); strings.Join(got, ",") != "I.work" {
		t.Fatalf("successors = %v, want [I.work] (mon blocked)", got)
	}
	ok, err := m.LocallyEnabled(s, "I", "mon")
	if err != nil || !ok {
		t.Errorf("mon should be locally enabled: %v %v", ok, err)
	}
}

func TestStopDeadlocks(t *testing.T) {
	et := aemilia.NewElemType("T", nil, nil,
		aemilia.NewBehavior("B", nil,
			aemilia.Pre("once", rates.ExpRate(1), aemilia.Halt())))
	a := aemilia.NewArchiType("A", []*aemilia.ElemType{et},
		[]*aemilia.Instance{aemilia.NewInstance("I", "T")}, nil)
	m, err := Elaborate(a)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := m.Successors(m.Initial())
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 {
		t.Fatalf("want 1 transition, got %d", len(ts))
	}
	ts2, err := m.Successors(ts[0].Next)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts2) != 0 {
		t.Errorf("stop state should deadlock, got %v", labels(ts2))
	}
}

func TestTwoActiveSyncRejected(t *testing.T) {
	p := aemilia.NewElemType("P", nil, []string{"a"},
		aemilia.NewBehavior("PB", nil, aemilia.Pre("a", rates.ExpRate(1), aemilia.Invoke("PB"))))
	q := aemilia.NewElemType("Q", []string{"a"}, nil,
		aemilia.NewBehavior("QB", nil, aemilia.Pre("a", rates.ExpRate(2), aemilia.Invoke("QB"))))
	a := aemilia.NewArchiType("A",
		[]*aemilia.ElemType{p, q},
		[]*aemilia.Instance{aemilia.NewInstance("P1", "P"), aemilia.NewInstance("Q1", "Q")},
		[]aemilia.Attachment{aemilia.Attach("P1", "a", "Q1", "a")})
	m, err := Elaborate(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Successors(m.Initial()); err == nil {
		t.Error("two active participants should be rejected")
	}
}

func TestDescribeInitial(t *testing.T) {
	m := buffer(t, 2)
	d := m.Describe(m.Initial())
	for _, want := range []string{"B=Buffer(0)", "P=P()", "C=C()"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe = %q, missing %q", d, want)
		}
	}
}

func TestInstanceIndex(t *testing.T) {
	m := pingPong(t)
	if i, ok := m.InstanceIndex("B"); !ok || i != 1 {
		t.Errorf("InstanceIndex(B) = (%d, %t), want (1, true)", i, ok)
	}
	if _, ok := m.InstanceIndex("nope"); ok {
		t.Error("InstanceIndex(nope) should fail")
	}
	if m.NumInstances() != 2 || m.InstanceName(0) != "A" {
		t.Errorf("instance accessors wrong")
	}
}

func TestKeyDistinguishesArgs(t *testing.T) {
	m := buffer(t, 3)
	s := m.Initial()
	keys := map[string]bool{m.Key(s): true}
	for range 3 {
		ts, err := m.Successors(s)
		if err != nil {
			t.Fatal(err)
		}
		var next State
		for _, tr := range ts {
			if strings.HasPrefix(tr.Label, "P.put") {
				next = tr.Next
			}
		}
		if next == nil {
			t.Fatal("no put transition found")
		}
		s = next
		k := m.Key(s)
		if keys[k] {
			t.Fatalf("duplicate key for distinct buffer fill level")
		}
		keys[k] = true
	}
}
