package compose

import (
	"math"
	"testing"

	"repro/internal/aemilia"
	"repro/internal/bisim"
	"repro/internal/ctmc"
	"repro/internal/elab"
	"repro/internal/expr"
	"repro/internal/lts"
	"repro/internal/rates"
)

func mustModel(t *testing.T, a *aemilia.ArchiType) *elab.Model {
	t.Helper()
	m, err := elab.Elaborate(a)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// lumpableModel composes a worker with a genuinely lumpable local
// automaton — an internal immediate choice between two branches whose
// continuations are behaviourally identical (same "work" offer back to
// the start) — with a passive client synchronized on the work action and
// an independent two-phase ticker. The worker's three local
// configurations lump to two blocks, so the composed quotient is strictly
// smaller than the full product while remaining Markovian bisimilar.
func lumpableModel(t *testing.T) *elab.Model {
	t.Helper()
	worker := aemilia.NewElemType("Worker_Type", nil, []string{"work"},
		aemilia.NewBehavior("W", nil,
			aemilia.Ch(
				aemilia.Pre("pick", rates.Inf(1, 1),
					aemilia.Pre("work", rates.ExpRate(5), aemilia.Invoke("W"))),
				aemilia.Pre("pick", rates.Inf(1, 2),
					aemilia.Pre("work", rates.ExpRate(5), aemilia.Invoke("W"))),
			)))
	client := aemilia.NewElemType("Client_Type", []string{"work"}, nil,
		aemilia.NewBehavior("C", nil,
			aemilia.Pre("work", rates.PassiveRate(), aemilia.Invoke("C"))))
	ticker := aemilia.NewElemType("Ticker_Type", nil, nil,
		aemilia.NewBehavior("T", nil,
			aemilia.Pre("tick", rates.ExpRate(1),
				aemilia.Pre("tock", rates.ExpRate(2), aemilia.Invoke("T")))))
	a := aemilia.NewArchiType("Lumpable",
		[]*aemilia.ElemType{worker, client, ticker},
		[]*aemilia.Instance{
			aemilia.NewInstance("W", "Worker_Type"),
			aemilia.NewInstance("C", "Client_Type"),
			aemilia.NewInstance("T", "Ticker_Type"),
		},
		[]aemilia.Attachment{
			aemilia.Attach("W", "work", "C", "work"),
		})
	return mustModel(t, a)
}

// minimalModel is a producer/buffer/consumer line whose local automata
// are already minimal: every configuration is distinguishable, so the
// quotient must be the identity.
func minimalModel(t *testing.T) *elab.Model {
	t.Helper()
	buf := aemilia.NewElemType("Buffer_Type",
		[]string{"put"}, []string{"get"},
		aemilia.NewBehavior("Buffer", []aemilia.Param{aemilia.IntParam("n")},
			aemilia.Ch(
				aemilia.When(expr.Bin(expr.OpLt, expr.Ref("n"), expr.Int(3)),
					aemilia.Pre("put", rates.PassiveRate(),
						aemilia.Invoke("Buffer", expr.Bin(expr.OpAdd, expr.Ref("n"), expr.Int(1))))),
				aemilia.When(expr.Bin(expr.OpGt, expr.Ref("n"), expr.Int(0)),
					aemilia.Pre("get", rates.PassiveRate(),
						aemilia.Invoke("Buffer", expr.Bin(expr.OpSub, expr.Ref("n"), expr.Int(1))))),
			)))
	prod := aemilia.NewElemType("Prod_Type", nil, []string{"put"},
		aemilia.NewBehavior("P", nil,
			aemilia.Pre("put", rates.ExpRate(2), aemilia.Invoke("P"))))
	cons := aemilia.NewElemType("Cons_Type", []string{"get"}, nil,
		aemilia.NewBehavior("C", nil,
			aemilia.Pre("get", rates.ExpRate(3), aemilia.Invoke("C"))))
	a := aemilia.NewArchiType("Line",
		[]*aemilia.ElemType{buf, prod, cons},
		[]*aemilia.Instance{
			aemilia.NewInstance("B", "Buffer_Type", expr.Int(0)),
			aemilia.NewInstance("P", "Prod_Type"),
			aemilia.NewInstance("C", "Cons_Type"),
		},
		[]aemilia.Attachment{
			aemilia.Attach("P", "put", "B", "put"),
			aemilia.Attach("B", "get", "C", "get"),
		})
	return mustModel(t, a)
}

// TestMinimizeLumpsRedundantBranches pins the reductive case: the
// worker's redundant branches lump, the composed quotient is strictly
// smaller, and it stays Markovian bisimilar to the full product.
func TestMinimizeLumpsRedundantBranches(t *testing.T) {
	m := lumpableModel(t)
	qm, st, err := Minimize(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Instances[0].Name != "W" || st.Instances[0].Configs != 3 || st.Instances[0].Blocks != 2 {
		t.Fatalf("worker reduction = %+v, want W 3→2", st.Instances[0])
	}
	fullBound, minBound := st.ProductBound()
	if minBound >= fullBound {
		t.Fatalf("product bound did not shrink: %g → %g", fullBound, minBound)
	}
	full, err := lts.Generate(m, lts.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	quot, err := lts.Generate(qm, lts.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if quot.NumStates >= full.NumStates {
		t.Fatalf("quotient has %d states, full has %d: no reduction", quot.NumStates, full.NumStates)
	}
	if !bisim.MarkovianEquivalent(full, quot) {
		t.Fatal("composed quotient is not Markovian bisimilar to the full product")
	}
}

// TestMinimizeIdentityOnMinimalComponents pins the conservative case: on
// already-minimal local automata the quotient is the identity and the
// composed space is unchanged in size and behaviour.
func TestMinimizeIdentityOnMinimalComponents(t *testing.T) {
	m := minimalModel(t)
	qm, st, err := Minimize(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, is := range st.Instances {
		if is.Blocks != is.Configs {
			t.Fatalf("instance %s lumped %d→%d on a minimal automaton", is.Name, is.Configs, is.Blocks)
		}
	}
	full, err := lts.Generate(m, lts.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	quot, err := lts.Generate(qm, lts.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if quot.NumStates != full.NumStates {
		t.Fatalf("quotient has %d states, full has %d", quot.NumStates, full.NumStates)
	}
	if !bisim.MarkovianEquivalent(full, quot) {
		t.Fatal("identity quotient is not Markovian bisimilar to the original")
	}
}

// TestMinimizePreservesPredicateProbabilities pins the measure-layer
// contract: a STATE_REWARD predicate evaluated on the quotient has
// exactly the same steady-state probability as on the full product,
// because the initial partition separates configurations by observed
// local enabledness.
func TestMinimizePreservesPredicateProbabilities(t *testing.T) {
	m := lumpableModel(t)
	preds := []lts.StatePred{{Instance: "T", Action: "tock"}}
	qm, _, err := Minimize(m, Options{Preds: preds})
	if err != nil {
		t.Fatal(err)
	}
	prob := func(model *elab.Model) float64 {
		l, err := lts.Generate(model, lts.GenerateOptions{Predicates: preds})
		if err != nil {
			t.Fatal(err)
		}
		chain, err := ctmc.Build(l)
		if err != nil {
			t.Fatal(err)
		}
		pi, err := chain.SteadyState(ctmc.SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		p, err := chain.ProbLocallyEnabled(pi, "T.tock")
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	pFull, pQuot := prob(m), prob(qm)
	if math.Abs(pFull-pQuot) > 1e-12 {
		t.Fatalf("P[T.tock enabled]: full %.15g, quotient %.15g", pFull, pQuot)
	}
	if pFull <= 0 || pFull >= 1 {
		t.Fatalf("degenerate predicate probability %g: the test model no longer exercises the refinement", pFull)
	}
}

type flatEdge struct {
	src, dst int
	label    string
	rate     rates.Rate
}

func flatten(l *lts.LTS) []flatEdge {
	var out []flatEdge
	l.Edges(func(src, dst, label int, r rates.Rate) {
		out = append(out, flatEdge{src, dst, l.LabelName(label), r})
	})
	return out
}

// TestMinimizeDeterministic pins the determinism rule: two independent
// Minimize runs produce the same quotient, and generation from it is
// bit-identical at any worker count.
func TestMinimizeDeterministic(t *testing.T) {
	m := lumpableModel(t)
	qm1, st1, err := Minimize(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	qm2, st2, err := Minimize(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st1.String() != st2.String() {
		t.Fatalf("stats differ across runs: %q vs %q", st1, st2)
	}
	ref, err := lts.Generate(qm1, lts.GenerateOptions{GenWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	refEdges := flatten(ref)
	for _, workers := range []int{2, 8} {
		l, err := lts.Generate(qm2, lts.GenerateOptions{GenWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if l.NumStates != ref.NumStates || l.Initial != ref.Initial {
			t.Fatalf("workers=%d: %d states (initial %d), want %d (initial %d)",
				workers, l.NumStates, l.Initial, ref.NumStates, ref.Initial)
		}
		edges := flatten(l)
		if len(edges) != len(refEdges) {
			t.Fatalf("workers=%d: %d edges, want %d", workers, len(edges), len(refEdges))
		}
		for i := range edges {
			if edges[i] != refEdges[i] {
				t.Fatalf("workers=%d: edge %d = %+v, want %+v", workers, i, edges[i], refEdges[i])
			}
		}
	}
}

// TestMinimizeRejectsQuotient pins the no-double-lumping guard.
func TestMinimizeRejectsQuotient(t *testing.T) {
	m := lumpableModel(t)
	qm, _, err := Minimize(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Minimize(qm, Options{}); err == nil {
		t.Fatal("Minimize accepted an already-quotient model")
	}
}
