// Package compose implements compositional minimization: each component of
// an elaborated model is lumped *before* composition, so the parallel
// product is generated over reduced local automata and the full product
// never materializes.
//
// Per topology instance the package (1) enumerates the reachable local
// configuration graph — local moves only, deterministic breadth-first
// order over interned configurations; (2) partition-refines it with the
// internal/bisim machinery under a Markovian-lumping relation whose
// initial partition separates configurations by their enabled
// (action, role kind, rate annotation, slot) signature and by every
// locally-enabled predicate the measure layer observes; (3) replaces the
// instance's behaviour by the quotient block automaton (block
// representative = lowest interned configuration, block numbering a pure
// function of the model). The reduced model feeds the ordinary
// level-synchronized generator unchanged.
//
// The lumping relation is composition-sound (see
// bisim.MarkovianPartitionFrom): blocks agree on cumulative exponential
// rates, immediate branching, passive multiplicities and slotted offers
// per action and target block, so the composed quotient is Markovian
// bisimilar to the composed original and every STATE_REWARD /
// TRANS_REWARD measure built from the declared predicates is preserved
// exactly.
package compose

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/bisim"
	"repro/internal/elab"
	"repro/internal/lts"
	"repro/internal/rates"
	"repro/internal/statespace"
)

// Options tunes Minimize.
type Options struct {
	// Preds are the locally-enabled predicates the analysis observes
	// (measure.StatePreds of the measure set). The initial partition
	// separates configurations that disagree on any of them, so
	// LocallyEnabled answers on the quotient model are exact for these
	// predicates. Predicates not listed here may disagree within a block.
	Preds []lts.StatePred
	// MaxLocalConfigs bounds one instance's local configuration graph
	// (0 = default 1_000_000) — a safety net, not a tuning knob: local
	// graphs are tiny compared to the product they would otherwise inflate.
	MaxLocalConfigs int
}

// InstanceStats reports the reduction achieved on one instance.
type InstanceStats struct {
	// Name is the instance name.
	Name string
	// Configs is the size of the reachable local configuration graph.
	Configs int
	// Blocks is the number of lumped blocks.
	Blocks int
}

// Stats reports per-instance reduction of one Minimize run.
type Stats struct {
	// Instances has one entry per topology instance, in declaration order.
	Instances []InstanceStats
}

// ProductBound returns the product of per-instance automaton sizes before
// and after lumping — the worst-case composed spaces, for diagnostics.
func (st *Stats) ProductBound() (full, minimized float64) {
	full, minimized = 1, 1
	for _, is := range st.Instances {
		full *= float64(is.Configs)
		minimized *= float64(is.Blocks)
	}
	return full, minimized
}

// String renders the reduction summary.
func (st *Stats) String() string {
	var sb strings.Builder
	for i, is := range st.Instances {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s %d→%d", is.Name, is.Configs, is.Blocks)
	}
	return sb.String()
}

// Minimize lumps every component of the model and returns the quotient
// model along with the per-instance reduction statistics. The input model
// is not modified. The construction is deterministic: configuration
// identifiers follow breadth-first discovery order, block identifiers
// follow lowest-member order, so the result is a pure function of the
// model and options.
func Minimize(m *elab.Model, opts Options) (*elab.Model, *Stats, error) {
	if m.IsQuotient() {
		return nil, nil, fmt.Errorf("compose: model is already a quotient")
	}
	maxConfigs := opts.MaxLocalConfigs
	if maxConfigs <= 0 {
		maxConfigs = 1_000_000
	}
	qs := make([]elab.InstanceQuotient, m.NumInstances())
	st := &Stats{Instances: make([]InstanceStats, m.NumInstances())}
	for i := 0; i < m.NumInstances(); i++ {
		q, is, err := minimizeInstance(m, i, opts.Preds, maxConfigs)
		if err != nil {
			return nil, nil, fmt.Errorf("compose: instance %s: %w", m.InstanceName(i), err)
		}
		qs[i] = q
		st.Instances[i] = is
	}
	qm, err := m.Quotient(qs)
	if err != nil {
		return nil, nil, err
	}
	return qm, st, nil
}

// minimizeInstance builds the lumped block automaton of one instance.
func minimizeInstance(m *elab.Model, i int, preds []lts.StatePred, maxConfigs int) (elab.InstanceQuotient, InstanceStats, error) {
	name := m.InstanceName(i)
	var zero elab.InstanceQuotient

	// 1. Reachable local configuration graph, breadth-first. Every local
	// move is followed — including blocked interactions, whose targets the
	// quotient move tables must still be able to name — but only fireable
	// moves become transitions of the refinement LTS below.
	in := statespace.NewInterner()
	var configs []elab.LocalConfig
	var moves [][]elab.LocalMove
	keyBuf := make([]byte, 0, 16)
	intern := func(c elab.LocalConfig) (uint32, error) {
		keyBuf = m.AppendLocalKey(keyBuf[:0], c)
		id, fresh := in.Intern(keyBuf)
		if fresh {
			if len(configs) >= maxConfigs {
				return 0, fmt.Errorf("local configuration graph exceeds %d configurations", maxConfigs)
			}
			configs = append(configs, c)
		}
		return id, nil
	}
	init := m.InitialLocal(i)
	if _, err := intern(init); err != nil {
		return zero, InstanceStats{}, err
	}
	for qi := 0; qi < len(configs); qi++ {
		mv, err := m.LocalMovesOf(i, configs[qi])
		if err != nil {
			return zero, InstanceStats{}, err
		}
		moves = append(moves, mv)
		for k := range mv {
			if _, err := intern(mv[k].Next); err != nil {
				return zero, InstanceStats{}, err
			}
		}
	}

	// 2. Refinement LTS over fireable moves, plus the initial partition
	// from the enabled-move signature and the observed predicates.
	l := lts.New(len(configs))
	dstOf := make([][]int, len(configs)) // parallel to moves: target config ids
	for qi := range configs {
		dstOf[qi] = make([]int, len(moves[qi]))
		for k := range moves[qi] {
			keyBuf = m.AppendLocalKey(keyBuf[:0], moves[qi][k].Next)
			id, ok := in.Lookup(keyBuf)
			if !ok {
				return zero, InstanceStats{}, fmt.Errorf("internal: unknown local target")
			}
			dstOf[qi][k] = int(id)
			if m.ActionFireable(i, moves[qi][k].Act.Name) {
				l.AddTransition(qi, int(id), l.LabelIndex(moves[qi][k].Act.Name), moves[qi][k].Act.Rate)
			}
		}
	}
	var myPreds []string
	for _, p := range preds {
		if p.Instance == name {
			myPreds = append(myPreds, p.Action)
		}
	}
	initial := make([]int, len(configs))
	sigIDs := make(map[string]int, 16)
	for qi := range configs {
		sig := enabledSignature(m, i, moves[qi], myPreds)
		id, ok := sigIDs[sig]
		if !ok {
			id = len(sigIDs)
			sigIDs[sig] = id
		}
		initial[qi] = id
	}

	// 3. Lump and build the block automaton. MarkovianPartitionFrom numbers
	// blocks by first member, so block b's representative — its lowest
	// configuration identifier — is its first occurrence in id order.
	blocks := bisim.MarkovianPartitionFrom(l, initial)
	numBlocks := 0
	for _, b := range blocks {
		if b+1 > numBlocks {
			numBlocks = b + 1
		}
	}
	rep := make([]int, numBlocks)
	for b := range rep {
		rep[b] = -1
	}
	for qi, b := range blocks {
		if rep[b] < 0 {
			rep[b] = qi
		}
	}
	q := elab.InstanceQuotient{
		Init:  blocks[0],
		Moves: make([][]elab.LocalMove, numBlocks),
		Descs: make([]string, numBlocks),
	}
	prefix := name + "="
	for b := 0; b < numBlocks; b++ {
		r := rep[b]
		bm := make([]elab.LocalMove, len(moves[r]))
		for k := range moves[r] {
			bm[k] = elab.LocalMove{
				Act:  moves[r][k].Act,
				Next: elab.LocalConfig{Node: blocks[dstOf[r][k]]},
			}
		}
		q.Moves[b] = bm
		q.Descs[b] = strings.TrimPrefix(m.DescribeLocal(i, configs[r]), prefix)
	}
	return q, InstanceStats{Name: name, Configs: len(configs), Blocks: numBlocks}, nil
}

// enabledSignature renders the full enabled-move signature of one local
// configuration — action name, role kind, rate kind, priority, weight or
// rate bits, slot, for every local move (blocked interactions included) —
// plus the truth of each observed predicate. Configurations with different
// signatures are separated by the initial partition.
func enabledSignature(m *elab.Model, i int, mv []elab.LocalMove, preds []string) string {
	terms := make([]string, 0, len(mv))
	for k := range mv {
		r := mv[k].Act.Rate
		var quant uint64
		switch r.Kind {
		case rates.Exp:
			quant = math.Float64bits(r.Lambda)
		case rates.Immediate, rates.Passive:
			quant = math.Float64bits(r.Weight)
		}
		kind := 0
		if m.ActionFireable(i, mv[k].Act.Name) {
			kind = 1
		}
		terms = append(terms, fmt.Sprintf("%s/%d/%d/%d/%x/%d",
			mv[k].Act.Name, kind, r.Kind, r.Priority, quant, r.Slot))
	}
	sort.Strings(terms)
	var sb strings.Builder
	for _, t := range terms {
		sb.WriteString(t)
		sb.WriteByte('|')
	}
	for _, a := range preds {
		on := false
		for k := range mv {
			if mv[k].Act.Name == a {
				on = true
				break
			}
		}
		if on {
			sb.WriteString("!1")
		} else {
			sb.WriteString("!0")
		}
	}
	return sb.String()
}
