package aemilia

import (
	"fmt"
	"strings"

	"repro/internal/expr"
)

// Format renders the description in .aem textual syntax. The output parses
// back to an equivalent description (see the parser subpackage), which the
// round-trip tests rely on.
func Format(a *ArchiType) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "ARCHI_TYPE %s(void)\n\n", a.Name)
	sb.WriteString("ARCHI_ELEM_TYPES\n\n")
	for _, et := range a.ElemTypes {
		formatElemType(&sb, et)
		sb.WriteString("\n")
	}
	sb.WriteString("ARCHI_TOPOLOGY\n\n")
	sb.WriteString("  ARCHI_ELEM_INSTANCES\n")
	for i, in := range a.Instances {
		sep := ";"
		if i == len(a.Instances)-1 {
			sep = ""
		}
		fmt.Fprintf(&sb, "    %s : %s(%s)%s\n", in.Name, in.TypeName, formatArgs(in.Args), sep)
	}
	sb.WriteString("\n  ARCHI_ATTACHMENTS\n")
	for i, at := range a.Attachments {
		sep := ";"
		if i == len(a.Attachments)-1 {
			sep = ""
		}
		fmt.Fprintf(&sb, "    FROM %s.%s TO %s.%s%s\n",
			at.FromInstance, at.FromPort, at.ToInstance, at.ToPort, sep)
	}
	sb.WriteString("\nEND\n")
	return sb.String()
}

func formatElemType(sb *strings.Builder, et *ElemType) {
	fmt.Fprintf(sb, "  ELEM_TYPE %s(void)\n", et.Name)
	sb.WriteString("    BEHAVIOR\n")
	for i, b := range et.Behaviors {
		sep := ";"
		if i == len(et.Behaviors)-1 {
			sep = ""
		}
		fmt.Fprintf(sb, "      %s(%s; void) =\n", b.Name, formatParams(b.Params))
		sb.WriteString("        " + formatProcess(b.Body, "        ") + sep + "\n")
	}
	sb.WriteString("    INPUT_INTERACTIONS " + formatPorts(et, true) + "\n")
	sb.WriteString("    OUTPUT_INTERACTIONS " + formatPorts(et, false) + "\n")
}

func formatPorts(et *ElemType, inputs bool) string {
	var ports []Port
	if inputs {
		if len(et.InPorts) > 0 {
			ports = et.InPorts
		} else {
			for _, n := range et.Inputs {
				ports = append(ports, Port{Name: n, Mult: Uni})
			}
		}
	} else {
		if len(et.OutPorts) > 0 {
			ports = et.OutPorts
		} else {
			for _, n := range et.Outputs {
				ports = append(ports, Port{Name: n, Mult: Uni})
			}
		}
	}
	if len(ports) == 0 {
		return "void"
	}
	var groups []string
	i := 0
	for i < len(ports) {
		mult := ports[i].Mult
		if mult == 0 {
			mult = Uni
		}
		var names []string
		for i < len(ports) {
			m := ports[i].Mult
			if m == 0 {
				m = Uni
			}
			if m != mult {
				break
			}
			names = append(names, ports[i].Name)
			i++
		}
		groups = append(groups, mult.String()+" "+strings.Join(names, "; "))
	}
	return strings.Join(groups, " ")
}

func formatParams(ps []Param) string {
	if len(ps) == 0 {
		return "void"
	}
	parts := make([]string, len(ps))
	for i, p := range ps {
		kind := "integer"
		if p.Type == expr.TypeBool {
			kind = "boolean"
		}
		parts[i] = kind + " " + p.Name
	}
	return strings.Join(parts, ", ")
}

func formatArgs(args []expr.Expr) string {
	if len(args) == 0 {
		return "void"
	}
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}

func formatProcess(p Process, indent string) string {
	switch x := p.(type) {
	case *Stop:
		return "stop"
	case *Prefix:
		return "<" + x.Act.Name + ", " + x.Act.Rate.String() + "> . " +
			formatProcess(x.Cont, indent)
	case *Choice:
		inner := indent + "  "
		parts := make([]string, len(x.Branches))
		for i, br := range x.Branches {
			parts[i] = inner + formatProcess(br, inner)
		}
		return "choice {\n" + strings.Join(parts, ",\n") + "\n" + indent + "}"
	case *Guarded:
		return "cond(" + x.Cond.String() + ") -> " + formatProcess(x.Body, indent)
	case *Call:
		return x.Name + "(" + formatArgs(x.Args) + ")"
	default:
		return fmt.Sprintf("<?%T>", p)
	}
}
