// Package aemilia defines architectural descriptions in the style of the
// Æmilia architectural description language: architectural element types
// (AETs) with process-algebraic behaviours and declared input/output
// interactions, composed by a topology of instances and one-to-one (UNI)
// attachments.
//
// A description can be built programmatically (see Builder) or parsed from
// the textual .aem syntax (see the parser subpackage). Descriptions must be
// validated with Validate before elaboration; validation resolves behaviour
// invocations, checks interaction declarations and attachments, and assigns
// the node identifiers the elaborator relies on.
package aemilia

import (
	"repro/internal/expr"
	"repro/internal/rates"
)

// ArchiType is a complete architectural description: element types plus
// a topology of instances and attachments.
type ArchiType struct {
	// Name is the architectural type name.
	Name string
	// ElemTypes lists the declared element types, in declaration order.
	ElemTypes []*ElemType
	// Instances lists the declared element instances, in declaration order.
	Instances []*Instance
	// Attachments lists the declared attachments.
	Attachments []Attachment

	// validated is set by Validate.
	validated bool
	// elemByName indexes ElemTypes; built by Validate.
	elemByName map[string]*ElemType
	// instByName indexes Instances; built by Validate.
	instByName map[string]*Instance
	// nodeCount is the number of process nodes numbered by Validate.
	nodeCount int
}

// Multiplicity classifies how many attachments an interaction supports
// and how a synchronization involving it fires.
type Multiplicity int

// Interaction multiplicities.
const (
	// Uni interactions are attached to exactly one partner.
	Uni Multiplicity = iota + 1
	// And output interactions broadcast: one firing synchronizes with
	// every attached input simultaneously.
	And
	// Or interactions fire with exactly one of the attached partners,
	// chosen among those currently offering.
	Or
)

// String returns the declaration keyword of the multiplicity.
func (m Multiplicity) String() string {
	switch m {
	case Uni:
		return "UNI"
	case And:
		return "AND"
	case Or:
		return "OR"
	default:
		return "?"
	}
}

// Port declares one interaction with its multiplicity.
type Port struct {
	// Name is the action name.
	Name string
	// Mult is the interaction multiplicity (zero value resolves to Uni).
	Mult Multiplicity
}

// ElemType is an architectural element type: a family of behaviour
// equations plus declared interactions.
type ElemType struct {
	// Name is the element type name.
	Name string
	// Behaviors lists the behaviour equations; the first is the initial
	// behaviour of every instance of the type.
	Behaviors []*Behavior
	// Inputs and Outputs declare the UNI input and output interaction
	// names (kept for compatibility; see InPorts/OutPorts for the full
	// declarations). Any action not listed is internal to the element.
	Inputs, Outputs []string
	// InPorts and OutPorts optionally declare interactions with explicit
	// multiplicities; when empty, Inputs/Outputs are used as UNI ports.
	InPorts, OutPorts []Port

	behaviorByName map[string]*Behavior
}

// inputPorts returns the effective input declarations.
func (t *ElemType) inputPorts() []Port {
	if len(t.InPorts) > 0 {
		return t.InPorts
	}
	out := make([]Port, len(t.Inputs))
	for i, n := range t.Inputs {
		out[i] = Port{Name: n, Mult: Uni}
	}
	return out
}

// outputPorts returns the effective output declarations.
func (t *ElemType) outputPorts() []Port {
	if len(t.OutPorts) > 0 {
		return t.OutPorts
	}
	out := make([]Port, len(t.Outputs))
	for i, n := range t.Outputs {
		out[i] = Port{Name: n, Mult: Uni}
	}
	return out
}

// InputPort returns the declaration of the named input interaction.
func (t *ElemType) InputPort(name string) (Port, bool) {
	for _, p := range t.inputPorts() {
		if p.Name == name {
			if p.Mult == 0 {
				p.Mult = Uni
			}
			return p, true
		}
	}
	return Port{}, false
}

// OutputPort returns the declaration of the named output interaction.
func (t *ElemType) OutputPort(name string) (Port, bool) {
	for _, p := range t.outputPorts() {
		if p.Name == name {
			if p.Mult == 0 {
				p.Mult = Uni
			}
			return p, true
		}
	}
	return Port{}, false
}

// Param declares a formal parameter of a behaviour.
type Param struct {
	// Name is the parameter name.
	Name string
	// Type is the parameter type.
	Type expr.Type
}

// Behavior is one behaviour equation of an element type.
type Behavior struct {
	// Name is the behaviour name.
	Name string
	// Params are the formal parameters.
	Params []Param
	// Body is the process term; it must be action-guarded (Stop, an
	// action prefix, or a choice — not a bare invocation).
	Body Process

	owner *ElemType
}

// Action is an occurrence of an action with its timing annotation.
type Action struct {
	// Name is the action name. Whether it is an interaction or internal
	// is decided by the owning element type's declarations.
	Name string
	// Rate is the timing annotation.
	Rate rates.Rate
}

// Process is a node of a process term. Concrete types: *Stop, *Prefix,
// *Choice, *Guarded, *Call.
type Process interface {
	// ID returns the node identifier assigned by Validate
	// (valid only after validation).
	ID() int

	setID(int)
}

type node struct{ id int }

func (n *node) ID() int     { return n.id }
func (n *node) setID(i int) { n.id = i }

// Stop is the terminated process.
type Stop struct{ node }

// Prefix performs an action and continues as Cont.
type Prefix struct {
	node
	// Act is the performed action.
	Act Action
	// Cont is the continuation process.
	Cont Process
}

// Choice offers a nondeterministic choice among its branches. Each branch
// must begin with an action prefix, possibly under a guard.
type Choice struct {
	node
	// Branches are the alternatives.
	Branches []Process
}

// Guarded restricts a branch to the states where Cond evaluates to true.
type Guarded struct {
	node
	// Cond is the boolean guard.
	Cond expr.Expr
	// Body is the guarded branch; it must begin with an action prefix.
	Body Process
}

// Call invokes a behaviour equation of the same element type.
type Call struct {
	node
	// Name is the invoked behaviour name.
	Name string
	// Args are the actual parameters.
	Args []expr.Expr

	target *Behavior
}

// Target returns the resolved behaviour (valid only after validation).
func (c *Call) Target() *Behavior { return c.target }

// Instance declares an element instance of the topology.
type Instance struct {
	// Name is the instance name.
	Name string
	// TypeName names the instantiated element type.
	TypeName string
	// Args are the actual parameters of the type's initial behaviour.
	Args []expr.Expr

	elemType *ElemType
}

// Type returns the resolved element type (valid only after validation).
func (i *Instance) Type() *ElemType { return i.elemType }

// Attachment connects an output interaction of one instance to an input
// interaction of another.
type Attachment struct {
	// FromInstance and FromPort identify the output side.
	FromInstance, FromPort string
	// ToInstance and ToPort identify the input side.
	ToInstance, ToPort string
}

// Validated reports whether Validate succeeded on the description.
func (a *ArchiType) Validated() bool { return a.validated }

// NodeCount returns the number of numbered process nodes
// (valid only after validation).
func (a *ArchiType) NodeCount() int { return a.nodeCount }

// ElemType returns the element type with the given name
// (valid only after validation).
func (a *ArchiType) ElemType(name string) (*ElemType, bool) {
	et, ok := a.elemByName[name]
	return et, ok
}

// Instance returns the instance with the given name
// (valid only after validation).
func (a *ArchiType) Instance(name string) (*Instance, bool) {
	in, ok := a.instByName[name]
	return in, ok
}

// Behavior returns the behaviour equation with the given name
// (valid only after validation).
func (t *ElemType) Behavior(name string) (*Behavior, bool) {
	b, ok := t.behaviorByName[name]
	return b, ok
}

// Initial returns the initial behaviour of the element type.
func (t *ElemType) Initial() *Behavior {
	if len(t.Behaviors) == 0 {
		return nil
	}
	return t.Behaviors[0]
}

// IsInput reports whether the action name is a declared input interaction.
func (t *ElemType) IsInput(action string) bool {
	_, ok := t.InputPort(action)
	return ok
}

// IsOutput reports whether the action name is a declared output interaction.
func (t *ElemType) IsOutput(action string) bool {
	_, ok := t.OutputPort(action)
	return ok
}

// IsInteraction reports whether the action name is a declared interaction.
func (t *ElemType) IsInteraction(action string) bool {
	return t.IsInput(action) || t.IsOutput(action)
}

// Owner returns the element type containing the behaviour
// (valid only after validation).
func (b *Behavior) Owner() *ElemType { return b.owner }
