package aemilia

import (
	"fmt"

	"repro/internal/expr"
)

// ValidationError reports a semantic error in an architectural description.
type ValidationError struct {
	// Where locates the error (element type, behaviour, instance, …).
	Where string
	// Msg describes the problem.
	Msg string
}

// Error implements error.
func (e *ValidationError) Error() string {
	if e.Where == "" {
		return "aemilia: " + e.Msg
	}
	return "aemilia: " + e.Where + ": " + e.Msg
}

func verrf(where, format string, args ...any) error {
	return &ValidationError{Where: where, Msg: fmt.Sprintf(format, args...)}
}

// Validate checks the description for semantic consistency, resolves
// behaviour invocations and instance types, and assigns node identifiers.
// It must be called (successfully) before elaboration. Validate is
// idempotent.
func (a *ArchiType) Validate() error {
	if a.Name == "" {
		return verrf("", "architectural type has no name")
	}
	if len(a.ElemTypes) == 0 {
		return verrf(a.Name, "no element types declared")
	}
	if len(a.Instances) == 0 {
		return verrf(a.Name, "no instances declared")
	}

	a.elemByName = make(map[string]*ElemType, len(a.ElemTypes))
	for _, et := range a.ElemTypes {
		if et.Name == "" {
			return verrf(a.Name, "element type with empty name")
		}
		if _, dup := a.elemByName[et.Name]; dup {
			return verrf(a.Name, "duplicate element type %q", et.Name)
		}
		a.elemByName[et.Name] = et
	}

	nextID := 0
	for _, et := range a.ElemTypes {
		if err := a.validateElemType(et, &nextID); err != nil {
			return err
		}
	}
	a.nodeCount = nextID

	a.instByName = make(map[string]*Instance, len(a.Instances))
	for _, in := range a.Instances {
		if in.Name == "" {
			return verrf(a.Name, "instance with empty name")
		}
		if _, dup := a.instByName[in.Name]; dup {
			return verrf(a.Name, "duplicate instance %q", in.Name)
		}
		et, ok := a.elemByName[in.TypeName]
		if !ok {
			return verrf("instance "+in.Name, "unknown element type %q", in.TypeName)
		}
		in.elemType = et
		init := et.Initial()
		if len(in.Args) != len(init.Params) {
			return verrf("instance "+in.Name,
				"behaviour %s expects %d argument(s), got %d",
				init.Name, len(init.Params), len(in.Args))
		}
		for i, arg := range in.Args {
			ty, err := expr.Check(arg, nil)
			if err != nil {
				return verrf("instance "+in.Name, "argument %d: %v", i+1, err)
			}
			if ty != init.Params[i].Type {
				return verrf("instance "+in.Name,
					"argument %d: got %v, want %v", i+1, ty, init.Params[i].Type)
			}
		}
		a.instByName[in.Name] = in
	}

	// Attachments: resolve endpoints and enforce multiplicities. UNI
	// interactions admit at most one attachment; AND and OR outputs admit
	// several. AND multiplicity on inputs is not supported (a broadcast
	// is driven by its output side).
	type endpoint struct{ inst, port string }
	used := make(map[endpoint]int, 2*len(a.Attachments))
	for _, at := range a.Attachments {
		where := fmt.Sprintf("attachment %s.%s -> %s.%s",
			at.FromInstance, at.FromPort, at.ToInstance, at.ToPort)
		from, ok := a.instByName[at.FromInstance]
		if !ok {
			return verrf(where, "unknown instance %q", at.FromInstance)
		}
		to, ok := a.instByName[at.ToInstance]
		if !ok {
			return verrf(where, "unknown instance %q", at.ToInstance)
		}
		if at.FromInstance == at.ToInstance {
			return verrf(where, "an instance cannot be attached to itself")
		}
		outPort, ok := from.elemType.OutputPort(at.FromPort)
		if !ok {
			return verrf(where, "%q is not an output interaction of %s",
				at.FromPort, from.elemType.Name)
		}
		inPort, ok := to.elemType.InputPort(at.ToPort)
		if !ok {
			return verrf(where, "%q is not an input interaction of %s",
				at.ToPort, to.elemType.Name)
		}
		if inPort.Mult == And {
			return verrf(where, "AND multiplicity is only supported on output interactions")
		}
		fe := endpoint{at.FromInstance, at.FromPort}
		te := endpoint{at.ToInstance, at.ToPort}
		used[fe]++
		used[te]++
		if outPort.Mult == Uni && used[fe] > 1 {
			return verrf(where, "output %s.%s attached more than once (UNI)",
				at.FromInstance, at.FromPort)
		}
		if inPort.Mult == Uni && used[te] > 1 {
			return verrf(where, "input %s.%s attached more than once (UNI)",
				at.ToInstance, at.ToPort)
		}
	}

	a.validated = true
	return nil
}

func (a *ArchiType) validateElemType(et *ElemType, nextID *int) error {
	where := "element type " + et.Name
	if len(et.Behaviors) == 0 {
		return verrf(where, "no behaviour equations")
	}
	et.behaviorByName = make(map[string]*Behavior, len(et.Behaviors))
	for _, b := range et.Behaviors {
		if b.Name == "" {
			return verrf(where, "behaviour with empty name")
		}
		if _, dup := et.behaviorByName[b.Name]; dup {
			return verrf(where, "duplicate behaviour %q", b.Name)
		}
		seen := make(map[string]bool, len(b.Params))
		for _, p := range b.Params {
			if p.Name == "" {
				return verrf(where+", behaviour "+b.Name, "parameter with empty name")
			}
			if seen[p.Name] {
				return verrf(where+", behaviour "+b.Name, "duplicate parameter %q", p.Name)
			}
			if p.Type != expr.TypeInt && p.Type != expr.TypeBool {
				return verrf(where+", behaviour "+b.Name, "parameter %q has invalid type", p.Name)
			}
			seen[p.Name] = true
		}
		b.owner = et
		et.behaviorByName[b.Name] = b
	}
	// Interactions must not be declared both input and output, and port
	// declarations must not repeat names.
	seenPort := make(map[string]bool)
	for _, p := range et.inputPorts() {
		if p.Name == "" {
			return verrf(where, "interaction with empty name")
		}
		if seenPort[p.Name] {
			return verrf(where, "interaction %q declared twice", p.Name)
		}
		seenPort[p.Name] = true
	}
	for _, p := range et.outputPorts() {
		if p.Name == "" {
			return verrf(where, "interaction with empty name")
		}
		if seenPort[p.Name] {
			return verrf(where, "interaction %q declared both input and output", p.Name)
		}
		seenPort[p.Name] = true
	}
	for _, b := range et.Behaviors {
		env := make(expr.TypeEnv, len(b.Params))
		for _, p := range b.Params {
			env[p.Name] = p.Type
		}
		bwhere := where + ", behaviour " + b.Name
		if b.Body == nil {
			return verrf(bwhere, "nil body")
		}
		if _, isCall := b.Body.(*Call); isCall {
			return verrf(bwhere, "body must be action-guarded, found bare invocation")
		}
		if err := a.validateProcess(et, b.Body, env, bwhere, nextID, true); err != nil {
			return err
		}
	}
	return nil
}

// validateProcess numbers p and its descendants and checks guardedness,
// invocation resolution, and expression typing. top marks positions where
// a process state can rest (behaviour bodies and prefix continuations).
func (a *ArchiType) validateProcess(et *ElemType, p Process, env expr.TypeEnv, where string, nextID *int, top bool) error {
	if p == nil {
		return verrf(where, "nil process node")
	}
	p.setID(*nextID)
	*nextID++
	switch x := p.(type) {
	case *Stop:
		return nil
	case *Prefix:
		if x.Act.Name == "" {
			return verrf(where, "action with empty name")
		}
		if err := x.Act.Rate.Validate(); err != nil {
			return verrf(where, "action %q: %v", x.Act.Name, err)
		}
		if x.Cont == nil {
			return verrf(where, "action %q has nil continuation", x.Act.Name)
		}
		return a.validateProcess(et, x.Cont, env, where, nextID, true)
	case *Choice:
		if len(x.Branches) < 2 {
			return verrf(where, "choice needs at least two branches")
		}
		for _, br := range x.Branches {
			switch br.(type) {
			case *Prefix, *Guarded:
			default:
				return verrf(where, "choice branch must be an action prefix or a guarded prefix, found %T", br)
			}
			if err := a.validateProcess(et, br, env, where, nextID, false); err != nil {
				return err
			}
		}
		return nil
	case *Guarded:
		if x.Cond == nil {
			return verrf(where, "guard with nil condition")
		}
		ty, err := expr.Check(x.Cond, env)
		if err != nil {
			return verrf(where, "guard: %v", err)
		}
		if ty != expr.TypeBool {
			return verrf(where, "guard must be boolean, got %v", ty)
		}
		switch x.Body.(type) {
		case *Prefix, *Guarded, *Choice:
		default:
			return verrf(where, "guarded body must be action-guarded, found %T", x.Body)
		}
		return a.validateProcess(et, x.Body, env, where, nextID, false)
	case *Call:
		if !top {
			return verrf(where, "behaviour invocation %q only allowed as a continuation", x.Name)
		}
		target, ok := et.behaviorByName[x.Name]
		if !ok {
			return verrf(where, "invocation of unknown behaviour %q", x.Name)
		}
		if len(x.Args) != len(target.Params) {
			return verrf(where, "invocation of %s: expects %d argument(s), got %d",
				x.Name, len(target.Params), len(x.Args))
		}
		for i, arg := range x.Args {
			ty, err := expr.Check(arg, env)
			if err != nil {
				return verrf(where, "invocation of %s, argument %d: %v", x.Name, i+1, err)
			}
			if ty != target.Params[i].Type {
				return verrf(where, "invocation of %s, argument %d: got %v, want %v",
					x.Name, i+1, ty, target.Params[i].Type)
			}
		}
		x.target = target
		return nil
	default:
		return verrf(where, "unknown process node %T", p)
	}
}
