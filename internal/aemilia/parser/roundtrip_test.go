package parser

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/aemilia"
	"repro/internal/elab"
	"repro/internal/expr"
	"repro/internal/lts"
	"repro/internal/rates"
)

// genExpr builds a random integer expression over the given parameters.
func genExpr(r *rand.Rand, params []aemilia.Param, depth int) expr.Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		if len(params) > 0 && r.Intn(2) == 0 {
			for _, p := range params {
				if p.Type == expr.TypeInt {
					return expr.Ref(p.Name)
				}
			}
		}
		return expr.Int(int64(r.Intn(5)))
	}
	ops := []expr.Op{expr.OpAdd, expr.OpSub, expr.OpMul}
	return expr.Bin(ops[r.Intn(len(ops))],
		genExpr(r, params, depth-1), genExpr(r, params, depth-1))
}

// genGuard builds a random boolean guard over the given parameters.
func genGuard(r *rand.Rand, params []aemilia.Param) expr.Expr {
	ops := []expr.Op{expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe, expr.OpEq, expr.OpNe}
	g := expr.Bin(ops[r.Intn(len(ops))], genExpr(r, params, 1), genExpr(r, params, 1))
	if r.Intn(4) == 0 {
		g = expr.Un(expr.OpNot, g)
	}
	if r.Intn(4) == 0 {
		g = expr.Bin(expr.OpAnd, g, genGuard0(r, params))
	}
	return g
}

func genGuard0(r *rand.Rand, params []aemilia.Param) expr.Expr {
	return expr.Bin(expr.OpGe, genExpr(r, params, 1), expr.Int(0))
}

// genRate picks a random rate annotation.
func genRate(r *rand.Rand) rates.Rate {
	switch r.Intn(4) {
	case 0:
		return rates.UntimedRate()
	case 1:
		return rates.ExpRate(0.25 * float64(1+r.Intn(8)))
	case 2:
		return rates.Inf(r.Intn(3), float64(1+r.Intn(4)))
	default:
		if r.Intn(2) == 0 {
			return rates.PassiveRate()
		}
		return rates.PassiveWeight(float64(1 + r.Intn(3)))
	}
}

// genProcess builds a random guarded process over the behaviours and
// actions of one element type.
func genProcess(r *rand.Rand, behaviors []string, actions []string,
	params []aemilia.Param, depth int) aemilia.Process {
	mkCall := func() aemilia.Process {
		name := behaviors[r.Intn(len(behaviors))]
		args := make([]expr.Expr, len(params))
		for i := range params {
			args[i] = genExpr(r, params, 1)
		}
		return aemilia.Invoke(name, args...)
	}
	mkPrefix := func(cont aemilia.Process) aemilia.Process {
		return aemilia.Pre(actions[r.Intn(len(actions))], genRate(r), cont)
	}
	if depth <= 0 {
		if r.Intn(8) == 0 {
			return mkPrefix(aemilia.Halt())
		}
		return mkPrefix(mkCall())
	}
	switch r.Intn(3) {
	case 0: // nested prefixes
		return mkPrefix(mkPrefix(mkCall()))
	case 1: // plain prefix
		return mkPrefix(genProcessCont(r, behaviors, actions, params, depth-1, mkCall))
	default: // choice with optional guards
		n := 2 + r.Intn(2)
		branches := make([]aemilia.Process, n)
		for i := range branches {
			br := mkPrefix(genProcessCont(r, behaviors, actions, params, depth-1, mkCall))
			if len(params) > 0 && r.Intn(2) == 0 {
				br = aemilia.When(genGuard(r, params), br)
			}
			branches[i] = br
		}
		return aemilia.Ch(branches...)
	}
}

func genProcessCont(r *rand.Rand, behaviors, actions []string,
	params []aemilia.Param, depth int, mkCall func() aemilia.Process) aemilia.Process {
	if depth <= 0 || r.Intn(2) == 0 {
		return mkCall()
	}
	return genProcess(r, behaviors, actions, params, depth-1)
}

// genArchiType builds a random valid closed architectural description:
// every instance's interactions are fully attached in a ring topology.
func genArchiType(r *rand.Rand, id int) *aemilia.ArchiType {
	numTypes := 1 + r.Intn(3)
	var elems []*aemilia.ElemType
	for ti := 0; ti < numTypes; ti++ {
		var params []aemilia.Param
		if r.Intn(2) == 0 {
			params = []aemilia.Param{aemilia.IntParam("n")}
		}
		numBeh := 1 + r.Intn(3)
		names := make([]string, numBeh)
		for bi := range names {
			names[bi] = fmt.Sprintf("B%d_%d", ti, bi)
		}
		actions := []string{
			fmt.Sprintf("in%d", ti), fmt.Sprintf("out%d", ti), fmt.Sprintf("work%d", ti),
		}
		behaviors := make([]*aemilia.Behavior, numBeh)
		for bi := range behaviors {
			// Every behaviour of a type shares the parameter list so any
			// invocation is arity-correct.
			behaviors[bi] = aemilia.NewBehavior(names[bi], params,
				genProcess(r, names, actions, params, 1+r.Intn(2)))
		}
		elems = append(elems, aemilia.NewElemType(
			fmt.Sprintf("T%d", ti),
			[]string{fmt.Sprintf("in%d", ti)},
			[]string{fmt.Sprintf("out%d", ti)},
			behaviors...))
	}
	// A ring of instances: out_i -> in_{i+1}.
	numInst := numTypes
	insts := make([]*aemilia.Instance, numInst)
	for i := 0; i < numInst; i++ {
		ti := i % numTypes
		var args []expr.Expr
		if len(elems[ti].Behaviors[0].Params) == 1 {
			args = []expr.Expr{expr.Int(int64(r.Intn(3)))}
		}
		insts[i] = aemilia.NewInstance(fmt.Sprintf("I%d", i), fmt.Sprintf("T%d", ti), args...)
	}
	var atts []aemilia.Attachment
	if numInst > 1 {
		for i := 0; i < numInst; i++ {
			j := (i + 1) % numInst
			ti, tj := i%numTypes, j%numTypes
			atts = append(atts, aemilia.Attach(
				fmt.Sprintf("I%d", i), fmt.Sprintf("out%d", ti),
				fmt.Sprintf("I%d", j), fmt.Sprintf("in%d", tj)))
		}
	}
	return aemilia.NewArchiType(fmt.Sprintf("Random%d", id), elems, insts, atts)
}

// Property: for every random valid description, Format output parses back
// and Format is a fixed point of Parse∘Format.
func TestPropertyFormatParseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	accepted := 0
	for trial := 0; trial < 120; trial++ {
		a := genArchiType(r, trial)
		if err := a.Validate(); err != nil {
			// The generator can produce type-incorrect guards (boolean
			// parameters are not generated, so this should be rare).
			continue
		}
		accepted++
		text := aemilia.Format(a)
		b, err := Parse(text)
		if err != nil {
			t.Fatalf("trial %d: Format output does not parse: %v\n%s", trial, err, text)
		}
		text2 := aemilia.Format(b)
		if text2 != text {
			t.Fatalf("trial %d: Format not a fixed point:\n--- first\n%s\n--- second\n%s",
				trial, text, text2)
		}
	}
	if accepted < 60 {
		t.Fatalf("generator rejected too many descriptions: %d accepted", accepted)
	}
}

// Property: the parsed copy elaborates to the same state space as the
// original (same size, same initial successors).
func TestPropertyRoundTripPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(131))
	checked := 0
	for trial := 0; trial < 60; trial++ {
		a := genArchiType(r, trial)
		if err := a.Validate(); err != nil {
			continue
		}
		ma, err := elab.Elaborate(a)
		if err != nil {
			continue
		}
		la, err := lts.Generate(ma, lts.GenerateOptions{MaxStates: 20000})
		if err != nil {
			continue // state explosion or rate clash: fine for this property
		}
		b, err := Parse(aemilia.Format(a))
		if err != nil {
			t.Fatalf("trial %d: parse: %v", trial, err)
		}
		mb, err := elab.Elaborate(b)
		if err != nil {
			t.Fatalf("trial %d: elaborate parsed copy: %v", trial, err)
		}
		lb, err := lts.Generate(mb, lts.GenerateOptions{MaxStates: 20000})
		if err != nil {
			t.Fatalf("trial %d: generate parsed copy: %v", trial, err)
		}
		if la.NumStates != lb.NumStates || la.NumTransitions() != lb.NumTransitions() {
			t.Fatalf("trial %d: state space differs: %d/%d vs %d/%d",
				trial, la.NumStates, la.NumTransitions(), lb.NumStates, lb.NumTransitions())
		}
		checked++
	}
	if checked < 20 {
		t.Fatalf("property vacuous: only %d descriptions checked", checked)
	}
}
