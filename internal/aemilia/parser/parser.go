package parser

import (
	"strconv"

	"repro/internal/aemilia"
	"repro/internal/expr"
	"repro/internal/rates"
)

// Parse parses an .aem architectural description and validates it.
func Parse(src string) (*aemilia.ArchiType, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.prime(); err != nil {
		return nil, err
	}
	a, err := p.parseArchiType()
	if err != nil {
		return nil, err
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

type parser struct {
	lx  *lexer
	tok token
}

func (p *parser) prime() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) advance() error { return p.prime() }

func (p *parser) errf(format string, args ...any) error {
	return p.lx.errf(p.tok.line, p.tok.col, format, args...)
}

// expectIdent consumes a specific keyword.
func (p *parser) expectIdent(kw string) error {
	if p.tok.kind != tokIdent || p.tok.text != kw {
		return p.errf("expected %q, found %q", kw, p.tok.text)
	}
	return p.advance()
}

// expectPunct consumes a specific punctuation token.
func (p *parser) expectPunct(s string) error {
	if p.tok.kind != tokPunct || p.tok.text != s {
		return p.errf("expected %q, found %q", s, p.tok.text)
	}
	return p.advance()
}

func (p *parser) atPunct(s string) bool {
	return p.tok.kind == tokPunct && p.tok.text == s
}

func (p *parser) atIdent(s string) bool {
	return p.tok.kind == tokIdent && p.tok.text == s
}

// ident consumes and returns an identifier.
func (p *parser) ident() (string, error) {
	if p.tok.kind != tokIdent {
		return "", p.errf("expected identifier, found %q", p.tok.text)
	}
	name := p.tok.text
	if err := p.advance(); err != nil {
		return "", err
	}
	return name, nil
}

// number consumes and returns a numeric literal.
func (p *parser) number() (float64, error) {
	neg := false
	if p.atPunct("-") {
		neg = true
		if err := p.advance(); err != nil {
			return 0, err
		}
	}
	if p.tok.kind != tokNumber {
		return 0, p.errf("expected number, found %q", p.tok.text)
	}
	v, err := strconv.ParseFloat(p.tok.text, 64)
	if err != nil {
		return 0, p.errf("invalid number %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return 0, err
	}
	if neg {
		v = -v
	}
	return v, nil
}

func (p *parser) parseArchiType() (*aemilia.ArchiType, error) {
	if err := p.expectIdent("ARCHI_TYPE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if err := p.expectIdent("void"); err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectIdent("ARCHI_ELEM_TYPES"); err != nil {
		return nil, err
	}
	var elems []*aemilia.ElemType
	for p.atIdent("ELEM_TYPE") {
		et, err := p.parseElemType()
		if err != nil {
			return nil, err
		}
		elems = append(elems, et)
	}
	if err := p.expectIdent("ARCHI_TOPOLOGY"); err != nil {
		return nil, err
	}
	if err := p.expectIdent("ARCHI_ELEM_INSTANCES"); err != nil {
		return nil, err
	}
	var insts []*aemilia.Instance
	for {
		in, err := p.parseInstance()
		if err != nil {
			return nil, err
		}
		insts = append(insts, in)
		if p.atPunct(";") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind == tokIdent && isSectionKeyword(p.tok.text) {
				break
			}
			continue
		}
		break
	}
	var atts []aemilia.Attachment
	if p.atIdent("ARCHI_ATTACHMENTS") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for p.atIdent("FROM") {
			at, err := p.parseAttachment()
			if err != nil {
				return nil, err
			}
			atts = append(atts, at)
			if p.atPunct(";") {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := p.expectIdent("END"); err != nil {
		return nil, err
	}
	return aemilia.NewArchiType(name, elems, insts, atts), nil
}

func (p *parser) parseElemType() (*aemilia.ElemType, error) {
	if err := p.expectIdent("ELEM_TYPE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if err := p.expectIdent("void"); err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectIdent("BEHAVIOR"); err != nil {
		return nil, err
	}
	var behaviors []*aemilia.Behavior
	for {
		b, err := p.parseBehavior()
		if err != nil {
			return nil, err
		}
		behaviors = append(behaviors, b)
		if p.atPunct(";") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			// Tolerate a trailing semicolon before the next section.
			if p.tok.kind == tokIdent && isSectionKeyword(p.tok.text) {
				break
			}
			continue
		}
		break
	}
	if err := p.expectIdent("INPUT_INTERACTIONS"); err != nil {
		return nil, err
	}
	inputs, err := p.parsePorts()
	if err != nil {
		return nil, err
	}
	if err := p.expectIdent("OUTPUT_INTERACTIONS"); err != nil {
		return nil, err
	}
	outputs, err := p.parsePorts()
	if err != nil {
		return nil, err
	}
	return aemilia.NewElemTypePorts(name, inputs, outputs, behaviors...), nil
}

// parsePorts parses "void" or one or more multiplicity groups:
// "UNI a; b AND c OR d; e". The list ends at the next section keyword.
func (p *parser) parsePorts() ([]aemilia.Port, error) {
	if p.atIdent("void") {
		return nil, p.advance()
	}
	var ports []aemilia.Port
	for {
		var mult aemilia.Multiplicity
		switch {
		case p.atIdent("UNI"):
			mult = aemilia.Uni
		case p.atIdent("AND"):
			mult = aemilia.And
		case p.atIdent("OR"):
			mult = aemilia.Or
		default:
			if len(ports) == 0 {
				return nil, p.errf("expected multiplicity (UNI/AND/OR), found %q", p.tok.text)
			}
			return ports, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			ports = append(ports, aemilia.Port{Name: name, Mult: mult})
			if p.atPunct(";") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				// A section keyword after ";" ends the list.
				if p.tok.kind == tokIdent && isSectionKeyword(p.tok.text) {
					return ports, nil
				}
				// A multiplicity keyword starts a new group.
				if p.atIdent("UNI") || p.atIdent("AND") || p.atIdent("OR") {
					break
				}
				continue
			}
			// Without a separator, a multiplicity keyword still starts a
			// new group; anything else ends the list.
			if p.atIdent("UNI") || p.atIdent("AND") || p.atIdent("OR") {
				break
			}
			return ports, nil
		}
	}
}

func isSectionKeyword(s string) bool {
	switch s {
	case "INPUT_INTERACTIONS", "OUTPUT_INTERACTIONS", "ELEM_TYPE",
		"ARCHI_TOPOLOGY", "ARCHI_ELEM_INSTANCES", "ARCHI_ATTACHMENTS", "END":
		return true
	}
	return false
}

func (p *parser) parseBehavior() (*aemilia.Behavior, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var params []aemilia.Param
	if p.atIdent("void") {
		if err := p.advance(); err != nil {
			return nil, err
		}
	} else {
		for {
			var ty expr.Type
			switch {
			case p.atIdent("integer"):
				ty = expr.TypeInt
			case p.atIdent("boolean"):
				ty = expr.TypeBool
			default:
				return nil, p.errf("expected parameter type (integer/boolean), found %q", p.tok.text)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			pn, err := p.ident()
			if err != nil {
				return nil, err
			}
			params = append(params, aemilia.Param{Name: pn, Type: ty})
			if p.atPunct(",") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if err := p.expectIdent("void"); err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	body, err := p.parseProcess()
	if err != nil {
		return nil, err
	}
	return aemilia.NewBehavior(name, params, body), nil
}

func (p *parser) parseProcess() (aemilia.Process, error) {
	switch {
	case p.atPunct("<"):
		return p.parsePrefix()
	case p.atIdent("choice"):
		return p.parseChoice()
	case p.atIdent("cond"):
		return p.parseGuarded()
	case p.atIdent("stop"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return aemilia.Halt(), nil
	case p.tok.kind == tokIdent:
		return p.parseCall()
	default:
		return nil, p.errf("expected process term, found %q", p.tok.text)
	}
}

func (p *parser) parsePrefix() (aemilia.Process, error) {
	if err := p.expectPunct("<"); err != nil {
		return nil, err
	}
	action, err := p.ident()
	if err != nil {
		return nil, err
	}
	r := rates.UntimedRate()
	if p.atPunct(",") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err = p.parseRate()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(">"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("."); err != nil {
		return nil, err
	}
	cont, err := p.parseProcess()
	if err != nil {
		return nil, err
	}
	return aemilia.Pre(action, r, cont), nil
}

func (p *parser) parseRate() (rates.Rate, error) {
	switch {
	case p.atIdent("_"):
		return rates.UntimedRate(), p.advance()
	case p.atIdent("exp"):
		if err := p.advance(); err != nil {
			return rates.Rate{}, err
		}
		if err := p.expectPunct("("); err != nil {
			return rates.Rate{}, err
		}
		lam, err := p.number()
		if err != nil {
			return rates.Rate{}, err
		}
		if err := p.expectPunct(")"); err != nil {
			return rates.Rate{}, err
		}
		return rates.ExpRate(lam), nil
	case p.atIdent("inf"):
		if err := p.advance(); err != nil {
			return rates.Rate{}, err
		}
		if err := p.expectPunct("("); err != nil {
			return rates.Rate{}, err
		}
		prio, err := p.number()
		if err != nil {
			return rates.Rate{}, err
		}
		if err := p.expectPunct(","); err != nil {
			return rates.Rate{}, err
		}
		w, err := p.number()
		if err != nil {
			return rates.Rate{}, err
		}
		if err := p.expectPunct(")"); err != nil {
			return rates.Rate{}, err
		}
		return rates.Inf(int(prio), w), nil
	case p.atIdent("passive"):
		if err := p.advance(); err != nil {
			return rates.Rate{}, err
		}
		if p.atPunct("(") {
			if err := p.advance(); err != nil {
				return rates.Rate{}, err
			}
			w, err := p.number()
			if err != nil {
				return rates.Rate{}, err
			}
			if err := p.expectPunct(")"); err != nil {
				return rates.Rate{}, err
			}
			return rates.PassiveWeight(w), nil
		}
		return rates.PassiveRate(), nil
	default:
		return rates.Rate{}, p.errf("expected rate (_ / exp / inf / passive), found %q", p.tok.text)
	}
}

func (p *parser) parseChoice() (aemilia.Process, error) {
	if err := p.expectIdent("choice"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var branches []aemilia.Process
	for {
		br, err := p.parseProcess()
		if err != nil {
			return nil, err
		}
		branches = append(branches, br)
		if p.atPunct(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	return aemilia.Ch(branches...), nil
}

func (p *parser) parseGuarded() (aemilia.Process, error) {
	if err := p.expectIdent("cond"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("->"); err != nil {
		return nil, err
	}
	body, err := p.parseProcess()
	if err != nil {
		return nil, err
	}
	return aemilia.When(cond, body), nil
}

func (p *parser) parseCall() (aemilia.Process, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	args, err := p.parseArgs()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return aemilia.Invoke(name, args...), nil
}

// parseArgs parses "void" or a comma-separated expression list, stopping
// before the closing parenthesis.
func (p *parser) parseArgs() ([]expr.Expr, error) {
	if p.atIdent("void") {
		return nil, p.advance()
	}
	if p.atPunct(")") {
		return nil, nil
	}
	var args []expr.Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
		if p.atPunct(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		return args, nil
	}
}

func (p *parser) parseInstance() (*aemilia.Instance, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	typeName, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	args, err := p.parseArgs()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return aemilia.NewInstance(name, typeName, args...), nil
}

func (p *parser) parseAttachment() (aemilia.Attachment, error) {
	var at aemilia.Attachment
	if err := p.expectIdent("FROM"); err != nil {
		return at, err
	}
	fi, err := p.ident()
	if err != nil {
		return at, err
	}
	if err := p.expectPunct("."); err != nil {
		return at, err
	}
	fp, err := p.ident()
	if err != nil {
		return at, err
	}
	if err := p.expectIdent("TO"); err != nil {
		return at, err
	}
	ti, err := p.ident()
	if err != nil {
		return at, err
	}
	if err := p.expectPunct("."); err != nil {
		return at, err
	}
	tp, err := p.ident()
	if err != nil {
		return at, err
	}
	return aemilia.Attach(fi, fp, ti, tp), nil
}
