package parser

import (
	"strings"
	"testing"

	"repro/internal/aemilia"
)

// FuzzParse feeds arbitrary text to the parser: it must never panic, and
// whenever it accepts an input, the formatted output must parse again to
// the same normal form.
func FuzzParse(f *testing.F) {
	f.Add(paperRPC)
	f.Add(paramSpec)
	f.Add(multiPortSpec)
	f.Add("ARCHI_TYPE X(void) ARCHI_ELEM_TYPES ELEM_TYPE T(void) BEHAVIOR " +
		"B(void; void) = <a, _> . B() INPUT_INTERACTIONS void OUTPUT_INTERACTIONS void " +
		"ARCHI_TOPOLOGY ARCHI_ELEM_INSTANCES I : T() END")
	f.Add("ARCHI_TYPE")
	f.Add("<<<>>>")
	f.Add("MEASURE x IS")
	f.Fuzz(func(t *testing.T, src string) {
		a, err := Parse(src)
		if err != nil {
			return
		}
		text := aemilia.Format(a)
		b, err := Parse(text)
		if err != nil {
			t.Fatalf("Format output of accepted input does not parse: %v\ninput: %q\nformatted:\n%s",
				err, src, text)
		}
		if got := aemilia.Format(b); got != text {
			t.Fatalf("Format not a fixed point:\nfirst:\n%s\nsecond:\n%s", text, got)
		}
	})
}

// FuzzLexer exercises the tokenizer alone on arbitrary inputs.
func FuzzLexer(f *testing.F) {
	f.Add("a bc <x, exp(1.5)> . P() // comment\n cond(n <= 3) -> stop")
	f.Add(strings.Repeat("(", 100))
	f.Add("0.5e+3 1e9 3.x .5 _x")
	f.Fuzz(func(t *testing.T, src string) {
		lx := newLexer(src)
		for i := 0; i < 100000; i++ {
			tok, err := lx.next()
			if err != nil {
				return
			}
			if tok.kind == tokEOF {
				return
			}
		}
		t.Fatalf("lexer did not terminate on %q", src)
	})
}
