package parser

import (
	"strings"
	"testing"

	"repro/internal/aemilia"
	"repro/internal/elab"
	"repro/internal/expr"
	"repro/internal/rates"
)

// paperRPC is the simplified rpc specification from Sect. 2.3 of the
// paper, verbatim up to whitespace.
const paperRPC = `
ARCHI_TYPE RPC_DPM_Untimed(void)

ARCHI_ELEM_TYPES

  ELEM_TYPE Server_Type(void)
    BEHAVIOR
      Idle_Server(void; void) =
        choice {
          <receive_rpc_packet, _> . Busy_Server(),
          <receive_shutdown, _> . Sleeping_Server()
        };
      Busy_Server(void; void) =
        choice {
          <prepare_result_packet, _> . Responding_Server(),
          <receive_shutdown, _> . Sleeping_Server()
        };
      Responding_Server(void; void) =
        choice {
          <send_result_packet, _> . Idle_Server(),
          <receive_shutdown, _> . Sleeping_Server()
        };
      Sleeping_Server(void; void) =
        <receive_rpc_packet, _> . Awaking_Server();
      Awaking_Server(void; void) =
        <awake, _> . Busy_Server()
    INPUT_INTERACTIONS UNI receive_rpc_packet; receive_shutdown
    OUTPUT_INTERACTIONS UNI send_result_packet

  ELEM_TYPE Radio_Channel_Type(void)
    BEHAVIOR
      Radio_Channel(void; void) =
        <get_packet, _> . <propagate_packet, _> . <deliver_packet, _> . Radio_Channel()
    INPUT_INTERACTIONS UNI get_packet
    OUTPUT_INTERACTIONS UNI deliver_packet

  ELEM_TYPE Sync_Client_Type(void)
    BEHAVIOR
      Sync_Client(void; void) =
        <send_rpc_packet, _> . <receive_result_packet, _> .
          <process_result_packet, _> . Sync_Client()
    INPUT_INTERACTIONS UNI receive_result_packet
    OUTPUT_INTERACTIONS UNI send_rpc_packet

  ELEM_TYPE DPM_Type(void)
    BEHAVIOR
      DPM_Beh(void; void) =
        <send_shutdown, _> . DPM_Beh()
    INPUT_INTERACTIONS void
    OUTPUT_INTERACTIONS UNI send_shutdown

ARCHI_TOPOLOGY

  ARCHI_ELEM_INSTANCES
    S   : Server_Type();
    RCS : Radio_Channel_Type();
    RSC : Radio_Channel_Type();
    C   : Sync_Client_Type();
    DPM : DPM_Type()

  ARCHI_ATTACHMENTS
    FROM C.send_rpc_packet TO RCS.get_packet;
    FROM RCS.deliver_packet TO S.receive_rpc_packet;
    FROM S.send_result_packet TO RSC.get_packet;
    FROM RSC.deliver_packet TO C.receive_result_packet;
    FROM DPM.send_shutdown TO S.receive_shutdown

END
`

func TestParsePaperRPC(t *testing.T) {
	a, err := Parse(paperRPC)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if a.Name != "RPC_DPM_Untimed" {
		t.Errorf("Name = %q", a.Name)
	}
	if len(a.ElemTypes) != 4 {
		t.Fatalf("ElemTypes = %d, want 4", len(a.ElemTypes))
	}
	if len(a.Instances) != 5 {
		t.Fatalf("Instances = %d, want 5", len(a.Instances))
	}
	if len(a.Attachments) != 5 {
		t.Fatalf("Attachments = %d, want 5", len(a.Attachments))
	}
	server, ok := a.ElemType("Server_Type")
	if !ok {
		t.Fatal("Server_Type missing")
	}
	if len(server.Behaviors) != 5 {
		t.Errorf("Server behaviours = %d, want 5", len(server.Behaviors))
	}
	if !server.IsInput("receive_shutdown") || !server.IsOutput("send_result_packet") {
		t.Error("server interactions wrong")
	}
	// The parsed model must elaborate and run.
	m, err := elab.Elaborate(a)
	if err != nil {
		t.Fatalf("Elaborate: %v", err)
	}
	ts, err := m.Successors(m.Initial())
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) == 0 {
		t.Fatal("no initial transitions")
	}
	var sawSend, sawShutdown bool
	for _, tr := range ts {
		switch tr.Label {
		case "C.send_rpc_packet#RCS.get_packet":
			sawSend = true
		case "DPM.send_shutdown#S.receive_shutdown":
			sawShutdown = true
		}
	}
	if !sawSend || !sawShutdown {
		t.Errorf("initial transitions missing expected syncs: %v", ts)
	}
}

const paramSpec = `
ARCHI_TYPE Buffered(void)
ARCHI_ELEM_TYPES
  ELEM_TYPE Buffer_Type(void)
    BEHAVIOR
      Buffer(integer n; void) =
        choice {
          cond(n < 3) -> <put, passive> . Buffer(n + 1),
          cond(n > 0) -> <get, passive(2)> . Buffer(n - 1),
          cond(n = 3) -> <overflow_watch, passive> . Buffer(n)
        }
    INPUT_INTERACTIONS UNI put
    OUTPUT_INTERACTIONS UNI get
  ELEM_TYPE Prod_Type(void)
    BEHAVIOR
      P(void; void) = <put, exp(1.5)> . P()
    INPUT_INTERACTIONS void
    OUTPUT_INTERACTIONS UNI put
  ELEM_TYPE Cons_Type(void)
    BEHAVIOR
      C(void; void) = <get, inf(1, 2)> . <render, exp(0.5)> . C()
    INPUT_INTERACTIONS UNI get
    OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    B : Buffer_Type(0);
    P : Prod_Type();
    C : Cons_Type()
  ARCHI_ATTACHMENTS
    FROM P.put TO B.put;
    FROM B.get TO C.get
END
`

func TestParseParamsGuardsRates(t *testing.T) {
	a, err := Parse(paramSpec)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	buf, _ := a.ElemType("Buffer_Type")
	b := buf.Behaviors[0]
	if len(b.Params) != 1 || b.Params[0].Name != "n" || b.Params[0].Type != expr.TypeInt {
		t.Fatalf("params = %+v", b.Params)
	}
	ch, ok := b.Body.(*aemilia.Choice)
	if !ok || len(ch.Branches) != 3 {
		t.Fatalf("body not a 3-way choice: %T", b.Body)
	}
	g, ok := ch.Branches[1].(*aemilia.Guarded)
	if !ok {
		t.Fatalf("branch 1 not guarded")
	}
	pre, ok := g.Body.(*aemilia.Prefix)
	if !ok || pre.Act.Rate.Kind != rates.Passive || pre.Act.Rate.Weight != 2 {
		t.Fatalf("get rate = %v", pre.Act.Rate)
	}
	prod, _ := a.ElemType("Prod_Type")
	pp := prod.Behaviors[0].Body.(*aemilia.Prefix)
	if pp.Act.Rate.Kind != rates.Exp || pp.Act.Rate.Lambda != 1.5 {
		t.Fatalf("put rate = %v", pp.Act.Rate)
	}
	cons, _ := a.ElemType("Cons_Type")
	cp := cons.Behaviors[0].Body.(*aemilia.Prefix)
	if cp.Act.Rate.Kind != rates.Immediate || cp.Act.Rate.Priority != 1 || cp.Act.Rate.Weight != 2 {
		t.Fatalf("get rate = %v", cp.Act.Rate)
	}
}

func TestRoundTrip(t *testing.T) {
	for _, src := range []string{paperRPC, paramSpec} {
		a1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse original: %v", err)
		}
		text := aemilia.Format(a1)
		a2, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse of Format output failed: %v\n%s", err, text)
		}
		if aemilia.Format(a2) != text {
			t.Errorf("Format not a fixed point of Parse∘Format")
		}
	}
}

func TestParseComments(t *testing.T) {
	src := strings.Replace(paramSpec, "ARCHI_ELEM_TYPES",
		"// a line comment\nARCHI_ELEM_TYPES // trailing", 1)
	if _, err := Parse(src); err != nil {
		t.Fatalf("comments broke parsing: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{"empty", "", "expected \"ARCHI_TYPE\""},
		{"no-void", "ARCHI_TYPE X(int)", `expected "void"`},
		{"bad-rate", strings.Replace(paramSpec, "exp(1.5)", "gauss(1)", 1), "expected rate"},
		{"bad-char", strings.Replace(paramSpec, "exp(1.5)", "exp(@)", 1), "unexpected character"},
		{"missing-dot", strings.Replace(paramSpec, "> . P()", "> P()", 1), `expected "."`},
		{"float-arg", strings.Replace(paramSpec, "Buffer_Type(0)", "Buffer_Type(0.5)", 1), "expected integer literal"},
		{"bad-param-type", strings.Replace(paramSpec, "integer n", "real n", 1), "expected parameter type"},
		{"unclosed-choice", strings.Replace(paramSpec, "cond(n = 3) -> <overflow_watch, passive> . Buffer(n)\n        }", "cond(n = 3) -> <overflow_watch, passive> . Buffer(n)\n", 1), "expected"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(tt.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not contain %q", err, tt.want)
			}
		})
	}
}

func TestParseSemanticErrorSurfaces(t *testing.T) {
	// Parses fine but fails validation (unknown behaviour invocation).
	src := strings.Replace(paramSpec, "P()", "Q()", 1)
	_, err := Parse(src)
	if err == nil || !strings.Contains(err.Error(), "unknown behaviour") {
		t.Fatalf("want validation error, got %v", err)
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	src := strings.Replace(paramSpec, "cond(n < 3)", "cond(n + 1 * 2 < 3 and not(n = 2) or false)", 1)
	a, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	buf, _ := a.ElemType("Buffer_Type")
	g := buf.Behaviors[0].Body.(*aemilia.Choice).Branches[0].(*aemilia.Guarded)
	got := g.Cond.String()
	want := "((((n + (1 * 2)) < 3) and not((n = 2))) or false)"
	if got != want {
		t.Errorf("precedence: got %s, want %s", got, want)
	}
}

func TestParseNegativeLiteral(t *testing.T) {
	src := strings.Replace(paramSpec, "Buffer_Type(0)", "Buffer_Type(-1 + 1)", 1)
	a, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	m, err := elab.Elaborate(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Successors(m.Initial()); err != nil {
		t.Fatal(err)
	}
}

const multiPortSpec = `
ARCHI_TYPE Multicast(void)
ARCHI_ELEM_TYPES
  ELEM_TYPE Pub_Type(void)
    BEHAVIOR
      P(void; void) = <prepare, exp(1)> . <publish, inf(1, 1)> . P()
    INPUT_INTERACTIONS void
    OUTPUT_INTERACTIONS AND publish
  ELEM_TYPE Sub_Type(void)
    BEHAVIOR
      S(void; void) = <hear, passive> . <digest, exp(2)> . S()
    INPUT_INTERACTIONS UNI hear
    OUTPUT_INTERACTIONS void
  ELEM_TYPE Srv_Type(void)
    BEHAVIOR
      V(void; void) = <serve, exp(3)> . V()
    INPUT_INTERACTIONS void
    OUTPUT_INTERACTIONS OR serve
  ELEM_TYPE Cli_Type(void)
    BEHAVIOR
      C(void; void) = <obtain, passive> . C()
    INPUT_INTERACTIONS UNI obtain
    OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    P : Pub_Type();
    A : Sub_Type();
    B : Sub_Type();
    V : Srv_Type();
    C1 : Cli_Type();
    C2 : Cli_Type()
  ARCHI_ATTACHMENTS
    FROM P.publish TO A.hear;
    FROM P.publish TO B.hear;
    FROM V.serve TO C1.obtain;
    FROM V.serve TO C2.obtain
END
`

func TestParseMultiplicities(t *testing.T) {
	a, err := Parse(multiPortSpec)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	pub, _ := a.ElemType("Pub_Type")
	port, ok := pub.OutputPort("publish")
	if !ok || port.Mult != aemilia.And {
		t.Errorf("publish port = %+v, want AND", port)
	}
	srv, _ := a.ElemType("Srv_Type")
	port, ok = srv.OutputPort("serve")
	if !ok || port.Mult != aemilia.Or {
		t.Errorf("serve port = %+v, want OR", port)
	}
	// The model elaborates and broadcasts.
	m, err := elab.Elaborate(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Successors(m.Initial()); err != nil {
		t.Fatal(err)
	}
	// Round trip.
	text := aemilia.Format(a)
	if !strings.Contains(text, "OUTPUT_INTERACTIONS AND publish") {
		t.Errorf("Format lost the AND multiplicity:\n%s", text)
	}
	b, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if aemilia.Format(b) != text {
		t.Error("Format not a fixed point for multiplicities")
	}
}

func TestParseMixedMultiplicityGroups(t *testing.T) {
	src := strings.Replace(multiPortSpec,
		"INPUT_INTERACTIONS UNI hear",
		"INPUT_INTERACTIONS UNI hear OR extra", 1)
	src = strings.Replace(src,
		"S(void; void) = <hear, passive> . <digest, exp(2)> . S()",
		"S(void; void) = choice { <hear, passive> . <digest, exp(2)> . S(), <extra, passive> . S() }", 1)
	a, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	sub, _ := a.ElemType("Sub_Type")
	if p, ok := sub.InputPort("extra"); !ok || p.Mult != aemilia.Or {
		t.Errorf("extra port = %+v, want OR", p)
	}
}
