// Package parser implements a lexer and recursive-descent parser for the
// textual .aem syntax of architectural descriptions — the Æmilia-like
// notation used throughout the paper (ARCHI_TYPE / ELEM_TYPE / BEHAVIOR /
// choice / cond / ARCHI_TOPOLOGY / attachments), including rate
// annotations exp(λ), inf(prio, weight), passive(w) and the untimed
// placeholder "_".
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota + 1
	tokIdent
	tokNumber
	tokPunct // single- or multi-character punctuation, in Text
)

// token is one lexical token with its position.
type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// SyntaxError reports a lexical or syntactic error with position.
type SyntaxError struct {
	// Line and Col locate the error (1-based).
	Line, Col int
	// Msg describes the problem.
	Msg string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("aemilia: %d:%d: %s", e.Line, e.Col, e.Msg)
}

// lexer tokenizes .aem source.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (lx *lexer) errf(line, col int, format string, args ...any) error {
	return &SyntaxError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) advance() byte {
	ch := lx.src[lx.pos]
	lx.pos++
	if ch == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return ch
}

// multi-character punctuation, longest first.
var multiPunct = []string{"->", "!=", "<=", ">=", "=="}

// next returns the next token.
func (lx *lexer) next() (token, error) {
	for {
		// Skip whitespace.
		for lx.pos < len(lx.src) && isSpace(lx.peekByte()) {
			lx.advance()
		}
		// Skip // line comments.
		if strings.HasPrefix(lx.src[lx.pos:], "//") {
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
			continue
		}
		break
	}
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, line: lx.line, col: lx.col}, nil
	}
	line, col := lx.line, lx.col
	ch := lx.peekByte()

	if isIdentStart(ch) {
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentPart(lx.peekByte()) {
			lx.advance()
		}
		return token{kind: tokIdent, text: lx.src[start:lx.pos], line: line, col: col}, nil
	}
	if unicode.IsDigit(rune(ch)) {
		start := lx.pos
		seenDot := false
		for lx.pos < len(lx.src) {
			c := lx.peekByte()
			if unicode.IsDigit(rune(c)) {
				lx.advance()
				continue
			}
			// A dot is part of the number only when followed by a digit,
			// so "3 . P()" and "0.5" both lex correctly.
			if c == '.' && !seenDot && lx.pos+1 < len(lx.src) && unicode.IsDigit(rune(lx.src[lx.pos+1])) {
				seenDot = true
				lx.advance()
				continue
			}
			if c == 'e' || c == 'E' {
				// Exponent part: e[+-]?digits.
				j := lx.pos + 1
				if j < len(lx.src) && (lx.src[j] == '+' || lx.src[j] == '-') {
					j++
				}
				if j < len(lx.src) && unicode.IsDigit(rune(lx.src[j])) {
					for lx.pos < j {
						lx.advance()
					}
					for lx.pos < len(lx.src) && unicode.IsDigit(rune(lx.peekByte())) {
						lx.advance()
					}
					continue
				}
			}
			break
		}
		return token{kind: tokNumber, text: lx.src[start:lx.pos], line: line, col: col}, nil
	}
	for _, mp := range multiPunct {
		if strings.HasPrefix(lx.src[lx.pos:], mp) {
			for range mp {
				lx.advance()
			}
			return token{kind: tokPunct, text: mp, line: line, col: col}, nil
		}
	}
	switch ch {
	case '(', ')', '{', '}', '<', '>', ',', ';', ':', '.', '=', '#', '+', '-', '*', '/', '%', '!':
		lx.advance()
		return token{kind: tokPunct, text: string(ch), line: line, col: col}, nil
	}
	return token{}, lx.errf(line, col, "unexpected character %q", string(ch))
}

func isSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\r' || b == '\n' }

func isIdentStart(b byte) bool {
	return b == '_' || ('a' <= b && b <= 'z') || ('A' <= b && b <= 'Z')
}

func isIdentPart(b byte) bool {
	return isIdentStart(b) || ('0' <= b && b <= '9')
}
