package parser

import (
	"strconv"
	"strings"

	"repro/internal/expr"
)

// Expression grammar, lowest precedence first:
//
//	expr   := orE
//	orE    := andE ( "or"  andE )*
//	andE   := notE ( "and" notE )*
//	notE   := "not" "("? expr ")"? | cmpE
//	cmpE   := addE ( ("="|"=="|"!="|"<"|"<="|">"|">=") addE )?
//	addE   := mulE ( ("+"|"-") mulE )*
//	mulE   := unE  ( ("*"|"/"|"%") unE )*
//	unE    := "-" unE | primary
//	primary:= INT | "true" | "false" | IDENT | "(" expr ")"
func (p *parser) parseExpr() (expr.Expr, error) {
	return p.parseOr()
}

func (p *parser) parseOr() (expr.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atIdent("or") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = expr.Bin(expr.OpOr, l, r)
	}
	return l, nil
}

func (p *parser) parseAnd() (expr.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atIdent("and") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = expr.Bin(expr.OpAnd, l, r)
	}
	return l, nil
}

func (p *parser) parseNot() (expr.Expr, error) {
	if p.atIdent("not") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return expr.Un(expr.OpNot, x), nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (expr.Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	var op expr.Op
	switch {
	case p.atPunct("=") || p.atPunct("=="):
		op = expr.OpEq
	case p.atPunct("!="):
		op = expr.OpNe
	case p.atPunct("<"):
		op = expr.OpLt
	case p.atPunct("<="):
		op = expr.OpLe
	case p.atPunct(">"):
		op = expr.OpGt
	case p.atPunct(">="):
		op = expr.OpGe
	default:
		return l, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	r, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	return expr.Bin(op, l, r), nil
}

func (p *parser) parseAdd() (expr.Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.atPunct("+") || p.atPunct("-") {
		op := expr.OpAdd
		if p.tok.text == "-" {
			op = expr.OpSub
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = expr.Bin(op, l, r)
	}
	return l, nil
}

func (p *parser) parseMul() (expr.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.atPunct("*") || p.atPunct("/") || p.atPunct("%") {
		var op expr.Op
		switch p.tok.text {
		case "*":
			op = expr.OpMul
		case "/":
			op = expr.OpDiv
		default:
			op = expr.OpMod
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = expr.Bin(op, l, r)
	}
	return l, nil
}

func (p *parser) parseUnary() (expr.Expr, error) {
	if p.atPunct("-") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return expr.Un(expr.OpNeg, x), nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr.Expr, error) {
	switch {
	case p.tok.kind == tokNumber:
		if strings.ContainsAny(p.tok.text, ".eE") {
			return nil, p.errf("expected integer literal, found %q", p.tok.text)
		}
		v, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return nil, p.errf("invalid integer %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return expr.Int(v), nil
	case p.atIdent("true"):
		return expr.Bool(true), p.advance()
	case p.atIdent("false"):
		return expr.Bool(false), p.advance()
	case p.tok.kind == tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return expr.Ref(name), nil
	case p.atPunct("("):
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errf("expected expression, found %q", p.tok.text)
	}
}
