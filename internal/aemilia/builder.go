package aemilia

import (
	"repro/internal/expr"
	"repro/internal/rates"
)

// This file provides terse constructors for assembling architectural
// descriptions programmatically. The case-study models in internal/models
// are written against this API; the textual parser produces the same AST.

// NewArchiType assembles an architectural description.
func NewArchiType(name string, elems []*ElemType, insts []*Instance, atts []Attachment) *ArchiType {
	return &ArchiType{
		Name:        name,
		ElemTypes:   elems,
		Instances:   insts,
		Attachments: atts,
	}
}

// NewElemType assembles an element type with UNI interactions.
func NewElemType(name string, inputs, outputs []string, behaviors ...*Behavior) *ElemType {
	return &ElemType{
		Name:      name,
		Behaviors: behaviors,
		Inputs:    inputs,
		Outputs:   outputs,
	}
}

// NewElemTypePorts assembles an element type with explicit interaction
// multiplicities (UNI, AND broadcast outputs, OR alternatives).
func NewElemTypePorts(name string, inputs, outputs []Port, behaviors ...*Behavior) *ElemType {
	return &ElemType{
		Name:      name,
		Behaviors: behaviors,
		InPorts:   inputs,
		OutPorts:  outputs,
	}
}

// UniPort declares a UNI interaction.
func UniPort(name string) Port { return Port{Name: name, Mult: Uni} }

// AndPort declares an AND (broadcast) interaction.
func AndPort(name string) Port { return Port{Name: name, Mult: And} }

// OrPort declares an OR (alternative) interaction.
func OrPort(name string) Port { return Port{Name: name, Mult: Or} }

// NewBehavior assembles a behaviour equation.
func NewBehavior(name string, params []Param, body Process) *Behavior {
	return &Behavior{Name: name, Params: params, Body: body}
}

// IntParam declares an integer formal parameter.
func IntParam(name string) Param { return Param{Name: name, Type: expr.TypeInt} }

// BoolParam declares a boolean formal parameter.
func BoolParam(name string) Param { return Param{Name: name, Type: expr.TypeBool} }

// NewInstance declares an element instance.
func NewInstance(name, typeName string, args ...expr.Expr) *Instance {
	return &Instance{Name: name, TypeName: typeName, Args: args}
}

// Attach declares an attachment from an output interaction to an input
// interaction.
func Attach(fromInst, fromPort, toInst, toPort string) Attachment {
	return Attachment{
		FromInstance: fromInst, FromPort: fromPort,
		ToInstance: toInst, ToPort: toPort,
	}
}

// Pre builds an action prefix <action, rate> . cont.
func Pre(action string, r rates.Rate, cont Process) Process {
	return &Prefix{Act: Action{Name: action, Rate: r}, Cont: cont}
}

// Ch builds a choice among branches.
func Ch(branches ...Process) Process {
	return &Choice{Branches: branches}
}

// When builds a guarded branch cond(c) -> body.
func When(c expr.Expr, body Process) Process {
	return &Guarded{Cond: c, Body: body}
}

// Invoke builds a behaviour invocation name(args...).
func Invoke(name string, args ...expr.Expr) Process {
	return &Call{Name: name, Args: args}
}

// Halt builds the terminated process.
func Halt() Process { return &Stop{} }
