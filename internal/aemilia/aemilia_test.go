package aemilia

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/rates"
)

// pingPong returns a minimal two-element description used across tests.
func pingPong() *ArchiType {
	sender := NewElemType("Sender_Type",
		[]string{"ack"}, []string{"ping"},
		NewBehavior("Send", nil,
			Pre("ping", rates.UntimedRate(),
				Pre("ack", rates.UntimedRate(), Invoke("Send")))),
	)
	receiver := NewElemType("Receiver_Type",
		[]string{"ping"}, []string{"ack"},
		NewBehavior("Recv", nil,
			Pre("ping", rates.UntimedRate(),
				Pre("think", rates.UntimedRate(),
					Pre("ack", rates.UntimedRate(), Invoke("Recv"))))),
	)
	return NewArchiType("PingPong",
		[]*ElemType{sender, receiver},
		[]*Instance{NewInstance("A", "Sender_Type"), NewInstance("B", "Receiver_Type")},
		[]Attachment{
			Attach("A", "ping", "B", "ping"),
			Attach("B", "ack", "A", "ack"),
		},
	)
}

// counter returns a description with data parameters and guards.
func counter(capacity int64) *ArchiType {
	buf := NewElemType("Buffer_Type",
		[]string{"put"}, []string{"get"},
		NewBehavior("Buffer", []Param{IntParam("n")},
			Ch(
				When(expr.Bin(expr.OpLt, expr.Ref("n"), expr.Int(capacity)),
					Pre("put", rates.UntimedRate(),
						Invoke("Buffer", expr.Bin(expr.OpAdd, expr.Ref("n"), expr.Int(1))))),
				When(expr.Bin(expr.OpGt, expr.Ref("n"), expr.Int(0)),
					Pre("get", rates.UntimedRate(),
						Invoke("Buffer", expr.Bin(expr.OpSub, expr.Ref("n"), expr.Int(1))))),
			)),
	)
	prod := NewElemType("Prod_Type", nil, []string{"put"},
		NewBehavior("P", nil, Pre("put", rates.UntimedRate(), Invoke("P"))))
	cons := NewElemType("Cons_Type", []string{"get"}, nil,
		NewBehavior("C", nil, Pre("get", rates.UntimedRate(), Invoke("C"))))
	return NewArchiType("Counter",
		[]*ElemType{buf, prod, cons},
		[]*Instance{
			NewInstance("B", "Buffer_Type", expr.Int(0)),
			NewInstance("P", "Prod_Type"),
			NewInstance("C", "Cons_Type"),
		},
		[]Attachment{
			Attach("P", "put", "B", "put"),
			Attach("B", "get", "C", "get"),
		},
	)
}

func TestValidateOK(t *testing.T) {
	for _, a := range []*ArchiType{pingPong(), counter(4)} {
		if err := a.Validate(); err != nil {
			t.Fatalf("Validate(%s): %v", a.Name, err)
		}
		if !a.Validated() {
			t.Errorf("%s: Validated() = false after successful Validate", a.Name)
		}
		if a.NodeCount() == 0 {
			t.Errorf("%s: no nodes numbered", a.Name)
		}
	}
}

func TestValidateResolvesLookups(t *testing.T) {
	a := pingPong()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	et, ok := a.ElemType("Sender_Type")
	if !ok || et.Name != "Sender_Type" {
		t.Fatalf("ElemType lookup failed")
	}
	in, ok := a.Instance("A")
	if !ok || in.Type() != et {
		t.Fatalf("Instance lookup failed")
	}
	b, ok := et.Behavior("Send")
	if !ok || b.Owner() != et {
		t.Fatalf("Behavior lookup failed")
	}
	if et.Initial() != b {
		t.Errorf("Initial() should be the first behaviour")
	}
	if !et.IsOutput("ping") || et.IsInput("ping") || !et.IsInteraction("ping") {
		t.Errorf("interaction classification wrong for ping")
	}
}

func TestValidateNodeIDsUnique(t *testing.T) {
	a := counter(2)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	var walk func(p Process)
	walk = func(p Process) {
		if seen[p.ID()] {
			t.Fatalf("duplicate node id %d", p.ID())
		}
		seen[p.ID()] = true
		switch x := p.(type) {
		case *Prefix:
			walk(x.Cont)
		case *Choice:
			for _, br := range x.Branches {
				walk(br)
			}
		case *Guarded:
			walk(x.Body)
		}
	}
	for _, et := range a.ElemTypes {
		for _, b := range et.Behaviors {
			walk(b.Body)
		}
	}
	if len(seen) != a.NodeCount() {
		t.Errorf("numbered %d nodes, NodeCount = %d", len(seen), a.NodeCount())
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(a *ArchiType)
		want   string
	}{
		{"dup-elem", func(a *ArchiType) {
			a.ElemTypes = append(a.ElemTypes, a.ElemTypes[0])
		}, "duplicate element type"},
		{"dup-inst", func(a *ArchiType) {
			a.Instances = append(a.Instances, NewInstance("A", "Sender_Type"))
		}, "duplicate instance"},
		{"unknown-type", func(a *ArchiType) {
			a.Instances[0].TypeName = "Nope"
		}, "unknown element type"},
		{"self-attach", func(a *ArchiType) {
			a.Attachments[0] = Attach("A", "ping", "A", "ack")
		}, "cannot be attached to itself"},
		{"not-output", func(a *ArchiType) {
			a.Attachments[0] = Attach("A", "ack", "B", "ping")
		}, "not an output interaction"},
		{"not-input", func(a *ArchiType) {
			a.Attachments[0] = Attach("A", "ping", "B", "ack")
		}, "not an input interaction"},
		{"double-attach", func(a *ArchiType) {
			a.ElemTypes = append(a.ElemTypes, NewElemType("X", []string{"ping"}, nil,
				NewBehavior("XB", nil, Pre("ping", rates.UntimedRate(), Invoke("XB")))))
			a.Instances = append(a.Instances, NewInstance("X1", "X"))
			a.Attachments = append(a.Attachments, Attach("A", "ping", "X1", "ping"))
		}, "attached more than once"},
		{"bad-arity", func(a *ArchiType) {
			a.Instances[0].Args = []expr.Expr{expr.Int(1)}
		}, "expects 0 argument"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a := pingPong()
			tt.mutate(a)
			err := a.Validate()
			if err == nil {
				t.Fatal("expected error")
			}
			var ve *ValidationError
			if !errors.As(err, &ve) {
				t.Fatalf("want ValidationError, got %T: %v", err, err)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not contain %q", err, tt.want)
			}
		})
	}
}

func TestValidateBehaviorErrors(t *testing.T) {
	mk := func(b *Behavior) *ArchiType {
		et := NewElemType("T", nil, nil, b)
		return NewArchiType("A", []*ElemType{et}, []*Instance{NewInstance("I", "T")}, nil)
	}
	tests := []struct {
		name string
		b    *Behavior
		want string
	}{
		{"bare-call", NewBehavior("B", nil, Invoke("B")), "bare invocation"},
		{"unknown-call", NewBehavior("B", nil,
			Pre("a", rates.UntimedRate(), Invoke("Nope"))), "unknown behaviour"},
		{"call-arity", NewBehavior("B", []Param{IntParam("n")},
			Pre("a", rates.UntimedRate(), Invoke("B"))), "expects 1 argument"},
		{"call-type", NewBehavior("B", []Param{IntParam("n")},
			Pre("a", rates.UntimedRate(), Invoke("B", expr.Bool(true)))), "got boolean, want integer"},
		{"guard-type", NewBehavior("B", nil,
			Ch(
				When(expr.Int(1), Pre("a", rates.UntimedRate(), Invoke("B"))),
				Pre("b", rates.UntimedRate(), Invoke("B")),
			)), "guard must be boolean"},
		{"single-choice", NewBehavior("B", nil,
			&Choice{Branches: []Process{Pre("a", rates.UntimedRate(), Invoke("B"))}}),
			"at least two branches"},
		{"choice-branch-call", NewBehavior("B", nil,
			&Choice{Branches: []Process{
				Pre("a", rates.UntimedRate(), Invoke("B")),
				Invoke("B"),
			}}), "choice branch must be"},
		{"bad-rate", NewBehavior("B", nil,
			Pre("a", rates.ExpRate(-1), Invoke("B"))), "must be positive"},
		{"guard-undefined-var", NewBehavior("B", nil,
			Ch(
				When(expr.Ref("zzz"), Pre("a", rates.UntimedRate(), Invoke("B"))),
				Pre("b", rates.UntimedRate(), Invoke("B")),
			)), "undefined variable"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := mk(tt.b).Validate()
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not contain %q", err, tt.want)
			}
		})
	}
}

func TestFormatContainsSections(t *testing.T) {
	a := counter(4)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	text := Format(a)
	for _, want := range []string{
		"ARCHI_TYPE Counter(void)",
		"ELEM_TYPE Buffer_Type(void)",
		"BEHAVIOR",
		"cond((n < 4)) -> <put, _> . Buffer((n + 1))",
		"INPUT_INTERACTIONS UNI put",
		"OUTPUT_INTERACTIONS UNI get",
		"ARCHI_ELEM_INSTANCES",
		"B : Buffer_Type(0);",
		"FROM P.put TO B.put;",
		"END",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Format output missing %q\n%s", want, text)
		}
	}
}

func TestFormatStop(t *testing.T) {
	et := NewElemType("T", nil, nil,
		NewBehavior("B", nil, Pre("a", rates.ExpRate(2), Halt())))
	a := NewArchiType("A", []*ElemType{et}, []*Instance{NewInstance("I", "T")}, nil)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	text := Format(a)
	if !strings.Contains(text, "<a, exp(2)> . stop") {
		t.Errorf("Format output missing stop prefix:\n%s", text)
	}
}
