// Package stats provides the statistical machinery behind the simulation
// experiments: streaming mean/variance accumulators (Welford), Student-t
// confidence intervals across independent replications (the paper uses 30
// runs with 90% intervals), histograms, and small table/series helpers for
// the experiment drivers.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator computes running mean and variance (Welford's algorithm).
// The zero value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates an observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 with no observations).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// Interval is a symmetric confidence interval around a mean.
type Interval struct {
	// Mean is the point estimate.
	Mean float64
	// HalfWidth is the half-width of the interval.
	HalfWidth float64
	// Level is the confidence level, e.g. 0.90.
	Level float64
	// N is the number of replications.
	N int
}

// Low returns the lower bound of the interval.
func (ci Interval) Low() float64 { return ci.Mean - ci.HalfWidth }

// High returns the upper bound of the interval.
func (ci Interval) High() float64 { return ci.Mean + ci.HalfWidth }

// Contains reports whether v lies inside the interval.
func (ci Interval) Contains(v float64) bool {
	return v >= ci.Low() && v <= ci.High()
}

// String renders the interval as "m ± h (p%)".
func (ci Interval) String() string {
	return fmt.Sprintf("%.6g ± %.3g (%.0f%%)", ci.Mean, ci.HalfWidth, ci.Level*100)
}

// CI returns the Student-t confidence interval of the accumulated mean at
// the given confidence level (0.80, 0.90, 0.95, or 0.99).
func (a *Accumulator) CI(level float64) Interval {
	ci := Interval{Mean: a.mean, Level: level, N: a.n}
	if a.n >= 2 {
		ci.HalfWidth = TQuantile(level, a.n-1) * a.StdErr()
	}
	return ci
}

// tTable holds two-sided Student-t critical values t_{(1+level)/2, df}.
// Rows: df 1..30, then 40, 60, 120, and the normal limit.
var tTable = map[float64][]struct {
	df int
	t  float64
}{
	0.80: {
		{1, 3.078}, {2, 1.886}, {3, 1.638}, {4, 1.533}, {5, 1.476},
		{6, 1.440}, {7, 1.415}, {8, 1.397}, {9, 1.383}, {10, 1.372},
		{12, 1.356}, {15, 1.341}, {20, 1.325}, {25, 1.316}, {29, 1.311},
		{30, 1.310}, {40, 1.303}, {60, 1.296}, {120, 1.289}, {1 << 30, 1.282},
	},
	0.90: {
		{1, 6.314}, {2, 2.920}, {3, 2.353}, {4, 2.132}, {5, 2.015},
		{6, 1.943}, {7, 1.895}, {8, 1.860}, {9, 1.833}, {10, 1.812},
		{12, 1.782}, {15, 1.753}, {20, 1.725}, {25, 1.708}, {29, 1.699},
		{30, 1.697}, {40, 1.684}, {60, 1.671}, {120, 1.658}, {1 << 30, 1.645},
	},
	0.95: {
		{1, 12.706}, {2, 4.303}, {3, 3.182}, {4, 2.776}, {5, 2.571},
		{6, 2.447}, {7, 2.365}, {8, 2.306}, {9, 2.262}, {10, 2.228},
		{12, 2.179}, {15, 2.131}, {20, 2.086}, {25, 2.060}, {29, 2.045},
		{30, 2.042}, {40, 2.021}, {60, 2.000}, {120, 1.980}, {1 << 30, 1.960},
	},
	0.99: {
		{1, 63.657}, {2, 9.925}, {3, 5.841}, {4, 4.604}, {5, 4.032},
		{6, 3.707}, {7, 3.499}, {8, 3.355}, {9, 3.250}, {10, 3.169},
		{12, 3.055}, {15, 2.947}, {20, 2.845}, {25, 2.787}, {29, 2.756},
		{30, 2.750}, {40, 2.704}, {60, 2.660}, {120, 2.617}, {1 << 30, 2.576},
	},
}

// TQuantile returns the two-sided Student-t critical value for the given
// confidence level and degrees of freedom. Unsupported levels fall back to
// 0.95; degrees of freedom between table rows use the next smaller row
// (conservative).
func TQuantile(level float64, df int) float64 {
	rows, ok := tTable[level]
	if !ok {
		rows = tTable[0.95]
	}
	if df < 1 {
		df = 1
	}
	best := rows[0].t
	for _, row := range rows {
		if row.df <= df {
			best = row.t
		} else {
			break
		}
	}
	return best
}

// Histogram counts observations in equal-width bins over [Low, High];
// out-of-range observations go to saturating edge bins.
type Histogram struct {
	low, high float64
	bins      []int
	n         int
}

// NewHistogram builds a histogram with the given bounds and bin count.
func NewHistogram(low, high float64, bins int) *Histogram {
	if bins < 1 {
		bins = 1
	}
	return &Histogram{low: low, high: high, bins: make([]int, bins)}
}

// Add incorporates an observation.
func (h *Histogram) Add(x float64) {
	i := int(float64(len(h.bins)) * (x - h.low) / (h.high - h.low))
	if i < 0 {
		i = 0
	}
	if i >= len(h.bins) {
		i = len(h.bins) - 1
	}
	h.bins[i]++
	h.n++
}

// N returns the number of observations.
func (h *Histogram) N() int { return h.n }

// Bin returns the count of bin i.
func (h *Histogram) Bin(i int) int { return h.bins[i] }

// NumBins returns the number of bins.
func (h *Histogram) NumBins() int { return len(h.bins) }

// Fraction returns the fraction of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.bins[i]) / float64(h.n)
}

// Quantile returns the q-quantile (0..1) of a sample (sorted copy taken).
func Quantile(sample []float64, q float64) float64 {
	if len(sample) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 < len(s) {
		return s[i]*(1-frac) + s[i+1]*frac
	}
	return s[i]
}
