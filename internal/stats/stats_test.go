package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.N() != 0 {
		t.Error("zero accumulator not zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Errorf("N = %d", a.N())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", a.Mean())
	}
	// Population variance is 4; sample variance = 32/7.
	if math.Abs(a.Variance()-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", a.Variance(), 32.0/7)
	}
	if math.Abs(a.StdDev()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("StdDev = %v", a.StdDev())
	}
}

// Property: Welford agrees with the naive two-pass computation.
func TestQuickWelfordAgrees(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		var a Accumulator
		sum := 0.0
		for _, x := range clean {
			a.Add(x)
			sum += x
		}
		mean := sum / float64(len(clean))
		ss := 0.0
		for _, x := range clean {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(len(clean)-1)
		scale := math.Max(1, math.Abs(mean))
		if math.Abs(a.Mean()-mean) > 1e-9*scale {
			return false
		}
		vscale := math.Max(1, variance)
		return math.Abs(a.Variance()-variance) < 1e-6*vscale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTQuantile(t *testing.T) {
	tests := []struct {
		level float64
		df    int
		want  float64
	}{
		{0.90, 1, 6.314},
		{0.90, 29, 1.699},
		{0.90, 30, 1.697},
		{0.90, 35, 1.697}, // conservative: next smaller row
		{0.90, 1 << 20, 1.658},
		{0.95, 10, 2.228},
		{0.99, 5, 4.032},
		{0.80, 20, 1.325},
	}
	for _, tt := range tests {
		if got := TQuantile(tt.level, tt.df); got != tt.want {
			t.Errorf("TQuantile(%v, %d) = %v, want %v", tt.level, tt.df, got, tt.want)
		}
	}
	// Unsupported level falls back to 0.95.
	if got := TQuantile(0.5, 10); got != 2.228 {
		t.Errorf("fallback quantile = %v", got)
	}
	if got := TQuantile(0.90, 0); got != 6.314 {
		t.Errorf("df<1 should clamp to 1, got %v", got)
	}
}

func TestCI(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{10, 12, 14, 10, 12, 14} { // mean 12
		a.Add(x)
	}
	ci := a.CI(0.90)
	if math.Abs(ci.Mean-12) > 1e-12 {
		t.Errorf("CI mean = %v", ci.Mean)
	}
	if ci.HalfWidth <= 0 {
		t.Error("CI half-width should be positive")
	}
	if !ci.Contains(12) {
		t.Error("CI must contain its own mean")
	}
	if ci.Contains(100) {
		t.Error("CI should not contain 100")
	}
	if ci.Low() >= ci.High() {
		t.Error("degenerate interval")
	}
	if !strings.Contains(ci.String(), "90%") {
		t.Errorf("String = %q", ci.String())
	}
	// The 99% interval is wider than the 90% one.
	if a.CI(0.99).HalfWidth <= ci.HalfWidth {
		t.Error("99% CI should be wider than 90%")
	}
}

func TestCISingleObservation(t *testing.T) {
	var a Accumulator
	a.Add(5)
	ci := a.CI(0.90)
	if ci.HalfWidth != 0 {
		t.Errorf("single-observation CI half-width = %v, want 0", ci.HalfWidth)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0.5, 1.5, 2.5, 2.6, 9.9, -1, 11} {
		h.Add(x)
	}
	if h.N() != 7 {
		t.Errorf("N = %d", h.N())
	}
	if h.NumBins() != 5 {
		t.Errorf("NumBins = %d", h.NumBins())
	}
	// Bin 0 holds 0.5, 1.5 and the clamped -1.
	if h.Bin(0) != 3 {
		t.Errorf("Bin(0) = %d, want 3", h.Bin(0))
	}
	// Bin 1 holds 2.5, 2.6.
	if h.Bin(1) != 2 {
		t.Errorf("Bin(1) = %d, want 2", h.Bin(1))
	}
	// Bin 4 holds 9.9 and the clamped 11.
	if h.Bin(4) != 2 {
		t.Errorf("Bin(4) = %d, want 2", h.Bin(4))
	}
	if math.Abs(h.Fraction(0)-3.0/7) > 1e-12 {
		t.Errorf("Fraction(0) = %v", h.Fraction(0))
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0, 1, 0) // bins clamp to 1
	if h.NumBins() != 1 {
		t.Errorf("NumBins = %d, want 1", h.NumBins())
	}
	if h.Fraction(0) != 0 {
		t.Error("empty histogram fraction should be 0")
	}
}

func TestQuantile(t *testing.T) {
	s := []float64{3, 1, 2, 4, 5}
	if q := Quantile(s, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(s, 1); q != 5 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(s, 0.5); q != 3 {
		t.Errorf("median = %v", q)
	}
	if q := Quantile(s, 0.25); q != 2 {
		t.Errorf("q25 = %v", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	// Input must not be mutated.
	if s[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}
