package bisim

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/lts"
	"repro/internal/rates"
)

// This file implements Markovian bisimulation equivalence (ordinary
// lumpability of the underlying CTMC): two states are equivalent iff for
// every action label and every equivalence class, the cumulative
// exponential rate of moving under that label into that class is the
// same. Immediate transitions are compared by priority and cumulative
// weight. The quotient (lumped) chain is exact: solving it yields the
// same reward values as the original for class-constant rewards.

// markovKey aggregates the quantitative signature of a state's moves
// toward one (label, block) pair.
type markovKey struct {
	label int32
	block int
	prio  int // -1 for exponential entries
}

// MarkovianPartition computes the ordinary-lumpability partition of a
// rated LTS: states in the same block have identical cumulative rates
// (per label and target block) and identical immediate branching.
// Passive and untimed transitions participate with their weights, so the
// partition is also sound for functional models (where it coincides with
// strong bisimulation refined by multiplicities).
func MarkovianPartition(l *lts.LTS) []int {
	n := l.NumStates
	cur := make([]int, n)
	numBlocks := 1
	for {
		sigs := make(map[string]int, numBlocks*2)
		next := make([]int, n)
		var sb strings.Builder
		for s := 0; s < n; s++ {
			sb.Reset()
			sb.WriteString(strconv.Itoa(cur[s]))
			acc := make(map[markovKey]float64, 4)
			sp := l.Out(s)
			for k := 0; k < sp.Len(); k++ {
				key := markovKey{label: sp.Label[k], block: cur[sp.Dst[k]]}
				r := sp.Rate[k]
				switch r.Kind {
				case rates.Exp:
					key.prio = -1
					acc[key] += r.Lambda
				case rates.Immediate:
					key.prio = r.Priority
					acc[key] += r.Weight
				case rates.Passive:
					key.prio = -2
					acc[key] += r.Weight
				default: // Untimed
					key.prio = -3
					acc[key]++
				}
			}
			keys := make([]markovKey, 0, len(acc))
			for k := range acc {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool {
				a, b := keys[i], keys[j]
				if a.label != b.label {
					return a.label < b.label
				}
				if a.block != b.block {
					return a.block < b.block
				}
				return a.prio < b.prio
			})
			for _, k := range keys {
				fmt.Fprintf(&sb, "|%d:%d:%d:%.12g", k.label, k.block, k.prio, acc[k])
			}
			key := sb.String()
			id, ok := sigs[key]
			if !ok {
				id = len(sigs)
				sigs[key] = id
			}
			next[s] = id
		}
		if len(sigs) == numBlocks {
			return next
		}
		numBlocks = len(sigs)
		cur = next
	}
}

// MarkovianEquivalent reports whether the initial states of two rated
// LTSs are Markovian bisimilar (labels matched by name).
func MarkovianEquivalent(l1, l2 *lts.LTS) bool {
	u, init1, init2 := union(l1, l2)
	blocks := MarkovianPartition(u)
	return blocks[init1] == blocks[init2]
}

// Lump returns the quotient of a rated LTS by its Markovian-bisimulation
// partition: one state per block, with exponential rates and immediate
// weights accumulated per (label, target block). The lumped chain has the
// same steady-state measures as the original for any reward that is
// constant on blocks — and every ENABLED-style predicate recorded in the
// LTS is constant on blocks only if the predicate distinguishes states;
// predicates are therefore re-evaluated from any member (they agree on
// blocks produced from predicate-consistent generation).
func Lump(l *lts.LTS) *lts.LTS {
	blocks := MarkovianPartition(l)
	numBlocks := 0
	for _, b := range blocks {
		if b+1 > numBlocks {
			numBlocks = b + 1
		}
	}
	// The quotient shares the pipeline symbol table, so label indices are
	// copied verbatim — no per-edge name lookups.
	out := lts.NewShared(numBlocks, l.Symbols())
	out.Initial = blocks[l.Initial]

	// Representative member per block.
	rep := make([]int, numBlocks)
	for i := range rep {
		rep[i] = -1
	}
	for s, b := range blocks {
		if rep[b] < 0 || s < rep[b] {
			rep[b] = s
		}
	}

	type edge struct {
		label int
		dst   int
		prio  int
	}
	emitSorted := func(b int, acc map[edge]float64, mk func(e edge, v float64) rates.Rate) {
		keys := make([]edge, 0, len(acc))
		for e := range acc {
			keys = append(keys, e)
		}
		sort.Slice(keys, func(i, j int) bool {
			a, c := keys[i], keys[j]
			if a.label != c.label {
				return a.label < c.label
			}
			if a.dst != c.dst {
				return a.dst < c.dst
			}
			return a.prio < c.prio
		})
		for _, e := range keys {
			out.AddTransition(b, e.dst, e.label, mk(e, acc[e]))
		}
	}
	for b := 0; b < numBlocks; b++ {
		s := rep[b]
		expAcc := make(map[edge]float64, 4)
		immAcc := make(map[edge]float64, 4)
		pasAcc := make(map[edge]float64, 4)
		untAcc := make(map[edge]float64, 4)
		sp := l.Out(s)
		for k := 0; k < sp.Len(); k++ {
			e := edge{label: int(sp.Label[k]), dst: blocks[sp.Dst[k]]}
			r := sp.Rate[k]
			switch r.Kind {
			case rates.Exp:
				expAcc[e] += r.Lambda
			case rates.Immediate:
				e.prio = r.Priority
				immAcc[e] += r.Weight
			case rates.Passive:
				pasAcc[e] += r.Weight
			default:
				untAcc[e] = 1
			}
		}
		// Emit each accumulator in sorted key order so tied (src, label,
		// dst) triples keep a canonical insertion order under the stable
		// CSR sort — map iteration order must never reach the LTS.
		emitSorted(b, expAcc, func(e edge, v float64) rates.Rate { return rates.ExpRate(v) })
		emitSorted(b, immAcc, func(e edge, v float64) rates.Rate { return rates.Inf(e.prio, v) })
		emitSorted(b, pasAcc, func(e edge, v float64) rates.Rate { return rates.PassiveWeight(v) })
		emitSorted(b, untAcc, func(e edge, v float64) rates.Rate { return rates.UntimedRate() })
	}

	// Carry predicates and descriptions over from representatives.
	if l.Preds != nil {
		out.PredNames = l.PredNames
		out.Preds = make([][]bool, len(l.Preds))
		for p := range l.Preds {
			col := make([]bool, numBlocks)
			for b := 0; b < numBlocks; b++ {
				col[b] = l.Preds[p][rep[b]]
			}
			out.Preds[p] = col
		}
	}
	if l.HasStateDescs() {
		out.SetStateDescFunc(func(b int) string { return l.StateDesc(rep[b]) })
	}
	return out
}
