package bisim

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/lts"
	"repro/internal/rates"
)

// This file implements Markovian bisimulation equivalence (ordinary
// lumpability of the underlying CTMC): two states are equivalent iff for
// every action label and every equivalence class, the cumulative
// exponential rate of moving under that label into that class is the
// same. Immediate transitions are compared by priority and cumulative
// weight. The quotient (lumped) chain is exact: solving it yields the
// same reward values as the original for class-constant rewards.

// markovKey aggregates the quantitative signature of a state's moves
// toward one (label, block) pair.
type markovKey struct {
	label int32
	block int
	prio  int // -1 for exponential entries
}

// MarkovianPartition computes the ordinary-lumpability partition of a
// rated LTS: states in the same block have identical cumulative rates
// (per label and target block) and identical immediate branching.
// Passive and untimed transitions participate with their weights, so the
// partition is also sound for functional models (where it coincides with
// strong bisimulation refined by multiplicities).
func MarkovianPartition(l *lts.LTS) []int {
	n := l.NumStates
	cur := make([]int, n)
	numBlocks := 1
	for {
		sigs := make(map[string]int, numBlocks*2)
		next := make([]int, n)
		var sb strings.Builder
		for s := 0; s < n; s++ {
			sb.Reset()
			sb.WriteString(strconv.Itoa(cur[s]))
			acc := make(map[markovKey]float64, 4)
			for _, t := range l.Out(s) {
				key := markovKey{label: int32(t.Label), block: cur[t.Dst]}
				switch t.Rate.Kind {
				case rates.Exp:
					key.prio = -1
					acc[key] += t.Rate.Lambda
				case rates.Immediate:
					key.prio = t.Rate.Priority
					acc[key] += t.Rate.Weight
				case rates.Passive:
					key.prio = -2
					acc[key] += t.Rate.Weight
				default: // Untimed
					key.prio = -3
					acc[key]++
				}
			}
			keys := make([]markovKey, 0, len(acc))
			for k := range acc {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool {
				a, b := keys[i], keys[j]
				if a.label != b.label {
					return a.label < b.label
				}
				if a.block != b.block {
					return a.block < b.block
				}
				return a.prio < b.prio
			})
			for _, k := range keys {
				fmt.Fprintf(&sb, "|%d:%d:%d:%.12g", k.label, k.block, k.prio, acc[k])
			}
			key := sb.String()
			id, ok := sigs[key]
			if !ok {
				id = len(sigs)
				sigs[key] = id
			}
			next[s] = id
		}
		if len(sigs) == numBlocks {
			return next
		}
		numBlocks = len(sigs)
		cur = next
	}
}

// MarkovianEquivalent reports whether the initial states of two rated
// LTSs are Markovian bisimilar (labels matched by name).
func MarkovianEquivalent(l1, l2 *lts.LTS) bool {
	u, init1, init2 := union(l1, l2)
	blocks := MarkovianPartition(u)
	return blocks[init1] == blocks[init2]
}

// Lump returns the quotient of a rated LTS by its Markovian-bisimulation
// partition: one state per block, with exponential rates and immediate
// weights accumulated per (label, target block). The lumped chain has the
// same steady-state measures as the original for any reward that is
// constant on blocks — and every ENABLED-style predicate recorded in the
// LTS is constant on blocks only if the predicate distinguishes states;
// predicates are therefore re-evaluated from any member (they agree on
// blocks produced from predicate-consistent generation).
func Lump(l *lts.LTS) *lts.LTS {
	blocks := MarkovianPartition(l)
	numBlocks := 0
	for _, b := range blocks {
		if b+1 > numBlocks {
			numBlocks = b + 1
		}
	}
	out := lts.New(numBlocks)
	out.Initial = blocks[l.Initial]

	// Representative member per block.
	rep := make([]int, numBlocks)
	for i := range rep {
		rep[i] = -1
	}
	for s, b := range blocks {
		if rep[b] < 0 || s < rep[b] {
			rep[b] = s
		}
	}

	type edge struct {
		label int
		dst   int
		prio  int
	}
	for b := 0; b < numBlocks; b++ {
		s := rep[b]
		expAcc := make(map[edge]float64, 4)
		immAcc := make(map[edge]float64, 4)
		pasAcc := make(map[edge]float64, 4)
		untAcc := make(map[edge]bool, 4)
		for _, t := range l.Out(s) {
			li := lts.TauIndex
			if t.Label != lts.TauIndex {
				li = out.LabelIndex(l.Labels[t.Label])
			}
			e := edge{label: li, dst: blocks[t.Dst]}
			switch t.Rate.Kind {
			case rates.Exp:
				expAcc[e] += t.Rate.Lambda
			case rates.Immediate:
				e.prio = t.Rate.Priority
				immAcc[e] += t.Rate.Weight
			case rates.Passive:
				pasAcc[e] += t.Rate.Weight
			default:
				untAcc[e] = true
			}
		}
		for e, lam := range expAcc {
			out.AddTransition(b, e.dst, e.label, rates.ExpRate(lam))
		}
		for e, w := range immAcc {
			out.AddTransition(b, e.dst, e.label, rates.Inf(e.prio, w))
		}
		for e, w := range pasAcc {
			out.AddTransition(b, e.dst, e.label, rates.PassiveWeight(w))
		}
		for e := range untAcc {
			out.AddTransition(b, e.dst, e.label, rates.UntimedRate())
		}
	}

	// Carry predicates and descriptions over from representatives.
	if l.Preds != nil {
		out.PredNames = l.PredNames
		out.Preds = make([][]bool, len(l.Preds))
		for p := range l.Preds {
			col := make([]bool, numBlocks)
			for b := 0; b < numBlocks; b++ {
				col[b] = l.Preds[p][rep[b]]
			}
			out.Preds[p] = col
		}
	}
	if l.StateDescs != nil {
		out.StateDescs = make([]string, numBlocks)
		for b := 0; b < numBlocks; b++ {
			out.StateDescs[b] = l.StateDescs[rep[b]]
		}
	}
	return out
}
