package bisim

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// RatePartition computes the ordinary-lumpability partition of a bare
// weighted digraph given as flat edge arrays: n states, edge e goes
// from[e] -> to[e] with weight[e] > 0. It is MarkovianPartition stripped
// to a single implicit label — two states land in the same block iff
// their cumulative weights into every block agree — which is what the
// multilevel solver needs to coarsen a CTMC component whose edges are
// already flattened into the solve plan's CSR skeleton.
//
// Determinism contract: the result is a pure function of (n, from, to,
// weight) up to edge reordering (weights toward one block accumulate in
// a map and are compared through a canonical sorted signature), and
// block ids are numbered by first occurrence — block b's least member
// precedes block b+1's least member — so callers can merge blocks "in
// block order" without any further tie-breaking.
func RatePartition(n int, from, to []int32, weight []float64) []int {
	// Outgoing adjacency in CSR form so each refinement pass walks the
	// edges once, grouped by source state.
	outStart := make([]int32, n+1)
	for _, f := range from {
		outStart[f+1]++
	}
	for s := 0; s < n; s++ {
		outStart[s+1] += outStart[s]
	}
	outTo := make([]int32, len(from))
	outW := make([]float64, len(from))
	fill := make([]int32, n)
	copy(fill, outStart[:n])
	for e, f := range from {
		outTo[fill[f]] = to[e]
		outW[fill[f]] = weight[e]
		fill[f]++
	}

	cur := make([]int, n)
	numBlocks := 1
	for {
		sigs := make(map[string]int, numBlocks*2)
		next := make([]int, n)
		var sb strings.Builder
		for s := 0; s < n; s++ {
			sb.Reset()
			sb.WriteString(strconv.Itoa(cur[s]))
			acc := make(map[int]float64, 4)
			for k := outStart[s]; k < outStart[s+1]; k++ {
				acc[cur[outTo[k]]] += outW[k]
			}
			blocks := make([]int, 0, len(acc))
			for b := range acc {
				blocks = append(blocks, b)
			}
			sort.Ints(blocks)
			for _, b := range blocks {
				fmt.Fprintf(&sb, "|%d:%.12g", b, acc[b])
			}
			key := sb.String()
			id, ok := sigs[key]
			if !ok {
				id = len(sigs)
				sigs[key] = id
			}
			next[s] = id
		}
		if len(sigs) == numBlocks {
			return next
		}
		numBlocks = len(sigs)
		cur = next
	}
}
