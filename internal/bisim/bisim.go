// Package bisim implements strong and weak (observational) bisimulation
// equivalence checking over explicit labelled transition systems, with
// generation of distinguishing Hennessy–Milner formulas when two systems
// are not equivalent.
//
// Weak bisimilarity is decided as strong bisimilarity of the saturated
// systems (tau*·a·tau* weak moves, reflexive tau* moves), following
// Milner. The partition is computed by signature refinement: states are
// repeatedly split by the multiset of (label, target block) pairs they can
// weakly reach, with the previous block included in the signature so that
// each round refines the last. The refinement history supports
// Cleaveland-style construction of a minimal-depth distinguishing formula.
//
// The saturated successor structure is stored in grouped CSR form — per
// node, label-sorted groups of deduplicated successor sets over one shared
// destination arena — and indexes the pipeline's interned labels directly,
// so refinement rounds run without per-state maps.
package bisim

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/hml"
	"repro/internal/lts"
	"repro/internal/rates"
	"repro/internal/statespace"
)

// Relation selects the equivalence to check.
type Relation int

// Supported equivalences.
const (
	// Strong requires matching single transitions.
	Strong Relation = iota + 1
	// Weak abstracts from tau moves (observational equivalence).
	Weak
)

// String returns the relation name.
func (r Relation) String() string {
	switch r {
	case Strong:
		return "strong"
	case Weak:
		return "weak"
	default:
		return "unknown"
	}
}

// sat is the (possibly saturated) successor structure the refinement
// operates on: for each node, label-sorted groups of sorted, deduplicated
// successor sets. Label indices refer to the shared symbol table. For
// Weak, the tau group holds the reflexive-transitive closure.
//
// For the weak relation the structure is built over the *condensation* of
// the tau graph: mutually tau-reachable states are weakly bisimilar, so
// each tau strongly connected component becomes a single node. stateMap
// maps original LTS states to sat nodes (the identity for Strong).
type sat struct {
	n        int
	syms     *statespace.Symbols
	stateMap []int

	// Grouped CSR: node st owns groups grpStart[st]..grpStart[st+1]; group
	// g carries label grpLabel[g] (ascending within a node) and successor
	// set dsts[dstOff[g]:dstOff[g+1]] (sorted, deduplicated).
	grpStart []int32
	grpLabel []int32
	dstOff   []int32
	dsts     []int32
}

// groups returns the group index range of node st.
func (s *sat) groups(st int) (lo, hi int32) { return s.grpStart[st], s.grpStart[st+1] }

// groupDsts returns the successor set of group g.
func (s *sat) groupDsts(g int32) []int32 { return s.dsts[s.dstOff[g]:s.dstOff[g+1]] }

// find returns the successor set of (st, label), or nil.
func (s *sat) find(st int, label int32) []int32 {
	lo, hi := s.grpStart[st], s.grpStart[st+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if s.grpLabel[mid] < label {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < s.grpStart[st+1] && s.grpLabel[lo] == label {
		return s.groupDsts(lo)
	}
	return nil
}

// satBuilder accumulates the grouped CSR arrays of a sat.
type satBuilder struct {
	s *sat
}

func newSatBuilder(n int, syms *statespace.Symbols) *satBuilder {
	return &satBuilder{s: &sat{
		n:        n,
		syms:     syms,
		grpStart: make([]int32, 1, n+1),
		dstOff:   make([]int32, 1, n+1),
	}}
}

// group appends one (label, dsts) group to the node currently being built;
// dsts must already be sorted and deduplicated.
func (b *satBuilder) group(label int32, dsts []int32) {
	b.s.grpLabel = append(b.s.grpLabel, label)
	b.s.dsts = append(b.s.dsts, dsts...)
	b.s.dstOff = append(b.s.dstOff, int32(len(b.s.dsts)))
}

// endNode closes the current node's group list.
func (b *satBuilder) endNode() {
	b.s.grpStart = append(b.s.grpStart, int32(len(b.s.grpLabel)))
}

// pair is a (label, dst) scratch entry used while grouping a node's edges.
type pair struct{ label, dst int32 }

func sortPairs(ps []pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].label != ps[j].label {
			return ps[i].label < ps[j].label
		}
		return ps[i].dst < ps[j].dst
	})
}

// tauSCCs computes the strongly connected components of the tau-only
// graph (iterative Tarjan) and returns the component id of every state
// plus the number of components. Component ids are assigned in reverse
// topological order of the condensation (sources last).
func tauSCCs(l *lts.LTS) (comp []int32, numComp int) {
	n := l.NumStates
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	comp = make([]int32, n)
	for i := range index {
		index[i] = -1
		comp[i] = -1
	}
	var stack []int32
	counter := int32(0)
	type frame struct{ v, ei int32 }
	for start := 0; start < n; start++ {
		if index[start] >= 0 {
			continue
		}
		frames := []frame{{v: int32(start)}}
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, int32(start))
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			out := l.Out(int(f.v))
			advanced := false
			for int(f.ei) < out.Len() {
				k := f.ei
				f.ei++
				if out.Label[k] != lts.TauIndex {
					continue
				}
				w := out.Dst[k]
				if index[w] < 0 {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
			}
			if advanced {
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = int32(numComp)
					if w == v {
						break
					}
				}
				numComp++
			}
		}
	}
	return comp, numComp
}

// saturate builds the successor structure for the chosen relation.
func saturate(l *lts.LTS, rel Relation) *sat {
	if rel == Strong {
		n := l.NumStates
		b := newSatBuilder(n, l.Symbols())
		b.s.stateMap = make([]int, n)
		var buf []pair
		for st := 0; st < n; st++ {
			b.s.stateMap[st] = st
			sp := l.Out(st)
			buf = buf[:0]
			for k := 0; k < sp.Len(); k++ {
				buf = append(buf, pair{label: sp.Label[k], dst: sp.Dst[k]})
			}
			sortPairs(buf)
			emitGroups(b, buf)
			b.endNode()
		}
		return b.s
	}

	// Weak: collapse tau-SCCs first — mutually tau-reachable states are
	// weakly bisimilar, and condensation makes the tau graph acyclic,
	// which keeps the saturated structure tractable.
	comp, nc := tauSCCs(l)

	// Condensed edge list, sorted and deduplicated.
	type cedge struct{ src, label, dst int32 }
	var edges []cedge
	for st := 0; st < l.NumStates; st++ {
		sp := l.Out(st)
		cs := comp[st]
		for k := 0; k < sp.Len(); k++ {
			cd := comp[sp.Dst[k]]
			if sp.Label[k] == lts.TauIndex && cs == cd {
				continue
			}
			edges = append(edges, cedge{src: cs, label: sp.Label[k], dst: cd})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.src != b.src {
			return a.src < b.src
		}
		if a.label != b.label {
			return a.label < b.label
		}
		return a.dst < b.dst
	})
	edges = dedupEdges(edges)
	// Row index over the condensed edges.
	rowOff := make([]int32, nc+1)
	for _, e := range edges {
		rowOff[e.src+1]++
	}
	for c := 1; c <= nc; c++ {
		rowOff[c] += rowOff[c-1]
	}

	// Reflexive-transitive tau closure over the condensation, stored in a
	// single slab. Tarjan assigns component ids in reverse topological
	// order, so successors of c always have ids < c: a single ascending
	// sweep suffices, and the slab only ever references finished entries.
	cloOff := make([]int32, nc+1)
	clo := make([]int32, 0, nc)
	mark := make([]int32, nc)
	for i := range mark {
		mark[i] = -1
	}
	for c := int32(0); c < int32(nc); c++ {
		start := len(clo)
		clo = append(clo, c)
		mark[c] = c
		for i := rowOff[c]; i < rowOff[c+1]; i++ {
			e := edges[i]
			if e.label != lts.TauIndex {
				continue
			}
			for _, x := range clo[cloOff[e.dst]:cloOff[e.dst+1]] {
				if mark[x] != c {
					mark[x] = c
					clo = append(clo, x)
				}
			}
		}
		seg := clo[start:]
		sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
		cloOff[c+1] = int32(len(clo))
	}
	closure := func(c int32) []int32 { return clo[cloOff[c]:cloOff[c+1]] }

	b := newSatBuilder(nc, l.Symbols())
	b.s.stateMap = make([]int, l.NumStates)
	for st := range b.s.stateMap {
		b.s.stateMap[st] = int(comp[st])
	}

	// Saturation sweep: succ(c, a) = ∪ closure(d) over visible condensed
	// edges (u, a, d) with u in closure(c); the tau group of c is its
	// closure. Group sets are deduplicated with generation stamps.
	gen := int32(-1)
	stamp := make([]int32, nc)
	for i := range stamp {
		stamp[i] = -1
	}
	var buf []pair
	var setBuf []int32
	for c := int32(0); c < int32(nc); c++ {
		b.group(lts.TauIndex, closure(c))
		buf = buf[:0]
		for _, u := range closure(c) {
			for i := rowOff[u]; i < rowOff[u+1]; i++ {
				e := edges[i]
				if e.label == lts.TauIndex {
					continue
				}
				buf = append(buf, pair{label: e.label, dst: e.dst})
			}
		}
		sortPairs(buf)
		for i := 0; i < len(buf); {
			j := i
			gen++
			setBuf = setBuf[:0]
			for j < len(buf) && buf[j].label == buf[i].label {
				for _, v := range closure(buf[j].dst) {
					if stamp[v] != gen {
						stamp[v] = gen
						setBuf = append(setBuf, v)
					}
				}
				j++
			}
			sort.Slice(setBuf, func(x, y int) bool { return setBuf[x] < setBuf[y] })
			b.group(buf[i].label, setBuf)
			i = j
		}
		b.endNode()
	}
	return b.s
}

// emitGroups converts a sorted (label, dst) pair list into deduplicated
// groups on the builder.
func emitGroups(b *satBuilder, buf []pair) {
	for i := 0; i < len(buf); {
		j := i
		last := int32(-1)
		for j < len(buf) && buf[j].label == buf[i].label {
			if buf[j].dst != last {
				b.s.dsts = append(b.s.dsts, buf[j].dst)
				last = buf[j].dst
			}
			j++
		}
		b.s.grpLabel = append(b.s.grpLabel, buf[i].label)
		b.s.dstOff = append(b.s.dstOff, int32(len(b.s.dsts)))
		i = j
	}
}

// dedupEdges removes duplicates from a sorted condensed edge list.
func dedupEdges[E comparable](edges []E) []E {
	out := edges[:0]
	var last E
	for i, e := range edges {
		if i == 0 || e != last {
			out = append(out, e)
			last = e
		}
	}
	return out
}

// refineResult carries the partition and its refinement history.
type refineResult struct {
	s *sat
	// history[k][state] is the block of state after k refinement rounds;
	// history[0] is the initial one-block partition.
	history [][]int
}

// blocks returns the final partition.
func (r *refineResult) blocks() []int { return r.history[len(r.history)-1] }

// refine runs signature refinement to a fixed point. The grouped CSR
// structure is label-sorted per node, so a round is a single sweep over
// the groups; the block-dedup stamps and the two partition buffers are
// allocated once and reused across rounds — only the signature strings
// and the history snapshots survive a round.
func refine(s *sat) *refineResult {
	n := s.n
	cur := make([]int, n) // all states in block 0
	next := make([]int, n)
	res := &refineResult{s: s}
	res.history = append(res.history, append([]int(nil), cur...))

	// mark stamps the blocks already collected for the current
	// (state, label) pair — a generation counter instead of a per-pair
	// map (block ids are < n, so a flat slice suffices).
	mark := make([]int, n)
	gen := 0
	blockBuf := make([]int, 0, 16)
	sigs := make(map[string]int, n)
	var sb strings.Builder

	numBlocks := 1
	for {
		clear(sigs)
		for st := 0; st < n; st++ {
			sb.Reset()
			// Previous block first, so each round refines the last.
			sb.WriteString(strconv.Itoa(cur[st]))
			glo, ghi := s.groups(st)
			for g := glo; g < ghi; g++ {
				gen++
				blockBuf = blockBuf[:0]
				for _, d := range s.groupDsts(g) {
					b := cur[d]
					if mark[b] != gen {
						mark[b] = gen
						blockBuf = append(blockBuf, b)
					}
				}
				sort.Ints(blockBuf)
				sb.WriteByte('|')
				sb.WriteString(strconv.Itoa(int(s.grpLabel[g])))
				sb.WriteByte(':')
				for _, b := range blockBuf {
					sb.WriteString(strconv.Itoa(b))
					sb.WriteByte(',')
				}
			}
			key := sb.String()
			id, ok := sigs[key]
			if !ok {
				id = len(sigs)
				sigs[key] = id
			}
			next[st] = id
		}
		res.history = append(res.history, append([]int(nil), next...))
		if len(sigs) == numBlocks {
			return res
		}
		numBlocks = len(sigs)
		cur, next = next, cur
	}
}

// Partition computes the bisimulation partition of a single LTS: the block
// identifier of each state. Two states are equivalent iff they share a
// block.
func Partition(l *lts.LTS, rel Relation) []int {
	s := saturate(l, rel)
	blocks := refine(s).blocks()
	out := make([]int, l.NumStates)
	for st := range out {
		out[st] = blocks[s.stateMap[st]]
	}
	return out
}

// Equivalent checks whether the initial states of two LTSs are bisimilar
// under the chosen relation. Labels are matched by name. When the systems
// are not equivalent, a distinguishing formula is returned: it holds in
// the initial state of l1 and fails in the initial state of l2.
func Equivalent(l1, l2 *lts.LTS, rel Relation) (bool, hml.Formula) {
	u, init1, init2 := union(l1, l2)
	s := saturate(u, rel)
	res := refine(s)
	blocks := res.blocks()
	n1, n2 := s.stateMap[init1], s.stateMap[init2]
	if blocks[n1] == blocks[n2] {
		return true, nil
	}
	g := &formulaGen{res: res, rel: rel}
	f := g.dist(n1, n2)
	return false, f
}

// union builds the disjoint union of two LTSs. Systems from the same
// pipeline share a symbol table, in which case label indices are copied
// verbatim; otherwise labels are matched by name into a fresh table.
func union(l1, l2 *lts.LTS) (u *lts.LTS, init1, init2 int) {
	shared := l1.Symbols() == l2.Symbols()
	if shared {
		u = lts.NewShared(l1.NumStates+l2.NumStates, l1.Symbols())
	} else {
		u = lts.New(l1.NumStates + l2.NumStates)
	}
	u.Initial = l1.Initial
	copyInto := func(l *lts.LTS, off int) {
		l.Edges(func(src, dst, label int, r rates.Rate) {
			li := label
			if !shared && label != lts.TauIndex {
				li = u.LabelIndex(l.LabelName(label))
			}
			u.AddTransition(src+off, dst+off, li, r)
		})
	}
	copyInto(l1, 0)
	copyInto(l2, l1.NumStates)
	return u, l1.Initial, l2.Initial + l1.NumStates
}
