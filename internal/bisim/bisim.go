// Package bisim implements strong and weak (observational) bisimulation
// equivalence checking over explicit labelled transition systems, with
// generation of distinguishing Hennessy–Milner formulas when two systems
// are not equivalent.
//
// Weak bisimilarity is decided as strong bisimilarity of the saturated
// systems (tau*·a·tau* weak moves, reflexive tau* moves), following
// Milner. The partition is computed by signature refinement: states are
// repeatedly split by the multiset of (label, target block) pairs they can
// weakly reach, with the previous block included in the signature so that
// each round refines the last. The refinement history supports
// Cleaveland-style construction of a minimal-depth distinguishing formula.
package bisim

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/hml"
	"repro/internal/lts"
)

// Relation selects the equivalence to check.
type Relation int

// Supported equivalences.
const (
	// Strong requires matching single transitions.
	Strong Relation = iota + 1
	// Weak abstracts from tau moves (observational equivalence).
	Weak
)

// String returns the relation name.
func (r Relation) String() string {
	switch r {
	case Strong:
		return "strong"
	case Weak:
		return "weak"
	default:
		return "unknown"
	}
}

// sat is the (possibly saturated) successor structure the refinement
// operates on: for each state, a map from label index to the sorted set of
// successor states. Label indices refer to the labels table. For Weak, the
// tau entry holds the reflexive-transitive closure.
//
// For the weak relation the structure is built over the *condensation* of
// the tau graph: mutually tau-reachable states are weakly bisimilar, so
// each tau strongly connected component becomes a single node. stateMap
// maps original LTS states to sat nodes (the identity for Strong).
type sat struct {
	n        int
	labels   []string
	succ     []map[int32][]int32
	stateMap []int
}

// tauSCCs computes the strongly connected components of the tau-only
// graph (iterative Tarjan) and returns the component id of every state
// plus the number of components. Component ids are assigned in reverse
// topological order of the condensation (sources last).
func tauSCCs(l *lts.LTS) (comp []int, numComp int) {
	n := l.NumStates
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp = make([]int, n)
	for i := range index {
		index[i] = -1
		comp[i] = -1
	}
	var stack []int
	counter := 0
	type frame struct{ v, ei int }
	for start := 0; start < n; start++ {
		if index[start] >= 0 {
			continue
		}
		frames := []frame{{v: start}}
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			out := l.Out(f.v)
			advanced := false
			for f.ei < len(out) {
				t := out[f.ei]
				f.ei++
				if t.Label != lts.TauIndex {
					continue
				}
				w := t.Dst
				if index[w] < 0 {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
			}
			if advanced {
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = numComp
					if w == v {
						break
					}
				}
				numComp++
			}
		}
	}
	return comp, numComp
}

// sortDedup sorts a successor set in place and removes duplicates.
func sortDedup(dsts []int32) []int32 {
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	out := dsts[:0]
	last := int32(-1)
	for _, d := range dsts {
		if d != last {
			out = append(out, d)
			last = d
		}
	}
	return out
}

// saturate builds the successor structure for the chosen relation.
func saturate(l *lts.LTS, rel Relation) *sat {
	if rel == Strong {
		n := l.NumStates
		s := &sat{n: n, labels: append([]string(nil), l.Labels...)}
		s.succ = make([]map[int32][]int32, n)
		s.stateMap = make([]int, n)
		for i := range s.succ {
			s.succ[i] = make(map[int32][]int32)
			s.stateMap[i] = i
		}
		for _, t := range l.Transitions {
			s.succ[t.Src][int32(t.Label)] = append(s.succ[t.Src][int32(t.Label)], int32(t.Dst))
		}
		for st := 0; st < n; st++ {
			for label, dsts := range s.succ[st] {
				s.succ[st][label] = sortDedup(dsts)
			}
		}
		return s
	}

	// Weak: collapse tau-SCCs first — mutually tau-reachable states are
	// weakly bisimilar, and condensation makes the tau graph acyclic,
	// which keeps the saturated structure tractable.
	comp, nc := tauSCCs(l)
	// Condensed edges.
	type key struct {
		src   int32
		label int32
	}
	edges := make(map[key]map[int32]bool, nc*2)
	add := func(src, label, dst int32) {
		k := key{src: src, label: label}
		m := edges[k]
		if m == nil {
			m = make(map[int32]bool, 2)
			edges[k] = m
		}
		m[dst] = true
	}
	for _, t := range l.Transitions {
		cs, cd := int32(comp[t.Src]), int32(comp[t.Dst])
		if t.Label == lts.TauIndex {
			if cs != cd {
				add(cs, lts.TauIndex, cd)
			}
			continue
		}
		add(cs, int32(t.Label), cd)
	}

	// Reflexive-transitive tau closure over the condensation. Tarjan
	// assigns component ids in reverse topological order, so successors
	// of c always have ids < c: a single ascending sweep suffices.
	tauAdj := make([][]int32, nc)
	for k, dsts := range edges {
		if k.label != lts.TauIndex {
			continue
		}
		for d := range dsts {
			tauAdj[k.src] = append(tauAdj[k.src], d)
		}
	}
	closure := make([][]int32, nc)
	mark := make([]int, nc)
	for i := range mark {
		mark[i] = -1
	}
	for c := 0; c < nc; c++ {
		set := []int32{int32(c)}
		mark[c] = c
		for _, d := range tauAdj[c] {
			for _, x := range closure[d] {
				if mark[x] != c {
					mark[x] = c
					set = append(set, x)
				}
			}
		}
		closure[c] = sortDedup(set)
	}

	s := &sat{n: nc, labels: append([]string(nil), l.Labels...)}
	s.succ = make([]map[int32][]int32, nc)
	for i := range s.succ {
		s.succ[i] = make(map[int32][]int32)
	}
	s.stateMap = make([]int, l.NumStates)
	for st := range s.stateMap {
		s.stateMap[st] = comp[st]
	}
	// Group visible condensed edges by source for the saturation sweep.
	visOut := make([]map[int32][]int32, nc)
	for k, dsts := range edges {
		if k.label == lts.TauIndex {
			continue
		}
		if visOut[k.src] == nil {
			visOut[k.src] = make(map[int32][]int32, 2)
		}
		for d := range dsts {
			visOut[k.src][k.label] = append(visOut[k.src][k.label], d)
		}
	}
	for c := 0; c < nc; c++ {
		s.succ[c][lts.TauIndex] = closure[c]
		acc := make(map[int32]map[int32]bool, 2)
		for _, u := range closure[c] {
			for label, dsts := range visOut[u] {
				m := acc[label]
				if m == nil {
					m = make(map[int32]bool, 4)
					acc[label] = m
				}
				for _, d := range dsts {
					for _, v := range closure[d] {
						m[v] = true
					}
				}
			}
		}
		for label, set := range acc {
			out := make([]int32, 0, len(set))
			for v := range set {
				out = append(out, v)
			}
			s.succ[c][label] = sortDedup(out)
		}
	}
	return s
}

// refineResult carries the partition and its refinement history.
type refineResult struct {
	s *sat
	// history[k][state] is the block of state after k refinement rounds;
	// history[0] is the initial one-block partition.
	history [][]int
}

// blocks returns the final partition.
func (r *refineResult) blocks() []int { return r.history[len(r.history)-1] }

// refine runs signature refinement to a fixed point. The per-state label
// lists, the block-dedup stamps, and the two partition buffers are
// allocated once and reused across rounds: only the signature strings and
// the history snapshots survive a round.
func refine(s *sat) *refineResult {
	n := s.n
	cur := make([]int, n) // all states in block 0
	next := make([]int, n)
	res := &refineResult{s: s}
	res.history = append(res.history, append([]int(nil), cur...))

	// Per-state sorted label lists, computed once: the successor structure
	// never changes between rounds, only the partition does.
	stateLabels := make([][]int32, n)
	for st := 0; st < n; st++ {
		labels := make([]int32, 0, len(s.succ[st]))
		for label := range s.succ[st] {
			labels = append(labels, label)
		}
		sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
		stateLabels[st] = labels
	}

	// mark stamps the blocks already collected for the current
	// (state, label) pair — a generation counter instead of a per-pair
	// map (block ids are < n, so a flat slice suffices).
	mark := make([]int, n)
	gen := 0
	blockBuf := make([]int, 0, 16)
	sigs := make(map[string]int, n)
	var sb strings.Builder

	numBlocks := 1
	for {
		clear(sigs)
		for st := 0; st < n; st++ {
			sb.Reset()
			// Previous block first, so each round refines the last.
			sb.WriteString(strconv.Itoa(cur[st]))
			for _, label := range stateLabels[st] {
				gen++
				blockBuf = blockBuf[:0]
				for _, d := range s.succ[st][label] {
					b := cur[d]
					if mark[b] != gen {
						mark[b] = gen
						blockBuf = append(blockBuf, b)
					}
				}
				sort.Ints(blockBuf)
				sb.WriteByte('|')
				sb.WriteString(strconv.Itoa(int(label)))
				sb.WriteByte(':')
				for _, b := range blockBuf {
					sb.WriteString(strconv.Itoa(b))
					sb.WriteByte(',')
				}
			}
			key := sb.String()
			id, ok := sigs[key]
			if !ok {
				id = len(sigs)
				sigs[key] = id
			}
			next[st] = id
		}
		res.history = append(res.history, append([]int(nil), next...))
		if len(sigs) == numBlocks {
			return res
		}
		numBlocks = len(sigs)
		cur, next = next, cur
	}
}

// Partition computes the bisimulation partition of a single LTS: the block
// identifier of each state. Two states are equivalent iff they share a
// block.
func Partition(l *lts.LTS, rel Relation) []int {
	s := saturate(l, rel)
	blocks := refine(s).blocks()
	out := make([]int, l.NumStates)
	for st := range out {
		out[st] = blocks[s.stateMap[st]]
	}
	return out
}

// Equivalent checks whether the initial states of two LTSs are bisimilar
// under the chosen relation. Labels are matched by name. When the systems
// are not equivalent, a distinguishing formula is returned: it holds in
// the initial state of l1 and fails in the initial state of l2.
func Equivalent(l1, l2 *lts.LTS, rel Relation) (bool, hml.Formula) {
	u, init1, init2 := union(l1, l2)
	s := saturate(u, rel)
	res := refine(s)
	blocks := res.blocks()
	n1, n2 := s.stateMap[init1], s.stateMap[init2]
	if blocks[n1] == blocks[n2] {
		return true, nil
	}
	g := &formulaGen{res: res, rel: rel}
	f := g.dist(n1, n2)
	return false, f
}

// union builds the disjoint union of two LTSs with a shared label table.
func union(l1, l2 *lts.LTS) (u *lts.LTS, init1, init2 int) {
	u = lts.New(l1.NumStates + l2.NumStates)
	u.Initial = l1.Initial
	for _, t := range l1.Transitions {
		li := lts.TauIndex
		if t.Label != lts.TauIndex {
			li = u.LabelIndex(l1.Labels[t.Label])
		}
		u.AddTransition(t.Src, t.Dst, li, t.Rate)
	}
	off := l1.NumStates
	for _, t := range l2.Transitions {
		li := lts.TauIndex
		if t.Label != lts.TauIndex {
			li = u.LabelIndex(l2.Labels[t.Label])
		}
		u.AddTransition(t.Src+off, t.Dst+off, li, t.Rate)
	}
	return u, l1.Initial, l2.Initial + off
}
