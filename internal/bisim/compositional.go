package bisim

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/lts"
	"repro/internal/rates"
)

// This file extends the Markovian-lumping machinery for compositional
// minimization (lumping one component before composing it): the relation
// must stay a congruence for the Æmilia parallel composition, which is
// stricter than plain ordinary lumpability in three ways.
//
//   - The caller seeds an *initial partition* (states already known to be
//     distinguishable: different enabled-action signatures, different
//     locally-enabled measure predicates) and refinement only ever splits
//     those blocks.
//   - Passive transitions aggregate by weight *and by count*: an active
//     exponential partner synchronizes at full rate with each passive
//     alternative separately (rates.Combine ignores passive weights for
//     exponential actives), so two states offering one and two passive
//     copies of the same action toward the same block compose differently
//     even when the weights sum equally. Immediate actives multiply
//     weights, which the weight sum covers.
//   - Symbolic (slotted) exponential rates aggregate per slot and by
//     count: slotted edges cannot be merged into one coefficient-scaled
//     edge, so states are equivalent only when their slotted offers match
//     as multisets.

// compKey aggregates one state's moves toward a (label, block) pair for the
// composition-sound signature.
type compKey struct {
	label int32
	block int
	prio  int // -1 exponential, -2 passive, -3 untimed
	slot  int // rate slot for exponential entries, 0 otherwise
}

// compAcc is the quantitative aggregate of one compKey.
type compAcc struct {
	sum   float64 // λ-sum (exp), weight-sum (immediate, passive)
	count int     // multiplicity (passive, slotted exp, untimed)
}

// MarkovianPartitionFrom computes the coarsest refinement of an initial
// partition that is a Markovian bisimulation suitable for compositional
// minimization (see the file comment for how it is stricter than
// MarkovianPartition). initial[s] is the seed block of state s; the result
// assigns dense block identifiers ordered by each block's first member, so
// the numbering is a pure function of (l, initial).
func MarkovianPartitionFrom(l *lts.LTS, initial []int) []int {
	n := l.NumStates
	cur := normalizeBlocks(initial, n)
	numBlocks := 0
	for _, b := range cur {
		if b+1 > numBlocks {
			numBlocks = b + 1
		}
	}
	for {
		sigs := make(map[string]int, numBlocks*2)
		next := make([]int, n)
		var sb strings.Builder
		for s := 0; s < n; s++ {
			sb.Reset()
			sb.WriteString(strconv.Itoa(cur[s]))
			acc := make(map[compKey]compAcc, 4)
			sp := l.Out(s)
			for k := 0; k < sp.Len(); k++ {
				key := compKey{label: sp.Label[k], block: cur[sp.Dst[k]]}
				r := sp.Rate[k]
				var a compAcc
				switch r.Kind {
				case rates.Exp:
					key.prio = -1
					key.slot = r.Slot
					a.sum = r.Lambda
					if r.Slot > 0 {
						a.count = 1
					}
				case rates.Immediate:
					key.prio = r.Priority
					a.sum = r.Weight
				case rates.Passive:
					key.prio = -2
					a.sum = r.Weight
					a.count = 1
				default: // Untimed
					key.prio = -3
					a.count = 1
				}
				t := acc[key]
				t.sum += a.sum
				t.count += a.count
				acc[key] = t
			}
			keys := make([]compKey, 0, len(acc))
			for k := range acc {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool {
				a, b := keys[i], keys[j]
				if a.label != b.label {
					return a.label < b.label
				}
				if a.block != b.block {
					return a.block < b.block
				}
				if a.prio != b.prio {
					return a.prio < b.prio
				}
				return a.slot < b.slot
			})
			for _, k := range keys {
				a := acc[k]
				fmt.Fprintf(&sb, "|%d:%d:%d:%d:%.12g:%d", k.label, k.block, k.prio, k.slot, a.sum, a.count)
			}
			key := sb.String()
			id, ok := sigs[key]
			if !ok {
				id = len(sigs)
				sigs[key] = id
			}
			next[s] = id
		}
		if len(sigs) == numBlocks {
			return normalizeBlocks(next, n)
		}
		numBlocks = len(sigs)
		cur = next
	}
}

// normalizeBlocks renumbers a block assignment densely by first occurrence
// (block 0 contains state 0), making the identifiers a pure function of
// the partition rather than of map iteration order.
func normalizeBlocks(blocks []int, n int) []int {
	out := make([]int, n)
	remap := make(map[int]int, 16)
	for s := 0; s < n; s++ {
		id, ok := remap[blocks[s]]
		if !ok {
			id = len(remap)
			remap[blocks[s]] = id
		}
		out[s] = id
	}
	return out
}
