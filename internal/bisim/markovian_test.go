package bisim_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bisim"
	"repro/internal/ctmc"
	"repro/internal/lts"
	"repro/internal/rates"
)

// erlangPair builds two representations of an Erlang(2, 2λ)-ish structure:
// a chain with two distinguishable halves vs a symmetric one. Used for a
// positive lumping case: two parallel branches with equal rates lump into
// one.
func symmetricBranch() *lts.LTS {
	// 0 -a-> 1 -b-> 3, 0 -a-> 2 -b-> 3, each exp(1): states 1 and 2 lump.
	l := lts.New(4)
	l.Initial = 0
	a := l.LabelIndex("a")
	b := l.LabelIndex("b")
	l.AddTransition(0, 1, a, rates.ExpRate(1))
	l.AddTransition(0, 2, a, rates.ExpRate(1))
	l.AddTransition(1, 3, b, rates.ExpRate(2))
	l.AddTransition(2, 3, b, rates.ExpRate(2))
	l.AddTransition(3, 0, l.LabelIndex("c"), rates.ExpRate(3))
	return l
}

func TestMarkovianPartitionLumpsSymmetry(t *testing.T) {
	l := symmetricBranch()
	blocks := bisim.MarkovianPartition(l)
	if blocks[1] != blocks[2] {
		t.Errorf("states 1 and 2 should lump: %v", blocks)
	}
	if blocks[0] == blocks[1] || blocks[0] == blocks[3] {
		t.Errorf("distinct roles should not lump: %v", blocks)
	}
}

func TestMarkovianPartitionSeparatesRates(t *testing.T) {
	// Same structure but different rates must not lump.
	l := lts.New(4)
	l.Initial = 0
	a := l.LabelIndex("a")
	b := l.LabelIndex("b")
	l.AddTransition(0, 1, a, rates.ExpRate(1))
	l.AddTransition(0, 2, a, rates.ExpRate(1))
	l.AddTransition(1, 3, b, rates.ExpRate(2))
	l.AddTransition(2, 3, b, rates.ExpRate(5)) // differs
	blocks := bisim.MarkovianPartition(l)
	if blocks[1] == blocks[2] {
		t.Error("states with different rates must not lump")
	}
}

func TestMarkovianPartitionCumulativeRates(t *testing.T) {
	// A state with two exp(1) a-moves into a block equals a state with
	// one exp(2) a-move into the same block (ordinary lumpability).
	l := lts.New(4)
	l.Initial = 0
	a := l.LabelIndex("a")
	l.AddTransition(0, 2, a, rates.ExpRate(1))
	l.AddTransition(0, 3, a, rates.ExpRate(1))
	l.AddTransition(1, 2, a, rates.ExpRate(2))
	// 2 and 3 are absorbing and lump together.
	blocks := bisim.MarkovianPartition(l)
	if blocks[2] != blocks[3] {
		t.Fatalf("absorbing states should lump: %v", blocks)
	}
	if blocks[0] != blocks[1] {
		t.Errorf("cumulative-rate equality should lump 0 and 1: %v", blocks)
	}
}

func TestMarkovianEquivalent(t *testing.T) {
	if !bisim.MarkovianEquivalent(symmetricBranch(), symmetricBranch()) {
		t.Error("identical chains must be Markovian bisimilar")
	}
	l2 := symmetricBranch()
	l2.AddTransition(0, 3, l2.LabelIndex("d"), rates.ExpRate(1))
	if bisim.MarkovianEquivalent(symmetricBranch(), l2) {
		t.Error("extra move must break Markovian bisimilarity")
	}
}

func TestLumpPreservesSteadyState(t *testing.T) {
	l := symmetricBranch()
	lumped := bisim.Lump(l)
	if lumped.NumStates != 3 {
		t.Fatalf("lumped to %d states, want 3", lumped.NumStates)
	}
	orig, err := ctmc.Build(l)
	if err != nil {
		t.Fatal(err)
	}
	small, err := ctmc.Build(lumped)
	if err != nil {
		t.Fatal(err)
	}
	piO, err := orig.SteadyState(ctmc.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	piS, err := small.SteadyState(ctmc.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Throughput of every label must agree between original and quotient.
	for _, label := range []string{"a", "b", "c"} {
		to := orig.Throughput(piO, func(s string) bool { return s == label }, nil)
		ts := small.Throughput(piS, func(s string) bool { return s == label }, nil)
		if math.Abs(to-ts) > 1e-9 {
			t.Errorf("label %s: original throughput %v, lumped %v", label, to, ts)
		}
	}
}

func TestLumpHandlesImmediates(t *testing.T) {
	// Two vanishing states with the same immediate branching lump; the
	// lumped chain accumulates weights per target block.
	l := lts.New(6)
	l.Initial = 0
	go1 := l.LabelIndex("go")
	pick := l.LabelIndex("pick")
	back := l.LabelIndex("back")
	l.AddTransition(0, 1, go1, rates.ExpRate(1))
	l.AddTransition(0, 2, go1, rates.ExpRate(1))
	l.AddTransition(1, 3, pick, rates.Inf(1, 1))
	l.AddTransition(1, 4, pick, rates.Inf(1, 3))
	l.AddTransition(2, 3, pick, rates.Inf(1, 1))
	l.AddTransition(2, 4, pick, rates.Inf(1, 3))
	l.AddTransition(3, 0, back, rates.ExpRate(2))
	l.AddTransition(4, 0, back, rates.ExpRate(2))
	l.AddTransition(5, 0, back, rates.ExpRate(9)) // unreachable, distinct

	blocks := bisim.MarkovianPartition(l)
	if blocks[1] != blocks[2] {
		t.Errorf("vanishing twins should lump: %v", blocks)
	}
	if blocks[3] != blocks[4] {
		t.Errorf("targets with equal behaviour should lump: %v", blocks)
	}
	lumped := bisim.Lump(l)
	orig, err := ctmc.Build(l)
	if err != nil {
		t.Fatal(err)
	}
	small, err := ctmc.Build(lumped)
	if err != nil {
		t.Fatal(err)
	}
	piO, err := orig.SteadyState(ctmc.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	piS, err := small.SteadyState(ctmc.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	to := orig.Throughput(piO, func(s string) bool { return s == "pick" }, nil)
	ts := small.Throughput(piS, func(s string) bool { return s == "pick" }, nil)
	if math.Abs(to-ts) > 1e-9 {
		t.Errorf("pick throughput: original %v, lumped %v", to, ts)
	}
}

func TestLumpCarriesPredicates(t *testing.T) {
	l := symmetricBranch()
	l.PredNames = []string{"p"}
	l.Preds = [][]bool{{true, false, false, true}}
	lumped := bisim.Lump(l)
	if lumped.Preds == nil || len(lumped.Preds[0]) != lumped.NumStates {
		t.Fatal("predicates not carried over")
	}
	v, err := lumped.Pred("p", lumped.Initial)
	if err != nil || !v {
		t.Errorf("initial-state predicate lost: %v %v", v, err)
	}
}

// randomRatedLTS builds a random CTMC-ish LTS with exponential rates from
// a small rate alphabet (to make lumpable coincidences likely).
func randomRatedLTS(r *rand.Rand, n int) *lts.LTS {
	l := lts.New(n)
	l.Initial = 0
	labels := []string{"a", "b"}
	rateVals := []float64{1, 2}
	for s := 0; s < n; s++ {
		k := 1 + r.Intn(2)
		for i := 0; i < k; i++ {
			l.AddTransition(s, r.Intn(n), l.LabelIndex(labels[r.Intn(2)]),
				rates.ExpRate(rateVals[r.Intn(2)]))
		}
	}
	return l
}

// Property: lumping never changes label throughputs.
func TestPropertyLumpExact(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		l := randomRatedLTS(r, 3+r.Intn(6))
		orig, err := ctmc.Build(l)
		if err != nil {
			t.Fatal(err)
		}
		piO, err := orig.SteadyState(ctmc.SolveOptions{})
		if err != nil {
			continue // multiple BSCCs: skip
		}
		lumped := bisim.Lump(l)
		small, err := ctmc.Build(lumped)
		if err != nil {
			t.Fatalf("trial %d: lumped chain broken: %v", trial, err)
		}
		piS, err := small.SteadyState(ctmc.SolveOptions{})
		if err != nil {
			t.Fatalf("trial %d: lumped chain unsolvable: %v", trial, err)
		}
		for _, label := range []string{"a", "b"} {
			to := orig.Throughput(piO, func(s string) bool { return s == label }, nil)
			ts := small.Throughput(piS, func(s string) bool { return s == label }, nil)
			if math.Abs(to-ts) > 1e-8 {
				t.Errorf("trial %d label %s: %v vs %v (lumped %d->%d states)",
					trial, label, to, ts, l.NumStates, lumped.NumStates)
			}
		}
	}
}

// Property: Markovian bisimilarity refines weak bisimilarity on
// functional content — lumping a rated LTS and erasing rates yields a
// strongly bisimilar functional LTS.
func TestPropertyLumpRefinesStrong(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	erase := func(l *lts.LTS) *lts.LTS {
		out := lts.NewShared(l.NumStates, l.Symbols())
		out.Initial = l.Initial
		l.Edges(func(src, dst, label int, _ rates.Rate) {
			out.AddTransition(src, dst, label, rates.UntimedRate())
		})
		return out
	}
	for trial := 0; trial < 20; trial++ {
		l := randomRatedLTS(r, 3+r.Intn(5))
		lumped := bisim.Lump(l)
		if ok, _ := bisim.Equivalent(erase(l), erase(lumped), bisim.Strong); !ok {
			t.Errorf("trial %d: lumped quotient not strongly bisimilar after rate erasure", trial)
		}
	}
}
