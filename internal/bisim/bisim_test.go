package bisim

import (
	"math/rand"
	"testing"

	"repro/internal/hml"
	"repro/internal/lts"
	"repro/internal/rates"
)

func build(n, initial int, edges [][3]any) *lts.LTS {
	l := lts.New(n)
	l.Initial = initial
	for _, e := range edges {
		src := e[0].(int)
		label := e[1].(string)
		dst := e[2].(int)
		li := lts.TauIndex
		if label != lts.TauName {
			li = l.LabelIndex(label)
		}
		l.AddTransition(src, dst, li, rates.UntimedRate())
	}
	return l
}

// checkDistinguishes verifies that f holds at l1's initial state and fails
// at l2's.
func checkDistinguishes(t *testing.T, l1, l2 *lts.LTS, f hml.Formula) {
	t.Helper()
	if f == nil {
		t.Fatal("nil distinguishing formula")
	}
	if !hml.NewChecker(l1).Sat(l1.Initial, f) {
		t.Errorf("formula %s should hold in l1", hml.Format(f))
	}
	if hml.NewChecker(l2).Sat(l2.Initial, f) {
		t.Errorf("formula %s should fail in l2", hml.Format(f))
	}
}

func TestStrongEquivalentIdentical(t *testing.T) {
	mk := func() *lts.LTS {
		return build(3, 0, [][3]any{{0, "a", 1}, {1, "b", 2}, {2, "c", 0}})
	}
	ok, f := Equivalent(mk(), mk(), Strong)
	if !ok {
		t.Fatalf("identical systems not strongly equivalent; formula %s", hml.Format(f))
	}
}

func TestStrongClassicCounterexample(t *testing.T) {
	// a.(b + c)  vs  a.b + a.c
	l1 := build(4, 0, [][3]any{{0, "a", 1}, {1, "b", 2}, {1, "c", 3}})
	l2 := build(5, 0, [][3]any{{0, "a", 1}, {0, "a", 2}, {1, "b", 3}, {2, "c", 4}})
	ok, f := Equivalent(l1, l2, Strong)
	if ok {
		t.Fatal("a.(b+c) and a.b+a.c must not be strongly bisimilar")
	}
	checkDistinguishes(t, l1, l2, f)
	// They are not even weakly bisimilar.
	ok, f = Equivalent(l1, l2, Weak)
	if ok {
		t.Fatal("a.(b+c) and a.b+a.c must not be weakly bisimilar")
	}
	checkDistinguishes(t, l1, l2, f)
}

func TestWeakAbstractsTau(t *testing.T) {
	// a.tau.b  ≈  a.b
	l1 := build(4, 0, [][3]any{{0, "a", 1}, {1, "tau", 2}, {2, "b", 3}})
	l2 := build(3, 0, [][3]any{{0, "a", 1}, {1, "b", 2}})
	ok, _ := Equivalent(l1, l2, Weak)
	if !ok {
		t.Fatal("a.tau.b should be weakly equivalent to a.b")
	}
	// But not strongly.
	ok, f := Equivalent(l1, l2, Strong)
	if ok {
		t.Fatal("a.tau.b should not be strongly equivalent to a.b")
	}
	checkDistinguishes(t, l1, l2, f)
}

func TestWeakTauChoiceCounterexample(t *testing.T) {
	// tau.a + b  is NOT weakly bisimilar to  a + b: the first can silently
	// commit to a, losing the b option.
	l1 := build(4, 0, [][3]any{{0, "tau", 1}, {1, "a", 2}, {0, "b", 3}})
	l2 := build(3, 0, [][3]any{{0, "a", 1}, {0, "b", 2}})
	ok, f := Equivalent(l1, l2, Weak)
	if ok {
		t.Fatal("tau.a+b should not be weakly bisimilar to a+b")
	}
	// The formula distinguishes one side from the other; it may hold in
	// either direction, but must be valid for (l1, l2) as returned.
	checkDistinguishes(t, l1, l2, f)
}

func TestWeakDeadlockDetection(t *testing.T) {
	// a.0 vs a.0 + tau.0 — the second can silently refuse a.
	l1 := build(2, 0, [][3]any{{0, "a", 1}})
	l2 := build(3, 0, [][3]any{{0, "a", 1}, {0, "tau", 2}})
	ok, f := Equivalent(l1, l2, Weak)
	if ok {
		t.Fatal("a.0 and a.0+tau.0 must differ weakly")
	}
	checkDistinguishes(t, l1, l2, f)
}

func TestPartitionBlocks(t *testing.T) {
	// Two a-loops and one b-loop: states 0,1 equivalent, 2 different.
	l := build(3, 0, [][3]any{{0, "a", 1}, {1, "a", 0}, {2, "b", 2}})
	blocks := Partition(l, Strong)
	if blocks[0] != blocks[1] {
		t.Errorf("states 0 and 1 should share a block: %v", blocks)
	}
	if blocks[0] == blocks[2] {
		t.Errorf("states 0 and 2 should differ: %v", blocks)
	}
}

func TestMinimizeShrinksAndPreserves(t *testing.T) {
	// A 4-state cycle of a's collapses to 1 state under strong bisim.
	l := build(4, 0, [][3]any{{0, "a", 1}, {1, "a", 2}, {2, "a", 3}, {3, "a", 0}})
	m := Minimize(l, Strong)
	if m.NumStates != 1 {
		t.Fatalf("minimized to %d states, want 1", m.NumStates)
	}
	if ok, f := Equivalent(l, m, Strong); !ok {
		t.Fatalf("quotient not strongly equivalent: %s", hml.Format(f))
	}
}

func TestMinimizeWeakDropsTauLoops(t *testing.T) {
	// tau loop plus observable a: minimization should drop the tau self-loop.
	l := build(2, 0, [][3]any{{0, "tau", 0}, {0, "a", 1}, {1, "a", 0}})
	m := Minimize(l, Weak)
	m.Edges(func(src, dst, label int, _ rates.Rate) {
		if label == lts.TauIndex && src == dst {
			t.Error("tau self-loop survived weak minimization")
		}
	})
	if ok, f := Equivalent(l, m, Weak); !ok {
		t.Fatalf("weak quotient not weakly equivalent: %s", hml.Format(f))
	}
}

// randomLTS builds a pseudo-random LTS for property testing.
func randomLTS(r *rand.Rand, n int) *lts.LTS {
	labels := []string{"a", "b", "tau"}
	l := lts.New(n)
	l.Initial = 0
	// Ensure every state has at least one outgoing edge to keep things
	// interesting, plus a few extra random edges.
	for s := 0; s < n; s++ {
		k := 1 + r.Intn(2)
		for range k {
			label := labels[r.Intn(len(labels))]
			li := lts.TauIndex
			if label != lts.TauName {
				li = l.LabelIndex(label)
			}
			l.AddTransition(s, r.Intn(n), li, rates.UntimedRate())
		}
	}
	return l
}

// Property: every LTS is equivalent to itself and to its own quotient,
// under both relations.
func TestPropertyMinimizeSound(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 2 + r.Intn(8)
		l := randomLTS(r, n)
		for _, rel := range []Relation{Strong, Weak} {
			if ok, f := Equivalent(l, l, rel); !ok {
				t.Fatalf("trial %d: LTS not %v-equivalent to itself: %s",
					trial, rel, hml.Format(f))
			}
			m := Minimize(l, rel)
			if ok, f := Equivalent(l, m, rel); !ok {
				t.Fatalf("trial %d: quotient not %v-equivalent: %s",
					trial, rel, hml.Format(f))
			}
			if m.NumStates > l.NumStates {
				t.Fatalf("trial %d: quotient grew", trial)
			}
		}
	}
}

// Property: whenever two random systems are inequivalent, the generated
// formula is a valid witness (holds in the first, fails in the second).
func TestPropertyDistinguishingFormulaValid(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	checked := 0
	for trial := 0; trial < 60; trial++ {
		l1 := randomLTS(r, 2+r.Intn(6))
		l2 := randomLTS(r, 2+r.Intn(6))
		for _, rel := range []Relation{Strong, Weak} {
			ok, f := Equivalent(l1, l2, rel)
			if ok {
				continue
			}
			checked++
			if f == nil {
				t.Fatalf("trial %d: inequivalent but nil formula", trial)
			}
			if rel == Weak {
				checkDistinguishes(t, l1, l2, f)
			} else {
				if !hml.NewChecker(l1).Sat(l1.Initial, f) {
					t.Fatalf("trial %d: formula fails in l1: %s", trial, hml.Format(f))
				}
				if hml.NewChecker(l2).Sat(l2.Initial, f) {
					t.Fatalf("trial %d: formula holds in l2: %s", trial, hml.Format(f))
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("property vacuous: no inequivalent pairs generated")
	}
}

// Property: strong equivalence implies weak equivalence.
func TestPropertyStrongImpliesWeak(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		l1 := randomLTS(r, 2+r.Intn(6))
		l2 := randomLTS(r, 2+r.Intn(6))
		strongOK, _ := Equivalent(l1, l2, Strong)
		if !strongOK {
			continue
		}
		if weakOK, f := Equivalent(l1, l2, Weak); !weakOK {
			t.Fatalf("trial %d: strongly equivalent but weakly inequivalent: %s",
				trial, hml.Format(f))
		}
	}
}

func TestRelationString(t *testing.T) {
	if Strong.String() != "strong" || Weak.String() != "weak" {
		t.Error("Relation.String wrong")
	}
	if Relation(0).String() != "unknown" {
		t.Error("zero Relation should be unknown")
	}
}
