package bisim

import (
	"repro/internal/lts"
	"repro/internal/rates"
)

// Minimize returns the quotient of the LTS by its bisimulation partition:
// one state per block, transitions lifted from all members and
// deduplicated by (label, destination block). Rates are carried over from
// the first occurrence; minimization is intended for functional models.
func Minimize(l *lts.LTS, rel Relation) *lts.LTS {
	blocks := Partition(l, rel)
	numBlocks := 0
	for _, b := range blocks {
		if b+1 > numBlocks {
			numBlocks = b + 1
		}
	}
	// The quotient shares the pipeline symbol table: label indices copy
	// over verbatim.
	out := lts.NewShared(numBlocks, l.Symbols())
	out.Initial = blocks[l.Initial]
	type edge struct {
		src, dst, label int
	}
	seen := make(map[edge]bool)
	l.Edges(func(src, dst, label int, r rates.Rate) {
		e := edge{src: blocks[src], dst: blocks[dst], label: label}
		if rel == Weak && label == lts.TauIndex && e.src == e.dst {
			// Tau self-loops are redundant up to weak bisimulation.
			return
		}
		if seen[e] {
			return
		}
		seen[e] = true
		out.AddTransition(e.src, e.dst, label, r)
	})
	return out
}
