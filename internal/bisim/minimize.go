package bisim

import (
	"repro/internal/lts"
)

// Minimize returns the quotient of the LTS by its bisimulation partition:
// one state per block, transitions lifted from all members and
// deduplicated by (label, destination block). Rates are carried over from
// the first occurrence; minimization is intended for functional models.
func Minimize(l *lts.LTS, rel Relation) *lts.LTS {
	blocks := Partition(l, rel)
	numBlocks := 0
	for _, b := range blocks {
		if b+1 > numBlocks {
			numBlocks = b + 1
		}
	}
	out := lts.New(numBlocks)
	out.Initial = blocks[l.Initial]
	type edge struct {
		src, dst, label int
	}
	seen := make(map[edge]bool)
	for _, t := range l.Transitions {
		li := lts.TauIndex
		if t.Label != lts.TauIndex {
			li = out.LabelIndex(l.Labels[t.Label])
		}
		e := edge{src: blocks[t.Src], dst: blocks[t.Dst], label: li}
		if rel == Weak && li == lts.TauIndex && e.src == e.dst {
			// Tau self-loops are redundant up to weak bisimulation.
			continue
		}
		if seen[e] {
			continue
		}
		seen[e] = true
		out.AddTransition(e.src, e.dst, li, t.Rate)
	}
	return out
}
