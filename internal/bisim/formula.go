package bisim

import (
	"sort"

	"repro/internal/hml"
)

// formulaGen builds distinguishing formulas from the refinement history,
// following Cleaveland's construction: two states that separate at round k
// are distinguished by a modality chosen from the signature difference at
// round k-1, with subformulas for pairs that separated strictly earlier.
type formulaGen struct {
	res *refineResult
	rel Relation
}

// sepLevel returns the first refinement round at which s and t occupy
// different blocks, or -1 if they never separate.
func (g *formulaGen) sepLevel(s, t int) int {
	for k, blocks := range g.res.history {
		if blocks[s] != blocks[t] {
			return k
		}
	}
	return -1
}

// sigPair is one element of a state's signature: a label and a reachable
// block under the partition of a given round.
type sigPair struct {
	label int32
	block int
}

// sig computes the signature of state st under the partition blocks.
func (g *formulaGen) sig(st int, blocks []int) map[sigPair]bool {
	out := make(map[sigPair]bool)
	s := g.res.s
	glo, ghi := s.groups(st)
	for grp := glo; grp < ghi; grp++ {
		label := s.grpLabel[grp]
		for _, d := range s.groupDsts(grp) {
			out[sigPair{label: label, block: blocks[d]}] = true
		}
	}
	return out
}

// modality wraps a subformula in the diamond appropriate for the relation.
func (g *formulaGen) modality(label int32, f hml.Formula) hml.Formula {
	name := g.res.s.syms.Name(int(label))
	if g.rel == Weak {
		return hml.DiamondWeak{Label: name, F: f}
	}
	return hml.Diamond{Label: name, F: f}
}

// dist returns a formula satisfied by s and not by t. The two states must
// be in different blocks of the final partition.
func (g *formulaGen) dist(s, t int) hml.Formula {
	k := g.sepLevel(s, t)
	if k <= 0 {
		// Never separated (should not happen for distinct blocks) — the
		// weakest honest answer is TRUE.
		return hml.True{}
	}
	prev := g.res.history[k-1]
	sigS, sigT := g.sig(s, prev), g.sig(t, prev)

	if p, ok := pickMissing(sigS, sigT); ok {
		return g.positive(s, t, p, prev)
	}
	// Signatures differ only by a pair present in t and absent in s:
	// distinguish t from s and negate.
	p, ok := pickMissing(sigT, sigS)
	if !ok {
		return hml.True{}
	}
	return hml.Not{F: g.positive(t, s, p, prev)}
}

// pickMissing returns a deterministic element of a\b.
func pickMissing(a, b map[sigPair]bool) (sigPair, bool) {
	var cands []sigPair
	for p := range a {
		if !b[p] {
			cands = append(cands, p)
		}
	}
	if len(cands) == 0 {
		return sigPair{}, false
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].label != cands[j].label {
			return cands[i].label < cands[j].label
		}
		return cands[i].block < cands[j].block
	})
	return cands[0], true
}

// positive builds a formula of the shape <a>( /\ dist(s', t') ) where s
// has an a-move into block p.block under prev and t has none.
func (g *formulaGen) positive(s, t int, p sigPair, prev []int) hml.Formula {
	// Choose the smallest witness successor for determinism (successor
	// sets are stored sorted).
	sPrime := -1
	for _, d := range g.res.s.find(s, p.label) {
		if prev[d] == p.block {
			sPrime = int(d)
			break
		}
	}
	if sPrime < 0 {
		return hml.True{}
	}
	tSucc := g.res.s.find(t, p.label)
	if len(tSucc) == 0 {
		return g.modality(p.label, hml.True{})
	}
	var conj []hml.Formula
	seen := make(map[string]bool)
	for _, tPrime := range tSucc {
		f := g.dist(sPrime, int(tPrime))
		key := hml.Format(f)
		if !seen[key] {
			seen[key] = true
			conj = append(conj, f)
		}
	}
	if len(conj) == 1 {
		return g.modality(p.label, conj[0])
	}
	return g.modality(p.label, hml.And{Fs: conj})
}
