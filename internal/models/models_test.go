package models

import (
	"strings"
	"testing"

	"repro/internal/aemilia"
	"repro/internal/core"
	"repro/internal/elab"
	"repro/internal/lts"
	"repro/internal/noninterference"
)

// paperFormula is the diagnostic formula of paper Sect. 3.1, verbatim.
const paperFormula = "EXISTS_WEAK_TRANS(LABEL(C.send_rpc_packet#RCS.get_packet); " +
	"REACHED_STATE_SAT(NOT(EXISTS_WEAK_TRANS(LABEL(RSC.deliver_packet#C.receive_result_packet); " +
	"REACHED_STATE_SAT(TRUE)))))"

func rpcSpec() noninterference.Spec {
	return noninterference.Spec{
		High: lts.LabelMatcherByNames(RPCHighLabels()...),
		Low:  lts.LabelMatcherByInstance("C"),
	}
}

func TestRPCSimplifiedFailsWithPaperFormula(t *testing.T) {
	a, err := BuildRPCSimplified()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Phase1(a, rpcSpec(), lts.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Transparent {
		t.Fatal("the simplified rpc must fail the noninterference check (paper Sect. 3.1)")
	}
	if rep.Result.FormulaText != paperFormula {
		t.Errorf("distinguishing formula differs from the paper's:\n got %s\nwant %s",
			rep.Result.FormulaText, paperFormula)
	}
	if rep.States == 0 || rep.Transitions == 0 {
		t.Error("state space not reported")
	}
}

func TestRPCRevisedPassesNoninterference(t *testing.T) {
	p := DefaultRPCParams()
	p.Mode = Functional
	a, err := BuildRPCRevised(p)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Phase1(a, rpcSpec(), lts.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Result.Transparent {
		t.Fatalf("the revised rpc must pass (paper Sect. 3.1); formula: %s",
			rep.Result.FormulaText)
	}
}

func TestRPCRevisedWithoutDPMStillPasses(t *testing.T) {
	// Removing the DPM's ability to act must be a no-op for the check.
	p := DefaultRPCParams()
	p.Mode = Functional
	p.WithDPM = false
	a, err := BuildRPCRevised(p)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Phase1(a, rpcSpec(), lts.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Result.Transparent {
		t.Fatal("a DPM that never acts must be transparent")
	}
}

func TestStreamingPassesNoninterference(t *testing.T) {
	p := DefaultStreamingParams()
	p.Mode = Functional
	p.APCapacity = 2
	p.ClientCapacity = 2
	a, err := BuildStreaming(p)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Phase1(a, noninterference.Spec{
		High: lts.LabelMatcherByNames(StreamingHighLabels()...),
		Low:  lts.LabelMatcherByInstance("C"),
	}, lts.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Result.Transparent {
		t.Fatalf("streaming must pass (paper Sect. 3.2); formula: %s",
			rep.Result.FormulaText)
	}
}

func TestRPCMarkovianOrderings(t *testing.T) {
	// The with-DPM system must save energy per request at the cost of
	// throughput and waiting time (paper Fig. 3, left).
	run := func(withDPM bool) (thr, wait, eneperreq float64) {
		p := DefaultRPCParams()
		p.ShutdownTimeout = 5
		p.WithDPM = withDPM
		a, err := BuildRPCRevised(p)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := core.Phase2(a, RPCMeasures(p), lts.GenerateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		thr = rep.Values["throughput"]
		wait = rep.Values["waiting_time"] / thr
		eneperreq = rep.Values["energy"] / thr
		return thr, wait, eneperreq
	}
	thr1, wait1, epr1 := run(true)
	thr0, wait0, epr0 := run(false)
	if !(thr1 < thr0) {
		t.Errorf("throughput with DPM (%v) should be below without (%v)", thr1, thr0)
	}
	if !(wait1 > wait0) {
		t.Errorf("waiting time with DPM (%v) should exceed without (%v)", wait1, wait0)
	}
	if !(epr1 < epr0) {
		t.Errorf("energy/request with DPM (%v) should be below without (%v)", epr1, epr0)
	}
}

func TestRPCMarkovianTimeoutMonotonicity(t *testing.T) {
	// Shorter shutdown timeouts increase the DPM's impact: lower energy,
	// lower throughput (paper Fig. 3, left).
	eval := func(timeout float64) (thr, energy float64) {
		p := DefaultRPCParams()
		p.ShutdownTimeout = timeout
		a, err := BuildRPCRevised(p)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := core.Phase2(a, RPCMeasures(p), lts.GenerateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Values["throughput"], rep.Values["energy"] / rep.Values["throughput"]
	}
	thrShort, eprShort := eval(1)
	thrLong, eprLong := eval(20)
	if !(eprShort < eprLong) {
		t.Errorf("energy/request at timeout 1 (%v) should be below timeout 20 (%v)", eprShort, eprLong)
	}
	if !(thrShort < thrLong) {
		t.Errorf("throughput at timeout 1 (%v) should be below timeout 20 (%v)", thrShort, thrLong)
	}
}

func TestRPCZeroTimeoutIsImmediate(t *testing.T) {
	p := DefaultRPCParams()
	p.ShutdownTimeout = 0
	a, err := BuildRPCRevised(p)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Phase2(a, RPCMeasures(p), lts.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Maximum DPM impact: energy per request must be below any finite
	// timeout's value.
	p5 := DefaultRPCParams()
	p5.ShutdownTimeout = 5
	a5, err := BuildRPCRevised(p5)
	if err != nil {
		t.Fatal(err)
	}
	rep5, err := core.Phase2(a5, RPCMeasures(p5), lts.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	epr0 := rep.Values["energy"] / rep.Values["throughput"]
	epr5 := rep5.Values["energy"] / rep5.Values["throughput"]
	if !(epr0 < epr5) {
		t.Errorf("timeout 0 energy/request (%v) should be minimal (< %v)", epr0, epr5)
	}
}

func TestStreamingMarkovianOrderings(t *testing.T) {
	// Small buffers keep the chain small in tests; orderings still hold.
	run := func(withDPM bool, period float64) map[string]float64 {
		p := DefaultStreamingParams()
		p.APCapacity = 3
		p.ClientCapacity = 3
		p.WithDPM = withDPM
		p.AwakePeriod = period
		a, err := BuildStreaming(p)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := core.Phase2(a, StreamingMeasures(p), lts.GenerateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Values
	}
	v0 := run(false, 0)
	v100 := run(true, 100)
	v400 := run(true, 400)

	ef := func(v map[string]float64) float64 { return v["nic_energy"] / v["frames_delivered"] }
	miss := func(v map[string]float64) float64 {
		return v["frames_missed"] / (v["frames_delivered"] + v["frames_missed"])
	}
	if !(ef(v100) < ef(v0)) {
		t.Errorf("energy/frame with DPM (%v) should be below without (%v)", ef(v100), ef(v0))
	}
	if !(ef(v400) < ef(v100)) {
		t.Errorf("energy/frame should decrease with awake period: %v !< %v", ef(v400), ef(v100))
	}
	if !(miss(v400) > miss(v100)) {
		t.Errorf("miss should increase with awake period: %v !> %v", miss(v400), miss(v100))
	}
	if !(miss(v100) >= miss(v0)) {
		t.Errorf("miss with DPM (%v) should not be below without (%v)", miss(v100), miss(v0))
	}
}

func TestDistributionsCoverActivities(t *testing.T) {
	p := DefaultRPCParams()
	gen := RPCGeneralDistributions(p)
	for _, act := range []string{"prepare_result_packet", "awake"} {
		found := false
		for a := range gen {
			if a.Action == act {
				found = true
			}
		}
		if !found {
			t.Errorf("rpc general distributions missing %s", act)
		}
	}
	exp := RPCExponentialDistributions(p)
	if len(exp) != len(gen) {
		t.Errorf("exp (%d) and general (%d) overrides should cover the same activities",
			len(exp), len(gen))
	}
	// Means must agree between the two (the validation premise).
	for a, d := range gen {
		e, ok := exp[a]
		if !ok {
			t.Errorf("activity %v missing from exponential overrides", a)
			continue
		}
		if d.Mean() != e.Mean() {
			t.Errorf("activity %v: general mean %v != exponential mean %v", a, d.Mean(), e.Mean())
		}
	}

	sp := DefaultStreamingParams()
	sg, se := StreamingGeneralDistributions(sp), StreamingExponentialDistributions(sp)
	if len(sg) != len(se) {
		t.Errorf("streaming overrides mismatch: %d vs %d", len(sg), len(se))
	}
	for a, d := range sg {
		if e, ok := se[a]; !ok || d.Mean() != e.Mean() {
			t.Errorf("streaming activity %v means disagree", a)
		}
	}
}

func TestNoDPMOmitsInstance(t *testing.T) {
	p := DefaultStreamingParams()
	p.WithDPM = false
	a, err := BuildStreaming(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Instance("DPM"); ok {
		t.Error("no-DPM streaming should omit the DPM instance")
	}
	m, err := elab.Elaborate(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Successors(m.Initial()); err != nil {
		t.Fatal(err)
	}
}

func TestRPCFunctionalHasNoRates(t *testing.T) {
	p := DefaultRPCParams()
	p.Mode = Functional
	a, err := BuildRPCRevised(p)
	if err != nil {
		t.Fatal(err)
	}
	text := aemilia.Format(a)
	for _, bad := range []string{"exp(", "inf("} {
		if strings.Contains(text, bad) {
			t.Errorf("functional model contains rate annotation %q", bad)
		}
	}
}

func TestShutdownInterruptsServiceVariant(t *testing.T) {
	// The busy-sensitive server of Sect. 2.1 ("the shutdown interrupts
	// the service"), driven by the trivial policy so that busy-time
	// shutdowns actually occur. Even with the timeout client, aborting
	// services is observably different from never aborting them — which
	// is exactly why the paper's revised design makes the server
	// insensitive to shutdowns while busy ("we recognize that the DPM
	// cannot shut down the server while it is busy"). The checker must
	// therefore detect interference and produce a witness formula.
	p := DefaultRPCParams()
	p.Mode = Functional
	p.Policy = PolicyTrivial
	p.ShutdownInterruptsService = true
	a, err := BuildRPCRevised(p)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Phase1(a, rpcSpec(), lts.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Transparent {
		t.Fatal("busy-time aborts must be detected as interference")
	}
	if rep.Result.FormulaText == "" {
		t.Fatal("missing witness formula")
	}

	// Performance: aborting services loses work, so the interrupting
	// variant completes fewer requests than the idle-only variant under
	// the same trivial policy.
	solve := func(interrupts bool) map[string]float64 {
		q := DefaultRPCParams()
		q.Policy = PolicyTrivial
		q.ShutdownTimeout = 5
		q.ShutdownInterruptsService = interrupts
		arch, err := BuildRPCRevised(q)
		if err != nil {
			t.Fatal(err)
		}
		rep2, err := core.Phase2(arch, RPCMeasures(q), lts.GenerateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return rep2.Values
	}
	vi := solve(true)
	vn := solve(false)
	if !(vi["throughput"] < vn["throughput"]) {
		t.Errorf("interrupting shutdowns should cost throughput: %v !< %v",
			vi["throughput"], vn["throughput"])
	}
	// Aborted services waste work: every interrupted request pays an
	// extra wake-up and a re-service, so the energy per completed request
	// is strictly worse than under the idle-only discipline.
	if !(vi["energy"]/vi["throughput"] > vn["energy"]/vn["throughput"]) {
		t.Errorf("interrupting shutdowns should waste energy per request: %v !> %v",
			vi["energy"]/vi["throughput"], vn["energy"]/vn["throughput"])
	}
}

func TestPolicyString(t *testing.T) {
	for pol, want := range map[Policy]string{
		PolicyTimeout: "timeout", PolicyTrivial: "trivial",
		PolicyPredictive: "predictive", PolicyNone: "none", Policy(0): "unknown",
	} {
		if got := pol.String(); got != want {
			t.Errorf("Policy(%d).String = %q, want %q", pol, got, want)
		}
	}
}

func TestPredictivePolicyBuildsAndSolves(t *testing.T) {
	p := DefaultRPCParams()
	p.Policy = PolicyPredictive
	p.ShutdownTimeout = 5
	a, err := BuildRPCRevised(p)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Phase2(a, RPCMeasures(p), lts.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Values["throughput"] <= 0 {
		t.Error("predictive policy produced no throughput")
	}
	// Functional flavour passes noninterference too.
	p.Mode = Functional
	a, err = BuildRPCRevised(p)
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := core.Phase1(a, rpcSpec(), lts.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep1.Result.Transparent {
		t.Errorf("predictive DPM should be transparent; formula: %s", rep1.Result.FormulaText)
	}
}

func TestModelsDeadlockFree(t *testing.T) {
	// Every case-study variant must be deadlock-free: a deadlock would
	// invalidate both the CTMC analysis (absorbing artefact) and the
	// transparency argument.
	var archs []*aemilia.ArchiType
	for _, pol := range []Policy{PolicyNone, PolicyTrivial, PolicyTimeout, PolicyPredictive} {
		p := DefaultRPCParams()
		p.Policy = pol
		p.WithDPM = pol != PolicyNone
		a, err := BuildRPCRevised(p)
		if err != nil {
			t.Fatal(err)
		}
		archs = append(archs, a)
	}
	pi := DefaultRPCParams()
	pi.Policy = PolicyTrivial
	pi.ShutdownInterruptsService = true
	ai, err := BuildRPCRevised(pi)
	if err != nil {
		t.Fatal(err)
	}
	archs = append(archs, ai)
	for _, withDPM := range []bool{true, false} {
		sp := DefaultStreamingParams()
		sp.APCapacity, sp.ClientCapacity = 3, 3
		sp.WithDPM = withDPM
		sp.DeadlineDebtCap = 4
		a, err := BuildStreaming(sp)
		if err != nil {
			t.Fatal(err)
		}
		archs = append(archs, a)
	}
	for i, a := range archs {
		m, err := elab.Elaborate(a)
		if err != nil {
			t.Fatalf("model %d (%s): %v", i, a.Name, err)
		}
		l, err := lts.Generate(m, lts.GenerateOptions{})
		if err != nil {
			t.Fatalf("model %d (%s): %v", i, a.Name, err)
		}
		if dl := l.Deadlocks(); len(dl) > 0 {
			t.Errorf("model %d (%s): %d deadlocked states (e.g. state %d)",
				i, a.Name, len(dl), dl[0])
		}
	}
}
