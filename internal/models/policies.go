package models

import (
	"repro/internal/aemilia"
	"repro/internal/expr"
	"repro/internal/rates"
)

// Policy selects the DPM decision scheme of the rpc model, following the
// classification the paper recalls from Benini–Bogliolo–De Micheli:
// deterministic (timeout) schemes, trivial schemes that issue shutdowns
// blindly, and predictive schemes that exploit the history of idle
// periods.
type Policy int

// Supported DPM policies.
const (
	// PolicyTimeout arms a shutdown timer whenever the server becomes
	// idle and cancels it on activity — the paper's main policy
	// (Sect. 2.1, "timeout policy").
	PolicyTimeout Policy = iota + 1
	// PolicyTrivial issues shutdown commands on a free-running clock,
	// independently of the server state (Sect. 2.1, "trivial policy");
	// commands take effect at the next idle moment.
	PolicyTrivial
	// PolicyPredictive is a 1-bit history predictor: if the previous
	// idle period ended before the shutdown timer fired, the next idle
	// period is predicted short and the shutdown is skipped.
	PolicyPredictive
	// PolicyNone disables the DPM (the comparison baseline).
	PolicyNone
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case PolicyTimeout:
		return "timeout"
	case PolicyTrivial:
		return "trivial"
	case PolicyPredictive:
		return "predictive"
	case PolicyNone:
		return "none"
	default:
		return "unknown"
	}
}

// buildDPMType constructs the DPM element type for the configured policy.
// Every variant accepts the server's busy/idle notifications in every
// state (they are immediate on the server side and must never block).
func buildDPMType(p RPCParams) *aemilia.ElemType {
	policy := p.Policy
	if policy == 0 {
		if p.WithDPM {
			policy = PolicyTimeout
		} else {
			policy = PolicyNone
		}
	}
	var shutdownRate rates.Rate
	switch {
	case p.Mode == Functional:
		shutdownRate = rates.UntimedRate()
	case p.ShutdownTimeout <= 0:
		shutdownRate = rates.Inf(1, 1)
	case p.ParametricTimeout:
		shutdownRate = rates.ExpSlot(RPCTimeoutSlot, 1/p.ShutdownTimeout)
	default:
		shutdownRate = rates.ExpRate(1 / p.ShutdownTimeout)
	}

	switch policy {
	case PolicyNone:
		return aemilia.NewElemType("DPM_Type",
			[]string{"receive_busy_notice", "receive_idle_notice"},
			[]string{"send_shutdown"},
			aemilia.NewBehavior("Enabled_DPM", nil,
				aemilia.Pre("receive_busy_notice", p.passive(), aemilia.Invoke("Disabled_DPM"))),
			aemilia.NewBehavior("Disabled_DPM", nil,
				aemilia.Pre("receive_idle_notice", p.passive(), aemilia.Invoke("Enabled_DPM"))),
		)

	case PolicyTrivial:
		// A free-running tick arms a shutdown command that fires at the
		// next idle moment (the server only listens while idle).
		tickRate := shutdownRate
		if p.Mode != Functional && p.ShutdownTimeout <= 0 {
			tickRate = rates.ExpRate(1e6) // "immediately", but time must pass
		}
		return aemilia.NewElemType("DPM_Type",
			[]string{"receive_busy_notice", "receive_idle_notice"},
			[]string{"send_shutdown"},
			aemilia.NewBehavior("Trivial_DPM", nil, aemilia.Ch(
				aemilia.Pre("tick", tickRate, aemilia.Invoke("Armed_DPM")),
				aemilia.Pre("receive_busy_notice", p.passive(), aemilia.Invoke("Trivial_DPM")),
				aemilia.Pre("receive_idle_notice", p.passive(), aemilia.Invoke("Trivial_DPM")),
			)),
			aemilia.NewBehavior("Armed_DPM", nil, aemilia.Ch(
				aemilia.Pre("send_shutdown", p.imm(1), aemilia.Invoke("Trivial_DPM")),
				aemilia.Pre("receive_busy_notice", p.passive(), aemilia.Invoke("Armed_DPM")),
				aemilia.Pre("receive_idle_notice", p.passive(), aemilia.Invoke("Armed_DPM")),
			)),
		)

	case PolicyPredictive:
		// skip=true predicts a short idle period (the last one ended
		// before the timer fired) and suppresses one shutdown.
		skip := expr.Ref("skip")
		return aemilia.NewElemType("DPM_Type",
			[]string{"receive_busy_notice", "receive_idle_notice"},
			[]string{"send_shutdown"},
			aemilia.NewBehavior("Enabled_DPM", []aemilia.Param{aemilia.BoolParam("skip")},
				aemilia.Ch(
					aemilia.When(expr.Un(expr.OpNot, skip),
						aemilia.Pre("send_shutdown", shutdownRate,
							aemilia.Invoke("Disabled_DPM", expr.Bool(false)))),
					aemilia.Pre("receive_busy_notice", p.passive(),
						aemilia.Invoke("Disabled_DPM", expr.Un(expr.OpNot, skip))),
				)),
			aemilia.NewBehavior("Disabled_DPM", []aemilia.Param{aemilia.BoolParam("skip")},
				aemilia.Pre("receive_idle_notice", p.passive(),
					aemilia.Invoke("Enabled_DPM", skip))),
		)

	default: // PolicyTimeout
		return aemilia.NewElemType("DPM_Type",
			[]string{"receive_busy_notice", "receive_idle_notice"},
			[]string{"send_shutdown"},
			aemilia.NewBehavior("Enabled_DPM", nil, aemilia.Ch(
				aemilia.Pre("send_shutdown", shutdownRate, aemilia.Invoke("Disabled_DPM")),
				aemilia.Pre("receive_busy_notice", p.passive(), aemilia.Invoke("Disabled_DPM")),
			)),
			aemilia.NewBehavior("Disabled_DPM", nil,
				aemilia.Pre("receive_idle_notice", p.passive(), aemilia.Invoke("Enabled_DPM"))),
		)
	}
}

// dpmInstanceArgs returns the initial arguments of the DPM instance for
// the configured policy.
func dpmInstanceArgs(p RPCParams) []expr.Expr {
	policy := p.Policy
	if policy == PolicyPredictive {
		return []expr.Expr{expr.Bool(false)}
	}
	return nil
}
