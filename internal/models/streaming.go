package models

import (
	"repro/internal/aemilia"
	"repro/internal/dist"
	"repro/internal/expr"
	"repro/internal/measure"
	"repro/internal/rates"
	"repro/internal/sim"
)

// StreamingParams collects the streaming parameters; times are in
// milliseconds and match Sect. 4.2 of the paper.
type StreamingParams struct {
	// Mode selects the functional or Markovian flavour.
	Mode Mode
	// WithDPM controls whether the PSP power manager is present; when
	// false the DPM instance and its attachments are omitted and the NIC
	// never leaves the awake state.
	WithDPM bool
	// APCapacity and ClientCapacity are the buffer sizes (paper: 10, 10).
	APCapacity, ClientCapacity int64
	// MeanFrameInterval is the server's inter-frame time (paper: 67 ms).
	MeanFrameInterval float64
	// MeanPropagationTime is the radio propagation delay (paper: 4 ms).
	MeanPropagationTime float64
	// PropagationSigma is the normal standard deviation in the general
	// model (scaled from the rpc channel: 4 × 0.0345/0.8 ≈ 0.1725 ms).
	PropagationSigma float64
	// LossProb is the per-frame radio loss probability (paper: 0.02).
	LossProb float64
	// MeanCheckTime is the NIC's buffer-check time after waking
	// (paper: 5 ms).
	MeanCheckTime float64
	// MeanWakeTime is the doze→awake latency (paper: 15 ms).
	MeanWakeTime float64
	// MeanInitialDelay is the client's start-up buffering delay
	// (paper: 684 ms).
	MeanInitialDelay float64
	// MeanRenderInterval is the client's frame consumption period
	// (paper: 67 ms).
	MeanRenderInterval float64
	// MeanShutdownDelay is the delay between the AP buffer emptying and
	// the shutdown command (paper: 5 ms).
	MeanShutdownDelay float64
	// AwakePeriod is the PSP wakeup period (paper: swept 0–800 ms).
	AwakePeriod float64
	// DeadlineDebtCap bounds the number of outstanding missed deadlines
	// the client buffer tracks. Every missed render deadline marks one
	// future frame as late; a frame arriving more than DeadlineSlack
	// deadlines behind is stale and discarded (real-time semantics — a
	// frame far past its deadline is useless), while a frame within the
	// slack is still rendered, slipping the playout point. 0 disables
	// deadline tracking entirely — the abstraction the Markovian model
	// uses; the general model of Sect. 5.3 enables it.
	DeadlineDebtCap int64
	// DeadlineSlack is the number of deadlines a frame may be late and
	// still be rendered (jitter-buffer tolerance).
	DeadlineSlack int64
	// PowerAwake, PowerWaking and PowerDoze are the NIC power levels for
	// the energy reward (awake/checking, waking, dozing).
	PowerAwake, PowerWaking, PowerDoze float64
	// ParametricPeriod binds the PSP wakeup rate to rate slot
	// StreamingPeriodSlot instead of a plain constant, so an awake-period
	// sweep can generate the state space once and rebind the rate per
	// point (core.Phase2Sweep). Only meaningful in Markovian mode with
	// WithDPM and a positive AwakePeriod — a non-positive period makes
	// the wakeup immediate, a structurally different model that rebinding
	// cannot reach.
	ParametricPeriod bool
}

// StreamingPeriodSlot is the rate slot of the PSP wakeup rate when
// StreamingParams.ParametricPeriod is set: a sweep point's value for this
// slot is 1/AwakePeriod.
const StreamingPeriodSlot = 1

// DefaultStreamingParams returns the parameter set of paper Sect. 4.2.
func DefaultStreamingParams() StreamingParams {
	return StreamingParams{
		Mode:                Markovian,
		WithDPM:             true,
		APCapacity:          10,
		ClientCapacity:      10,
		MeanFrameInterval:   67,
		MeanPropagationTime: 4,
		PropagationSigma:    0.1725,
		LossProb:            0.02,
		MeanCheckTime:       5,
		MeanWakeTime:        15,
		MeanInitialDelay:    684,
		MeanRenderInterval:  67,
		MeanShutdownDelay:   5,
		AwakePeriod:         100,
		DeadlineDebtCap:     0,
		DeadlineSlack:       2,
		PowerAwake:          1,
		PowerWaking:         1.5,
		PowerDoze:           0.05,
	}
}

func (p StreamingParams) expMean(mean float64) rates.Rate {
	if p.Mode == Functional {
		return rates.UntimedRate()
	}
	if mean <= 0 {
		return rates.Inf(1, 1)
	}
	return rates.ExpRate(1 / mean)
}

// wakeupRate is the PSP wakeup annotation: the awake-period rate, bound
// to StreamingPeriodSlot when the sweep asked for a parametric period.
func (p StreamingParams) wakeupRate() rates.Rate {
	if p.ParametricPeriod && p.Mode != Functional && p.AwakePeriod > 0 {
		return rates.ExpSlot(StreamingPeriodSlot, 1/p.AwakePeriod)
	}
	return p.expMean(p.AwakePeriod)
}

func (p StreamingParams) imm(weight float64) rates.Rate {
	if p.Mode == Functional {
		return rates.UntimedRate()
	}
	return rates.Inf(1, weight)
}

func (p StreamingParams) passive() rates.Rate {
	if p.Mode == Functional {
		return rates.UntimedRate()
	}
	return rates.PassiveRate()
}

// BuildStreaming returns the streaming model of paper Sect. 2.2: server →
// access-point buffer → radio channel → power-manageable NIC → client
// buffer → renderer, plus (optionally) the PSP power manager that watches
// the AP buffer and drives the NIC's doze mode.
func BuildStreaming(p StreamingParams) (*aemilia.ArchiType, error) {
	server := aemilia.NewElemType("Server_Type", nil, []string{"send_frame"},
		aemilia.NewBehavior("Stream_Server", nil,
			aemilia.Pre("produce_frame", p.expMean(p.MeanFrameInterval),
				aemilia.Pre("send_frame", p.imm(1), aemilia.Invoke("Stream_Server")))),
	)

	// Access point with a bounded buffer. The status_* outputs are
	// observation ports polled by the DPM (self-loops, so leaving them
	// unattached — or restricting the DPM — never blocks the AP).
	n := expr.Ref("n")
	apCap := expr.Int(p.APCapacity)
	ap := aemilia.NewElemType("AP_Type",
		[]string{"receive_frame"},
		[]string{"send_frame_ap", "status_empty", "status_nonempty"},
		aemilia.NewBehavior("AP_Buffer", []aemilia.Param{aemilia.IntParam("n")},
			aemilia.Ch(
				aemilia.When(expr.Bin(expr.OpLt, n, apCap),
					aemilia.Pre("receive_frame", p.passive(),
						aemilia.Invoke("AP_Buffer", expr.Bin(expr.OpAdd, n, expr.Int(1))))),
				aemilia.When(expr.Bin(expr.OpEq, n, apCap),
					aemilia.Pre("receive_frame", p.passive(),
						aemilia.Pre("lose_frame_ap", p.imm(1), aemilia.Invoke("AP_Buffer", n)))),
				aemilia.When(expr.Bin(expr.OpGt, n, expr.Int(0)),
					aemilia.Pre("send_frame_ap", p.imm(1),
						aemilia.Invoke("AP_Buffer", expr.Bin(expr.OpSub, n, expr.Int(1))))),
				aemilia.When(expr.Bin(expr.OpEq, n, expr.Int(0)),
					aemilia.Pre("status_empty", rates.PassiveRate(), aemilia.Invoke("AP_Buffer", n))),
				aemilia.When(expr.Bin(expr.OpGt, n, expr.Int(0)),
					aemilia.Pre("status_nonempty", rates.PassiveRate(), aemilia.Invoke("AP_Buffer", n))),
			)),
	)

	keepW := 1 - p.LossProb
	channel := aemilia.NewElemType("Frame_Channel_Type",
		[]string{"get_frame"}, []string{"deliver_frame"},
		aemilia.NewBehavior("Frame_Channel", nil,
			aemilia.Pre("get_frame", p.passive(),
				aemilia.Pre("propagate_frame", p.expMean(p.MeanPropagationTime),
					aemilia.Ch(
						aemilia.Pre("keep_frame", p.imm(keepW),
							aemilia.Pre("deliver_frame", p.imm(1), aemilia.Invoke("Frame_Channel"))),
						aemilia.Pre("lose_frame", p.imm(p.LossProb), aemilia.Invoke("Frame_Channel")),
					)))),
	)

	nic := aemilia.NewElemType("NIC_Type",
		[]string{"receive_frame_nic", "receive_shutdown", "receive_wakeup"},
		[]string{"forward_frame", "monitor_nic_awake", "monitor_nic_waking", "monitor_nic_doze"},
		aemilia.NewBehavior("NIC_Awake", nil, aemilia.Ch(
			aemilia.Pre("receive_frame_nic", p.passive(),
				aemilia.Pre("forward_frame", p.imm(1), aemilia.Invoke("NIC_Awake"))),
			aemilia.Pre("receive_shutdown", p.passive(), aemilia.Invoke("NIC_Doze")),
			aemilia.Pre("monitor_nic_awake", rates.PassiveRate(), aemilia.Invoke("NIC_Awake")),
		)),
		aemilia.NewBehavior("NIC_Doze", nil, aemilia.Ch(
			aemilia.Pre("receive_wakeup", p.passive(), aemilia.Invoke("NIC_Waking")),
			aemilia.Pre("monitor_nic_doze", rates.PassiveRate(), aemilia.Invoke("NIC_Doze")),
		)),
		aemilia.NewBehavior("NIC_Waking", nil, aemilia.Ch(
			aemilia.Pre("awake_nic", p.expMean(p.MeanWakeTime), aemilia.Invoke("NIC_Checking")),
			aemilia.Pre("monitor_nic_waking", rates.PassiveRate(), aemilia.Invoke("NIC_Waking")),
		)),
		aemilia.NewBehavior("NIC_Checking", nil, aemilia.Ch(
			aemilia.Pre("check_done", p.expMean(p.MeanCheckTime), aemilia.Invoke("NIC_Awake")),
			aemilia.Pre("receive_frame_nic", p.passive(),
				aemilia.Pre("forward_frame", p.imm(1), aemilia.Invoke("NIC_Checking"))),
			aemilia.Pre("monitor_nic_awake", rates.PassiveRate(), aemilia.Invoke("NIC_Checking")),
		)),
	)

	// Client buffer with real-time deadline semantics: m is the buffer
	// occupancy, d the number of outstanding missed deadlines. A frame
	// arriving while deadlines are outstanding is stale and discarded
	// (the render position has moved past it); otherwise it is buffered,
	// overflowing into a loss when the buffer is full.
	m := expr.Ref("m")
	d := expr.Ref("d")
	bCap := expr.Int(p.ClientCapacity)
	debtCap := expr.Int(p.DeadlineDebtCap)
	slack := expr.Int(p.DeadlineSlack)
	buf := aemilia.NewElemType("Client_Buffer_Type",
		[]string{"receive_frame_b", "get_frame", "miss_frame"}, nil,
		aemilia.NewBehavior("Client_Buffer",
			[]aemilia.Param{aemilia.IntParam("m"), aemilia.IntParam("d")},
			aemilia.Ch(
				// On-time frame, room available.
				aemilia.When(expr.Bin(expr.OpAnd,
					expr.Bin(expr.OpEq, d, expr.Int(0)),
					expr.Bin(expr.OpLt, m, bCap)),
					aemilia.Pre("receive_frame_b", p.passive(),
						aemilia.Invoke("Client_Buffer",
							expr.Bin(expr.OpAdd, m, expr.Int(1)), d))),
				// On-time frame, buffer full: overflow loss.
				aemilia.When(expr.Bin(expr.OpAnd,
					expr.Bin(expr.OpEq, d, expr.Int(0)),
					expr.Bin(expr.OpEq, m, bCap)),
					aemilia.Pre("receive_frame_b", p.passive(),
						aemilia.Pre("lose_frame_b", p.imm(1),
							aemilia.Invoke("Client_Buffer", m, d)))),
				// Frame too far past its deadline: stale, discard.
				aemilia.When(expr.Bin(expr.OpGt, d, slack),
					aemilia.Pre("receive_frame_b", p.passive(),
						aemilia.Pre("discard_stale_frame", p.imm(1),
							aemilia.Invoke("Client_Buffer", m,
								expr.Bin(expr.OpSub, d, expr.Int(1)))))),
				// Late frame within the slack: still rendered, the
				// playout point slips by one deadline.
				aemilia.When(expr.Bin(expr.OpAnd,
					expr.Bin(expr.OpAnd,
						expr.Bin(expr.OpGt, d, expr.Int(0)),
						expr.Bin(expr.OpLe, d, slack)),
					expr.Bin(expr.OpLt, m, bCap)),
					aemilia.Pre("receive_frame_b", p.passive(),
						aemilia.Invoke("Client_Buffer",
							expr.Bin(expr.OpAdd, m, expr.Int(1)),
							expr.Bin(expr.OpSub, d, expr.Int(1))))),
				aemilia.When(expr.Bin(expr.OpAnd,
					expr.Bin(expr.OpAnd,
						expr.Bin(expr.OpGt, d, expr.Int(0)),
						expr.Bin(expr.OpLe, d, slack)),
					expr.Bin(expr.OpEq, m, bCap)),
					aemilia.Pre("receive_frame_b", p.passive(),
						aemilia.Pre("lose_frame_b", p.imm(1),
							aemilia.Invoke("Client_Buffer", m, d)))),
				// Client takes a frame.
				aemilia.When(expr.Bin(expr.OpGt, m, expr.Int(0)),
					aemilia.Pre("get_frame", p.passive(),
						aemilia.Invoke("Client_Buffer",
							expr.Bin(expr.OpSub, m, expr.Int(1)), d))),
				// Missed deadline: debt grows, saturating at the cap.
				aemilia.When(expr.Bin(expr.OpAnd,
					expr.Bin(expr.OpEq, m, expr.Int(0)),
					expr.Bin(expr.OpLt, d, debtCap)),
					aemilia.Pre("miss_frame", p.passive(),
						aemilia.Invoke("Client_Buffer", m,
							expr.Bin(expr.OpAdd, d, expr.Int(1))))),
				aemilia.When(expr.Bin(expr.OpAnd,
					expr.Bin(expr.OpEq, m, expr.Int(0)),
					expr.Bin(expr.OpGe, d, debtCap)),
					aemilia.Pre("miss_frame", p.passive(),
						aemilia.Invoke("Client_Buffer", m, d))),
			)),
	)

	client := aemilia.NewElemType("Video_Client_Type", nil,
		[]string{"get_frame", "miss_frame"},
		aemilia.NewBehavior("Init_Client", nil,
			aemilia.Pre("start_delay", p.expMean(p.MeanInitialDelay), aemilia.Invoke("Waiting_Period"))),
		aemilia.NewBehavior("Waiting_Period", nil,
			aemilia.Pre("render_frame", p.expMean(p.MeanRenderInterval), aemilia.Invoke("Fetching_Client"))),
		aemilia.NewBehavior("Fetching_Client", nil, aemilia.Ch(
			aemilia.Pre("get_frame", p.imm(1), aemilia.Invoke("Waiting_Period")),
			aemilia.Pre("miss_frame", p.imm(1), aemilia.Invoke("Waiting_Period")),
		)),
	)

	elems := []*aemilia.ElemType{server, ap, channel, nic, buf, client}
	insts := []*aemilia.Instance{
		aemilia.NewInstance("S", "Server_Type"),
		aemilia.NewInstance("AP", "AP_Type", expr.Int(0)),
		aemilia.NewInstance("RSC", "Frame_Channel_Type"),
		aemilia.NewInstance("NIC", "NIC_Type"),
		aemilia.NewInstance("B", "Client_Buffer_Type", expr.Int(0), expr.Int(0)),
		aemilia.NewInstance("C", "Video_Client_Type"),
	}
	atts := []aemilia.Attachment{
		aemilia.Attach("S", "send_frame", "AP", "receive_frame"),
		aemilia.Attach("AP", "send_frame_ap", "RSC", "get_frame"),
		aemilia.Attach("RSC", "deliver_frame", "NIC", "receive_frame_nic"),
		aemilia.Attach("NIC", "forward_frame", "B", "receive_frame_b"),
		aemilia.Attach("C", "get_frame", "B", "get_frame"),
		aemilia.Attach("C", "miss_frame", "B", "miss_frame"),
	}

	if p.WithDPM {
		// The PSP power manager: it observes the AP buffer becoming empty
		// (with the shutdown delay), dozes the NIC, and wakes it up
		// periodically.
		dpm := aemilia.NewElemType("DPM_Type",
			[]string{"observe_empty"},
			[]string{"send_shutdown", "send_wakeup"},
			aemilia.NewBehavior("Watch_DPM", nil,
				aemilia.Pre("observe_empty", p.expMean(p.MeanShutdownDelay), aemilia.Invoke("Shut_DPM"))),
			aemilia.NewBehavior("Shut_DPM", nil,
				aemilia.Pre("send_shutdown", p.imm(1), aemilia.Invoke("Sleep_DPM"))),
			aemilia.NewBehavior("Sleep_DPM", nil,
				aemilia.Pre("send_wakeup", p.wakeupRate(), aemilia.Invoke("Watch_DPM"))),
		)
		elems = append(elems, dpm)
		insts = append(insts, aemilia.NewInstance("DPM", "DPM_Type"))
		atts = append(atts,
			aemilia.Attach("AP", "status_empty", "DPM", "observe_empty"),
			aemilia.Attach("DPM", "send_shutdown", "NIC", "receive_shutdown"),
			aemilia.Attach("DPM", "send_wakeup", "NIC", "receive_wakeup"),
		)
	}

	a := aemilia.NewArchiType("Streaming_DPM", elems, insts, atts)
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// StreamingHighLabels returns the high (power-command) labels of the
// streaming model: everything the DPM does, including its observation of
// the AP buffer.
func StreamingHighLabels() []string {
	return []string{
		"AP.status_empty#DPM.observe_empty",
		"DPM.send_shutdown#NIC.receive_shutdown",
		"DPM.send_wakeup#NIC.receive_wakeup",
	}
}

// StreamingMeasures returns the raw reward measures from which the four
// metrics of paper Sect. 4.2 (energy per frame, loss, miss, quality) are
// derived by the experiments.
func StreamingMeasures(p StreamingParams) []measure.Measure {
	return []measure.Measure{
		{Name: "nic_energy", Clauses: []measure.Clause{
			{Instance: "NIC", Action: "monitor_nic_awake", Kind: measure.StateReward, Value: p.PowerAwake},
			{Instance: "NIC", Action: "monitor_nic_waking", Kind: measure.StateReward, Value: p.PowerWaking},
			{Instance: "NIC", Action: "monitor_nic_doze", Kind: measure.StateReward, Value: p.PowerDoze},
		}},
		{Name: "frames_delivered", Clauses: []measure.Clause{
			{Instance: "C", Action: "get_frame", Kind: measure.TransReward, Value: 1},
		}},
		{Name: "frames_missed", Clauses: []measure.Clause{
			{Instance: "C", Action: "miss_frame", Kind: measure.TransReward, Value: 1},
		}},
		{Name: "frames_sent", Clauses: []measure.Clause{
			{Instance: "S", Action: "send_frame", Kind: measure.TransReward, Value: 1},
		}},
		{Name: "frames_lost", Clauses: []measure.Clause{
			{Instance: "AP", Action: "lose_frame_ap", Kind: measure.TransReward, Value: 1},
			{Instance: "B", Action: "lose_frame_b", Kind: measure.TransReward, Value: 1},
		}},
	}
}

// StreamingGeneralDistributions returns the duration overrides of the
// general streaming model (paper Sect. 5.3): constant bit-rate video
// (deterministic frame and render intervals), deterministic NIC latencies
// and PSP periods, and a Gaussian radio channel.
func StreamingGeneralDistributions(p StreamingParams) map[sim.Activity]dist.Distribution {
	m := map[sim.Activity]dist.Distribution{
		{Instance: "S", Action: "produce_frame"}: dist.NewDet(p.MeanFrameInterval),
		{Instance: "C", Action: "start_delay"}:   dist.NewDet(p.MeanInitialDelay),
		{Instance: "C", Action: "render_frame"}:  dist.NewDet(p.MeanRenderInterval),
		{Instance: "NIC", Action: "awake_nic"}:   dist.NewDet(p.MeanWakeTime),
		{Instance: "NIC", Action: "check_done"}:  dist.NewDet(p.MeanCheckTime),
		{Instance: "RSC", Action: "propagate_frame"}: dist.NewNormal(
			p.MeanPropagationTime, p.PropagationSigma),
	}
	if p.WithDPM {
		m[sim.Activity{Instance: "DPM", Action: "observe_empty"}] = dist.NewDet(p.MeanShutdownDelay)
		if p.AwakePeriod > 0 {
			m[sim.Activity{Instance: "DPM", Action: "send_wakeup"}] = dist.NewDet(p.AwakePeriod)
		}
	}
	return m
}

// StreamingExponentialDistributions returns exponential overrides with the
// same means, for cross-validating the simulator against the CTMC
// solution (paper Sect. 5.1).
func StreamingExponentialDistributions(p StreamingParams) map[sim.Activity]dist.Distribution {
	m := map[sim.Activity]dist.Distribution{
		{Instance: "S", Action: "produce_frame"}:     dist.ExpWithMean(p.MeanFrameInterval),
		{Instance: "C", Action: "start_delay"}:       dist.ExpWithMean(p.MeanInitialDelay),
		{Instance: "C", Action: "render_frame"}:      dist.ExpWithMean(p.MeanRenderInterval),
		{Instance: "NIC", Action: "awake_nic"}:       dist.ExpWithMean(p.MeanWakeTime),
		{Instance: "NIC", Action: "check_done"}:      dist.ExpWithMean(p.MeanCheckTime),
		{Instance: "RSC", Action: "propagate_frame"}: dist.ExpWithMean(p.MeanPropagationTime),
	}
	if p.WithDPM {
		m[sim.Activity{Instance: "DPM", Action: "observe_empty"}] = dist.ExpWithMean(p.MeanShutdownDelay)
		if p.AwakePeriod > 0 {
			m[sim.Activity{Instance: "DPM", Action: "send_wakeup"}] = dist.ExpWithMean(p.AwakePeriod)
		}
	}
	return m
}
