// Package models contains the two case studies of the paper as
// parameterized architectural descriptions:
//
//   - rpc: a power-manageable server receiving remote procedure calls from
//     a blocking client over lossy half-duplex radio channels, with a DPM
//     issuing shutdown commands (Sect. 2.1);
//   - streaming: a streaming-video server reaching a mobile client through
//     an access point and a power-manageable 802.11b network interface
//     card running the PSP (doze mode) policy (Sect. 2.2).
//
// Each case study comes in the three flavours of the incremental
// methodology: a functional (untimed) model for the noninterference
// analysis, a Markovian model for the CTMC analysis, and the general model
// — the Markovian model plus non-exponential duration overrides for the
// simulator.
package models

import (
	"repro/internal/aemilia"
	"repro/internal/dist"
	"repro/internal/measure"
	"repro/internal/rates"
	"repro/internal/sim"
)

// Mode selects the timing flavour of a model.
type Mode int

// Model flavours.
const (
	// Functional builds the untimed model of the first phase.
	Functional Mode = iota + 1
	// Markovian builds the exponentially timed model of the second phase.
	Markovian
)

// RPCParams collects the rpc parameters; times are in milliseconds and
// match Sect. 4.1 of the paper.
type RPCParams struct {
	// Mode selects the functional or Markovian flavour.
	Mode Mode
	// WithDPM controls whether the DPM issues shutdown commands; when
	// false the DPM component is still present (to keep the topology
	// identical) but never acts.
	WithDPM bool
	// Policy selects the DPM decision scheme; the zero value resolves to
	// PolicyTimeout (or PolicyNone when WithDPM is false).
	Policy Policy
	// ShutdownInterruptsService makes the server sensitive to shutdown
	// commands while busy, aborting the service in progress (the
	// application-dependent variant of paper Sect. 2.1). The lost request
	// is recovered by the client's retransmission timeout.
	ShutdownInterruptsService bool
	// MeanServiceTime is the server's service time (paper: 0.2 ms).
	MeanServiceTime float64
	// MeanAwakeTime is the sleeping→busy wakeup latency (paper: 3 ms).
	MeanAwakeTime float64
	// MeanPropagationTime is the radio propagation delay (paper: 0.8 ms).
	MeanPropagationTime float64
	// PropagationSigma is the standard deviation of the normal
	// propagation delay in the general model (paper: 0.0345 ms).
	PropagationSigma float64
	// LossProb is the per-packet loss probability (paper: 0.02).
	LossProb float64
	// MeanProcessingTime is the client's result processing time
	// (paper: 9.7 ms).
	MeanProcessingTime float64
	// MeanClientTimeout is the client's retransmission timeout
	// (paper: 2 ms).
	MeanClientTimeout float64
	// ShutdownTimeout is the DPM's idle timeout before issuing a shutdown
	// (paper: swept 0–25 ms); 0 means "shut down as soon as idle".
	ShutdownTimeout float64
	// PowerIdle, PowerBusy and PowerAwaking are the server power levels
	// used by the energy reward (paper: 2, 3, 2; sleeping consumes 0).
	PowerIdle, PowerBusy, PowerAwaking float64
	// ParametricTimeout binds the shutdown-timeout rate to rate slot
	// RPCTimeoutSlot instead of a plain constant, so a timeout sweep can
	// generate the state space once and rebind the rate per point
	// (core.Phase2Sweep). Only meaningful in Markovian mode with a
	// positive ShutdownTimeout — the ShutdownTimeout <= 0 variant is a
	// structurally different model (the shutdown becomes immediate) and
	// cannot be reached by rebinding.
	ParametricTimeout bool
}

// RPCTimeoutSlot is the rate slot of the DPM shutdown-timeout rate when
// RPCParams.ParametricTimeout is set: a sweep point's value for this slot
// is 1/ShutdownTimeout.
const RPCTimeoutSlot = 1

// DefaultRPCParams returns the parameter set of paper Sect. 4.1.
func DefaultRPCParams() RPCParams {
	return RPCParams{
		Mode:                Markovian,
		WithDPM:             true,
		MeanServiceTime:     0.2,
		MeanAwakeTime:       3,
		MeanPropagationTime: 0.8,
		PropagationSigma:    0.0345,
		LossProb:            0.02,
		MeanProcessingTime:  9.7,
		MeanClientTimeout:   2,
		ShutdownTimeout:     5,
		PowerIdle:           2,
		PowerBusy:           3,
		PowerAwaking:        2,
	}
}

// rate helpers returning untimed annotations in functional mode.

func (p RPCParams) expMean(mean float64) rates.Rate {
	if p.Mode == Functional {
		return rates.UntimedRate()
	}
	return rates.ExpRate(1 / mean)
}

func (p RPCParams) imm(weight float64) rates.Rate {
	if p.Mode == Functional {
		return rates.UntimedRate()
	}
	return rates.Inf(1, weight)
}

func (p RPCParams) passive() rates.Rate {
	if p.Mode == Functional {
		return rates.UntimedRate()
	}
	return rates.PassiveRate()
}

// BuildRPCSimplified returns the simplified untimed rpc model of paper
// Sect. 2.3: ideal radio channels, a blocking client without timeout, a
// trivial DPM, and a server sensitive to shutdown in every active state.
// This is the model that fails the noninterference check in Sect. 3.1.
func BuildRPCSimplified() (*aemilia.ArchiType, error) {
	u := rates.UntimedRate()
	server := aemilia.NewElemType("Server_Type",
		[]string{"receive_rpc_packet", "receive_shutdown"},
		[]string{"send_result_packet"},
		aemilia.NewBehavior("Idle_Server", nil, aemilia.Ch(
			aemilia.Pre("receive_rpc_packet", u, aemilia.Invoke("Busy_Server")),
			aemilia.Pre("receive_shutdown", u, aemilia.Invoke("Sleeping_Server")),
		)),
		aemilia.NewBehavior("Busy_Server", nil, aemilia.Ch(
			aemilia.Pre("prepare_result_packet", u, aemilia.Invoke("Responding_Server")),
			aemilia.Pre("receive_shutdown", u, aemilia.Invoke("Sleeping_Server")),
		)),
		aemilia.NewBehavior("Responding_Server", nil, aemilia.Ch(
			aemilia.Pre("send_result_packet", u, aemilia.Invoke("Idle_Server")),
			aemilia.Pre("receive_shutdown", u, aemilia.Invoke("Sleeping_Server")),
		)),
		aemilia.NewBehavior("Sleeping_Server", nil,
			aemilia.Pre("receive_rpc_packet", u, aemilia.Invoke("Awaking_Server"))),
		aemilia.NewBehavior("Awaking_Server", nil,
			aemilia.Pre("awake", u, aemilia.Invoke("Busy_Server"))),
	)
	channel := aemilia.NewElemType("Radio_Channel_Type",
		[]string{"get_packet"}, []string{"deliver_packet"},
		aemilia.NewBehavior("Radio_Channel", nil,
			aemilia.Pre("get_packet", u,
				aemilia.Pre("propagate_packet", u,
					aemilia.Pre("deliver_packet", u, aemilia.Invoke("Radio_Channel"))))),
	)
	client := aemilia.NewElemType("Sync_Client_Type",
		[]string{"receive_result_packet"}, []string{"send_rpc_packet"},
		aemilia.NewBehavior("Sync_Client", nil,
			aemilia.Pre("send_rpc_packet", u,
				aemilia.Pre("receive_result_packet", u,
					aemilia.Pre("process_result_packet", u, aemilia.Invoke("Sync_Client"))))),
	)
	dpm := aemilia.NewElemType("DPM_Type", nil, []string{"send_shutdown"},
		aemilia.NewBehavior("DPM_Beh", nil,
			aemilia.Pre("send_shutdown", u, aemilia.Invoke("DPM_Beh"))),
	)
	a := aemilia.NewArchiType("RPC_DPM_Untimed",
		[]*aemilia.ElemType{server, channel, client, dpm},
		[]*aemilia.Instance{
			aemilia.NewInstance("S", "Server_Type"),
			aemilia.NewInstance("RCS", "Radio_Channel_Type"),
			aemilia.NewInstance("RSC", "Radio_Channel_Type"),
			aemilia.NewInstance("C", "Sync_Client_Type"),
			aemilia.NewInstance("DPM", "DPM_Type"),
		},
		[]aemilia.Attachment{
			aemilia.Attach("C", "send_rpc_packet", "RCS", "get_packet"),
			aemilia.Attach("RCS", "deliver_packet", "S", "receive_rpc_packet"),
			aemilia.Attach("S", "send_result_packet", "RSC", "get_packet"),
			aemilia.Attach("RSC", "deliver_packet", "C", "receive_result_packet"),
			aemilia.Attach("DPM", "send_shutdown", "S", "receive_shutdown"),
		},
	)
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// BuildRPCRevised returns the revised rpc model of paper Sect. 3.1: lossy
// channels, a client with a retransmission timeout, a server that ignores
// stale packets and notifies the DPM of its busy/idle state, and a DPM
// that only shuts the server down while it is idle.
func BuildRPCRevised(p RPCParams) (*aemilia.ArchiType, error) {
	busyBranches := []aemilia.Process{
		aemilia.Pre("prepare_result_packet", p.expMean(p.MeanServiceTime),
			aemilia.Invoke("Responding_Server")),
		aemilia.Pre("receive_rpc_packet", p.passive(),
			aemilia.Pre("ignore_rpc_packet", p.imm(1), aemilia.Invoke("Busy_Server"))),
		aemilia.Pre("monitor_busy_server", rates.PassiveRate(), aemilia.Invoke("Busy_Server")),
	}
	respondingBranches := []aemilia.Process{
		aemilia.Pre("send_result_packet", p.imm(1),
			aemilia.Pre("notify_idle", p.imm(1), aemilia.Invoke("Idle_Server"))),
		aemilia.Pre("receive_rpc_packet", p.passive(),
			aemilia.Pre("ignore_rpc_packet", p.imm(1), aemilia.Invoke("Responding_Server"))),
		aemilia.Pre("monitor_busy_server", rates.PassiveRate(), aemilia.Invoke("Responding_Server")),
	}
	if p.ShutdownInterruptsService {
		// The service in progress is aborted; the DPM must learn that the
		// server is no longer busy so that the next idle notice is not
		// spurious — the sleeping server re-notifies on wake-up instead,
		// so here the abort is silent and the request is simply lost.
		interrupt := aemilia.Pre("receive_shutdown", p.passive(),
			aemilia.Pre("abort_service", p.imm(1), aemilia.Invoke("Sleeping_Server")))
		busyBranches = append(busyBranches, interrupt)
		respondingBranches = append(respondingBranches,
			aemilia.Pre("receive_shutdown", p.passive(),
				aemilia.Pre("abort_service", p.imm(1), aemilia.Invoke("Sleeping_Server"))))
	}
	server := aemilia.NewElemType("Server_Type",
		[]string{"receive_rpc_packet", "receive_shutdown"},
		[]string{"send_result_packet", "notify_busy", "notify_idle",
			"monitor_idle_server", "monitor_busy_server", "monitor_awaking_server"},
		aemilia.NewBehavior("Idle_Server", nil, aemilia.Ch(
			aemilia.Pre("receive_rpc_packet", p.passive(),
				aemilia.Pre("notify_busy", p.imm(1), aemilia.Invoke("Busy_Server"))),
			aemilia.Pre("receive_shutdown", p.passive(), aemilia.Invoke("Sleeping_Server")),
			aemilia.Pre("monitor_idle_server", rates.PassiveRate(), aemilia.Invoke("Idle_Server")),
		)),
		aemilia.NewBehavior("Busy_Server", nil, aemilia.Ch(busyBranches...)),
		aemilia.NewBehavior("Responding_Server", nil, aemilia.Ch(respondingBranches...)),
		aemilia.NewBehavior("Sleeping_Server", nil,
			aemilia.Pre("receive_rpc_packet", p.passive(), aemilia.Invoke("Awaking_Server"))),
		aemilia.NewBehavior("Awaking_Server", nil, aemilia.Ch(
			aemilia.Pre("awake", p.expMean(p.MeanAwakeTime), aemilia.Invoke("Busy_Server")),
			aemilia.Pre("receive_rpc_packet", p.passive(),
				aemilia.Pre("ignore_rpc_packet", p.imm(1), aemilia.Invoke("Awaking_Server"))),
			aemilia.Pre("monitor_awaking_server", rates.PassiveRate(), aemilia.Invoke("Awaking_Server")),
		)),
	)

	keepW := 1 - p.LossProb
	loseW := p.LossProb
	channel := aemilia.NewElemType("Radio_Channel_Type",
		[]string{"get_packet"}, []string{"deliver_packet"},
		aemilia.NewBehavior("Radio_Channel", nil,
			aemilia.Pre("get_packet", p.passive(),
				aemilia.Pre("propagate_packet", p.expMean(p.MeanPropagationTime),
					aemilia.Ch(
						aemilia.Pre("keep_packet", p.imm(keepW),
							aemilia.Pre("deliver_packet", p.imm(1), aemilia.Invoke("Radio_Channel"))),
						aemilia.Pre("lose_packet", p.imm(loseW), aemilia.Invoke("Radio_Channel")),
					)))),
	)

	client := aemilia.NewElemType("Sync_Client_Type",
		[]string{"receive_result_packet"},
		[]string{"send_rpc_packet", "monitor_waiting_client"},
		aemilia.NewBehavior("Requesting_Client", nil, aemilia.Ch(
			aemilia.Pre("send_rpc_packet", p.imm(1), aemilia.Invoke("Waiting_Client")),
			aemilia.Pre("receive_result_packet", p.passive(),
				aemilia.Pre("ignore_result_packet", p.imm(1), aemilia.Invoke("Requesting_Client"))),
		)),
		aemilia.NewBehavior("Waiting_Client", nil, aemilia.Ch(
			aemilia.Pre("receive_result_packet", p.passive(), aemilia.Invoke("Processing_Client")),
			aemilia.Pre("expire_timeout", p.expMean(p.MeanClientTimeout), aemilia.Invoke("Resending_Client")),
			aemilia.Pre("monitor_waiting_client", rates.PassiveRate(), aemilia.Invoke("Waiting_Client")),
		)),
		aemilia.NewBehavior("Processing_Client", nil, aemilia.Ch(
			aemilia.Pre("process_result_packet", p.expMean(p.MeanProcessingTime),
				aemilia.Invoke("Requesting_Client")),
			aemilia.Pre("receive_result_packet", p.passive(),
				aemilia.Pre("ignore_result_packet", p.imm(1), aemilia.Invoke("Processing_Client"))),
		)),
		aemilia.NewBehavior("Resending_Client", nil, aemilia.Ch(
			aemilia.Pre("send_rpc_packet", p.imm(1), aemilia.Invoke("Waiting_Client")),
			aemilia.Pre("receive_result_packet", p.passive(), aemilia.Invoke("Processing_Client")),
		)),
	)

	// DPM: the decision policy of Sect. 2.1 (timeout by default; see
	// Policy for the trivial and predictive variants).
	dpm := buildDPMType(p)

	a := aemilia.NewArchiType("RPC_DPM_Revised",
		[]*aemilia.ElemType{server, channel, client, dpm},
		[]*aemilia.Instance{
			aemilia.NewInstance("S", "Server_Type"),
			aemilia.NewInstance("RCS", "Radio_Channel_Type"),
			aemilia.NewInstance("RSC", "Radio_Channel_Type"),
			aemilia.NewInstance("C", "Sync_Client_Type"),
			aemilia.NewInstance("DPM", "DPM_Type", dpmInstanceArgs(p)...),
		},
		[]aemilia.Attachment{
			aemilia.Attach("C", "send_rpc_packet", "RCS", "get_packet"),
			aemilia.Attach("RCS", "deliver_packet", "S", "receive_rpc_packet"),
			aemilia.Attach("S", "send_result_packet", "RSC", "get_packet"),
			aemilia.Attach("RSC", "deliver_packet", "C", "receive_result_packet"),
			aemilia.Attach("DPM", "send_shutdown", "S", "receive_shutdown"),
			aemilia.Attach("S", "notify_busy", "DPM", "receive_busy_notice"),
			aemilia.Attach("S", "notify_idle", "DPM", "receive_idle_notice"),
		},
	)
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// RPCHighLabels returns the high (power-command) labels of the rpc models:
// only the shutdown synchronization modifies the server's power state
// (the busy/idle notifications are observations, not commands).
func RPCHighLabels() []string {
	return []string{"DPM.send_shutdown#S.receive_shutdown"}
}

// RPCMeasures returns the three reward measures of paper Sect. 4.1.
// Energy per request is derived as energy/throughput by the experiments.
func RPCMeasures(p RPCParams) []measure.Measure {
	return []measure.Measure{
		{Name: "throughput", Clauses: []measure.Clause{
			{Instance: "C", Action: "process_result_packet", Kind: measure.TransReward, Value: 1},
		}},
		{Name: "waiting_time", Clauses: []measure.Clause{
			{Instance: "C", Action: "monitor_waiting_client", Kind: measure.StateReward, Value: 1},
		}},
		{Name: "energy", Clauses: []measure.Clause{
			{Instance: "S", Action: "monitor_idle_server", Kind: measure.StateReward, Value: p.PowerIdle},
			{Instance: "S", Action: "monitor_busy_server", Kind: measure.StateReward, Value: p.PowerBusy},
			{Instance: "S", Action: "monitor_awaking_server", Kind: measure.StateReward, Value: p.PowerAwaking},
		}},
	}
}

// RPCGeneralDistributions returns the duration overrides that turn the
// Markovian rpc model into the general model of paper Sect. 5.2: service,
// wakeup, processing, timeout and shutdown become deterministic; the
// radio propagation becomes normal with the measured standard deviation.
func RPCGeneralDistributions(p RPCParams) map[sim.Activity]dist.Distribution {
	m := map[sim.Activity]dist.Distribution{
		{Instance: "S", Action: "prepare_result_packet"}: dist.NewDet(p.MeanServiceTime),
		{Instance: "S", Action: "awake"}:                 dist.NewDet(p.MeanAwakeTime),
		{Instance: "C", Action: "process_result_packet"}: dist.NewDet(p.MeanProcessingTime),
		{Instance: "C", Action: "expire_timeout"}:        dist.NewDet(p.MeanClientTimeout),
		{Instance: "RCS", Action: "propagate_packet"}:    dist.NewNormal(p.MeanPropagationTime, p.PropagationSigma),
		{Instance: "RSC", Action: "propagate_packet"}:    dist.NewNormal(p.MeanPropagationTime, p.PropagationSigma),
	}
	if p.WithDPM && p.ShutdownTimeout > 0 {
		if p.Policy == PolicyTrivial {
			m[sim.Activity{Instance: "DPM", Action: "tick"}] = dist.NewDet(p.ShutdownTimeout)
		} else {
			m[sim.Activity{Instance: "DPM", Action: "send_shutdown"}] = dist.NewDet(p.ShutdownTimeout)
		}
	}
	return m
}

// RPCExponentialDistributions returns exponential overrides with the same
// means as the general model — the cross-validation configuration of
// paper Sect. 5.1 (simulating the Markovian model).
func RPCExponentialDistributions(p RPCParams) map[sim.Activity]dist.Distribution {
	m := map[sim.Activity]dist.Distribution{
		{Instance: "S", Action: "prepare_result_packet"}: dist.ExpWithMean(p.MeanServiceTime),
		{Instance: "S", Action: "awake"}:                 dist.ExpWithMean(p.MeanAwakeTime),
		{Instance: "C", Action: "process_result_packet"}: dist.ExpWithMean(p.MeanProcessingTime),
		{Instance: "C", Action: "expire_timeout"}:        dist.ExpWithMean(p.MeanClientTimeout),
		{Instance: "RCS", Action: "propagate_packet"}:    dist.ExpWithMean(p.MeanPropagationTime),
		{Instance: "RSC", Action: "propagate_packet"}:    dist.ExpWithMean(p.MeanPropagationTime),
	}
	if p.WithDPM && p.ShutdownTimeout > 0 {
		if p.Policy == PolicyTrivial {
			m[sim.Activity{Instance: "DPM", Action: "tick"}] = dist.ExpWithMean(p.ShutdownTimeout)
		} else {
			m[sim.Activity{Instance: "DPM", Action: "send_shutdown"}] = dist.ExpWithMean(p.ShutdownTimeout)
		}
	}
	return m
}
