package dist

import (
	"math"
	"strings"
	"testing"

	"repro/internal/rng"
)

// checkMean verifies that the empirical mean of d matches d.Mean().
func checkMean(t *testing.T, d Distribution, tol float64) {
	t.Helper()
	r := rng.New(123)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := d.Sample(r)
		if v < 0 {
			t.Fatalf("%s: negative sample %v", d, v)
		}
		sum += v
	}
	mean := sum / n
	want := d.Mean()
	if math.Abs(mean-want) > tol*math.Max(want, 0.01) {
		t.Errorf("%s: empirical mean %v, want ~%v", d, mean, want)
	}
}

func TestExp(t *testing.T) {
	d := NewExp(4)
	if d.Mean() != 0.25 {
		t.Errorf("Mean = %v", d.Mean())
	}
	checkMean(t, d, 0.02)
	if ExpWithMean(0.2).Lambda != 5 {
		t.Errorf("ExpWithMean wrong")
	}
}

func TestDet(t *testing.T) {
	d := NewDet(3.5)
	r := rng.New(1)
	for i := 0; i < 10; i++ {
		if d.Sample(r) != 3.5 {
			t.Fatal("deterministic sample varies")
		}
	}
	if d.Mean() != 3.5 {
		t.Errorf("Mean = %v", d.Mean())
	}
}

func TestUniform(t *testing.T) {
	d := NewUniform(1, 3)
	if d.Mean() != 2 {
		t.Errorf("Mean = %v", d.Mean())
	}
	r := rng.New(2)
	for i := 0; i < 10000; i++ {
		v := d.Sample(r)
		if v < 1 || v > 3 {
			t.Fatalf("uniform sample %v out of [1,3]", v)
		}
	}
	checkMean(t, d, 0.02)
}

func TestNormalTruncated(t *testing.T) {
	d := NewNormal(0.8, 0.0345) // the paper's radio channel
	checkMean(t, d, 0.02)
	// Heavily truncated case still returns non-negative values.
	bad := NewNormal(-10, 0.1)
	r := rng.New(3)
	if v := bad.Sample(r); v < 0 {
		t.Errorf("truncated normal returned %v", v)
	}
}

func TestErlang(t *testing.T) {
	d := NewErlang(3, 2)
	if d.Mean() != 1.5 {
		t.Errorf("Mean = %v", d.Mean())
	}
	checkMean(t, d, 0.02)
}

func TestErlangVarianceBelowExp(t *testing.T) {
	// Erlang(k) with the same mean has variance mean²/k < mean².
	r := rng.New(4)
	d := NewErlang(4, 4) // mean 1, variance 0.25
	const n = 100000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := d.Sample(r)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(variance-0.25) > 0.02 {
		t.Errorf("Erlang(4) variance = %v, want ~0.25", variance)
	}
}

func TestWeibull(t *testing.T) {
	d := NewWeibull(1, 2) // k=1 reduces to exp with mean 2
	if math.Abs(d.Mean()-2) > 1e-12 {
		t.Errorf("Mean = %v, want 2", d.Mean())
	}
	checkMean(t, d, 0.02)
	checkMean(t, NewWeibull(2, 1), 0.02)
}

func TestStrings(t *testing.T) {
	tests := []struct {
		d    Distribution
		want string
	}{
		{NewExp(2), "exp(rate=2)"},
		{NewDet(3), "det(3)"},
		{NewUniform(0, 1), "uniform(0, 1)"},
		{NewNormal(0.8, 0.03), "normal(0.8, 0.03)"},
		{NewErlang(2, 3), "erlang(2, rate=3)"},
	}
	for _, tt := range tests {
		if got := tt.d.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
	if !strings.HasPrefix(NewWeibull(2, 1).String(), "weibull(") {
		t.Error("weibull String wrong")
	}
}

func TestSamplingDeterministicAcrossRuns(t *testing.T) {
	d := NewNormal(1, 0.5)
	a, b := rng.New(99), rng.New(99)
	for i := 0; i < 100; i++ {
		if d.Sample(a) != d.Sample(b) {
			t.Fatal("sampling not reproducible")
		}
	}
}
