// Package dist provides the probability distributions the general models
// draw activity durations from: exponential (the Markovian baseline),
// deterministic, uniform, normal truncated at zero (the paper's Gaussian
// radio-channel model), Erlang, and Weibull. Every distribution reports
// its mean so that general models can be parameterized consistently with
// the Markovian ones during cross-validation (paper Sect. 5.1).
package dist

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Distribution is a non-negative duration distribution.
type Distribution interface {
	// Sample draws one duration.
	Sample(r *rng.Rand) float64
	// Mean returns the expected value.
	Mean() float64
	// String renders the distribution and its parameters.
	String() string
}

// Exp is an exponential distribution with rate Lambda.
type Exp struct {
	// Lambda is the rate (1/mean); must be positive.
	Lambda float64
}

var _ Distribution = Exp{}

// NewExp builds an exponential distribution from its rate.
func NewExp(lambda float64) Exp { return Exp{Lambda: lambda} }

// ExpWithMean builds an exponential distribution from its mean.
func ExpWithMean(mean float64) Exp { return Exp{Lambda: 1 / mean} }

// Sample implements Distribution.
func (d Exp) Sample(r *rng.Rand) float64 { return r.ExpFloat64(d.Lambda) }

// Mean implements Distribution.
func (d Exp) Mean() float64 { return 1 / d.Lambda }

// String implements Distribution.
func (d Exp) String() string { return fmt.Sprintf("exp(rate=%g)", d.Lambda) }

// Det is a deterministic (constant) duration.
type Det struct {
	// Value is the constant duration; must be non-negative.
	Value float64
}

var _ Distribution = Det{}

// NewDet builds a deterministic duration.
func NewDet(v float64) Det { return Det{Value: v} }

// Sample implements Distribution.
func (d Det) Sample(*rng.Rand) float64 { return d.Value }

// Mean implements Distribution.
func (d Det) Mean() float64 { return d.Value }

// String implements Distribution.
func (d Det) String() string { return fmt.Sprintf("det(%g)", d.Value) }

// Uniform is a continuous uniform distribution on [Low, High].
type Uniform struct {
	// Low and High bound the support; Low <= High.
	Low, High float64
}

var _ Distribution = Uniform{}

// NewUniform builds a uniform distribution.
func NewUniform(low, high float64) Uniform { return Uniform{Low: low, High: high} }

// Sample implements Distribution.
func (d Uniform) Sample(r *rng.Rand) float64 {
	return d.Low + (d.High-d.Low)*r.Float64()
}

// Mean implements Distribution.
func (d Uniform) Mean() float64 { return (d.Low + d.High) / 2 }

// String implements Distribution.
func (d Uniform) String() string { return fmt.Sprintf("uniform(%g, %g)", d.Low, d.High) }

// Normal is a normal distribution truncated at zero (negative samples are
// redrawn), matching the Gaussian channel model of the paper with small
// sigma relative to mu.
type Normal struct {
	// Mu and Sigma are the untruncated mean and standard deviation.
	Mu, Sigma float64
}

var _ Distribution = Normal{}

// NewNormal builds a zero-truncated normal distribution.
func NewNormal(mu, sigma float64) Normal { return Normal{Mu: mu, Sigma: sigma} }

// Sample implements Distribution.
func (d Normal) Sample(r *rng.Rand) float64 {
	for i := 0; i < 64; i++ {
		v := d.Mu + d.Sigma*r.NormFloat64()
		if v >= 0 {
			return v
		}
	}
	return 0 // pathological sigma >> mu; clamp
}

// Mean implements Distribution. For sigma << mu the truncation bias is
// negligible, as in the paper's channel model.
func (d Normal) Mean() float64 { return d.Mu }

// String implements Distribution.
func (d Normal) String() string { return fmt.Sprintf("normal(%g, %g)", d.Mu, d.Sigma) }

// Erlang is the sum of K independent exponential phases of rate Lambda.
type Erlang struct {
	// K is the number of phases; must be at least 1.
	K int
	// Lambda is the per-phase rate.
	Lambda float64
}

var _ Distribution = Erlang{}

// NewErlang builds an Erlang distribution.
func NewErlang(k int, lambda float64) Erlang { return Erlang{K: k, Lambda: lambda} }

// Sample implements Distribution.
func (d Erlang) Sample(r *rng.Rand) float64 {
	sum := 0.0
	for i := 0; i < d.K; i++ {
		sum += r.ExpFloat64(d.Lambda)
	}
	return sum
}

// Mean implements Distribution.
func (d Erlang) Mean() float64 { return float64(d.K) / d.Lambda }

// String implements Distribution.
func (d Erlang) String() string { return fmt.Sprintf("erlang(%d, rate=%g)", d.K, d.Lambda) }

// Weibull is a Weibull distribution with shape K and scale Lambda.
type Weibull struct {
	// K is the shape parameter; Lambda the scale.
	K, Lambda float64
}

var _ Distribution = Weibull{}

// NewWeibull builds a Weibull distribution.
func NewWeibull(k, lambda float64) Weibull { return Weibull{K: k, Lambda: lambda} }

// Sample implements Distribution.
func (d Weibull) Sample(r *rng.Rand) float64 {
	return d.Lambda * math.Pow(-math.Log(r.Float64Open()), 1/d.K)
}

// Mean implements Distribution.
func (d Weibull) Mean() float64 { return d.Lambda * math.Gamma(1+1/d.K) }

// String implements Distribution.
func (d Weibull) String() string { return fmt.Sprintf("weibull(%g, %g)", d.K, d.Lambda) }
