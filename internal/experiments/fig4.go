package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/models"
)

// StreamingMetrics are the four streaming indices of paper Fig. 4/6:
// average NIC energy per delivered frame, the probability of losing a
// frame to a buffer-full event (relative to frames sent), the probability
// of violating a real-time constraint on a buffer-empty event (relative
// to fetch attempts), and the overall quality of service (1 − miss).
type StreamingMetrics struct {
	EnergyPerFrame float64
	Loss           float64
	Miss           float64
	Quality        float64
}

// StreamingPoint is one x-axis point of Fig. 4/6: the PSP awake period
// (ms) with the with/without-DPM metric pairs.
type StreamingPoint struct {
	Period         float64
	WithDPM, NoDPM StreamingMetrics
}

// DefaultAwakePeriods is the paper's Fig. 4/6 sweep (0–800 ms). Period 0
// is represented by the smallest positive period of the sweep grid: with
// a vanishing period the NIC re-wakes immediately and the DPM has no
// effect, as the paper observes.
func DefaultAwakePeriods() []float64 {
	return []float64{5, 10, 25, 50, 100, 200, 300, 400, 600, 800}
}

func streamingMetricsFromValues(v map[string]float64) StreamingMetrics {
	delivered := v["frames_delivered"]
	missed := v["frames_missed"]
	sent := v["frames_sent"]
	var m StreamingMetrics
	if delivered > 0 {
		m.EnergyPerFrame = v["nic_energy"] / delivered
	}
	if sent > 0 {
		m.Loss = v["frames_lost"] / sent
	}
	if delivered+missed > 0 {
		m.Miss = missed / (delivered + missed)
	}
	m.Quality = 1 - m.Miss
	return m
}

// streamingParams returns the paper's parameters at the given scale.
func streamingParams(scale Scale) models.StreamingParams {
	p := models.DefaultStreamingParams()
	if scale == Quick {
		p.APCapacity, p.ClientCapacity = 3, 3
	}
	return p
}

// streamingPeriodSweep solves the with-DPM streaming model across
// positive awake periods as one rate-parametric sweep: generated and
// built once, each period rebinds the PSP wakeup rate (slot
// models.StreamingPeriodSlot gets 1/P) before a warm-started solve.
func (r *Runner) streamingPeriodSweep(periods []float64, scale Scale) ([]*core.Phase2Report, error) {
	p := streamingParams(scale)
	p.ParametricPeriod = true
	s, err := r.streamingSession(p)
	if err != nil {
		return nil, err
	}
	points := make([][]float64, len(periods))
	for i, P := range periods {
		points[i] = []float64{1 / P}
	}
	return s.SweepCheckpointed(points, r.checkpointOpts(fmt.Sprintf("fig4-streaming-scale%d", scale)))
}

// Fig4Markov reproduces paper Fig. 4: the Markovian streaming comparison
// across PSP awake periods. Positive periods share a single generated
// state space and built chain (streamingPeriodSweep); a non-positive
// period makes the wakeup immediate — a structurally different model —
// and falls back to a per-point build. Points are solved concurrently
// (Config.Workers) and reported in period order.
func (r *Runner) Fig4Markov(periods []float64, scale Scale) ([]StreamingPoint, error) {
	if periods == nil {
		periods = DefaultAwakePeriods()
	}
	p0 := streamingParams(scale)
	p0.WithDPM = false
	s0, err := r.streamingSession(p0)
	if err != nil {
		return nil, err
	}
	rep0, err := s0.Phase2()
	if err != nil {
		return nil, err
	}
	base := streamingMetricsFromValues(rep0.Values)

	points := make([]StreamingPoint, len(periods))
	var swept []float64
	var sweptIdx, fallback []int
	for i, P := range periods {
		points[i].Period = P
		points[i].NoDPM = base
		if P > 0 {
			swept = append(swept, P)
			sweptIdx = append(sweptIdx, i)
		} else {
			fallback = append(fallback, i)
		}
	}
	if len(swept) > 0 {
		reps, err := r.streamingPeriodSweep(swept, scale)
		if err != nil {
			return nil, err
		}
		for k, rep := range reps {
			points[sweptIdx[k]].WithDPM = streamingMetricsFromValues(rep.Values)
		}
	}
	if len(fallback) > 0 {
		metrics, err := RunPoints(fallback, r.workersOr(0), func(i int) (StreamingMetrics, error) {
			p := streamingParams(scale)
			p.AwakePeriod = periods[i]
			s, err := r.streamingSession(p)
			if err != nil {
				return StreamingMetrics{}, err
			}
			rep, err := s.Phase2()
			if err != nil {
				return StreamingMetrics{}, err
			}
			return streamingMetricsFromValues(rep.Values), nil
		})
		if err != nil {
			return nil, err
		}
		for k, i := range fallback {
			points[i].WithDPM = metrics[k]
		}
	}
	return points, nil
}

// Fig4Rows renders Fig. 4/6 points as table rows.
func Fig4Rows(points []StreamingPoint) ([]string, [][]string) {
	header := []string{"awake_period_ms",
		"energy_per_frame_dpm", "energy_per_frame_nodpm",
		"loss_dpm", "loss_nodpm",
		"miss_dpm", "miss_nodpm",
		"quality_dpm", "quality_nodpm"}
	rows := make([][]string, 0, len(points))
	for _, pt := range points {
		rows = append(rows, []string{
			f(pt.Period),
			f(pt.WithDPM.EnergyPerFrame), f(pt.NoDPM.EnergyPerFrame),
			f(pt.WithDPM.Loss), f(pt.NoDPM.Loss),
			f(pt.WithDPM.Miss), f(pt.NoDPM.Miss),
			f(pt.WithDPM.Quality), f(pt.NoDPM.Quality),
		})
	}
	return header, rows
}
