package experiments

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
)

func TestRunPointsPreservesOrder(t *testing.T) {
	points := []int{10, 20, 30, 40, 50, 60, 70}
	for _, workers := range []int{1, 3, 16} {
		out, err := RunPoints(points, workers, func(p int) (int, error) {
			return p * 2, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		want := []int{20, 40, 60, 80, 100, 120, 140}
		if !reflect.DeepEqual(out, want) {
			t.Errorf("workers=%d: out = %v, want %v", workers, out, want)
		}
	}
}

func TestRunPointsFailFast(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := RunPoints([]int{0, 1, 2, 3, 4, 5}, workers, func(p int) (int, error) {
			if p >= 2 {
				return 0, boom
			}
			return p, nil
		})
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: err = %v, want boom", workers, err)
		}
	}
}

func TestRunPointsEmpty(t *testing.T) {
	out, err := RunPoints(nil, 8, func(p int) (int, error) { return p, nil })
	if err != nil || len(out) != 0 {
		t.Errorf("empty sweep: out=%v err=%v", out, err)
	}
}

// TestFig3GeneralWorkerDeterminism is the tentpole's acceptance check:
// the same seed produces identical sweep output at workers=1 and
// workers=8, both across sweep points and across the replications inside
// each point.
func TestFig3GeneralWorkerDeterminism(t *testing.T) {
	run := func(workers int) []RPCPoint {
		pts, err := Fig3General([]float64{2, 10, 20}, core.SimSettings{
			RunLength: 600, Replications: 4, Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return pts
	}
	seq, par := run(1), run(8)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("Fig3General differs between workers=1 and workers=8:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestFig5ValidationWorkerDeterminism covers the mixed analytic+simulated
// sweep: CTMC solutions and simulation estimates must both be identical
// at any worker count.
func TestFig5ValidationWorkerDeterminism(t *testing.T) {
	run := func(workers int) []ValidationPoint {
		pts, err := Fig5Validation([]float64{5, 20}, core.SimSettings{
			RunLength: 1000, Replications: 3, Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return pts
	}
	seq, par := run(1), run(8)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("Fig5Validation differs between workers=1 and workers=8:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestFig4MarkovWorkerDeterminism pins the pure-Markovian sweep path
// (RunPoints + cached models, no simulation) to the same contract.
func TestFig4MarkovWorkerDeterminism(t *testing.T) {
	old := DefaultWorkers
	defer func() { DefaultWorkers = old }()
	run := func(workers int) []StreamingPoint {
		DefaultWorkers = workers
		pts, err := Fig4Markov([]float64{50, 200, 400}, Quick)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return pts
	}
	seq, par := run(1), run(8)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("Fig4Markov differs between workers=1 and workers=8:\nseq: %+v\npar: %+v", seq, par)
	}
}
