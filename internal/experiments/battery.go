package experiments

import (
	"fmt"

	"repro/internal/lts"
	"repro/internal/models"
)

// BatteryPoint reports the battery-lifetime analysis of one rpc
// configuration: the time until a finite energy budget is exhausted
// (transient analysis, starting from the real initial state rather than
// steady state) and the number of requests served by then — the
// "battery-powered appliance" question behind the paper's title.
type BatteryPoint struct {
	// Policy names the DPM configuration.
	Policy models.Policy
	// Lifetime is the model time at which the budget runs out.
	Lifetime float64
	// RequestsServed is the expected number of completed requests within
	// the lifetime.
	RequestsServed float64
	// MeanPower is the average power drawn over the lifetime.
	MeanPower float64
}

// BatteryLifetime computes, for every DPM policy, how long a battery with
// the given energy budget powers the rpc server, by integrating the
// transient energy rate of the CTMC (uniformization steps of dt). The
// four policies are analysed concurrently (Config.Workers) and reported
// in taxonomy order. The sweep is over policies — a structural parameter
// — so each point stages its own state space (sessions add the measures'
// state predicates automatically); the repeated uniformization steps at
// constant dt reuse one cached Poisson weight vector per chain
// (ctmc.TransientFrom).
func (r *Runner) BatteryLifetime(budget, timeout, dt float64) ([]BatteryPoint, error) {
	if budget <= 0 || dt <= 0 {
		return nil, fmt.Errorf("experiments: budget and dt must be positive")
	}
	policies := []models.Policy{
		models.PolicyNone,
		models.PolicyTrivial,
		models.PolicyTimeout,
		models.PolicyPredictive,
	}
	return RunPoints(policies, r.workersOr(0), func(pol models.Policy) (BatteryPoint, error) {
		p := models.DefaultRPCParams()
		p.Policy = pol
		p.WithDPM = pol != models.PolicyNone
		p.ShutdownTimeout = timeout
		s, err := r.rpcSession(p)
		if err != nil {
			return BatteryPoint{}, err
		}
		measures := models.RPCMeasures(p)
		chain, err := s.Chain()
		if err != nil {
			return BatteryPoint{}, err
		}

		energyAt := func(pi []float64) (float64, error) {
			total := 0.0
			for _, ms := range measures {
				if ms.Name != "energy" {
					continue
				}
				v, err := ms.EvalCTMC(chain, pi)
				if err != nil {
					return 0, err
				}
				total += v
			}
			return total, nil
		}
		throughputAt := func(pi []float64) float64 {
			return chain.Throughput(pi, func(label string) bool {
				return lts.LabelInvolves(label, "C.process_result_packet")
			}, nil)
		}

		// Trapezoidal integration of the transient energy rate until the
		// budget is spent.
		pi := append([]float64(nil), chain.Initial...)
		eRate, err := energyAt(pi)
		if err != nil {
			return BatteryPoint{}, err
		}
		tRate := throughputAt(pi)
		var (
			elapsed  float64
			consumed float64
			served   float64
		)
		const maxSteps = 1_000_000
		for step := 0; consumed < budget; step++ {
			if step >= maxSteps {
				return BatteryPoint{}, fmt.Errorf("experiments: battery integration exceeded %d steps", maxSteps)
			}
			next, err := chain.TransientFromCtx(r.cfg.Ctx, pi, dt, 1e-9)
			if err != nil {
				return BatteryPoint{}, err
			}
			eNext, err := energyAt(next)
			if err != nil {
				return BatteryPoint{}, err
			}
			tNext := throughputAt(next)
			dE := (eRate + eNext) / 2 * dt
			dS := (tRate + tNext) / 2 * dt
			if consumed+dE >= budget {
				// Interpolate the crossing inside the step.
				frac := (budget - consumed) / dE
				elapsed += frac * dt
				served += frac * dS
				consumed = budget
			} else {
				consumed += dE
				served += dS
				elapsed += dt
			}
			pi, eRate, tRate = next, eNext, tNext
		}
		mp := 0.0
		if elapsed > 0 {
			mp = budget / elapsed
		}
		return BatteryPoint{
			Policy:         pol,
			Lifetime:       elapsed,
			RequestsServed: served,
			MeanPower:      mp,
		}, nil
	})
}

// BatteryRows renders battery points as table rows.
func BatteryRows(points []BatteryPoint) ([]string, [][]string) {
	header := []string{"policy", "lifetime_ms", "requests_served", "mean_power"}
	rows := make([][]string, 0, len(points))
	for _, pt := range points {
		rows = append(rows, []string{
			pt.Policy.String(), f(pt.Lifetime), f(pt.RequestsServed), f(pt.MeanPower),
		})
	}
	return header, rows
}
