package experiments

import (
	"repro/internal/core"
	"repro/internal/models"
)

// applyStreamingSimDefaults fills zero simulation settings with values
// sized for the streaming model (times in ms).
func (r *Runner) applyStreamingSimDefaults(s *core.SimSettings) {
	if s.RunLength == 0 {
		s.RunLength = 400000
	}
	if s.Warmup == 0 {
		s.Warmup = 2000
	}
	if s.Replications == 0 {
		s.Replications = 30
	}
	if s.Seed == 0 {
		s.Seed = 20040628
	}
	if s.Workers == 0 {
		s.Workers = r.workersOr(0)
	}
	if s.Ctx == nil {
		s.Ctx = r.cfg.Ctx
	}
}

// Fig6General reproduces paper Fig. 6: the general streaming model
// (constant bit-rate video, deterministic PSP periods, Gaussian channel)
// simulated across awake periods. Sweep points and the replications
// within each run concurrently (settings.Workers, or Config.Workers).
func (r *Runner) Fig6General(periods []float64, scale Scale, settings core.SimSettings) ([]StreamingPoint, error) {
	if periods == nil {
		periods = DefaultAwakePeriods()
	}
	r.applyStreamingSimDefaults(&settings)

	// The general model implements the real-time frame-deadline
	// semantics (a frame more than DeadlineSlack render periods late is
	// useless); the Markovian model abstracts from it — the source of the
	// qualitative differences the paper highlights between Fig. 4 and
	// Fig. 6. The cap covers the longest doze of the sweep.
	withDeadlines := func(p models.StreamingParams) models.StreamingParams {
		p.DeadlineDebtCap = 12
		p.DeadlineSlack = 2
		return p
	}

	run := func(p models.StreamingParams) (StreamingMetrics, error) {
		s, err := r.streamingSession(p)
		if err != nil {
			return StreamingMetrics{}, err
		}
		rep, err := s.Phase3(models.StreamingGeneralDistributions(p), settings)
		if err != nil {
			return StreamingMetrics{}, err
		}
		v := map[string]float64{
			"nic_energy":       rep.Estimates["nic_energy"].Mean,
			"frames_delivered": rep.Estimates["frames_delivered"].Mean,
			"frames_missed":    rep.Estimates["frames_missed"].Mean,
			"frames_sent":      rep.Estimates["frames_sent"].Mean,
			"frames_lost":      rep.Estimates["frames_lost"].Mean,
		}
		return streamingMetricsFromValues(v), nil
	}

	p0 := withDeadlines(streamingParams(scale))
	p0.WithDPM = false
	base, err := run(p0)
	if err != nil {
		return nil, err
	}

	return RunPoints(periods, settings.Workers, func(P float64) (StreamingPoint, error) {
		p := withDeadlines(streamingParams(scale))
		p.AwakePeriod = P
		m, err := run(p)
		if err != nil {
			return StreamingPoint{}, err
		}
		return StreamingPoint{Period: P, WithDPM: m, NoDPM: base}, nil
	})
}
