package experiments

import "repro/internal/core"

// TradeoffPoint is one point of the energy/quality trade-off curves of
// paper Figs. 7 and 8: the x-coordinate is the performance penalty
// (waiting time for rpc, miss rate for streaming), the y-coordinate the
// energy cost per request/frame, parameterized by the DPM control knob.
type TradeoffPoint struct {
	// Knob is the DPM parameter (shutdown timeout or awake period, ms).
	Knob float64
	// X is the performance penalty; Y the energy cost.
	X, Y float64
}

// TradeoffCurves pairs the Markovian and general curves of a trade-off
// figure.
type TradeoffCurves struct {
	Markov, General []TradeoffPoint
}

// ParetoDominated returns the indices of points dominated by another
// point of the same curve (strictly worse in one coordinate, not better
// in the other) — the paper observes such sub-optimal points on the
// general rpc curve near the knee.
func ParetoDominated(points []TradeoffPoint) []int {
	var out []int
	for i, p := range points {
		for j, q := range points {
			if i == j {
				continue
			}
			if q.X <= p.X && q.Y <= p.Y && (q.X < p.X || q.Y < p.Y) {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// RPCTradeoffCurves builds the Fig. 7 trade-off curves (waiting time vs
// energy per request) from already-computed Fig. 3 sweep results, so a
// caller who has both sweeps in hand pays no additional solves.
func RPCTradeoffCurves(markov, general []RPCPoint) *TradeoffCurves {
	curves := &TradeoffCurves{}
	for _, pt := range markov {
		curves.Markov = append(curves.Markov, TradeoffPoint{
			Knob: pt.Timeout, X: pt.WithDPM.WaitingTime, Y: pt.WithDPM.EnergyPerRequest,
		})
	}
	for _, pt := range general {
		curves.General = append(curves.General, TradeoffPoint{
			Knob: pt.Timeout, X: pt.WithDPM.WaitingTime, Y: pt.WithDPM.EnergyPerRequest,
		})
	}
	return curves
}

// StreamingTradeoffCurves builds the Fig. 8 trade-off curves (miss rate vs
// energy per frame) from already-computed Fig. 4/6 sweep results.
func StreamingTradeoffCurves(markov, general []StreamingPoint) *TradeoffCurves {
	curves := &TradeoffCurves{}
	for _, pt := range markov {
		curves.Markov = append(curves.Markov, TradeoffPoint{
			Knob: pt.Period, X: pt.WithDPM.Miss, Y: pt.WithDPM.EnergyPerFrame,
		})
	}
	for _, pt := range general {
		curves.General = append(curves.General, TradeoffPoint{
			Knob: pt.Period, X: pt.WithDPM.Miss, Y: pt.WithDPM.EnergyPerFrame,
		})
	}
	return curves
}

// Fig7Tradeoff reproduces paper Fig. 7: energy per request vs waiting
// time for the rpc system, on both the Markovian and the general model,
// across shutdown timeouts. The Markovian sweep runs the
// rate-parametric engine (one generation for all positive timeouts) and
// each model family is solved exactly once for the whole grid.
func (r *Runner) Fig7Tradeoff(timeouts []float64, settings core.SimSettings) (*TradeoffCurves, error) {
	markov, err := r.Fig3Markov(timeouts)
	if err != nil {
		return nil, err
	}
	general, err := r.Fig3General(timeouts, settings)
	if err != nil {
		return nil, err
	}
	return RPCTradeoffCurves(markov, general), nil
}

// Fig8Tradeoff reproduces paper Fig. 8: energy per frame vs miss rate for
// the streaming system, on both the Markovian and the general model,
// across awake periods.
func (r *Runner) Fig8Tradeoff(periods []float64, scale Scale, settings core.SimSettings) (*TradeoffCurves, error) {
	markov, err := r.Fig4Markov(periods, scale)
	if err != nil {
		return nil, err
	}
	general, err := r.Fig6General(periods, scale, settings)
	if err != nil {
		return nil, err
	}
	return StreamingTradeoffCurves(markov, general), nil
}

// TradeoffRows renders trade-off curves as table rows.
func TradeoffRows(c *TradeoffCurves, xName, yName string) ([]string, [][]string) {
	header := []string{"knob_ms", "model", xName, yName}
	var rows [][]string
	for _, p := range c.Markov {
		rows = append(rows, []string{f(p.Knob), "markov", f(p.X), f(p.Y)})
	}
	for _, p := range c.General {
		rows = append(rows, []string{f(p.Knob), "general", f(p.X), f(p.Y)})
	}
	return header, rows
}
