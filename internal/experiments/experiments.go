// Package experiments regenerates every table and figure of the paper's
// evaluation: the Sect. 3 noninterference verdicts and diagnostic formula,
// the Markovian comparisons of Fig. 3 (left) and Fig. 4, the
// cross-validation of Fig. 5, the general-model simulations of Fig. 3
// (right) and Fig. 6, and the energy/quality trade-off curves of Fig. 7
// and Fig. 8. Each experiment returns structured rows that the cmd/ tools
// print and the benchmarks in bench_test.go execute.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/aemilia"
	"repro/internal/lts"
	"repro/internal/models"
	"repro/internal/noninterference"
	"repro/internal/pipeline"
)

// Scale selects how much work an experiment does: Quick keeps state
// spaces and simulation horizons small (tests, smoke runs); Full matches
// the paper's setting.
type Scale int

// Experiment scales.
const (
	Quick Scale = iota + 1
	Full
)

// rpcSpec is the noninterference specification shared by the rpc
// experiments: the DPM's shutdown command is high, the client's actions
// are the low observables.
func rpcSpec() noninterference.Spec {
	return noninterference.Spec{
		High: lts.LabelMatcherByNames(models.RPCHighLabels()...),
		Low:  lts.LabelMatcherByInstance("C"),
	}
}

// Sect3Result reports one noninterference verdict of paper Sect. 3.
type Sect3Result struct {
	// Name identifies the model ("rpc simplified", "rpc revised",
	// "streaming").
	Name string
	// Transparent is the verdict; Formula the diagnostic when it fails.
	Transparent bool
	Formula     string
	// States and Transitions size the analysed state space.
	States, Transitions int
}

// phase1 opens the session for the named untimed model and runs the
// functional phase against the noninterference spec.
func (r *Runner) phase1(name string, spec pipeline.Spec, ni noninterference.Spec) (*Sect3Result, error) {
	s, err := r.open(spec)
	if err != nil {
		return nil, err
	}
	rep, err := s.Phase1(ni)
	if err != nil {
		return nil, err
	}
	return &Sect3Result{
		Name:        name,
		Transparent: rep.Result.Transparent,
		Formula:     rep.Result.FormulaText,
		States:      rep.States,
		Transitions: rep.Transitions,
	}, nil
}

// RPCNoninterferenceSimplified reproduces the failing check of Sect. 3.1,
// including the paper's distinguishing formula.
func (r *Runner) RPCNoninterferenceSimplified() (*Sect3Result, error) {
	return r.phase1("rpc simplified", pipeline.Spec{
		Key:   "rpc-simplified:functional",
		Build: models.BuildRPCSimplified,
		Gen:   r.genOpts(),
	}, rpcSpec())
}

// RPCNoninterferenceRevised reproduces the passing check of Sect. 3.1.
func (r *Runner) RPCNoninterferenceRevised() (*Sect3Result, error) {
	p := models.DefaultRPCParams()
	p.Mode = models.Functional
	return r.phase1("rpc revised", pipeline.Spec{
		Key:   fmt.Sprintf("rpc:%#v", p),
		Build: func() (*aemilia.ArchiType, error) { return models.BuildRPCRevised(p) },
		Gen:   r.genOpts(),
	}, rpcSpec())
}

// StreamingNoninterference reproduces the passing check of Sect. 3.2.
// Quick scale shrinks the buffers to keep the weak-bisimulation check
// fast; Full uses the paper's capacity of 10.
func (r *Runner) StreamingNoninterference(scale Scale) (*Sect3Result, error) {
	p := models.DefaultStreamingParams()
	p.Mode = models.Functional
	if scale == Quick {
		p.APCapacity, p.ClientCapacity = 2, 2
	}
	return r.phase1("streaming", pipeline.Spec{
		Key:   fmt.Sprintf("streaming:%#v", p),
		Build: func() (*aemilia.ArchiType, error) { return models.BuildStreaming(p) },
		Gen:   r.genOpts(),
	}, noninterference.Spec{
		High: lts.LabelMatcherByNames(models.StreamingHighLabels()...),
		Low:  lts.LabelMatcherByInstance("C"),
	})
}

// FormatTable renders rows of columns as an aligned ASCII table.
func FormatTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteString("\n")
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteString("\n")
	for _, row := range rows {
		writeRow(row)
	}
	return sb.String()
}

// FormatCSV renders rows as comma-separated values with a header line.
func FormatCSV(header []string, rows [][]string) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(header, ","))
	sb.WriteString("\n")
	for _, row := range rows {
		sb.WriteString(strings.Join(row, ","))
		sb.WriteString("\n")
	}
	return sb.String()
}

func f(v float64) string { return fmt.Sprintf("%.6g", v) }
