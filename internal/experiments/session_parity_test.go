package experiments

import (
	"reflect"
	"testing"

	"repro/internal/pipeline"
)

// TestSessionPathMatchesLegacyAcrossWorkersAndLanes is the bit-identity
// contract of the session layer: a Runner with an injected Config (the
// session path, result store enabled) must produce byte-for-byte the
// results of the deprecated package-level path, on both study models, at
// every workers × lanes combination.
func TestSessionPathMatchesLegacyAcrossWorkersAndLanes(t *testing.T) {
	timeouts := []float64{0.5, 5, 25}
	periods := []float64{50, 400}

	// Legacy path: package-level wrappers reading the deprecated globals,
	// pinned to the deterministic baseline.
	oldW, oldL := DefaultWorkers, DefaultLaneWidth
	DefaultWorkers, DefaultLaneWidth = 1, 1
	wantRPC, err := Fig3Markov(timeouts)
	if err != nil {
		t.Fatalf("legacy Fig3Markov: %v", err)
	}
	wantStreaming, err := Fig4Markov(periods, Quick)
	if err != nil {
		t.Fatalf("legacy Fig4Markov: %v", err)
	}
	DefaultWorkers, DefaultLaneWidth = oldW, oldL

	for _, workers := range []int{1, 8} {
		for _, lanes := range []int{1, 8} {
			r := NewRunner(pipeline.Config{
				Workers:   workers,
				LaneWidth: lanes,
				Store:     pipeline.NewMemoryStore(),
			})
			gotRPC, err := r.Fig3Markov(timeouts)
			if err != nil {
				t.Fatalf("workers=%d lanes=%d: Fig3Markov: %v", workers, lanes, err)
			}
			if !reflect.DeepEqual(gotRPC, wantRPC) {
				t.Errorf("workers=%d lanes=%d: rpc session path diverged from legacy path:\n got %+v\nwant %+v",
					workers, lanes, gotRPC, wantRPC)
			}
			gotStreaming, err := r.Fig4Markov(periods, Quick)
			if err != nil {
				t.Fatalf("workers=%d lanes=%d: Fig4Markov: %v", workers, lanes, err)
			}
			if !reflect.DeepEqual(gotStreaming, wantStreaming) {
				t.Errorf("workers=%d lanes=%d: streaming session path diverged from legacy path:\n got %+v\nwant %+v",
					workers, lanes, gotStreaming, wantStreaming)
			}
		}
	}
}
