package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
)

// RunPoints evaluates fn over every point on a bounded worker pool and
// returns the results in point order. Points are claimed in index order
// and the pool stops handing out work after the first failure; the
// reported error is the lowest-index one, exactly what a sequential loop
// would return. A panicking fn is recovered into a
// *fault.WorkerPanicError attributed to its worker and point instead of
// crashing the process. workers <= 1 runs sequentially.
func RunPoints[P, R any](points []P, workers int, fn func(P) (R, error)) ([]R, error) {
	call := func(w, i int) (R, error) {
		var r R
		err := fault.Guard("experiments", w, fmt.Sprintf("point %d", i), func() error {
			var ferr error
			r, ferr = fn(points[i])
			return ferr
		})
		return r, err
	}
	out := make([]R, len(points))
	if workers > len(points) {
		workers = len(points)
	}
	if workers <= 1 {
		for i := range points {
			r, err := call(0, i)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}
	var (
		wg   sync.WaitGroup
		next atomic.Int64
		stop atomic.Bool
		errs = make([]error, len(points))
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(points) || stop.Load() {
					return
				}
				r, err := call(w, i)
				if err != nil {
					errs[i] = err
					stop.Store(true)
					return
				}
				out[i] = r
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
