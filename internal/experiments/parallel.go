package experiments

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/aemilia"
	"repro/internal/core"
	"repro/internal/ctmc"
	"repro/internal/elab"
	"repro/internal/fault"
	"repro/internal/lts"
	"repro/internal/models"
)

// DefaultWorkers is the sweep concurrency used when a caller does not set
// core.SimSettings.Workers (and by the Markovian sweeps, which carry no
// settings). It also feeds the per-point state-space generation pool
// (lts.GenerateOptions.GenWorkers) and the steady-state solver pool
// (ctmc.SolveOptions.Workers). The cmd/ tools override it from their
// -workers flag. Every sweep merges its results in point order, every
// simulation assigns replication-indexed random streams, and generation
// and solve merge in canonical order, so results are bit-identical at any
// value.
var DefaultWorkers = runtime.NumCPU()

// DefaultSolve is the steady-state solver configuration used by the
// Markovian sweeps. The golden tests force a sweep mode through it; the
// zero value lets the solver auto-select (Gauss-Seidel below the Jacobi
// threshold, parallel Jacobi above).
var DefaultSolve ctmc.SolveOptions

// DefaultContext cancels every experiment driven through the package
// defaults: state-space generation, steady-state solves, sweeps,
// transient integrations, and simulations all poll it. Nil (the default)
// disables cancellation. The cmd/ study tools set it from their -timeout
// flag; cancellation surfaces as a *fault.CanceledError naming the phase
// and point that observed it.
var DefaultContext context.Context

// DefaultCheckpointDir, when non-empty, makes every Markovian sweep of
// the package resumable: each sweep writes its checkpoint to
// <dir>/<name>.ckpt (core.CheckpointOptions) and, when
// DefaultCheckpointResume is set, replays completed points from an
// existing file instead of re-solving them — with reports bit-identical
// to an uninterrupted run. The cmd/ study tools set these from their
// -checkpoint and -resume flags.
var (
	DefaultCheckpointDir    string
	DefaultCheckpointResume bool
)

// DefaultLaneWidth is the sweep-batching lane width the Markovian sweeps
// pass to core.Phase2Sweep: 0 lets the sweep auto-select
// (core.DefaultLaneWidth points per batched solve), 1 forces the
// per-point solver path, any other value is used as given. The cmd/ study
// tools override it from their -lanes flag. Results are bit-identical at
// any value.
var DefaultLaneWidth = 0

// genOpts is the generation configuration the sweeps hand to lts.Generate
// and core.Phase2ModelSolve: the package worker default applied to the
// frontier-expansion pool.
func genOpts() lts.GenerateOptions {
	return lts.GenerateOptions{GenWorkers: workersOr(0), Ctx: DefaultContext}
}

// solveOpts is the solver configuration the Markovian sweeps use: the
// package sweep-mode default with the worker and cancellation defaults
// applied.
func solveOpts() ctmc.SolveOptions {
	s := DefaultSolve
	if s.Workers <= 0 {
		s.Workers = workersOr(0)
	}
	if s.Ctx == nil {
		s.Ctx = DefaultContext
	}
	return s
}

// sweepOpts is the rate-parametric sweep configuration the Markovian
// sweeps hand to core.Phase2Sweep: the generation, solver, worker,
// batching-lane-width, cancellation, and checkpoint defaults of the
// package. name identifies the sweep's checkpoint file inside
// DefaultCheckpointDir and must be unique per (figure, model structure)
// pair — a resumed checkpoint is rejected unless its structural hash
// matches, so distinct sweeps must not share a file.
func sweepOpts(name string) core.SweepOptions {
	opts := core.SweepOptions{
		Gen:       genOpts(),
		Solve:     solveOpts(),
		Workers:   workersOr(0),
		LaneWidth: DefaultLaneWidth,
		Ctx:       DefaultContext,
	}
	if DefaultCheckpointDir != "" {
		opts.Checkpoint = &core.CheckpointOptions{
			Path:   filepath.Join(DefaultCheckpointDir, name+".ckpt"),
			Resume: DefaultCheckpointResume,
		}
	}
	return opts
}

// workersOr resolves an explicit worker count against the package
// default.
func workersOr(n int) int {
	if n > 0 {
		return n
	}
	if DefaultWorkers > 0 {
		return DefaultWorkers
	}
	return 1
}

// RunPoints evaluates fn over every point on a bounded worker pool and
// returns the results in point order. Points are claimed in index order
// and the pool stops handing out work after the first failure; the
// reported error is the lowest-index one, exactly what a sequential loop
// would return. A panicking fn is recovered into a
// *fault.WorkerPanicError attributed to its worker and point instead of
// crashing the process. workers <= 1 runs sequentially.
func RunPoints[P, R any](points []P, workers int, fn func(P) (R, error)) ([]R, error) {
	call := func(w, i int) (R, error) {
		var r R
		err := fault.Guard("experiments", w, fmt.Sprintf("point %d", i), func() error {
			var ferr error
			r, ferr = fn(points[i])
			return ferr
		})
		return r, err
	}
	out := make([]R, len(points))
	if workers > len(points) {
		workers = len(points)
	}
	if workers <= 1 {
		for i := range points {
			r, err := call(0, i)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}
	var (
		wg   sync.WaitGroup
		next atomic.Int64
		stop atomic.Bool
		errs = make([]error, len(points))
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(points) || stop.Load() {
					return
				}
				r, err := call(w, i)
				if err != nil {
					errs[i] = err
					stop.Store(true)
					return
				}
				out[i] = r
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Model-build caches shared by all sweeps of the package: the rpc and
// streaming models are keyed by their full parameter sets, so the no-DPM
// baselines, the repeated Markovian/general pairs of a cross-validation
// point, and any overlap between figures (e.g. Fig. 7 rerunning the
// Fig. 3 sweeps) are parsed and elaborated once per process.
var (
	rpcCache       core.BuildCache[models.RPCParams]
	streamingCache core.BuildCache[models.StreamingParams]
)

// rpcModel returns the cached elaborated rpc model for p.
func rpcModel(p models.RPCParams) (*elab.Model, error) {
	return rpcCache.Elaborated(p, func() (*aemilia.ArchiType, error) {
		return models.BuildRPCRevised(p)
	})
}

// streamingModel returns the cached elaborated streaming model for p.
func streamingModel(p models.StreamingParams) (*elab.Model, error) {
	return streamingCache.Elaborated(p, func() (*aemilia.ArchiType, error) {
		return models.BuildStreaming(p)
	})
}
