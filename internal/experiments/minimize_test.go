package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/pipeline"
)

// collectMinimize runs the Markovian slice of the experiment suite — the
// Fig. 3/4 sweeps, the policy comparison, and the startup transient —
// through a Runner with the given scheduling knobs and composition
// policy, and returns the results keyed by experiment name.
func collectMinimize(t *testing.T, workers, lanes int, minimize bool) map[string]json.RawMessage {
	t.Helper()
	r := NewRunner(pipeline.Config{Workers: workers, LaneWidth: lanes, Minimize: minimize})

	out := make(map[string]json.RawMessage)
	record := func(name string, v any, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s (minimize=%t w=%d l=%d): %v", name, minimize, workers, lanes, err)
		}
		raw, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		out[name] = raw
	}
	v1, err := r.Fig3Markov([]float64{0.5, 5, 25})
	record("fig3_markov", v1, err)
	v2, err := r.Fig4Markov([]float64{50, 400}, Quick)
	record("fig4_markov", v2, err)
	v3, err := r.PolicyComparison(5)
	record("policy_comparison", v3, err)
	v4, err := r.StreamingStartupTransient([]float64{100, 500}, 100, Quick)
	record("startup_transient", v4, err)
	return out
}

// TestGoldenMinimizeAgreement pins the compositional-minimization
// contract on the paper's Markovian experiments: the minimized path is
// bit-identical across workers {1,8} × lanes {1,8}, and its measures
// agree with the full-composition path within 1e-6 (they differ only by
// solver arithmetic on the reduced chain — the quotient-plus-fold
// construction preserves every measure exactly).
func TestGoldenMinimizeAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("golden suite is not short")
	}
	full := collectMinimize(t, 1, 1, false)
	ref := collectMinimize(t, 1, 1, true)
	for _, wl := range [][2]int{{1, 8}, {8, 1}, {8, 8}} {
		got := collectMinimize(t, wl[0], wl[1], true)
		for name, want := range ref {
			if !bytes.Equal(got[name], want) {
				t.Errorf("%s: minimized output differs at workers=%d lanes=%d from workers=1 lanes=1",
					name, wl[0], wl[1])
			}
		}
	}
	for name := range full {
		approxEqualJSON(t, fmt.Sprintf("%s(min-vs-full)", name), full[name], ref[name], 1e-6)
	}
}
