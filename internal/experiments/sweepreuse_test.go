package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lts"
)

// TestFig3MarkovGeneratesOncePerStructure pins the generate-once contract
// of the rate-parametric sweep engine with the lts.GenerateCalls hook: a
// Fig. 3 sweep over positive timeouts generates exactly two state spaces
// (the no-DPM baseline and the shared with-DPM structure), however many
// points it has; a structure-changing timeout (<= 0) adds one generation
// for its own per-point build. No test in this package runs in parallel,
// so the process-wide counter deltas are exact.
func TestFig3MarkovGeneratesOncePerStructure(t *testing.T) {
	before := lts.GenerateCalls()
	if _, err := Fig3Markov([]float64{0.5, 5, 25}); err != nil {
		t.Fatal(err)
	}
	if got := lts.GenerateCalls() - before; got != 2 {
		t.Fatalf("Fig3Markov over 3 positive timeouts ran Generate %d times, want 2 (baseline + one shared sweep structure)", got)
	}

	before = lts.GenerateCalls()
	if _, err := Fig3Markov([]float64{0, 5, 25}); err != nil {
		t.Fatal(err)
	}
	if got := lts.GenerateCalls() - before; got != 3 {
		t.Fatalf("Fig3Markov with a structure-changing timeout ran Generate %d times, want 3 (baseline + sweep + timeout-0 fallback)", got)
	}
}

// TestFig4MarkovGeneratesOncePerStructure is the streaming counterpart:
// one generation for the no-DPM baseline, one for all positive periods.
func TestFig4MarkovGeneratesOncePerStructure(t *testing.T) {
	before := lts.GenerateCalls()
	if _, err := Fig4Markov([]float64{50, 100, 400}, Quick); err != nil {
		t.Fatal(err)
	}
	if got := lts.GenerateCalls() - before; got != 2 {
		t.Fatalf("Fig4Markov over 3 positive periods ran Generate %d times, want 2 (baseline + one shared sweep structure)", got)
	}
}

// TestTradeoffCurvesFromPoints covers the trade-off grid construction in
// isolation: already-computed Fig. 3/4 point slices map into curves with
// the right knob/penalty/energy coordinates and no further solves.
func TestTradeoffCurvesFromPoints(t *testing.T) {
	rpc := []RPCPoint{
		{Timeout: 1, WithDPM: RPCMetrics{Throughput: 0.09, WaitingTime: 3, EnergyPerRequest: 20}},
		{Timeout: 10, WithDPM: RPCMetrics{Throughput: 0.08, WaitingTime: 5, EnergyPerRequest: 12}},
	}
	curves := RPCTradeoffCurves(rpc, rpc[:1])
	if len(curves.Markov) != 2 || len(curves.General) != 1 {
		t.Fatalf("curve sizes: markov %d, general %d", len(curves.Markov), len(curves.General))
	}
	for i, pt := range rpc {
		got := curves.Markov[i]
		if got.Knob != pt.Timeout || got.X != pt.WithDPM.WaitingTime || got.Y != pt.WithDPM.EnergyPerRequest {
			t.Errorf("rpc point %d mapped to %+v", i, got)
		}
	}

	str := []StreamingPoint{
		{Period: 100, WithDPM: StreamingMetrics{EnergyPerFrame: 2, Miss: 0.01}},
		{Period: 400, WithDPM: StreamingMetrics{EnergyPerFrame: 1, Miss: 0.2}},
	}
	sc := StreamingTradeoffCurves(str, nil)
	if len(sc.Markov) != 2 || sc.General != nil {
		t.Fatalf("curve sizes: markov %d, general %v", len(sc.Markov), sc.General)
	}
	for i, pt := range str {
		got := sc.Markov[i]
		if got.Knob != pt.Period || got.X != pt.WithDPM.Miss || got.Y != pt.WithDPM.EnergyPerFrame {
			t.Errorf("streaming point %d mapped to %+v", i, got)
		}
	}
	if d := ParetoDominated(sc.Markov); len(d) != 0 {
		t.Errorf("neither synthetic streaming point dominates the other, got %v", d)
	}
}

// TestGoldenWithinPrechangeTolerance pins the accuracy side of the sweep
// engine's introduction: the regenerated golden outputs (rebind +
// warm-started solves) agree with the per-point cold-solve outputs
// recorded before the change (golden_quick_prechange.json) within solver
// tolerance. Simulation results are untouched by the sweep engine and
// must still match bit for bit — approxEqualJSON's equality fallback for
// non-numeric leaves plus the relative bound covers both.
func TestGoldenWithinPrechangeTolerance(t *testing.T) {
	read := func(name string) map[string]json.RawMessage {
		raw, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]json.RawMessage
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatal(err)
		}
		return m
	}
	pre := read("golden_quick_prechange.json")
	cur := read("golden_quick.json")
	if len(pre) != len(cur) {
		t.Fatalf("golden suites differ in shape: %d vs %d experiments", len(pre), len(cur))
	}
	for name := range pre {
		raw, ok := cur[name]
		if !ok {
			t.Fatalf("experiment %s missing from current golden", name)
		}
		approxEqualJSON(t, name, pre[name], raw, 1e-6)
	}
}
