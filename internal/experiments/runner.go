package experiments

import (
	"fmt"
	"path/filepath"

	"repro/internal/aemilia"
	"repro/internal/ctmc"
	"repro/internal/lts"
	"repro/internal/models"
	"repro/internal/pipeline"
)

// Runner executes the paper's experiments against one injected
// pipeline.Config. All scheduling state — worker counts, lane width,
// cancellation context, checkpoint policy, result store — lives in the
// config; nothing on the experiment hot path reads mutable package
// globals. Every model a Runner touches is staged through a private
// pipeline.Manager, so the rpc and streaming models of one study are
// elaborated once, their state spaces generated once, and their chains
// built once per distinct parameter set, no matter how many figures
// share them (e.g. Fig. 7 rerunning the Fig. 3 sweeps).
//
// A Runner is safe for concurrent use: sessions single-flight their
// stages and the config is never mutated after construction.
type Runner struct {
	cfg pipeline.Config
	mgr *pipeline.Manager
}

// NewRunner returns a Runner over cfg. A non-positive cfg.Workers is
// normalized to 1 (sequential), mirroring the historical package-global
// resolution; every other field is used as given.
func NewRunner(cfg pipeline.Config) *Runner {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	return &Runner{cfg: cfg, mgr: pipeline.NewManager()}
}

// Config returns the Runner's (immutable) configuration.
func (r *Runner) Config() pipeline.Config { return r.cfg }

// workersOr resolves an explicit worker count against the config.
func (r *Runner) workersOr(n int) int {
	if n > 0 {
		return n
	}
	return r.cfg.Workers
}

// genOpts is the generation configuration the Runner's sessions carry:
// the config worker count applied to the frontier-expansion pool and the
// config context applied to BFS-level cancellation polls.
func (r *Runner) genOpts() lts.GenerateOptions {
	return lts.GenerateOptions{GenWorkers: r.workersOr(0), Ctx: r.cfg.Ctx}
}

// solveOpts is the steady-state solver configuration the Runner's
// sessions carry: the config's solver options with the worker and
// cancellation defaults applied.
func (r *Runner) solveOpts() ctmc.SolveOptions {
	s := r.cfg.Solve
	if s.Workers <= 0 {
		s.Workers = r.workersOr(0)
	}
	if s.Ctx == nil {
		s.Ctx = r.cfg.Ctx
	}
	return s
}

// checkpointOpts resolves the checkpoint options for the named sweep:
// nil when the config carries no checkpoint directory, otherwise
// <dir>/<name>.ckpt with the config's resume policy. name must be unique
// per (figure, model structure) pair — a resumed checkpoint is rejected
// unless its structural hash matches, so distinct sweeps must not share
// a file.
func (r *Runner) checkpointOpts(name string) *pipeline.CheckpointOptions {
	if r.cfg.CheckpointDir == "" {
		return nil
	}
	return &pipeline.CheckpointOptions{
		Path:   filepath.Join(r.cfg.CheckpointDir, name+".ckpt"),
		Resume: r.cfg.CheckpointResume,
	}
}

// open interns a session for spec under the Runner's manager and config.
func (r *Runner) open(spec pipeline.Spec) (*pipeline.Session, error) {
	return r.mgr.Open(spec, r.cfg)
}

// rpcSession returns the staged session for the revised rpc model at p,
// carrying the model's measures and the Runner's generation and solver
// options. Sessions are content-addressed, so every figure that touches
// the same parameter set shares one elaborated model, state space, and
// chain.
func (r *Runner) rpcSession(p models.RPCParams) (*pipeline.Session, error) {
	return r.open(pipeline.Spec{
		Key:      fmt.Sprintf("rpc:%#v", p),
		Build:    func() (*aemilia.ArchiType, error) { return models.BuildRPCRevised(p) },
		Measures: models.RPCMeasures(p),
		Gen:      r.genOpts(),
		Solve:    r.solveOpts(),
		Minimize: r.cfg.Minimize,
	})
}

// streamingSession returns the staged session for the streaming model at
// p (see rpcSession).
func (r *Runner) streamingSession(p models.StreamingParams) (*pipeline.Session, error) {
	return r.open(pipeline.Spec{
		Key:      fmt.Sprintf("streaming:%#v", p),
		Build:    func() (*aemilia.ArchiType, error) { return models.BuildStreaming(p) },
		Measures: models.StreamingMeasures(p),
		Gen:      r.genOpts(),
		Solve:    r.solveOpts(),
		Minimize: r.cfg.Minimize,
	})
}
