package experiments

import (
	"repro/internal/core"
	"repro/internal/lts"
	"repro/internal/models"
)

// PolicyPoint compares one DPM decision scheme on the Markovian rpc model
// (an ablation the paper's Sect. 2.1 policy taxonomy motivates).
type PolicyPoint struct {
	// Policy names the scheme.
	Policy models.Policy
	// Metrics holds the Fig. 3 indices under the scheme.
	Metrics RPCMetrics
}

// PolicyComparison solves the Markovian rpc model under every DPM policy
// at the given shutdown timeout/period and returns the three Fig. 3
// indices for each, with PolicyNone as the baseline.
func PolicyComparison(timeout float64) ([]PolicyPoint, error) {
	policies := []models.Policy{
		models.PolicyNone,
		models.PolicyTrivial,
		models.PolicyTimeout,
		models.PolicyPredictive,
	}
	out := make([]PolicyPoint, 0, len(policies))
	for _, pol := range policies {
		p := models.DefaultRPCParams()
		p.Policy = pol
		p.WithDPM = pol != models.PolicyNone
		p.ShutdownTimeout = timeout
		a, err := models.BuildRPCRevised(p)
		if err != nil {
			return nil, err
		}
		rep, err := core.Phase2(a, models.RPCMeasures(p), lts.GenerateOptions{})
		if err != nil {
			return nil, err
		}
		out = append(out, PolicyPoint{
			Policy:  pol,
			Metrics: rpcMetricsFromValues(rep.Values),
		})
	}
	return out, nil
}

// PolicyRows renders the comparison as table rows.
func PolicyRows(points []PolicyPoint) ([]string, [][]string) {
	header := []string{"policy", "throughput", "waiting_time", "energy_per_request"}
	rows := make([][]string, 0, len(points))
	for _, pt := range points {
		rows = append(rows, []string{
			pt.Policy.String(),
			f(pt.Metrics.Throughput),
			f(pt.Metrics.WaitingTime),
			f(pt.Metrics.EnergyPerRequest),
		})
	}
	return header, rows
}
