package experiments

import "repro/internal/models"

// PolicyPoint compares one DPM decision scheme on the Markovian rpc model
// (an ablation the paper's Sect. 2.1 policy taxonomy motivates).
type PolicyPoint struct {
	// Policy names the scheme.
	Policy models.Policy
	// Metrics holds the Fig. 3 indices under the scheme.
	Metrics RPCMetrics
}

// PolicyComparison solves the Markovian rpc model under every DPM policy
// at the given shutdown timeout/period and returns the three Fig. 3
// indices for each, with PolicyNone as the baseline. The policies are
// solved concurrently (Config.Workers) and reported in taxonomy order.
// The swept parameter here is the policy, which changes the DPM's
// behaviour — the structure of the state space — so this driver keeps the
// per-point generate+build path rather than the rate-parametric sweep.
func (r *Runner) PolicyComparison(timeout float64) ([]PolicyPoint, error) {
	policies := []models.Policy{
		models.PolicyNone,
		models.PolicyTrivial,
		models.PolicyTimeout,
		models.PolicyPredictive,
	}
	return RunPoints(policies, r.workersOr(0), func(pol models.Policy) (PolicyPoint, error) {
		p := models.DefaultRPCParams()
		p.Policy = pol
		p.WithDPM = pol != models.PolicyNone
		p.ShutdownTimeout = timeout
		s, err := r.rpcSession(p)
		if err != nil {
			return PolicyPoint{}, err
		}
		rep, err := s.Phase2()
		if err != nil {
			return PolicyPoint{}, err
		}
		return PolicyPoint{
			Policy:  pol,
			Metrics: rpcMetricsFromValues(rep.Values),
		}, nil
	})
}

// PolicyRows renders the comparison as table rows.
func PolicyRows(points []PolicyPoint) ([]string, [][]string) {
	header := []string{"policy", "throughput", "waiting_time", "energy_per_request"}
	rows := make([][]string, 0, len(points))
	for _, pt := range points {
		rows = append(rows, []string{
			pt.Policy.String(),
			f(pt.Metrics.Throughput),
			f(pt.Metrics.WaitingTime),
			f(pt.Metrics.EnergyPerRequest),
		})
	}
	return header, rows
}
