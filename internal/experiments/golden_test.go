package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/ctmc"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// collectGolden runs a quick-scale cut of every experiment behind the
// paper's figures — the Fig. 3–8 points, the policy comparison, and the
// battery study — at the given worker count and returns the results keyed
// by experiment name. Floats are serialized by encoding/json, which emits
// the shortest representation that round-trips, so equal JSON bytes mean
// bit-identical float64 results.
func collectGolden(t *testing.T, workers int) map[string]json.RawMessage {
	t.Helper()
	old := DefaultWorkers
	DefaultWorkers = workers
	defer func() { DefaultWorkers = old }()

	rpcSim := core.SimSettings{RunLength: 500, Replications: 3, Workers: workers}
	strSim := core.SimSettings{RunLength: 2000, Warmup: 500, Replications: 2, Workers: workers}

	out := make(map[string]json.RawMessage)
	record := func(name string, v any, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		raw, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		out[name] = raw
	}

	v1, err := Fig3Markov([]float64{0.5, 5, 25})
	record("fig3_markov", v1, err)
	v2, err := Fig3General([]float64{2, 10}, rpcSim)
	record("fig3_general", v2, err)
	v3, err := Fig4Markov([]float64{50, 400}, Quick)
	record("fig4_markov", v3, err)
	v4, err := Fig5Validation([]float64{5}, rpcSim)
	record("fig5_validation", v4, err)
	v5, err := Fig6General([]float64{100}, Quick, strSim)
	record("fig6_general", v5, err)
	v6, err := Fig7Tradeoff([]float64{1, 10}, rpcSim)
	record("fig7_tradeoff", v6, err)
	v7, err := Fig8Tradeoff([]float64{100, 400}, Quick, strSim)
	record("fig8_tradeoff", v7, err)
	v8, err := PolicyComparison(5)
	record("policy_comparison", v8, err)
	v9, err := BatteryLifetime(1000, 5, 100)
	record("battery_lifetime", v9, err)
	v10, err := StreamingStartupTransient([]float64{100, 500}, 100, Quick)
	record("startup_transient", v10, err)
	return out
}

// TestGoldenExperimentOutputs pins the numerical output of the whole
// experiment suite: any change to state-space generation, CTMC extraction,
// solving, or simulation that perturbs a single bit of any figure point
// fails this test. The same results must be produced at workers=1 and
// workers=8 (the engine's determinism contract).
func TestGoldenExperimentOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("golden suite is not short")
	}
	goldenPath := filepath.Join("testdata", "golden_quick.json")

	seq := collectGolden(t, 1)
	par := collectGolden(t, 8)
	for name, want := range seq {
		if got, ok := par[name]; !ok || !bytes.Equal(got, want) {
			t.Errorf("%s: workers=8 output differs from workers=1", name)
		}
	}

	got, err := json.MarshalIndent(seq, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, len(got))
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		var gotM, wantM map[string]json.RawMessage
		if json.Unmarshal(got, &gotM) == nil && json.Unmarshal(want, &wantM) == nil {
			for name := range wantM {
				if !bytes.Equal(gotM[name], wantM[name]) {
					t.Errorf("%s: output differs from golden", name)
				}
			}
		}
		t.Fatalf("experiment outputs differ from %s (run with -update to regenerate)", goldenPath)
	}
}

// collectMarkovian runs the purely Markovian experiments (no simulation)
// with the given worker count and forced solver sweep mode.
func collectMarkovian(t *testing.T, workers int, sweep ctmc.Sweep) map[string]json.RawMessage {
	t.Helper()
	oldWorkers, oldSolve := DefaultWorkers, DefaultSolve
	DefaultWorkers = workers
	DefaultSolve = ctmc.SolveOptions{Sweep: sweep}
	defer func() { DefaultWorkers, DefaultSolve = oldWorkers, oldSolve }()

	out := make(map[string]json.RawMessage)
	record := func(name string, v any, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s (%s): %v", name, sweep, err)
		}
		raw, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		out[name] = raw
	}
	v1, err := Fig3Markov([]float64{0.5, 5, 25})
	record("fig3_markov", v1, err)
	v2, err := Fig4Markov([]float64{50, 400}, Quick)
	record("fig4_markov", v2, err)
	v3, err := PolicyComparison(5)
	record("policy_comparison", v3, err)
	return out
}

// approxEqualJSON compares two JSON documents structurally, requiring
// numbers to agree within relative tolerance and everything else to be
// equal.
func approxEqualJSON(t *testing.T, name string, a, b json.RawMessage, tol float64) {
	t.Helper()
	var va, vb any
	if err := json.Unmarshal(a, &va); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &vb); err != nil {
		t.Fatal(err)
	}
	var walk func(path string, x, y any)
	walk = func(path string, x, y any) {
		switch xv := x.(type) {
		case float64:
			yv, ok := y.(float64)
			if !ok {
				t.Fatalf("%s%s: number vs %T", name, path, y)
			}
			diff := math.Abs(xv - yv)
			if rel := diff / math.Max(math.Abs(xv), 1e-12); rel > tol && diff > 1e-12 {
				t.Errorf("%s%s: %g vs %g (rel %g > %g)", name, path, xv, yv, rel, tol)
			}
		case map[string]any:
			yv, ok := y.(map[string]any)
			if !ok || len(xv) != len(yv) {
				t.Fatalf("%s%s: object shape differs", name, path)
			}
			for k := range xv {
				walk(path+"."+k, xv[k], yv[k])
			}
		case []any:
			yv, ok := y.([]any)
			if !ok || len(xv) != len(yv) {
				t.Fatalf("%s%s: array shape differs", name, path)
			}
			for i := range xv {
				walk(path+"["+strconv.Itoa(i)+"]", xv[i], yv[i])
			}
		default:
			if x != y {
				t.Errorf("%s%s: %v vs %v", name, path, x, y)
			}
		}
	}
	walk("", va, vb)
}

// TestGoldenSolverSweepModes pins the solver-side determinism contract on
// the Markovian slice of the golden suite: each sweep mode produces
// bit-identical JSON at workers 1 and 8, the forced Gauss-Seidel run
// matches the auto-selected quick-suite results byte for byte (the quick
// components sit below the Jacobi threshold), and the two sweep modes
// agree within solver tolerance.
func TestGoldenSolverSweepModes(t *testing.T) {
	if testing.Short() {
		t.Skip("golden suite is not short")
	}
	gs1 := collectMarkovian(t, 1, ctmc.SweepGaussSeidel)
	gs8 := collectMarkovian(t, 8, ctmc.SweepGaussSeidel)
	ja1 := collectMarkovian(t, 1, ctmc.SweepJacobi)
	ja8 := collectMarkovian(t, 8, ctmc.SweepJacobi)
	auto1 := collectMarkovian(t, 1, ctmc.SweepAuto)

	for name, want := range gs1 {
		if !bytes.Equal(gs8[name], want) {
			t.Errorf("%s: gauss-seidel differs between workers 1 and 8", name)
		}
		if !bytes.Equal(auto1[name], want) {
			t.Errorf("%s: auto mode differs from gauss-seidel on the quick suite", name)
		}
	}
	for name, want := range ja1 {
		if !bytes.Equal(ja8[name], want) {
			t.Errorf("%s: jacobi differs between workers 1 and 8", name)
		}
	}
	for name := range gs1 {
		approxEqualJSON(t, name, gs1[name], ja1[name], 1e-6)
	}
}
