package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// The experiment tests run at Quick scale with short simulations: they
// assert the paper's qualitative shapes, not absolute values.

func TestSect3Results(t *testing.T) {
	simplified, err := RPCNoninterferenceSimplified()
	if err != nil {
		t.Fatal(err)
	}
	if simplified.Transparent {
		t.Error("simplified rpc must fail noninterference")
	}
	if !strings.Contains(simplified.Formula, "C.send_rpc_packet#RCS.get_packet") {
		t.Errorf("formula missing client send label: %s", simplified.Formula)
	}

	revised, err := RPCNoninterferenceRevised()
	if err != nil {
		t.Fatal(err)
	}
	if !revised.Transparent {
		t.Errorf("revised rpc must pass; formula: %s", revised.Formula)
	}

	streaming, err := StreamingNoninterference(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if !streaming.Transparent {
		t.Errorf("streaming must pass; formula: %s", streaming.Formula)
	}
}

func TestFig3MarkovShapes(t *testing.T) {
	pts, err := Fig3Markov([]float64{0.5, 5, 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, pt := range pts {
		if !(pt.WithDPM.Throughput < pt.NoDPM.Throughput) {
			t.Errorf("timeout %v: DPM throughput %v !< no-DPM %v",
				pt.Timeout, pt.WithDPM.Throughput, pt.NoDPM.Throughput)
		}
		if !(pt.WithDPM.WaitingTime > pt.NoDPM.WaitingTime) {
			t.Errorf("timeout %v: DPM waiting %v !> no-DPM %v",
				pt.Timeout, pt.WithDPM.WaitingTime, pt.NoDPM.WaitingTime)
		}
		if !(pt.WithDPM.EnergyPerRequest < pt.NoDPM.EnergyPerRequest) {
			t.Errorf("timeout %v: DPM energy/req %v !< no-DPM %v (Markovian DPM is never counterproductive)",
				pt.Timeout, pt.WithDPM.EnergyPerRequest, pt.NoDPM.EnergyPerRequest)
		}
	}
	// Shorter timeout → larger impact.
	if !(pts[0].WithDPM.EnergyPerRequest < pts[2].WithDPM.EnergyPerRequest) {
		t.Error("energy/request should grow with the timeout")
	}
	if !(pts[0].WithDPM.Throughput < pts[2].WithDPM.Throughput) {
		t.Error("throughput should grow with the timeout")
	}
}

func TestFig3GeneralBimodal(t *testing.T) {
	settings := core.SimSettings{RunLength: 4000, Replications: 6}
	pts, err := Fig3General([]float64{2, 10, 20}, settings)
	if err != nil {
		t.Fatal(err)
	}
	small, knee, large := pts[0], pts[1], pts[2]
	// Region 1 (timeout below the ~11.3 ms mean idle period): flat
	// penalty, energy grows with the timeout.
	if !(small.WithDPM.EnergyPerRequest < knee.WithDPM.EnergyPerRequest) {
		t.Errorf("energy should grow with timeout below the knee: %v !< %v",
			small.WithDPM.EnergyPerRequest, knee.WithDPM.EnergyPerRequest)
	}
	// Near the knee the DPM is counterproductive (paper's key finding).
	if !(knee.WithDPM.EnergyPerRequest > knee.NoDPM.EnergyPerRequest) {
		t.Errorf("DPM should be counterproductive near the knee: %v !> %v",
			knee.WithDPM.EnergyPerRequest, knee.NoDPM.EnergyPerRequest)
	}
	// Region 2 (timeout above the idle period): DPM has no effect.
	relDiff := func(a, b float64) float64 {
		d := a - b
		if d < 0 {
			d = -d
		}
		return d / b
	}
	if relDiff(large.WithDPM.Throughput, large.NoDPM.Throughput) > 0.02 {
		t.Errorf("above the knee the DPM should be inert: thr %v vs %v",
			large.WithDPM.Throughput, large.NoDPM.Throughput)
	}
	if !(small.WithDPM.Throughput < large.WithDPM.Throughput) {
		t.Error("throughput penalty should vanish above the knee")
	}
}

func TestFig4MarkovShapes(t *testing.T) {
	pts, err := Fig4Markov([]float64{25, 100, 400}, Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Energy per frame decreases with the awake period and is always
	// below the no-DPM level.
	for _, pt := range pts {
		if !(pt.WithDPM.EnergyPerFrame < pt.NoDPM.EnergyPerFrame) {
			t.Errorf("period %v: energy %v !< no-DPM %v",
				pt.Period, pt.WithDPM.EnergyPerFrame, pt.NoDPM.EnergyPerFrame)
		}
	}
	if !(pts[2].WithDPM.EnergyPerFrame < pts[0].WithDPM.EnergyPerFrame) {
		t.Error("energy per frame should decrease with the awake period")
	}
	// Miss grows, quality falls.
	if !(pts[2].WithDPM.Miss > pts[0].WithDPM.Miss) {
		t.Error("miss should increase with the awake period")
	}
	if !(pts[2].WithDPM.Quality < pts[0].WithDPM.Quality) {
		t.Error("quality should decrease with the awake period")
	}
	// Loss grows for large periods.
	if !(pts[2].WithDPM.Loss > pts[0].WithDPM.Loss) {
		t.Error("loss should increase for large awake periods")
	}
}

func TestFig5ValidationConsistency(t *testing.T) {
	pts, err := Fig5Validation([]float64{5, 20},
		core.SimSettings{RunLength: 8000, Replications: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		// Either inside the 90% CI or within a small relative error —
		// the paper's "good agreement".
		if !pt.WithinCI && pt.RelErrDPM > 0.05 {
			t.Errorf("timeout %v: exact %v vs sim %v (rel err %v)",
				pt.Timeout, pt.ExactDPM, pt.SimDPM, pt.RelErrDPM)
		}
	}
}

func TestFig6GeneralShapes(t *testing.T) {
	settings := core.SimSettings{RunLength: 60000, Warmup: 30000, Replications: 4}
	pts, err := Fig6General([]float64{50, 800}, Full, settings)
	if err != nil {
		t.Fatal(err)
	}
	smallP, largeP := pts[0], pts[1]
	// Plateau: small awake periods have no loss and (near-)perfect
	// quality while already saving sizeable energy.
	if smallP.WithDPM.Loss != 0 {
		t.Errorf("no loss expected at 50 ms, got %v", smallP.WithDPM.Loss)
	}
	if smallP.WithDPM.Quality < 0.95 {
		t.Errorf("quality at 50 ms should stay high, got %v", smallP.WithDPM.Quality)
	}
	if !(smallP.WithDPM.EnergyPerFrame < 0.6*smallP.NoDPM.EnergyPerFrame) {
		t.Errorf("at 50 ms expect >40%% saving: %v vs %v",
			smallP.WithDPM.EnergyPerFrame, smallP.NoDPM.EnergyPerFrame)
	}
	// Beyond the client-buffer cushion, quality collapses and loss
	// appears.
	if !(largeP.WithDPM.Miss > smallP.WithDPM.Miss+0.05) {
		t.Errorf("miss should rise at 800 ms: %v vs %v",
			largeP.WithDPM.Miss, smallP.WithDPM.Miss)
	}
	if !(largeP.WithDPM.Loss > 0) {
		t.Error("loss should appear at 800 ms")
	}
}

func TestFig7TradeoffMonotone(t *testing.T) {
	curves, err := Fig7Tradeoff([]float64{1, 8, 20},
		core.SimSettings{RunLength: 3000, Replications: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(curves.Markov) != 3 || len(curves.General) != 3 {
		t.Fatalf("curve sizes: %d, %d", len(curves.Markov), len(curves.General))
	}
	// On the Markov curve, smaller timeouts trade energy for waiting:
	// first point has lowest energy and highest waiting time.
	m := curves.Markov
	if !(m[0].Y < m[2].Y && m[0].X > m[2].X) {
		t.Errorf("Markov tradeoff not monotone: %+v", m)
	}
	// The general curve near the knee contains Pareto-dominated points
	// (paper's observation on Fig. 7).
	if len(ParetoDominated(curves.General)) == 0 {
		t.Errorf("expected dominated points on the general curve: %+v", curves.General)
	}
}

func TestFig8TradeoffShapes(t *testing.T) {
	curves, err := Fig8Tradeoff([]float64{50, 400}, Quick,
		core.SimSettings{RunLength: 30000, Warmup: 5000, Replications: 3})
	if err != nil {
		t.Fatal(err)
	}
	m := curves.Markov
	// Longer awake period: lower energy, higher miss.
	if !(m[1].Y < m[0].Y && m[1].X > m[0].X) {
		t.Errorf("Markov streaming tradeoff not monotone: %+v", m)
	}
}

func TestParetoDominated(t *testing.T) {
	pts := []TradeoffPoint{
		{X: 1, Y: 5},
		{X: 2, Y: 6}, // dominated by the first
		{X: 3, Y: 1},
	}
	dom := ParetoDominated(pts)
	if len(dom) != 1 || dom[0] != 1 {
		t.Errorf("ParetoDominated = %v, want [1]", dom)
	}
	if ParetoDominated(pts[:1]) != nil {
		t.Error("single point cannot be dominated")
	}
}

func TestFormatters(t *testing.T) {
	header := []string{"a", "bb"}
	rows := [][]string{{"1", "2"}, {"333", "4"}}
	table := FormatTable(header, rows)
	if !strings.Contains(table, "a    bb") || !strings.Contains(table, "333") {
		t.Errorf("table:\n%s", table)
	}
	csv := FormatCSV(header, rows)
	if !strings.HasPrefix(csv, "a,bb\n1,2\n") {
		t.Errorf("csv:\n%s", csv)
	}
}

func TestRowRenderers(t *testing.T) {
	pts := []RPCPoint{{Timeout: 5}}
	h, rows := Fig3Rows(pts)
	if len(h) != 7 || len(rows) != 1 || rows[0][0] != "5" {
		t.Errorf("Fig3Rows: %v %v", h, rows)
	}
	sp := []StreamingPoint{{Period: 100}}
	h, rows = Fig4Rows(sp)
	if len(h) != 9 || len(rows) != 1 {
		t.Errorf("Fig4Rows: %v %v", h, rows)
	}
	vp := []ValidationPoint{{Timeout: 5, WithinCI: true}}
	h, rows = Fig5Rows(vp)
	if len(h) != 8 || rows[0][6] != "yes" {
		t.Errorf("Fig5Rows: %v %v", h, rows)
	}
	tc := &TradeoffCurves{
		Markov:  []TradeoffPoint{{Knob: 1, X: 2, Y: 3}},
		General: []TradeoffPoint{{Knob: 1, X: 2, Y: 4}},
	}
	h, rows = TradeoffRows(tc, "x", "y")
	if len(h) != 4 || len(rows) != 2 || rows[1][1] != "general" {
		t.Errorf("TradeoffRows: %v %v", h, rows)
	}
}

func TestPolicyComparisonOrderings(t *testing.T) {
	pts, err := PolicyComparison(5)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]RPCMetrics, len(pts))
	for _, pt := range pts {
		byName[pt.Policy.String()] = pt.Metrics
	}
	none, trivial := byName["none"], byName["trivial"]
	timeout, predictive := byName["timeout"], byName["predictive"]
	// Every DPM policy saves energy over the baseline.
	for name, m := range byName {
		if name == "none" {
			continue
		}
		if !(m.EnergyPerRequest < none.EnergyPerRequest) {
			t.Errorf("%s should save energy: %v !< %v", name, m.EnergyPerRequest, none.EnergyPerRequest)
		}
		if !(m.Throughput < none.Throughput) {
			t.Errorf("%s should cost throughput: %v !< %v", name, m.Throughput, none.Throughput)
		}
	}
	// Trivial is the most aggressive (most saving, worst latency);
	// predictive the most conservative among the active policies.
	if !(trivial.EnergyPerRequest < timeout.EnergyPerRequest &&
		timeout.EnergyPerRequest < predictive.EnergyPerRequest) {
		t.Errorf("energy ordering trivial < timeout < predictive violated: %v %v %v",
			trivial.EnergyPerRequest, timeout.EnergyPerRequest, predictive.EnergyPerRequest)
	}
	if !(predictive.WaitingTime < timeout.WaitingTime &&
		timeout.WaitingTime < trivial.WaitingTime) {
		t.Errorf("waiting ordering predictive < timeout < trivial violated: %v %v %v",
			predictive.WaitingTime, timeout.WaitingTime, trivial.WaitingTime)
	}
	h, rows := PolicyRows(pts)
	if len(h) != 4 || len(rows) != 4 {
		t.Errorf("PolicyRows shape: %v %v", h, rows)
	}
}

func TestBatteryLifetime(t *testing.T) {
	pts, err := BatteryLifetime(2000, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d, want 4", len(pts))
	}
	byName := make(map[string]BatteryPoint, len(pts))
	for _, pt := range pts {
		byName[pt.Policy.String()] = pt
	}
	// Every DPM policy extends the battery lifetime over the baseline.
	none := byName["none"]
	for name, pt := range byName {
		if pt.Lifetime <= 0 || pt.RequestsServed <= 0 || pt.MeanPower <= 0 {
			t.Errorf("%s: degenerate point %+v", name, pt)
		}
		if name == "none" {
			continue
		}
		if !(pt.Lifetime > none.Lifetime) {
			t.Errorf("%s should outlive the baseline: %v !> %v", name, pt.Lifetime, none.Lifetime)
		}
	}
	// The most aggressive policy lives longest.
	if !(byName["trivial"].Lifetime > byName["predictive"].Lifetime) {
		t.Errorf("trivial should outlive predictive: %v !> %v",
			byName["trivial"].Lifetime, byName["predictive"].Lifetime)
	}
	// But the baseline serves requests fastest: mean power ordering is
	// the reverse of lifetime ordering.
	if !(none.MeanPower > byName["trivial"].MeanPower) {
		t.Errorf("baseline should draw more power: %v !> %v",
			none.MeanPower, byName["trivial"].MeanPower)
	}
	h, rows := BatteryRows(pts)
	if len(h) != 4 || len(rows) != 4 {
		t.Errorf("BatteryRows shape: %v %v", h, rows)
	}
	if _, err := BatteryLifetime(0, 5, 20); err == nil {
		t.Error("zero budget should error")
	}
}

func TestStreamingStartupTransient(t *testing.T) {
	pts, err := StreamingStartupTransient([]float64{50, 500, 3000}, 100, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// At stream start the buffer is empty with near certainty; the
	// initial frames fill it, so the empty probability falls over time.
	if !(pts[0].PEmptyNoDPM > 0.5) {
		t.Errorf("buffer should start (nearly) empty: %v", pts[0].PEmptyNoDPM)
	}
	if !(pts[2].PEmptyNoDPM < pts[0].PEmptyNoDPM) {
		t.Errorf("empty probability should fall during start-up: %v !< %v",
			pts[2].PEmptyNoDPM, pts[0].PEmptyNoDPM)
	}
	// Probabilities are probabilities.
	for _, pt := range pts {
		for _, p := range []float64{pt.PEmptyDPM, pt.PEmptyNoDPM} {
			if p < -1e-9 || p > 1+1e-9 {
				t.Errorf("probability out of range at t=%v: %v", pt.Time, p)
			}
		}
	}
	h, rows := TransientRows(pts)
	if len(h) != 3 || len(rows) != 3 {
		t.Errorf("TransientRows shape: %v %v", h, rows)
	}
	if _, err := StreamingStartupTransient([]float64{100, 50}, 100, Quick); err == nil {
		t.Error("decreasing sample times should error")
	}
}
