package experiments

import (
	"fmt"

	"repro/internal/aemilia"
	"repro/internal/ctmc"
	"repro/internal/lts"
	"repro/internal/models"
	"repro/internal/pipeline"
)

// TransientPoint is one time sample of the streaming start-up analysis:
// the probability that the client buffer is empty (a fetch arriving now
// would miss) at time t after stream start, with and without the DPM.
type TransientPoint struct {
	// Time is the sample instant (ms after start).
	Time float64
	// PEmptyDPM and PEmptyNoDPM are the buffer-empty probabilities.
	PEmptyDPM, PEmptyNoDPM float64
}

// StreamingStartupTransient analyses the start-up phase of the streaming
// system with the transient (uniformization) solver: how quickly the
// client-side buffer fills during the initial delay, and whether the PSP
// DPM perturbs that transient. An extension beyond the paper's
// steady-state-only Markovian analysis.
func (r *Runner) StreamingStartupTransient(times []float64, awakePeriod float64, scale Scale) ([]TransientPoint, error) {
	if len(times) == 0 {
		times = []float64{50, 150, 300, 500, 700, 1000, 1500, 2500, 4000}
	}
	solve := func(withDPM bool) (*ctmc.CTMC, error) {
		p := streamingParams(scale)
		p.WithDPM = withDPM
		p.AwakePeriod = awakePeriod
		gen := r.genOpts()
		gen.Predicates = []lts.StatePred{{Instance: "B", Action: "miss_frame"}}
		s, err := r.open(pipeline.Spec{
			Key:      fmt.Sprintf("streaming:%#v", p),
			Build:    func() (*aemilia.ArchiType, error) { return models.BuildStreaming(p) },
			Gen:      gen,
			Minimize: r.cfg.Minimize,
		})
		if err != nil {
			return nil, err
		}
		return s.Chain()
	}
	withDPM, err := solve(true)
	if err != nil {
		return nil, err
	}
	noDPM, err := solve(false)
	if err != nil {
		return nil, err
	}

	pEmpty := func(c *ctmc.CTMC, pi []float64) (float64, error) {
		return c.ProbLocallyEnabled(pi, "B.miss_frame")
	}

	out := make([]TransientPoint, 0, len(times))
	// Evolve incrementally between sample instants.
	piD := append([]float64(nil), withDPM.Initial...)
	piN := append([]float64(nil), noDPM.Initial...)
	prev := 0.0
	for _, t := range times {
		if t < prev {
			return nil, fmt.Errorf("experiments: sample times must be non-decreasing")
		}
		dt := t - prev
		var err error
		piD, err = withDPM.TransientFromCtx(r.cfg.Ctx, piD, dt, 1e-9)
		if err != nil {
			return nil, err
		}
		piN, err = noDPM.TransientFromCtx(r.cfg.Ctx, piN, dt, 1e-9)
		if err != nil {
			return nil, err
		}
		prev = t
		pd, err := pEmpty(withDPM, piD)
		if err != nil {
			return nil, err
		}
		pn, err := pEmpty(noDPM, piN)
		if err != nil {
			return nil, err
		}
		out = append(out, TransientPoint{Time: t, PEmptyDPM: pd, PEmptyNoDPM: pn})
	}
	return out, nil
}

// TransientRows renders transient points as table rows.
func TransientRows(points []TransientPoint) ([]string, [][]string) {
	header := []string{"time_ms", "p_buffer_empty_dpm", "p_buffer_empty_nodpm"}
	rows := make([][]string, 0, len(points))
	for _, pt := range points {
		rows = append(rows, []string{f(pt.Time), f(pt.PEmptyDPM), f(pt.PEmptyNoDPM)})
	}
	return header, rows
}
