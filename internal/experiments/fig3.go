package experiments

import (
	"repro/internal/core"
	"repro/internal/models"
)

// RPCMetrics are the three rpc performance indices of paper Fig. 3,
// derived from the raw rewards: throughput (completed requests per ms),
// mean waiting time per request (ms, by Little's law from the waiting
// probability), and energy per request.
type RPCMetrics struct {
	Throughput       float64
	WaitingTime      float64
	EnergyPerRequest float64
}

// RPCPoint is one x-axis point of Fig. 3: the DPM shutdown timeout (ms)
// with the with/without-DPM metric pairs.
type RPCPoint struct {
	Timeout float64
	// WithDPM and NoDPM carry the two systems' metrics.
	WithDPM, NoDPM RPCMetrics
}

// rpcMetricsFromValues derives the Fig. 3 indices from raw rewards.
func rpcMetricsFromValues(v map[string]float64) RPCMetrics {
	thr := v["throughput"]
	m := RPCMetrics{Throughput: thr}
	if thr > 0 {
		m.WaitingTime = v["waiting_time"] / thr
		m.EnergyPerRequest = v["energy"] / thr
	}
	return m
}

// DefaultRPCTimeouts is the paper's Fig. 3 sweep (0–25 ms).
func DefaultRPCTimeouts() []float64 {
	return []float64{0, 0.5, 1, 2, 3, 5, 7.5, 10, 12.5, 15, 20, 25}
}

// rpcTimeoutSweep solves the with-DPM rpc model across positive shutdown
// timeouts as one rate-parametric sweep: the state space is generated
// once, the CTMC is built once, and each timeout only rebinds the
// shutdown rate (slot models.RPCTimeoutSlot gets 1/T — the same value a
// fresh build at that timeout would use) before a warm-started solve.
// Reports come back in timeout order.
func (r *Runner) rpcTimeoutSweep(timeouts []float64) ([]*core.Phase2Report, error) {
	p := models.DefaultRPCParams()
	p.ParametricTimeout = true
	s, err := r.rpcSession(p)
	if err != nil {
		return nil, err
	}
	points := make([][]float64, len(timeouts))
	for i, T := range timeouts {
		points[i] = []float64{1 / T}
	}
	return s.SweepCheckpointed(points, r.checkpointOpts("fig3-rpc-timeout"))
}

// Fig3Markov reproduces the left-hand side of paper Fig. 3: the Markovian
// rpc comparison across DPM shutdown timeouts. Positive timeouts share a
// single generated state space and built chain (rpcTimeoutSweep);
// non-positive timeouts turn the shutdown into an immediate action — a
// structurally different model — and fall back to a per-point build.
// Points are solved concurrently (Config.Workers) and reported in
// timeout order.
func (r *Runner) Fig3Markov(timeouts []float64) ([]RPCPoint, error) {
	if timeouts == nil {
		timeouts = DefaultRPCTimeouts()
	}
	// The no-DPM system does not depend on the timeout: solve it once.
	p0 := models.DefaultRPCParams()
	p0.WithDPM = false
	s0, err := r.rpcSession(p0)
	if err != nil {
		return nil, err
	}
	rep0, err := s0.Phase2()
	if err != nil {
		return nil, err
	}
	base := rpcMetricsFromValues(rep0.Values)

	points := make([]RPCPoint, len(timeouts))
	var swept []float64
	var sweptIdx, fallback []int
	for i, T := range timeouts {
		points[i].Timeout = T
		points[i].NoDPM = base
		if T > 0 {
			swept = append(swept, T)
			sweptIdx = append(sweptIdx, i)
		} else {
			fallback = append(fallback, i)
		}
	}
	if len(swept) > 0 {
		reps, err := r.rpcTimeoutSweep(swept)
		if err != nil {
			return nil, err
		}
		for k, rep := range reps {
			points[sweptIdx[k]].WithDPM = rpcMetricsFromValues(rep.Values)
		}
	}
	if len(fallback) > 0 {
		metrics, err := RunPoints(fallback, r.workersOr(0), func(i int) (RPCMetrics, error) {
			p := models.DefaultRPCParams()
			p.ShutdownTimeout = timeouts[i]
			s, err := r.rpcSession(p)
			if err != nil {
				return RPCMetrics{}, err
			}
			rep, err := s.Phase2()
			if err != nil {
				return RPCMetrics{}, err
			}
			return rpcMetricsFromValues(rep.Values), nil
		})
		if err != nil {
			return nil, err
		}
		for k, i := range fallback {
			points[i].WithDPM = metrics[k]
		}
	}
	return points, nil
}

// Fig3General reproduces the right-hand side of paper Fig. 3: the general
// rpc model (deterministic timings, Gaussian channel) simulated across
// deterministic shutdown timeouts. Sweep points and the replications
// within each run concurrently (settings.Workers, or Config.Workers);
// results are bit-identical at any worker count.
func (r *Runner) Fig3General(timeouts []float64, settings core.SimSettings) ([]RPCPoint, error) {
	if timeouts == nil {
		timeouts = DefaultRPCTimeouts()
	}
	r.applyRPCSimDefaults(&settings)

	p0 := models.DefaultRPCParams()
	p0.WithDPM = false
	s0, err := r.rpcSession(p0)
	if err != nil {
		return nil, err
	}
	rep0, err := s0.Phase3(models.RPCGeneralDistributions(p0), settings)
	if err != nil {
		return nil, err
	}
	base := rpcMetricsFromEstimates(rep0)

	return RunPoints(timeouts, settings.Workers, func(T float64) (RPCPoint, error) {
		p := models.DefaultRPCParams()
		p.ShutdownTimeout = T
		s, err := r.rpcSession(p)
		if err != nil {
			return RPCPoint{}, err
		}
		rep, err := s.Phase3(models.RPCGeneralDistributions(p), settings)
		if err != nil {
			return RPCPoint{}, err
		}
		return RPCPoint{
			Timeout: T,
			WithDPM: rpcMetricsFromEstimates(rep),
			NoDPM:   base,
		}, nil
	})
}

func rpcMetricsFromEstimates(rep *core.Phase3Report) RPCMetrics {
	v := map[string]float64{
		"throughput":   rep.Estimates["throughput"].Mean,
		"waiting_time": rep.Estimates["waiting_time"].Mean,
		"energy":       rep.Estimates["energy"].Mean,
	}
	return rpcMetricsFromValues(v)
}

// applyRPCSimDefaults fills zero simulation settings with values sized for
// the rpc model (times in ms).
func (r *Runner) applyRPCSimDefaults(s *core.SimSettings) {
	if s.RunLength == 0 {
		s.RunLength = 20000
	}
	if s.Warmup == 0 {
		s.Warmup = 500
	}
	if s.Replications == 0 {
		s.Replications = 30
	}
	if s.Seed == 0 {
		s.Seed = 20040628 // DSN 2004
	}
	if s.Workers == 0 {
		s.Workers = r.workersOr(0)
	}
	if s.Ctx == nil {
		s.Ctx = r.cfg.Ctx
	}
}

// Fig3Rows renders Fig. 3 points as table rows.
func Fig3Rows(points []RPCPoint) ([]string, [][]string) {
	header := []string{"timeout_ms",
		"thr_dpm", "thr_nodpm",
		"wait_dpm", "wait_nodpm",
		"energy_per_req_dpm", "energy_per_req_nodpm"}
	rows := make([][]string, 0, len(points))
	for _, pt := range points {
		rows = append(rows, []string{
			f(pt.Timeout),
			f(pt.WithDPM.Throughput), f(pt.NoDPM.Throughput),
			f(pt.WithDPM.WaitingTime), f(pt.NoDPM.WaitingTime),
			f(pt.WithDPM.EnergyPerRequest), f(pt.NoDPM.EnergyPerRequest),
		})
	}
	return header, rows
}
