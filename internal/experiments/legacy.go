// Legacy package-level entry points and their default configuration.
//
// Every experiment lives on Runner, which takes an injected
// pipeline.Config. The package-level functions below are kept for
// callers that predate the session layer: each call snapshots the
// deprecated Default* variables into a Config and runs a fresh Runner,
// so out-of-tree code keeps working for one release with the exact
// pre-refactor behavior (including build-per-call model staging).
package experiments

import (
	"context"
	"runtime"

	"repro/internal/core"
	"repro/internal/ctmc"
	"repro/internal/pipeline"
)

// DefaultWorkers is the worker count the legacy package-level entry
// points snapshot into their Runner's pipeline.Config: it bounds sweep
// concurrency, the per-point state-space generation pool, and the
// steady-state solver pool. Results are bit-identical at any value.
//
// Deprecated: construct a Runner with pipeline.Config{Workers: n}
// instead. This variable only affects the package-level functions, which
// read it at call time.
var DefaultWorkers = runtime.NumCPU()

// DefaultSolve is the steady-state solver configuration the legacy
// entry points snapshot into pipeline.Config.Solve. The golden tests
// force a sweep mode through it; the zero value lets the solver
// auto-select (Gauss-Seidel below the Jacobi threshold, parallel Jacobi
// above).
//
// Deprecated: construct a Runner with pipeline.Config{Solve: opts}
// instead.
var DefaultSolve ctmc.SolveOptions

// DefaultContext cancels every experiment driven through the legacy
// entry points: state-space generation, steady-state solves, sweeps,
// transient integrations, and simulations all poll it. Nil (the
// default) disables cancellation; cancellation surfaces as a
// *fault.CanceledError naming the phase and point that observed it.
//
// Deprecated: construct a Runner with pipeline.Config{Ctx: ctx}
// instead.
var DefaultContext context.Context

// DefaultCheckpointDir and DefaultCheckpointResume are the checkpoint
// policy the legacy entry points snapshot into pipeline.Config: when the
// directory is non-empty every Markovian sweep writes its checkpoint to
// <dir>/<name>.ckpt and, when resume is set, replays completed points
// from an existing file — with reports bit-identical to an uninterrupted
// run.
//
// Deprecated: construct a Runner with pipeline.Config{CheckpointDir,
// CheckpointResume} instead.
var (
	DefaultCheckpointDir    string
	DefaultCheckpointResume bool
)

// DefaultLaneWidth is the sweep-batching lane width the legacy entry
// points snapshot into pipeline.Config: 0 lets the sweep auto-select
// (pipeline.DefaultLaneWidth points per batched solve), 1 forces the
// per-point solver path, any other value is used as given. Results are
// bit-identical at any value.
//
// Deprecated: construct a Runner with pipeline.Config{LaneWidth: n}
// instead.
var DefaultLaneWidth = 0

// defaultConfig snapshots the deprecated package globals into the
// injected-config form. Read at call time so tests and tools that still
// mutate the globals see their values honored.
func defaultConfig() pipeline.Config {
	return pipeline.Config{
		Workers:          DefaultWorkers,
		LaneWidth:        DefaultLaneWidth,
		Ctx:              DefaultContext,
		Solve:            DefaultSolve,
		CheckpointDir:    DefaultCheckpointDir,
		CheckpointResume: DefaultCheckpointResume,
	}
}

// defaultRunner is a fresh Runner over the snapshot of the deprecated
// globals. Each legacy call gets its own Runner — and therefore its own
// session manager — so the package-level API keeps its historical
// build-per-call semantics (one state-space generation per distinct
// model structure per call, none shared across calls).
func defaultRunner() *Runner { return NewRunner(defaultConfig()) }

// RPCNoninterferenceSimplified reproduces the failing check of
// Sect. 3.1 with the package defaults.
//
// Deprecated: use Runner.RPCNoninterferenceSimplified.
func RPCNoninterferenceSimplified() (*Sect3Result, error) {
	return defaultRunner().RPCNoninterferenceSimplified()
}

// RPCNoninterferenceRevised reproduces the passing check of Sect. 3.1
// with the package defaults.
//
// Deprecated: use Runner.RPCNoninterferenceRevised.
func RPCNoninterferenceRevised() (*Sect3Result, error) {
	return defaultRunner().RPCNoninterferenceRevised()
}

// StreamingNoninterference reproduces the passing check of Sect. 3.2
// with the package defaults.
//
// Deprecated: use Runner.StreamingNoninterference.
func StreamingNoninterference(scale Scale) (*Sect3Result, error) {
	return defaultRunner().StreamingNoninterference(scale)
}

// Fig3Markov reproduces the left-hand side of paper Fig. 3 with the
// package defaults.
//
// Deprecated: use Runner.Fig3Markov.
func Fig3Markov(timeouts []float64) ([]RPCPoint, error) {
	return defaultRunner().Fig3Markov(timeouts)
}

// Fig3General reproduces the right-hand side of paper Fig. 3 with the
// package defaults.
//
// Deprecated: use Runner.Fig3General.
func Fig3General(timeouts []float64, settings core.SimSettings) ([]RPCPoint, error) {
	return defaultRunner().Fig3General(timeouts, settings)
}

// Fig4Markov reproduces paper Fig. 4 with the package defaults.
//
// Deprecated: use Runner.Fig4Markov.
func Fig4Markov(periods []float64, scale Scale) ([]StreamingPoint, error) {
	return defaultRunner().Fig4Markov(periods, scale)
}

// Fig5Validation reproduces paper Fig. 5 with the package defaults.
//
// Deprecated: use Runner.Fig5Validation.
func Fig5Validation(timeouts []float64, settings core.SimSettings) ([]ValidationPoint, error) {
	return defaultRunner().Fig5Validation(timeouts, settings)
}

// Fig6General reproduces paper Fig. 6 with the package defaults.
//
// Deprecated: use Runner.Fig6General.
func Fig6General(periods []float64, scale Scale, settings core.SimSettings) ([]StreamingPoint, error) {
	return defaultRunner().Fig6General(periods, scale, settings)
}

// Fig7Tradeoff reproduces paper Fig. 7 with the package defaults. Both
// sub-studies share one Runner, so the rpc models are staged once.
//
// Deprecated: use Runner.Fig7Tradeoff.
func Fig7Tradeoff(timeouts []float64, settings core.SimSettings) (*TradeoffCurves, error) {
	return defaultRunner().Fig7Tradeoff(timeouts, settings)
}

// Fig8Tradeoff reproduces paper Fig. 8 with the package defaults.
//
// Deprecated: use Runner.Fig8Tradeoff.
func Fig8Tradeoff(periods []float64, scale Scale, settings core.SimSettings) (*TradeoffCurves, error) {
	return defaultRunner().Fig8Tradeoff(periods, scale, settings)
}

// PolicyComparison compares the DPM policies with the package defaults.
//
// Deprecated: use Runner.PolicyComparison.
func PolicyComparison(timeout float64) ([]PolicyPoint, error) {
	return defaultRunner().PolicyComparison(timeout)
}

// BatteryLifetime runs the battery-lifetime analysis with the package
// defaults.
//
// Deprecated: use Runner.BatteryLifetime.
func BatteryLifetime(budget, timeout, dt float64) ([]BatteryPoint, error) {
	return defaultRunner().BatteryLifetime(budget, timeout, dt)
}

// StreamingStartupTransient runs the start-up transient analysis with
// the package defaults.
//
// Deprecated: use Runner.StreamingStartupTransient.
func StreamingStartupTransient(times []float64, awakePeriod float64, scale Scale) ([]TransientPoint, error) {
	return defaultRunner().StreamingStartupTransient(times, awakePeriod, scale)
}
