package experiments

import (
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/stats"
)

// ValidationPoint is one x-axis point of paper Fig. 5: the DPM shutdown
// timeout with the analytic (Markovian) server energy consumption and the
// simulated estimate of the general model run with exponential
// distributions, plus the no-DPM pair.
type ValidationPoint struct {
	Timeout float64
	// ExactDPM and SimDPM compare the with-DPM system.
	ExactDPM float64
	SimDPM   stats.Interval
	// ExactNoDPM and SimNoDPM compare the without-DPM system.
	ExactNoDPM float64
	SimNoDPM   stats.Interval
	// WithinCI reports whether both exact values fall inside their 90%
	// intervals.
	WithinCI bool
	// RelErrDPM is the relative error of the with-DPM estimate.
	RelErrDPM float64
}

// Fig5Validation reproduces paper Fig. 5: the cross-validation of the
// general rpc model against the Markovian one. The general model is
// simulated with exponential distributions matching the Markovian rates
// (30 runs, 90% confidence intervals in the paper's setting) and the
// server energy consumption is compared with the analytic solution.
// Each sweep point stages its model in one session and shares it between
// the analytic solution and the simulation; points run concurrently
// (settings.Workers, or Config.Workers) in timeout order.
func (r *Runner) Fig5Validation(timeouts []float64, settings core.SimSettings) ([]ValidationPoint, error) {
	if timeouts == nil {
		timeouts = []float64{1, 5, 10, 15, 20, 25}
	}
	r.applyRPCSimDefaults(&settings)

	solve := func(p models.RPCParams) (float64, stats.Interval, error) {
		s, err := r.rpcSession(p)
		if err != nil {
			return 0, stats.Interval{}, err
		}
		exact, err := s.Phase2()
		if err != nil {
			return 0, stats.Interval{}, err
		}
		simRep, err := s.Phase3(models.RPCExponentialDistributions(p), settings)
		if err != nil {
			return 0, stats.Interval{}, err
		}
		return exact.Values["energy"], simRep.Estimates["energy"], nil
	}

	p0 := models.DefaultRPCParams()
	p0.WithDPM = false
	exact0, sim0, err := solve(p0)
	if err != nil {
		return nil, err
	}

	// Analytic with-DPM values: positive timeouts share one generated
	// state space and built chain (rpcTimeoutSweep); a non-positive
	// timeout is structurally different and is solved per point below,
	// alongside its simulation.
	exactOf := make([]float64, len(timeouts))
	exactDone := make([]bool, len(timeouts))
	var swept []float64
	var sweptIdx []int
	for i, T := range timeouts {
		if T > 0 {
			swept = append(swept, T)
			sweptIdx = append(sweptIdx, i)
		}
	}
	if len(swept) > 0 {
		reps, err := r.rpcTimeoutSweep(swept)
		if err != nil {
			return nil, err
		}
		for k, rep := range reps {
			exactOf[sweptIdx[k]] = rep.Values["energy"]
			exactDone[sweptIdx[k]] = true
		}
	}

	idx := make([]int, len(timeouts))
	for i := range idx {
		idx[i] = i
	}
	return RunPoints(idx, settings.Workers, func(i int) (ValidationPoint, error) {
		T := timeouts[i]
		p := models.DefaultRPCParams()
		p.ShutdownTimeout = T
		s, err := r.rpcSession(p)
		if err != nil {
			return ValidationPoint{}, err
		}
		exact1 := exactOf[i]
		if !exactDone[i] {
			rep, err := s.Phase2()
			if err != nil {
				return ValidationPoint{}, err
			}
			exact1 = rep.Values["energy"]
		}
		simRep, err := s.Phase3(models.RPCExponentialDistributions(p), settings)
		if err != nil {
			return ValidationPoint{}, err
		}
		sim1 := simRep.Estimates["energy"]
		relErr := 0.0
		if exact1 != 0 {
			relErr = abs(sim1.Mean-exact1) / exact1
		}
		return ValidationPoint{
			Timeout:    T,
			ExactDPM:   exact1,
			SimDPM:     sim1,
			ExactNoDPM: exact0,
			SimNoDPM:   sim0,
			WithinCI:   sim1.Contains(exact1) && sim0.Contains(exact0),
			RelErrDPM:  relErr,
		}, nil
	})
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Fig5Rows renders validation points as table rows.
func Fig5Rows(points []ValidationPoint) ([]string, [][]string) {
	header := []string{"timeout_ms",
		"energy_exact_dpm", "energy_sim_dpm", "ci_halfwidth",
		"energy_exact_nodpm", "energy_sim_nodpm",
		"within_ci", "rel_err_dpm"}
	rows := make([][]string, 0, len(points))
	for _, pt := range points {
		rows = append(rows, []string{
			f(pt.Timeout),
			f(pt.ExactDPM), f(pt.SimDPM.Mean), f(pt.SimDPM.HalfWidth),
			f(pt.ExactNoDPM), f(pt.SimNoDPM.Mean),
			boolStr(pt.WithinCI), f(pt.RelErrDPM),
		})
	}
	return header, rows
}

func boolStr(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
