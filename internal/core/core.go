// Package core implements the paper's primary contribution: the
// incremental methodology of Fig. 1 for assessing the impact of a dynamic
// power manager on the functionality and the performance of a
// battery-powered appliance.
//
// The methodology has three phases, each consuming the model of the
// previous one:
//
//  1. Functional phase — noninterference analysis of the untimed model:
//     the DPM must be transparent to the client (Phase1).
//  2. Markovian phase — the functional model is enriched with
//     exponentially distributed durations; the resulting CTMC is solved
//     and reward-based measures are compared with and without the DPM
//     (Phase2).
//  3. General phase — exponential delays are replaced by general
//     distributions; the general model is first validated against the
//     Markovian one by simulating it with exponential durations
//     (Validate), then simulated with the realistic durations and
//     compared with and without the DPM (Phase3).
package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/aemilia"
	"repro/internal/ctmc"
	"repro/internal/dist"
	"repro/internal/elab"
	"repro/internal/lts"
	"repro/internal/measure"
	"repro/internal/noninterference"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Phase1Report is the outcome of the functional phase.
type Phase1Report struct {
	// Result is the noninterference verdict with its diagnostic formula.
	Result *noninterference.Result
	// States and Transitions size the generated state space.
	States, Transitions int
}

// Phase1 generates the state space of the untimed model and checks that
// the high actions do not interfere with the low-observable behaviour.
func Phase1(arch *aemilia.ArchiType, spec noninterference.Spec, opts lts.GenerateOptions) (*Phase1Report, error) {
	m, err := elab.Elaborate(arch)
	if err != nil {
		return nil, fmt.Errorf("core: phase 1: %w", err)
	}
	l, err := lts.Generate(m, opts)
	if err != nil {
		return nil, fmt.Errorf("core: phase 1: %w", err)
	}
	res, err := noninterference.Check(l, spec)
	if err != nil {
		return nil, fmt.Errorf("core: phase 1: %w", err)
	}
	return &Phase1Report{
		Result:      res,
		States:      l.NumStates,
		Transitions: l.NumTransitions(),
	}, nil
}

// Phase2Report is the outcome of the Markovian phase for one model.
type Phase2Report struct {
	// Values holds the exact steady-state value of every measure.
	Values map[string]float64
	// States, Tangible and Vanishing size the state space and the chain.
	States, Tangible, Vanishing int
	// Trace records the solver's escalation history for this point, when
	// the sweep ran with ctmc.EscalateLadder and the base configuration
	// did not converge; nil when the base attempt sufficed. An escalated
	// result is therefore always flagged, never silent.
	Trace *ctmc.SolveTrace
}

// Phase2 generates the rated model's state space, extracts and solves the
// CTMC, and evaluates the measures exactly.
func Phase2(arch *aemilia.ArchiType, measures []measure.Measure, opts lts.GenerateOptions) (*Phase2Report, error) {
	m, err := elab.Elaborate(arch)
	if err != nil {
		return nil, fmt.Errorf("core: phase 2: %w", err)
	}
	return Phase2Model(m, measures, opts)
}

// Phase2Model is Phase2 on an already-elaborated model — the entry point
// for sweeps that reuse models from a BuildCache. The solver runs with
// default options; sweeps that tune the solver use Phase2ModelSolve.
func Phase2Model(m *elab.Model, measures []measure.Measure, opts lts.GenerateOptions) (*Phase2Report, error) {
	return Phase2ModelSolve(m, measures, opts, ctmc.SolveOptions{})
}

// Phase2ModelSolve is Phase2Model with explicit solver options, letting
// callers pick the steady-state sweep mode and worker count alongside the
// generation workers carried by opts.GenWorkers.
func Phase2ModelSolve(m *elab.Model, measures []measure.Measure, opts lts.GenerateOptions, solve ctmc.SolveOptions) (*Phase2Report, error) {
	opts.Predicates = append(opts.Predicates, measure.StatePreds(measures)...)
	l, err := lts.Generate(m, opts)
	if err != nil {
		return nil, fmt.Errorf("core: phase 2: %w", err)
	}
	chain, err := ctmc.Build(l)
	if err != nil {
		return nil, fmt.Errorf("core: phase 2: %w", err)
	}
	pi, err := chain.SteadyState(solve)
	if err != nil {
		return nil, fmt.Errorf("core: phase 2: %w", err)
	}
	values, err := measure.EvalAll(measures, chain, pi)
	if err != nil {
		return nil, fmt.Errorf("core: phase 2: %w", err)
	}
	return &Phase2Report{
		Values:    values,
		States:    l.NumStates,
		Tangible:  chain.N,
		Vanishing: chain.NumVanishing(),
	}, nil
}

// Phase3Report is the outcome of the general (simulation) phase for one
// model.
type Phase3Report struct {
	// Estimates holds the confidence interval of every measure.
	Estimates map[string]stats.Interval
	// Events counts fired transitions across replications.
	Events int64
	// Replications is the number of independent runs.
	Replications int
}

// SimSettings tunes the simulation runs of the third phase.
type SimSettings struct {
	// RunLength is the measured horizon per replication.
	RunLength float64
	// Warmup is the discarded start-up time.
	Warmup float64
	// Replications is the number of runs (default 30, the paper's choice).
	Replications int
	// Seed seeds the master random stream.
	Seed uint64
	// ConfidenceLevel of the reported intervals (default 0.90).
	ConfidenceLevel float64
	// Workers bounds the concurrency of the experiment: the number of
	// simulation replications in flight (sim.Config.Workers) and, for the
	// sweep drivers in internal/experiments, the number of concurrent
	// sweep points. 0 falls back to the experiments package default.
	// Results are bit-identical at any worker count.
	Workers int
	// Ctx cancels the simulation (see sim.Config.Ctx); nil disables
	// cancellation.
	Ctx context.Context
}

// Phase3 simulates the model with the given duration overrides and
// estimates the measures.
func Phase3(arch *aemilia.ArchiType, dists map[sim.Activity]dist.Distribution,
	measures []measure.Measure, settings SimSettings) (*Phase3Report, error) {
	m, err := elab.Elaborate(arch)
	if err != nil {
		return nil, fmt.Errorf("core: phase 3: %w", err)
	}
	return Phase3Model(m, dists, measures, settings)
}

// Phase3Model is Phase3 on an already-elaborated model — the entry point
// for sweeps that reuse models from a BuildCache.
func Phase3Model(m *elab.Model, dists map[sim.Activity]dist.Distribution,
	measures []measure.Measure, settings SimSettings) (*Phase3Report, error) {
	res, err := sim.Run(sim.Config{
		Model:           m,
		Distributions:   dists,
		Measures:        measures,
		RunLength:       settings.RunLength,
		Warmup:          settings.Warmup,
		Replications:    settings.Replications,
		Seed:            settings.Seed,
		ConfidenceLevel: settings.ConfidenceLevel,
		Workers:         settings.Workers,
		Ctx:             settings.Ctx,
	})
	if err != nil {
		return nil, fmt.Errorf("core: phase 3: %w", err)
	}
	return &Phase3Report{
		Estimates:    res.Estimates,
		Events:       res.Events,
		Replications: res.Replications,
	}, nil
}

// MeasureValidation compares one measure across the Markovian solution and
// the exponential simulation.
type MeasureValidation struct {
	// Name is the measure name.
	Name string
	// Exact is the CTMC value.
	Exact float64
	// Estimate is the simulation confidence interval.
	Estimate stats.Interval
	// WithinCI reports whether the exact value lies inside the interval.
	WithinCI bool
	// RelError is |mean-exact| / max(|exact|, 1e-12).
	RelError float64
}

// ValidationReport is the outcome of the Sect. 5.1 cross-validation.
type ValidationReport struct {
	// PerMeasure lists the per-measure comparisons.
	PerMeasure []MeasureValidation
	// Consistent is true when every measure is within tolerance: inside
	// its confidence interval or within the relative-error budget.
	Consistent bool
}

// Validate cross-validates a general model against the Markovian one: the
// caller simulates the model with exponential distributions matching the
// Markovian rates and passes both results here. relTolerance bounds the
// accepted relative error when the exact value falls outside the
// confidence interval (the paper accepts small discretization gaps).
func Validate(exact *Phase2Report, simulated *Phase3Report, relTolerance float64) *ValidationReport {
	rep := &ValidationReport{Consistent: true}
	for name, exactV := range exact.Values {
		ci, ok := simulated.Estimates[name]
		if !ok {
			continue
		}
		relErr := math.Abs(ci.Mean-exactV) / math.Max(math.Abs(exactV), 1e-12)
		mv := MeasureValidation{
			Name:     name,
			Exact:    exactV,
			Estimate: ci,
			WithinCI: ci.Contains(exactV),
			RelError: relErr,
		}
		if !mv.WithinCI && relErr > relTolerance {
			rep.Consistent = false
		}
		rep.PerMeasure = append(rep.PerMeasure, mv)
	}
	return rep
}
