// Package core implements the paper's primary contribution: the
// incremental methodology of Fig. 1 for assessing the impact of a dynamic
// power manager on the functionality and the performance of a
// battery-powered appliance.
//
// The methodology has three phases, each consuming the model of the
// previous one:
//
//  1. Functional phase — noninterference analysis of the untimed model:
//     the DPM must be transparent to the client (Phase1).
//  2. Markovian phase — the functional model is enriched with
//     exponentially distributed durations; the resulting CTMC is solved
//     and reward-based measures are compared with and without the DPM
//     (Phase2).
//  3. General phase — exponential delays are replaced by general
//     distributions; the general model is first validated against the
//     Markovian one by simulating it with exponential durations
//     (Validate), then simulated with the realistic durations and
//     compared with and without the DPM (Phase3).
//
// The phase functions are thin adapters over internal/pipeline sessions:
// each call opens an ephemeral Session on the given model and runs the
// corresponding phase method, so this package, the experiment drivers,
// and any long-lived service share one staged
// elaborate→generate→build→solve implementation. The report types are
// aliases of the pipeline's, so the two layers interoperate without
// conversion.
package core

import (
	"repro/internal/aemilia"
	"repro/internal/ctmc"
	"repro/internal/dist"
	"repro/internal/elab"
	"repro/internal/lts"
	"repro/internal/measure"
	"repro/internal/noninterference"
	"repro/internal/pipeline"
	"repro/internal/sim"
)

// Report and settings types are aliases of the pipeline session layer's:
// a *core.Phase2Report is a *pipeline.Phase2Report, so results flow
// between the legacy entry points and the session API without copying.
type (
	// Phase1Report is the outcome of the functional phase.
	Phase1Report = pipeline.Phase1Report
	// Phase2Report is the outcome of the Markovian phase for one model.
	Phase2Report = pipeline.Phase2Report
	// Phase3Report is the outcome of the general (simulation) phase.
	Phase3Report = pipeline.Phase3Report
	// SimSettings tunes the simulation runs of the third phase.
	SimSettings = pipeline.SimSettings
	// MeasureValidation compares one measure across the Markovian
	// solution and the exponential simulation.
	MeasureValidation = pipeline.MeasureValidation
	// ValidationReport is the outcome of the Sect. 5.1 cross-validation.
	ValidationReport = pipeline.ValidationReport
)

// Phase1 generates the state space of the untimed model and checks that
// the high actions do not interfere with the low-observable behaviour.
func Phase1(arch *aemilia.ArchiType, spec noninterference.Spec, opts lts.GenerateOptions) (*Phase1Report, error) {
	s := pipeline.NewSession(pipeline.Spec{
		Build: func() (*aemilia.ArchiType, error) { return arch, nil },
		Gen:   opts,
	}, pipeline.Config{Ctx: opts.Ctx})
	return s.Phase1(spec)
}

// Phase2 generates the rated model's state space, extracts and solves the
// CTMC, and evaluates the measures exactly.
func Phase2(arch *aemilia.ArchiType, measures []measure.Measure, opts lts.GenerateOptions) (*Phase2Report, error) {
	s := pipeline.NewSession(pipeline.Spec{
		Build:    func() (*aemilia.ArchiType, error) { return arch, nil },
		Measures: measures,
		Gen:      opts,
	}, pipeline.Config{Ctx: opts.Ctx})
	return s.Phase2()
}

// Phase2Model is Phase2 on an already-elaborated model — the entry point
// for sweeps that reuse models from a BuildCache. The solver runs with
// default options; sweeps that tune the solver use Phase2ModelSolve.
func Phase2Model(m *elab.Model, measures []measure.Measure, opts lts.GenerateOptions) (*Phase2Report, error) {
	return Phase2ModelSolve(m, measures, opts, ctmc.SolveOptions{})
}

// Phase2ModelSolve is Phase2Model with explicit solver options, letting
// callers pick the steady-state sweep mode and worker count alongside the
// generation workers carried by opts.GenWorkers.
func Phase2ModelSolve(m *elab.Model, measures []measure.Measure, opts lts.GenerateOptions, solve ctmc.SolveOptions) (*Phase2Report, error) {
	s := pipeline.NewSession(pipeline.Spec{
		Model:    m,
		Measures: measures,
		Gen:      opts,
		Solve:    solve,
	}, pipeline.Config{})
	return s.Phase2()
}

// Phase3 simulates the model with the given duration overrides and
// estimates the measures.
func Phase3(arch *aemilia.ArchiType, dists map[sim.Activity]dist.Distribution,
	measures []measure.Measure, settings SimSettings) (*Phase3Report, error) {
	s := pipeline.NewSession(pipeline.Spec{
		Build:    func() (*aemilia.ArchiType, error) { return arch, nil },
		Measures: measures,
	}, pipeline.Config{})
	return s.Phase3(dists, settings)
}

// Phase3Model is Phase3 on an already-elaborated model — the entry point
// for sweeps that reuse models from a BuildCache.
func Phase3Model(m *elab.Model, dists map[sim.Activity]dist.Distribution,
	measures []measure.Measure, settings SimSettings) (*Phase3Report, error) {
	s := pipeline.NewSession(pipeline.Spec{
		Model:    m,
		Measures: measures,
	}, pipeline.Config{})
	return s.Phase3(dists, settings)
}

// Validate cross-validates a general model against the Markovian one: the
// caller simulates the model with exponential distributions matching the
// Markovian rates and passes both results here. relTolerance bounds the
// accepted relative error when the exact value falls outside the
// confidence interval (the paper accepts small discretization gaps).
// ValidationReport.PerMeasure comes back sorted by measure name.
func Validate(exact *Phase2Report, simulated *Phase3Report, relTolerance float64) *ValidationReport {
	return pipeline.Validate(exact, simulated, relTolerance)
}
