package core

import (
	"strings"
	"testing"

	"repro/internal/lts"
	"repro/internal/models"
	"repro/internal/noninterference"
	"repro/internal/stats"
)

func rpcSpec() noninterference.Spec {
	return noninterference.Spec{
		High: lts.LabelMatcherByNames(models.RPCHighLabels()...),
		Low:  lts.LabelMatcherByInstance("C"),
	}
}

func TestPhase1EndToEnd(t *testing.T) {
	a, err := models.BuildRPCSimplified()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Phase1(a, rpcSpec(), lts.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Transparent {
		t.Error("simplified rpc should fail phase 1")
	}
	if rep.States == 0 || rep.Transitions == 0 {
		t.Error("phase 1 should report the state space size")
	}
}

func TestPhase2EndToEnd(t *testing.T) {
	p := models.DefaultRPCParams()
	a, err := models.BuildRPCRevised(p)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Phase2(a, models.RPCMeasures(p), lts.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"throughput", "waiting_time", "energy"} {
		v, ok := rep.Values[name]
		if !ok {
			t.Fatalf("measure %s missing", name)
		}
		if v <= 0 {
			t.Errorf("measure %s = %v, want positive", name, v)
		}
	}
	if rep.Tangible == 0 || rep.Vanishing == 0 || rep.States != rep.Tangible+rep.Vanishing {
		t.Errorf("state accounting wrong: %d states, %d tangible, %d vanishing",
			rep.States, rep.Tangible, rep.Vanishing)
	}
}

func TestPhase2RejectsFunctionalModel(t *testing.T) {
	p := models.DefaultRPCParams()
	p.Mode = models.Functional
	a, err := models.BuildRPCRevised(p)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Phase2(a, models.RPCMeasures(p), lts.GenerateOptions{})
	if err == nil {
		t.Fatal("an untimed model must be rejected by the Markovian phase")
	}
	if !strings.Contains(err.Error(), "not fully rated") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestPhase3AndValidation(t *testing.T) {
	p := models.DefaultRPCParams()
	p.ShutdownTimeout = 5
	a, err := models.BuildRPCRevised(p)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Phase2(a, models.RPCMeasures(p), lts.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the general model with exponential distributions — the
	// paper's Sect. 5.1 cross-validation.
	simRep, err := Phase3(a, models.RPCExponentialDistributions(p), models.RPCMeasures(p),
		SimSettings{RunLength: 8000, Warmup: 200, Replications: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if simRep.Events == 0 || simRep.Replications != 10 {
		t.Errorf("phase 3 bookkeeping wrong: %+v", simRep)
	}
	val := Validate(exact, simRep, 0.05)
	if len(val.PerMeasure) != 3 {
		t.Fatalf("validated %d measures, want 3", len(val.PerMeasure))
	}
	if !val.Consistent {
		for _, mv := range val.PerMeasure {
			t.Logf("%s: exact %v sim %v withinCI %t relErr %v",
				mv.Name, mv.Exact, mv.Estimate, mv.WithinCI, mv.RelError)
		}
		t.Error("exponential simulation should validate against the CTMC")
	}
}

// makeEstimates builds an estimate map from {name: {mean, halfwidth}}.
func makeEstimates(src map[string][2]float64) map[string]stats.Interval {
	out := make(map[string]stats.Interval, len(src))
	for name, mh := range src {
		out[name] = stats.Interval{Mean: mh[0], HalfWidth: mh[1], Level: 0.9, N: 30}
	}
	return out
}

func TestValidateFlagsInconsistency(t *testing.T) {
	exact := &Phase2Report{Values: map[string]float64{"m": 1.0, "skipped": 2}}
	sim := &Phase3Report{}
	sim.Estimates = makeEstimates(map[string][2]float64{"m": {2.0, 0.01}})
	rep := Validate(exact, sim, 0.05)
	if rep.Consistent {
		t.Error("100% relative error must be inconsistent")
	}
	if len(rep.PerMeasure) != 1 {
		t.Errorf("measures without estimates should be skipped: %+v", rep.PerMeasure)
	}
	// Within tolerance passes even outside the CI.
	sim.Estimates = makeEstimates(map[string][2]float64{"m": {1.01, 0.001}})
	rep = Validate(exact, sim, 0.05)
	if !rep.Consistent {
		t.Error("1% relative error within a 5% budget must be consistent")
	}
}
