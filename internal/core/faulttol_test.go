// Fault-tolerance properties of the sweep driver: cancellation with
// checkpoint/resume bit-identity, panic attribution, deterministic
// escalation traces, and the checkpoint format's failure modes.
package core

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/ctmc"
	"repro/internal/fault"
	"repro/internal/faultinject"
	"repro/internal/lts"
	"repro/internal/models"
)

// rpcSweepFixture returns the parametric rpc model, its measures, and a
// 9-point timeout grid — the shared input of the sweep property tests.
func rpcSweepFixture(t *testing.T) (*models.RPCParams, [][]float64) {
	t.Helper()
	p := models.DefaultRPCParams()
	p.ParametricTimeout = true
	points := make([][]float64, 0, 9)
	for _, T := range []float64{0.5, 1, 2, 4, 5, 7.5, 10, 15, 25} {
		points = append(points, []float64{1 / T})
	}
	return &p, points
}

func requireSameReports(t *testing.T, tag string, want, got []*Phase2Report) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d reports vs %d", tag, len(want), len(got))
	}
	for i := range want {
		if got[i] == nil {
			t.Fatalf("%s: report %d missing", tag, i)
		}
		for name, w := range want[i].Values {
			if g := got[i].Values[name]; g != w {
				t.Errorf("%s: point %d measure %s: %v != %v (must be bit-identical)", tag, i, name, g, w)
			}
		}
		if want[i].States != got[i].States || want[i].Tangible != got[i].Tangible {
			t.Errorf("%s: point %d sizes differ", tag, i)
		}
	}
}

// TestPhase2SweepCancelCheckpointResume is the flagship resilience
// property: a sweep canceled mid-run with checkpointing enabled, then
// resumed, produces reports bit-identical to an uninterrupted run — at
// every combination of worker count and lane width.
func TestPhase2SweepCancelCheckpointResume(t *testing.T) {
	p, points := rpcSweepFixture(t)
	m := elaborateRPC(t, *p)
	measures := models.RPCMeasures(*p)

	baseline, err := Phase2Sweep(m, measures, points, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 8} {
		for _, lanes := range []int{1, 8} {
			tag := "workers=" + itoa(workers) + " lanes=" + itoa(lanes)
			path := filepath.Join(t.TempDir(), "sweep.ckpt")

			// Cancel on the second solve to pass iteration 2: the anchor
			// completes (and is checkpointed), a later point is interrupted.
			ctx, cancel := context.WithCancel(context.Background())
			var fires atomic.Int64
			plan := faultinject.NewPlan().Arm(faultinject.SiteSolveIteration, 2).
				OnFire(faultinject.SiteSolveIteration, func(int) {
					if fires.Add(1) == 2 {
						cancel()
					}
				})
			faultinject.Activate(plan)
			_, err := Phase2Sweep(m, measures, points, SweepOptions{
				Workers:    workers,
				LaneWidth:  lanes,
				Ctx:        ctx,
				Checkpoint: &CheckpointOptions{Path: path, Every: 1},
			})
			faultinject.Deactivate()
			cancel()
			if err == nil {
				t.Fatalf("%s: cancellation ignored", tag)
			}
			var ce *fault.CanceledError
			if !errors.As(err, &ce) {
				t.Fatalf("%s: want *fault.CanceledError, got %T: %v", tag, err, err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%s: cause chain lost context.Canceled: %v", tag, err)
			}
			if _, err := os.Stat(path); err != nil {
				t.Fatalf("%s: canceled sweep left no checkpoint: %v", tag, err)
			}

			resumed, err := Phase2Sweep(m, measures, points, SweepOptions{
				Workers:    workers,
				LaneWidth:  lanes,
				Checkpoint: &CheckpointOptions{Path: path, Every: 1, Resume: true},
			})
			if err != nil {
				t.Fatalf("%s: resume failed: %v", tag, err)
			}
			requireSameReports(t, tag, baseline, resumed)
		}
	}
}

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return string(rune('0'+n/10)) + string(rune('0'+n%10))
}

// TestPhase2SweepPanicAttribution injects a panic at sweep point 3 and
// checks it surfaces as a typed worker-panic error — injected fault
// intact — instead of crashing, under every solve path of the sweep.
func TestPhase2SweepPanicAttribution(t *testing.T) {
	p, points := rpcSweepFixture(t)
	m := elaborateRPC(t, *p)
	measures := models.RPCMeasures(*p)

	for _, workers := range []int{1, 8} {
		for _, lanes := range []int{1, 8} {
			tag := "workers=" + itoa(workers) + " lanes=" + itoa(lanes)
			plan := faultinject.NewPlan().Arm(faultinject.SiteSweepPoint, 3)
			faultinject.Activate(plan)
			_, err := Phase2Sweep(m, measures, points, SweepOptions{Workers: workers, LaneWidth: lanes})
			faultinject.Deactivate()
			if err == nil {
				t.Fatalf("%s: injected panic vanished", tag)
			}
			var wpe *fault.WorkerPanicError
			if !errors.As(err, &wpe) {
				t.Fatalf("%s: want *fault.WorkerPanicError, got %T: %v", tag, err, err)
			}
			if wpe.Pool != "core.sweep" {
				t.Errorf("%s: panic attributed to pool %q, want core.sweep", tag, wpe.Pool)
			}
			if !errors.Is(err, fault.ErrWorkerPanic) {
				t.Errorf("%s: errors.Is(err, fault.ErrWorkerPanic) is false", tag)
			}
			var ie *faultinject.InjectedError
			if !errors.As(err, &ie) || ie.Site != faultinject.SiteSweepPoint || ie.Key != 3 {
				t.Errorf("%s: injected fault not recovered intact: %v", tag, err)
			}
			if !strings.Contains(err.Error(), "point") {
				t.Errorf("%s: error %q does not name a point", tag, err)
			}
		}
	}
}

// TestPhase2SweepEscalationTraceDeterministic forces a non-convergence at
// sweep point 2 and checks the ladder recovers it with values
// bit-identical to an uninjected run and an attempt trace that is a pure
// function of the input — identical at every worker count and lane width.
func TestPhase2SweepEscalationTraceDeterministic(t *testing.T) {
	p, points := rpcSweepFixture(t)
	m := elaborateRPC(t, *p)
	measures := models.RPCMeasures(*p)
	// Auto mode resolves the scheme per worker count; trace-identity needs
	// a pinned sweep.
	solve := ctmc.SolveOptions{Sweep: ctmc.SweepGaussSeidel, Escalation: ctmc.EscalateLadder}

	baseline, err := Phase2Sweep(m, measures, points, SweepOptions{Solve: solve})
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range baseline {
		if rep.Trace != nil {
			t.Fatalf("uninjected point %d carries a trace: %+v", i, rep.Trace)
		}
	}

	var traces []*ctmc.SolveTrace
	for _, workers := range []int{1, 8} {
		for _, lanes := range []int{1, 8} {
			tag := "workers=" + itoa(workers) + " lanes=" + itoa(lanes)
			plan := faultinject.NewPlan().Arm(faultinject.SiteSweepNonconverge, 2)
			faultinject.Activate(plan)
			reps, err := Phase2Sweep(m, measures, points, SweepOptions{
				Solve:     solve,
				Workers:   workers,
				LaneWidth: lanes,
			})
			faultinject.Deactivate()
			if err != nil {
				t.Fatalf("%s: ladder did not recover the forced failure: %v", tag, err)
			}
			requireSameReports(t, tag, baseline, reps)
			trace := reps[2].Trace
			if trace == nil || !trace.Escalated() {
				t.Fatalf("%s: recovered point 2 has no escalation trace", tag)
			}
			if got := trace.Attempts[0].Action; got != "forced-nonconvergence" {
				t.Errorf("%s: base attempt action %q, want forced-nonconvergence", tag, got)
			}
			last := trace.Attempts[len(trace.Attempts)-1]
			if !last.Converged || last.Action != "raise-max-iterations" {
				t.Errorf("%s: recovery attempt wrong: %+v", tag, last)
			}
			for i, rep := range reps {
				if i != 2 && rep.Trace != nil {
					t.Errorf("%s: unescalated point %d carries a trace", tag, i)
				}
			}
			traces = append(traces, trace)
		}
	}
	for i := 1; i < len(traces); i++ {
		if !reflect.DeepEqual(traces[0], traces[i]) {
			t.Errorf("trace depends on scheduling:\n first: %+v\n other: %+v", traces[0], traces[i])
		}
	}

	// Without the ladder the forced failure must surface as a convergence
	// error attributed to point 2 — never silently succeed.
	plan := faultinject.NewPlan().Arm(faultinject.SiteSweepNonconverge, 2)
	faultinject.Activate(plan)
	_, err = Phase2Sweep(m, measures, points, SweepOptions{
		Solve: ctmc.SolveOptions{Sweep: ctmc.SweepGaussSeidel},
	})
	faultinject.Deactivate()
	if err == nil {
		t.Fatal("forced non-convergence vanished without the ladder")
	}
	var conv *ctmc.ConvergenceError
	if !errors.As(err, &conv) || conv.Point != 2 {
		t.Errorf("forced failure not attributed to point 2: %v", err)
	}
}

// TestPhase2SweepCheckpointWriteFailure checks that checkpoint writes are
// strict: an injected failure of the first write aborts the sweep with
// the typed checkpoint error instead of carrying on unresumable.
func TestPhase2SweepCheckpointWriteFailure(t *testing.T) {
	p, points := rpcSweepFixture(t)
	m := elaborateRPC(t, *p)
	measures := models.RPCMeasures(*p)
	path := filepath.Join(t.TempDir(), "sweep.ckpt")

	plan := faultinject.NewPlan().Arm(faultinject.SiteCheckpointWrite, 0)
	faultinject.Activate(plan)
	_, err := Phase2Sweep(m, measures, points, SweepOptions{
		Checkpoint: &CheckpointOptions{Path: path, Every: 1},
	})
	faultinject.Deactivate()
	if err == nil {
		t.Fatal("failed checkpoint write ignored")
	}
	var cke *CheckpointError
	if !errors.As(err, &cke) || cke.Op != "write" {
		t.Fatalf("want a write *CheckpointError, got %T: %v", err, err)
	}
	var ie *faultinject.InjectedError
	if !errors.As(err, &ie) || ie.Site != faultinject.SiteCheckpointWrite {
		t.Errorf("injected write fault not recovered intact: %v", err)
	}
}

// TestCheckpointResumeRejects checks the resume guards: corrupt files and
// structurally mismatched checkpoints abort loudly; a missing file means
// a fresh start.
func TestCheckpointResumeRejects(t *testing.T) {
	p, points := rpcSweepFixture(t)
	m := elaborateRPC(t, *p)
	measures := models.RPCMeasures(*p)
	path := filepath.Join(t.TempDir(), "sweep.ckpt")

	// Missing file: resume is a fresh start, and completes the checkpoint.
	reps, err := Phase2Sweep(m, measures, points, SweepOptions{
		Checkpoint: &CheckpointOptions{Path: path, Every: 1, Resume: true},
	})
	if err != nil {
		t.Fatal(err)
	}

	// A full checkpoint resumes to identical reports.
	resumed, err := Phase2Sweep(m, measures, points, SweepOptions{
		Checkpoint: &CheckpointOptions{Path: path, Every: 1, Resume: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	requireSameReports(t, "complete-resume", reps, resumed)

	// A different point set must be rejected as a mismatch.
	_, err = Phase2Sweep(m, measures, points[:5], SweepOptions{
		Checkpoint: &CheckpointOptions{Path: path, Resume: true},
	})
	if !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("mismatched sweep resumed: %v", err)
	}

	// A flipped byte must be detected by the checksum.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Phase2Sweep(m, measures, points, SweepOptions{
		Checkpoint: &CheckpointOptions{Path: path, Resume: true},
	})
	if !errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("corrupt checkpoint resumed: %v", err)
	}

	// Checkpointing with no path is a configuration error.
	if _, err := Phase2Sweep(m, measures, points, SweepOptions{Checkpoint: &CheckpointOptions{}}); err == nil {
		t.Error("empty checkpoint path accepted")
	}
}

// TestPhase2SweepEdgePoints covers the degenerate sweeps: no points, a
// single (anchor-only) point, and duplicate rate vectors.
func TestPhase2SweepEdgePoints(t *testing.T) {
	p, _ := rpcSweepFixture(t)
	m := elaborateRPC(t, *p)
	measures := models.RPCMeasures(*p)

	// Zero points: nothing to do, no error.
	reps, err := Phase2Sweep(m, measures, nil, SweepOptions{})
	if err != nil || reps != nil {
		t.Errorf("empty sweep: got (%v, %v), want (nil, nil)", reps, err)
	}

	// Single point at the model's own rates: the sweep is exactly one
	// cold anchor solve, bit-identical to the non-sweep phase-2 path.
	l, err := lts.Generate(m, lts.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defaults := l.SlotDefaults()
	single, err := Phase2Sweep(m, measures, [][]float64{defaults}, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Phase2Model(m, measures, lts.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range direct.Values {
		if got := single[0].Values[name]; got != want {
			t.Errorf("single-point sweep measure %s: %v != %v (must match the direct solve bit for bit)", name, got, want)
		}
	}

	// A slot-free model is accepted as exactly one empty point — the
	// checkpointable single solve the CLI uses — but never as a sweep.
	plain := elaborateRPC(t, models.DefaultRPCParams())
	plainMeasures := models.RPCMeasures(models.DefaultRPCParams())
	path := filepath.Join(t.TempDir(), "single.ckpt")
	solo, err := Phase2Sweep(plain, plainMeasures, [][]float64{{}}, SweepOptions{
		Checkpoint: &CheckpointOptions{Path: path, Every: 1},
	})
	if err != nil {
		t.Fatalf("slot-free single-point sweep failed: %v", err)
	}
	plainDirect, err := Phase2Model(plain, plainMeasures, lts.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range plainDirect.Values {
		if got := solo[0].Values[name]; got != want {
			t.Errorf("slot-free solve measure %s: %v != %v", name, got, want)
		}
	}
	resumedSolo, err := Phase2Sweep(plain, plainMeasures, [][]float64{{}}, SweepOptions{
		Checkpoint: &CheckpointOptions{Path: path, Every: 1, Resume: true},
	})
	if err != nil {
		t.Fatalf("slot-free resume failed: %v", err)
	}
	requireSameReports(t, "slot-free resume", solo, resumedSolo)
	if _, err := Phase2Sweep(plain, plainMeasures, [][]float64{{}, {}}, SweepOptions{}); err == nil {
		t.Error("multi-point sweep of a slot-free model accepted")
	}

	// Duplicate rate vectors: non-anchor duplicates run the same solve
	// from the same anchor seed, so their reports are bit-identical.
	dup := [][]float64{{1. / 5}, {1. / 2}, {1. / 10}, {1. / 2}, {1. / 10}}
	for _, lanes := range []int{1, 8} {
		reps, err := Phase2Sweep(m, measures, dup, SweepOptions{LaneWidth: lanes})
		if err != nil {
			t.Fatal(err)
		}
		for _, pair := range [][2]int{{1, 3}, {2, 4}} {
			a, b := reps[pair[0]].Values, reps[pair[1]].Values
			for name, va := range a {
				if vb := b[name]; va != vb {
					t.Errorf("lanes=%d: duplicate points %v: measure %s differs: %v != %v",
						lanes, pair, name, va, vb)
				}
			}
		}
	}
}
