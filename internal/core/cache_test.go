package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/aemilia"
	"repro/internal/models"
)

func TestBuildCacheBuildsOnce(t *testing.T) {
	var cache BuildCache[models.RPCParams]
	var builds atomic.Int32
	p := models.DefaultRPCParams()
	build := func() (*aemilia.ArchiType, error) {
		builds.Add(1)
		return models.BuildRPCRevised(p)
	}

	first, err := cache.Elaborated(p, build)
	if err != nil {
		t.Fatal(err)
	}
	again, err := cache.Elaborated(p, build)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Error("expected the same cached *elab.Model pointer")
	}
	if n := builds.Load(); n != 1 {
		t.Errorf("build ran %d times, want 1", n)
	}

	// A different key builds separately.
	p2 := p
	p2.MeanServiceTime *= 2
	if _, err := cache.Elaborated(p2, func() (*aemilia.ArchiType, error) {
		builds.Add(1)
		return models.BuildRPCRevised(p2)
	}); err != nil {
		t.Fatal(err)
	}
	if n := builds.Load(); n != 2 {
		t.Errorf("build ran %d times after second key, want 2", n)
	}
	if cache.Len() != 2 {
		t.Errorf("cache.Len() = %d, want 2", cache.Len())
	}
}

func TestBuildCacheSingleFlight(t *testing.T) {
	var cache BuildCache[int]
	var builds atomic.Int32
	p := models.DefaultRPCParams()

	var wg sync.WaitGroup
	results := make([]*struct {
		m   any
		err error
	}, 16)
	for i := range results {
		results[i] = &struct {
			m   any
			err error
		}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := cache.Elaborated(0, func() (*aemilia.ArchiType, error) {
				builds.Add(1)
				return models.BuildRPCRevised(p)
			})
			results[i].m, results[i].err = m, err
		}(i)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Errorf("concurrent lookups ran the build %d times, want 1", n)
	}
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("goroutine %d: %v", i, r.err)
		}
		if r.m != results[0].m {
			t.Errorf("goroutine %d saw a different model", i)
		}
	}
}

func TestBuildCacheCachesErrors(t *testing.T) {
	var cache BuildCache[string]
	boom := errors.New("boom")
	var builds atomic.Int32
	build := func() (*aemilia.ArchiType, error) {
		builds.Add(1)
		return nil, boom
	}
	if _, err := cache.Elaborated("bad", build); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, err := cache.Elaborated("bad", build); !errors.Is(err, boom) {
		t.Fatalf("retry err = %v, want cached boom", err)
	}
	if n := builds.Load(); n != 1 {
		t.Errorf("failed build ran %d times, want 1", n)
	}
}
