package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/ctmc"
	"repro/internal/elab"
	"repro/internal/lts"
	"repro/internal/measure"
	"repro/internal/models"
)

// elaborateRPC elaborates the revised rpc model for the given params.
func elaborateRPC(t *testing.T, p models.RPCParams) *elab.Model {
	t.Helper()
	a, err := models.BuildRPCRevised(p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := elab.Elaborate(a)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// elaborateStreaming elaborates the streaming model (quick capacities).
func elaborateStreaming(t *testing.T, p models.StreamingParams) *elab.Model {
	t.Helper()
	a, err := models.BuildStreaming(p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := elab.Elaborate(a)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func quickStreamingParams() models.StreamingParams {
	p := models.DefaultStreamingParams()
	p.APCapacity, p.ClientCapacity = 3, 3
	return p
}

func buildChain(t *testing.T, m *elab.Model) *ctmc.CTMC {
	t.Helper()
	l, err := lts.Generate(m, lts.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := ctmc.Build(l)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRebindMatchesFreshBuild pins the heart of the rebind contract: a
// parametric chain rebound to rate 1/T is bit-identical — generator
// entries, exit rates — to a fresh build of the non-parametric model at
// shutdown timeout T, and its steady-state measures match a fresh solve
// within solver tolerance. Checked for the rpc (timeout) and streaming
// (awake period) models.
func TestRebindMatchesFreshBuild(t *testing.T) {
	type variant struct {
		name       string
		parametric func(t *testing.T) *ctmc.CTMC
		fresh      func(t *testing.T, knob float64) *ctmc.CTMC
		knobs      []float64
	}
	variants := []variant{
		{
			name: "rpc-timeout",
			parametric: func(t *testing.T) *ctmc.CTMC {
				p := models.DefaultRPCParams()
				p.ParametricTimeout = true
				return buildChain(t, elaborateRPC(t, p))
			},
			fresh: func(t *testing.T, T float64) *ctmc.CTMC {
				p := models.DefaultRPCParams()
				p.ShutdownTimeout = T
				return buildChain(t, elaborateRPC(t, p))
			},
			knobs: []float64{0.5, 5, 25},
		},
		{
			name: "streaming-period",
			parametric: func(t *testing.T) *ctmc.CTMC {
				p := quickStreamingParams()
				p.ParametricPeriod = true
				return buildChain(t, elaborateStreaming(t, p))
			},
			fresh: func(t *testing.T, P float64) *ctmc.CTMC {
				p := quickStreamingParams()
				p.AwakePeriod = P
				return buildChain(t, elaborateStreaming(t, p))
			},
			knobs: []float64{50, 400},
		},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			chain := v.parametric(t)
			if chain.NumRateSlots() != 1 {
				t.Fatalf("parametric chain has %d rate slots, want 1", chain.NumRateSlots())
			}
			for _, knob := range v.knobs {
				if err := chain.Rebind([]float64{1 / knob}); err != nil {
					t.Fatalf("rebind to knob %v: %v", knob, err)
				}
				want := v.fresh(t, knob)
				if chain.N != want.N {
					t.Fatalf("knob %v: rebound chain has %d states, fresh build %d", knob, chain.N, want.N)
				}
				for ci := range want.Rows {
					if chain.Exit[ci] != want.Exit[ci] {
						t.Fatalf("knob %v state %d: exit %v != fresh %v", knob, ci, chain.Exit[ci], want.Exit[ci])
					}
					a, b := chain.Rows[ci], want.Rows[ci]
					if len(a) != len(b) {
						t.Fatalf("knob %v state %d: %d entries != fresh %d", knob, ci, len(a), len(b))
					}
					for j := range a {
						if a[j] != b[j] {
							t.Fatalf("knob %v state %d entry %d: %+v != fresh %+v", knob, ci, j, a[j], b[j])
						}
					}
				}
			}
		})
	}
}

// TestRebindStructuralErrors pins the error contract: rebinding to a
// value that would change the chain's structure (zero, negative, NaN or
// infinite rate) is rejected with ErrStructuralRebind, a length mismatch
// with a *RebindError, and the chain is untouched either way. A chain
// built without slots rejects any non-empty rebind.
func TestRebindStructuralErrors(t *testing.T) {
	p := models.DefaultRPCParams()
	p.ParametricTimeout = true
	chain := buildChain(t, elaborateRPC(t, p))
	if err := chain.Rebind([]float64{1.0 / 5}); err != nil {
		t.Fatal(err)
	}
	before := make([]float64, chain.N)
	copy(before, chain.Exit)

	for _, bad := range [][]float64{
		{0}, {-1}, {math.NaN()}, {math.Inf(1)},
	} {
		err := chain.Rebind(bad)
		if err == nil {
			t.Fatalf("rebind to %v should fail", bad)
		}
		if !errors.Is(err, ctmc.ErrStructuralRebind) {
			t.Errorf("rebind to %v: error %v should wrap ErrStructuralRebind", bad, err)
		}
	}
	for _, bad := range [][]float64{nil, {}, {1, 2}} {
		err := chain.Rebind(bad)
		if err == nil {
			t.Fatalf("rebind with %d values should fail", len(bad))
		}
		var re *ctmc.RebindError
		if !errors.As(err, &re) {
			t.Errorf("rebind with %d values: got %T, want *RebindError", len(bad), err)
		}
		if errors.Is(err, ctmc.ErrStructuralRebind) {
			t.Errorf("length mismatch should not claim a structural change: %v", err)
		}
	}
	for ci, e := range chain.Exit {
		if e != before[ci] {
			t.Fatalf("failed rebinds must leave the chain untouched (state %d: %v != %v)", ci, e, before[ci])
		}
	}

	plain := buildChain(t, elaborateRPC(t, models.DefaultRPCParams()))
	if plain.NumRateSlots() != 0 {
		t.Fatalf("non-parametric chain reports %d slots", plain.NumRateSlots())
	}
	if err := plain.Rebind([]float64{1}); err == nil {
		t.Fatal("rebinding a slot-free chain should fail")
	}
	if err := plain.Rebind(nil); err != nil {
		t.Fatalf("empty rebind of a slot-free chain is a no-op, got %v", err)
	}
}

// TestPhase2SweepDeterministicAndFresh checks the sweep engine on the rpc
// model: reports are bit-identical at 1 and 8 workers, and every point
// matches an independent per-point Phase2ModelSolve within solver
// tolerance (the sweep warm-starts from the anchor, so the iteration
// trajectory — not the fixed point — differs).
func TestPhase2SweepDeterministicAndFresh(t *testing.T) {
	pp := models.DefaultRPCParams()
	pp.ParametricTimeout = true
	m := elaborateRPC(t, pp)
	measures := models.RPCMeasures(pp)
	timeouts := []float64{0.5, 2, 5, 10, 25}
	points := make([][]float64, len(timeouts))
	for i, T := range timeouts {
		points[i] = []float64{1 / T}
	}

	var byWorkers [][]*Phase2Report
	for _, workers := range []int{1, 8} {
		reps, err := Phase2Sweep(m, measures, points, SweepOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		byWorkers = append(byWorkers, reps)
	}
	for i := range points {
		a, b := byWorkers[0][i].Values, byWorkers[1][i].Values
		for name, va := range a {
			if vb := b[name]; va != vb {
				t.Errorf("point %d measure %s: workers=1 %v != workers=8 %v (must be bit-identical)", i, name, va, vb)
			}
		}
	}

	for i, T := range timeouts {
		p := models.DefaultRPCParams()
		p.ShutdownTimeout = T
		fresh, err := Phase2ModelSolve(elaborateRPC(t, p), models.RPCMeasures(p), lts.GenerateOptions{}, ctmc.SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for name, want := range fresh.Values {
			got := byWorkers[0][i].Values[name]
			rel := math.Abs(got-want) / math.Max(math.Abs(want), 1e-12)
			if rel > 1e-6 {
				t.Errorf("timeout %v measure %s: sweep %v vs fresh %v (rel %g)", T, name, got, want, rel)
			}
		}
	}
}

// TestPhase2SweepLaneWidths checks the batched sweep engine: reports are
// bit-identical at every lane width (per-point path included) crossed with
// every worker count, on both paper models.
func TestPhase2SweepLaneWidths(t *testing.T) {
	type variant struct {
		name     string
		model    *elab.Model
		measures []measure.Measure
		knobs    []float64
	}
	pp := models.DefaultRPCParams()
	pp.ParametricTimeout = true
	sp := quickStreamingParams()
	sp.ParametricPeriod = true
	variants := []variant{
		{"rpc", elaborateRPC(t, pp), models.RPCMeasures(pp), []float64{0.5, 1, 2, 5, 7.5, 10, 15, 20, 25}},
		{"streaming", elaborateStreaming(t, sp), models.StreamingMeasures(sp), []float64{5, 25, 50, 100, 200, 400, 600, 800}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			points := make([][]float64, len(v.knobs))
			for i, k := range v.knobs {
				points[i] = []float64{1 / k}
			}
			base, err := Phase2Sweep(v.model, v.measures, points, SweepOptions{LaneWidth: 1, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, laneWidth := range []int{0, 3, 8} {
				for _, workers := range []int{1, 8} {
					reps, err := Phase2Sweep(v.model, v.measures, points, SweepOptions{LaneWidth: laneWidth, Workers: workers})
					if err != nil {
						t.Fatalf("lanes=%d workers=%d: %v", laneWidth, workers, err)
					}
					for i := range points {
						for name, want := range base[i].Values {
							if got := reps[i].Values[name]; got != want {
								t.Errorf("lanes=%d workers=%d point %d measure %s: %v != %v (must be bit-identical)",
									laneWidth, workers, i, name, got, want)
							}
						}
					}
				}
			}
		})
	}
}

// TestPhase2SweepConvergenceErrorPoint pins the failure attribution of the
// sweep: a failed solve surfaces a ConvergenceError carrying the global
// sweep-point index and rate vector, and the wrapping message names the
// same point, on both the per-point and the batched path.
func TestPhase2SweepConvergenceErrorPoint(t *testing.T) {
	pp := models.DefaultRPCParams()
	pp.ParametricTimeout = true
	m := elaborateRPC(t, pp)
	points := [][]float64{{1. / 5}, {1. / 2}, {1. / 25}}
	for _, laneWidth := range []int{1, 8} {
		_, err := Phase2Sweep(m, models.RPCMeasures(pp), points, SweepOptions{
			LaneWidth: laneWidth,
			Solve:     ctmc.SolveOptions{MaxIterations: 2},
		})
		if !errors.Is(err, ctmc.ErrNoConvergence) {
			t.Fatalf("lanes=%d: want ErrNoConvergence, got %v", laneWidth, err)
		}
		var ce *ctmc.ConvergenceError
		if !errors.As(err, &ce) {
			t.Fatalf("lanes=%d: want *ConvergenceError, got %v", laneWidth, err)
		}
		if ce.Point != 0 {
			t.Errorf("lanes=%d: Point = %d, want 0 (the anchor fails first)", laneWidth, ce.Point)
		}
		if len(ce.Params) != 1 || ce.Params[0] != points[0][0] {
			t.Errorf("lanes=%d: Params = %v, want %v", laneWidth, ce.Params, points[0])
		}
		if !strings.Contains(err.Error(), "point 0") {
			t.Errorf("lanes=%d: error text %q should name point 0", laneWidth, err)
		}
	}
}

// TestPhase2SweepRejectsBadInput pins the sweep's input contract.
func TestPhase2SweepRejectsBadInput(t *testing.T) {
	plain := elaborateRPC(t, models.DefaultRPCParams())
	if _, err := Phase2Sweep(plain, nil, [][]float64{{1}}, SweepOptions{}); err == nil {
		t.Error("sweeping a slot-free model should fail")
	}

	pp := models.DefaultRPCParams()
	pp.ParametricTimeout = true
	m := elaborateRPC(t, pp)
	if _, err := Phase2Sweep(m, nil, [][]float64{{1, 2}}, SweepOptions{}); err == nil {
		t.Error("a point with the wrong arity should fail")
	}
	if _, err := Phase2Sweep(m, nil, [][]float64{{1}}, SweepOptions{
		Solve: ctmc.SolveOptions{WarmStart: []float64{1}},
	}); err == nil {
		t.Error("a caller-supplied WarmStart should be rejected")
	}
	reps, err := Phase2Sweep(m, nil, nil, SweepOptions{})
	if err != nil || reps != nil {
		t.Errorf("empty sweep: got (%v, %v), want (nil, nil)", reps, err)
	}
	if _, err := Phase2Sweep(m, []measure.Measure{}, [][]float64{{0}}, SweepOptions{}); err == nil {
		t.Error("a structure-changing point should fail")
	}
}
