package core

import (
	"context"
	"sync"

	"repro/internal/aemilia"
	"repro/internal/elab"
	"repro/internal/fault"
)

// BuildCache memoizes elaborated architectural models keyed by their
// parameter set, so that sweeps which rebuild the same structure — the
// shared no-DPM baseline, the exact/simulated pair of a cross-validation
// point — parse and elaborate it once. An elaborated model is immutable,
// so a cached *elab.Model may be shared by any number of goroutines; the
// cache itself is safe for concurrent use and builds every key exactly
// once, with duplicate suppression when several sweep workers ask for the
// same key simultaneously.
//
// Sharing one model across sweeps composes with the interned state-space
// representation (internal/statespace): generation explores a shared
// model by BFS and assigns state identifiers in first-intern order, so
// every sweep that generates from the same cached model observes the
// same identifier for the same global state — a property the golden
// bit-identity tests rely on at any worker count. The same immutability
// makes a cached model safe to hand to the parallel generator
// (lts.GenerateOptions.GenWorkers): its frontier workers call Successors
// on the shared model concurrently without synchronization.
type BuildCache[K comparable] struct {
	mu      sync.Mutex
	entries map[K]*cacheEntry
}

type cacheEntry struct {
	once  sync.Once
	model *elab.Model
	err   error
}

// Elaborated returns the model for key, building and elaborating it on
// first use. A failed build is cached too: retrying with the same key
// returns the same error without rebuilding.
func (c *BuildCache[K]) Elaborated(key K, build func() (*aemilia.ArchiType, error)) (*elab.Model, error) {
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[K]*cacheEntry)
	}
	e := c.entries[key]
	if e == nil {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		a, err := build()
		if err != nil {
			e.err = err
			return
		}
		e.model, e.err = elab.Elaborate(a)
	})
	return e.model, e.err
}

// ElaboratedCtx is Elaborated with a cancellation point before the
// lookup: a sweep driver that shares one cache across many workers checks
// its deadline here rather than starting a fresh parse+elaboration it
// will throw away. The check never consumes the entry's build-once slot,
// so a canceled call leaves the cache exactly as it found it.
func (c *BuildCache[K]) ElaboratedCtx(ctx context.Context, key K, build func() (*aemilia.ArchiType, error)) (*elab.Model, error) {
	if err := fault.Check(ctx, "core.build-cache", -1, -1); err != nil {
		return nil, err
	}
	return c.Elaborated(key, build)
}

// Len reports the number of cached keys.
func (c *BuildCache[K]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
