package core

import (
	"context"

	"repro/internal/ctmc"
	"repro/internal/elab"
	"repro/internal/lts"
	"repro/internal/measure"
	"repro/internal/pipeline"
)

// DefaultLaneWidth is the sweep-batching width Phase2Sweep auto-selects:
// eight lanes interleave one float64 per lane into exactly one 64-byte
// cache line, the width the specialized batched kernels are unrolled for.
const DefaultLaneWidth = pipeline.DefaultLaneWidth

// Checkpoint types are aliases of the pipeline session layer's, which
// owns the sweep/checkpoint machinery; the file format is unchanged, so
// checkpoints written before the move resume as before.
type (
	// CheckpointOptions makes a sweep resumable (see Phase2Sweep).
	CheckpointOptions = pipeline.CheckpointOptions
	// CheckpointError reports a checkpoint operation failure.
	CheckpointError = pipeline.CheckpointError
)

// Checkpoint failure causes.
var (
	// ErrCheckpointMismatch reports a checkpoint whose structural hash
	// does not match the resuming sweep's model, point set, and measures.
	ErrCheckpointMismatch = pipeline.ErrCheckpointMismatch
	// ErrCheckpointCorrupt reports a truncated or checksum-failing
	// checkpoint file.
	ErrCheckpointCorrupt = pipeline.ErrCheckpointCorrupt
)

// SweepOptions tunes a rate-parametric Markovian sweep.
type SweepOptions struct {
	// Gen tunes state-space generation (done once for the whole sweep).
	// Its Ctx defaults to SweepOptions.Ctx when unset.
	Gen lts.GenerateOptions
	// Solve tunes the per-point steady-state solver. Its WarmStart field
	// is managed by the sweep and must be left empty; its Ctx is
	// overridden with SweepOptions.Ctx; its Escalation selects the
	// convergence-failure policy of every point (the sweep runs the
	// ladder itself, so batched lanes escalate exactly like solo points).
	// A non-zero Omega disables lane batching: the batched kernels always
	// run the scheme-default damping, so a custom damping falls back to
	// the per-point path where it applies.
	Solve ctmc.SolveOptions
	// Workers bounds the number of sweep tasks solved concurrently
	// (0 or 1 = sequential). Results are bit-identical at any value.
	Workers int
	// LaneWidth is the number of sweep points the batched steady-state
	// kernel (ctmc.SolveBatch) solves per call: 0 auto-selects
	// DefaultLaneWidth (capped at the number of non-anchor points), 1
	// disables batching and keeps the per-point Rebind+SteadyState path,
	// and any other value is used as given. Every lane replicates the
	// per-point solver's arithmetic from the same anchor-seeded start, so
	// results are bit-identical at any width.
	LaneWidth int
	// Ctx cancels the sweep: generation polls it at BFS level boundaries,
	// every solver polls it per iteration, and the sweep itself polls it
	// at point boundaries, so cancellation lands promptly at every phase.
	// A cancellation surfaces as a *fault.CanceledError and never changes
	// the floats of points that already completed. Nil disables polling.
	Ctx context.Context
	// Checkpoint, when non-nil, makes the sweep resumable (see
	// CheckpointOptions): completed point results and the anchor solution
	// are periodically written to Checkpoint.Path, and a run with
	// Checkpoint.Resume set solves only the missing points — with reports
	// bit-identical to an uninterrupted run, because every point's result
	// is a pure function of the input and the anchor solution.
	Checkpoint *CheckpointOptions
}

// Phase2Sweep runs the Markovian phase over a family of rate assignments
// of one model: the state space is generated once, the CTMC is built once,
// its structural solve analysis is computed once, and each point rewrites
// only the rate values before solving. It is a thin adapter over an
// ephemeral pipeline session — see pipeline.Session.Sweep for the full
// semantics (anchor warm starts, lane batching, escalation, deterministic
// failure attribution, checkpoint/resume), all of which hold here
// unchanged: reports are bit-identical at any worker count and lane
// width, and bit-identical to the pre-session implementation.
func Phase2Sweep(m *elab.Model, measures []measure.Measure, points [][]float64, opts SweepOptions) ([]*Phase2Report, error) {
	gen := opts.Gen
	if gen.Ctx == nil {
		gen.Ctx = opts.Ctx
	}
	s := pipeline.NewSession(pipeline.Spec{
		Model:    m,
		Measures: measures,
		Gen:      gen,
		Solve:    opts.Solve,
	}, pipeline.Config{
		Workers:   opts.Workers,
		LaneWidth: opts.LaneWidth,
		Ctx:       opts.Ctx,
	})
	return s.SweepCheckpointed(points, opts.Checkpoint)
}
