package core

import (
	"fmt"
	"sync"

	"repro/internal/ctmc"
	"repro/internal/elab"
	"repro/internal/lts"
	"repro/internal/measure"
)

// SweepOptions tunes a rate-parametric Markovian sweep.
type SweepOptions struct {
	// Gen tunes state-space generation (done once for the whole sweep).
	Gen lts.GenerateOptions
	// Solve tunes the per-point steady-state solver. Its WarmStart field
	// is managed by the sweep and must be left empty.
	Solve ctmc.SolveOptions
	// Workers bounds the number of sweep points solved concurrently
	// (0 or 1 = sequential). Results are bit-identical at any value.
	Workers int
}

// Phase2Sweep runs the Markovian phase over a family of rate assignments
// of one model: the state space is generated once, the CTMC is built once,
// and each point rewrites only the rate values (ctmc.Rebind) before
// solving. points[i] supplies one value per rate slot of the model
// (points[i][k-1] is the value of slot k), and the reports come back in
// the same order.
//
// The first point is the sweep's anchor: it is solved cold (uniform start)
// and its solution seeds every other point's solver as a warm start. The
// seed is a pure function of the input — never of scheduling — and each
// worker rebinds a private clone of the built chain, so the reports are
// bit-identical at any worker count. Each point's result equals a fresh
// generate+build+solve of the same model at that point's rates, up to the
// solver tolerance (the rebound generator matrix itself is bit-identical
// to a freshly built one).
//
// The model must carry rate slots (elab.Model.NumRateSlots > 0); sweeping
// a parameter that changes the model's structure needs one generation per
// point instead.
func Phase2Sweep(m *elab.Model, measures []measure.Measure, points [][]float64, opts SweepOptions) ([]*Phase2Report, error) {
	if len(points) == 0 {
		return nil, nil
	}
	numSlots := m.NumRateSlots()
	if numSlots == 0 {
		return nil, fmt.Errorf("core: phase 2 sweep: model has no rate slots; use Phase2ModelSolve per point")
	}
	for i, p := range points {
		if len(p) != numSlots {
			return nil, fmt.Errorf("core: phase 2 sweep: point %d has %d values, model has %d rate slots", i, len(p), numSlots)
		}
	}
	if len(opts.Solve.WarmStart) != 0 {
		return nil, fmt.Errorf("core: phase 2 sweep: SolveOptions.WarmStart is managed by the sweep")
	}

	genOpts := opts.Gen
	genOpts.Predicates = append(append([]lts.StatePred(nil), genOpts.Predicates...), measure.StatePreds(measures)...)
	l, err := lts.Generate(m, genOpts)
	if err != nil {
		return nil, fmt.Errorf("core: phase 2 sweep: %w", err)
	}
	base, err := ctmc.Build(l)
	if err != nil {
		return nil, fmt.Errorf("core: phase 2 sweep: %w", err)
	}

	solveAt := func(chain *ctmc.CTMC, point []float64, warm []float64) (*Phase2Report, error) {
		if err := chain.Rebind(point); err != nil {
			return nil, err
		}
		solve := opts.Solve
		solve.WarmStart = warm
		pi, err := chain.SteadyState(solve)
		if err != nil {
			return nil, err
		}
		values, err := measure.EvalAll(measures, chain, pi)
		if err != nil {
			return nil, err
		}
		return &Phase2Report{
			Values:    values,
			States:    l.NumStates,
			Tangible:  chain.N,
			Vanishing: chain.NumVanishing(),
		}, nil
	}

	// Anchor: the first point, solved cold on the base chain. Its solution
	// seeds the warm start of every remaining point.
	reports := make([]*Phase2Report, len(points))
	if err := base.Rebind(points[0]); err != nil {
		return nil, fmt.Errorf("core: phase 2 sweep: point 0: %w", err)
	}
	anchorSolve := opts.Solve
	anchorPi, err := base.SteadyState(anchorSolve)
	if err != nil {
		return nil, fmt.Errorf("core: phase 2 sweep: point 0: %w", err)
	}
	anchorValues, err := measure.EvalAll(measures, base, anchorPi)
	if err != nil {
		return nil, fmt.Errorf("core: phase 2 sweep: point 0: %w", err)
	}
	reports[0] = &Phase2Report{
		Values:    anchorValues,
		States:    l.NumStates,
		Tangible:  base.N,
		Vanishing: base.NumVanishing(),
	}
	if len(points) == 1 {
		return reports, nil
	}

	workers := opts.Workers
	if workers <= 1 || len(points) == 2 {
		// Sequential path: reuse the base chain for every point.
		for i := 1; i < len(points); i++ {
			rep, err := solveAt(base, points[i], anchorPi)
			if err != nil {
				return nil, fmt.Errorf("core: phase 2 sweep: point %d: %w", i, err)
			}
			reports[i] = rep
		}
		return reports, nil
	}

	// Parallel path: each worker owns a private clone of the built chain
	// and rebinds it per point. Points are claimed in ascending order; any
	// failure wins by lowest point index so the reported error matches the
	// sequential run's.
	if rest := len(points) - 1; workers > rest {
		workers = rest
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		next    = 1
		failIdx = len(points)
		failErr error
	)
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if failErr != nil || next >= len(points) {
			return -1
		}
		i := next
		next++
		return i
	}
	fail := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if failErr == nil || i < failIdx {
			failIdx, failErr = i, err
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			chain := base.Clone()
			for {
				i := claim()
				if i < 0 {
					return
				}
				rep, err := solveAt(chain, points[i], anchorPi)
				if err != nil {
					fail(i, err)
					return
				}
				reports[i] = rep
			}
		}()
	}
	wg.Wait()
	if failErr != nil {
		return nil, fmt.Errorf("core: phase 2 sweep: point %d: %w", failIdx, failErr)
	}
	return reports, nil
}
