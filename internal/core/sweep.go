package core

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/ctmc"
	"repro/internal/elab"
	"repro/internal/lts"
	"repro/internal/measure"
)

// DefaultLaneWidth is the sweep-batching width Phase2Sweep auto-selects:
// eight lanes interleave one float64 per lane into exactly one 64-byte
// cache line, the width the specialized batched kernels are unrolled for.
const DefaultLaneWidth = 8

// SweepOptions tunes a rate-parametric Markovian sweep.
type SweepOptions struct {
	// Gen tunes state-space generation (done once for the whole sweep).
	Gen lts.GenerateOptions
	// Solve tunes the per-point steady-state solver. Its WarmStart field
	// is managed by the sweep and must be left empty.
	Solve ctmc.SolveOptions
	// Workers bounds the number of sweep tasks solved concurrently
	// (0 or 1 = sequential). Results are bit-identical at any value.
	Workers int
	// LaneWidth is the number of sweep points the batched steady-state
	// kernel (ctmc.SolveBatch) solves per call: 0 auto-selects
	// DefaultLaneWidth (capped at the number of non-anchor points), 1
	// disables batching and keeps the per-point Rebind+SteadyState path,
	// and any other value is used as given. Every lane replicates the
	// per-point solver's arithmetic from the same anchor-seeded start, so
	// results are bit-identical at any width.
	LaneWidth int
}

// Phase2Sweep runs the Markovian phase over a family of rate assignments
// of one model: the state space is generated once, the CTMC is built once,
// its structural solve analysis (bottom component, reachability) is
// computed once — rate-only rebinds cannot change it — and each point
// rewrites only the rate values before solving. points[i] supplies one
// value per rate slot of the model (points[i][k-1] is the value of slot
// k), and the reports come back in the same order.
//
// The first point is the sweep's anchor: it is solved cold (uniform start)
// and its solution seeds every other point's solver as a warm start. The
// seed is a pure function of the input — never of scheduling — so the
// reports are bit-identical at any worker count and lane width: the
// non-anchor points are packed in index order into SolveBatch calls of
// LaneWidth lanes (or solved one by one when LaneWidth is 1), and every
// lane replicates the per-point solver's floating-point operations
// exactly. Each point's result equals a fresh generate+build+solve of the
// same model at that point's rates, up to the solver tolerance (the
// rebound generator matrix itself is bit-identical to a freshly built
// one).
//
// A solver failure is attributed to its sweep point: the returned error
// names the lowest failed point index (what a sequential per-point loop
// would hit first), and an unwrapped *ctmc.ConvergenceError carries the
// point index and its rate vector.
//
// The model must carry rate slots (elab.Model.NumRateSlots > 0); sweeping
// a parameter that changes the model's structure needs one generation per
// point instead.
func Phase2Sweep(m *elab.Model, measures []measure.Measure, points [][]float64, opts SweepOptions) ([]*Phase2Report, error) {
	if len(points) == 0 {
		return nil, nil
	}
	numSlots := m.NumRateSlots()
	if numSlots == 0 {
		return nil, fmt.Errorf("core: phase 2 sweep: model has no rate slots; use Phase2ModelSolve per point")
	}
	for i, p := range points {
		if len(p) != numSlots {
			return nil, fmt.Errorf("core: phase 2 sweep: point %d has %d values, model has %d rate slots", i, len(p), numSlots)
		}
	}
	if len(opts.Solve.WarmStart) != 0 {
		return nil, fmt.Errorf("core: phase 2 sweep: SolveOptions.WarmStart is managed by the sweep")
	}

	genOpts := opts.Gen
	genOpts.Predicates = append(append([]lts.StatePred(nil), genOpts.Predicates...), measure.StatePreds(measures)...)
	l, err := lts.Generate(m, genOpts)
	if err != nil {
		return nil, fmt.Errorf("core: phase 2 sweep: %w", err)
	}
	base, err := ctmc.Build(l)
	if err != nil {
		return nil, fmt.Errorf("core: phase 2 sweep: %w", err)
	}

	// attribute stamps a solver failure with its global sweep-point index
	// and rate vector (when the failure is a convergence error that does
	// not already carry them).
	attribute := func(err error, i int) error {
		var ce *ctmc.ConvergenceError
		if errors.As(err, &ce) {
			ce.Point = i
			ce.Params = append([]float64(nil), points[i]...)
		}
		return err
	}

	report := func(values map[string]float64) *Phase2Report {
		return &Phase2Report{
			Values:    values,
			States:    l.NumStates,
			Tangible:  base.N,
			Vanishing: base.NumVanishing(),
		}
	}

	solveAt := func(chain *ctmc.CTMC, point []float64, warm []float64) (*Phase2Report, error) {
		if err := chain.Rebind(point); err != nil {
			return nil, err
		}
		solve := opts.Solve
		solve.WarmStart = warm
		pi, err := chain.SteadyState(solve)
		if err != nil {
			return nil, err
		}
		values, err := measure.EvalAll(measures, chain, pi)
		if err != nil {
			return nil, err
		}
		return report(values), nil
	}

	// Anchor: the first point, solved cold on the base chain. Its solution
	// seeds the warm start of every remaining point.
	reports := make([]*Phase2Report, len(points))
	if err := base.Rebind(points[0]); err != nil {
		return nil, fmt.Errorf("core: phase 2 sweep: point 0: %w", err)
	}
	anchorPi, err := base.SteadyState(opts.Solve)
	if err != nil {
		return nil, fmt.Errorf("core: phase 2 sweep: point 0: %w", attribute(err, 0))
	}
	anchorValues, err := measure.EvalAll(measures, base, anchorPi)
	if err != nil {
		return nil, fmt.Errorf("core: phase 2 sweep: point 0: %w", err)
	}
	reports[0] = report(anchorValues)
	rest := len(points) - 1
	if rest == 0 {
		return reports, nil
	}

	laneWidth := opts.LaneWidth
	if laneWidth <= 0 {
		laneWidth = DefaultLaneWidth
	}
	if laneWidth > rest {
		laneWidth = rest
	}
	if laneWidth > 1 {
		return sweepBatched(base, measures, points, opts, reports, anchorPi, laneWidth, report, attribute)
	}

	workers := opts.Workers
	if workers <= 1 || rest == 1 {
		// Sequential per-point path: reuse the base chain for every point.
		for i := 1; i < len(points); i++ {
			rep, err := solveAt(base, points[i], anchorPi)
			if err != nil {
				return nil, fmt.Errorf("core: phase 2 sweep: point %d: %w", i, attribute(err, i))
			}
			reports[i] = rep
		}
		return reports, nil
	}

	// Parallel per-point path: each worker owns a private clone of the
	// built chain and rebinds it per point. Points are claimed in ascending
	// order; any failure wins by lowest point index so the reported error
	// matches the sequential run's.
	if workers > rest {
		workers = rest
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		next    = 1
		failIdx = len(points)
		failErr error
	)
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if failErr != nil || next >= len(points) {
			return -1
		}
		i := next
		next++
		return i
	}
	fail := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if failErr == nil || i < failIdx {
			failIdx, failErr = i, err
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			chain := base.Clone()
			for {
				i := claim()
				if i < 0 {
					return
				}
				rep, err := solveAt(chain, points[i], anchorPi)
				if err != nil {
					fail(i, attribute(err, i))
					return
				}
				reports[i] = rep
			}
		}()
	}
	wg.Wait()
	if failErr != nil {
		return nil, fmt.Errorf("core: phase 2 sweep: point %d: %w", failIdx, failErr)
	}
	return reports, nil
}

// sweepBatched solves the non-anchor points of a sweep through the batched
// kernel: points[1:] are packed in index order into chunks of laneWidth
// lanes, each chunk is one ctmc.SolveBatch call seeded from the anchor
// solution, and the chunk's reports are then evaluated in lane order (the
// measure evaluation rebinds the chain to each point's rates, as the
// per-point path does). Chunks are independent — every lane seeds from the
// anchor, never from a chunk-mate — so chunk-level workers change nothing
// but wall-clock time, and a failure is attributed to the lowest failed
// global point index, matching the per-point paths.
func sweepBatched(base *ctmc.CTMC, measures []measure.Measure, points [][]float64, opts SweepOptions,
	reports []*Phase2Report, anchorPi []float64, laneWidth int,
	report func(map[string]float64) *Phase2Report, attribute func(error, int) error) ([]*Phase2Report, error) {

	// translate maps a SolveBatch failure of the chunk at offset off to
	// its global point index and the unwrapped per-lane error.
	translate := func(err error, off int) (int, error) {
		idx := off
		var bpe *ctmc.BatchPointError
		if errors.As(err, &bpe) {
			idx = off + bpe.Point
			err = bpe.Err
		}
		return idx, attribute(err, idx)
	}

	// solveChunk solves points[off:off+width] on the given chain and fills
	// their reports. It returns the failed global point index and error.
	solveChunk := func(chain *ctmc.CTMC, off, width int) (int, error) {
		solve := opts.Solve
		solve.WarmStart = anchorPi
		pis, err := chain.SolveBatch(points[off:off+width], ctmc.BatchOptions{Solve: solve})
		if err != nil {
			return translate(err, off)
		}
		for lane, pi := range pis {
			i := off + lane
			if err := chain.Rebind(points[i]); err != nil {
				return i, err
			}
			values, err := measure.EvalAll(measures, chain, pi)
			if err != nil {
				return i, err
			}
			reports[i] = report(values)
		}
		return 0, nil
	}

	nChunks := (len(points) - 2 + laneWidth) / laneWidth // points[1:] in chunks of laneWidth
	chunkAt := func(ch int) (int, int) {
		off := 1 + ch*laneWidth
		width := laneWidth
		if off+width > len(points) {
			width = len(points) - off
		}
		return off, width
	}

	workers := opts.Workers
	if workers > nChunks {
		workers = nChunks
	}
	if workers <= 1 {
		for ch := 0; ch < nChunks; ch++ {
			off, width := chunkAt(ch)
			if idx, err := solveChunk(base, off, width); err != nil {
				return nil, fmt.Errorf("core: phase 2 sweep: point %d: %w", idx, err)
			}
		}
		return reports, nil
	}

	// Chunk-parallel path: each worker owns a private clone; chunks are
	// claimed in ascending order and the lowest failed point index wins,
	// matching the sequential chunk loop.
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		next    int
		failIdx = len(points)
		failErr error
	)
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if failErr != nil || next >= nChunks {
			return -1
		}
		ch := next
		next++
		return ch
	}
	fail := func(idx int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if failErr == nil || idx < failIdx {
			failIdx, failErr = idx, err
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			chain := base.Clone()
			for {
				ch := claim()
				if ch < 0 {
					return
				}
				off, width := chunkAt(ch)
				if idx, err := solveChunk(chain, off, width); err != nil {
					fail(idx, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if failErr != nil {
		return nil, fmt.Errorf("core: phase 2 sweep: point %d: %w", failIdx, failErr)
	}
	return reports, nil
}
