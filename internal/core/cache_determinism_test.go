package core

import (
	"sync"
	"testing"

	"repro/internal/aemilia"
	"repro/internal/lts"
	"repro/internal/models"
	"repro/internal/rates"
)

// ltsFingerprint renders the full structure of an LTS — initial state,
// state count, and every (src, label-name, dst, rate) edge in canonical
// order — so two generations can be compared for exact equality.
func ltsFingerprint(l *lts.LTS) []string {
	out := []string{
		"initial=" + l.StateDesc(l.Initial),
	}
	l.Edges(func(src, dst, label int, r rates.Rate) {
		out = append(out, l.StateDesc(src)+" -"+l.LabelName(label)+","+r.String()+"-> "+l.StateDesc(dst))
	})
	return out
}

// TestSharedModelGenerationDeterministic is the interner-determinism
// guarantee under concurrency: many goroutines generating from one cached
// (shared, immutable) elaborated model must observe the exact same state
// identifiers — state i means the same global state in every sweep — and
// the same canonical transition structure. Run with -race, this also
// proves generation performs no hidden writes to the shared model.
func TestSharedModelGenerationDeterministic(t *testing.T) {
	var cache BuildCache[string]
	p := models.DefaultRPCParams()
	m, err := cache.Elaborated("rpc", func() (*aemilia.ArchiType, error) {
		return models.BuildRPCRevised(p)
	})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	prints := make([][]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			l, err := lts.Generate(m, lts.GenerateOptions{})
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			prints[w] = ltsFingerprint(l)
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for w := 1; w < workers; w++ {
		if len(prints[w]) != len(prints[0]) {
			t.Fatalf("worker %d: %d fingerprint lines, worker 0 has %d",
				w, len(prints[w]), len(prints[0]))
		}
		for i := range prints[w] {
			if prints[w][i] != prints[0][i] {
				t.Fatalf("worker %d line %d differs:\n  %s\nvs\n  %s",
					w, i, prints[w][i], prints[0][i])
			}
		}
	}
}

// TestRegenerationIDStability: generating twice from the same model (even
// sequentially, with fresh interners) assigns every state the same id,
// observable through identical state descriptions per index.
func TestRegenerationIDStability(t *testing.T) {
	p := models.DefaultStreamingParams()
	arch, err := models.BuildStreaming(p)
	if err != nil {
		t.Fatal(err)
	}
	var cache BuildCache[int]
	m, err := cache.Elaborated(0, func() (*aemilia.ArchiType, error) { return arch, nil })
	if err != nil {
		t.Fatal(err)
	}
	l1, err := lts.Generate(m, lts.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	l2, err := lts.Generate(m, lts.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if l1.NumStates != l2.NumStates || l1.NumTransitions() != l2.NumTransitions() {
		t.Fatalf("shape differs across regenerations: %d/%d vs %d/%d",
			l1.NumStates, l1.NumTransitions(), l2.NumStates, l2.NumTransitions())
	}
	for s := 0; s < l1.NumStates; s++ {
		if l1.StateDesc(s) != l2.StateDesc(s) {
			t.Fatalf("state %d names different global states across runs:\n  %s\nvs\n  %s",
				s, l1.StateDesc(s), l2.StateDesc(s))
		}
	}
}
