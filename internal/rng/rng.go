// Package rng provides a small, fast, deterministic pseudo-random number
// generator (xoshiro256**) with SplitMix64 seeding and stream splitting.
// Simulation replications each get an independent stream derived from a
// master seed, so every experiment in the repository is reproducible
// bit-for-bit without relying on global state.
package rng

import "math"

// Rand is a xoshiro256** generator. The zero value is not valid; use New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64.
func New(seed uint64) *Rand {
	var r Rand
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// Avoid the all-zero state (cannot happen with SplitMix64, but cheap
	// to guarantee).
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return &r
}

// Split derives an independent stream for replication i: it reseeds from a
// hash of the generator's state and the index, so streams do not overlap
// in practice.
func (r *Rand) Split(i uint64) *Rand {
	return New(r.s[0]*0x9e3779b97f4a7c15 ^ r.s[1] ^ (i+1)*0xda942042e4dd58b5)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform value in (0, 1), never exactly zero —
// safe as the argument of a logarithm.
func (r *Rand) Float64Open() float64 {
	for {
		v := r.Float64()
		if v > 0 {
			return v
		}
	}
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire-style rejection-free-ish bounded generation.
	return int(r.Uint64() % uint64(n))
}

// ExpFloat64 returns an exponential variate with rate lambda (mean
// 1/lambda).
func (r *Rand) ExpFloat64(lambda float64) float64 {
	return -math.Log(r.Float64Open()) / lambda
}

// NormFloat64 returns a standard normal variate (Box–Muller transform).
func (r *Rand) NormFloat64() float64 {
	u1 := r.Float64Open()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
