package rng

import (
	"math"
	"testing"
)

func TestDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	master := New(7)
	s1, s2 := master.Split(0), master.Split(1)
	same := 0
	for i := 0; i < 100; i++ {
		if s1.Uint64() == s2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams collided %d/100 times", same)
	}
	// Splitting is deterministic.
	r1, r2 := New(7).Split(0), New(7).Split(0)
	for i := 0; i < 10; i++ {
		if r1.Uint64() != r2.Uint64() {
			t.Fatal("split not deterministic")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(9)
	lambda := 2.5
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64(lambda)
		if v < 0 {
			t.Fatalf("negative exponential sample %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/lambda) > 0.02 {
		t.Errorf("exp mean = %v, want ~%v", mean, 1/lambda)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestIntn(t *testing.T) {
	r := New(13)
	counts := make([]int, 5)
	for i := 0; i < 50000; i++ {
		counts[r.Intn(5)]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("Intn bucket %d count %d far from uniform", i, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}
