package pipeline

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"

	"repro/internal/aemilia"
	"repro/internal/ctmc"
	"repro/internal/elab"
	"repro/internal/lts"
	"repro/internal/measure"
)

// Spec is the canonical description of one analysis pipeline: which model
// to build, which measures to evaluate, and how to generate and solve.
// Everything in it that can change a result's bits participates in the
// content-addressed SpecHash, so two Specs with equal hashes denote the
// same staged artifacts — elaborated model, LTS, chain, anchor solutions
// — and a Manager collapses them onto one Session state.
type Spec struct {
	// Key names the model source canonically: a builder identifier plus
	// its full parameter vector (e.g. "rpc:models.RPCParams{...}"), or a
	// content hash of a textual .aem description. Two specs with the same
	// Key must build equivalent models. An empty Key marks the spec as
	// ephemeral: NewSession accepts it, Manager.Open refuses to intern it.
	Key string
	// Build parses/constructs the architectural description. It runs at
	// most once per session state (single-flight) and must be a pure
	// function of Key.
	Build func() (*aemilia.ArchiType, error)
	// Model optionally supplies an already-elaborated model instead of
	// Build — the entry point for callers that hold one (the core
	// adapters, the CLI after parsing a file). Takes precedence over
	// Build.
	Model *elab.Model
	// Measures are evaluated by Phase2 and Sweep; their STATE_REWARD
	// predicates are appended to the generation options, exactly as the
	// phase-2 entry points always did.
	Measures []measure.Measure
	// Gen tunes state-space generation. GenWorkers and Ctx are
	// scheduling-only (results are bit-identical at any value) and fall
	// back to the session Config; they do not participate in the hash.
	// Gen.Fold is semantic (it changes the generated LTS): its presence
	// and MaxDepth are hashed, but its Observed matcher is a function and
	// cannot be — specs that set Fold directly should be session-local.
	// The supported way to request folding is Minimize, which derives the
	// matcher canonically from Measures.
	Gen lts.GenerateOptions
	// Minimize enables compositional minimization: the session lumps each
	// component before composition (compose.Minimize, refined against the
	// Measures' state predicates) and generates with vanishing-state
	// folding observed through the Measures' TRANS_REWARD labels, so the
	// full product never materializes. The simulation phase always runs
	// on the full model — minimization only accelerates the Markovian
	// path, whose measures it preserves exactly. Semantic: hashed.
	Minimize bool
	// Solve tunes the steady-state solver. Workers and Ctx are
	// scheduling-only and fall back to the session Config; every
	// result-affecting field (Tolerance, MaxIterations, Sweep,
	// JacobiThreshold, Omega, Escalation, WarmStart) is hashed.
	Solve ctmc.SolveOptions
}

// SpecHash is the stable content address of a Spec: the hex-encoded
// SHA-256 of its canonical encoding. Equal hashes mean "same model, same
// generation semantics, same measures, same solver arithmetic" — the
// contract that makes sharing staged artifacts and cached results sound.
type SpecHash string

// Hash computes the spec's content address. The encoding is canonical:
// fields are written in a fixed order with length prefixes (no separator
// ambiguity), floats as their IEEE-754 bit patterns, and scheduling-only
// knobs (workers, contexts, lane widths) excluded — results are
// bit-identical at any of their values, so hashing them would only split
// identical work across sessions.
func (s Spec) Hash() SpecHash {
	h := sha256.New()
	hStr(h, s.Key)
	// Generation: everything that shapes the LTS.
	hU64(h, uint64(s.Gen.MaxStates))
	hBool(h, s.Gen.KeepDescriptions)
	hBool(h, s.Minimize)
	hBool(h, s.Gen.Fold != nil)
	if s.Gen.Fold != nil {
		hU64(h, uint64(s.Gen.Fold.MaxDepth))
	}
	hU64(h, uint64(len(s.Gen.Predicates)))
	for _, p := range s.Gen.Predicates {
		hStr(h, p.Instance)
		hStr(h, p.Action)
	}
	// Measures: names, clause structure, reward values, ratio wiring.
	hU64(h, uint64(len(s.Measures)))
	for _, m := range s.Measures {
		hStr(h, m.Name)
		hBool(h, m.Derived)
		hStr(h, m.Num)
		hStr(h, m.Den)
		hU64(h, uint64(len(m.Clauses)))
		for _, c := range m.Clauses {
			hStr(h, c.Instance)
			hStr(h, c.Action)
			hU64(h, uint64(c.Kind))
			hF64(h, c.Value)
		}
	}
	// Solver: the result-affecting fields only.
	hF64(h, s.Solve.Tolerance)
	hU64(h, uint64(s.Solve.MaxIterations))
	hU64(h, uint64(s.Solve.Sweep))
	hU64(h, uint64(s.Solve.JacobiThreshold))
	hF64(h, s.Solve.Omega)
	hU64(h, uint64(s.Solve.Escalation))
	hU64(h, uint64(len(s.Solve.WarmStart)))
	for _, v := range s.Solve.WarmStart {
		hF64(h, v)
	}
	return SpecHash(hex.EncodeToString(h.Sum(nil)))
}

func hU64(h hash.Hash, v uint64) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	h.Write(buf[:])
}

func hF64(h hash.Hash, v float64) { hU64(h, math.Float64bits(v)) }

func hStr(h hash.Hash, s string) {
	hU64(h, uint64(len(s)))
	h.Write([]byte(s))
}

func hBool(h hash.Hash, b bool) {
	if b {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
}

// encodePoint renders a rate vector as its exact bit pattern — the store
// and anchor-cache key component for one sweep point. Two points encode
// equal iff they are bit-identical, the same equality the solver sees.
func encodePoint(point []float64) string {
	buf := make([]byte, 8*len(point))
	for i, v := range point {
		binary.BigEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return string(buf)
}
