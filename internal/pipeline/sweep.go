package pipeline

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sync"

	"repro/internal/ctmc"
	"repro/internal/fault"
	"repro/internal/faultinject"
	"repro/internal/lts"
	"repro/internal/measure"
)

// DefaultLaneWidth is the sweep-batching width Sweep auto-selects: eight
// lanes interleave one float64 per lane into exactly one 64-byte cache
// line, the width the specialized batched kernels are unrolled for.
const DefaultLaneWidth = 8

// sweepHash fingerprints everything a checkpoint must match to be safely
// resumed: the chain's structural solve analysis, the state-space and
// chain sizes, the exact bit patterns of every sweep point, and the
// measure names. Two sweeps with the same hash solve the same points of
// the same chain and evaluate the same measures, so exchanging their
// completed results is sound.
func sweepHash(chain *ctmc.CTMC, l *lts.LTS, points [][]float64, measures []measure.Measure) (uint64, error) {
	structural, err := chain.StructuralHash()
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(structural)
	put(uint64(l.NumStates))
	put(uint64(chain.N))
	put(uint64(chain.NumVanishing()))
	put(uint64(len(points)))
	for _, pt := range points {
		put(uint64(len(pt)))
		for _, v := range pt {
			put(math.Float64bits(v))
		}
	}
	put(uint64(len(measures)))
	for _, m := range measures {
		h.Write([]byte(m.Name))
		h.Write([]byte{0})
	}
	return h.Sum64(), nil
}

// Sweep runs the Markovian phase over a family of rate assignments of the
// session's model: the state space is generated once, the CTMC is built
// once, its structural solve analysis (bottom component, reachability) is
// computed once — rate-only rebinds cannot change it — and each point
// rewrites only the rate values before solving. points[i] supplies one
// value per rate slot of the model (points[i][k-1] is the value of slot
// k), and the reports come back in the same order. The session's shared
// chain is never rebound: every sweep call rebinds private clones, so
// concurrent sweeps and Phase2 solves on one session cannot disturb each
// other.
//
// The first point is the sweep's anchor: it is solved cold (uniform
// start) and its solution seeds every other point's solver as a warm
// start. The seed is a pure function of the input — never of scheduling —
// so the reports are bit-identical at any worker count and lane width:
// the non-anchor points are packed in index order into SolveBatch calls
// of Config.LaneWidth lanes (or solved one by one when LaneWidth is 1),
// and every lane replicates the per-point solver's floating-point
// operations exactly. Each point's result equals a fresh
// generate+build+solve of the same model at that point's rates, up to the
// solver tolerance (the rebound generator matrix itself is bit-identical
// to a freshly built one). Anchors are staged per session state, so a
// second sweep from the same anchor reuses its solution, and a Config
// Store memoizes the non-anchor reports under SpecHash + anchor + point.
//
// Failure handling is deterministic at any worker count:
//
//   - A solver failure is attributed to its sweep point: the returned
//     error names the lowest failed point index (what a sequential
//     per-point loop would hit first), and an unwrapped
//     *ctmc.ConvergenceError carries the point index and its rate vector.
//   - With the spec's Solve.Escalation set to ctmc.EscalateLadder, a
//     point that fails to converge is retried through the deterministic
//     escalation ladder (see ctmc.EscalateLadder); a recovered point's
//     report carries the attempt trace in Phase2Report.Trace. Batched
//     lanes escalate exactly like solo points: a lane's base failure is
//     bit-identical to the solo base attempt, and the ladder re-solves
//     the lane solo from rung 1.
//   - A panic in a sweep worker is recovered into a
//     *fault.WorkerPanicError instead of crashing the process.
//   - A cancellation via Config.Ctx surfaces as a *fault.CanceledError
//     and never changes the floats of completed points.
//
// The model must carry rate slots (elab.Model.NumRateSlots > 0) to sweep
// more than one point; sweeping a parameter that changes the model's
// structure needs one generation per point instead. A slot-free model is
// accepted with exactly one (empty) point — a single solve run through
// the sweep driver for its checkpoint/resume and escalation machinery.
func (s *Session) Sweep(points [][]float64) ([]*Phase2Report, error) {
	return s.SweepCheckpointed(points, nil)
}

// SweepCheckpointed is Sweep with a resumable checkpoint (see
// CheckpointOptions): completed point results and the anchor solution are
// periodically written to ckOpts.Path, and a run with ckOpts.Resume set
// solves only the missing points — with reports bit-identical to an
// uninterrupted run, because every point's result is a pure function of
// the input and the anchor solution.
func (s *Session) SweepCheckpointed(points [][]float64, ckOpts *CheckpointOptions) ([]*Phase2Report, error) {
	if len(points) == 0 {
		return nil, nil
	}
	m, err := s.Model()
	if err != nil {
		return nil, fmt.Errorf("pipeline: sweep: %w", err)
	}
	numSlots := m.NumRateSlots()
	if numSlots == 0 && len(points) > 1 {
		return nil, fmt.Errorf("pipeline: sweep: model has no rate slots; solve per point instead")
	}
	for i, p := range points {
		if len(p) != numSlots {
			return nil, fmt.Errorf("pipeline: sweep: point %d has %d values, model has %d rate slots", i, len(p), numSlots)
		}
	}
	spec := &s.st.spec
	if len(spec.Solve.WarmStart) != 0 {
		return nil, fmt.Errorf("pipeline: sweep: SolveOptions.WarmStart is managed by the sweep")
	}
	if ckOpts != nil && ckOpts.Path == "" {
		return nil, fmt.Errorf("pipeline: sweep: checkpoint enabled with an empty path")
	}

	l, err := s.LTS()
	if err != nil {
		return nil, fmt.Errorf("pipeline: sweep: %w", err)
	}
	pristine, err := s.Chain()
	if err != nil {
		return nil, fmt.Errorf("pipeline: sweep: %w", err)
	}
	// The work chain is a private clone: Rebind rewrites the rate values
	// in place, and the session's shared chain must stay at its built
	// rates for concurrent Phase2/transient callers. The clone shares the
	// structural solve plan, and a rebound clone's generator is
	// bit-identical to a rebound original, so nothing about the results
	// changes.
	base := pristine.Clone()
	measures := spec.Measures
	ctx := s.cfg.Ctx

	// attribute stamps a solver failure with its global sweep-point index
	// and rate vector (when the failure is a convergence error that does
	// not already carry them).
	attribute := func(err error, i int) error {
		var ce *ctmc.ConvergenceError
		if errors.As(err, &ce) {
			ce.Point = i
			ce.Params = append([]float64(nil), points[i]...)
		}
		return err
	}

	report := func(values map[string]float64) *Phase2Report {
		return &Phase2Report{
			Values:    values,
			States:    l.NumStates,
			Tangible:  base.N,
			Vanishing: base.NumVanishing(),
		}
	}

	// mkSolve builds one point's solver options: the session's context,
	// the given warm start, and escalation stripped — the sweep runs the
	// ladder itself so that batched lanes and solo points share one
	// escalation path.
	mkSolve := func(warm []float64) ctmc.SolveOptions {
		solve := spec.Solve
		solve.Ctx = ctx
		solve.WarmStart = warm
		solve.Escalation = ctmc.EscalateNever
		return solve
	}

	// forcedCE synthesizes the convergence error an injected
	// SiteSweepNonconverge trigger reports for a point whose base solve
	// actually converged — the hook the escalation property tests use.
	forcedCE := func(chain *ctmc.CTMC, warm []float64) (*ctmc.ConvergenceError, error) {
		resolved, err := chain.ResolveSolve(mkSolve(warm))
		if err != nil {
			return nil, err
		}
		return &ctmc.ConvergenceError{Residual: 1, Tolerance: resolved.Tolerance, Sweep: resolved.Sweep, Point: -1}, nil
	}

	// escalateLane runs the escalation ladder for point i whose base solve
	// (solo or batched lane — the two are bit-identical) failed with ce.
	// The trace's attempt 0 records the base failure exactly as
	// ctmc.SteadyStateTraced would, so the ladder position is a pure
	// function of the point's input, never of how lanes were packed.
	escalateLane := func(chain *ctmc.CTMC, i int, warm []float64, ce *ctmc.ConvergenceError, forced bool) ([]float64, *ctmc.SolveTrace, error) {
		if err := chain.Rebind(points[i]); err != nil {
			return nil, nil, err
		}
		solve := mkSolve(warm)
		resolved, err := chain.ResolveSolve(solve)
		if err != nil {
			return nil, nil, err
		}
		action := "base"
		if forced {
			action = "forced-nonconvergence"
		}
		trace := &ctmc.SolveTrace{Attempts: []ctmc.SolveAttempt{{
			Rung:          0,
			Action:        action,
			Sweep:         ce.Sweep,
			MaxIterations: resolved.MaxIterations,
			Omega:         resolved.Omega,
			WarmStart:     len(resolved.WarmStart) > 0,
			Iterations:    ce.Iterations,
			Residual:      ce.Residual,
		}}}
		return chain.EscalateFrom(solve, trace)
	}

	// solveAt solves one point on the given chain: rebind, base solve,
	// injected-nonconvergence check, escalation, measure evaluation. It
	// returns the report and the solution vector (the anchor needs the
	// latter to seed the warm starts).
	solveAt := func(chain *ctmc.CTMC, i int, warm []float64) (*Phase2Report, []float64, error) {
		if err := fault.Check(ctx, "core.sweep", i, -1); err != nil {
			return nil, nil, err
		}
		if err := chain.Rebind(points[i]); err != nil {
			return nil, nil, err
		}
		pi, err := chain.SteadyState(mkSolve(warm))
		var trace *ctmc.SolveTrace
		forced := false
		if err == nil && faultinject.Fire(faultinject.SiteSweepNonconverge, i) {
			ce, ferr := forcedCE(chain, warm)
			if ferr != nil {
				return nil, nil, ferr
			}
			err = ce
			forced = true
		}
		if err != nil {
			var ce *ctmc.ConvergenceError
			if spec.Solve.Escalation == ctmc.EscalateLadder && errors.As(err, &ce) {
				pi, trace, err = escalateLane(chain, i, warm, ce, forced)
			}
		}
		if err != nil {
			return nil, nil, err
		}
		values, err := measure.EvalAll(measures, chain, pi)
		if err != nil {
			return nil, nil, err
		}
		rep := report(values)
		rep.Trace = trace
		return rep, pi, nil
	}

	// solvePoint is solveAt under the sweep worker's panic guard: a crash
	// (or an injected fault keyed by the point index) surfaces as a
	// *fault.WorkerPanicError attributed to this worker and point. The
	// pool name predates the move to this package and is kept stable —
	// it is part of the attribution contract callers match on.
	solvePoint := func(w int, chain *ctmc.CTMC, i int, warm []float64) (rep *Phase2Report, pi []float64, err error) {
		gerr := fault.Guard("core.sweep", w, fmt.Sprintf("point %d", i), func() error {
			faultinject.MaybePanic(faultinject.SiteSweepPoint, i)
			var serr error
			rep, pi, serr = solveAt(chain, i, warm)
			return serr
		})
		if gerr != nil {
			return nil, nil, gerr
		}
		return rep, pi, nil
	}

	reports := make([]*Phase2Report, len(points))

	// Checkpoint bookkeeping: fingerprint the sweep, load a prior
	// checkpoint when resuming, and prefill the reports it holds.
	var (
		hash  uint64
		prior *checkpoint
		ck    *ckWriter
	)
	if ckOpts != nil {
		hash, err = sweepHash(base, l, points, measures)
		if err != nil {
			return nil, fmt.Errorf("pipeline: sweep: %w", err)
		}
		if ckOpts.Resume {
			prior, err = loadCheckpoint(ckOpts.Path, hash, len(points), report)
			if err != nil {
				return nil, fmt.Errorf("pipeline: sweep: %w", err)
			}
			if prior != nil {
				for i, rep := range prior.completed {
					if i >= 0 && i < len(points) {
						reports[i] = rep
					}
				}
			}
		}
	}

	// Anchor: the first point, solved cold (or restored from the
	// checkpoint, which stores the solution's exact bits; or reused from
	// the session's anchor stage, where a previous sweep left the same
	// bits). Its solution seeds the warm start of every remaining point.
	anchorKey := encodePoint(points[0])
	var anchorPi []float64
	if prior != nil && reports[0] != nil && len(prior.anchorPi) == base.N {
		anchorPi = prior.anchorPi
	} else {
		ar, aerr := s.st.anchor(anchorKey).get(ctx, "pipeline.sweep", func() (anchorResult, error) {
			rep, pi, err := solvePoint(0, base, 0, nil)
			if err != nil {
				return anchorResult{}, err
			}
			return anchorResult{rep: rep, pi: pi}, nil
		})
		if aerr != nil {
			return nil, fmt.Errorf("pipeline: sweep: point 0: %w", attribute(aerr, 0))
		}
		reports[0] = ar.rep.clone()
		anchorPi = ar.pi
	}
	if ckOpts != nil {
		ck = newCkWriter(*ckOpts, hash, len(points), anchorPi, prior)
		if err := ck.completed(0, reports[0]); err != nil {
			return nil, fmt.Errorf("pipeline: sweep: point 0: %w", err)
		}
	}

	// storeKey content-addresses one non-anchor point's report: the spec,
	// the anchor that seeded its warm start, and the point's exact bits.
	storeKey := func(i int) ResultKey {
		return ResultKey{Spec: s.st.hash, Anchor: anchorKey, Point: encodePoint(points[i])}
	}

	// Result-store prefill: points the store already holds are restored
	// like checkpointed ones (and recorded to the checkpoint, so a resume
	// file stays complete).
	if s.cfg.Store != nil {
		for i := 1; i < len(points); i++ {
			if reports[i] != nil {
				continue
			}
			rep, ok := s.cfg.Store.Get(storeKey(i))
			if !ok {
				continue
			}
			reports[i] = rep
			if ck != nil {
				if err := ck.completed(i, rep); err != nil {
					return nil, fmt.Errorf("pipeline: sweep: point %d: %w", i, err)
				}
			}
		}
	}

	// finish publishes one completed point: the report slot, the result
	// store, then the checkpoint writer (whose write failures are strict —
	// an unwritable checkpoint fails the point rather than silently losing
	// resumability).
	finish := func(i int, rep *Phase2Report) error {
		reports[i] = rep
		if s.cfg.Store != nil {
			s.cfg.Store.Put(storeKey(i), rep)
		}
		if ck != nil {
			return ck.completed(i, rep)
		}
		return nil
	}

	rest := len(points) - 1
	if rest == 0 {
		return reports, nil
	}

	laneWidth := s.cfg.LaneWidth
	if laneWidth <= 0 {
		laneWidth = DefaultLaneWidth
	}
	if laneWidth > rest {
		laneWidth = rest
	}
	if spec.Solve.Omega != 0 {
		// The batched kernels always run the scheme-default damping; a
		// custom Omega needs the per-point path, where SteadyState
		// honors it.
		laneWidth = 1
	}
	if laneWidth > 1 {
		return s.sweepBatched(base, measures, points, reports, anchorPi, laneWidth,
			report, attribute, mkSolve, forcedCE, escalateLane, finish)
	}

	workers := s.cfg.Workers
	if workers <= 1 || rest == 1 {
		// Sequential per-point path: reuse the work chain for every point.
		for i := 1; i < len(points); i++ {
			if reports[i] != nil {
				continue // restored from the checkpoint or the store
			}
			rep, _, err := solvePoint(0, base, i, anchorPi)
			if err != nil {
				return nil, fmt.Errorf("pipeline: sweep: point %d: %w", i, attribute(err, i))
			}
			if err := finish(i, rep); err != nil {
				return nil, fmt.Errorf("pipeline: sweep: point %d: %w", i, err)
			}
		}
		return reports, nil
	}

	// Parallel per-point path: each worker owns a private clone of the
	// built chain and rebinds it per point. Points are claimed in ascending
	// order; any failure wins by lowest point index so the reported error
	// matches the sequential run's.
	if workers > rest {
		workers = rest
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		next    = 1
		failIdx = len(points)
		failErr error
	)
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		for failErr == nil && next < len(points) {
			i := next
			next++
			if reports[i] != nil {
				continue // restored from the checkpoint or the store
			}
			return i
		}
		return -1
	}
	fail := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if failErr == nil || i < failIdx {
			failIdx, failErr = i, err
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			chain := base.Clone()
			for {
				i := claim()
				if i < 0 {
					return
				}
				rep, _, err := solvePoint(w, chain, i, anchorPi)
				if err != nil {
					fail(i, attribute(err, i))
					return
				}
				if err := finish(i, rep); err != nil {
					fail(i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if failErr != nil {
		return nil, fmt.Errorf("pipeline: sweep: point %d: %w", failIdx, failErr)
	}
	return reports, nil
}

// sweepBatched solves the non-anchor points of a sweep through the batched
// kernel: points[1:] are packed in index order into chunks of laneWidth
// lanes, each chunk is one ctmc.SolveBatchLanes call seeded from the
// anchor solution, and the chunk's reports are then evaluated in lane
// order (the measure evaluation rebinds the chain to each point's rates,
// as the per-point path does). Chunks are independent — every lane seeds
// from the anchor, never from a chunk-mate — so chunk-level workers change
// nothing but wall-clock time, and a failure is attributed to the lowest
// failed global point index, matching the per-point paths. Lanes that fail
// to converge escalate solo (a lane's base failure is bit-identical to the
// solo base attempt), and chunks whose every lane was restored from a
// checkpoint are skipped outright.
func (s *Session) sweepBatched(base *ctmc.CTMC, measures []measure.Measure, points [][]float64,
	reports []*Phase2Report, anchorPi []float64, laneWidth int,
	report func(map[string]float64) *Phase2Report, attribute func(error, int) error,
	mkSolve func([]float64) ctmc.SolveOptions,
	forcedCE func(*ctmc.CTMC, []float64) (*ctmc.ConvergenceError, error),
	escalateLane func(*ctmc.CTMC, int, []float64, *ctmc.ConvergenceError, bool) ([]float64, *ctmc.SolveTrace, error),
	finish func(int, *Phase2Report) error) ([]*Phase2Report, error) {

	ctx := s.cfg.Ctx
	escalation := s.st.spec.Solve.Escalation

	// translate maps a SolveBatch failure of the chunk at offset off to
	// its global point index and the unwrapped per-lane error.
	translate := func(err error, off int) (int, error) {
		idx := off
		var bpe *ctmc.BatchPointError
		if errors.As(err, &bpe) {
			idx = off + bpe.Point
			err = bpe.Err
		}
		return idx, attribute(err, idx)
	}

	// solveChunk solves points[off:off+width] on the given chain and fills
	// their reports. It returns the failed global point index and error.
	solveChunk := func(chain *ctmc.CTMC, off, width int) (int, error) {
		if err := fault.Check(ctx, "core.sweep", off, -1); err != nil {
			return off, err
		}
		pis, laneErrs, err := chain.SolveBatchLanes(points[off:off+width], ctmc.BatchOptions{Solve: mkSolve(anchorPi)})
		if err != nil {
			return translate(err, off)
		}
		for lane := 0; lane < width; lane++ {
			i := off + lane
			pi := pis[lane]
			var trace *ctmc.SolveTrace
			lerr := laneErrs[lane]
			forced := false
			if lerr == nil && faultinject.Fire(faultinject.SiteSweepNonconverge, i) {
				ce, ferr := forcedCE(chain, anchorPi)
				if ferr != nil {
					return i, ferr
				}
				lerr = ce
				forced = true
			}
			if lerr != nil {
				var ce *ctmc.ConvergenceError
				if escalation == ctmc.EscalateLadder && errors.As(lerr, &ce) {
					pi, trace, lerr = escalateLane(chain, i, anchorPi, ce, forced)
				}
			}
			if lerr != nil {
				return i, attribute(lerr, i)
			}
			if err := chain.Rebind(points[i]); err != nil {
				return i, err
			}
			values, err := measure.EvalAll(measures, chain, pi)
			if err != nil {
				return i, err
			}
			rep := report(values)
			rep.Trace = trace
			if err := finish(i, rep); err != nil {
				return i, err
			}
		}
		return 0, nil
	}

	// runChunk is solveChunk under the chunk worker's panic guard; the
	// injection sites of the chunk's points are consulted up front so an
	// armed SiteSweepPoint trigger fires in batched mode too.
	runChunk := func(w int, chain *ctmc.CTMC, off, width int) (idx int, err error) {
		gerr := fault.Guard("core.sweep", w, fmt.Sprintf("points %d-%d", off, off+width-1), func() error {
			for k := 0; k < width; k++ {
				faultinject.MaybePanic(faultinject.SiteSweepPoint, off+k)
			}
			var serr error
			idx, serr = solveChunk(chain, off, width)
			return serr
		})
		if gerr != nil {
			if err == nil && idx == 0 {
				idx = off // a recovered panic is attributed to the chunk
			}
			return idx, gerr
		}
		return idx, err
	}

	nChunks := (len(points) - 2 + laneWidth) / laneWidth // points[1:] in chunks of laneWidth
	chunkAt := func(ch int) (int, int) {
		off := 1 + ch*laneWidth
		width := laneWidth
		if off+width > len(points) {
			width = len(points) - off
		}
		return off, width
	}
	chunkNeeded := func(off, width int) bool {
		for k := 0; k < width; k++ {
			if reports[off+k] == nil {
				return true
			}
		}
		return false
	}

	workers := s.cfg.Workers
	if workers > nChunks {
		workers = nChunks
	}
	if workers <= 1 {
		for ch := 0; ch < nChunks; ch++ {
			off, width := chunkAt(ch)
			if !chunkNeeded(off, width) {
				continue // every lane restored from the checkpoint
			}
			if idx, err := runChunk(0, base, off, width); err != nil {
				return nil, fmt.Errorf("pipeline: sweep: point %d: %w", idx, err)
			}
		}
		return reports, nil
	}

	// Chunk-parallel path: each worker owns a private clone; chunks are
	// claimed in ascending order and the lowest failed point index wins,
	// matching the sequential chunk loop.
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		next    int
		failIdx = len(points)
		failErr error
	)
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		for failErr == nil && next < nChunks {
			ch := next
			next++
			off, width := chunkAt(ch)
			if !chunkNeeded(off, width) {
				continue // every lane restored from the checkpoint
			}
			return ch
		}
		return -1
	}
	fail := func(idx int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if failErr == nil || idx < failIdx {
			failIdx, failErr = idx, err
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			chain := base.Clone()
			for {
				ch := claim()
				if ch < 0 {
					return
				}
				off, width := chunkAt(ch)
				if idx, err := runChunk(w, chain, off, width); err != nil {
					fail(idx, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if failErr != nil {
		return nil, fmt.Errorf("pipeline: sweep: point %d: %w", failIdx, failErr)
	}
	return reports, nil
}
