package pipeline

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/ctmc"
)

// TestCheckpointEncodeDecodeRoundTrip pins the binary format: every field
// — values, anchor bits, traces, flags — survives a round trip exactly.
func TestCheckpointEncodeDecodeRoundTrip(t *testing.T) {
	orig := &checkpoint{
		hash:      0xdeadbeefcafe,
		numPoints: 5,
		anchorPi:  []float64{0.125, 0.875, 1e-300},
		completed: map[int]*Phase2Report{
			0: {Values: map[string]float64{"util": 0.5, "power": 1.25}},
			3: {
				Values: map[string]float64{"util": 0.375},
				Trace: &ctmc.SolveTrace{Attempts: []ctmc.SolveAttempt{
					{Rung: 0, Action: "forced-nonconvergence", Sweep: ctmc.SweepGaussSeidel,
						MaxIterations: 100, Omega: 1, WarmStart: true, Iterations: 100, Residual: 0.5},
					{Rung: 1, Action: "raise-max-iterations", Sweep: ctmc.SweepGaussSeidel,
						MaxIterations: 400, Omega: 1, WarmStart: true, Converged: true},
				}},
			},
		},
	}
	report := func(values map[string]float64) *Phase2Report { return &Phase2Report{Values: values} }
	got, err := decodeCheckpoint(encodeCheckpoint(orig), report)
	if err != nil {
		t.Fatal(err)
	}
	if got.hash != orig.hash || got.numPoints != orig.numPoints {
		t.Errorf("header changed: %x/%d vs %x/%d", got.hash, got.numPoints, orig.hash, orig.numPoints)
	}
	if !reflect.DeepEqual(got.anchorPi, orig.anchorPi) {
		t.Errorf("anchor changed: %v vs %v", got.anchorPi, orig.anchorPi)
	}
	if !reflect.DeepEqual(got.completed, orig.completed) {
		t.Errorf("completed set changed:\n got %+v\n want %+v", got.completed, orig.completed)
	}
	// Determinism of the encoding itself (sorted maps): same content, same
	// bytes.
	a, b := encodeCheckpoint(orig), encodeCheckpoint(orig)
	if !reflect.DeepEqual(a, b) {
		t.Error("encoding is not deterministic")
	}
	// Truncation at any point must be caught.
	enc := encodeCheckpoint(orig)
	if _, err := decodeCheckpoint(enc[:len(enc)-3], report); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("truncated checkpoint decoded: %v", err)
	}
	if _, err := decodeCheckpoint([]byte("not a checkpoint"), report); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("garbage decoded: %v", err)
	}
}
