package pipeline_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/aemilia"
	"repro/internal/ctmc"
	"repro/internal/lts"
	"repro/internal/models"
	"repro/internal/pipeline"
)

// rpcSpec is the canonical spec of the revised rpc model at the given
// parameters, the same shape internal/experiments builds.
func rpcSpec(p models.RPCParams) pipeline.Spec {
	return pipeline.Spec{
		Key:      fmt.Sprintf("rpc:%#v", p),
		Build:    func() (*aemilia.ArchiType, error) { return models.BuildRPCRevised(p) },
		Measures: models.RPCMeasures(p),
	}
}

// TestManagerReusesStagedArtifacts opens two handles on the same spec —
// with different scheduling configs — and checks they share one set of
// staged artifacts: the second Phase2 does no generation and the model,
// LTS and chain are pointer-identical.
func TestManagerReusesStagedArtifacts(t *testing.T) {
	p := models.DefaultRPCParams()
	mgr := pipeline.NewManager()

	s1, err := mgr.Open(rpcSpec(p), pipeline.Config{Workers: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rep1, err := s1.Phase2()
	if err != nil {
		t.Fatalf("Phase2: %v", err)
	}
	calls := lts.GenerateCalls()

	// Different workers/lanes: scheduling only, must intern onto the same
	// session state.
	s2, err := mgr.Open(rpcSpec(p), pipeline.Config{Workers: 8, LaneWidth: 8})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if s1.SpecHash() != s2.SpecHash() {
		t.Fatalf("spec hashes differ: %s vs %s", s1.SpecHash(), s2.SpecHash())
	}
	if mgr.Len() != 1 {
		t.Fatalf("manager interned %d states, want 1", mgr.Len())
	}

	m1, err := s1.Model()
	if err != nil {
		t.Fatalf("Model: %v", err)
	}
	m2, err := s2.Model()
	if err != nil {
		t.Fatalf("Model: %v", err)
	}
	if m1 != m2 {
		t.Fatalf("elaborated models not shared across handles")
	}
	l1, _ := s1.LTS()
	l2, _ := s2.LTS()
	if l1 != l2 {
		t.Fatalf("LTS not shared across handles")
	}
	c1, _ := s1.Chain()
	c2, _ := s2.Chain()
	if c1 != c2 {
		t.Fatalf("chain not shared across handles")
	}

	rep2, err := s2.Phase2()
	if err != nil {
		t.Fatalf("Phase2: %v", err)
	}
	if d := lts.GenerateCalls() - calls; d != 0 {
		t.Fatalf("second handle regenerated the state space (%d extra Generate calls)", d)
	}
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatalf("shared-state reports differ:\n%+v\n%+v", rep1, rep2)
	}

	// Reports are private copies: mutating one must not leak into the next.
	for k := range rep2.Values {
		rep2.Values[k] = -1
	}
	rep3, err := s1.Phase2()
	if err != nil {
		t.Fatalf("Phase2: %v", err)
	}
	if reflect.DeepEqual(rep2, rep3) {
		t.Fatalf("Phase2 handed out a shared Values map")
	}
}

// TestStoreHitMatchesFreshSolve runs Phase2 through a MemoryStore twice
// — the second time from a cold session that can only answer from the
// store — and checks the cached report deep-equals the fresh solve and
// that the hit did no generation.
func TestStoreHitMatchesFreshSolve(t *testing.T) {
	p := models.DefaultRPCParams()
	store := pipeline.NewMemoryStore()

	fresh := pipeline.NewSession(rpcSpec(p), pipeline.Config{Workers: 1, Store: store})
	rep1, err := fresh.Phase2()
	if err != nil {
		t.Fatalf("fresh Phase2: %v", err)
	}
	if store.Len() == 0 {
		t.Fatalf("Phase2 did not populate the store")
	}

	calls := lts.GenerateCalls()
	cold := pipeline.NewSession(rpcSpec(p), pipeline.Config{Workers: 1, Store: store})
	rep2, err := cold.Phase2()
	if err != nil {
		t.Fatalf("cached Phase2: %v", err)
	}
	if d := lts.GenerateCalls() - calls; d != 0 {
		t.Fatalf("store hit still generated the state space (%d Generate calls)", d)
	}
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatalf("cached report differs from fresh solve:\n%+v\n%+v", rep1, rep2)
	}

	// A hit hands out a private clone: corrupting it must not poison the
	// store for the next caller.
	for k := range rep2.Values {
		rep2.Values[k] = -1
	}
	rep3, err := pipeline.NewSession(rpcSpec(p), pipeline.Config{Workers: 1, Store: store}).Phase2()
	if err != nil {
		t.Fatalf("Phase2: %v", err)
	}
	if !reflect.DeepEqual(rep1, rep3) {
		t.Fatalf("store entry was mutated through a handed-out report")
	}
}

// TestSessionSingleFlight has concurrent callers open the same spec key
// on one manager and solve: the build must run exactly once (one
// Generate call) and every caller must see the identical report.
func TestSessionSingleFlight(t *testing.T) {
	p := models.DefaultRPCParams()
	mgr := pipeline.NewManager()
	start := lts.GenerateCalls()

	const n = 8
	reports := make([]*pipeline.Phase2Report, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := mgr.Open(rpcSpec(p), pipeline.Config{Workers: 1})
			if err != nil {
				errs[i] = err
				return
			}
			reports[i], errs[i] = s.Phase2()
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if d := lts.GenerateCalls() - start; d != 1 {
		t.Fatalf("single-flight failed: %d Generate calls for one spec key, want 1", d)
	}
	for i := 1; i < n; i++ {
		if !reflect.DeepEqual(reports[0], reports[i]) {
			t.Fatalf("caller %d saw a different report:\n%+v\n%+v", i, reports[0], reports[i])
		}
	}
}

// TestManagerRejectsEphemeralSpec: an empty Key cannot be interned.
func TestManagerRejectsEphemeralSpec(t *testing.T) {
	spec := rpcSpec(models.DefaultRPCParams())
	spec.Key = ""
	if _, err := pipeline.NewManager().Open(spec, pipeline.Config{}); err == nil {
		t.Fatalf("Open accepted an ephemeral spec (empty Key)")
	}
}

// TestSpecHashIgnoresScheduling checks the content address excludes
// scheduling-only knobs (workers, contexts) and includes everything that
// can change a result's bits.
func TestSpecHashIgnoresScheduling(t *testing.T) {
	p := models.DefaultRPCParams()
	base := rpcSpec(p)

	sched := base
	sched.Gen.GenWorkers = 8
	sched.Solve.Workers = 8
	if base.Hash() != sched.Hash() {
		t.Fatalf("worker counts changed the spec hash")
	}

	tol := base
	tol.Solve.Tolerance = 1e-6
	if base.Hash() == tol.Hash() {
		t.Fatalf("solver tolerance did not change the spec hash")
	}

	meas := base
	meas.Measures = meas.Measures[:len(meas.Measures)-1]
	if base.Hash() == meas.Hash() {
		t.Fatalf("measure set did not change the spec hash")
	}

	key := base
	key.Key = "rpc:other"
	if base.Hash() == key.Hash() {
		t.Fatalf("spec key did not change the spec hash")
	}

	pred := base
	pred.Gen.Predicates = append([]lts.StatePred(nil), pred.Gen.Predicates...)
	pred.Gen.Predicates = append(pred.Gen.Predicates, lts.StatePred{Instance: "X", Action: "y"})
	if base.Hash() == pred.Hash() {
		t.Fatalf("generation predicates did not change the spec hash")
	}

	ml := base
	ml.Solve.Sweep = ctmc.SweepMultilevel
	if base.Hash() == ml.Hash() {
		t.Fatalf("multilevel sweep mode did not change the spec hash")
	}
}
