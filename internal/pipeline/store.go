package pipeline

import "sync"

// ResultKey content-addresses one Phase2 result: the spec's hash plus the
// exact bit patterns of the solve's inputs beyond the spec. Two equal
// keys denote solves whose floats are bit-identical, so a stored report
// may stand in for a fresh one.
type ResultKey struct {
	// Spec is the owning spec's content hash.
	Spec SpecHash
	// Anchor is the warm-start provenance: the bit-encoded anchor point
	// whose solution seeded this solve (sweep points), or "" for a cold
	// solve. It is part of the key because a warm-started solution's bits
	// depend on its seed.
	Anchor string
	// Point is the bit-encoded rate vector the chain was rebound to, or
	// the literal "default" for a solve at the model's built-in rates
	// (which cannot collide with encodePoint output — that is always a
	// multiple of 8 bytes).
	Point string
}

// Store memoizes Phase2 reports across sessions. Implementations must be
// safe for concurrent use and must not alias stored reports with callers
// (MemoryStore clones on both Put and Get). The interface is deliberately
// minimal so a persistent implementation (disk, service) can slot in
// behind the same sessions.
type Store interface {
	// Get returns the report stored under key, or ok == false.
	Get(key ResultKey) (rep *Phase2Report, ok bool)
	// Put stores rep under key, replacing any previous entry.
	Put(key ResultKey, rep *Phase2Report)
}

// MemoryStore is the in-process Store: a mutex-guarded map that clones
// reports on the way in and out, so no caller can mutate a cached result
// under another's feet.
type MemoryStore struct {
	mu sync.Mutex
	m  map[ResultKey]*Phase2Report
}

// NewMemoryStore returns an empty in-memory store.
func NewMemoryStore() *MemoryStore {
	return &MemoryStore{m: make(map[ResultKey]*Phase2Report)}
}

// Get implements Store.
func (s *MemoryStore) Get(key ResultKey) (*Phase2Report, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep, ok := s.m[key]
	if !ok {
		return nil, false
	}
	return rep.clone(), true
}

// Put implements Store.
func (s *MemoryStore) Put(key ResultKey, rep *Phase2Report) {
	if rep == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = rep.clone()
}

// Len reports the number of cached results.
func (s *MemoryStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}
