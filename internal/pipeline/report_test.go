package pipeline_test

import (
	"sort"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/stats"
)

// TestValidatePerMeasureSorted: PerMeasure must come back sorted by
// measure name on every call, independent of map iteration order — the
// regression guard for the report-order fix.
func TestValidatePerMeasureSorted(t *testing.T) {
	exact := &pipeline.Phase2Report{Values: map[string]float64{
		"zeta": 1, "alpha": 2, "mid": 3, "beta": 4, "omega": 5,
	}}
	simulated := &pipeline.Phase3Report{Estimates: map[string]stats.Interval{
		"zeta":  {Mean: 1, HalfWidth: 0.1},
		"alpha": {Mean: 2, HalfWidth: 0.1},
		"mid":   {Mean: 3, HalfWidth: 0.1},
		"beta":  {Mean: 4, HalfWidth: 0.1},
		"omega": {Mean: 5, HalfWidth: 0.1},
	}}

	var first []string
	for run := 0; run < 20; run++ {
		rep := pipeline.Validate(exact, simulated, 1e-3)
		if len(rep.PerMeasure) != len(exact.Values) {
			t.Fatalf("run %d: %d rows, want %d", run, len(rep.PerMeasure), len(exact.Values))
		}
		names := make([]string, len(rep.PerMeasure))
		for i, mv := range rep.PerMeasure {
			names[i] = mv.Name
		}
		if !sort.StringsAreSorted(names) {
			t.Fatalf("run %d: PerMeasure not sorted by name: %v", run, names)
		}
		if first == nil {
			first = names
			continue
		}
		for i := range names {
			if names[i] != first[i] {
				t.Fatalf("run %d: row order changed: %v vs %v", run, names, first)
			}
		}
	}
	if !simulated.Estimates["zeta"].Contains(1) {
		t.Fatalf("sanity: interval should contain exact value")
	}
	rep := pipeline.Validate(exact, simulated, 1e-3)
	if !rep.Consistent {
		t.Fatalf("validation should be consistent when every exact value is inside its interval")
	}
}
