package pipeline

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"sort"
	"sync"

	"repro/internal/ctmc"
	"repro/internal/faultinject"
)

// CheckpointOptions makes a sweep resumable: SweepCheckpointed
// periodically writes the completed point results and the anchor solution
// to Path, and a later run with Resume set replays only the missing
// points. Because every point's result is a pure function of the sweep's
// input and the anchor solution — never of scheduling — a resumed sweep's
// reports are bit-identical to an uninterrupted run's.
type CheckpointOptions struct {
	// Path is the checkpoint file. The file is written atomically
	// (temp file + rename), so a crash mid-write never corrupts an
	// existing checkpoint.
	Path string
	// Every is the write cadence in completed points (default 8): after
	// every Every-th newly completed point the full completed set is
	// rewritten.
	Every int
	// Resume loads Path before solving and skips the points it already
	// holds. A missing file is not an error — the sweep simply starts
	// fresh — but a corrupt file, or one whose structural hash does not
	// match this sweep's model, points, and measures, aborts with a
	// *CheckpointError rather than silently recomputing or, worse,
	// resuming someone else's sweep.
	Resume bool
}

// CheckpointError reports a checkpoint operation failure.
type CheckpointError struct {
	// Op is the failed operation: "write", "load", or "decode".
	Op string
	// Path is the checkpoint file.
	Path string
	// Err is the cause (e.g. ErrCheckpointMismatch, ErrCheckpointCorrupt,
	// or an *os.PathError).
	Err error
}

// Error implements the error interface.
func (e *CheckpointError) Error() string {
	return fmt.Sprintf("pipeline: checkpoint %s %s: %v", e.Op, e.Path, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *CheckpointError) Unwrap() error { return e.Err }

// Checkpoint failure causes.
var (
	// ErrCheckpointMismatch reports a checkpoint whose structural hash
	// does not match the resuming sweep's model, point set, and measures.
	ErrCheckpointMismatch = errors.New("checkpoint does not match this sweep")
	// ErrCheckpointCorrupt reports a truncated or checksum-failing
	// checkpoint file.
	ErrCheckpointCorrupt = errors.New("checkpoint file is corrupt")
)

// ckMagic identifies the checkpoint format, version included: a format
// change bumps the trailing version byte, and older readers reject the
// file as a mismatch instead of misparsing it. The magic predates this
// package — checkpoints written by earlier releases resume unchanged.
const ckMagic = "DPMCKPT1"

// checkpoint is the decoded content of a checkpoint file.
type checkpoint struct {
	hash      uint64
	numPoints int
	anchorPi  []float64
	completed map[int]*Phase2Report
}

// --- binary encoding -----------------------------------------------------
//
// All integers are big-endian; floats are stored as their IEEE-754 bit
// patterns (math.Float64bits), so a round trip is exact — the resumed
// sweep's warm starts see the same bits the original run computed. Map
// keys are sorted before encoding, so the same content always produces
// the same bytes. The file ends with an FNV-64a checksum of everything
// before it.

func ckU16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }

func ckU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func ckU64(b []byte, v uint64) []byte {
	return append(b, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func ckStr(b []byte, s string) []byte {
	b = ckU16(b, uint16(len(s)))
	return append(b, s...)
}

func encodeCheckpoint(c *checkpoint) []byte {
	b := append([]byte(nil), ckMagic...)
	b = ckU64(b, c.hash)
	b = ckU32(b, uint32(c.numPoints))
	b = ckU32(b, uint32(len(c.anchorPi)))
	for _, v := range c.anchorPi {
		b = ckU64(b, math.Float64bits(v))
	}
	idxs := make([]int, 0, len(c.completed))
	for i := range c.completed {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	b = ckU32(b, uint32(len(idxs)))
	for _, i := range idxs {
		rep := c.completed[i]
		b = ckU32(b, uint32(i))
		names := make([]string, 0, len(rep.Values))
		for name := range rep.Values {
			names = append(names, name)
		}
		sort.Strings(names)
		b = ckU32(b, uint32(len(names)))
		for _, name := range names {
			b = ckStr(b, name)
			b = ckU64(b, math.Float64bits(rep.Values[name]))
		}
		if rep.Trace == nil {
			b = ckU32(b, 0)
		} else {
			b = ckU32(b, uint32(len(rep.Trace.Attempts)))
			for _, a := range rep.Trace.Attempts {
				b = ckU32(b, uint32(a.Rung))
				b = ckStr(b, a.Action)
				b = ckU32(b, uint32(a.Sweep))
				b = ckU64(b, uint64(a.MaxIterations))
				b = ckU64(b, math.Float64bits(a.Omega))
				var flags byte
				if a.WarmStart {
					flags |= 1
				}
				if a.Converged {
					flags |= 2
				}
				b = append(b, flags)
				b = ckU64(b, uint64(a.Iterations))
				b = ckU64(b, math.Float64bits(a.Residual))
			}
		}
	}
	sum := fnv.New64a()
	sum.Write(b)
	return ckU64(b, sum.Sum64())
}

// ckReader is a bounds-checked cursor over an encoded checkpoint; the
// first out-of-bounds read latches failed and every later read returns
// zero, so decode checks the flag once at the end instead of threading
// errors through every field.
type ckReader struct {
	b      []byte
	off    int
	failed bool
}

func (r *ckReader) take(n int) []byte {
	if r.failed || r.off+n > len(r.b) {
		r.failed = true
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *ckReader) u16() uint16 {
	s := r.take(2)
	if s == nil {
		return 0
	}
	return uint16(s[0])<<8 | uint16(s[1])
}

func (r *ckReader) u32() uint32 {
	s := r.take(4)
	if s == nil {
		return 0
	}
	return uint32(s[0])<<24 | uint32(s[1])<<16 | uint32(s[2])<<8 | uint32(s[3])
}

func (r *ckReader) u64() uint64 {
	s := r.take(8)
	if s == nil {
		return 0
	}
	return uint64(s[0])<<56 | uint64(s[1])<<48 | uint64(s[2])<<40 | uint64(s[3])<<32 |
		uint64(s[4])<<24 | uint64(s[5])<<16 | uint64(s[6])<<8 | uint64(s[7])
}

func (r *ckReader) str() string { return string(r.take(int(r.u16()))) }

func (r *ckReader) f64() float64 { return math.Float64frombits(r.u64()) }

// decodeCheckpoint parses and checksums an encoded checkpoint. report
// rebuilds a Phase2Report shell around a decoded value map and trace
// (the caller closes it over the current run's state-space sizes, which
// the structural hash guarantees match).
func decodeCheckpoint(data []byte, report func(values map[string]float64) *Phase2Report) (*checkpoint, error) {
	if len(data) < len(ckMagic)+16 || string(data[:len(ckMagic)]) != ckMagic {
		return nil, ErrCheckpointCorrupt
	}
	body, tail := data[:len(data)-8], data[len(data)-8:]
	sum := fnv.New64a()
	sum.Write(body)
	want := uint64(tail[0])<<56 | uint64(tail[1])<<48 | uint64(tail[2])<<40 | uint64(tail[3])<<32 |
		uint64(tail[4])<<24 | uint64(tail[5])<<16 | uint64(tail[6])<<8 | uint64(tail[7])
	if sum.Sum64() != want {
		return nil, ErrCheckpointCorrupt
	}
	r := &ckReader{b: body, off: len(ckMagic)}
	c := &checkpoint{
		hash:      r.u64(),
		completed: make(map[int]*Phase2Report),
	}
	c.numPoints = int(r.u32())
	if n := int(r.u32()); n > 0 {
		if n > len(body) { // cheap sanity bound before allocating
			return nil, ErrCheckpointCorrupt
		}
		c.anchorPi = make([]float64, n)
		for i := range c.anchorPi {
			c.anchorPi[i] = r.f64()
		}
	}
	nDone := int(r.u32())
	for d := 0; d < nDone && !r.failed; d++ {
		idx := int(r.u32())
		values := make(map[string]float64)
		for v, nv := 0, int(r.u32()); v < nv && !r.failed; v++ {
			name := r.str()
			values[name] = r.f64()
		}
		rep := report(values)
		if na := int(r.u32()); na > 0 {
			trace := &ctmc.SolveTrace{Attempts: make([]ctmc.SolveAttempt, 0, na)}
			for a := 0; a < na && !r.failed; a++ {
				att := ctmc.SolveAttempt{
					Rung:          int(r.u32()),
					Action:        r.str(),
					Sweep:         ctmc.Sweep(r.u32()),
					MaxIterations: int(r.u64()),
					Omega:         r.f64(),
				}
				var flags byte
				if s := r.take(1); s != nil {
					flags = s[0]
				}
				att.WarmStart = flags&1 != 0
				att.Converged = flags&2 != 0
				att.Iterations = int(r.u64())
				att.Residual = r.f64()
				trace.Attempts = append(trace.Attempts, att)
			}
			rep.Trace = trace
		}
		c.completed[idx] = rep
	}
	if r.failed || r.off != len(body) {
		return nil, ErrCheckpointCorrupt
	}
	return c, nil
}

// loadCheckpoint reads and validates a checkpoint for a sweep identified
// by its structural hash and point count. A missing file returns
// (nil, nil): resuming with no checkpoint is a fresh start.
func loadCheckpoint(path string, hash uint64, numPoints int,
	report func(values map[string]float64) *Phase2Report) (*checkpoint, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, &CheckpointError{Op: "load", Path: path, Err: err}
	}
	c, err := decodeCheckpoint(data, report)
	if err != nil {
		return nil, &CheckpointError{Op: "decode", Path: path, Err: err}
	}
	if c.hash != hash || c.numPoints != numPoints {
		return nil, &CheckpointError{Op: "load", Path: path, Err: ErrCheckpointMismatch}
	}
	return c, nil
}

// ckWriter accumulates completed sweep points and rewrites the checkpoint
// file every opts.Every completions. It has its own lock: sweep workers
// report completions from several goroutines, and the writer is the only
// place their reports are read before the sweep returns.
type ckWriter struct {
	mu       sync.Mutex
	opts     CheckpointOptions
	hash     uint64
	numPts   int
	anchorPi []float64
	done     map[int]*Phase2Report
	since    int
	ordinal  int // write ordinal, the fault-injection key
}

// newCkWriter starts a writer, seeded with the points a resumed
// checkpoint already holds so later writes keep them.
func newCkWriter(opts CheckpointOptions, hash uint64, numPoints int, anchorPi []float64, prior *checkpoint) *ckWriter {
	if opts.Every <= 0 {
		opts.Every = 8
	}
	w := &ckWriter{
		opts:     opts,
		hash:     hash,
		numPts:   numPoints,
		anchorPi: anchorPi,
		done:     make(map[int]*Phase2Report),
	}
	if prior != nil {
		for i, rep := range prior.completed {
			w.done[i] = rep
		}
	}
	return w
}

// completed records one finished point and writes the checkpoint when the
// cadence is due. Write failures are strict: the sweep treats them as the
// point's failure rather than carrying on with an unwritable checkpoint.
func (w *ckWriter) completed(i int, rep *Phase2Report) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.done[i]; ok {
		return nil
	}
	w.done[i] = rep
	w.since++
	if w.since < w.opts.Every {
		return nil
	}
	w.since = 0
	return w.writeLocked()
}

// writeLocked encodes the completed set and atomically replaces the
// checkpoint file. Must be called with w.mu held.
func (w *ckWriter) writeLocked() error {
	ord := w.ordinal
	w.ordinal++
	if faultinject.Fire(faultinject.SiteCheckpointWrite, ord) {
		return &CheckpointError{Op: "write", Path: w.opts.Path,
			Err: &faultinject.InjectedError{Site: faultinject.SiteCheckpointWrite, Key: ord}}
	}
	data := encodeCheckpoint(&checkpoint{
		hash:      w.hash,
		numPoints: w.numPts,
		anchorPi:  w.anchorPi,
		completed: w.done,
	})
	tmp := w.opts.Path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return &CheckpointError{Op: "write", Path: w.opts.Path, Err: err}
	}
	if err := os.Rename(tmp, w.opts.Path); err != nil {
		return &CheckpointError{Op: "write", Path: w.opts.Path, Err: err}
	}
	return nil
}
