package pipeline

import (
	"math"
	"sort"

	"repro/internal/ctmc"
	"repro/internal/noninterference"
	"repro/internal/stats"
)

// Phase1Report is the outcome of the functional phase.
type Phase1Report struct {
	// Result is the noninterference verdict with its diagnostic formula.
	Result *noninterference.Result
	// States and Transitions size the generated state space.
	States, Transitions int
}

// Phase2Report is the outcome of the Markovian phase for one model.
type Phase2Report struct {
	// Values holds the exact steady-state value of every measure.
	Values map[string]float64
	// States, Tangible and Vanishing size the state space and the chain.
	States, Tangible, Vanishing int
	// Trace records the solver's attempt history for this point: the base
	// attempt's resolved scheme, iterations/cycles, and residual, plus
	// every escalation rung when the sweep ran with ctmc.EscalateLadder
	// and the base configuration did not converge. Sweep-point reports
	// carry a trace only for escalated points (nil when the base attempt
	// sufficed); Phase2 reports always carry the base attempt, so the
	// scheme an auto solve actually ran — including a stall-probe upgrade
	// to multilevel — is observable (dpmassess solve -stats prints it).
	Trace *ctmc.SolveTrace
}

// clone deep-copies a report, so cached results handed out by a Store can
// never be mutated by one caller under another's feet.
func (r *Phase2Report) clone() *Phase2Report {
	if r == nil {
		return nil
	}
	c := &Phase2Report{
		States:    r.States,
		Tangible:  r.Tangible,
		Vanishing: r.Vanishing,
	}
	if r.Values != nil {
		c.Values = make(map[string]float64, len(r.Values))
		for k, v := range r.Values {
			c.Values[k] = v
		}
	}
	if r.Trace != nil {
		t := &ctmc.SolveTrace{Attempts: append([]ctmc.SolveAttempt(nil), r.Trace.Attempts...)}
		c.Trace = t
	}
	return c
}

// Phase3Report is the outcome of the general (simulation) phase for one
// model.
type Phase3Report struct {
	// Estimates holds the confidence interval of every measure.
	Estimates map[string]stats.Interval
	// Events counts fired transitions across replications.
	Events int64
	// Replications is the number of independent runs.
	Replications int
}

// MeasureValidation compares one measure across the Markovian solution and
// the exponential simulation.
type MeasureValidation struct {
	// Name is the measure name.
	Name string
	// Exact is the CTMC value.
	Exact float64
	// Estimate is the simulation confidence interval.
	Estimate stats.Interval
	// WithinCI reports whether the exact value lies inside the interval.
	WithinCI bool
	// RelError is |mean-exact| / max(|exact|, 1e-12).
	RelError float64
}

// ValidationReport is the outcome of the Sect. 5.1 cross-validation.
type ValidationReport struct {
	// PerMeasure lists the per-measure comparisons, sorted by measure
	// name, so the report row order is deterministic run to run.
	PerMeasure []MeasureValidation
	// Consistent is true when every measure is within tolerance: inside
	// its confidence interval or within the relative-error budget.
	Consistent bool
}

// Validate cross-validates a general model against the Markovian one: the
// caller simulates the model with exponential distributions matching the
// Markovian rates and passes both results here. relTolerance bounds the
// accepted relative error when the exact value falls outside the
// confidence interval (the paper accepts small discretization gaps).
// PerMeasure comes back sorted by measure name.
func Validate(exact *Phase2Report, simulated *Phase3Report, relTolerance float64) *ValidationReport {
	names := make([]string, 0, len(exact.Values))
	for name := range exact.Values {
		names = append(names, name)
	}
	sort.Strings(names)
	rep := &ValidationReport{Consistent: true}
	for _, name := range names {
		exactV := exact.Values[name]
		ci, ok := simulated.Estimates[name]
		if !ok {
			continue
		}
		relErr := math.Abs(ci.Mean-exactV) / math.Max(math.Abs(exactV), 1e-12)
		mv := MeasureValidation{
			Name:     name,
			Exact:    exactV,
			Estimate: ci,
			WithinCI: ci.Contains(exactV),
			RelError: relErr,
		}
		if !mv.WithinCI && relErr > relTolerance {
			rep.Consistent = false
		}
		rep.PerMeasure = append(rep.PerMeasure, mv)
	}
	return rep
}
